// wasp_analyze — the offline Vani Analyzer: read a Recorder-style trace log
// produced by wasp_run (or trace::write_log) and print the workload profile
// summary; optionally emit figure-style panels.
//
//   wasp_analyze <trace.wtrc> [--phases] [--files N] [--hist] [--jobs N]
//                [--backend memory|spill] [--spill-dir DIR]
//                [--chunk-rows N] [--max-resident-chunks N]
//                [--no-compress] [--stats] [--telemetry out.json]
//                [--trace-out out.trace.json] [--report out.manifest.json]
//
// --backend spill streams the log through a SpillColumnStore (columnar
// chunk files + bounded LRU + sequential prefetch) instead of
// materializing it; the profile output is byte-identical to the memory
// backend, with or without chunk compression (--no-compress writes raw
// WSPCHK01 chunk files). --stats appends the backend's IoStats: cache
// behavior, prefetch hit rate, and per-column compression ratios.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <iostream>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "telemetry_cli.hpp"
#include "trace/log_io.hpp"
#include "util/parallel.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace wasp;

namespace {

analysis::WorkloadProfile analyze_spill(const std::string& trace_path,
                                        std::string spill_dir,
                                        std::size_t chunk_rows,
                                        std::size_t max_resident,
                                        bool compress,
                                        analysis::IoStats* io_out) {
  trace::LogReader reader(trace_path);
  const trace::LogHeader& h = reader.header();
  if (spill_dir.empty()) {
    spill_dir = (std::filesystem::temp_directory_path() /
                 ("wasp_spill_" + std::to_string(::getpid())))
                    .string();
  }
  analysis::SpillColumnStore::Options opts;
  opts.dir = spill_dir;
  opts.chunk_rows = chunk_rows;
  opts.max_resident_chunks = max_resident;
  opts.compress = compress;
  analysis::SpillColumnStore store(opts);

  std::vector<trace::Record> records;
  std::vector<std::uint32_t> path_idx;
  std::vector<std::uint64_t> file_sizes;
  while (reader.next_chunk(chunk_rows, records, path_idx, file_sizes) > 0) {
    store.append(records, path_idx, file_sizes);
    records.clear();
    path_idx.clear();
    file_sizes.clear();
  }
  store.finalize();
  std::cerr << "loaded " << store.size() << " records, " << h.apps.size()
            << " apps (spill: " << store.spilled_chunks() << " chunks in "
            << spill_dir << ")\n";

  analysis::TraceInput input;
  input.store = &store;
  input.app_names = h.apps;
  input.path_at = [&](std::size_t i) {
    return h.path_table.empty() ? std::string()
                                : h.path_table[store.path_idx_at(i)];
  };
  input.size_at = [&](std::size_t i) { return store.file_size_at(i); };
  input.fs_shared = [&](std::int16_t idx) {
    const auto u = static_cast<std::size_t>(idx);
    return u >= h.fs_shared.size() || h.fs_shared[u];
  };
  analysis::Analyzer analyzer;
  auto profile = analyzer.analyze(input);
  std::cerr << "spill cache: peak " << store.peak_resident_chunks() << "/"
            << opts.max_resident_chunks << " resident chunks, "
            << store.chunk_loads() << " loads, " << store.chunk_evictions()
            << " evictions\n";
  if (io_out != nullptr) *io_out = store.io_stats();
  return profile;
}

void print_io_stats(const analysis::IoStats& io) {
  std::cout << "\nspill backend I/O:\n"
            << "  chunk loads:    " << io.chunk_loads << " ("
            << io.cache_hits << " cache hits, "
            << util::format_percent(io.hit_rate()) << " hit rate)\n"
            << "  evictions:      " << io.evictions << "\n"
            << "  prefetch:       " << io.prefetch_issued << " issued, "
            << io.prefetch_hits << " hits ("
            << util::format_percent(io.prefetch_hit_rate())
            << " hit rate), " << io.prefetch_wasted << " wasted\n"
            << "  chunk bytes:    " << util::format_bytes(io.bytes_written)
            << " written, " << util::format_bytes(io.bytes_read)
            << " read back\n"
            << "  compression:    " << util::format_bytes(io.raw_bytes)
            << " raw -> " << util::format_bytes(io.bytes_written)
            << " on disk ("
            << util::format_percent(io.compressed_ratio()) << " of raw)\n";
  if (!io.columns.empty()) {
    util::TablePrinter cols("per-column compression");
    cols.set_header({"column", "raw", "stored", "ratio"});
    for (const auto& c : io.columns) {
      cols.add_row({c.name, util::format_bytes(c.raw_bytes),
                    util::format_bytes(c.stored_bytes),
                    util::format_percent(
                        c.raw_bytes == 0
                            ? 1.0
                            : static_cast<double>(c.stored_bytes) /
                                  static_cast<double>(c.raw_bytes))});
    }
    cols.print(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  if (argc < 2) {
    std::cerr << "usage: wasp_analyze <trace.wtrc> [--phases] [--files N]"
                 " [--hist] [--jobs N] [--backend memory|spill]"
                 " [--spill-dir DIR] [--chunk-rows N]"
                 " [--max-resident-chunks N] [--no-compress] [--stats]"
                 " [--telemetry FILE] [--trace-out FILE] [--report FILE]\n";
    return 2;
  }
  bool show_phases = false;
  bool show_hist = false;
  bool show_stats = false;
  bool compress = true;
  std::size_t show_files = 0;
  std::string backend = "memory";
  std::string spill_dir;
  std::string telemetry_out;
  std::string spans_out;
  std::string report_out;
  std::size_t chunk_rows = 65536;
  std::size_t max_resident = 8;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--phases") {
      show_phases = true;
    } else if (arg == "--hist") {
      show_hist = true;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--no-compress") {
      compress = false;
    } else if (arg == "--files" && i + 1 < argc) {
      show_files = static_cast<std::size_t>(util::cli_uint(arg, argv[++i]));
    } else if (arg == "--jobs" && i + 1 < argc) {
      util::set_default_jobs(static_cast<int>(util::cli_int(arg, argv[++i])));
    } else if (arg == "--backend" && i + 1 < argc) {
      backend = argv[++i];
    } else if (arg == "--spill-dir" && i + 1 < argc) {
      spill_dir = argv[++i];
    } else if (arg == "--chunk-rows" && i + 1 < argc) {
      chunk_rows = static_cast<std::size_t>(util::cli_uint(arg, argv[++i]));
    } else if (arg == "--max-resident-chunks" && i + 1 < argc) {
      max_resident = static_cast<std::size_t>(util::cli_uint(arg, argv[++i]));
    } else if (arg == "--telemetry" && i + 1 < argc) {
      telemetry_out = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      spans_out = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_out = argv[++i];
    }
  }
  toolcli::enable_telemetry(telemetry_out, spans_out, report_out);
  if (backend != "memory" && backend != "spill") {
    std::cerr << "unknown --backend (want memory|spill): " << backend << "\n";
    return 2;
  }

  analysis::WorkloadProfile profile;
  analysis::IoStats io;
  if (backend == "spill") {
    profile = analyze_spill(argv[1], spill_dir, chunk_rows, max_resident,
                            compress, &io);
  } else {
    const auto log = trace::read_log(argv[1]);
    std::cerr << "loaded " << log.records.size() << " records, "
              << log.apps.size() << " apps\n";
    analysis::Analyzer analyzer;
    profile = analyzer.analyze(log);
  }

  std::cout << "job runtime:   " << util::format_seconds(profile.job_runtime_sec)
            << "\nI/O time:      "
            << util::format_percent(profile.io_time_fraction) << " of runtime"
            << "\nread:          " << util::format_bytes(profile.totals.read_bytes)
            << " in " << profile.totals.read_ops << " ops"
            << "\nwrite:         "
            << util::format_bytes(profile.totals.write_bytes) << " in "
            << profile.totals.write_ops << " ops"
            << "\nmetadata ops:  " << profile.totals.meta_ops << " ("
            << util::format_percent(profile.totals.meta_time_fraction())
            << " of I/O time)"
            << "\nfiles:         " << profile.files.size() << " ("
            << profile.shared_files << " shared, " << profile.fpp_files
            << " FPP)"
            << "\naccess:        "
            << (profile.sequential_fraction >= 0.8 ? "sequential" : "mixed")
            << "\n\n";

  util::TablePrinter apps("per-application");
  apps.set_header({"app", "procs", "I/O", "data ops", "meta ops", "iface",
                   "runtime"});
  for (const auto& a : profile.apps) {
    apps.add_row({a.name, std::to_string(a.num_procs),
                  util::format_bytes(a.ops.io_bytes()),
                  std::to_string(a.ops.data_ops()),
                  std::to_string(a.ops.meta_ops),
                  trace::to_string(a.interface),
                  util::format_seconds(a.runtime_sec())});
  }
  apps.print(std::cout);

  if (show_phases) {
    std::cout << "\nI/O phases:\n";
    for (const auto& ph : profile.phases) {
      std::cout << "  [" << util::format_seconds(sim::to_seconds(ph.t0))
                << " .. " << util::format_seconds(sim::to_seconds(ph.t1))
                << "] app=" << profile.app_name(ph.app) << " "
                << util::format_bytes(ph.ops.io_bytes()) << " "
                << ph.frequency_label() << "\n";
    }
  }
  if (show_files > 0) {
    std::vector<const analysis::FileStats*> files;
    for (const auto& f : profile.files) files.push_back(&f);
    std::sort(files.begin(), files.end(),
              [](const analysis::FileStats* a, const analysis::FileStats* b) {
                return a->ops.io_bytes() > b->ops.io_bytes();
              });
    std::cout << "\ntop files by I/O volume:\n";
    for (std::size_t i = 0; i < std::min(show_files, files.size()); ++i) {
      std::cout << "  " << files[i]->path << "  "
                << util::format_bytes(files[i]->ops.io_bytes()) << "  ("
                << files[i]->reader_ranks << "r/" << files[i]->writer_ranks
                << "w)\n";
    }
  }
  if (show_hist) {
    std::cout << "\nrequest-size histogram (reads | writes):\n";
    for (std::size_t b = 0; b < profile.read_hist.num_buckets(); ++b) {
      std::cout << "  " << profile.read_hist.bucket_label(b) << ": "
                << profile.read_hist.count(b) << " | "
                << profile.write_hist.count(b) << "\n";
    }
  }
  if (show_stats) {
    if (backend == "spill") {
      print_io_stats(io);
    } else {
      std::cout << "\nspill backend I/O: none (memory backend)\n";
    }
  }
  toolcli::write_telemetry(telemetry_out, spans_out);
  toolcli::write_report(report_out, "wasp_analyze", util::default_jobs(),
                        backend, wall_t0);
  return 0;
}
