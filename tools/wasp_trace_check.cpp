// wasp_trace_check — validate a Chrome trace-event JSON file produced by
// the --trace-out flag (or any tool emitting the same format).
//
//   wasp_trace_check <trace.json> [--expect NAME]...
//
// Checks, in order:
//   1. the file parses as JSON and has a "traceEvents" array of objects;
//   2. every event carries a string "name", a "ph" of "B", "E", or "M",
//      numeric "pid"/"tid", and (for B/E) a numeric "ts";
//   3. per (pid, tid) track, B/E timestamps never decrease;
//   4. B/E events nest LIFO per track with matching names, and every track
//      is balanced at end of file;
//   5. every --expect NAME occurred as at least one completed span.
//
// Exit 0 when all checks pass (prints a one-line summary), 1 with a
// diagnostic on the first failure, 2 on usage errors. The JSON parser is
// self-contained — the tool has no dependency on the wasp library, so it
// can vet traces from foreign builds too.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

// --- Minimal recursive-descent JSON --------------------------------------

struct JValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  const JValue* get(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses one value plus trailing whitespace; throws std::runtime_error
  /// (with byte offset) on malformed input.
  JValue parse() {
    JValue v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(msg + " at byte " + std::to_string(pos_));
  }

  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JValue value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return word("true", [] (JValue& v) {
        v.type = JValue::Type::kBool;
        v.boolean = true;
      });
      case 'f': return word("false", [] (JValue& v) {
        v.type = JValue::Type::kBool;
        v.boolean = false;
      });
      case 'n': return word("null", [] (JValue&) {});
      default: return number();
    }
  }

  template <typename Fill>
  JValue word(const char* w, Fill fill) {
    for (const char* p = w; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
    JValue v;
    fill(v);
    return v;
  }

  JValue number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JValue v;
    v.type = JValue::Type::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  JValue string_value() {
    JValue v;
    v.type = JValue::Type::kString;
    v.str = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Span names are ASCII; any \u escape decodes to a placeholder.
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          pos_ += 4;
          out += '?';
          break;
        default: fail("bad escape");
      }
    }
  }

  JValue array() {
    expect('[');
    JValue v;
    v.type = JValue::Type::kArray;
    ws();
    if (consume(']')) return v;
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  JValue object() {
    expect('{');
    JValue v;
    v.type = JValue::Type::kObject;
    ws();
    if (consume('}')) return v;
    for (;;) {
      ws();
      std::string key = raw_string();
      ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Trace validation -----------------------------------------------------

struct Track {
  double last_ts = 0.0;
  bool has_ts = false;
  std::vector<std::string> open;  // B names awaiting their E
};

int fail_event(std::size_t index, const std::string& msg) {
  std::cerr << "wasp_trace_check: event " << index << ": " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: wasp_trace_check <trace.json> [--expect NAME]...\n";
    return 2;
  }
  std::set<std::string> expected;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--expect" && i + 1 < argc) {
      expected.insert(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  std::ifstream is(argv[1], std::ios::binary);
  if (!is.good()) {
    std::cerr << "wasp_trace_check: cannot open " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();

  JValue root;
  try {
    root = JsonParser(text).parse();
  } catch (const std::exception& e) {
    std::cerr << "wasp_trace_check: JSON parse error: " << e.what() << "\n";
    return 1;
  }
  if (root.type != JValue::Type::kObject) {
    std::cerr << "wasp_trace_check: root is not an object\n";
    return 1;
  }
  const JValue* events = root.get("traceEvents");
  if (events == nullptr || events->type != JValue::Type::kArray) {
    std::cerr << "wasp_trace_check: missing traceEvents array\n";
    return 1;
  }

  std::map<std::pair<long long, long long>, Track> tracks;
  std::set<std::string> completed;
  std::size_t spans = 0;
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const JValue& e = events->arr[i];
    if (e.type != JValue::Type::kObject) {
      return fail_event(i, "not an object");
    }
    const JValue* name = e.get("name");
    const JValue* ph = e.get("ph");
    const JValue* pid = e.get("pid");
    const JValue* tid = e.get("tid");
    if (name == nullptr || name->type != JValue::Type::kString) {
      return fail_event(i, "missing string \"name\"");
    }
    if (ph == nullptr || ph->type != JValue::Type::kString ||
        (ph->str != "B" && ph->str != "E" && ph->str != "M")) {
      return fail_event(i, "\"ph\" must be \"B\", \"E\", or \"M\"");
    }
    if (pid == nullptr || pid->type != JValue::Type::kNumber ||
        tid == nullptr || tid->type != JValue::Type::kNumber) {
      return fail_event(i, "missing numeric \"pid\"/\"tid\"");
    }
    if (ph->str == "M") continue;  // metadata carries no timestamp

    const JValue* ts = e.get("ts");
    if (ts == nullptr || ts->type != JValue::Type::kNumber) {
      return fail_event(i, "missing numeric \"ts\"");
    }
    Track& track = tracks[{static_cast<long long>(pid->number),
                           static_cast<long long>(tid->number)}];
    if (track.has_ts && ts->number < track.last_ts) {
      return fail_event(i, "timestamp decreases on its track (" +
                               std::to_string(ts->number) + " after " +
                               std::to_string(track.last_ts) + ")");
    }
    track.last_ts = ts->number;
    track.has_ts = true;

    if (ph->str == "B") {
      track.open.push_back(name->str);
    } else {
      if (track.open.empty()) {
        return fail_event(i, "\"E\" with no open span on its track");
      }
      if (track.open.back() != name->str) {
        return fail_event(i, "\"E\" name \"" + name->str +
                                 "\" does not match open span \"" +
                                 track.open.back() + "\"");
      }
      track.open.pop_back();
      completed.insert(name->str);
      ++spans;
    }
  }
  for (const auto& [key, track] : tracks) {
    if (!track.open.empty()) {
      std::cerr << "wasp_trace_check: track pid=" << key.first
                << " tid=" << key.second << " ends with unclosed span \""
                << track.open.back() << "\"\n";
      return 1;
    }
  }
  for (const std::string& want : expected) {
    if (completed.find(want) == completed.end()) {
      std::cerr << "wasp_trace_check: expected span \"" << want
                << "\" never completed\n";
      return 1;
    }
  }

  std::cout << "ok: " << spans << " spans on " << tracks.size()
            << " tracks, " << completed.size() << " distinct names\n";
  return 0;
}
