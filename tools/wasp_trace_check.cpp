// wasp_trace_check — validate a Chrome trace-event JSON file produced by
// the --trace-out flag (or any tool emitting the same format).
//
//   wasp_trace_check <trace.json> [--expect NAME]...
//
// Checks, in order:
//   1. the file parses as JSON and has a "traceEvents" array of objects;
//   2. every event carries a string "name", a "ph" of "B", "E", or "M",
//      numeric "pid"/"tid", and (for B/E) a numeric "ts";
//   3. per (pid, tid) track, B/E timestamps never decrease;
//   4. B/E events nest LIFO per track with matching names, and every track
//      is balanced at end of file;
//   5. every --expect NAME occurred as at least one completed span.
//
// Exit 0 when all checks pass (prints a one-line summary), 1 with a
// diagnostic on the first failure, 2 on usage errors. The parser is the
// shared util::json reader (this tool's original hand-rolled parser moved
// there), so it vets traces from foreign builds as long as they are
// well-formed JSON.
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace {

using wasp::util::json::Value;

struct Track {
  double last_ts = 0.0;
  bool has_ts = false;
  std::vector<std::string> open;  // B names awaiting their E
};

int fail_event(std::size_t index, const std::string& msg) {
  std::cerr << "wasp_trace_check: event " << index << ": " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: wasp_trace_check <trace.json> [--expect NAME]...\n";
    return 2;
  }
  std::set<std::string> expected;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--expect" && i + 1 < argc) {
      expected.insert(argv[++i]);
    } else {
      std::cerr << "unknown argument: " << argv[i] << "\n";
      return 2;
    }
  }

  Value root;
  try {
    root = wasp::util::json::parse_file(argv[1]);
  } catch (const std::exception& e) {
    std::cerr << "wasp_trace_check: " << e.what() << "\n";
    return 1;
  }
  if (!root.is_object()) {
    std::cerr << "wasp_trace_check: root is not an object\n";
    return 1;
  }
  const Value* events = root.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::cerr << "wasp_trace_check: missing traceEvents array\n";
    return 1;
  }

  std::map<std::pair<long long, long long>, Track> tracks;
  std::set<std::string> completed;
  std::size_t spans = 0;
  for (std::size_t i = 0; i < events->arr.size(); ++i) {
    const Value& e = events->arr[i];
    if (!e.is_object()) {
      return fail_event(i, "not an object");
    }
    const Value* name = e.get("name");
    const Value* ph = e.get("ph");
    const Value* pid = e.get("pid");
    const Value* tid = e.get("tid");
    if (name == nullptr || !name->is_string()) {
      return fail_event(i, "missing string \"name\"");
    }
    if (ph == nullptr || !ph->is_string() ||
        (ph->str != "B" && ph->str != "E" && ph->str != "M")) {
      return fail_event(i, "\"ph\" must be \"B\", \"E\", or \"M\"");
    }
    if (pid == nullptr || !pid->is_number() || tid == nullptr ||
        !tid->is_number()) {
      return fail_event(i, "missing numeric \"pid\"/\"tid\"");
    }
    if (ph->str == "M") continue;  // metadata carries no timestamp

    const Value* ts = e.get("ts");
    if (ts == nullptr || !ts->is_number()) {
      return fail_event(i, "missing numeric \"ts\"");
    }
    Track& track = tracks[{static_cast<long long>(pid->number),
                           static_cast<long long>(tid->number)}];
    if (track.has_ts && ts->number < track.last_ts) {
      return fail_event(i, "timestamp decreases on its track (" +
                               std::to_string(ts->number) + " after " +
                               std::to_string(track.last_ts) + ")");
    }
    track.last_ts = ts->number;
    track.has_ts = true;

    if (ph->str == "B") {
      track.open.push_back(name->str);
    } else {
      if (track.open.empty()) {
        return fail_event(i, "\"E\" with no open span on its track");
      }
      if (track.open.back() != name->str) {
        return fail_event(i, "\"E\" name \"" + name->str +
                                 "\" does not match open span \"" +
                                 track.open.back() + "\"");
      }
      track.open.pop_back();
      completed.insert(name->str);
      ++spans;
    }
  }
  for (const auto& [key, track] : tracks) {
    if (!track.open.empty()) {
      std::cerr << "wasp_trace_check: track pid=" << key.first
                << " tid=" << key.second << " ends with unclosed span \""
                << track.open.back() << "\"\n";
      return 1;
    }
  }
  for (const std::string& want : expected) {
    if (completed.find(want) == completed.end()) {
      std::cerr << "wasp_trace_check: expected span \"" << want
                << "\" never completed\n";
      return 1;
    }
  }

  std::cout << "ok: " << spans << " spans on " << tracks.size()
            << " tracks, " << completed.size() << " distinct names\n";
  return 0;
}
