// Shared --telemetry/--trace-out/--report plumbing for the CLI tools:
// enable the relevant obs switches up front, write the snapshot JSON,
// Chrome trace, and run-manifest files at exit. Under -DWASP_OBS_OFF all
// files are still written (empty schema-stable documents), so scripts
// never have to special-case the build config.
#pragma once

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasp::toolcli {

/// Call once after flag parsing. Timing turns on if any output is
/// requested (the snapshot's *_ns counters stay zero otherwise); span
/// recording when a trace file or a manifest (whose span table would
/// otherwise be empty) is wanted.
inline void enable_telemetry(const std::string& telemetry_out,
                             const std::string& trace_out,
                             const std::string& report_out = "") {
  if (!telemetry_out.empty() || !trace_out.empty() || !report_out.empty()) {
    obs::Registry::set_timing_enabled(true);
  }
  if (!trace_out.empty() || !report_out.empty()) {
    obs::SpanTracer::instance().set_enabled(true);
    obs::SpanTracer::instance().set_thread_name("main");
  }
}

/// Write the RunManifest for this process (no-op when `report_out` is
/// empty). `t0` is the stopwatch started before the run began.
inline void write_report(
    const std::string& report_out, const char* tool, int jobs,
    const std::string& backend,
    std::chrono::steady_clock::time_point t0) {
  if (report_out.empty()) return;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const obs::RunManifest m =
      obs::RunManifest::capture(tool, jobs, backend, wall);
  std::ofstream os(report_out);
  WASP_CHECK_MSG(os.good(), "cannot open report file: " + report_out);
  m.write_json(os);
  os.flush();
  WASP_CHECK_MSG(os.good(), "short write to report file: " + report_out);
  std::cerr << "run manifest written to " << report_out << "\n";
}

/// Call once before exit; writes whichever outputs were requested.
inline void write_telemetry(const std::string& telemetry_out,
                            const std::string& trace_out) {
  if (!telemetry_out.empty()) {
    std::ofstream os(telemetry_out);
    WASP_CHECK_MSG(os.good(), "cannot open telemetry file: " + telemetry_out);
    obs::Registry::instance().snapshot().write_json(os);
    std::cerr << "telemetry written to " << telemetry_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    WASP_CHECK_MSG(os.good(), "cannot open trace file: " + trace_out);
    obs::SpanTracer::instance().write_chrome_trace(os);
    std::cerr << "trace events written to " << trace_out << "\n";
  }
}

}  // namespace wasp::toolcli
