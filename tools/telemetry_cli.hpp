// Shared --telemetry/--trace-out plumbing for the CLI tools: enable the
// relevant obs switches up front, write the snapshot JSON and Chrome trace
// files at exit. Under -DWASP_OBS_OFF both files are still written (empty
// schema-stable documents), so scripts never have to special-case the
// build config.
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasp::toolcli {

/// Call once after flag parsing. Timing turns on if either output is
/// requested (the snapshot's *_ns counters stay zero otherwise); span
/// recording only when a trace file is wanted.
inline void enable_telemetry(const std::string& telemetry_out,
                             const std::string& trace_out) {
  if (!telemetry_out.empty() || !trace_out.empty()) {
    obs::Registry::set_timing_enabled(true);
  }
  if (!trace_out.empty()) {
    obs::SpanTracer::instance().set_enabled(true);
    obs::SpanTracer::instance().set_thread_name("main");
  }
}

/// Call once before exit; writes whichever outputs were requested.
inline void write_telemetry(const std::string& telemetry_out,
                            const std::string& trace_out) {
  if (!telemetry_out.empty()) {
    std::ofstream os(telemetry_out);
    WASP_CHECK_MSG(os.good(), "cannot open telemetry file: " + telemetry_out);
    obs::Registry::instance().snapshot().write_json(os);
    std::cerr << "telemetry written to " << telemetry_out << "\n";
  }
  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    WASP_CHECK_MSG(os.good(), "cannot open trace file: " + trace_out);
    obs::SpanTracer::instance().write_chrome_trace(os);
    std::cerr << "trace events written to " << trace_out << "\n";
  }
}

}  // namespace wasp::toolcli
