// wasp_run — run an exemplar workload on the simulated cluster, write its
// Recorder-style trace log, characterization YAML, and advisor report.
//
//   wasp_run <workload> [--nodes N] [--optimized] [--trace out.wtrc]
//            [--yaml out.yaml] [--csv out.csv] [--test-scale] [--jobs N]
//            [--faults SPEC] [--telemetry out.json] [--trace-out out.trace.json]
//            [--report out.manifest.json]
//
// <workload> is a registry id; `wasp_run --list` prints them all.
#include <chrono>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>

#include "advisor/rules.hpp"
#include "sim/faults.hpp"
#include "telemetry_cli.hpp"
#include "trace/log_io.hpp"
#include "util/parallel.hpp"
#include "util/parse.hpp"
#include "workloads/registry.hpp"

using namespace wasp;

namespace {

void list_workloads(std::ostream& os) {
  os << "available workloads:\n";
  for (const auto& e : workloads::paper_workloads()) {
    os << "  " << e.id << "  (" << e.name << ")\n";
  }
}

void usage() {
  std::cerr
      << "usage: wasp_run <workload> [options]\n"
         "  --list          print the registered workload ids and exit\n"
         "  --nodes N       cluster size (default 32)\n"
         "  --optimized     apply the advisor's recommendations and re-run\n"
         "  --test-scale    use the reduced test-scale parameters\n"
         "  --trace FILE    write the Recorder-style binary trace log\n"
         "  --csv FILE      write the trace as CSV\n"
         "  --yaml FILE     write the characterization YAML"
         " (default: stdout)\n"
         "  --jobs N        worker threads for the analysis pipeline\n"
         "  --faults SPEC   deterministic fault schedule, e.g.\n"
         "                  'seed=7; pfs: eio=0.01, slow=0.05, spike=20ms'\n"
         "  --telemetry F   write the metrics-registry snapshot JSON\n"
         "  --trace-out F   write pipeline spans as Chrome trace-event"
         " JSON\n"
         "  --report F      write the run-manifest digest JSON\n";
  list_workloads(std::cerr);
}

/// Checked file sink for --yaml/--csv: a full disk or bad path is diagnosed
/// here instead of silently producing an empty or truncated file.
void write_file_or_die(const std::string& path, const std::string& what,
                       const std::function<void(std::ostream&)>& emit) {
  std::ofstream os(path);
  if (!os.good()) {
    std::cerr << "wasp_run: cannot open " << what << " for write: " << path
              << "\n";
    std::exit(1);
  }
  emit(os);
  os.flush();
  if (!os.good()) {
    std::cerr << "wasp_run: short write to " << what << ": " << path << "\n";
    std::exit(1);
  }
}

/// The stderr line is rendered from the injector's registry-backed cells,
/// so it always matches the faults.* counters in --telemetry/--report.
void print_fault_stats(const sim::FaultInjector& inj) {
  const auto st = inj.stats();
  std::cerr << "faults: " << st.io_errors << " EIO, " << st.enospc_errors
            << " ENOSPC, " << st.meta_errors << " metadata errors, "
            << st.spikes << " latency spikes ("
            << util::format_seconds(static_cast<double>(st.spike_ns) / 1e9)
            << "), " << st.retries << " retries, " << st.exhausted
            << " ops exhausted retry budget\n";
}

int run_main(int argc, char** argv) {
  const auto wall_t0 = std::chrono::steady_clock::now();
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string name = argv[1];
  if (name == "--list") {
    list_workloads(std::cout);
    return 0;
  }
  const int index = workloads::find_workload(name);
  if (index < 0) {
    std::cerr << "unknown workload: " << name << "\n";
    list_workloads(std::cerr);
    return 2;
  }

  int nodes = 32;
  bool optimized = false;
  bool test_scale = false;
  std::string trace_out;
  std::string csv_out;
  std::string yaml_out;
  std::string telemetry_out;
  std::string spans_out;
  std::string report_out;
  advisor::RunConfig cfg;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes = static_cast<int>(util::cli_int(arg, next(), &usage));
    } else if (arg == "--optimized") {
      optimized = true;
    } else if (arg == "--test-scale") {
      test_scale = true;
    } else if (arg == "--trace") {
      trace_out = next();
    } else if (arg == "--csv") {
      csv_out = next();
    } else if (arg == "--yaml") {
      yaml_out = next();
    } else if (arg == "--jobs") {
      util::set_default_jobs(static_cast<int>(util::cli_int(arg, next(),
                                                            &usage)));
    } else if (arg == "--faults") {
      const std::string spec = next();
      try {
        cfg.faults = sim::FaultPlan::parse(spec);
      } catch (const util::SimError& e) {
        std::cerr << "wasp_run: " << e.what() << "\n";
        usage();
        return 2;
      }
    } else if (arg == "--telemetry") {
      telemetry_out = next();
    } else if (arg == "--trace-out") {
      spans_out = next();
    } else if (arg == "--report") {
      report_out = next();
    } else {
      usage();
      return 2;
    }
  }
  toolcli::enable_telemetry(telemetry_out, spans_out, report_out);

  const auto entry =
      workloads::paper_workloads()[static_cast<std::size_t>(index)];
  auto workload = test_scale ? entry.make_test() : entry.make_paper();

  std::cerr << "running " << entry.name << " on " << nodes << " nodes...\n";
  runtime::Simulation sim(cluster::lassen(nodes));
  auto out = workloads::run_with(sim, workload, cfg,
                                 analysis::Analyzer::Options{});
  if (sim.faults() != nullptr) print_fault_stats(*sim.faults());

  if (optimized) {
    std::cerr << "advisor:\n"
              << advisor::RuleEngine::report(out.recommendations);
    auto opt_cfg = advisor::RuleEngine::configure(out.recommendations);
    // The advisor never tunes the fault schedule: the optimized re-run must
    // face the same faults the baseline did, or the comparison is apples
    // to oranges.
    opt_cfg.faults = cfg.faults;
    std::cerr << "re-running optimized...\n";
    runtime::Simulation sim2(cluster::lassen(nodes));
    auto opt = workloads::run_with(sim2, workload, opt_cfg,
                                   analysis::Analyzer::Options{});
    if (sim2.faults() != nullptr) print_fault_stats(*sim2.faults());
    std::cerr << "baseline  I/O time: "
              << util::format_seconds(out.profile.io_time_fraction *
                                      out.job_seconds)
              << "\noptimized I/O time: "
              << util::format_seconds(opt.profile.io_time_fraction *
                                      opt.job_seconds)
              << "\n";
    if (!trace_out.empty()) trace::write_log(trace_out, sim2.tracer());
    if (!csv_out.empty()) {
      write_file_or_die(csv_out, "CSV trace", [&](std::ostream& os) {
        trace::write_csv(os, sim2.tracer());
      });
    }
    out = std::move(opt);
  } else {
    if (!trace_out.empty()) trace::write_log(trace_out, sim.tracer());
    if (!csv_out.empty()) {
      write_file_or_die(csv_out, "CSV trace", [&](std::ostream& os) {
        trace::write_csv(os, sim.tracer());
      });
    }
  }

  std::cerr << "job " << util::format_seconds(out.job_seconds) << ", "
            << util::format_bytes(out.profile.totals.io_bytes()) << " I/O, "
            << out.profile.files.size() << " files\n";

  const std::string yaml = out.characterization.to_yaml();
  if (yaml_out.empty()) {
    std::cout << yaml;
  } else {
    write_file_or_die(yaml_out, "characterization YAML",
                      [&](std::ostream& os) { os << yaml; });
    std::cerr << "characterization written to " << yaml_out << "\n";
  }
  toolcli::write_telemetry(telemetry_out, spans_out);
  toolcli::write_report(report_out, "wasp_run", util::default_jobs(), "memory",
                        wall_t0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_main(argc, argv);
  } catch (const util::SimError& e) {
    std::cerr << "wasp_run: " << e.what() << "\n";
    return 1;
  }
}
