// wasp_report — read run artifacts back in: summarize a run manifest or
// Chrome trace, diff two manifests with tolerance bands, or gate bench
// results against a committed baseline.
//
//   wasp_report summarize <manifest.json|trace.json> [--top N]
//   wasp_report diff <a.manifest.json> <b.manifest.json>
//               [--tolerance X] [--tolerance NAME=X] [--all]
//   wasp_report check <BENCH_results.json> --baseline <baseline.json>
//               [--tolerance X] [--advisory] [--out FILE]
//
// Exit codes: 0 ok; diff: 1 on a tolerance breach; check: 1 on a perf
// regression (0 with --advisory), 3 on a schema/determinism violation
// (hard even in advisory mode); 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

using namespace wasp;
namespace rep = wasp::obs::report;

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  wasp_report summarize <manifest.json|trace.json> [--top N]\n"
         "  wasp_report diff <a.json> <b.json> [--tolerance X]"
         " [--tolerance NAME=X] [--all]\n"
         "  wasp_report check <results.json> --baseline <baseline.json>\n"
         "              [--tolerance X] [--advisory] [--out FILE]\n";
  return 2;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string fmt_pct(double rel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%", rel * 100.0);
  return buf;
}

void print_span_table(std::ostream& os, std::vector<obs::SpanAgg> spans,
                      std::size_t top) {
  std::uint64_t grand_self = 0;
  for (const auto& s : spans) grand_self += s.self_ns;
  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanAgg& a, const obs::SpanAgg& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  util::TablePrinter t("hot spans (by self time)");
  t.set_header({"span", "count", "total", "self", "self%"});
  for (std::size_t i = 0; i < std::min(top, spans.size()); ++i) {
    const auto& s = spans[i];
    const double share =
        grand_self == 0 ? 0.0
                        : static_cast<double>(s.self_ns) /
                              static_cast<double>(grand_self);
    t.add_row({s.name, std::to_string(s.count),
               fmt(static_cast<double>(s.total_ns) / 1e6) + "ms",
               fmt(static_cast<double>(s.self_ns) / 1e6) + "ms",
               fmt(share * 100.0) + "%"});
  }
  t.print(os);
  if (spans.size() > top) {
    os << "(" << spans.size() - top << " more spans; --top N to widen)\n";
  }
}

int cmd_summarize(const std::vector<std::string>& args) {
  std::string path;
  std::size_t top = 20;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--top" && i + 1 < args.size()) {
      top = static_cast<std::size_t>(std::strtoull(args[++i].c_str(),
                                                   nullptr, 10));
      if (top == 0) return usage();
    } else if (path.empty() && args[i][0] != '-') {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  // Sniff the document: a Chrome trace has "traceEvents", a manifest has
  // the wasp-run-manifest schema tag. Anything else is a diagnostic.
  const util::json::Value doc = util::json::parse_file(path);
  if (doc.is_object() && doc.get("traceEvents") != nullptr) {
    print_span_table(std::cout, rep::aggregate_chrome_trace(path), top);
    return 0;
  }
  const rep::ManifestView m = rep::load_manifest(path);
  std::cout << "manifest:      " << m.path << "\n"
            << "tool:          " << m.tool << " (jobs=" << m.jobs
            << ", backend=" << m.backend << ")\n"
            << "git:           " << m.git_sha << "\n"
            << "timestamp:     " << m.timestamp << "\n"
            << "hw threads:    " << m.hardware_threads << "\n"
            << "wall seconds:  " << fmt(m.wall_seconds) << "\n"
            << "metrics:       " << m.metrics.size() << " flattened entries\n";
  std::cout << "\n";
  print_span_table(std::cout, m.spans, top);
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  rep::DiffOptions opts;
  bool show_all = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tolerance" && i + 1 < args.size()) {
      const std::string v = args[++i];
      const auto eq = v.find('=');
      if (eq == std::string::npos) {
        opts.tolerance = std::strtod(v.c_str(), nullptr);
      } else {
        opts.overrides.emplace_back(v.substr(0, eq),
                                    std::strtod(v.c_str() + eq + 1, nullptr));
      }
    } else if (args[i] == "--all") {
      show_all = true;
    } else if (args[i][0] != '-') {
      paths.push_back(args[i]);
    } else {
      return usage();
    }
  }
  if (paths.size() != 2) return usage();

  const rep::ManifestView a = rep::load_manifest(paths[0]);
  const rep::ManifestView b = rep::load_manifest(paths[1]);
  const auto deltas = rep::diff_manifests(a, b, opts);

  util::TablePrinter t("manifest diff: " + paths[0] + " -> " + paths[1]);
  t.set_header({"metric", "a", "b", "delta", "band", "verdict"});
  std::size_t breaches = 0;
  std::size_t changed = 0;
  for (const auto& d : deltas) {
    if (d.breach) ++breaches;
    if (d.a != d.b) ++changed;
    if (!show_all && d.a == d.b && !d.breach) continue;
    const std::string band = d.deterministic ? "exact"
                             : d.tolerance < 0 ? "report"
                                               : fmt(d.tolerance * 100.0) + "%";
    t.add_row({d.name, fmt(d.a), fmt(d.b), fmt_pct(d.rel), band,
               d.breach ? "BREACH" : "ok"});
  }
  t.print(std::cout);
  std::cout << deltas.size() << " metrics compared, " << changed
            << " changed, " << breaches << " breached\n";
  return breaches == 0 ? 0 : 1;
}

int cmd_check(const std::vector<std::string>& args) {
  std::string results_path;
  std::string baseline_path;
  std::string out_path;
  rep::CheckOptions opts;
  bool advisory = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--baseline" && i + 1 < args.size()) {
      baseline_path = args[++i];
    } else if (args[i] == "--tolerance" && i + 1 < args.size()) {
      opts.tolerance = std::strtod(args[++i].c_str(), nullptr);
    } else if (args[i] == "--advisory") {
      advisory = true;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (results_path.empty() && args[i][0] != '-') {
      results_path = args[i];
    } else {
      return usage();
    }
  }
  if (results_path.empty() || baseline_path.empty()) return usage();

  const rep::BenchResults results = rep::load_bench_results(results_path);
  const rep::BenchResults baseline = rep::load_bench_results(baseline_path);
  const rep::Verdict verdict = rep::check_bench_results(results, baseline,
                                                        opts);

  for (const auto& c : verdict.checks) {
    if (c.status == rep::Check::Status::kPass) continue;
    std::cerr << (c.status == rep::Check::Status::kViolation ? "VIOLATION"
                                                             : "REGRESSION")
              << " " << c.entry << " " << c.metric << ": baseline "
              << fmt(c.baseline) << ", current " << fmt(c.current) << " ("
              << fmt_pct(c.rel) << ")\n";
  }
  for (const auto& n : verdict.notes) std::cerr << "note: " << n << "\n";
  std::cerr << "verdict: " << verdict.verdict_string() << " ("
            << verdict.checks.size() << " checks"
            << (advisory ? ", advisory mode" : "") << ")\n";

  if (out_path.empty()) {
    verdict.write_json(std::cout, results_path, baseline_path, opts.tolerance,
                       advisory);
  } else {
    std::ofstream os(out_path);
    WASP_CHECK_MSG(os.good(), "cannot open verdict file: " + out_path);
    verdict.write_json(os, results_path, baseline_path, opts.tolerance,
                       advisory);
    std::cerr << "verdict written to " << out_path << "\n";
  }
  return verdict.exit_code(advisory);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  for (const auto& a : args) {
    if (a.empty()) return usage();
  }
  try {
    if (cmd == "summarize") return cmd_summarize(args);
    if (cmd == "diff") return cmd_diff(args);
    if (cmd == "check") return cmd_check(args);
  } catch (const util::SimError& e) {
    std::cerr << "wasp_report: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "wasp_report: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
