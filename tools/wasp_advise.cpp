// wasp_advise — the storage system's side of the paper's vision: load a
// user-provided characterization YAML (from wasp_run or any other source)
// and print the configuration the storage system would set for itself.
//
//   wasp_advise <features.yaml>
#include <iostream>

#include "advisor/rules.hpp"
#include "core/yaml_loader.hpp"

using namespace wasp;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: wasp_advise <features.yaml>\n";
    return 2;
  }
  const auto c = charz::load_yaml_file(argv[1]);
  std::cout << "workload: " << c.workload << "  (" << c.workflow.num_apps
            << " apps, " << util::format_bytes(c.workflow.io_amount)
            << " I/O, " << c.job.nodes << " nodes)\n\n";

  advisor::RuleEngine rules;
  const auto recs = rules.evaluate(c);
  std::cout << advisor::RuleEngine::report(recs);

  const auto cfg = advisor::RuleEngine::configure(recs);
  std::cout << "\nresulting storage configuration:\n"
            << "  stripe_size             = "
            << util::format_bytes(cfg.stripe_size) << "\n"
            << "  shared_file_locking     = "
            << (cfg.shared_file_locking ? "true" : "false") << "\n"
            << "  stdio_buffer            = "
            << util::format_bytes(cfg.stdio_buffer) << "\n"
            << "  mpiio.cb_buffer         = "
            << util::format_bytes(cfg.mpiio.cb_buffer) << "\n"
            << "  hdf5_chunking           = "
            << (cfg.hdf5_chunking ? util::format_bytes(cfg.hdf5_chunk_size)
                                  : "off")
            << "\n"
            << "  preload_input           = "
            << (cfg.preload_input_to_node_local ? cfg.node_local_tier : "off")
            << "\n"
            << "  intermediates           = "
            << (cfg.intermediates_to_node_local ? cfg.node_local_tier
                                                : "PFS")
            << "\n"
            << "  locality_placement      = "
            << (cfg.locality_aware_placement ? "true" : "false") << "\n"
            << "  async_checkpoint_drain  = "
            << (cfg.async_checkpoint_drain ? "true" : "false") << "\n";
  return 0;
}
