// wasp_pattern — dump, replay, and mutate the declarative I/O-pattern IR.
//
//   wasp_pattern dump   <workload|pattern.yaml> [options]
//   wasp_pattern replay <workload|pattern.yaml> [options]
//   wasp_pattern whatif <workload|pattern.yaml> <rewrites...> [options]
//
// `dump` compiles a registry workload (or re-parses a dumped file) and
// prints the pattern YAML. `replay` drives the pattern through the generic
// replayer and prints the characterization, exactly as wasp_run would for
// the imperative model. `whatif` applies §IV-D rewrites as pure IR -> IR
// transforms, then replays baseline and variant and reports the delta.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "advisor/pattern_rewrites.hpp"
#include "pattern/replayer.hpp"
#include "sim/faults.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"
#include "workloads/registry.hpp"

using namespace wasp;

namespace {

void usage() {
  std::cerr
      << "usage: wasp_pattern <dump|replay|whatif> <workload|file.yaml>"
         " [options]\n"
         "  common options:\n"
         "    --test-scale       use the reduced test-scale parameters\n"
         "    --nodes N          cluster size (default 32)\n"
         "    --faults SPEC      deterministic fault schedule for the\n"
         "                       replay (also serialized by dump)\n"
         "    --out FILE         write the pattern YAML here (dump/whatif)\n"
         "    --yaml FILE        write the characterization YAML here\n"
         "  whatif rewrites (applied in order given):\n"
         "    --transfer SIZE    rescale constant transfers (e.g. 16MB)\n"
         "    --interface LAYER  posix|stdio for plain open/IO chains\n"
         "    --stdio-buffer SIZE  setvbuf size for stdio lanes\n"
         "    --hdf5-chunk SIZE  HDF5 dataset chunk size (0 = off)\n"
         "    --redirect FROM TO rewrite path prefixes (shm staging)\n"
         "    --preload MOUNT    stage inputs into the node-local tier\n"
         "                       mounted at MOUNT (e.g. /dev/shm)\n"
         "    --dump             print the rewritten pattern, don't replay\n"
         "  workloads: ";
  for (const auto& e : workloads::paper_workloads()) {
    std::cerr << e.id << " ";
  }
  std::cerr << "\n";
}

[[noreturn]] void die(const std::string& msg) {
  std::cerr << "wasp_pattern: " << msg << "\n";
  std::exit(2);
}

util::Bytes bytes_arg(const std::string& text) {
  // Accept both plain byte counts and the tables' "16MB" format.
  if (auto b = util::parse_bytes(text)) return *b;
  if (auto n = util::parse_uint(text)) return static_cast<util::Bytes>(*n);
  die("bad size: " + text);
}

struct PatternSource {
  std::string yaml_text;    ///< non-empty when loaded from a file
  int registry_index = -1;  ///< >= 0 when naming a registry workload
};

PatternSource resolve_source(const std::string& spec) {
  PatternSource src;
  src.registry_index = workloads::find_workload(spec);
  if (src.registry_index >= 0) return src;
  std::ifstream is(spec);
  if (!is) die("not a workload id or readable file: " + spec);
  std::ostringstream buf;
  buf << is.rdbuf();
  src.yaml_text = buf.str();
  return src;
}

/// Compile or parse the pattern. File-loaded patterns still need a live
/// Simulation only for replay, not for parsing.
pattern::JobPattern make_pattern(const PatternSource& src,
                                 runtime::Simulation& sim,
                                 const workloads::Workload& w,
                                 const advisor::RunConfig& cfg) {
  if (!src.yaml_text.empty()) return pattern::pattern_from_yaml(src.yaml_text);
  WASP_CHECK_MSG(static_cast<bool>(w.compile),
                 "workload has no pattern compiler");
  return w.compile(sim, cfg);
}

/// The registry workload whose setup/decl frame the replay: the one named
/// on the command line, or — for file-loaded patterns — the one whose id
/// matches the pattern's name.
workloads::RegistryEntry frame_entry(const PatternSource& src,
                                     const pattern::JobPattern* pat) {
  int index = src.registry_index;
  if (index < 0 && pat) index = workloads::find_workload(pat->name);
  if (index < 0) {
    die("pattern names no registry workload (name: " +
        (pat ? pat->name : std::string("?")) + ")");
  }
  return workloads::paper_workloads()[static_cast<std::size_t>(index)];
}

workloads::RunOutput replay_pattern(const pattern::JobPattern& pat,
                                    const workloads::Workload& frame,
                                    int nodes) {
  workloads::Workload w;
  w.decl = frame.decl;
  w.setup = frame.setup;
  w.launch = [&pat](runtime::Simulation& sim, const advisor::RunConfig&) {
    pattern::replay(sim, pat);
  };
  runtime::Simulation sim(cluster::lassen(nodes));
  return workloads::run_with(sim, w, advisor::RunConfig{},
                             analysis::Analyzer::Options{});
}

void emit(const std::string& text, const std::string& path,
          const char* what) {
  if (path.empty()) {
    std::cout << text;
  } else {
    std::ofstream os(path);
    os << text;
    std::cerr << what << " written to " << path << "\n";
  }
}

void report(const char* tag, const workloads::RunOutput& out) {
  std::cerr << tag << ": job " << util::format_seconds(out.job_seconds)
            << ", I/O " << util::format_bytes(out.profile.totals.io_bytes())
            << ", io-time "
            << util::format_seconds(out.profile.io_time_fraction *
                                    out.job_seconds)
            << ", " << out.profile.files.size() << " files\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command != "dump" && command != "replay" && command != "whatif") {
    usage();
    return 2;
  }

  int nodes = 32;
  bool test_scale = false;
  bool dump_only = false;
  std::string out_file;
  std::string yaml_file;
  sim::FaultPlan faults;
  // Rewrites are queued and applied in command-line order.
  std::vector<std::function<void(pattern::JobPattern&)>> rewrites;

  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) die("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes = static_cast<int>(util::cli_int(arg, next(), &usage));
    } else if (arg == "--faults") {
      try {
        faults = sim::FaultPlan::parse(next());
      } catch (const util::SimError& e) {
        die(e.what());
      }
    } else if (arg == "--test-scale") {
      test_scale = true;
    } else if (arg == "--out") {
      out_file = next();
    } else if (arg == "--yaml") {
      yaml_file = next();
    } else if (arg == "--dump") {
      dump_only = true;
    } else if (arg == "--transfer") {
      const auto size = bytes_arg(next());
      rewrites.push_back([size](pattern::JobPattern& p) {
        std::cerr << "rewrite: transfer -> " << util::format_bytes(size)
                  << " (" << advisor::set_transfer_size(p, size)
                  << " ops)\n";
      });
    } else if (arg == "--interface") {
      const auto layer = pattern::layer_from(next());
      rewrites.push_back([layer](pattern::JobPattern& p) {
        std::cerr << "rewrite: interface -> " << pattern::to_string(layer)
                  << " (" << advisor::set_interface(p, layer) << " ops)\n";
      });
    } else if (arg == "--stdio-buffer") {
      const auto size = bytes_arg(next());
      rewrites.push_back([size](pattern::JobPattern& p) {
        advisor::set_stdio_buffer(p, size);
      });
    } else if (arg == "--hdf5-chunk") {
      const auto size = bytes_arg(next());
      rewrites.push_back([size](pattern::JobPattern& p) {
        advisor::set_hdf5_chunking(p, size);
      });
    } else if (arg == "--redirect") {
      const std::string from = next();
      const std::string to = next();
      rewrites.push_back([from, to](pattern::JobPattern& p) {
        advisor::redirect_prefix(p, from, to);
      });
    } else if (arg == "--preload") {
      const std::string mount = next();
      rewrites.push_back([mount](pattern::JobPattern& p) {
        advisor::PreloadSpec spec;
        if (!advisor::preload_spec_from_meta(p, mount, &spec)) {
          die("pattern carries no preload metadata");
        }
        advisor::apply_preload(p, spec);
      });
    } else {
      die("unknown option: " + arg);
    }
  }
  if (command != "whatif" && (!rewrites.empty() || dump_only)) {
    die("rewrite options are only valid with the whatif command");
  }

  try {
    const PatternSource src = resolve_source(argv[2]);
    // A throwaway Simulation gives compilers their mount table; replays
    // always run on a fresh one.
    runtime::Simulation compile_sim(cluster::lassen(nodes));
    workloads::Workload frame;
    pattern::JobPattern pat;
    if (src.registry_index >= 0) {
      const auto entry = frame_entry(src, nullptr);
      frame = test_scale ? entry.make_test() : entry.make_paper();
      pat = make_pattern(src, compile_sim, frame, advisor::RunConfig{});
    } else {
      pat = pattern::pattern_from_yaml(src.yaml_text);
      const auto entry = frame_entry(src, &pat);
      frame = test_scale ? entry.make_test() : entry.make_paper();
    }
    // --faults overrides any plan the pattern already carries; dump then
    // serializes it, and replay installs it (replay() honors pat.faults).
    if (faults.enabled()) pat.faults = faults;

    if (command == "dump") {
      emit(pattern::to_yaml(pat), out_file, "pattern");
      return 0;
    }

    if (command == "replay") {
      auto out = replay_pattern(pat, frame, nodes);
      report("replay", out);
      emit(out.characterization.to_yaml(), yaml_file, "characterization");
      return 0;
    }

    // whatif: keep the baseline, rewrite a copy, compare.
    pattern::JobPattern variant = pat;
    for (const auto& rw : rewrites) rw(variant);
    if (dump_only) {
      emit(pattern::to_yaml(variant), out_file, "pattern");
      return 0;
    }
    auto base = replay_pattern(pat, frame, nodes);
    auto what = replay_pattern(variant, frame, nodes);
    report("baseline", base);
    report("what-if ", what);
    const double speedup =
        what.job_seconds > 0 ? base.job_seconds / what.job_seconds : 0.0;
    std::cerr << "speedup: " << speedup << "x\n";
    emit(what.characterization.to_yaml(), yaml_file, "characterization");
    return 0;
  } catch (const util::SimError& e) {
    std::cerr << "wasp_pattern: " << e.what() << "\n";
    return 1;
  }
}
