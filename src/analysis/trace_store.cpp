#include "analysis/trace_store.hpp"

#include <algorithm>

namespace wasp::analysis {

std::int16_t TraceStore::max_fs() const {
  std::int16_t m = -1;
  Cursor cs(*this);
  for (std::size_t i = 0, n = size(); i < n; ++i) {
    m = std::max(m, cs.file(i).fs);
  }
  return m;
}

trace::Record TraceStore::row(std::size_t i) const {
  const ChunkHandle h = chunk(i / chunk_rows());
  const ChunkColumns& c = h.cols;
  const std::size_t k = i - c.base;
  trace::Record r;
  r.app = c.app[k];
  r.rank = c.rank[k];
  r.node = c.node[k];
  r.iface = c.iface[k];
  r.op = c.op[k];
  r.file = {c.fs[k], c.file[k]};
  r.offset = c.offset[k];
  r.size = c.size[k];
  r.count = c.count[k];
  r.tstart = c.tstart[k];
  r.tend = c.tend[k];
  return r;
}

void Cursor::seek(std::size_t i) {
  // Drop the old pin before fetching: a bounded spill cache must never hold
  // two chunks on this cursor's account.
  handle_ = ChunkHandle{};
  handle_ = store_->span_at(i);
}

ChunkSpan Cursor::span(std::size_t i, std::size_t limit) {
  const ChunkColumns& c = at(i);
  const std::size_t k = i - c.base;
  ChunkSpan s;
  s.begin = i;
  s.rows = std::min(c.base + c.rows, limit) - i;
  s.app = c.app + k;
  s.rank = c.rank + k;
  s.node = c.node + k;
  s.iface = c.iface + k;
  s.op = c.op + k;
  s.fs = c.fs + k;
  s.file = c.file + k;
  s.offset = c.offset + k;
  s.size = c.size + k;
  s.count = c.count + k;
  s.tstart = c.tstart + k;
  s.tend = c.tend + k;
  if (c.path_idx != nullptr) s.path_idx = c.path_idx + k;
  if (c.file_size != nullptr) s.file_size = c.file_size + k;
  return s;
}

}  // namespace wasp::analysis
