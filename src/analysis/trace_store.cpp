#include "analysis/trace_store.hpp"

#include <algorithm>

namespace wasp::analysis {

std::int16_t TraceStore::max_fs() const {
  std::int16_t m = -1;
  Cursor cs(*this);
  for (std::size_t i = 0, n = size(); i < n; ++i) {
    m = std::max(m, cs.file(i).fs);
  }
  return m;
}

trace::Record TraceStore::row(std::size_t i) const {
  const ChunkHandle h = chunk(i / chunk_rows());
  const ChunkColumns& c = h.cols;
  const std::size_t k = i - c.base;
  trace::Record r;
  r.app = c.app[k];
  r.rank = c.rank[k];
  r.node = c.node[k];
  r.iface = c.iface[k];
  r.op = c.op[k];
  r.file = {c.fs[k], c.file[k]};
  r.offset = c.offset[k];
  r.size = c.size[k];
  r.count = c.count[k];
  r.tstart = c.tstart[k];
  r.tend = c.tend[k];
  return r;
}

void Cursor::seek(std::size_t i) {
  // Drop the old pin before fetching: a bounded spill cache must never hold
  // two chunks on this cursor's account.
  handle_ = ChunkHandle{};
  handle_ = store_->chunk(i / store_->chunk_rows());
}

}  // namespace wasp::analysis
