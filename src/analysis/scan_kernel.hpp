// The analyzer's map step: one chunk's pass over its row range, producing
// the ChunkState partial that analyze_store() merges in chunk-index order.
//
// Two implementations produce byte-identical ChunkStates:
//
//  - scan_chunk(): batched columnar kernels. The range is walked as
//    contiguous ChunkSpans (one residency resolution per storage chunk) and
//    each span goes through two tight passes: app bookkeeping + job time
//    range over every record, then one fused decode of the I/O records (op
//    breakdowns, size histograms + interval collection, file bookkeeping +
//    sequentiality). Per-row state lives in dense structures
//    (apps indexed by id, files interned once per row into an
//    open-addressed FileTable, flat hash maps for rank/size keys) that are
//    sorted into ChunkState's key-ordered vectors once per chunk.
//
//  - scan_chunk_reference(): the scalar row-at-a-time loop, kept as the
//    equivalence oracle behind Analyzer::Options::reference_scan. Tests
//    assert the two produce byte-identical profiles across backends, job
//    counts, and chunk_rows values.
//
// The determinism argument: every aggregate is accumulated per key in row
// order in both paths (splitting the row loop into per-category passes
// reorders accumulation *across* independent accumulators, never within
// one), integer aggregates are order-free, and the dense->ordered sort at
// finalize reproduces exactly the key order the std::map/std::set path
// would have built up incrementally. Hence profiles stay byte-identical at
// any --jobs, any chunk_rows, and on both backends.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/profile.hpp"
#include "analysis/trace_store.hpp"
#include "util/parallel.hpp"

namespace wasp::analysis {

/// Analysis-scope file identity: node-local files with the same inode id on
/// different nodes are distinct.
struct ScopedFile {
  std::int16_t fs;
  int node_scope;  // -1 for shared filesystems
  fs::FileId file;
  bool operator<(const ScopedFile& o) const noexcept {
    return std::tie(fs, node_scope, file) <
           std::tie(o.fs, o.node_scope, o.file);
  }
  bool operator==(const ScopedFile& o) const noexcept {
    return fs == o.fs && node_scope == o.node_scope && file == o.file;
  }
};

/// Accumulate one decoded I/O row into an ops breakdown. Callers decode the
/// row once and pass the pieces — the scan paths and the phases pass share
/// this instead of re-reading columns per call-site.
inline void add_op(OpsBreakdown& b, trace::Op op, std::uint64_t n,
                   fs::Bytes total_bytes, double duration_sec) {
  if (op == trace::Op::kRead) {
    b.read_ops += n;
    b.read_bytes += total_bytes;
    b.data_sec += duration_sec;
  } else if (op == trace::Op::kWrite) {
    b.write_ops += n;
    b.write_bytes += total_bytes;
    b.data_sec += duration_sec;
  } else if (trace::is_meta(op)) {
    b.meta_ops += n;
    b.meta_sec += duration_sec;
  }
}

using Interval = std::pair<sim::Time, sim::Time>;

/// Per-(scoped file, rank) access-stream summary for the sequentiality
/// reduction. Whether a chunk's *first* op on a stream continues the
/// previous chunk's stream is only decidable at merge time, so the chunk
/// records the stream's entry offset and defers that single op's verdict.
struct StreamState {
  fs::Bytes first_offset = 0;
  fs::Bytes last_end = 0;
};

/// One (scoped file, rank) stream a chunk touched, in (sf, rank) key order.
struct StreamEntry {
  ScopedFile sf;
  std::int32_t rank;
  StreamState state;
};

/// Everything a chunk knows about one scoped file, consolidated from what
/// used to be four separate ScopedFile-keyed maps so the reduce step walks
/// one sorted vector per chunk instead of re-looking-up every key four
/// times.
struct FileAgg {
  ScopedFile sf;
  FileStats stats;
  std::size_t first_row = 0;              ///< row whose path/size resolve it
  std::vector<std::int32_t> readers;      ///< distinct ranks, ascending
  std::vector<std::int32_t> writers;      ///< distinct ranks, ascending
};

/// Everything one row chunk contributes; merged in chunk-index order.
///
/// Large keyed state (files, streams, per-proc I/O time, transfer sizes) is
/// carried as key-sorted vectors, not maps: the map step emits each vector
/// once (already sorted), and the reduce step folds chunk vectors into the
/// global ones with linear two-pointer merges — no per-key tree walks or
/// node allocations on either side. Small keyed state (apps, procs, nodes,
/// per-app interface counts) stays in ordered containers; those have at
/// most a few hundred keys and the merge cost is noise.
struct ChunkState {
  sim::Time job_t0 = 0;
  sim::Time job_t1 = 0;
  OpsBreakdown totals;
  std::map<std::uint16_t, AppStats> apps;
  std::vector<FileAgg> files;  ///< sorted by ScopedFile
  std::vector<std::pair<std::uint64_t, double>>
      rank_io_sec;  ///< key (app<<32|rank), sorted
  std::set<std::pair<std::uint16_t, std::int32_t>> procs;
  std::set<std::int32_t> nodes;
  std::map<std::pair<std::uint16_t, trace::Iface>, std::uint64_t> iface_ops;
  std::vector<StreamEntry> streams;  ///< sorted by (sf, rank)
  std::uint64_t seq_ops = 0;  ///< excludes each stream's deferred first op
  std::uint64_t pattern_ops = 0;
  std::vector<std::pair<fs::Bytes, std::uint64_t>>
      size_counts;  ///< sorted by size
  std::vector<Interval> io_intervals;
  util::SizeHistogram read_hist = util::SizeHistogram::paper_buckets();
  util::SizeHistogram write_hist = util::SizeHistogram::paper_buckets();
  std::vector<std::vector<Interval>> read_iv;
  std::vector<std::vector<Interval>> write_iv;
  std::map<std::uint16_t, std::vector<std::size_t>> io_by_app;
};

/// The batched columnar map step (the default path).
ChunkState scan_chunk(const TraceStore& store, const util::ChunkRange& range,
                      const std::vector<std::string>& app_names,
                      const std::vector<char>& fs_is_shared);

/// The scalar row-at-a-time map step — the equivalence oracle for the
/// kernels, selected by Analyzer::Options::reference_scan.
ChunkState scan_chunk_reference(const TraceStore& store,
                                const util::ChunkRange& range,
                                const std::vector<std::string>& app_names,
                                const std::vector<char>& fs_is_shared);

}  // namespace wasp::analysis
