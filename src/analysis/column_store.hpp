// Column-major trace storage — the stand-in for the Analyzer's
// Recorder-log -> parquet conversion. Row-major Recorder logs are expensive
// to filter/aggregate; the paper converts to parquet and processes with
// DASK. Analysis here runs over these columns, optionally filled and
// scanned chunk-parallel (fixed chunking, chunk-order merges — results are
// independent of the job count).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analysis/trace_store.hpp"
#include "trace/record.hpp"
#include "util/parallel.hpp"

namespace wasp::analysis {

class ColumnStore : public TraceStore {
 public:
  /// Transpose records into columns. With jobs > 1 the fill runs
  /// chunk-parallel over preallocated columns (each chunk writes a disjoint
  /// row range), producing the same store as the sequential fill.
  static ColumnStore from_records(std::span<const trace::Record> records,
                                  int jobs = 1);

  std::size_t size() const noexcept override { return app_.size(); }
  bool empty() const noexcept { return app_.empty(); }

  /// Storage-chunk size of the TraceStore view. Purely a view property —
  /// chunks are zero-copy slices of the contiguous columns, so any value
  /// yields identical analysis results.
  std::size_t chunk_rows() const noexcept override { return chunk_rows_; }
  void set_chunk_rows(std::size_t rows) noexcept {
    chunk_rows_ = rows > 0 ? rows : 1;
  }
  ChunkHandle chunk(std::size_t chunk_index) const override;
  /// Every chunk view aliases the same contiguous columns, so the maximal
  /// contiguous view is the whole store: a sequential scan (span-batched or
  /// row-at-a-time through a Cursor) resolves residency exactly once.
  ChunkHandle span_at(std::size_t row) const override;

  /// Direct scan over the contiguous fs column — no chunk handles needed.
  std::int16_t max_fs() const override;

  // Column accessors.
  std::uint16_t app(std::size_t i) const { return app_[i]; }
  std::int32_t rank(std::size_t i) const { return rank_[i]; }
  std::int32_t node(std::size_t i) const { return node_[i]; }
  trace::Iface iface(std::size_t i) const { return iface_[i]; }
  trace::Op op(std::size_t i) const { return op_[i]; }
  trace::FileKey file(std::size_t i) const { return {fs_[i], file_[i]}; }
  fs::Bytes offset(std::size_t i) const { return offset_[i]; }
  fs::Bytes size_col(std::size_t i) const { return size_[i]; }
  std::uint32_t count(std::size_t i) const { return count_[i]; }
  sim::Time tstart(std::size_t i) const { return tstart_[i]; }
  sim::Time tend(std::size_t i) const { return tend_[i]; }

  fs::Bytes total_bytes(std::size_t i) const {
    return size_[i] * static_cast<fs::Bytes>(count_[i]);
  }
  double duration_sec(std::size_t i) const {
    return sim::to_seconds(tend_[i] - tstart_[i]);
  }

  /// Reconstruct a row (tests, CSV export).
  trace::Record row(std::size_t i) const;

  /// Indices of rows matching a predicate over (store, index), ascending.
  template <typename Pred>
  std::vector<std::size_t> select(Pred pred) const {
    std::vector<std::size_t> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) {
      if (pred(*this, i)) out.push_back(i);
    }
    return out;
  }

  /// select() with the predicate evaluated chunk-parallel; per-chunk hits
  /// are concatenated in chunk-index order, so the result is exactly the
  /// sequential select() for any job count.
  template <typename Pred>
  std::vector<std::size_t> select(Pred pred, int jobs,
                                  std::size_t grain = 65536) const {
    const auto hits = util::parallel_map(
        jobs, size(), grain,
        [&](const util::ChunkRange& c) {
          std::vector<std::size_t> local;
          local.reserve(c.size());
          for (std::size_t i = c.begin; i < c.end; ++i) {
            if (pred(*this, i)) local.push_back(i);
          }
          return local;
        });
    std::size_t total = 0;
    for (const auto& h : hits) total += h.size();
    std::vector<std::size_t> out;
    out.reserve(total);
    for (const auto& h : hits) out.insert(out.end(), h.begin(), h.end());
    return out;
  }

 private:
  std::size_t chunk_rows_ = 65536;
  std::vector<std::uint16_t> app_;
  std::vector<std::int32_t> rank_;
  std::vector<std::int32_t> node_;
  std::vector<trace::Iface> iface_;
  std::vector<trace::Op> op_;
  std::vector<std::int16_t> fs_;
  std::vector<fs::FileId> file_;
  std::vector<fs::Bytes> offset_;
  std::vector<fs::Bytes> size_;
  std::vector<std::uint32_t> count_;
  std::vector<sim::Time> tstart_;
  std::vector<sim::Time> tend_;
};

}  // namespace wasp::analysis
