// Dense keyed containers for the analyzer's hot loops: open-addressed
// variants of the small ordered containers the scan and phase sweeps would
// otherwise hammer row by row. All of them trade the ordered containers'
// per-row log(n) tree walks (and per-node allocations) for one hash probe,
// then let the caller sort the surviving keys once per chunk/phase — which
// reproduces the exact iteration order the ordered container would have
// had, keeping profiles byte-identical.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace wasp::analysis::dense {

inline std::uint64_t mix64(std::uint64_t x) noexcept {
  // splitmix64 finalizer — cheap and well-distributed for interning keys.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Open-addressed set of int32 ids (ranks, node ids).
class IdSet {
 public:
  void insert(std::int32_t v) {
    if (slots_.empty()) {
      slots_.assign(16, kEmpty);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
    std::int32_t& slot = slots_[probe(v)];
    if (slot == kEmpty) {
      slot = v;
      ++size_;
    }
  }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  /// Forget the members but keep the capacity (for per-phase reuse).
  void clear() noexcept {
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }
  /// Members in ascending (signed) order.
  std::vector<std::int32_t> sorted() const {
    std::vector<std::int32_t> out;
    out.reserve(size_);
    for (const std::int32_t v : slots_) {
      if (v != kEmpty) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static constexpr std::int32_t kEmpty =
      std::numeric_limits<std::int32_t>::min();
  std::size_t probe(std::int32_t v) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix64(static_cast<std::uint32_t>(v)) & mask;
    while (slots_[i] != kEmpty && slots_[i] != v) i = (i + 1) & mask;
    return i;
  }
  void rehash(std::size_t cap) {
    std::vector<std::int32_t> old = std::move(slots_);
    slots_.assign(cap, kEmpty);
    for (const std::int32_t v : old) {
      if (v != kEmpty) slots_[probe(v)] = v;
    }
  }
  std::vector<std::int32_t> slots_;
  std::size_t size_ = 0;
};

/// Open-addressed map from a uint64 key to V. Values accumulate in row
/// order per key (exactly like the std::map they replace); iteration order
/// is up to the caller, who sorts the items once per chunk.
template <typename V>
class FlatMap64 {
 public:
  /// Value slot for `key`, default-constructed on first touch.
  V& at_key(std::uint64_t key, bool& fresh) {
    if (slots_.empty()) {
      slots_.resize(16);
    } else if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.size() * 2);
    }
    Slot& s = slots_[probe(key)];
    fresh = !s.used;
    if (!s.used) {
      s.used = true;
      s.key = key;
      s.value = V{};  // slots are recycled across clear()
      ++size_;
    }
    return s.value;
  }
  V& operator[](std::uint64_t key) {
    bool fresh;
    return at_key(key, fresh);
  }
  bool empty() const noexcept { return size_ == 0; }
  /// Forget the entries but keep the capacity (for per-phase reuse).
  void clear() noexcept {
    for (Slot& s : slots_) s.used = false;
    size_ = 0;
  }
  /// All (key, value) items, unsorted.
  std::vector<std::pair<std::uint64_t, V>> items() const {
    std::vector<std::pair<std::uint64_t, V>> out;
    out.reserve(size_);
    for (const Slot& s : slots_) {
      if (s.used) out.emplace_back(s.key, s.value);
    }
    return out;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
    bool used = false;
  };
  std::size_t probe(std::uint64_t key) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix64(key) & mask;
    while (slots_[i].used && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }
  void rehash(std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(cap);
    for (Slot& s : old) {
      if (s.used) slots_[probe(s.key)] = std::move(s);
    }
  }
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace wasp::analysis::dense
