// SpillColumnStore — the spill-to-disk TraceStore backend (the on-disk
// parquet stand-in). Records append in trace order; every chunk_rows rows
// the open chunk's columns are written to one versioned chunk file in the
// spill directory and dropped from memory, so writing a trace of any length
// holds at most one open chunk. Reads load chunk files on demand into a
// bounded LRU cache of resident chunks.
//
// Chunk files are WSPCHK02 by default: each column is compressed
// independently (varint zigzag delta / RLE / raw, whichever is smallest —
// see chunk_codec.hpp). Options::compress = false writes the legacy raw
// WSPCHK01 layout; load_chunk reads both formats, so mixed directories
// from older runs stay readable.
//
// Concurrency: the cache mutex is never held across a disk read. A miss
// registers an in-flight future under the lock, loads and decodes the
// chunk off-lock, then publishes it; concurrent readers of the same chunk
// share the one load instead of stampeding, and readers of other chunks
// proceed in parallel. On sequential scans a background prefetch thread
// double-buffers: while the analyzer consumes chunk k, chunk k+1 is read
// and decoded so the next fetch is a cache hit.
//
// Memory bound: with K = max_resident_chunks and W concurrent cursors, at
// most K cached/in-flight chunks plus one buffer per cursor (a pin or an
// in-flight demand load — never both) plus the one prefetch buffer are
// alive: resident rows <= chunk_rows * (K + W + 1); a single-cursor scan
// with prefetch is bounded by chunk_rows * (K + 1). peak_resident_chunks()
// counts actual alive chunk buffers (cached, in-flight, or pinned) so
// tests can assert the bound.
//
// The store doubles as a trace::RecordSink so a Tracer can flush closed
// batches into it mid-run, and carries the offline log's auxiliary columns
// (path-table index, end-of-run file size) when fed from a LogReader.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "analysis/trace_store.hpp"
#include "obs/metrics.hpp"
#include "trace/sink.hpp"

namespace wasp::analysis {

class SpillColumnStore final : public TraceStore, public trace::RecordSink {
 public:
  struct Options {
    /// Spill directory; created on construction. Each store instance
    /// writes its chunk files under a unique per-instance subdirectory,
    /// so any number of stores (or processes) may share one dir. The
    /// destructor removes the instance subdirectory, and `dir` itself
    /// once it is empty.
    std::string dir;
    std::size_t chunk_rows = 65536;
    std::size_t max_resident_chunks = 8;
    /// Write per-column-compressed WSPCHK02 chunk files; false writes the
    /// legacy raw WSPCHK01 layout. Reads accept both regardless.
    bool compress = true;
    /// Double-buffered background read-ahead on sequential chunk scans.
    bool prefetch = true;
  };

  explicit SpillColumnStore(Options opts);
  ~SpillColumnStore() override;
  SpillColumnStore(const SpillColumnStore&) = delete;
  SpillColumnStore& operator=(const SpillColumnStore&) = delete;

  // --- Write side (single-threaded, before finalize) ----------------------
  void append(std::span<const trace::Record> records) override;
  /// Append with the offline log's auxiliary columns (parallel spans). A
  /// store is either aux or non-aux for its whole life — the first append
  /// decides, mixing is an error.
  void append(std::span<const trace::Record> records,
              std::span<const std::uint32_t> path_idx,
              std::span<const std::uint64_t> file_sizes);
  /// Flush the partial tail chunk and seal the store for reading (this is
  /// also where the prefetch thread starts). Required before
  /// chunk()/row(); append() afterwards is an error.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  // --- TraceStore ---------------------------------------------------------
  std::size_t size() const noexcept override { return total_rows_; }
  std::size_t chunk_rows() const noexcept override { return opts_.chunk_rows; }
  ChunkHandle chunk(std::size_t chunk_index) const override;
  /// Spans are capped at one storage chunk: chunk files decode into
  /// separate allocations, so a chunk is the largest contiguous view this
  /// backend can serve. Routing through chunk() keeps the LRU/pin
  /// accounting and the sequential-scan prefetcher working unchanged.
  ChunkHandle span_at(std::size_t row) const override {
    return chunk(row / opts_.chunk_rows);
  }
  std::int16_t max_fs() const override { return max_fs_; }
  IoStats io_stats() const override;

  // --- Auxiliary columns --------------------------------------------------
  bool has_aux() const noexcept { return has_aux_; }
  std::uint32_t path_idx_at(std::size_t i) const;
  fs::Bytes file_size_at(std::size_t i) const;

  // --- Observability ------------------------------------------------------
  std::size_t resident_chunks() const noexcept;
  std::size_t peak_resident_chunks() const noexcept;
  std::uint64_t chunk_loads() const noexcept { return loads_.value(); }
  std::uint64_t chunk_hits() const noexcept { return hits_.value(); }
  std::uint64_t chunk_evictions() const noexcept {
    return evictions_.value();
  }
  std::size_t spilled_chunks() const noexcept { return chunks_written_; }
  const Options& options() const noexcept { return opts_; }
  /// The per-instance directory the chunk files actually live in (a unique
  /// subdirectory of options().dir).
  const std::string& spill_dir() const noexcept { return dir_; }
  /// On-disk path of chunk `index` (tests corrupt files through this).
  std::string chunk_file_path(std::size_t index) const;
  /// Whether a chunk is currently in the LRU cache (tests use this to wait
  /// for the prefetcher deterministically).
  bool chunk_cached(std::size_t index) const;

 private:
  struct Columns {
    std::vector<std::uint16_t> app;
    std::vector<std::int32_t> rank;
    std::vector<std::int32_t> node;
    std::vector<trace::Iface> iface;
    std::vector<trace::Op> op;
    std::vector<std::int16_t> fs;
    std::vector<fs::FileId> file;
    std::vector<fs::Bytes> offset;
    std::vector<fs::Bytes> size;
    std::vector<std::uint32_t> count;
    std::vector<sim::Time> tstart;
    std::vector<sim::Time> tend;
    std::vector<std::uint32_t> path_idx;   // aux, empty when absent
    std::vector<std::uint64_t> file_size;  // aux, empty when absent
    std::size_t rows() const noexcept { return app.size(); }
  };

  /// Column ids in chunk-file declaration order (stats indexing).
  enum Col : std::size_t {
    kColApp, kColRank, kColNode, kColIface, kColOp, kColFs, kColFile,
    kColOffset, kColSize, kColCount, kColTstart, kColTend, kColPathIdx,
    kColFileSize, kNumCols,
  };

  /// Alive-chunk accounting, shared with every loaded chunk so buffers that
  /// outlive eviction (still pinned by a cursor) keep counting as resident.
  struct Residency {
    std::atomic<std::size_t> resident{0};
    std::atomic<std::size_t> peak{0};
  };

  struct ChunkData {
    Columns cols;
    /// Null until load_chunk fully validated the chunk and bumped the
    /// resident counter — the destructor's decrement is armed only then,
    /// so a throw mid-load cannot underflow the counter.
    std::shared_ptr<Residency> residency;
    ~ChunkData();
  };

  struct CacheEntry {
    std::shared_ptr<const ChunkData> data;
    std::list<std::size_t>::iterator lru_it;
    /// Inserted by the prefetch thread and not yet demanded.
    bool prefetched = false;
  };

  struct Inflight {
    std::shared_future<std::shared_ptr<const ChunkData>> fut;
    bool prefetch = false;
  };

  static constexpr std::size_t kNoChunk =
      std::numeric_limits<std::size_t>::max();

  void push_row(const trace::Record& r);
  void maybe_flush();
  void flush_open_chunk();
  template <typename T>
  void write_col_v2(std::ostream& os, const std::vector<T>& col, Col id);
  std::shared_ptr<const ChunkData> load_chunk(std::size_t index) const;
  /// Cache lookup / shared in-flight wait / off-lock load. Returns null
  /// only on the prefetch path when the chunk is already cached or being
  /// loaded by someone else.
  std::shared_ptr<const ChunkData> acquire_chunk(std::size_t index,
                                                 bool for_prefetch) const;
  /// Drop LRU victims until cached + in-flight fits the cap (mu_ held).
  void make_room_locked() const;
  void evict_lru_back_locked() const;
  void maybe_schedule_prefetch(std::size_t just_served) const;
  void prefetch_loop();
  ChunkColumns view_of(const ChunkData& data, std::size_t base) const;

  Options opts_;
  std::string dir_;  ///< per-instance subdirectory of opts_.dir
  bool has_aux_ = false;
  bool aux_decided_ = false;
  bool finalized_ = false;
  std::size_t total_rows_ = 0;
  std::size_t chunks_written_ = 0;
  std::int16_t max_fs_ = -1;
  Columns open_;

  // Write-side per-column stats (single writer thread, read only after
  // finalize). The byte totals live in CounterCells below.
  std::uint64_t col_raw_[kNumCols] = {};
  std::uint64_t col_stored_[kNumCols] = {};

  std::shared_ptr<Residency> residency_;
  mutable std::mutex mu_;
  mutable std::list<std::size_t> lru_;  // front = most recently used
  mutable std::unordered_map<std::size_t, CacheEntry> cache_;
  mutable std::unordered_map<std::size_t, Inflight> inflight_;
  mutable std::size_t last_seq_chunk_ = kNoChunk;  // guarded by mu_

  // Prefetch thread state. pf_target_ holds at most the single next chunk
  // (newer sequential progress overwrites it — double buffering, not a
  // queue).
  std::thread prefetch_thread_;
  mutable std::mutex pf_mu_;
  mutable std::condition_variable pf_cv_;
  mutable std::size_t pf_target_ = kNoChunk;
  bool pf_stop_ = false;

  // I/O counters as registry cells: every increment lands in this
  // instance's cell — io_stats() and the accessors above read the cell
  // back (per-instance view, same as the old raw atomics) — while the
  // registry folds all instances into process-wide "spill.*" totals.
  mutable obs::CounterCell loads_{"spill.chunk_loads"};
  mutable obs::CounterCell hits_{"spill.cache_hits"};
  mutable obs::CounterCell evictions_{"spill.evictions"};
  mutable obs::CounterCell prefetch_issued_{"spill.prefetch_issued"};
  mutable obs::CounterCell prefetch_hits_{"spill.prefetch_hits"};
  mutable obs::CounterCell prefetch_wasted_{"spill.prefetch_wasted"};
  mutable obs::CounterCell bytes_read_{"spill.bytes_read"};
  obs::CounterCell bytes_written_{"spill.bytes_written"};
  obs::CounterCell raw_bytes_{"spill.raw_bytes"};
};

}  // namespace wasp::analysis
