// SpillColumnStore — the spill-to-disk TraceStore backend (the on-disk
// parquet stand-in). Records append in trace order; every chunk_rows rows
// the open chunk's columns are written to one versioned chunk file in the
// spill directory and dropped from memory, so writing a trace of any length
// holds at most one open chunk. Reads load chunk files on demand into a
// bounded LRU cache of resident chunks.
//
// Memory bound: with K = max_resident_chunks and W concurrent cursors, at
// most K cached + (W-1) pinned-but-evicted chunks are alive, i.e. resident
// rows <= chunk_rows * (K + W - 1); single-cursor scans are bounded by
// chunk_rows * K exactly. peak_resident_chunks() counts actual alive chunk
// buffers (cached or pinned) so tests can assert the bound.
//
// The store doubles as a trace::RecordSink so a Tracer can flush closed
// batches into it mid-run, and carries the offline log's auxiliary columns
// (path-table index, end-of-run file size) when fed from a LogReader.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/trace_store.hpp"
#include "trace/sink.hpp"

namespace wasp::analysis {

class SpillColumnStore final : public TraceStore, public trace::RecordSink {
 public:
  struct Options {
    /// Spill directory; created on construction, chunk files are removed by
    /// the destructor.
    std::string dir;
    std::size_t chunk_rows = 65536;
    std::size_t max_resident_chunks = 8;
  };

  explicit SpillColumnStore(Options opts);
  ~SpillColumnStore() override;
  SpillColumnStore(const SpillColumnStore&) = delete;
  SpillColumnStore& operator=(const SpillColumnStore&) = delete;

  // --- Write side (single-threaded, before finalize) ----------------------
  void append(std::span<const trace::Record> records) override;
  /// Append with the offline log's auxiliary columns (parallel spans). A
  /// store is either aux or non-aux for its whole life — the first append
  /// decides, mixing is an error.
  void append(std::span<const trace::Record> records,
              std::span<const std::uint32_t> path_idx,
              std::span<const std::uint64_t> file_sizes);
  /// Flush the partial tail chunk and seal the store for reading. Required
  /// before chunk()/row(); append() afterwards is an error.
  void finalize();
  bool finalized() const noexcept { return finalized_; }

  // --- TraceStore ---------------------------------------------------------
  std::size_t size() const noexcept override { return total_rows_; }
  std::size_t chunk_rows() const noexcept override { return opts_.chunk_rows; }
  ChunkHandle chunk(std::size_t chunk_index) const override;

  // --- Auxiliary columns --------------------------------------------------
  bool has_aux() const noexcept { return has_aux_; }
  std::uint32_t path_idx_at(std::size_t i) const;
  fs::Bytes file_size_at(std::size_t i) const;

  // --- Observability ------------------------------------------------------
  std::size_t resident_chunks() const noexcept;
  std::size_t peak_resident_chunks() const noexcept;
  std::uint64_t chunk_loads() const noexcept { return loads_.load(); }
  std::uint64_t chunk_hits() const noexcept { return hits_.load(); }
  std::uint64_t chunk_evictions() const noexcept { return evictions_.load(); }
  std::size_t spilled_chunks() const noexcept { return chunks_written_; }
  const Options& options() const noexcept { return opts_; }

 private:
  struct Columns {
    std::vector<std::uint16_t> app;
    std::vector<std::int32_t> rank;
    std::vector<std::int32_t> node;
    std::vector<trace::Iface> iface;
    std::vector<trace::Op> op;
    std::vector<std::int16_t> fs;
    std::vector<fs::FileId> file;
    std::vector<fs::Bytes> offset;
    std::vector<fs::Bytes> size;
    std::vector<std::uint32_t> count;
    std::vector<sim::Time> tstart;
    std::vector<sim::Time> tend;
    std::vector<std::uint32_t> path_idx;   // aux, empty when absent
    std::vector<std::uint64_t> file_size;  // aux, empty when absent
    std::size_t rows() const noexcept { return app.size(); }
  };

  /// Alive-chunk accounting, shared with every loaded chunk so buffers that
  /// outlive eviction (still pinned by a cursor) keep counting as resident.
  struct Residency {
    std::atomic<std::size_t> resident{0};
    std::atomic<std::size_t> peak{0};
  };

  struct ChunkData {
    Columns cols;
    std::shared_ptr<Residency> residency;
    ~ChunkData();
  };

  void push_row(const trace::Record& r);
  void maybe_flush();
  void flush_open_chunk();
  std::string chunk_path(std::size_t index) const;
  std::shared_ptr<const ChunkData> load_chunk(std::size_t index) const;
  ChunkColumns view_of(const ChunkData& data, std::size_t base) const;

  Options opts_;
  bool has_aux_ = false;
  bool aux_decided_ = false;
  bool finalized_ = false;
  std::size_t total_rows_ = 0;
  std::size_t chunks_written_ = 0;
  Columns open_;

  std::shared_ptr<Residency> residency_;
  mutable std::mutex mu_;
  mutable std::list<std::size_t> lru_;  // front = most recently used
  mutable std::unordered_map<
      std::size_t, std::pair<std::shared_ptr<const ChunkData>,
                             std::list<std::size_t>::iterator>>
      cache_;
  mutable std::atomic<std::uint64_t> loads_{0};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace wasp::analysis
