#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_map>

#include "analysis/dense.hpp"
#include "analysis/scan_kernel.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

// The analyze() pipeline is a deterministic map-reduce, mirroring the
// paper's parquet + DASK task-parallel analysis: the trace is split into
// fixed row chunks (boundaries depend only on trace size and chunk_rows,
// never on the job count), each chunk is scanned independently into a
// ChunkState, and the partials are merged on one thread in chunk-index
// order. Integer aggregates are order-insensitive anyway; floating-point
// sums get a fixed association order from the chunk-ordered merge, so the
// profile is bit-identical at jobs=1 and jobs=N.
//
// All passes read the trace through a TraceStore Cursor, never through raw
// vectors: the analysis chunking above is independent of the store's
// storage chunking, so the in-memory and spill backends walk identical
// value sequences and produce byte-identical profiles.

namespace wasp::analysis {
namespace {

/// Analyzer telemetry: per-pass wall time (TimerGuard — timing-gated) plus
/// the rows-processed counter that rows/sec derives from. Spans with the
/// same names mark the passes on the trace timeline.
struct AnalyzerMetrics {
  obs::Counter rows = obs::Registry::instance().counter("analyze.rows");
  obs::Counter total_ns = obs::Registry::instance().counter("analyze.ns");
  obs::Counter scan_ns =
      obs::Registry::instance().counter("analyze.scan_ns");
  obs::Counter merge_ns =
      obs::Registry::instance().counter("analyze.merge_ns");
  obs::Counter resolve_ns =
      obs::Registry::instance().counter("analyze.resolve_ns");
  obs::Counter unions_ns =
      obs::Registry::instance().counter("analyze.unions_ns");
  obs::Counter phases_ns =
      obs::Registry::instance().counter("analyze.phases_ns");
  obs::Counter timeline_ns =
      obs::Registry::instance().counter("analyze.timeline_ns");
};

const AnalyzerMetrics& analyzer_metrics() {
  static const AnalyzerMetrics m;
  return m;
}

/// Append ids from `from` that `into` lacks, preserving first-seen order.
void merge_app_ids(std::vector<std::uint16_t>& into,
                   const std::vector<std::uint16_t>& from) {
  for (const auto id : from) {
    if (std::find(into.begin(), into.end(), id) == into.end()) {
      into.push_back(id);
    }
  }
}

// ---------------------------------------------------------------------------
// Sorted-vector reduction. ChunkState carries its large keyed state as
// key-sorted vectors, so the reduce folds each chunk into the global state
// with linear two-pointer merges — no per-key tree walks, no node
// allocations. The fold still runs left-to-right in chunk-index order, so
// every colliding key combines its per-chunk values in exactly the order
// the map-based reduce used; floating-point sums keep their association
// order and the profile stays bit-identical.

/// Fold a chunk's sorted (key, value) vector into the global one; `combine`
/// resolves key collisions (global value first, chunk value second).
template <typename K, typename V, typename Combine>
void merge_sorted(std::vector<std::pair<K, V>>& global,
                  std::vector<std::pair<K, V>>&& chunk, Combine combine) {
  if (chunk.empty()) return;
  if (global.empty()) {
    global = std::move(chunk);
    return;
  }
  std::vector<std::pair<K, V>> out;
  out.reserve(global.size() + chunk.size());
  auto g = global.begin();
  auto c = chunk.begin();
  while (g != global.end() && c != chunk.end()) {
    if (g->first < c->first) {
      out.push_back(std::move(*g++));
    } else if (c->first < g->first) {
      out.push_back(std::move(*c++));
    } else {
      combine(g->second, c->second);
      out.push_back(std::move(*g++));
      ++c;
    }
  }
  out.insert(out.end(), std::make_move_iterator(g),
             std::make_move_iterator(global.end()));
  out.insert(out.end(), std::make_move_iterator(c),
             std::make_move_iterator(chunk.end()));
  global = std::move(out);
}

/// Set-union of ascending id vectors, in place on `into`.
void union_ids(std::vector<std::int32_t>& into,
               const std::vector<std::int32_t>& from) {
  if (from.empty()) return;
  if (into.empty()) {
    into = from;
    return;
  }
  std::vector<std::int32_t> out;
  out.reserve(into.size() + from.size());
  std::set_union(into.begin(), into.end(), from.begin(), from.end(),
                 std::back_inserter(out));
  into = std::move(out);
}

/// Size of the union of two ascending id vectors, without materializing it.
std::size_t union_size(const std::vector<std::int32_t>& a,
                       const std::vector<std::int32_t>& b) {
  std::size_t n = 0;
  auto i = a.begin();
  auto j = b.begin();
  while (i != a.end() && j != b.end()) {
    if (*i < *j) {
      ++i;
    } else if (*j < *i) {
      ++j;
    } else {
      ++i;
      ++j;
    }
    ++n;
  }
  return n + static_cast<std::size_t>(a.end() - i) +
         static_cast<std::size_t>(b.end() - j);
}

/// K-way heap merge over each chunk's sorted `field` vector. `key(entry)`
/// orders entries; ties pop in chunk-index order, so `consume(entry)` sees
/// every key's entries left-to-right across chunks — exactly the order a
/// chunk-by-chunk fold would feed them in, but each global entry is built
/// once instead of being re-moved on every fold step.
template <typename Field, typename KeyFn, typename Consume>
void kway_merge(std::vector<ChunkState>& parts, Field field, KeyFn key,
                Consume consume) {
  struct Head {
    std::size_t chunk;
    std::size_t pos;
  };
  auto vec = [&](std::size_t chunk) -> auto& { return parts[chunk].*field; };
  auto cmp = [&](const Head& a, const Head& b) {
    // priority_queue pops the *greatest*, so invert: smallest key first,
    // then smallest chunk index.
    const auto& ka = key(vec(a.chunk)[a.pos]);
    const auto& kb = key(vec(b.chunk)[b.pos]);
    if (kb < ka) return true;
    if (ka < kb) return false;
    return a.chunk > b.chunk;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(cmp)> heap(cmp);
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (!vec(i).empty()) heap.push({i, 0});
  }
  while (!heap.empty()) {
    Head h = heap.top();
    heap.pop();
    consume(vec(h.chunk)[h.pos]);
    if (++h.pos < vec(h.chunk).size()) heap.push(h);
  }
}

/// Merge every chunk's FileAgg vector into one global sorted vector.
std::vector<FileAgg> merge_files(std::vector<ChunkState>& parts) {
  std::vector<FileAgg> out;
  std::size_t widest = 0;
  for (const ChunkState& c : parts) widest = std::max(widest, c.files.size());
  out.reserve(widest);
  kway_merge(
      parts, &ChunkState::files,
      [](const FileAgg& fa) -> const ScopedFile& { return fa.sf; },
      [&out](FileAgg& fa) {
        if (out.empty() || out.back().sf < fa.sf) {
          out.push_back(std::move(fa));
          return;
        }
        FileAgg& g = out.back();
        FileStats& gs = g.stats;
        const FileStats& cs = fa.stats;
        gs.first_access = std::min(gs.first_access, cs.first_access);
        gs.last_access = std::max(gs.last_access, cs.last_access);
        gs.ops.merge(cs.ops);
        merge_app_ids(gs.producer_apps, cs.producer_apps);
        merge_app_ids(gs.consumer_apps, cs.consumer_apps);
        // first_row: the first chunk touching the file wins — keep global's.
        union_ids(g.readers, fa.readers);
        union_ids(g.writers, fa.writers);
      });
  return out;
}

using StreamKey = std::pair<ScopedFile, std::int32_t>;

/// Settle every stream's deferred head ops across chunks: the first chunk
/// to touch a stream counts its head op as sequential, each later chunk
/// counts its head if it continues where the previous chunk's tail left
/// off. Consumes each stream's chunk entries in chunk order; nothing else
/// reads the stream state, so no global table is kept.
std::uint64_t settle_streams(std::vector<ChunkState>& parts) {
  std::uint64_t seq_ops = 0;
  bool have_prev = false;
  StreamKey prev_key{};
  fs::Bytes prev_end = 0;
  kway_merge(
      parts, &ChunkState::streams,
      [](const StreamEntry& e) { return StreamKey{e.sf, e.rank}; },
      [&](const StreamEntry& e) {
        const StreamKey k{e.sf, e.rank};
        if (!have_prev || prev_key < k) {
          ++seq_ops;  // stream's first touch across all chunks
        } else if (prev_end == e.state.first_offset) {
          ++seq_ops;
        }
        have_prev = true;
        prev_key = k;
        prev_end = e.state.last_end;
      });
  return seq_ops;
}

}  // namespace

void OpsBreakdown::merge(const OpsBreakdown& o) noexcept {
  read_ops += o.read_ops;
  write_ops += o.write_ops;
  meta_ops += o.meta_ops;
  read_bytes += o.read_bytes;
  write_bytes += o.write_bytes;
  data_sec += o.data_sec;
  meta_sec += o.meta_sec;
}

std::string Phase::frequency_label() const {
  const std::string gran = util::format_bytes(dominant_size);
  if (ops_per_rank <= 1.5) return "1 op";
  if (ops_per_rank < 20.0) {
    return std::to_string(static_cast<int>(ops_per_rank + 0.5)) + " ops/rank";
  }
  // Long phases with ops spread through them are iterative input pipelines;
  // short dense phases are bulk transfers.
  if (runtime_sec() > 60.0) return "Iterative (" + gran + ")";
  return "Bulk (" + gran + ")";
}

const AppStats* WorkloadProfile::app_by_name(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const AppStats* WorkloadProfile::app_by_id(std::uint16_t app) const {
  for (const auto& a : apps) {
    if (a.app == app) return &a;
  }
  return nullptr;
}

const std::string& WorkloadProfile::app_name(std::uint16_t app) const {
  static const std::string kUnknown = "?";
  const AppStats* a = app_by_id(app);
  return a != nullptr ? a->name : kUnknown;
}

const Phase* WorkloadProfile::first_phase(std::uint16_t app) const {
  const Phase* best = nullptr;
  for (const auto& ph : phases) {
    if (ph.app == app && (best == nullptr || ph.t0 < best->t0)) best = &ph;
  }
  return best;
}

double Analyzer::union_seconds(
    std::vector<std::pair<sim::Time, sim::Time>> iv) {
  if (iv.empty()) return 0.0;
  // Traces append in retire order, so interval lists are often already
  // start-ordered; the linear check dodges the n-log-n sort when so.
  if (!std::is_sorted(iv.begin(), iv.end())) std::sort(iv.begin(), iv.end());
  sim::Time covered = 0;
  sim::Time cur_lo = iv[0].first;
  sim::Time cur_hi = iv[0].second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > cur_hi) {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    } else {
      cur_hi = std::max(cur_hi, iv[i].second);
    }
  }
  covered += cur_hi - cur_lo;
  return sim::to_seconds(covered);
}

TraceInput tracer_input(const trace::Tracer& tracer, const TraceStore* store) {
  TraceInput input;
  if (store != nullptr) {
    input.store = store;
  } else {
    input.records = tracer.records();
  }
  for (std::size_t a = 0; a < tracer.num_apps(); ++a) {
    input.app_names.push_back(tracer.app_name(static_cast<std::uint16_t>(a)));
  }
  // Per-row resolution (serial, post-merge): fetch the record from the
  // store when rows were spilled out of the tracer's buffer.
  auto record_at = [&tracer, store](std::size_t i) {
    return store != nullptr ? store->row(i) : tracer.records()[i];
  };
  input.path_at = [&tracer, record_at](std::size_t i) {
    const trace::Record r = record_at(i);
    return tracer.path_of(r.file, r.node);
  };
  input.size_at = [&tracer, record_at](std::size_t i) -> fs::Bytes {
    const trace::Record r = record_at(i);
    if (!r.file.valid()) return 0;
    auto& fsys = tracer.filesystem(r.file.fs);
    auto& ns = fsys.ns(fs::ProcSite{fsys.shared() ? 0 : r.node, 0});
    if (r.file.file < ns.inodes().size()) {
      return ns.inodes()[r.file.file].size;
    }
    return 0;
  };
  input.fs_shared = [&tracer](std::int16_t idx) {
    return tracer.filesystem(idx).shared();
  };
  return input;
}

WorkloadProfile Analyzer::analyze(const trace::Tracer& tracer) const {
  return analyze(tracer_input(tracer));
}

WorkloadProfile Analyzer::analyze(const trace::LogData& log) const {
  TraceInput input;
  input.records = log.records;
  input.app_names = log.apps;
  input.path_at = [&log](std::size_t i) { return log.paths[i]; };
  input.size_at = [&log](std::size_t i) -> fs::Bytes {
    return i < log.file_sizes.size() ? log.file_sizes[i] : 0;
  };
  input.fs_shared = [&log](std::int16_t idx) {
    const auto u = static_cast<std::size_t>(idx);
    return u >= log.fs_shared.size() || log.fs_shared[u];
  };
  return analyze(input);
}

WorkloadProfile Analyzer::analyze(const TraceInput& input) const {
  if (input.store != nullptr) return analyze_store(*input.store, input);
  const int jobs = util::resolve_jobs(opts_.jobs);
  ColumnStore cs = ColumnStore::from_records(input.records, jobs);
  cs.set_chunk_rows(opts_.chunk_rows > 0 ? opts_.chunk_rows : 65536);
  return analyze_store(cs, input);
}

WorkloadProfile Analyzer::analyze_store(const TraceStore& store,
                                        const TraceInput& input) const {
  WorkloadProfile p;
  const int jobs = util::resolve_jobs(opts_.jobs);
  const std::size_t grain = opts_.chunk_rows > 0 ? opts_.chunk_rows : 65536;
  if (store.size() == 0) return p;
  WASP_OBS_SPAN("analyze");
  const AnalyzerMetrics& om = analyzer_metrics();
  obs::TimerGuard total_timer(om.total_ns);
  om.rows.add(store.size());
  util::ThreadPool pool(jobs - 1);

  // Filesystem-shared lookup table, resolved up front on this thread: the
  // callback may touch lazily-built filesystem namespaces, which must not
  // happen concurrently from chunk workers. Backends that track the max fs
  // index during append answer in O(1); for a spill store that avoids a
  // full serial pass over every chunk file.
  const std::int16_t max_fs = store.max_fs();
  std::vector<char> fs_is_shared(static_cast<std::size_t>(max_fs + 1), 1);
  for (std::int16_t f = 0; f <= max_fs; ++f) {
    fs_is_shared[static_cast<std::size_t>(f)] =
        input.fs_shared(f) ? 1 : 0;
  }

  // --- Map: scan chunks in parallel -------------------------------------
  // The batched columnar kernels (scan_chunk) are the default; the scalar
  // row loop (scan_chunk_reference) is the equivalence oracle tests pit
  // against them — both produce byte-identical ChunkStates.
  std::vector<ChunkState> parts;
  {
    WASP_OBS_SPAN("analyze.scan");
    obs::TimerGuard t(om.scan_ns);
    const bool ref = opts_.reference_scan;
    parts = pool.map_chunks(
        store.size(), grain, [&](const util::ChunkRange& range) {
          return ref ? scan_chunk_reference(store, range, input.app_names,
                                            fs_is_shared)
                     : scan_chunk(store, range, input.app_names, fs_is_shared);
        });
  }

  // --- Reduce: merge partials in chunk-index order ----------------------
  // Large keyed state folds with linear two-pointer merges over the
  // chunks' key-sorted vectors (see the helpers above); small keyed state
  // merges into ordered containers the classic way.
  sim::Time job_t0 = parts.front().job_t0;
  sim::Time job_t1 = parts.front().job_t1;
  std::map<std::uint16_t, AppStats> apps;
  std::vector<FileAgg> files;  // sorted by ScopedFile
  std::vector<std::pair<std::uint64_t, double>> rank_io_sec;  // sorted
  std::set<std::pair<std::uint16_t, std::int32_t>> procs;
  std::set<std::int32_t> nodes;
  std::map<std::pair<std::uint16_t, trace::Iface>, std::uint64_t> iface_ops;
  std::uint64_t seq_ops = 0;
  std::uint64_t pattern_ops = 0;
  std::vector<std::pair<fs::Bytes, std::uint64_t>> size_counts_global;
  std::vector<Interval> io_intervals;
  std::vector<std::vector<Interval>> read_iv(p.read_hist.num_buckets());
  std::vector<std::vector<Interval>> write_iv(p.write_hist.num_buckets());
  std::map<std::uint16_t, std::vector<std::size_t>> io_by_app;

  {
  WASP_OBS_SPAN("analyze.merge");
  obs::TimerGuard t(om.merge_ns);
  // Size the interval/row-list concatenations exactly, so the appends below
  // never reallocate mid-merge.
  {
    std::size_t n_io = 0;
    std::vector<std::size_t> n_read(read_iv.size(), 0);
    std::vector<std::size_t> n_write(write_iv.size(), 0);
    std::map<std::uint16_t, std::size_t> n_by_app;
    for (const ChunkState& c : parts) {
      n_io += c.io_intervals.size();
      for (std::size_t b = 0; b < read_iv.size(); ++b) {
        n_read[b] += c.read_iv[b].size();
        n_write[b] += c.write_iv[b].size();
      }
      for (const auto& [aid, idx] : c.io_by_app) n_by_app[aid] += idx.size();
    }
    io_intervals.reserve(n_io);
    for (std::size_t b = 0; b < read_iv.size(); ++b) {
      read_iv[b].reserve(n_read[b]);
      write_iv[b].reserve(n_write[b]);
    }
    for (const auto& [aid, n] : n_by_app) io_by_app[aid].reserve(n);
  }
  for (ChunkState& c : parts) {
    job_t0 = std::min(job_t0, c.job_t0);
    job_t1 = std::max(job_t1, c.job_t1);
    p.totals.merge(c.totals);
    for (auto& [id, capp] : c.apps) {
      auto [it, fresh] = apps.try_emplace(id);
      if (fresh) {
        it->second = std::move(capp);
      } else {
        AppStats& g = it->second;
        g.first_event = std::min(g.first_event, capp.first_event);
        g.last_event = std::max(g.last_event, capp.last_event);
        g.cpu_sec += capp.cpu_sec;
        g.gpu_sec += capp.gpu_sec;
        g.ops.merge(capp.ops);
      }
    }
    merge_sorted(rank_io_sec, std::move(c.rank_io_sec),
                 [](double& g, double v) { g += v; });
    procs.insert(c.procs.begin(), c.procs.end());
    nodes.insert(c.nodes.begin(), c.nodes.end());
    for (const auto& [k, n] : c.iface_ops) iface_ops[k] += n;
    seq_ops += c.seq_ops;
    pattern_ops += c.pattern_ops;
    merge_sorted(size_counts_global, std::move(c.size_counts),
                 [](std::uint64_t& g, std::uint64_t n) { g += n; });
    io_intervals.insert(io_intervals.end(), c.io_intervals.begin(),
                        c.io_intervals.end());
    p.read_hist.merge(c.read_hist);
    p.write_hist.merge(c.write_hist);
    for (std::size_t b = 0; b < read_iv.size(); ++b) {
      read_iv[b].insert(read_iv[b].end(), c.read_iv[b].begin(),
                        c.read_iv[b].end());
      write_iv[b].insert(write_iv[b].end(), c.write_iv[b].begin(),
                         c.write_iv[b].end());
    }
    for (auto& [aid, idx] : c.io_by_app) {
      auto& dst = io_by_app[aid];
      dst.insert(dst.end(), idx.begin(), idx.end());
    }
  }
  // The two ScopedFile-keyed reductions go through k-way heap merges over
  // the chunks' sorted vectors (entries per key still combine in
  // chunk-index order — see kway_merge).
  files = merge_files(parts);
  seq_ops += settle_streams(parts);
  parts.clear();
  }
  p.job_runtime_sec = sim::to_seconds(job_t1 - job_t0);

  {
  WASP_OBS_SPAN("analyze.resolve");
  obs::TimerGuard t(om.resolve_ns);
  // Resolve per-file paths and sizes from each file's first record — these
  // callbacks may touch lazily-built filesystem state, so they run here,
  // serially, not in the chunk workers.
  for (FileAgg& fa : files) {
    fa.stats.path = input.path_at(fa.first_row);
    fa.stats.size = std::max(fa.stats.size, input.size_at(fa.first_row));
  }

  // Resolve per-file sharing. The rank vectors are ascending, so the
  // accessor count is a two-pointer union size — no set materialization.
  for (FileAgg& fa : files) {
    FileStats& fstat = fa.stats;
    fstat.reader_ranks = static_cast<std::uint32_t>(fa.readers.size());
    fstat.writer_ranks = static_cast<std::uint32_t>(fa.writers.size());
    fstat.accessor_ranks =
        static_cast<std::uint32_t>(union_size(fa.readers, fa.writers));
    if (fstat.shared()) {
      ++p.shared_files;
    } else {
      ++p.fpp_files;
    }
  }

  // Per-app file sharing counts + dominant interface: each task writes only
  // its own app and reads the (now frozen) file map.
  {
    std::vector<AppStats*> app_ptrs;
    app_ptrs.reserve(apps.size());
    for (auto& [id, app] : apps) {
      (void)id;
      app_ptrs.push_back(&app);
    }
    pool.run(app_ptrs.size(), [&](std::size_t a) {
      AppStats& app = *app_ptrs[a];
      const std::uint16_t id = app.app;
      for (const FileAgg& fa : files) {
        const FileStats& fstat = fa.stats;
        const bool touches =
            std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                      id) != fstat.producer_apps.end() ||
            std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                      id) != fstat.consumer_apps.end();
        if (!touches) continue;
        if (fstat.shared()) {
          ++app.shared_files;
        } else {
          ++app.fpp_files;
        }
      }
      std::uint64_t best = 0;
      for (const auto& [key, n] : iface_ops) {
        if (key.first == id && n > best) {
          best = n;
          app.interface = key.second;
        }
      }
    });
  }

  // Count procs per app.
  for (const auto& [aid, rank] : procs) {
    (void)rank;
    ++apps[aid].num_procs;
  }
  p.num_procs = static_cast<int>(procs.size());
  p.num_nodes = static_cast<int>(nodes.size());
  }

  // I/O-time fractions: wall-clock coverage (Table I) and per-rank mean.
  // The interval unions (one per histogram bucket plus the global one) are
  // independent sort+sweep reductions — one task each, results by slot.
  {
    WASP_OBS_SPAN("analyze.unions");
    obs::TimerGuard t(om.unions_ns);
    const std::size_t nb = read_iv.size();
    std::vector<double> unions(1 + 2 * nb, 0.0);
    pool.run(unions.size(), [&](std::size_t t) {
      if (t == 0) {
        unions[0] = union_seconds(std::move(io_intervals));
      } else if (t <= nb) {
        unions[t] = union_seconds(std::move(read_iv[t - 1]));
      } else {
        unions[t] = union_seconds(std::move(write_iv[t - 1 - nb]));
      }
    });
    if (p.job_runtime_sec > 0) {
      p.io_time_fraction = unions[0] / p.job_runtime_sec;
      double sum = 0;
      for (const auto& [k, v] : rank_io_sec) {
        (void)k;
        sum += v;
      }
      if (!procs.empty()) {
        p.io_busy_fraction =
            sum / static_cast<double>(procs.size()) / p.job_runtime_sec;
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      p.read_hist.add_seconds(b, unions[1 + b]);
      p.write_hist.add_seconds(b, unions[1 + nb + b]);
    }
  }

  // --- Phases (per app, over I/O records sorted by start) ---------------
  // Each app's phase extraction is an independent sequential sweep; apps
  // map in parallel, results concatenate in app-id order (the merged
  // io_by_app row lists are already ascending, matching the serial pass).
  {
    WASP_OBS_SPAN("analyze.phases");
    obs::TimerGuard t(om.phases_ns);
    std::vector<std::pair<std::uint16_t, std::vector<std::size_t>*>> by_app;
    by_app.reserve(io_by_app.size());
    for (auto& [aid, idx] : io_by_app) by_app.push_back({aid, &idx});
    std::vector<std::vector<Phase>> app_phases(by_app.size());
    pool.run(by_app.size(), [&](std::size_t a) {
      const std::uint16_t aid = by_app[a].first;
      const std::vector<std::size_t>& idx = *by_app[a].second;
      Cursor cs(store);
      // Extract the sort keys in one sequential pass so the sort itself
      // never touches the store — a comparator-driven sort over row indices
      // would thrash a bounded spill cache. Sorting (tstart, row) pairs
      // lexicographically is the exact permutation the previous
      // tstart-then-index comparator produced.
      std::vector<std::pair<sim::Time, std::size_t>> order;
      order.reserve(idx.size());
      for (const std::size_t i : idx) order.emplace_back(cs.tstart(i), i);
      // Traces are usually already time-ordered (the tracer appends events
      // as the sim retires them); the linear check dodges the n-log-n sort
      // in that common case and sorting is a no-op permutation otherwise.
      if (!std::is_sorted(order.begin(), order.end())) {
        std::sort(order.begin(), order.end());
      }
      std::vector<Phase>& out = app_phases[a];
      Phase cur;
      // Dense per-phase state, cleared (capacity kept) at each flush. The
      // size-count map only feeds the dominant-size pick, which scans sizes
      // ascending — sorting the surviving keys at flush reproduces the
      // ordered map's iteration exactly, without its per-row tree walks.
      dense::FlatMap64<std::uint64_t> size_counts;
      dense::IdSet ranks;
      bool open = false;
      auto flush = [&]() {
        if (!open) return;
        fs::Bytes dom = 0;
        std::uint64_t dom_n = 0;
        auto sizes = size_counts.items();
        std::sort(sizes.begin(), sizes.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        for (const auto& [sz, n] : sizes) {
          if (n > dom_n && sz > 0) {
            dom_n = n;
            dom = sz;
          }
        }
        cur.dominant_size = dom;
        cur.ops_per_rank =
            ranks.empty() ? 0.0
                          : static_cast<double>(cur.ops.total_ops()) /
                                static_cast<double>(ranks.size());
        out.push_back(cur);
        size_counts.clear();
        ranks.clear();
        open = false;
      };
      sim::Time phase_end = 0;
      for (const auto& [t_i, i] : order) {
        // Decode the row once; the phase sweep revisits rows in time order,
        // so each access is a random store lookup — don't multiply them.
        // tstart rides along in the sort key, saving one lookup.
        const sim::Time t0 = t_i;
        const sim::Time t1 = cs.tend(i);
        const trace::Op op = cs.op(i);
        const std::uint32_t cnt = cs.count(i);
        const fs::Bytes sz = cs.size_col(i);
        if (!open || t0 > phase_end + opts_.phase_gap) {
          flush();
          cur = Phase{};
          cur.app = aid;
          cur.t0 = t0;
          cur.t1 = t1;
          open = true;
          phase_end = t1;
        }
        cur.t1 = std::max(cur.t1, t1);
        phase_end = std::max(phase_end, t1);
        add_op(cur.ops, op, cnt, sz * static_cast<fs::Bytes>(cnt),
               sim::to_seconds(t1 - t0));
        if (trace::is_data(op)) {
          size_counts[sz] += cnt;
        }
        ranks.insert(cs.rank(i));
      }
      flush();
    });
    for (const auto& phs : app_phases) {
      p.phases.insert(p.phases.end(), phs.begin(), phs.end());
    }
    std::sort(p.phases.begin(), p.phases.end(),
              [](const Phase& a, const Phase& b) { return a.t0 < b.t0; });
  }

  // --- App dependency edges ---------------------------------------------
  {
    std::map<std::pair<std::uint16_t, std::uint16_t>, AppEdge> edges;
    for (const FileAgg& fa : files) {
      const FileStats& fstat = fa.stats;
      for (auto prod : fstat.producer_apps) {
        for (auto cons : fstat.consumer_apps) {
          if (prod == cons) continue;
          auto& e = edges[{prod, cons}];
          e.producer = prod;
          e.consumer = cons;
          e.bytes += fstat.size;
          ++e.files;
        }
      }
    }
    for (auto& [k, e] : edges) {
      (void)k;
      p.app_edges.push_back(e);
    }
  }

  // --- Timeline ----------------------------------------------------------
  // Needs the job extent, so it is a second chunked pass: per-chunk bin
  // vectors, added together in chunk-index order.
  {
    WASP_OBS_SPAN("analyze.timeline");
    obs::TimerGuard t(om.timeline_ns);
    sim::Time bin = opts_.timeline_bin;
    const sim::Time span = job_t1 - job_t0;
    if (span / bin + 1 > opts_.max_timeline_bins) {
      bin = span / opts_.max_timeline_bins + 1;
    }
    const auto nbins = static_cast<std::size_t>(span / bin) + 1;
    p.timeline.bin_width = bin;
    p.timeline.read_bps.assign(nbins, 0.0);
    p.timeline.write_bps.assign(nbins, 0.0);
    using Bins = std::pair<std::vector<double>, std::vector<double>>;
    const std::vector<Bins> chunk_bins = pool.map_chunks(
        store.size(), grain, [&](const util::ChunkRange& range) {
          Cursor cs(store);
          Bins local{std::vector<double>(nbins, 0.0),
                     std::vector<double>(nbins, 0.0)};
          // Span walk: one residency resolution per storage chunk, raw
          // column reads per row. Same arithmetic as the row-at-a-time
          // loop, so the bins stay byte-identical.
          for (std::size_t pos = range.begin; pos < range.end;) {
            const ChunkSpan s = cs.span(pos, range.end);
            for (std::size_t k = 0; k < s.rows; ++k) {
              const trace::Op op = s.op[k];
              if (!trace::is_data(op)) continue;
              const double bytes = static_cast<double>(
                  s.size[k] * static_cast<fs::Bytes>(s.count[k]));
              if (bytes <= 0) continue;
              const sim::Time t0 = s.tstart[k] - job_t0;
              const sim::Time t1 = std::max(s.tend[k] - job_t0, t0 + 1);
              const auto b0 = static_cast<std::size_t>(t0 / bin);
              const auto b1 = std::min(
                  static_cast<std::size_t>((t1 - 1) / bin), nbins - 1);
              const double per_bin =
                  bytes / static_cast<double>(b1 - b0 + 1);
              auto& series = op == trace::Op::kRead ? local.first
                                                    : local.second;
              for (std::size_t b = b0; b <= b1; ++b) series[b] += per_bin;
            }
            pos += s.rows;
          }
          return local;
        });
    for (const Bins& local : chunk_bins) {
      for (std::size_t b = 0; b < nbins; ++b) {
        p.timeline.read_bps[b] += local.first[b];
        p.timeline.write_bps[b] += local.second[b];
      }
    }
    const double bin_sec = sim::to_seconds(bin);
    for (auto& v : p.timeline.read_bps) v /= bin_sec;
    for (auto& v : p.timeline.write_bps) v /= bin_sec;
  }

  // Sequentiality + global size frequencies.
  p.sequential_fraction =
      pattern_ops > 0
          ? static_cast<double>(seq_ops) / static_cast<double>(pattern_ops)
          : 1.0;
  p.size_frequencies = std::move(size_counts_global);
  std::sort(p.size_frequencies.begin(), p.size_frequencies.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Materialize app/file vectors in stable order.
  p.apps.reserve(apps.size());
  for (auto& [id, app] : apps) {
    (void)id;
    p.apps.push_back(std::move(app));
  }
  p.files.reserve(files.size());
  for (FileAgg& fa : files) {
    p.files.push_back(std::move(fa.stats));
  }
  return p;
}

}  // namespace wasp::analysis
