#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/units.hpp"

namespace wasp::analysis {
namespace {

/// Analysis-scope file identity: node-local files with the same inode id on
/// different nodes are distinct.
struct ScopedFile {
  std::int16_t fs;
  int node_scope;  // -1 for shared filesystems
  fs::FileId file;
  bool operator<(const ScopedFile& o) const noexcept {
    return std::tie(fs, node_scope, file) <
           std::tie(o.fs, o.node_scope, o.file);
  }
};

void add_op(OpsBreakdown& b, const ColumnStore& cs, std::size_t i) {
  const trace::Op op = cs.op(i);
  const auto n = static_cast<std::uint64_t>(cs.count(i));
  if (op == trace::Op::kRead) {
    b.read_ops += n;
    b.read_bytes += cs.total_bytes(i);
    b.data_sec += cs.duration_sec(i);
  } else if (op == trace::Op::kWrite) {
    b.write_ops += n;
    b.write_bytes += cs.total_bytes(i);
    b.data_sec += cs.duration_sec(i);
  } else if (trace::is_meta(op)) {
    b.meta_ops += n;
    b.meta_sec += cs.duration_sec(i);
  }
}

}  // namespace

void OpsBreakdown::merge(const OpsBreakdown& o) noexcept {
  read_ops += o.read_ops;
  write_ops += o.write_ops;
  meta_ops += o.meta_ops;
  read_bytes += o.read_bytes;
  write_bytes += o.write_bytes;
  data_sec += o.data_sec;
  meta_sec += o.meta_sec;
}

std::string Phase::frequency_label() const {
  const std::string gran = util::format_bytes(dominant_size);
  if (ops_per_rank <= 1.5) return "1 op";
  if (ops_per_rank < 20.0) {
    return std::to_string(static_cast<int>(ops_per_rank + 0.5)) + " ops/rank";
  }
  // Long phases with ops spread through them are iterative input pipelines;
  // short dense phases are bulk transfers.
  if (runtime_sec() > 60.0) return "Iterative (" + gran + ")";
  return "Bulk (" + gran + ")";
}

const AppStats* WorkloadProfile::app_by_name(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const AppStats* WorkloadProfile::app_by_id(std::uint16_t app) const {
  for (const auto& a : apps) {
    if (a.app == app) return &a;
  }
  return nullptr;
}

const std::string& WorkloadProfile::app_name(std::uint16_t app) const {
  static const std::string kUnknown = "?";
  const AppStats* a = app_by_id(app);
  return a != nullptr ? a->name : kUnknown;
}

const Phase* WorkloadProfile::first_phase(std::uint16_t app) const {
  const Phase* best = nullptr;
  for (const auto& ph : phases) {
    if (ph.app == app && (best == nullptr || ph.t0 < best->t0)) best = &ph;
  }
  return best;
}

double Analyzer::union_seconds(
    std::vector<std::pair<sim::Time, sim::Time>> iv) {
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  sim::Time covered = 0;
  sim::Time cur_lo = iv[0].first;
  sim::Time cur_hi = iv[0].second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > cur_hi) {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    } else {
      cur_hi = std::max(cur_hi, iv[i].second);
    }
  }
  covered += cur_hi - cur_lo;
  return sim::to_seconds(covered);
}

WorkloadProfile Analyzer::analyze(const trace::Tracer& tracer) const {
  TraceInput input;
  input.records = tracer.records();
  for (std::size_t a = 0; a < tracer.num_apps(); ++a) {
    input.app_names.push_back(tracer.app_name(static_cast<std::uint16_t>(a)));
  }
  input.path_at = [&tracer](std::size_t i) {
    const auto& r = tracer.records()[i];
    return tracer.path_of(r.file, r.node);
  };
  input.size_at = [&tracer](std::size_t i) -> fs::Bytes {
    const auto& r = tracer.records()[i];
    if (!r.file.valid()) return 0;
    auto& fsys = tracer.filesystem(r.file.fs);
    auto& ns = fsys.ns(fs::ProcSite{fsys.shared() ? 0 : r.node, 0});
    if (r.file.file < ns.inodes().size()) {
      return ns.inodes()[r.file.file].size;
    }
    return 0;
  };
  input.fs_shared = [&tracer](std::int16_t idx) {
    return tracer.filesystem(idx).shared();
  };
  return analyze(input);
}

WorkloadProfile Analyzer::analyze(const trace::LogData& log) const {
  TraceInput input;
  input.records = log.records;
  input.app_names = log.apps;
  input.path_at = [&log](std::size_t i) { return log.paths[i]; };
  input.size_at = [&log](std::size_t i) -> fs::Bytes {
    return i < log.file_sizes.size() ? log.file_sizes[i] : 0;
  };
  input.fs_shared = [&log](std::int16_t idx) {
    const auto u = static_cast<std::size_t>(idx);
    return u >= log.fs_shared.size() || log.fs_shared[u];
  };
  return analyze(input);
}

WorkloadProfile Analyzer::analyze(const TraceInput& input) const {
  WorkloadProfile p;
  const ColumnStore cs = ColumnStore::from_records(input.records);
  if (cs.empty()) return p;

  // --- Job extent ------------------------------------------------------
  sim::Time job_t0 = cs.tstart(0);
  sim::Time job_t1 = cs.tend(0);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    job_t0 = std::min(job_t0, cs.tstart(i));
    job_t1 = std::max(job_t1, cs.tend(i));
  }
  p.job_runtime_sec = sim::to_seconds(job_t1 - job_t0);

  // --- Per-app, per-file, per-rank passes ------------------------------
  std::map<std::uint16_t, AppStats> apps;
  std::map<ScopedFile, FileStats> files;
  std::unordered_map<std::uint64_t, double> rank_io_sec;  // (app<<32|rank)
  std::set<std::pair<std::uint16_t, std::int32_t>> procs;
  std::set<std::int32_t> nodes;
  std::map<ScopedFile, std::set<std::int32_t>> file_readers;
  std::map<ScopedFile, std::set<std::int32_t>> file_writers;
  // Dominant interface per app: ops per (app, iface).
  std::map<std::pair<std::uint16_t, trace::Iface>, std::uint64_t> iface_ops;
  // Sequentiality: last end offset per (scoped file, rank).
  std::map<std::pair<ScopedFile, std::int32_t>, fs::Bytes> last_end;
  std::uint64_t seq_ops = 0;
  std::uint64_t pattern_ops = 0;
  std::map<fs::Bytes, std::uint64_t> size_counts_global;
  std::vector<std::pair<sim::Time, sim::Time>> io_intervals;
  // Interval collections for aggregate-bandwidth unions.
  std::vector<std::vector<std::pair<sim::Time, sim::Time>>> read_iv(
      p.read_hist.num_buckets());
  std::vector<std::vector<std::pair<sim::Time, sim::Time>>> write_iv(
      p.write_hist.num_buckets());

  auto scoped = [&input](const ColumnStore& c, std::size_t i) -> ScopedFile {
    const trace::FileKey key = c.file(i);
    int scope = -1;
    if (key.valid() && !input.fs_shared(key.fs)) {
      scope = c.node(i);
    }
    return ScopedFile{key.fs, scope, key.file};
  };

  for (std::size_t i = 0; i < cs.size(); ++i) {
    const trace::Op op = cs.op(i);
    // App bookkeeping (all records).
    auto [ait, fresh] = apps.try_emplace(cs.app(i));
    AppStats& app = ait->second;
    if (fresh) {
      app.app = cs.app(i);
      app.name = cs.app(i) < input.app_names.size()
                     ? input.app_names[cs.app(i)]
                     : std::to_string(cs.app(i));
      app.first_event = cs.tstart(i);
      app.last_event = cs.tend(i);
    } else {
      app.first_event = std::min(app.first_event, cs.tstart(i));
      app.last_event = std::max(app.last_event, cs.tend(i));
    }
    procs.insert({cs.app(i), cs.rank(i)});
    nodes.insert(cs.node(i));

    if (cs.iface(i) == trace::Iface::kCpu) {
      app.cpu_sec += cs.duration_sec(i);
      continue;
    }
    if (cs.iface(i) == trace::Iface::kGpu) {
      app.gpu_sec += cs.duration_sec(i);
      continue;
    }
    if (!trace::is_io(op)) continue;

    add_op(app.ops, cs, i);
    add_op(p.totals, cs, i);
    const std::uint64_t proc_key =
        (static_cast<std::uint64_t>(cs.app(i)) << 32) |
        static_cast<std::uint32_t>(cs.rank(i));
    rank_io_sec[proc_key] += cs.duration_sec(i);
    io_intervals.emplace_back(cs.tstart(i), cs.tend(i));
    if (trace::is_data(op)) {
      iface_ops[{cs.app(i), cs.iface(i)}] += cs.count(i);
    }

    // Histograms + interval unions (data ops only).
    if (op == trace::Op::kRead) {
      p.read_hist.add(cs.size_col(i), cs.count(i), cs.total_bytes(i), 0.0);
      read_iv[p.read_hist.bucket_index(cs.size_col(i))].push_back(
          {cs.tstart(i), cs.tend(i)});
    } else if (op == trace::Op::kWrite) {
      p.write_hist.add(cs.size_col(i), cs.count(i), cs.total_bytes(i), 0.0);
      write_iv[p.write_hist.bucket_index(cs.size_col(i))].push_back(
          {cs.tstart(i), cs.tend(i)});
    }

    // File bookkeeping.
    const trace::FileKey key = cs.file(i);
    if (!key.valid()) continue;
    const ScopedFile sf = scoped(cs, i);

    if (trace::is_data(op)) {
      size_counts_global[cs.size_col(i)] += cs.count(i);
      // A coalesced record is internally sequential; only its first op can
      // break the stream relative to the rank's previous access.
      auto [lit, first_touch] =
          last_end.try_emplace({sf, cs.rank(i)}, cs.offset(i));
      pattern_ops += cs.count(i);
      seq_ops += cs.count(i) - 1;
      if (first_touch || lit->second == cs.offset(i)) ++seq_ops;
      lit->second = cs.offset(i) + cs.total_bytes(i);
    }
    auto [fit, fnew] = files.try_emplace(sf);
    FileStats& fstat = fit->second;
    if (fnew) {
      fstat.key = key;
      fstat.node_scope = sf.node_scope;
      fstat.path = input.path_at(i);
      fstat.first_access = cs.tstart(i);
      fstat.last_access = cs.tend(i);
    } else {
      fstat.first_access = std::min(fstat.first_access, cs.tstart(i));
      fstat.last_access = std::max(fstat.last_access, cs.tend(i));
    }
    fstat.size = std::max(fstat.size, input.size_at(i));
    add_op(fstat.ops, cs, i);
    if (op == trace::Op::kRead) {
      file_readers[sf].insert(cs.rank(i));
      if (std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                    cs.app(i)) == fstat.consumer_apps.end()) {
        fstat.consumer_apps.push_back(cs.app(i));
      }
    } else if (op == trace::Op::kWrite) {
      file_writers[sf].insert(cs.rank(i));
      if (std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                    cs.app(i)) == fstat.producer_apps.end()) {
        fstat.producer_apps.push_back(cs.app(i));
      }
    }
  }

  // Resolve per-file sizes and sharing.
  for (auto& [sf, fstat] : files) {
    const auto& readers = file_readers[sf];
    const auto& writers = file_writers[sf];
    std::set<std::int32_t> all(readers);
    all.insert(writers.begin(), writers.end());
    fstat.reader_ranks = static_cast<std::uint32_t>(readers.size());
    fstat.writer_ranks = static_cast<std::uint32_t>(writers.size());
    fstat.accessor_ranks = static_cast<std::uint32_t>(all.size());
    if (fstat.shared()) {
      ++p.shared_files;
    } else {
      ++p.fpp_files;
    }
  }

  // Per-app file sharing counts + dominant interface.
  for (auto& [id, app] : apps) {
    for (const auto& [sf, fstat] : files) {
      const bool touches =
          std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                    id) != fstat.producer_apps.end() ||
          std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                    id) != fstat.consumer_apps.end();
      if (!touches) continue;
      if (fstat.shared()) {
        ++app.shared_files;
      } else {
        ++app.fpp_files;
      }
    }
    std::uint64_t best = 0;
    for (const auto& [key, n] : iface_ops) {
      if (key.first == id && n > best) {
        best = n;
        app.interface = key.second;
      }
    }
  }

  // Count procs per app.
  for (const auto& [aid, rank] : procs) {
    (void)rank;
    ++apps[aid].num_procs;
  }
  p.num_procs = static_cast<int>(procs.size());
  p.num_nodes = static_cast<int>(nodes.size());

  // I/O-time fractions: wall-clock coverage (Table I) and per-rank mean.
  if (p.job_runtime_sec > 0) {
    p.io_time_fraction =
        union_seconds(std::move(io_intervals)) / p.job_runtime_sec;
    double sum = 0;
    for (const auto& [k, v] : rank_io_sec) {
      (void)k;
      sum += v;
    }
    if (!procs.empty()) {
      p.io_busy_fraction =
          sum / static_cast<double>(procs.size()) / p.job_runtime_sec;
    }
  }

  // Histogram busy times (interval unions per bucket).
  for (std::size_t b = 0; b < read_iv.size(); ++b) {
    p.read_hist.add_seconds(b, union_seconds(std::move(read_iv[b])));
  }
  for (std::size_t b = 0; b < write_iv.size(); ++b) {
    p.write_hist.add_seconds(b, union_seconds(std::move(write_iv[b])));
  }

  // --- Phases (per app, over I/O records sorted by start) ---------------
  {
    std::map<std::uint16_t, std::vector<std::size_t>> io_by_app;
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (trace::is_io(cs.op(i))) io_by_app[cs.app(i)].push_back(i);
    }
    for (auto& [aid, idx] : io_by_app) {
      std::sort(idx.begin(), idx.end(), [&cs](std::size_t a, std::size_t b) {
        return cs.tstart(a) != cs.tstart(b) ? cs.tstart(a) < cs.tstart(b)
                                            : a < b;
      });
      Phase cur;
      std::map<fs::Bytes, std::uint64_t> size_counts;
      std::set<std::int32_t> ranks;
      bool open = false;
      auto flush = [&]() {
        if (!open) return;
        fs::Bytes dom = 0;
        std::uint64_t dom_n = 0;
        for (const auto& [sz, n] : size_counts) {
          if (n > dom_n && sz > 0) {
            dom_n = n;
            dom = sz;
          }
        }
        cur.dominant_size = dom;
        cur.ops_per_rank =
            ranks.empty() ? 0.0
                          : static_cast<double>(cur.ops.total_ops()) /
                                static_cast<double>(ranks.size());
        p.phases.push_back(cur);
        size_counts.clear();
        ranks.clear();
        open = false;
      };
      sim::Time phase_end = 0;
      for (std::size_t i : idx) {
        if (!open || cs.tstart(i) > phase_end + opts_.phase_gap) {
          flush();
          cur = Phase{};
          cur.app = aid;
          cur.t0 = cs.tstart(i);
          cur.t1 = cs.tend(i);
          open = true;
          phase_end = cs.tend(i);
        }
        cur.t1 = std::max(cur.t1, cs.tend(i));
        phase_end = std::max(phase_end, cs.tend(i));
        add_op(cur.ops, cs, i);
        if (trace::is_data(cs.op(i))) {
          size_counts[cs.size_col(i)] += cs.count(i);
        }
        ranks.insert(cs.rank(i));
      }
      flush();
    }
    std::sort(p.phases.begin(), p.phases.end(),
              [](const Phase& a, const Phase& b) { return a.t0 < b.t0; });
  }

  // --- App dependency edges ---------------------------------------------
  {
    std::map<std::pair<std::uint16_t, std::uint16_t>, AppEdge> edges;
    for (const auto& [sf, fstat] : files) {
      (void)sf;
      for (auto prod : fstat.producer_apps) {
        for (auto cons : fstat.consumer_apps) {
          if (prod == cons) continue;
          auto& e = edges[{prod, cons}];
          e.producer = prod;
          e.consumer = cons;
          e.bytes += fstat.size;
          ++e.files;
        }
      }
    }
    for (auto& [k, e] : edges) {
      (void)k;
      p.app_edges.push_back(e);
    }
  }

  // --- Timeline -----------------------------------------------------------
  {
    sim::Time bin = opts_.timeline_bin;
    const sim::Time span = job_t1 - job_t0;
    if (span / bin + 1 > opts_.max_timeline_bins) {
      bin = span / opts_.max_timeline_bins + 1;
    }
    const auto nbins = static_cast<std::size_t>(span / bin) + 1;
    p.timeline.bin_width = bin;
    p.timeline.read_bps.assign(nbins, 0.0);
    p.timeline.write_bps.assign(nbins, 0.0);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      if (!trace::is_data(cs.op(i))) continue;
      const double bytes = static_cast<double>(cs.total_bytes(i));
      if (bytes <= 0) continue;
      const sim::Time t0 = cs.tstart(i) - job_t0;
      const sim::Time t1 = std::max(cs.tend(i) - job_t0, t0 + 1);
      const auto b0 = static_cast<std::size_t>(t0 / bin);
      const auto b1 = std::min(static_cast<std::size_t>((t1 - 1) / bin),
                               nbins - 1);
      const double per_bin = bytes / static_cast<double>(b1 - b0 + 1);
      auto& series = cs.op(i) == trace::Op::kRead ? p.timeline.read_bps
                                                  : p.timeline.write_bps;
      for (std::size_t b = b0; b <= b1; ++b) series[b] += per_bin;
    }
    const double bin_sec = sim::to_seconds(bin);
    for (auto& v : p.timeline.read_bps) v /= bin_sec;
    for (auto& v : p.timeline.write_bps) v /= bin_sec;
  }

  // Sequentiality + global size frequencies.
  p.sequential_fraction =
      pattern_ops > 0
          ? static_cast<double>(seq_ops) / static_cast<double>(pattern_ops)
          : 1.0;
  p.size_frequencies.assign(size_counts_global.begin(),
                            size_counts_global.end());
  std::sort(p.size_frequencies.begin(), p.size_frequencies.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Materialize app/file vectors in stable order.
  p.apps.reserve(apps.size());
  for (auto& [id, app] : apps) {
    (void)id;
    p.apps.push_back(std::move(app));
  }
  p.files.reserve(files.size());
  for (auto& [sf, f] : files) {
    (void)sf;
    p.files.push_back(std::move(f));
  }
  return p;
}

}  // namespace wasp::analysis
