#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/obs.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/units.hpp"

// The analyze() pipeline is a deterministic map-reduce, mirroring the
// paper's parquet + DASK task-parallel analysis: the trace is split into
// fixed row chunks (boundaries depend only on trace size and chunk_rows,
// never on the job count), each chunk is scanned independently into a
// ChunkState, and the partials are merged on one thread in chunk-index
// order. Integer aggregates are order-insensitive anyway; floating-point
// sums get a fixed association order from the chunk-ordered merge, so the
// profile is bit-identical at jobs=1 and jobs=N.
//
// All passes read the trace through a TraceStore Cursor, never through raw
// vectors: the analysis chunking above is independent of the store's
// storage chunking, so the in-memory and spill backends walk identical
// value sequences and produce byte-identical profiles.

namespace wasp::analysis {
namespace {

/// Analyzer telemetry: per-pass wall time (TimerGuard — timing-gated) plus
/// the rows-processed counter that rows/sec derives from. Spans with the
/// same names mark the passes on the trace timeline.
struct AnalyzerMetrics {
  obs::Counter rows = obs::Registry::instance().counter("analyze.rows");
  obs::Counter total_ns = obs::Registry::instance().counter("analyze.ns");
  obs::Counter scan_ns =
      obs::Registry::instance().counter("analyze.scan_ns");
  obs::Counter merge_ns =
      obs::Registry::instance().counter("analyze.merge_ns");
  obs::Counter resolve_ns =
      obs::Registry::instance().counter("analyze.resolve_ns");
  obs::Counter unions_ns =
      obs::Registry::instance().counter("analyze.unions_ns");
  obs::Counter phases_ns =
      obs::Registry::instance().counter("analyze.phases_ns");
  obs::Counter timeline_ns =
      obs::Registry::instance().counter("analyze.timeline_ns");
};

const AnalyzerMetrics& analyzer_metrics() {
  static const AnalyzerMetrics m;
  return m;
}

/// Analysis-scope file identity: node-local files with the same inode id on
/// different nodes are distinct.
struct ScopedFile {
  std::int16_t fs;
  int node_scope;  // -1 for shared filesystems
  fs::FileId file;
  bool operator<(const ScopedFile& o) const noexcept {
    return std::tie(fs, node_scope, file) <
           std::tie(o.fs, o.node_scope, o.file);
  }
};

void add_op(OpsBreakdown& b, Cursor& cs, std::size_t i) {
  const trace::Op op = cs.op(i);
  const auto n = static_cast<std::uint64_t>(cs.count(i));
  if (op == trace::Op::kRead) {
    b.read_ops += n;
    b.read_bytes += cs.total_bytes(i);
    b.data_sec += cs.duration_sec(i);
  } else if (op == trace::Op::kWrite) {
    b.write_ops += n;
    b.write_bytes += cs.total_bytes(i);
    b.data_sec += cs.duration_sec(i);
  } else if (trace::is_meta(op)) {
    b.meta_ops += n;
    b.meta_sec += cs.duration_sec(i);
  }
}

using Interval = std::pair<sim::Time, sim::Time>;

/// Per-(scoped file, rank) access-stream summary for the sequentiality
/// reduction. Whether a chunk's *first* op on a stream continues the
/// previous chunk's stream is only decidable at merge time, so the chunk
/// records the stream's entry offset and defers that single op's verdict.
struct StreamState {
  fs::Bytes first_offset = 0;
  fs::Bytes last_end = 0;
};

/// Everything one row chunk contributes; merged in chunk-index order.
struct ChunkState {
  sim::Time job_t0 = 0;
  sim::Time job_t1 = 0;
  OpsBreakdown totals;
  std::map<std::uint16_t, AppStats> apps;
  std::map<ScopedFile, FileStats> files;
  std::map<ScopedFile, std::size_t> file_first_row;
  std::map<std::uint64_t, double> rank_io_sec;  // (app<<32|rank)
  std::set<std::pair<std::uint16_t, std::int32_t>> procs;
  std::set<std::int32_t> nodes;
  std::map<ScopedFile, std::set<std::int32_t>> file_readers;
  std::map<ScopedFile, std::set<std::int32_t>> file_writers;
  std::map<std::pair<std::uint16_t, trace::Iface>, std::uint64_t> iface_ops;
  std::map<std::pair<ScopedFile, std::int32_t>, StreamState> streams;
  std::vector<std::pair<ScopedFile, std::int32_t>> stream_order;
  std::uint64_t seq_ops = 0;  ///< excludes each stream's deferred first op
  std::uint64_t pattern_ops = 0;
  std::map<fs::Bytes, std::uint64_t> size_counts;
  std::vector<Interval> io_intervals;
  util::SizeHistogram read_hist = util::SizeHistogram::paper_buckets();
  util::SizeHistogram write_hist = util::SizeHistogram::paper_buckets();
  std::vector<std::vector<Interval>> read_iv;
  std::vector<std::vector<Interval>> write_iv;
  std::map<std::uint16_t, std::vector<std::size_t>> io_by_app;
};

/// The map step: one chunk's pass over its row range. Reads only the
/// immutable TraceStore (through its own cursor) plus value-copied lookup
/// tables — no callbacks into lazily-built filesystem state (paths/sizes
/// resolve post-merge).
ChunkState scan_chunk(const TraceStore& store, const util::ChunkRange& range,
                      const std::vector<std::string>& app_names,
                      const std::vector<char>& fs_is_shared) {
  Cursor cs(store);
  ChunkState st;
  st.read_iv.resize(st.read_hist.num_buckets());
  st.write_iv.resize(st.write_hist.num_buckets());
  st.job_t0 = cs.tstart(range.begin);
  st.job_t1 = cs.tend(range.begin);

  auto scoped = [&](std::size_t i) -> ScopedFile {
    const trace::FileKey key = cs.file(i);
    int scope = -1;
    if (key.valid() && !fs_is_shared[static_cast<std::size_t>(key.fs)]) {
      scope = cs.node(i);
    }
    return ScopedFile{key.fs, scope, key.file};
  };

  for (std::size_t i = range.begin; i < range.end; ++i) {
    const trace::Op op = cs.op(i);
    st.job_t0 = std::min(st.job_t0, cs.tstart(i));
    st.job_t1 = std::max(st.job_t1, cs.tend(i));

    // App bookkeeping (all records).
    auto [ait, fresh] = st.apps.try_emplace(cs.app(i));
    AppStats& app = ait->second;
    if (fresh) {
      app.app = cs.app(i);
      app.name = cs.app(i) < app_names.size() ? app_names[cs.app(i)]
                                              : std::to_string(cs.app(i));
      app.first_event = cs.tstart(i);
      app.last_event = cs.tend(i);
    } else {
      app.first_event = std::min(app.first_event, cs.tstart(i));
      app.last_event = std::max(app.last_event, cs.tend(i));
    }
    st.procs.insert({cs.app(i), cs.rank(i)});
    st.nodes.insert(cs.node(i));
    if (trace::is_io(op)) st.io_by_app[cs.app(i)].push_back(i);

    if (cs.iface(i) == trace::Iface::kCpu) {
      app.cpu_sec += cs.duration_sec(i);
      continue;
    }
    if (cs.iface(i) == trace::Iface::kGpu) {
      app.gpu_sec += cs.duration_sec(i);
      continue;
    }
    if (!trace::is_io(op)) continue;

    add_op(app.ops, cs, i);
    add_op(st.totals, cs, i);
    const std::uint64_t proc_key =
        (static_cast<std::uint64_t>(cs.app(i)) << 32) |
        static_cast<std::uint32_t>(cs.rank(i));
    st.rank_io_sec[proc_key] += cs.duration_sec(i);
    st.io_intervals.emplace_back(cs.tstart(i), cs.tend(i));
    if (trace::is_data(op)) {
      st.iface_ops[{cs.app(i), cs.iface(i)}] += cs.count(i);
    }

    // Histograms + interval collections (data ops only).
    if (op == trace::Op::kRead) {
      st.read_hist.add(cs.size_col(i), cs.count(i), cs.total_bytes(i), 0.0);
      st.read_iv[st.read_hist.bucket_index(cs.size_col(i))].push_back(
          {cs.tstart(i), cs.tend(i)});
    } else if (op == trace::Op::kWrite) {
      st.write_hist.add(cs.size_col(i), cs.count(i), cs.total_bytes(i), 0.0);
      st.write_iv[st.write_hist.bucket_index(cs.size_col(i))].push_back(
          {cs.tstart(i), cs.tend(i)});
    }

    // File bookkeeping.
    const trace::FileKey key = cs.file(i);
    if (!key.valid()) continue;
    const ScopedFile sf = scoped(i);

    if (trace::is_data(op)) {
      st.size_counts[cs.size_col(i)] += cs.count(i);
      // A coalesced record is internally sequential; only its first op can
      // break the stream relative to the rank's previous access.
      auto [sit, first_touch] = st.streams.try_emplace(
          {sf, cs.rank(i)}, StreamState{cs.offset(i), cs.offset(i)});
      st.pattern_ops += cs.count(i);
      st.seq_ops += cs.count(i) - 1;
      if (first_touch) {
        st.stream_order.push_back({sf, cs.rank(i)});
      } else if (sit->second.last_end == cs.offset(i)) {
        ++st.seq_ops;
      }
      sit->second.last_end = cs.offset(i) + cs.total_bytes(i);
    }
    auto [fit, fnew] = st.files.try_emplace(sf);
    FileStats& fstat = fit->second;
    if (fnew) {
      fstat.key = key;
      fstat.node_scope = sf.node_scope;
      fstat.first_access = cs.tstart(i);
      fstat.last_access = cs.tend(i);
      st.file_first_row.emplace(sf, i);
    } else {
      fstat.first_access = std::min(fstat.first_access, cs.tstart(i));
      fstat.last_access = std::max(fstat.last_access, cs.tend(i));
    }
    add_op(fstat.ops, cs, i);
    if (op == trace::Op::kRead) {
      st.file_readers[sf].insert(cs.rank(i));
      if (std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                    cs.app(i)) == fstat.consumer_apps.end()) {
        fstat.consumer_apps.push_back(cs.app(i));
      }
    } else if (op == trace::Op::kWrite) {
      st.file_writers[sf].insert(cs.rank(i));
      if (std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                    cs.app(i)) == fstat.producer_apps.end()) {
        fstat.producer_apps.push_back(cs.app(i));
      }
    }
  }
  return st;
}

/// Append ids from `from` that `into` lacks, preserving first-seen order.
void merge_app_ids(std::vector<std::uint16_t>& into,
                   const std::vector<std::uint16_t>& from) {
  for (const auto id : from) {
    if (std::find(into.begin(), into.end(), id) == into.end()) {
      into.push_back(id);
    }
  }
}

}  // namespace

void OpsBreakdown::merge(const OpsBreakdown& o) noexcept {
  read_ops += o.read_ops;
  write_ops += o.write_ops;
  meta_ops += o.meta_ops;
  read_bytes += o.read_bytes;
  write_bytes += o.write_bytes;
  data_sec += o.data_sec;
  meta_sec += o.meta_sec;
}

std::string Phase::frequency_label() const {
  const std::string gran = util::format_bytes(dominant_size);
  if (ops_per_rank <= 1.5) return "1 op";
  if (ops_per_rank < 20.0) {
    return std::to_string(static_cast<int>(ops_per_rank + 0.5)) + " ops/rank";
  }
  // Long phases with ops spread through them are iterative input pipelines;
  // short dense phases are bulk transfers.
  if (runtime_sec() > 60.0) return "Iterative (" + gran + ")";
  return "Bulk (" + gran + ")";
}

const AppStats* WorkloadProfile::app_by_name(const std::string& name) const {
  for (const auto& a : apps) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const AppStats* WorkloadProfile::app_by_id(std::uint16_t app) const {
  for (const auto& a : apps) {
    if (a.app == app) return &a;
  }
  return nullptr;
}

const std::string& WorkloadProfile::app_name(std::uint16_t app) const {
  static const std::string kUnknown = "?";
  const AppStats* a = app_by_id(app);
  return a != nullptr ? a->name : kUnknown;
}

const Phase* WorkloadProfile::first_phase(std::uint16_t app) const {
  const Phase* best = nullptr;
  for (const auto& ph : phases) {
    if (ph.app == app && (best == nullptr || ph.t0 < best->t0)) best = &ph;
  }
  return best;
}

double Analyzer::union_seconds(
    std::vector<std::pair<sim::Time, sim::Time>> iv) {
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  sim::Time covered = 0;
  sim::Time cur_lo = iv[0].first;
  sim::Time cur_hi = iv[0].second;
  for (std::size_t i = 1; i < iv.size(); ++i) {
    if (iv[i].first > cur_hi) {
      covered += cur_hi - cur_lo;
      cur_lo = iv[i].first;
      cur_hi = iv[i].second;
    } else {
      cur_hi = std::max(cur_hi, iv[i].second);
    }
  }
  covered += cur_hi - cur_lo;
  return sim::to_seconds(covered);
}

TraceInput tracer_input(const trace::Tracer& tracer, const TraceStore* store) {
  TraceInput input;
  if (store != nullptr) {
    input.store = store;
  } else {
    input.records = tracer.records();
  }
  for (std::size_t a = 0; a < tracer.num_apps(); ++a) {
    input.app_names.push_back(tracer.app_name(static_cast<std::uint16_t>(a)));
  }
  // Per-row resolution (serial, post-merge): fetch the record from the
  // store when rows were spilled out of the tracer's buffer.
  auto record_at = [&tracer, store](std::size_t i) {
    return store != nullptr ? store->row(i) : tracer.records()[i];
  };
  input.path_at = [&tracer, record_at](std::size_t i) {
    const trace::Record r = record_at(i);
    return tracer.path_of(r.file, r.node);
  };
  input.size_at = [&tracer, record_at](std::size_t i) -> fs::Bytes {
    const trace::Record r = record_at(i);
    if (!r.file.valid()) return 0;
    auto& fsys = tracer.filesystem(r.file.fs);
    auto& ns = fsys.ns(fs::ProcSite{fsys.shared() ? 0 : r.node, 0});
    if (r.file.file < ns.inodes().size()) {
      return ns.inodes()[r.file.file].size;
    }
    return 0;
  };
  input.fs_shared = [&tracer](std::int16_t idx) {
    return tracer.filesystem(idx).shared();
  };
  return input;
}

WorkloadProfile Analyzer::analyze(const trace::Tracer& tracer) const {
  return analyze(tracer_input(tracer));
}

WorkloadProfile Analyzer::analyze(const trace::LogData& log) const {
  TraceInput input;
  input.records = log.records;
  input.app_names = log.apps;
  input.path_at = [&log](std::size_t i) { return log.paths[i]; };
  input.size_at = [&log](std::size_t i) -> fs::Bytes {
    return i < log.file_sizes.size() ? log.file_sizes[i] : 0;
  };
  input.fs_shared = [&log](std::int16_t idx) {
    const auto u = static_cast<std::size_t>(idx);
    return u >= log.fs_shared.size() || log.fs_shared[u];
  };
  return analyze(input);
}

WorkloadProfile Analyzer::analyze(const TraceInput& input) const {
  if (input.store != nullptr) return analyze_store(*input.store, input);
  const int jobs = util::resolve_jobs(opts_.jobs);
  ColumnStore cs = ColumnStore::from_records(input.records, jobs);
  cs.set_chunk_rows(opts_.chunk_rows > 0 ? opts_.chunk_rows : 65536);
  return analyze_store(cs, input);
}

WorkloadProfile Analyzer::analyze_store(const TraceStore& store,
                                        const TraceInput& input) const {
  WorkloadProfile p;
  const int jobs = util::resolve_jobs(opts_.jobs);
  const std::size_t grain = opts_.chunk_rows > 0 ? opts_.chunk_rows : 65536;
  if (store.size() == 0) return p;
  WASP_OBS_SPAN("analyze");
  const AnalyzerMetrics& om = analyzer_metrics();
  obs::TimerGuard total_timer(om.total_ns);
  om.rows.add(store.size());
  util::ThreadPool pool(jobs - 1);

  // Filesystem-shared lookup table, resolved up front on this thread: the
  // callback may touch lazily-built filesystem namespaces, which must not
  // happen concurrently from chunk workers. Backends that track the max fs
  // index during append answer in O(1); for a spill store that avoids a
  // full serial pass over every chunk file.
  const std::int16_t max_fs = store.max_fs();
  std::vector<char> fs_is_shared(static_cast<std::size_t>(max_fs + 1), 1);
  for (std::int16_t f = 0; f <= max_fs; ++f) {
    fs_is_shared[static_cast<std::size_t>(f)] =
        input.fs_shared(f) ? 1 : 0;
  }

  // --- Map: scan chunks in parallel -------------------------------------
  std::vector<ChunkState> parts;
  {
    WASP_OBS_SPAN("analyze.scan");
    obs::TimerGuard t(om.scan_ns);
    parts = pool.map_chunks(
        store.size(), grain, [&](const util::ChunkRange& range) {
          return scan_chunk(store, range, input.app_names, fs_is_shared);
        });
  }

  // --- Reduce: merge partials in chunk-index order ----------------------
  sim::Time job_t0 = parts.front().job_t0;
  sim::Time job_t1 = parts.front().job_t1;
  std::map<std::uint16_t, AppStats> apps;
  std::map<ScopedFile, FileStats> files;
  std::map<ScopedFile, std::size_t> file_first_row;
  std::map<std::uint64_t, double> rank_io_sec;
  std::set<std::pair<std::uint16_t, std::int32_t>> procs;
  std::set<std::int32_t> nodes;
  std::map<ScopedFile, std::set<std::int32_t>> file_readers;
  std::map<ScopedFile, std::set<std::int32_t>> file_writers;
  std::map<std::pair<std::uint16_t, trace::Iface>, std::uint64_t> iface_ops;
  std::map<std::pair<ScopedFile, std::int32_t>, fs::Bytes> last_end;
  std::uint64_t seq_ops = 0;
  std::uint64_t pattern_ops = 0;
  std::map<fs::Bytes, std::uint64_t> size_counts_global;
  std::vector<Interval> io_intervals;
  std::vector<std::vector<Interval>> read_iv(p.read_hist.num_buckets());
  std::vector<std::vector<Interval>> write_iv(p.write_hist.num_buckets());
  std::map<std::uint16_t, std::vector<std::size_t>> io_by_app;

  {
  WASP_OBS_SPAN("analyze.merge");
  obs::TimerGuard t(om.merge_ns);
  for (ChunkState& c : parts) {
    job_t0 = std::min(job_t0, c.job_t0);
    job_t1 = std::max(job_t1, c.job_t1);
    p.totals.merge(c.totals);
    for (auto& [id, capp] : c.apps) {
      auto [it, fresh] = apps.try_emplace(id);
      if (fresh) {
        it->second = std::move(capp);
      } else {
        AppStats& g = it->second;
        g.first_event = std::min(g.first_event, capp.first_event);
        g.last_event = std::max(g.last_event, capp.last_event);
        g.cpu_sec += capp.cpu_sec;
        g.gpu_sec += capp.gpu_sec;
        g.ops.merge(capp.ops);
      }
    }
    for (auto& [sf, cfile] : c.files) {
      auto [it, fresh] = files.try_emplace(sf);
      if (fresh) {
        it->second = std::move(cfile);
      } else {
        FileStats& g = it->second;
        g.first_access = std::min(g.first_access, cfile.first_access);
        g.last_access = std::max(g.last_access, cfile.last_access);
        g.ops.merge(cfile.ops);
        merge_app_ids(g.producer_apps, cfile.producer_apps);
        merge_app_ids(g.consumer_apps, cfile.consumer_apps);
      }
    }
    for (const auto& [sf, row] : c.file_first_row) {
      file_first_row.try_emplace(sf, row);  // first chunk touching it wins
    }
    for (const auto& [k, v] : c.rank_io_sec) rank_io_sec[k] += v;
    procs.insert(c.procs.begin(), c.procs.end());
    nodes.insert(c.nodes.begin(), c.nodes.end());
    for (auto& [sf, ranks] : c.file_readers) {
      file_readers[sf].insert(ranks.begin(), ranks.end());
    }
    for (auto& [sf, ranks] : c.file_writers) {
      file_writers[sf].insert(ranks.begin(), ranks.end());
    }
    for (const auto& [k, n] : c.iface_ops) iface_ops[k] += n;
    // Sequentiality: settle each stream's deferred first op against the
    // previous chunks' stream tail, then adopt this chunk's tail.
    seq_ops += c.seq_ops;
    pattern_ops += c.pattern_ops;
    for (const auto& key : c.stream_order) {
      const StreamState& s = c.streams.at(key);
      auto [it, first_touch] = last_end.try_emplace(key, 0);
      if (first_touch || it->second == s.first_offset) ++seq_ops;
      it->second = s.last_end;
    }
    for (const auto& [sz, n] : c.size_counts) size_counts_global[sz] += n;
    io_intervals.insert(io_intervals.end(), c.io_intervals.begin(),
                        c.io_intervals.end());
    p.read_hist.merge(c.read_hist);
    p.write_hist.merge(c.write_hist);
    for (std::size_t b = 0; b < read_iv.size(); ++b) {
      read_iv[b].insert(read_iv[b].end(), c.read_iv[b].begin(),
                        c.read_iv[b].end());
      write_iv[b].insert(write_iv[b].end(), c.write_iv[b].begin(),
                         c.write_iv[b].end());
    }
    for (auto& [aid, idx] : c.io_by_app) {
      auto& dst = io_by_app[aid];
      dst.insert(dst.end(), idx.begin(), idx.end());
    }
  }
  parts.clear();
  }
  p.job_runtime_sec = sim::to_seconds(job_t1 - job_t0);

  {
  WASP_OBS_SPAN("analyze.resolve");
  obs::TimerGuard t(om.resolve_ns);
  // Resolve per-file paths and sizes from each file's first record — these
  // callbacks may touch lazily-built filesystem state, so they run here,
  // serially, not in the chunk workers.
  for (auto& [sf, fstat] : files) {
    const std::size_t i = file_first_row.at(sf);
    fstat.path = input.path_at(i);
    fstat.size = std::max(fstat.size, input.size_at(i));
  }

  // Resolve per-file sharing.
  for (auto& [sf, fstat] : files) {
    const auto& readers = file_readers[sf];
    const auto& writers = file_writers[sf];
    std::set<std::int32_t> all(readers);
    all.insert(writers.begin(), writers.end());
    fstat.reader_ranks = static_cast<std::uint32_t>(readers.size());
    fstat.writer_ranks = static_cast<std::uint32_t>(writers.size());
    fstat.accessor_ranks = static_cast<std::uint32_t>(all.size());
    if (fstat.shared()) {
      ++p.shared_files;
    } else {
      ++p.fpp_files;
    }
  }

  // Per-app file sharing counts + dominant interface: each task writes only
  // its own app and reads the (now frozen) file map.
  {
    std::vector<AppStats*> app_ptrs;
    app_ptrs.reserve(apps.size());
    for (auto& [id, app] : apps) {
      (void)id;
      app_ptrs.push_back(&app);
    }
    pool.run(app_ptrs.size(), [&](std::size_t a) {
      AppStats& app = *app_ptrs[a];
      const std::uint16_t id = app.app;
      for (const auto& [sf, fstat] : files) {
        (void)sf;
        const bool touches =
            std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                      id) != fstat.producer_apps.end() ||
            std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                      id) != fstat.consumer_apps.end();
        if (!touches) continue;
        if (fstat.shared()) {
          ++app.shared_files;
        } else {
          ++app.fpp_files;
        }
      }
      std::uint64_t best = 0;
      for (const auto& [key, n] : iface_ops) {
        if (key.first == id && n > best) {
          best = n;
          app.interface = key.second;
        }
      }
    });
  }

  // Count procs per app.
  for (const auto& [aid, rank] : procs) {
    (void)rank;
    ++apps[aid].num_procs;
  }
  p.num_procs = static_cast<int>(procs.size());
  p.num_nodes = static_cast<int>(nodes.size());
  }

  // I/O-time fractions: wall-clock coverage (Table I) and per-rank mean.
  // The interval unions (one per histogram bucket plus the global one) are
  // independent sort+sweep reductions — one task each, results by slot.
  {
    WASP_OBS_SPAN("analyze.unions");
    obs::TimerGuard t(om.unions_ns);
    const std::size_t nb = read_iv.size();
    std::vector<double> unions(1 + 2 * nb, 0.0);
    pool.run(unions.size(), [&](std::size_t t) {
      if (t == 0) {
        unions[0] = union_seconds(std::move(io_intervals));
      } else if (t <= nb) {
        unions[t] = union_seconds(std::move(read_iv[t - 1]));
      } else {
        unions[t] = union_seconds(std::move(write_iv[t - 1 - nb]));
      }
    });
    if (p.job_runtime_sec > 0) {
      p.io_time_fraction = unions[0] / p.job_runtime_sec;
      double sum = 0;
      for (const auto& [k, v] : rank_io_sec) {
        (void)k;
        sum += v;
      }
      if (!procs.empty()) {
        p.io_busy_fraction =
            sum / static_cast<double>(procs.size()) / p.job_runtime_sec;
      }
    }
    for (std::size_t b = 0; b < nb; ++b) {
      p.read_hist.add_seconds(b, unions[1 + b]);
      p.write_hist.add_seconds(b, unions[1 + nb + b]);
    }
  }

  // --- Phases (per app, over I/O records sorted by start) ---------------
  // Each app's phase extraction is an independent sequential sweep; apps
  // map in parallel, results concatenate in app-id order (the merged
  // io_by_app row lists are already ascending, matching the serial pass).
  {
    WASP_OBS_SPAN("analyze.phases");
    obs::TimerGuard t(om.phases_ns);
    std::vector<std::pair<std::uint16_t, std::vector<std::size_t>*>> by_app;
    by_app.reserve(io_by_app.size());
    for (auto& [aid, idx] : io_by_app) by_app.push_back({aid, &idx});
    std::vector<std::vector<Phase>> app_phases(by_app.size());
    pool.run(by_app.size(), [&](std::size_t a) {
      const std::uint16_t aid = by_app[a].first;
      const std::vector<std::size_t>& idx = *by_app[a].second;
      Cursor cs(store);
      // Extract the sort keys in one sequential pass so the sort itself
      // never touches the store — a comparator-driven sort over row indices
      // would thrash a bounded spill cache. Sorting (tstart, row) pairs
      // lexicographically is the exact permutation the previous
      // tstart-then-index comparator produced.
      std::vector<std::pair<sim::Time, std::size_t>> order;
      order.reserve(idx.size());
      for (const std::size_t i : idx) order.emplace_back(cs.tstart(i), i);
      std::sort(order.begin(), order.end());
      std::vector<Phase>& out = app_phases[a];
      Phase cur;
      std::map<fs::Bytes, std::uint64_t> size_counts;
      std::set<std::int32_t> ranks;
      bool open = false;
      auto flush = [&]() {
        if (!open) return;
        fs::Bytes dom = 0;
        std::uint64_t dom_n = 0;
        for (const auto& [sz, n] : size_counts) {
          if (n > dom_n && sz > 0) {
            dom_n = n;
            dom = sz;
          }
        }
        cur.dominant_size = dom;
        cur.ops_per_rank =
            ranks.empty() ? 0.0
                          : static_cast<double>(cur.ops.total_ops()) /
                                static_cast<double>(ranks.size());
        out.push_back(cur);
        size_counts.clear();
        ranks.clear();
        open = false;
      };
      sim::Time phase_end = 0;
      for (const auto& [t_i, i] : order) {
        (void)t_i;
        if (!open || cs.tstart(i) > phase_end + opts_.phase_gap) {
          flush();
          cur = Phase{};
          cur.app = aid;
          cur.t0 = cs.tstart(i);
          cur.t1 = cs.tend(i);
          open = true;
          phase_end = cs.tend(i);
        }
        cur.t1 = std::max(cur.t1, cs.tend(i));
        phase_end = std::max(phase_end, cs.tend(i));
        add_op(cur.ops, cs, i);
        if (trace::is_data(cs.op(i))) {
          size_counts[cs.size_col(i)] += cs.count(i);
        }
        ranks.insert(cs.rank(i));
      }
      flush();
    });
    for (const auto& phs : app_phases) {
      p.phases.insert(p.phases.end(), phs.begin(), phs.end());
    }
    std::sort(p.phases.begin(), p.phases.end(),
              [](const Phase& a, const Phase& b) { return a.t0 < b.t0; });
  }

  // --- App dependency edges ---------------------------------------------
  {
    std::map<std::pair<std::uint16_t, std::uint16_t>, AppEdge> edges;
    for (const auto& [sf, fstat] : files) {
      (void)sf;
      for (auto prod : fstat.producer_apps) {
        for (auto cons : fstat.consumer_apps) {
          if (prod == cons) continue;
          auto& e = edges[{prod, cons}];
          e.producer = prod;
          e.consumer = cons;
          e.bytes += fstat.size;
          ++e.files;
        }
      }
    }
    for (auto& [k, e] : edges) {
      (void)k;
      p.app_edges.push_back(e);
    }
  }

  // --- Timeline ----------------------------------------------------------
  // Needs the job extent, so it is a second chunked pass: per-chunk bin
  // vectors, added together in chunk-index order.
  {
    WASP_OBS_SPAN("analyze.timeline");
    obs::TimerGuard t(om.timeline_ns);
    sim::Time bin = opts_.timeline_bin;
    const sim::Time span = job_t1 - job_t0;
    if (span / bin + 1 > opts_.max_timeline_bins) {
      bin = span / opts_.max_timeline_bins + 1;
    }
    const auto nbins = static_cast<std::size_t>(span / bin) + 1;
    p.timeline.bin_width = bin;
    p.timeline.read_bps.assign(nbins, 0.0);
    p.timeline.write_bps.assign(nbins, 0.0);
    using Bins = std::pair<std::vector<double>, std::vector<double>>;
    const std::vector<Bins> chunk_bins = pool.map_chunks(
        store.size(), grain, [&](const util::ChunkRange& range) {
          Cursor cs(store);
          Bins local{std::vector<double>(nbins, 0.0),
                     std::vector<double>(nbins, 0.0)};
          for (std::size_t i = range.begin; i < range.end; ++i) {
            if (!trace::is_data(cs.op(i))) continue;
            const double bytes = static_cast<double>(cs.total_bytes(i));
            if (bytes <= 0) continue;
            const sim::Time t0 = cs.tstart(i) - job_t0;
            const sim::Time t1 = std::max(cs.tend(i) - job_t0, t0 + 1);
            const auto b0 = static_cast<std::size_t>(t0 / bin);
            const auto b1 =
                std::min(static_cast<std::size_t>((t1 - 1) / bin), nbins - 1);
            const double per_bin =
                bytes / static_cast<double>(b1 - b0 + 1);
            auto& series = cs.op(i) == trace::Op::kRead ? local.first
                                                        : local.second;
            for (std::size_t b = b0; b <= b1; ++b) series[b] += per_bin;
          }
          return local;
        });
    for (const Bins& local : chunk_bins) {
      for (std::size_t b = 0; b < nbins; ++b) {
        p.timeline.read_bps[b] += local.first[b];
        p.timeline.write_bps[b] += local.second[b];
      }
    }
    const double bin_sec = sim::to_seconds(bin);
    for (auto& v : p.timeline.read_bps) v /= bin_sec;
    for (auto& v : p.timeline.write_bps) v /= bin_sec;
  }

  // Sequentiality + global size frequencies.
  p.sequential_fraction =
      pattern_ops > 0
          ? static_cast<double>(seq_ops) / static_cast<double>(pattern_ops)
          : 1.0;
  p.size_frequencies.assign(size_counts_global.begin(),
                            size_counts_global.end());
  std::sort(p.size_frequencies.begin(), p.size_frequencies.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  // Materialize app/file vectors in stable order.
  p.apps.reserve(apps.size());
  for (auto& [id, app] : apps) {
    (void)id;
    p.apps.push_back(std::move(app));
  }
  p.files.reserve(files.size());
  for (auto& [sf, f] : files) {
    (void)sf;
    p.files.push_back(std::move(f));
  }
  return p;
}

}  // namespace wasp::analysis
