#include "analysis/scan_kernel.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/dense.hpp"

namespace wasp::analysis {
namespace {

// The dense per-chunk containers (dense.hpp) trade the ordered containers'
// per-row log(n) tree walks for one hash probe (or a direct index), then pay
// a single sort per chunk at finalize time to reproduce the exact key order
// the ordered containers would have produced.
using dense::FlatMap64;
using dense::IdSet;
using dense::mix64;

/// One interned file: FileStats plus the rank sets and stream states the
/// ordered path kept in four separate ScopedFile-keyed maps, carried inline
/// so a row resolves its file exactly once.
struct FileSlot {
  ScopedFile sf;
  FileStats stats;
  std::size_t first_row = 0;
  IdSet readers;
  IdSet writers;
  FlatMap64<StreamState> streams;  // keyed by rank
};

/// Open-addressed interning table: ScopedFile -> dense slot index. A
/// one-entry memo short-circuits the common run of consecutive rows hitting
/// the same file.
class FileTable {
 public:
  std::uint32_t intern(const ScopedFile& sf, bool& fresh) {
    if (memo_valid_ && slots_[memo_].sf == sf) {
      fresh = false;
      return memo_;
    }
    if (index_.empty()) {
      index_.assign(64, 0);
    } else if ((slots_.size() + 1) * 4 > index_.size() * 3) {
      rehash(index_.size() * 2);
    }
    std::uint32_t& entry = index_[probe(sf)];
    if (entry == 0) {
      entry = static_cast<std::uint32_t>(slots_.size() + 1);
      slots_.emplace_back();
      slots_.back().sf = sf;
      fresh = true;
    } else {
      fresh = false;
    }
    memo_ = entry - 1;
    memo_valid_ = true;
    return memo_;
  }
  FileSlot& slot(std::uint32_t idx) { return slots_[idx]; }
  std::vector<FileSlot>& slots() { return slots_; }

 private:
  static std::uint64_t hash(const ScopedFile& sf) noexcept {
    return mix64(sf.file ^
                 (static_cast<std::uint64_t>(static_cast<std::uint16_t>(
                      sf.fs))
                  << 48) ^
                 (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                      sf.node_scope))
                  << 16));
  }
  std::size_t probe(const ScopedFile& sf) const noexcept {
    const std::size_t mask = index_.size() - 1;
    std::size_t i = hash(sf) & mask;
    while (index_[i] != 0 && !(slots_[index_[i] - 1].sf == sf)) {
      i = (i + 1) & mask;
    }
    return i;
  }
  void rehash(std::size_t cap) {
    index_.assign(cap, 0);
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      index_[probe(slots_[s].sf)] = s + 1;
    }
  }
  std::vector<std::uint32_t> index_;  // slot index + 1; 0 = empty
  std::vector<FileSlot> slots_;
  std::uint32_t memo_ = 0;
  bool memo_valid_ = false;
};

constexpr std::size_t kNumIfaces = 8;  // > every trace::Iface value

/// Dense per-app state, indexed directly by the uint16 app id.
struct AppSlot {
  bool used = false;
  AppStats stats;
  IdSet ranks;
  std::uint64_t iface_ops[kNumIfaces] = {};
  std::vector<std::size_t> io_rows;
};

/// Everything the kernels accumulate for one analysis chunk. Fields that
/// already match ChunkState's layout are stored directly; the keyed state
/// lives in the dense tables above and is sorted into ordered form once, in
/// finalize().
struct DenseState {
  bool time_init = false;
  sim::Time job_t0 = 0;
  sim::Time job_t1 = 0;
  OpsBreakdown totals;
  std::vector<AppSlot> apps;
  IdSet nodes;
  FlatMap64<double> rank_io_sec;
  FlatMap64<std::uint64_t> size_counts;
  FileTable files;
  std::uint64_t seq_ops = 0;
  std::uint64_t pattern_ops = 0;
  std::vector<Interval> io_intervals;
  util::SizeHistogram read_hist = util::SizeHistogram::paper_buckets();
  util::SizeHistogram write_hist = util::SizeHistogram::paper_buckets();
  std::vector<std::vector<Interval>> read_iv;
  std::vector<std::vector<Interval>> write_iv;

  AppSlot& app(std::uint16_t id) {
    if (id >= apps.size()) apps.resize(static_cast<std::size_t>(id) + 1);
    return apps[id];
  }
};

/// True for rows the row loop classified as I/O: not a CPU/GPU compute
/// span, and an I/O op.
inline bool is_io_row(trace::Iface iface, trace::Op op) noexcept {
  return iface != trace::Iface::kCpu && iface != trace::Iface::kGpu &&
         trace::is_io(op);
}

// ---------------------------------------------------------------------------
// Kernels. Two passes per span, each touching a disjoint set of
// accumulators: one over every record (app bookkeeping + job time range),
// one over the I/O records (op breakdowns, histograms, file bookkeeping) —
// decoded once per row. Splitting the row loop this way never reorders any
// single accumulator's row-order accumulation, and fusing the I/O-side
// work into one pass reads each span's columns once instead of once per
// category (the spans are bigger than L2, so repeat passes re-read DRAM).

/// App bookkeeping over every record: first/last event, CPU/GPU time,
/// procs/nodes membership, the per-app I/O row lists the phase pass
/// consumes, and the job's time range.
void k_apps(const ChunkSpan& s, DenseState& d,
            const std::vector<std::string>& app_names) {
  if (!d.time_init) {
    d.time_init = true;
    d.job_t0 = s.tstart[0];
    d.job_t1 = s.tend[0];
  }
  sim::Time t0 = d.job_t0;
  sim::Time t1 = d.job_t1;
  for (std::size_t k = 0; k < s.rows; ++k) {
    t0 = std::min(t0, s.tstart[k]);
    t1 = std::max(t1, s.tend[k]);
    const std::uint16_t id = s.app[k];
    AppSlot& a = d.app(id);
    AppStats& st = a.stats;
    if (!a.used) {
      a.used = true;
      st.app = id;
      st.name = id < app_names.size() ? app_names[id] : std::to_string(id);
      st.first_event = s.tstart[k];
      st.last_event = s.tend[k];
    } else {
      st.first_event = std::min(st.first_event, s.tstart[k]);
      st.last_event = std::max(st.last_event, s.tend[k]);
    }
    a.ranks.insert(s.rank[k]);
    d.nodes.insert(s.node[k]);
    const trace::Op op = s.op[k];
    if (trace::is_io(op)) a.io_rows.push_back(s.begin + k);
    const trace::Iface iface = s.iface[k];
    if (iface == trace::Iface::kCpu) {
      st.cpu_sec += sim::to_seconds(s.tend[k] - s.tstart[k]);
    } else if (iface == trace::Iface::kGpu) {
      st.gpu_sec += sim::to_seconds(s.tend[k] - s.tstart[k]);
    }
  }
  d.job_t0 = t0;
  d.job_t1 = t1;
}

/// Everything keyed off I/O rows, in one decode: op breakdowns (per-app and
/// chunk totals, per-proc I/O time, the interval collections, per-interface
/// data-op counts), the request-size histograms, and the file bookkeeping —
/// interning the scoped file once per row, then updating its stats, rank
/// sets, and access-stream state inline, plus the global transfer-size
/// frequencies and sequentiality counters.
void k_io(const ChunkSpan& s, DenseState& d,
          const std::vector<char>& fs_is_shared) {
  for (std::size_t k = 0; k < s.rows; ++k) {
    const trace::Op op = s.op[k];
    const trace::Iface iface = s.iface[k];
    if (!is_io_row(iface, op)) continue;
    const std::uint32_t cnt = s.count[k];
    const fs::Bytes sz = s.size[k];
    const fs::Bytes bytes = sz * static_cast<fs::Bytes>(cnt);
    const double dur = sim::to_seconds(s.tend[k] - s.tstart[k]);
    const bool data = trace::is_data(op);

    AppSlot& a = d.app(s.app[k]);
    add_op(a.stats.ops, op, cnt, bytes, dur);
    add_op(d.totals, op, cnt, bytes, dur);
    const std::uint64_t proc_key =
        (static_cast<std::uint64_t>(s.app[k]) << 32) |
        static_cast<std::uint32_t>(s.rank[k]);
    d.rank_io_sec[proc_key] += dur;
    d.io_intervals.emplace_back(s.tstart[k], s.tend[k]);
    if (data) {
      a.iface_ops[static_cast<std::size_t>(iface)] += cnt;
      if (op == trace::Op::kRead) {
        const std::size_t b = d.read_hist.bucket_index(sz);
        d.read_hist.add_at(b, cnt, bytes);
        d.read_iv[b].emplace_back(s.tstart[k], s.tend[k]);
      } else {
        const std::size_t b = d.write_hist.bucket_index(sz);
        d.write_hist.add_at(b, cnt, bytes);
        d.write_iv[b].emplace_back(s.tstart[k], s.tend[k]);
      }
    }

    const trace::FileKey key{s.fs[k], s.file[k]};
    if (!key.valid()) continue;
    const std::int32_t rank = s.rank[k];
    const int scope =
        fs_is_shared[static_cast<std::size_t>(key.fs)] ? -1 : s.node[k];

    bool fnew = false;
    const std::uint32_t idx =
        d.files.intern(ScopedFile{key.fs, scope, key.file}, fnew);
    FileSlot& f = d.files.slot(idx);

    if (data) {
      d.size_counts[sz] += cnt;
      // A coalesced record is internally sequential; only its first op can
      // break the stream relative to the rank's previous access.
      bool first_touch = false;
      StreamState& stream =
          f.streams.at_key(static_cast<std::uint32_t>(rank), first_touch);
      d.pattern_ops += cnt;
      d.seq_ops += cnt - 1;  // uint32 wrap on cnt==0, as the row loop had
      if (first_touch) {
        stream.first_offset = s.offset[k];
      } else if (stream.last_end == s.offset[k]) {
        ++d.seq_ops;
      }
      stream.last_end = s.offset[k] + bytes;
    }

    FileStats& fstat = f.stats;
    if (fnew) {
      fstat.key = key;
      fstat.node_scope = scope;
      fstat.first_access = s.tstart[k];
      fstat.last_access = s.tend[k];
      f.first_row = s.begin + k;
    } else {
      fstat.first_access = std::min(fstat.first_access, s.tstart[k]);
      fstat.last_access = std::max(fstat.last_access, s.tend[k]);
    }
    add_op(fstat.ops, op, cnt, bytes, dur);
    if (op == trace::Op::kRead) {
      f.readers.insert(rank);
      if (std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                    s.app[k]) == fstat.consumer_apps.end()) {
        fstat.consumer_apps.push_back(s.app[k]);
      }
    } else if (op == trace::Op::kWrite) {
      f.writers.insert(rank);
      if (std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                    s.app[k]) == fstat.producer_apps.end()) {
        fstat.producer_apps.push_back(s.app[k]);
      }
    }
  }
}

/// Sort the dense tables into ChunkState's key-ordered vectors — linear in
/// the number of *distinct keys* (plus the sorts), paid once per chunk, not
/// per row. The resulting ChunkState is byte-identical to the one the
/// ordered row loop builds.
ChunkState finalize(DenseState&& d) {
  ChunkState st;
  st.job_t0 = d.job_t0;
  st.job_t1 = d.job_t1;
  st.totals = d.totals;
  st.seq_ops = d.seq_ops;
  st.pattern_ops = d.pattern_ops;
  st.io_intervals = std::move(d.io_intervals);
  st.read_hist = std::move(d.read_hist);
  st.write_hist = std::move(d.write_hist);
  st.read_iv = std::move(d.read_iv);
  st.write_iv = std::move(d.write_iv);

  // Apps ascending by id — the order the uint16-keyed maps would hold.
  for (std::size_t id = 0; id < d.apps.size(); ++id) {
    AppSlot& a = d.apps[id];
    if (!a.used) continue;
    const auto aid = static_cast<std::uint16_t>(id);
    st.apps.emplace_hint(st.apps.end(), aid, std::move(a.stats));
    for (const std::int32_t r : a.ranks.sorted()) {
      st.procs.emplace_hint(st.procs.end(), aid, r);
    }
    for (std::size_t ifc = 0; ifc < kNumIfaces; ++ifc) {
      if (a.iface_ops[ifc] != 0) {
        st.iface_ops.emplace_hint(
            st.iface_ops.end(),
            std::make_pair(aid, static_cast<trace::Iface>(ifc)),
            a.iface_ops[ifc]);
      }
    }
    if (!a.io_rows.empty()) {
      st.io_by_app.emplace_hint(st.io_by_app.end(), aid,
                                std::move(a.io_rows));
    }
  }
  for (const std::int32_t n : d.nodes.sorted()) {
    st.nodes.insert(st.nodes.end(), n);
  }

  st.rank_io_sec = d.rank_io_sec.items();
  std::sort(st.rank_io_sec.begin(), st.rank_io_sec.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  st.size_counts = d.size_counts.items();
  std::sort(st.size_counts.begin(), st.size_counts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Files (and their streams) in ScopedFile order.
  std::vector<FileSlot>& slots = d.files.slots();
  std::vector<std::uint32_t> order(slots.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&slots](std::uint32_t a, std::uint32_t b) {
              return slots[a].sf < slots[b].sf;
            });
  st.files.reserve(slots.size());
  for (const std::uint32_t idx : order) {
    FileSlot& f = slots[idx];
    FileAgg fa;
    fa.sf = f.sf;
    fa.stats = std::move(f.stats);
    fa.first_row = f.first_row;
    fa.readers = f.readers.sorted();
    fa.writers = f.writers.sorted();
    st.files.push_back(std::move(fa));
    // Stream keys are (file, rank) pairs: file-major order with ranks
    // ascending inside a file reproduces the pair-keyed map's order.
    auto streams = f.streams.items();
    std::sort(streams.begin(), streams.end(), [](const auto& a,
                                                 const auto& b) {
      return static_cast<std::int32_t>(a.first) <
             static_cast<std::int32_t>(b.first);
    });
    for (const auto& [rank, stream] : streams) {
      st.streams.push_back(
          {f.sf, static_cast<std::int32_t>(rank), stream});
    }
  }
  return st;
}

}  // namespace

ChunkState scan_chunk(const TraceStore& store, const util::ChunkRange& range,
                      const std::vector<std::string>& app_names,
                      const std::vector<char>& fs_is_shared) {
  Cursor cs(store);
  DenseState d;
  d.read_iv.resize(d.read_hist.num_buckets());
  d.write_iv.resize(d.write_hist.num_buckets());
  for (std::size_t pos = range.begin; pos < range.end;) {
    const ChunkSpan s = cs.span(pos, range.end);
    k_apps(s, d, app_names);
    k_io(s, d, fs_is_shared);
    pos += s.rows;
  }
  return finalize(std::move(d));
}

ChunkState scan_chunk_reference(const TraceStore& store,
                                const util::ChunkRange& range,
                                const std::vector<std::string>& app_names,
                                const std::vector<char>& fs_is_shared) {
  Cursor cs(store);
  ChunkState st;
  st.read_iv.resize(st.read_hist.num_buckets());
  st.write_iv.resize(st.write_hist.num_buckets());
  st.job_t0 = cs.tstart(range.begin);
  st.job_t1 = cs.tend(range.begin);

  // The oracle accumulates into the classic ordered containers row by row —
  // the structure the kernels' determinism argument is stated against — and
  // converts to ChunkState's key-sorted vectors once at the end. The
  // conversion copies values without re-associating any floating-point sum.
  std::map<ScopedFile, FileStats> files;
  std::map<ScopedFile, std::size_t> file_first_row;
  std::map<ScopedFile, std::set<std::int32_t>> file_readers;
  std::map<ScopedFile, std::set<std::int32_t>> file_writers;
  std::map<std::uint64_t, double> rank_io_sec;
  std::map<std::pair<ScopedFile, std::int32_t>, StreamState> streams;
  std::map<fs::Bytes, std::uint64_t> size_counts;

  for (std::size_t i = range.begin; i < range.end; ++i) {
    // Decode the row once; every consumer below takes the held values.
    const trace::Op op = cs.op(i);
    const trace::Iface iface = cs.iface(i);
    const std::uint16_t app_id = cs.app(i);
    const std::int32_t rank = cs.rank(i);
    const std::int32_t node = cs.node(i);
    const sim::Time t0 = cs.tstart(i);
    const sim::Time t1 = cs.tend(i);
    const double dur = sim::to_seconds(t1 - t0);

    st.job_t0 = std::min(st.job_t0, t0);
    st.job_t1 = std::max(st.job_t1, t1);

    // App bookkeeping (all records).
    auto [ait, fresh] = st.apps.try_emplace(app_id);
    AppStats& app = ait->second;
    if (fresh) {
      app.app = app_id;
      app.name = app_id < app_names.size() ? app_names[app_id]
                                           : std::to_string(app_id);
      app.first_event = t0;
      app.last_event = t1;
    } else {
      app.first_event = std::min(app.first_event, t0);
      app.last_event = std::max(app.last_event, t1);
    }
    st.procs.insert({app_id, rank});
    st.nodes.insert(node);
    if (trace::is_io(op)) st.io_by_app[app_id].push_back(i);

    if (iface == trace::Iface::kCpu) {
      app.cpu_sec += dur;
      continue;
    }
    if (iface == trace::Iface::kGpu) {
      app.gpu_sec += dur;
      continue;
    }
    if (!trace::is_io(op)) continue;

    const std::uint32_t cnt = cs.count(i);
    const fs::Bytes sz = cs.size_col(i);
    const fs::Bytes bytes = sz * static_cast<fs::Bytes>(cnt);
    add_op(app.ops, op, cnt, bytes, dur);
    add_op(st.totals, op, cnt, bytes, dur);
    const std::uint64_t proc_key = (static_cast<std::uint64_t>(app_id) << 32) |
                                   static_cast<std::uint32_t>(rank);
    rank_io_sec[proc_key] += dur;
    st.io_intervals.emplace_back(t0, t1);
    if (trace::is_data(op)) {
      st.iface_ops[{app_id, iface}] += cnt;
    }

    // Histograms + interval collections (data ops only).
    if (op == trace::Op::kRead) {
      st.read_hist.add(sz, cnt, bytes, 0.0);
      st.read_iv[st.read_hist.bucket_index(sz)].push_back({t0, t1});
    } else if (op == trace::Op::kWrite) {
      st.write_hist.add(sz, cnt, bytes, 0.0);
      st.write_iv[st.write_hist.bucket_index(sz)].push_back({t0, t1});
    }

    // File bookkeeping — scoped from the key and node already in hand.
    const trace::FileKey key = cs.file(i);
    if (!key.valid()) continue;
    const int scope =
        fs_is_shared[static_cast<std::size_t>(key.fs)] ? -1 : node;
    const ScopedFile sf{key.fs, scope, key.file};

    if (trace::is_data(op)) {
      size_counts[sz] += cnt;
      // A coalesced record is internally sequential; only its first op can
      // break the stream relative to the rank's previous access.
      const fs::Bytes off = cs.offset(i);
      auto [sit, first_touch] =
          streams.try_emplace({sf, rank}, StreamState{off, off});
      st.pattern_ops += cnt;
      st.seq_ops += cnt - 1;
      if (!first_touch && sit->second.last_end == off) {
        ++st.seq_ops;
      }
      sit->second.last_end = off + bytes;
    }
    auto [fit, fnew] = files.try_emplace(sf);
    FileStats& fstat = fit->second;
    if (fnew) {
      fstat.key = key;
      fstat.node_scope = sf.node_scope;
      fstat.first_access = t0;
      fstat.last_access = t1;
      file_first_row.emplace(sf, i);
    } else {
      fstat.first_access = std::min(fstat.first_access, t0);
      fstat.last_access = std::max(fstat.last_access, t1);
    }
    add_op(fstat.ops, op, cnt, bytes, dur);
    if (op == trace::Op::kRead) {
      file_readers[sf].insert(rank);
      if (std::find(fstat.consumer_apps.begin(), fstat.consumer_apps.end(),
                    app_id) == fstat.consumer_apps.end()) {
        fstat.consumer_apps.push_back(app_id);
      }
    } else if (op == trace::Op::kWrite) {
      file_writers[sf].insert(rank);
      if (std::find(fstat.producer_apps.begin(), fstat.producer_apps.end(),
                    app_id) == fstat.producer_apps.end()) {
        fstat.producer_apps.push_back(app_id);
      }
    }
  }

  st.files.reserve(files.size());
  for (auto& [sf, fstat] : files) {
    FileAgg fa;
    fa.sf = sf;
    fa.stats = std::move(fstat);
    fa.first_row = file_first_row.at(sf);
    if (const auto it = file_readers.find(sf); it != file_readers.end()) {
      fa.readers.assign(it->second.begin(), it->second.end());
    }
    if (const auto it = file_writers.find(sf); it != file_writers.end()) {
      fa.writers.assign(it->second.begin(), it->second.end());
    }
    st.files.push_back(std::move(fa));
  }
  st.rank_io_sec.assign(rank_io_sec.begin(), rank_io_sec.end());
  st.size_counts.assign(size_counts.begin(), size_counts.end());
  st.streams.reserve(streams.size());
  for (const auto& [key2, state] : streams) {
    st.streams.push_back({key2.first, key2.second, state});
  }
  return st;
}

}  // namespace wasp::analysis
