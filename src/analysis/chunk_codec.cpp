#include "analysis/chunk_codec.hpp"

#include "util/error.hpp"

namespace wasp::analysis::codec {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    WASP_CHECK_MSG(p < end, "varint runs past the encoded buffer");
    const std::uint8_t b = *p++;
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
  }
  WASP_CHECK_MSG(false, "varint longer than 10 bytes");
  return 0;  // unreachable
}

std::vector<std::uint8_t> encode_delta(const std::uint64_t* vals,
                                       std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n + 8);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Wrapping difference, zigzagged so small moves in either direction
    // stay short.
    put_varint(out, zigzag(static_cast<std::int64_t>(vals[i] - prev)));
    prev = vals[i];
  }
  return out;
}

void decode_delta(const std::uint8_t* data, std::size_t len,
                  std::uint64_t* out, std::size_t n) {
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + len;
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += static_cast<std::uint64_t>(unzigzag(get_varint(p, end)));
    out[i] = prev;
  }
  WASP_CHECK_MSG(p == end, "delta column has trailing bytes");
}

std::vector<std::uint8_t> encode_rle(const std::uint64_t* vals,
                                     std::size_t n) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < n) {
    std::size_t run = 1;
    while (i + run < n && vals[i + run] == vals[i]) ++run;
    put_varint(out, run);
    put_varint(out, vals[i]);
    i += run;
  }
  return out;
}

void decode_rle(const std::uint8_t* data, std::size_t len, std::uint64_t* out,
                std::size_t n) {
  const std::uint8_t* p = data;
  const std::uint8_t* end = data + len;
  std::size_t produced = 0;
  while (produced < n) {
    const std::uint64_t run = get_varint(p, end);
    WASP_CHECK_MSG(run > 0 && run <= n - produced,
                   "RLE run length out of range");
    const std::uint64_t v = get_varint(p, end);
    for (std::uint64_t k = 0; k < run; ++k) out[produced++] = v;
  }
  WASP_CHECK_MSG(p == end, "RLE column has trailing bytes");
}

}  // namespace wasp::analysis::codec
