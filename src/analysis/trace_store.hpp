// TraceStore — backend abstraction over columnar trace storage, the seam
// that turns the analyzer from an in-core library into a bounded-memory
// pipeline. A store presents the trace as fixed-size columnar chunks (one
// contiguous buffer per column, chunk c covering rows
// [c*chunk_rows, min((c+1)*chunk_rows, size))), and a Cursor walks rows by
// global index while pinning one chunk at a time.
//
// Two backends implement it: ColumnStore (in-memory; chunk views are
// zero-copy slices of its columns) and SpillColumnStore (chunk files on
// disk with a bounded LRU of resident chunks). Both serve bit-identical
// column values through the same cursor, and the analyzer's map-reduce
// chunking/merge order is independent of the storage chunking — so profiles
// are byte-identical across backends and job counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/record.hpp"

namespace wasp::analysis {

/// Backend I/O counters, exposed uniformly through TraceStore so tools and
/// benchmarks can report where analysis wall-clock went. The in-memory
/// backend reports all-zero; the spill backend fills every field.
struct IoStats {
  std::uint64_t chunk_loads = 0;      ///< chunk files read + decoded
  std::uint64_t cache_hits = 0;       ///< chunk() served without a disk read
  std::uint64_t evictions = 0;        ///< chunks dropped from the LRU
  std::uint64_t prefetch_issued = 0;  ///< background read-ahead loads
  std::uint64_t prefetch_hits = 0;    ///< demand fetches served by read-ahead
  std::uint64_t prefetch_wasted = 0;  ///< prefetched chunks evicted unused
  std::uint64_t bytes_written = 0;    ///< chunk-file bytes on disk
  std::uint64_t bytes_read = 0;       ///< chunk-file bytes read back
  std::uint64_t raw_bytes = 0;        ///< uncompressed column payload bytes

  struct ColumnStats {
    const char* name;            ///< column name ("tstart", "op", ...)
    std::uint64_t raw_bytes;     ///< fixed-width array size
    std::uint64_t stored_bytes;  ///< encoded size on disk (incl. tag+len)
  };
  std::vector<ColumnStats> columns;

  double hit_rate() const noexcept {
    const std::uint64_t total = cache_hits + chunk_loads;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  double prefetch_hit_rate() const noexcept {
    return prefetch_issued == 0
               ? 0.0
               : static_cast<double>(prefetch_hits) /
                     static_cast<double>(prefetch_issued);
  }
  /// Stored/raw over every column payload; 1.0 when uncompressed (or no
  /// spill traffic at all).
  double compressed_ratio() const noexcept {
    return raw_bytes == 0 ? 1.0
                          : static_cast<double>(bytes_written) /
                                static_cast<double>(raw_bytes);
  }
};

/// Borrowed columnar view of one storage chunk: rows [base, base + rows).
/// Pointers index chunk-locally: column[i - base] for a global row i.
struct ChunkColumns {
  std::size_t base = 0;
  std::size_t rows = 0;
  const std::uint16_t* app = nullptr;
  const std::int32_t* rank = nullptr;
  const std::int32_t* node = nullptr;
  const trace::Iface* iface = nullptr;
  const trace::Op* op = nullptr;
  const std::int16_t* fs = nullptr;
  const fs::FileId* file = nullptr;
  const fs::Bytes* offset = nullptr;
  const fs::Bytes* size = nullptr;
  const std::uint32_t* count = nullptr;
  const sim::Time* tstart = nullptr;
  const sim::Time* tend = nullptr;
  // Auxiliary columns carried by offline logs; null when absent.
  const std::uint32_t* path_idx = nullptr;
  const std::uint64_t* file_size = nullptr;

  bool contains(std::size_t i) const noexcept {
    return i >= base && i - base < rows;
  }
};

/// A pinned chunk: the view stays valid for as long as `pin` is held, even
/// if the backend's cache evicts the chunk meanwhile. The in-memory backend
/// leaves pin null (its buffers live as long as the store).
struct ChunkHandle {
  ChunkColumns cols;
  std::shared_ptr<const void> pin;
};

/// Zero-offset columnar window over a contiguous run of resident rows:
/// column[k] is row `begin + k` for k in [0, rows). This is what the
/// batched scan kernels consume — one span per storage chunk instead of a
/// residency check per column read. The pointers borrow the cursor's
/// current pin and stay valid until the cursor seeks past the span.
struct ChunkSpan {
  std::size_t begin = 0;  ///< global row index of element 0
  std::size_t rows = 0;   ///< contiguous rows served by this span
  const std::uint16_t* app = nullptr;
  const std::int32_t* rank = nullptr;
  const std::int32_t* node = nullptr;
  const trace::Iface* iface = nullptr;
  const trace::Op* op = nullptr;
  const std::int16_t* fs = nullptr;
  const fs::FileId* file = nullptr;
  const fs::Bytes* offset = nullptr;
  const fs::Bytes* size = nullptr;
  const std::uint32_t* count = nullptr;
  const sim::Time* tstart = nullptr;
  const sim::Time* tend = nullptr;
  const std::uint32_t* path_idx = nullptr;   // null when absent
  const std::uint64_t* file_size = nullptr;  // null when absent
};

class TraceStore {
 public:
  virtual ~TraceStore() = default;

  virtual std::size_t size() const noexcept = 0;
  /// Storage-chunk size in rows (>= 1). Purely a storage property: analysis
  /// results do not depend on it.
  virtual std::size_t chunk_rows() const noexcept = 0;
  /// Fetch storage chunk `chunk_index`. Thread-safe: concurrent cursors may
  /// fetch chunks from worker threads.
  virtual ChunkHandle chunk(std::size_t chunk_index) const = 0;
  /// The maximal contiguous resident view containing `row`. The base
  /// implementation serves the row's storage chunk; backends whose chunk
  /// views alias one contiguous allocation (ColumnStore) override to hand
  /// out the whole store in a single view, so a sequential scan resolves
  /// residency exactly once. Span partitioning never changes analysis
  /// results — kernels accumulate per-row state in row order regardless of
  /// where span boundaries fall.
  virtual ChunkHandle span_at(std::size_t row) const {
    return chunk(row / chunk_rows());
  }

  std::size_t num_chunks() const noexcept {
    const std::size_t n = size();
    return n == 0 ? 0 : (n - 1) / chunk_rows() + 1;
  }

  /// Largest fs registry index across all rows (-1 when every row is
  /// file-less or the store is empty). The base implementation scans the
  /// whole trace through a cursor; backends that track it during append
  /// override to answer in O(1) — for a spill store that saves one full
  /// serial pass over every chunk file per analyze() call.
  virtual std::int16_t max_fs() const;

  /// Backend I/O counters (loads, cache behavior, bytes, compression).
  /// Purely in-memory backends report the default all-zero stats.
  virtual IoStats io_stats() const { return {}; }

  /// Reconstruct one row (serial post-merge resolution, tests, CSV export).
  trace::Record row(std::size_t i) const;
};

/// Row-indexed access over a TraceStore, caching the chunk that served the
/// last access — sequential scans fetch each chunk exactly once. Construct
/// one Cursor per thread; the cursor itself is not thread-safe (the store
/// is). Accessor names mirror ColumnStore's so scan code reads the same.
class Cursor {
 public:
  explicit Cursor(const TraceStore& store) : store_(&store) {}

  std::uint16_t app(std::size_t i) { const auto& c = at(i); return c.app[i - c.base]; }
  std::int32_t rank(std::size_t i) { const auto& c = at(i); return c.rank[i - c.base]; }
  std::int32_t node(std::size_t i) { const auto& c = at(i); return c.node[i - c.base]; }
  trace::Iface iface(std::size_t i) { const auto& c = at(i); return c.iface[i - c.base]; }
  trace::Op op(std::size_t i) { const auto& c = at(i); return c.op[i - c.base]; }
  trace::FileKey file(std::size_t i) {
    const auto& c = at(i);
    return {c.fs[i - c.base], c.file[i - c.base]};
  }
  fs::Bytes offset(std::size_t i) { const auto& c = at(i); return c.offset[i - c.base]; }
  fs::Bytes size_col(std::size_t i) { const auto& c = at(i); return c.size[i - c.base]; }
  std::uint32_t count(std::size_t i) { const auto& c = at(i); return c.count[i - c.base]; }
  sim::Time tstart(std::size_t i) { const auto& c = at(i); return c.tstart[i - c.base]; }
  sim::Time tend(std::size_t i) { const auto& c = at(i); return c.tend[i - c.base]; }

  fs::Bytes total_bytes(std::size_t i) {
    const auto& c = at(i);
    return c.size[i - c.base] * static_cast<fs::Bytes>(c.count[i - c.base]);
  }
  double duration_sec(std::size_t i) {
    const auto& c = at(i);
    return sim::to_seconds(c.tend[i - c.base] - c.tstart[i - c.base]);
  }

  /// Batched access: the contiguous resident run starting at row `i`,
  /// clipped to `limit` (exclusive). Scan kernels walk a range as
  ///   for (pos = begin; pos < end; pos += cursor.span(pos, end).rows)
  /// paying one residency resolution per storage chunk instead of one check
  /// per column read. The span borrows this cursor's pin: it is invalidated
  /// by the next span()/accessor call that seeks to a different chunk.
  ChunkSpan span(std::size_t i, std::size_t limit);

 private:
  const ChunkColumns& at(std::size_t i) {
    if (!handle_.cols.contains(i)) seek(i);
    return handle_.cols;
  }
  void seek(std::size_t i);

  const TraceStore* store_;
  ChunkHandle handle_{};
};

}  // namespace wasp::analysis
