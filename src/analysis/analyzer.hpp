// The Analyzer: turns a trace (via ColumnStore) into a WorkloadProfile.
// Simulated counterpart of the Vani suite's Analyzer tool.
#pragma once

#include <functional>

#include "analysis/column_store.hpp"
#include "analysis/profile.hpp"
#include "trace/log_io.hpp"
#include "trace/tracer.hpp"

namespace wasp::analysis {

/// Uniform trace source for the analyzer: a live Tracer, a persisted
/// LogData, or any TraceStore backend all reduce to this view.
struct TraceInput {
  /// Row-major records, transposed into an in-memory ColumnStore. Ignored
  /// when `store` is set.
  std::span<const trace::Record> records;
  /// Columnar backend to stream from directly (in-memory or spill); takes
  /// precedence over `records`. Not owned — must outlive the analyze call.
  const TraceStore* store = nullptr;
  std::vector<std::string> app_names;
  /// Resolved file path of record i ("" when file-less).
  std::function<std::string(std::size_t)> path_at;
  /// Size of record i's file at end of run (0 if unknown).
  std::function<fs::Bytes(std::size_t)> size_at;
  /// Whether filesystem index shares one namespace across nodes.
  std::function<bool(std::int16_t)> fs_shared;
};

/// Build a TraceInput over a live tracer's registries. With `store` set (a
/// spill store the tracer flushed into), rows resolve through the store
/// instead of tracer.records(). The returned input borrows both arguments.
TraceInput tracer_input(const trace::Tracer& tracer,
                        const TraceStore* store = nullptr);

class Analyzer {
 public:
  struct Options {
    /// Gap between consecutive I/O calls that separates two phases.
    sim::Time phase_gap = 1 * sim::kSec;
    /// Timeline resolution.
    sim::Time timeline_bin = 1 * sim::kSec;
    /// Cap on timeline bins (long jobs get coarser bins instead).
    std::size_t max_timeline_bins = 2048;
    /// Worker threads for the chunked map-reduce passes. 0 picks up
    /// util::default_jobs() (WASP_JOBS / --jobs). The profile is
    /// bit-identical for every value: chunk boundaries depend only on the
    /// trace size and chunk_rows, and per-chunk partials are merged in
    /// chunk-index order.
    int jobs = 0;
    /// Rows per map-reduce chunk. Part of the deterministic algorithm
    /// definition: changing it may change the merge order of floating-point
    /// partial sums (never the semantics).
    std::size_t chunk_rows = 65536;
    /// Use the scalar row-at-a-time map step instead of the batched
    /// columnar kernels. The two are byte-identical by construction; this
    /// exists so tests (and benchmarks) can pit them against each other.
    bool reference_scan = false;
  };

  Analyzer() : opts_() {}
  explicit Analyzer(const Options& opts) : opts_(opts) {}

  /// Analyze a live trace (uses the tracer's registries to resolve names
  /// and paths).
  WorkloadProfile analyze(const trace::Tracer& tracer) const;

  /// Analyze a persisted Recorder-style log (offline pipeline — no
  /// Simulation required).
  WorkloadProfile analyze(const trace::LogData& log) const;

  /// Analyze any trace view.
  WorkloadProfile analyze(const TraceInput& input) const;

  const Options& options() const noexcept { return opts_; }

  /// Union length (seconds) of a set of [t0,t1] intervals — the wall time a
  /// bucket of operations was actually active, used for aggregate-bandwidth
  /// figures. Exposed for tests.
  static double union_seconds(std::vector<std::pair<sim::Time, sim::Time>> iv);

 private:
  WorkloadProfile analyze_store(const TraceStore& store,
                                const TraceInput& input) const;

  Options opts_;
};

}  // namespace wasp::analysis
