#include "analysis/spill_store.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/error.hpp"

namespace wasp::analysis {
namespace {

// Chunk file: magic, version, rows, flags (bit0 = aux columns present),
// then the raw column arrays in declaration order.
constexpr char kChunkMagic[8] = {'W', 'S', 'P', 'C', 'H', 'K', '0', '1'};
constexpr std::uint64_t kChunkVersion = 1;
constexpr std::uint64_t kFlagAux = 1;

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

template <typename T>
void write_col(std::ofstream& os, const std::vector<T>& col) {
  os.write(reinterpret_cast<const char*>(col.data()),
           static_cast<std::streamsize>(col.size() * sizeof(T)));
}

template <typename T>
void read_col(std::ifstream& is, std::vector<T>& col, std::size_t rows) {
  col.resize(rows);
  is.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(rows * sizeof(T)));
}

}  // namespace

SpillColumnStore::ChunkData::~ChunkData() {
  if (residency) residency->resident.fetch_sub(1, std::memory_order_relaxed);
}

SpillColumnStore::SpillColumnStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.chunk_rows == 0) opts_.chunk_rows = 1;
  if (opts_.max_resident_chunks == 0) opts_.max_resident_chunks = 1;
  WASP_CHECK_MSG(!opts_.dir.empty(), "spill directory must be set");
  std::error_code ec;
  std::filesystem::create_directories(opts_.dir, ec);
  WASP_CHECK_MSG(!ec, "cannot create spill directory: " + opts_.dir);
  residency_ = std::make_shared<Residency>();
}

SpillColumnStore::~SpillColumnStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
  }
  std::error_code ec;
  for (std::size_t c = 0; c < chunks_written_; ++c) {
    std::filesystem::remove(chunk_path(c), ec);
  }
  // Only removed when empty — a shared spill dir with other stores' files
  // stays put.
  std::filesystem::remove(opts_.dir, ec);
}

std::string SpillColumnStore::chunk_path(std::size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "chunk_%06zu.wspc", index);
  return opts_.dir + "/" + name;
}

void SpillColumnStore::push_row(const trace::Record& r) {
  open_.app.push_back(r.app);
  open_.rank.push_back(r.rank);
  open_.node.push_back(r.node);
  open_.iface.push_back(r.iface);
  open_.op.push_back(r.op);
  open_.fs.push_back(r.file.fs);
  open_.file.push_back(r.file.file);
  open_.offset.push_back(r.offset);
  open_.size.push_back(r.size);
  open_.count.push_back(r.count);
  open_.tstart.push_back(r.tstart);
  open_.tend.push_back(r.tend);
}

void SpillColumnStore::maybe_flush() {
  if (open_.rows() >= opts_.chunk_rows) flush_open_chunk();
}

void SpillColumnStore::append(std::span<const trace::Record> records) {
  WASP_CHECK_MSG(!finalized_, "append to finalized spill store");
  WASP_CHECK_MSG(!aux_decided_ || !has_aux_,
                 "mixing aux and non-aux appends on one spill store");
  aux_decided_ = true;
  for (const trace::Record& r : records) {
    push_row(r);
    maybe_flush();
  }
  total_rows_ += records.size();
}

void SpillColumnStore::append(std::span<const trace::Record> records,
                              std::span<const std::uint32_t> path_idx,
                              std::span<const std::uint64_t> file_sizes) {
  WASP_CHECK_MSG(!finalized_, "append to finalized spill store");
  WASP_CHECK_MSG(!aux_decided_ || has_aux_,
                 "mixing aux and non-aux appends on one spill store");
  WASP_CHECK_MSG(
      records.size() == path_idx.size() && records.size() == file_sizes.size(),
      "aux columns must parallel the record span");
  aux_decided_ = true;
  has_aux_ = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    push_row(records[i]);
    open_.path_idx.push_back(path_idx[i]);
    open_.file_size.push_back(file_sizes[i]);
    maybe_flush();
  }
  total_rows_ += records.size();
}

void SpillColumnStore::finalize() {
  WASP_CHECK_MSG(!finalized_, "finalize called twice");
  flush_open_chunk();
  finalized_ = true;
}

void SpillColumnStore::flush_open_chunk() {
  const std::size_t rows = open_.rows();
  if (rows == 0) return;
  const std::string path = chunk_path(chunks_written_);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  WASP_CHECK_MSG(os.good(), "cannot open spill chunk for writing: " + path);
  os.write(kChunkMagic, sizeof(kChunkMagic));
  write_u64(os, kChunkVersion);
  write_u64(os, rows);
  write_u64(os, has_aux_ ? kFlagAux : 0);
  write_col(os, open_.app);
  write_col(os, open_.rank);
  write_col(os, open_.node);
  write_col(os, open_.iface);
  write_col(os, open_.op);
  write_col(os, open_.fs);
  write_col(os, open_.file);
  write_col(os, open_.offset);
  write_col(os, open_.size);
  write_col(os, open_.count);
  write_col(os, open_.tstart);
  write_col(os, open_.tend);
  if (has_aux_) {
    write_col(os, open_.path_idx);
    write_col(os, open_.file_size);
  }
  os.flush();
  WASP_CHECK_MSG(os.good(), "short write to spill chunk: " + path);
  open_ = Columns{};
  ++chunks_written_;
}

std::shared_ptr<const SpillColumnStore::ChunkData> SpillColumnStore::load_chunk(
    std::size_t index) const {
  const std::string path = chunk_path(index);
  std::ifstream is(path, std::ios::binary);
  WASP_CHECK_MSG(is.good(), "cannot open spill chunk: " + path);
  char magic[sizeof(kChunkMagic)] = {};
  is.read(magic, sizeof(magic));
  WASP_CHECK_MSG(std::equal(magic, magic + sizeof(magic), kChunkMagic),
                 "bad spill chunk magic: " + path);
  WASP_CHECK_MSG(read_u64(is) == kChunkVersion,
                 "unsupported spill chunk version: " + path);
  const std::uint64_t rows64 = read_u64(is);
  const std::uint64_t flags = read_u64(is);
  const auto rows = static_cast<std::size_t>(rows64);
  WASP_CHECK_MSG(rows > 0 && rows <= opts_.chunk_rows,
                 "spill chunk row count out of range: " + path);
  const bool aux = (flags & kFlagAux) != 0;
  WASP_CHECK_MSG(aux == has_aux_, "spill chunk aux flag mismatch: " + path);

  auto data = std::make_shared<ChunkData>();
  data->residency = residency_;
  Columns& c = data->cols;
  read_col(is, c.app, rows);
  read_col(is, c.rank, rows);
  read_col(is, c.node, rows);
  read_col(is, c.iface, rows);
  read_col(is, c.op, rows);
  read_col(is, c.fs, rows);
  read_col(is, c.file, rows);
  read_col(is, c.offset, rows);
  read_col(is, c.size, rows);
  read_col(is, c.count, rows);
  read_col(is, c.tstart, rows);
  read_col(is, c.tend, rows);
  if (aux) {
    read_col(is, c.path_idx, rows);
    read_col(is, c.file_size, rows);
  }
  WASP_CHECK_MSG(is.good(), "truncated spill chunk: " + path);

  loads_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      residency_->resident.fetch_add(1, std::memory_order_relaxed) + 1;
  std::size_t peak = residency_->peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !residency_->peak.compare_exchange_weak(peak, now,
                                                 std::memory_order_relaxed)) {
  }
  return data;
}

ChunkColumns SpillColumnStore::view_of(const ChunkData& data,
                                       std::size_t base) const {
  const Columns& c = data.cols;
  ChunkColumns v;
  v.base = base;
  v.rows = c.rows();
  v.app = c.app.data();
  v.rank = c.rank.data();
  v.node = c.node.data();
  v.iface = c.iface.data();
  v.op = c.op.data();
  v.fs = c.fs.data();
  v.file = c.file.data();
  v.offset = c.offset.data();
  v.size = c.size.data();
  v.count = c.count.data();
  v.tstart = c.tstart.data();
  v.tend = c.tend.data();
  if (!c.path_idx.empty()) v.path_idx = c.path_idx.data();
  if (!c.file_size.empty()) v.file_size = c.file_size.data();
  return v;
}

ChunkHandle SpillColumnStore::chunk(std::size_t chunk_index) const {
  WASP_CHECK_MSG(finalized_, "reading a spill store before finalize()");
  WASP_CHECK_MSG(chunk_index < chunks_written_,
                 "spill chunk index out of range");
  std::shared_ptr<const ChunkData> data;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(chunk_index);
    if (it != cache_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second.second);
      data = it->second.first;
    } else {
      // Make room before loading so the cache never exceeds its cap.
      while (cache_.size() >= opts_.max_resident_chunks && !lru_.empty()) {
        const std::size_t victim = lru_.back();
        lru_.pop_back();
        cache_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      data = load_chunk(chunk_index);
      lru_.push_front(chunk_index);
      cache_.emplace(chunk_index, std::make_pair(data, lru_.begin()));
    }
  }
  ChunkHandle h;
  h.cols = view_of(*data, chunk_index * opts_.chunk_rows);
  h.pin = std::shared_ptr<const void>(data, data.get());
  return h;
}

std::uint32_t SpillColumnStore::path_idx_at(std::size_t i) const {
  WASP_CHECK_MSG(has_aux_, "spill store carries no path column");
  const ChunkHandle h = chunk(i / opts_.chunk_rows);
  return h.cols.path_idx[i - h.cols.base];
}

fs::Bytes SpillColumnStore::file_size_at(std::size_t i) const {
  WASP_CHECK_MSG(has_aux_, "spill store carries no file-size column");
  const ChunkHandle h = chunk(i / opts_.chunk_rows);
  return h.cols.file_size[i - h.cols.base];
}

std::size_t SpillColumnStore::resident_chunks() const noexcept {
  return residency_->resident.load(std::memory_order_relaxed);
}

std::size_t SpillColumnStore::peak_resident_chunks() const noexcept {
  return residency_->peak.load(std::memory_order_relaxed);
}

}  // namespace wasp::analysis
