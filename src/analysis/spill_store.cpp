#include "analysis/spill_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "analysis/chunk_codec.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasp::analysis {
namespace {

// Chunk file, both versions: 8-byte magic, u64 version, u64 rows, u64 flags
// (bit0 = aux columns present), then the columns in declaration order.
// WSPCHK01 stores raw column arrays; WSPCHK02 stores each column as
// [u8 encoding tag][u64 payload bytes][payload] (see chunk_codec.hpp).
constexpr char kChunkMagicV1[8] = {'W', 'S', 'P', 'C', 'H', 'K', '0', '1'};
constexpr char kChunkMagicV2[8] = {'W', 'S', 'P', 'C', 'H', 'K', '0', '2'};
constexpr std::uint64_t kFlagAux = 1;

constexpr const char* kColNames[] = {
    "app",   "rank",  "node",   "iface",    "op",        "fs",  "file",
    "offset", "size", "count",  "tstart",   "tend",      "path_idx",
    "file_size",
};

// One store per subdirectory: a process-wide sequence number plus the pid
// keeps two stores sharing one --spill-dir (even across processes) from
// ever colliding on chunk file names.
std::atomic<std::uint64_t> g_store_seq{0};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

/// Remove a partially-written chunk so a disk-full flush never leaves a
/// truncated file that a later load would diagnose as corruption. Guarded:
/// only regular files and symlinks are unlinked (tests symlink chunk paths
/// at /dev/full; a device node must never be removed).
void remove_partial_chunk(const std::string& path) {
  std::error_code ec;
  const auto st = std::filesystem::symlink_status(path, ec);
  if (!ec && (std::filesystem::is_regular_file(st) ||
              std::filesystem::is_symlink(st))) {
    std::filesystem::remove(path, ec);
  }
}

template <typename T>
void write_col_raw(std::ostream& os, const std::vector<T>& col) {
  os.write(reinterpret_cast<const char*>(col.data()),
           static_cast<std::streamsize>(col.size() * sizeof(T)));
}

template <typename T>
void read_col_raw(std::istream& is, std::vector<T>& col, std::size_t rows) {
  col.resize(rows);
  is.read(reinterpret_cast<char*>(col.data()),
          static_cast<std::streamsize>(rows * sizeof(T)));
}

/// Read one WSPCHK02 column: tag, payload length, payload; decode into the
/// typed column. Every length and the decoded row count are validated, so
/// truncated or corrupt files throw instead of mis-decoding.
template <typename T>
void read_col_v2(std::istream& is, std::vector<T>& col, std::size_t rows,
                 const std::string& path) {
  std::uint8_t tag = 0xff;
  is.read(reinterpret_cast<char*>(&tag), 1);
  const std::uint64_t len = read_u64(is);
  WASP_CHECK_MSG(is.good(), "truncated spill chunk column header: " + path);
  switch (static_cast<codec::Encoding>(tag)) {
    case codec::Encoding::kRaw: {
      WASP_CHECK_MSG(len == rows * sizeof(T),
                     "raw column length mismatch in spill chunk: " + path);
      read_col_raw(is, col, rows);
      WASP_CHECK_MSG(is.good(), "truncated spill chunk: " + path);
      return;
    }
    case codec::Encoding::kDelta:
    case codec::Encoding::kRle: {
      WASP_CHECK_MSG(len <= codec::max_encoded_bytes(rows),
                     "oversized encoded column in spill chunk: " + path);
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
      is.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
      WASP_CHECK_MSG(is.good(), "truncated spill chunk: " + path);
      std::vector<std::uint64_t> widened(rows);
      if (static_cast<codec::Encoding>(tag) == codec::Encoding::kDelta) {
        codec::decode_delta(buf.data(), buf.size(), widened.data(), rows);
      } else {
        codec::decode_rle(buf.data(), buf.size(), widened.data(), rows);
      }
      col.resize(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        col[i] = codec::narrow<T>(widened[i]);
      }
      return;
    }
    default:
      WASP_CHECK_MSG(false, "unknown column encoding in spill chunk: " + path);
  }
}

}  // namespace

SpillColumnStore::ChunkData::~ChunkData() {
  if (residency) residency->resident.fetch_sub(1, std::memory_order_relaxed);
}

SpillColumnStore::SpillColumnStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.chunk_rows == 0) opts_.chunk_rows = 1;
  if (opts_.max_resident_chunks == 0) opts_.max_resident_chunks = 1;
  WASP_CHECK_MSG(!opts_.dir.empty(), "spill directory must be set");
  dir_ = opts_.dir + "/store_" + std::to_string(::getpid()) + "_" +
         std::to_string(g_store_seq.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  WASP_CHECK_MSG(!ec, "cannot create spill directory: " + dir_);
  residency_ = std::make_shared<Residency>();
}

SpillColumnStore::~SpillColumnStore() {
  if (prefetch_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(pf_mu_);
      pf_stop_ = true;
    }
    pf_cv_.notify_one();
    prefetch_thread_.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    lru_.clear();
  }
  std::error_code ec;
  for (std::size_t c = 0; c < chunks_written_; ++c) {
    std::filesystem::remove(chunk_file_path(c), ec);
  }
  std::filesystem::remove(dir_, ec);
  // Only removed when empty — a shared spill dir with other stores'
  // subdirectories stays put.
  std::filesystem::remove(opts_.dir, ec);
}

std::string SpillColumnStore::chunk_file_path(std::size_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "chunk_%06zu.wspc", index);
  return dir_ + "/" + name;
}

void SpillColumnStore::push_row(const trace::Record& r) {
  open_.app.push_back(r.app);
  open_.rank.push_back(r.rank);
  open_.node.push_back(r.node);
  open_.iface.push_back(r.iface);
  open_.op.push_back(r.op);
  open_.fs.push_back(r.file.fs);
  open_.file.push_back(r.file.file);
  open_.offset.push_back(r.offset);
  open_.size.push_back(r.size);
  open_.count.push_back(r.count);
  open_.tstart.push_back(r.tstart);
  open_.tend.push_back(r.tend);
  max_fs_ = std::max(max_fs_, r.file.fs);
}

void SpillColumnStore::maybe_flush() {
  if (open_.rows() >= opts_.chunk_rows) flush_open_chunk();
}

void SpillColumnStore::append(std::span<const trace::Record> records) {
  WASP_CHECK_MSG(!finalized_, "append to finalized spill store");
  WASP_CHECK_MSG(!aux_decided_ || !has_aux_,
                 "mixing aux and non-aux appends on one spill store");
  aux_decided_ = true;
  for (const trace::Record& r : records) {
    push_row(r);
    maybe_flush();
  }
  total_rows_ += records.size();
}

void SpillColumnStore::append(std::span<const trace::Record> records,
                              std::span<const std::uint32_t> path_idx,
                              std::span<const std::uint64_t> file_sizes) {
  WASP_CHECK_MSG(!finalized_, "append to finalized spill store");
  WASP_CHECK_MSG(!aux_decided_ || has_aux_,
                 "mixing aux and non-aux appends on one spill store");
  WASP_CHECK_MSG(
      records.size() == path_idx.size() && records.size() == file_sizes.size(),
      "aux columns must parallel the record span");
  aux_decided_ = true;
  has_aux_ = true;
  for (std::size_t i = 0; i < records.size(); ++i) {
    push_row(records[i]);
    open_.path_idx.push_back(path_idx[i]);
    open_.file_size.push_back(file_sizes[i]);
    maybe_flush();
  }
  total_rows_ += records.size();
}

void SpillColumnStore::finalize() {
  WASP_CHECK_MSG(!finalized_, "finalize called twice");
  flush_open_chunk();
  finalized_ = true;
  if (opts_.prefetch && chunks_written_ > 1) {
    prefetch_thread_ = std::thread(&SpillColumnStore::prefetch_loop, this);
  }
}

template <typename T>
void SpillColumnStore::write_col_v2(std::ostream& os, const std::vector<T>& col,
                                    Col id) {
  const std::size_t n = col.size();
  std::vector<std::uint64_t> widened(n);
  for (std::size_t i = 0; i < n; ++i) widened[i] = codec::widen(col[i]);
  const auto delta = codec::encode_delta(widened.data(), n);
  const auto rle = codec::encode_rle(widened.data(), n);
  const std::size_t raw_size = n * sizeof(T);

  codec::Encoding enc = codec::Encoding::kRaw;
  std::size_t payload = raw_size;
  if (delta.size() < payload) {
    enc = codec::Encoding::kDelta;
    payload = delta.size();
  }
  if (rle.size() < payload) {
    enc = codec::Encoding::kRle;
    payload = rle.size();
  }

  const auto tag = static_cast<std::uint8_t>(enc);
  os.write(reinterpret_cast<const char*>(&tag), 1);
  write_u64(os, payload);
  switch (enc) {
    case codec::Encoding::kRaw:
      write_col_raw(os, col);
      break;
    case codec::Encoding::kDelta:
      os.write(reinterpret_cast<const char*>(delta.data()),
               static_cast<std::streamsize>(delta.size()));
      break;
    case codec::Encoding::kRle:
      os.write(reinterpret_cast<const char*>(rle.data()),
               static_cast<std::streamsize>(rle.size()));
      break;
  }
  col_raw_[id] += raw_size;
  col_stored_[id] += payload + 1 + sizeof(std::uint64_t);
}

void SpillColumnStore::flush_open_chunk() {
  const std::size_t rows = open_.rows();
  if (rows == 0) return;
  const std::string path = chunk_file_path(chunks_written_);
  errno = 0;
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os.good()) {
    const int err = errno;
    throw util::SimError("cannot open spill chunk for writing: " + path +
                         (err != 0 ? std::string(" (") + std::strerror(err) + ")"
                                   : std::string()));
  }
  // col_stored_ accumulates the exact on-disk payload per column as each is
  // written; its delta across this flush is the expected body size, used to
  // diagnose short writes below.
  std::uint64_t stored_before = 0;
  for (std::size_t c = 0; c < kNumCols; ++c) stored_before += col_stored_[c];
  errno = 0;
  const std::uint64_t flags = has_aux_ ? kFlagAux : 0;
  if (opts_.compress) {
    os.write(kChunkMagicV2, sizeof(kChunkMagicV2));
    write_u64(os, 2);
    write_u64(os, rows);
    write_u64(os, flags);
    write_col_v2(os, open_.app, kColApp);
    write_col_v2(os, open_.rank, kColRank);
    write_col_v2(os, open_.node, kColNode);
    write_col_v2(os, open_.iface, kColIface);
    write_col_v2(os, open_.op, kColOp);
    write_col_v2(os, open_.fs, kColFs);
    write_col_v2(os, open_.file, kColFile);
    write_col_v2(os, open_.offset, kColOffset);
    write_col_v2(os, open_.size, kColSize);
    write_col_v2(os, open_.count, kColCount);
    write_col_v2(os, open_.tstart, kColTstart);
    write_col_v2(os, open_.tend, kColTend);
    if (has_aux_) {
      write_col_v2(os, open_.path_idx, kColPathIdx);
      write_col_v2(os, open_.file_size, kColFileSize);
    }
  } else {
    os.write(kChunkMagicV1, sizeof(kChunkMagicV1));
    write_u64(os, 1);
    write_u64(os, rows);
    write_u64(os, flags);
    const auto raw_col = [&](const auto& col, Col id) {
      using T = typename std::decay_t<decltype(col)>::value_type;
      write_col_raw(os, col);
      const std::uint64_t bytes = col.size() * sizeof(T);
      col_raw_[id] += bytes;
      col_stored_[id] += bytes;
    };
    raw_col(open_.app, kColApp);
    raw_col(open_.rank, kColRank);
    raw_col(open_.node, kColNode);
    raw_col(open_.iface, kColIface);
    raw_col(open_.op, kColOp);
    raw_col(open_.fs, kColFs);
    raw_col(open_.file, kColFile);
    raw_col(open_.offset, kColOffset);
    raw_col(open_.size, kColSize);
    raw_col(open_.count, kColCount);
    raw_col(open_.tstart, kColTstart);
    raw_col(open_.tend, kColTend);
    if (has_aux_) {
      raw_col(open_.path_idx, kColPathIdx);
      raw_col(open_.file_size, kColFileSize);
    }
  }
  os.flush();
  if (!os.good()) {
    // Graceful degradation on a real disk error (ENOSPC, EIO, quota): close
    // the stream, measure what actually landed, delete the partial chunk so
    // the store directory never holds a truncated file, and surface one
    // diagnosed error instead of a corrupt-chunk failure at read time.
    const int err = errno;
    std::uint64_t stored_after = 0;
    for (std::size_t c = 0; c < kNumCols; ++c) stored_after += col_stored_[c];
    const std::uint64_t expected =
        sizeof(kChunkMagicV2) + 3 * sizeof(std::uint64_t) +
        (stored_after - stored_before);
    os.close();
    std::error_code ec;
    const std::uint64_t actual = std::filesystem::is_regular_file(path, ec)
                                     ? std::filesystem::file_size(path, ec)
                                     : 0;
    remove_partial_chunk(path);
    throw util::SimError(
        "short write to spill chunk: " + path + ": expected " +
        std::to_string(expected) + " bytes, wrote " + std::to_string(actual) +
        (err != 0 ? std::string(" (") + std::strerror(err) + ")"
                  : std::string()) +
        "; partial chunk removed");
  }
  bytes_written_.add(static_cast<std::uint64_t>(os.tellp()));
  // Cells are monotonic, so bring raw_bytes_ up to the running col_raw_
  // total by its delta instead of recomputing from zero.
  std::uint64_t raw_total = 0;
  for (std::size_t c = 0; c < kNumCols; ++c) raw_total += col_raw_[c];
  raw_bytes_.add(raw_total - raw_bytes_.value());
  open_ = Columns{};
  ++chunks_written_;
}

std::shared_ptr<const SpillColumnStore::ChunkData> SpillColumnStore::load_chunk(
    std::size_t index) const {
  WASP_OBS_SPAN("spill.load");
  const std::string path = chunk_file_path(index);
  errno = 0;
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    const int err = errno;
    throw util::SimError("cannot open spill chunk: " + path +
                         (err != 0 ? std::string(" (") + std::strerror(err) + ")"
                                   : std::string()));
  }
  char magic[sizeof(kChunkMagicV2)] = {};
  is.read(magic, sizeof(magic));
  const bool v2 =
      std::equal(magic, magic + sizeof(magic), kChunkMagicV2);
  WASP_CHECK_MSG(
      v2 || std::equal(magic, magic + sizeof(magic), kChunkMagicV1),
      "bad spill chunk magic: " + path);
  WASP_CHECK_MSG(read_u64(is) == (v2 ? 2u : 1u),
                 "unsupported spill chunk version: " + path);
  const std::uint64_t rows64 = read_u64(is);
  const std::uint64_t flags = read_u64(is);
  const auto rows = static_cast<std::size_t>(rows64);
  // Every chunk except the last must hold exactly chunk_rows rows —
  // view_of() computes each chunk's base as index * chunk_rows, so a short
  // non-final chunk (truncated rewrite, mixed-config directory) would
  // silently misalign every later row's global index.
  const std::size_t expected =
      index + 1 == chunks_written_
          ? total_rows_ - (chunks_written_ - 1) * opts_.chunk_rows
          : opts_.chunk_rows;
  WASP_CHECK_MSG(is.good() && rows == expected,
                 "spill chunk row count mismatch: " + path);
  const bool aux = (flags & kFlagAux) != 0;
  WASP_CHECK_MSG(aux == has_aux_, "spill chunk aux flag mismatch: " + path);

  auto data = std::make_shared<ChunkData>();
  Columns& c = data->cols;
  if (v2) {
    read_col_v2(is, c.app, rows, path);
    read_col_v2(is, c.rank, rows, path);
    read_col_v2(is, c.node, rows, path);
    read_col_v2(is, c.iface, rows, path);
    read_col_v2(is, c.op, rows, path);
    read_col_v2(is, c.fs, rows, path);
    read_col_v2(is, c.file, rows, path);
    read_col_v2(is, c.offset, rows, path);
    read_col_v2(is, c.size, rows, path);
    read_col_v2(is, c.count, rows, path);
    read_col_v2(is, c.tstart, rows, path);
    read_col_v2(is, c.tend, rows, path);
    if (aux) {
      read_col_v2(is, c.path_idx, rows, path);
      read_col_v2(is, c.file_size, rows, path);
    }
  } else {
    read_col_raw(is, c.app, rows);
    read_col_raw(is, c.rank, rows);
    read_col_raw(is, c.node, rows);
    read_col_raw(is, c.iface, rows);
    read_col_raw(is, c.op, rows);
    read_col_raw(is, c.fs, rows);
    read_col_raw(is, c.file, rows);
    read_col_raw(is, c.offset, rows);
    read_col_raw(is, c.size, rows);
    read_col_raw(is, c.count, rows);
    read_col_raw(is, c.tstart, rows);
    read_col_raw(is, c.tend, rows);
    if (aux) {
      read_col_raw(is, c.path_idx, rows);
      read_col_raw(is, c.file_size, rows);
    }
  }
  WASP_CHECK_MSG(is.good(), "truncated spill chunk: " + path);

  loads_.add(1);
  bytes_read_.add(static_cast<std::uint64_t>(is.tellg()));
  const std::size_t now =
      residency_->resident.fetch_add(1, std::memory_order_relaxed) + 1;
  // Only arm the destructor's decrement once the increment happened — a
  // throw above must not underflow the counter.
  data->residency = residency_;
  std::size_t peak = residency_->peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !residency_->peak.compare_exchange_weak(peak, now,
                                                 std::memory_order_relaxed)) {
  }
  return data;
}

void SpillColumnStore::evict_lru_back_locked() const {
  const std::size_t victim = lru_.back();
  lru_.pop_back();
  const auto it = cache_.find(victim);
  if (it != cache_.end()) {
    if (it->second.prefetched) {
      prefetch_wasted_.add(1);
    }
    cache_.erase(it);
  }
  evictions_.add(1);
}

void SpillColumnStore::make_room_locked() const {
  while (cache_.size() + inflight_.size() >= opts_.max_resident_chunks &&
         !lru_.empty()) {
    evict_lru_back_locked();
  }
}

std::shared_ptr<const SpillColumnStore::ChunkData>
SpillColumnStore::acquire_chunk(std::size_t index, bool for_prefetch) const {
  std::promise<std::shared_ptr<const ChunkData>> promise;
  std::shared_future<std::shared_ptr<const ChunkData>> fut;
  bool loader = false;
  bool waiting_on_prefetch = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = cache_.find(index); it != cache_.end()) {
      if (for_prefetch) return it->second.data;
      hits_.add(1);
      if (it->second.prefetched) {
        it->second.prefetched = false;
        prefetch_hits_.add(1);
      }
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.data;
    }
    if (const auto fit = inflight_.find(index); fit != inflight_.end()) {
      if (for_prefetch) return nullptr;  // someone is already on it
      fut = fit->second.fut;
      waiting_on_prefetch = fit->second.prefetch;
    } else {
      loader = true;
      // Make room before the load so the resident set stays bounded even
      // while the read happens off-lock; pinned victims survive through
      // their cursors' pins.
      make_room_locked();
      fut = promise.get_future().share();
      inflight_.emplace(index, Inflight{fut, for_prefetch});
    }
  }

  if (!loader) {
    // Share the in-flight load instead of stampeding the disk. get()
    // rethrows the loader's exception for corrupt chunks.
    std::shared_ptr<const ChunkData> data = fut.get();
    std::lock_guard<std::mutex> lock(mu_);
    hits_.add(1);
    if (waiting_on_prefetch) {
      prefetch_hits_.add(1);
      if (const auto it = cache_.find(index); it != cache_.end()) {
        it->second.prefetched = false;
      }
    }
    return data;
  }

  // Loader path: the disk read and decode happen with mu_ released, so
  // other chunks keep flowing to other analyzer threads meanwhile.
  std::shared_ptr<const ChunkData> data;
  try {
    data = load_chunk(index);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(index);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(index);
    lru_.push_front(index);
    cache_[index] = CacheEntry{data, lru_.begin(), for_prefetch};
    // Concurrent loaders can overshoot the cap between make-room and
    // insert; trim from the cold end (never the entry just inserted).
    while (cache_.size() > opts_.max_resident_chunks && lru_.size() > 1) {
      evict_lru_back_locked();
    }
    if (for_prefetch) {
      prefetch_issued_.add(1);
    }
  }
  promise.set_value(data);
  return data;
}

void SpillColumnStore::maybe_schedule_prefetch(std::size_t just_served) const {
  if (!prefetch_thread_.joinable()) return;
  bool sequential;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sequential = just_served == 0 || (last_seq_chunk_ != kNoChunk &&
                                      just_served == last_seq_chunk_ + 1);
    last_seq_chunk_ = just_served;
  }
  if (!sequential || just_served + 1 >= chunks_written_) return;
  {
    std::lock_guard<std::mutex> lock(pf_mu_);
    pf_target_ = just_served + 1;
  }
  pf_cv_.notify_one();
}

void SpillColumnStore::prefetch_loop() {
  if (obs::SpanTracer::instance().enabled()) {
    obs::SpanTracer::instance().set_thread_name("spill-prefetch");
  }
  for (;;) {
    std::size_t target;
    {
      std::unique_lock<std::mutex> lock(pf_mu_);
      pf_cv_.wait(lock, [this] { return pf_stop_ || pf_target_ != kNoChunk; });
      if (pf_stop_) return;
      target = pf_target_;
      pf_target_ = kNoChunk;
    }
    try {
      (void)acquire_chunk(target, /*for_prefetch=*/true);
    } catch (const std::exception&) {
      // Corrupt/unreadable chunk: drop it here — the demand load will
      // surface the error on the caller's thread.
    }
  }
}

ChunkColumns SpillColumnStore::view_of(const ChunkData& data,
                                       std::size_t base) const {
  const Columns& c = data.cols;
  ChunkColumns v;
  v.base = base;
  v.rows = c.rows();
  v.app = c.app.data();
  v.rank = c.rank.data();
  v.node = c.node.data();
  v.iface = c.iface.data();
  v.op = c.op.data();
  v.fs = c.fs.data();
  v.file = c.file.data();
  v.offset = c.offset.data();
  v.size = c.size.data();
  v.count = c.count.data();
  v.tstart = c.tstart.data();
  v.tend = c.tend.data();
  if (!c.path_idx.empty()) v.path_idx = c.path_idx.data();
  if (!c.file_size.empty()) v.file_size = c.file_size.data();
  return v;
}

ChunkHandle SpillColumnStore::chunk(std::size_t chunk_index) const {
  WASP_CHECK_MSG(finalized_, "reading a spill store before finalize()");
  WASP_CHECK_MSG(chunk_index < chunks_written_,
                 "spill chunk index out of range");
  const std::shared_ptr<const ChunkData> data =
      acquire_chunk(chunk_index, /*for_prefetch=*/false);
  maybe_schedule_prefetch(chunk_index);
  ChunkHandle h;
  h.cols = view_of(*data, chunk_index * opts_.chunk_rows);
  h.pin = std::shared_ptr<const void>(data, data.get());
  return h;
}

bool SpillColumnStore::chunk_cached(std::size_t index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.find(index) != cache_.end();
}

std::uint32_t SpillColumnStore::path_idx_at(std::size_t i) const {
  WASP_CHECK_MSG(has_aux_, "spill store carries no path column");
  const ChunkHandle h = chunk(i / opts_.chunk_rows);
  return h.cols.path_idx[i - h.cols.base];
}

fs::Bytes SpillColumnStore::file_size_at(std::size_t i) const {
  WASP_CHECK_MSG(has_aux_, "spill store carries no file-size column");
  const ChunkHandle h = chunk(i / opts_.chunk_rows);
  return h.cols.file_size[i - h.cols.base];
}

std::size_t SpillColumnStore::resident_chunks() const noexcept {
  return residency_->resident.load(std::memory_order_relaxed);
}

std::size_t SpillColumnStore::peak_resident_chunks() const noexcept {
  return residency_->peak.load(std::memory_order_relaxed);
}

IoStats SpillColumnStore::io_stats() const {
  IoStats s;
  s.chunk_loads = loads_.value();
  s.cache_hits = hits_.value();
  s.evictions = evictions_.value();
  s.prefetch_issued = prefetch_issued_.value();
  s.prefetch_hits = prefetch_hits_.value();
  s.prefetch_wasted = prefetch_wasted_.value();
  s.bytes_written = bytes_written_.value();
  s.bytes_read = bytes_read_.value();
  s.raw_bytes = raw_bytes_.value();
  for (std::size_t c = 0; c < kNumCols; ++c) {
    if (col_raw_[c] == 0) continue;
    s.columns.push_back({kColNames[c], col_raw_[c], col_stored_[c]});
  }
  return s;
}

}  // namespace wasp::analysis
