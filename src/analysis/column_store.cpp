#include "analysis/column_store.hpp"

namespace wasp::analysis {

ColumnStore ColumnStore::from_records(
    std::span<const trace::Record> records) {
  ColumnStore cs;
  const std::size_t n = records.size();
  cs.app_.reserve(n);
  cs.rank_.reserve(n);
  cs.node_.reserve(n);
  cs.iface_.reserve(n);
  cs.op_.reserve(n);
  cs.fs_.reserve(n);
  cs.file_.reserve(n);
  cs.offset_.reserve(n);
  cs.size_.reserve(n);
  cs.count_.reserve(n);
  cs.tstart_.reserve(n);
  cs.tend_.reserve(n);
  for (const auto& r : records) {
    cs.app_.push_back(r.app);
    cs.rank_.push_back(r.rank);
    cs.node_.push_back(r.node);
    cs.iface_.push_back(r.iface);
    cs.op_.push_back(r.op);
    cs.fs_.push_back(r.file.fs);
    cs.file_.push_back(r.file.file);
    cs.offset_.push_back(r.offset);
    cs.size_.push_back(r.size);
    cs.count_.push_back(r.count);
    cs.tstart_.push_back(r.tstart);
    cs.tend_.push_back(r.tend);
  }
  return cs;
}

trace::Record ColumnStore::row(std::size_t i) const {
  trace::Record r;
  r.app = app_[i];
  r.rank = rank_[i];
  r.node = node_[i];
  r.iface = iface_[i];
  r.op = op_[i];
  r.file = {fs_[i], file_[i]};
  r.offset = offset_[i];
  r.size = size_[i];
  r.count = count_[i];
  r.tstart = tstart_[i];
  r.tend = tend_[i];
  return r;
}

}  // namespace wasp::analysis
