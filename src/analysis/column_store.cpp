#include "analysis/column_store.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::analysis {

ColumnStore ColumnStore::from_records(std::span<const trace::Record> records,
                                      int jobs) {
  ColumnStore cs;
  const std::size_t n = records.size();
  cs.app_.resize(n);
  cs.rank_.resize(n);
  cs.node_.resize(n);
  cs.iface_.resize(n);
  cs.op_.resize(n);
  cs.fs_.resize(n);
  cs.file_.resize(n);
  cs.offset_.resize(n);
  cs.size_.resize(n);
  cs.count_.resize(n);
  cs.tstart_.resize(n);
  cs.tend_.resize(n);
  // Each chunk writes a disjoint row range of every column — no sharing.
  util::parallel_for(jobs, n, 1 << 17, [&](const util::ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      const trace::Record& r = records[i];
      cs.app_[i] = r.app;
      cs.rank_[i] = r.rank;
      cs.node_[i] = r.node;
      cs.iface_[i] = r.iface;
      cs.op_[i] = r.op;
      cs.fs_[i] = r.file.fs;
      cs.file_[i] = r.file.file;
      cs.offset_[i] = r.offset;
      cs.size_[i] = r.size;
      cs.count_[i] = r.count;
      cs.tstart_[i] = r.tstart;
      cs.tend_[i] = r.tend;
    }
  });
  return cs;
}

ChunkHandle ColumnStore::chunk(std::size_t chunk_index) const {
  const std::size_t base = chunk_index * chunk_rows_;
  WASP_CHECK_MSG(base < size(), "chunk index out of range");
  ChunkHandle h;  // pin stays null: views borrow the store's own columns
  h.cols.base = base;
  h.cols.rows = std::min(chunk_rows_, size() - base);
  h.cols.app = app_.data() + base;
  h.cols.rank = rank_.data() + base;
  h.cols.node = node_.data() + base;
  h.cols.iface = iface_.data() + base;
  h.cols.op = op_.data() + base;
  h.cols.fs = fs_.data() + base;
  h.cols.file = file_.data() + base;
  h.cols.offset = offset_.data() + base;
  h.cols.size = size_.data() + base;
  h.cols.count = count_.data() + base;
  h.cols.tstart = tstart_.data() + base;
  h.cols.tend = tend_.data() + base;
  return h;
}

ChunkHandle ColumnStore::span_at(std::size_t row) const {
  WASP_CHECK_MSG(row < size(), "span row out of range");
  ChunkHandle h;  // pin stays null: the view borrows the store's columns
  h.cols.base = 0;
  h.cols.rows = size();
  h.cols.app = app_.data();
  h.cols.rank = rank_.data();
  h.cols.node = node_.data();
  h.cols.iface = iface_.data();
  h.cols.op = op_.data();
  h.cols.fs = fs_.data();
  h.cols.file = file_.data();
  h.cols.offset = offset_.data();
  h.cols.size = size_.data();
  h.cols.count = count_.data();
  h.cols.tstart = tstart_.data();
  h.cols.tend = tend_.data();
  return h;
}

std::int16_t ColumnStore::max_fs() const {
  std::int16_t m = -1;
  for (const std::int16_t f : fs_) m = std::max(m, f);
  return m;
}

trace::Record ColumnStore::row(std::size_t i) const {
  trace::Record r;
  r.app = app_[i];
  r.rank = rank_[i];
  r.node = node_[i];
  r.iface = iface_[i];
  r.op = op_[i];
  r.file = {fs_[i], file_[i]};
  r.offset = offset_[i];
  r.size = size_[i];
  r.count = count_[i];
  r.tstart = tstart_[i];
  r.tend = tend_[i];
  return r;
}

}  // namespace wasp::analysis
