// Derived workload profile: everything Figures 1-6 and Tables I/III-V/X-XI
// report is computed once into this structure.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "util/histogram.hpp"

namespace wasp::analysis {

/// Op/byte/time breakdown used at workload, app, file and phase scope.
struct OpsBreakdown {
  std::uint64_t read_ops = 0;
  std::uint64_t write_ops = 0;
  std::uint64_t meta_ops = 0;
  fs::Bytes read_bytes = 0;
  fs::Bytes write_bytes = 0;
  double data_sec = 0.0;  ///< summed durations of data ops
  double meta_sec = 0.0;  ///< summed durations of metadata ops

  std::uint64_t data_ops() const noexcept { return read_ops + write_ops; }
  std::uint64_t total_ops() const noexcept { return data_ops() + meta_ops; }
  fs::Bytes io_bytes() const noexcept { return read_bytes + write_bytes; }
  double io_sec() const noexcept { return data_sec + meta_sec; }
  /// Fraction of *ops* that are data vs metadata (paper's "I/O ops dist").
  double data_op_fraction() const noexcept {
    return total_ops() ? static_cast<double>(data_ops()) /
                             static_cast<double>(total_ops())
                       : 0.0;
  }
  /// Fraction of I/O *time* spent in metadata.
  double meta_time_fraction() const noexcept {
    return io_sec() > 0 ? meta_sec / io_sec() : 0.0;
  }
  void merge(const OpsBreakdown& o) noexcept;
};

/// Per-file view. For node-local filesystems, files with equal ids on
/// different nodes are distinct (node_scope >= 0); shared-FS files have
/// node_scope == -1.
struct FileStats {
  trace::FileKey key;
  int node_scope = -1;
  std::string path;
  fs::Bytes size = 0;
  OpsBreakdown ops;
  sim::Time first_access = 0;
  sim::Time last_access = 0;
  std::uint32_t reader_ranks = 0;  ///< distinct ranks that read
  std::uint32_t writer_ranks = 0;  ///< distinct ranks that wrote
  std::uint32_t accessor_ranks = 0;
  std::vector<std::uint16_t> producer_apps;  ///< wrote to this file
  std::vector<std::uint16_t> consumer_apps;  ///< read from this file

  bool shared() const noexcept { return accessor_ranks > 1; }
};

struct AppStats {
  std::uint16_t app = 0;
  std::string name;
  int num_procs = 0;
  OpsBreakdown ops;
  double cpu_sec = 0.0;
  double gpu_sec = 0.0;
  sim::Time first_event = 0;
  sim::Time last_event = 0;
  std::uint64_t fpp_files = 0;
  std::uint64_t shared_files = 0;
  /// Dominant interface by data-op count.
  trace::Iface interface = trace::Iface::kPosix;

  double runtime_sec() const noexcept {
    return sim::to_seconds(last_event - first_event);
  }
};

/// One I/O phase: a maximal burst of I/O separated from the next by more
/// than the gap threshold (the paper's "threshold between two I/O calls").
struct Phase {
  std::uint16_t app = 0;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  OpsBreakdown ops;
  fs::Bytes dominant_size = 0;  ///< most frequent transfer granularity
  double ops_per_rank = 0.0;

  double runtime_sec() const noexcept { return sim::to_seconds(t1 - t0); }
  /// The paper's "Frequency" column: "1 op", "N ops/rank",
  /// "Iterative (1MB)" or "Bulk (64KB)".
  std::string frequency_label() const;
};

/// Producer -> consumer edge between apps, derived from file dataflow.
struct AppEdge {
  std::uint16_t producer = 0;
  std::uint16_t consumer = 0;
  fs::Bytes bytes = 0;          ///< volume flowing along the edge
  std::uint32_t files = 0;
};

/// Aggregate-bandwidth time series (Figures 1c-6c).
struct Timeline {
  sim::Time bin_width = 0;
  std::vector<double> read_bps;
  std::vector<double> write_bps;
  std::size_t num_bins() const noexcept { return read_bps.size(); }
};

struct WorkloadProfile {
  double job_runtime_sec = 0.0;
  OpsBreakdown totals;
  /// Fraction of job wall time during which at least one rank was inside an
  /// I/O call (interval union) — the paper's "% of I/O time" in Table I.
  double io_time_fraction = 0.0;
  /// Mean per-rank fraction of runtime spent inside I/O calls.
  double io_busy_fraction = 0.0;
  int num_procs = 0;
  int num_nodes = 0;

  std::vector<AppStats> apps;
  std::vector<FileStats> files;
  std::vector<Phase> phases;  ///< ordered by t0, per app
  std::vector<AppEdge> app_edges;

  util::SizeHistogram read_hist = util::SizeHistogram::paper_buckets();
  util::SizeHistogram write_hist = util::SizeHistogram::paper_buckets();
  Timeline timeline;

  std::uint64_t shared_files = 0;
  std::uint64_t fpp_files = 0;

  /// Fraction of data ops that continue where the same rank's previous op
  /// on the same file ended (access-pattern classification).
  double sequential_fraction = 1.0;

  /// Exact transfer-size frequencies over data ops, most frequent first
  /// (drives the "Granularity (data, meta)" entity attributes).
  std::vector<std::pair<fs::Bytes, std::uint64_t>> size_frequencies;

  const AppStats* app_by_name(const std::string& name) const;
  /// Lookup by tracer app id (NOT a position in `apps` — apps that emitted
  /// no records are absent from the vector). nullptr if unknown.
  const AppStats* app_by_id(std::uint16_t app) const;
  /// Name for a tracer app id ("?" if unknown).
  const std::string& app_name(std::uint16_t app) const;
  /// First phase of an app (Table V), nullptr when it did no I/O.
  const Phase* first_phase(std::uint16_t app) const;
};

}  // namespace wasp::analysis
