// Dependency-free per-column codecs for WSPCHK02 spill chunk files.
//
// Every column is widened to uint64 values (bit-pattern for signed types,
// underlying value for enums — lossless both ways), then encoded with one
// of three schemes, chosen per column by encoded size:
//
//   kRaw    — the original fixed-width array bytes (always available).
//   kDelta  — zigzag(varint) of consecutive differences; near-free for
//             monotone columns (tstart/tend) and offset runs.
//   kRle    — (varint run-length, varint value) pairs; collapses
//             low-cardinality columns (app/iface/op/fs) to almost nothing.
//
// Decoders are defensive: they validate against the expected row count and
// buffer bounds and throw util::SimError on any malformed input, so a
// corrupt chunk file fails loudly instead of mis-decoding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace wasp::analysis::codec {

enum class Encoding : std::uint8_t { kRaw = 0, kDelta = 1, kRle = 2 };

/// Widen a column element to its canonical uint64 representation: enums go
/// through their underlying type, signed integers through the same-width
/// unsigned type (two's complement bit pattern), so narrow(widen(v)) == v.
template <typename T>
constexpr std::uint64_t widen(T v) noexcept {
  if constexpr (std::is_enum_v<T>) {
    using U = std::make_unsigned_t<std::underlying_type_t<T>>;
    return static_cast<std::uint64_t>(static_cast<U>(v));
  } else {
    static_assert(std::is_integral_v<T>);
    return static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(v));
  }
}

template <typename T>
constexpr T narrow(std::uint64_t u) noexcept {
  if constexpr (std::is_enum_v<T>) {
    using U = std::make_unsigned_t<std::underlying_type_t<T>>;
    return static_cast<T>(
        static_cast<std::underlying_type_t<T>>(static_cast<U>(u)));
  } else {
    static_assert(std::is_integral_v<T>);
    return static_cast<T>(static_cast<std::make_unsigned_t<T>>(u));
  }
}

/// LEB128 varint append / bounds-checked read (throws SimError past `end`
/// or on a >10-byte encoding).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint64_t get_varint(const std::uint8_t*& p, const std::uint8_t* end);

constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t unzigzag(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>(u >> 1) ^
         -static_cast<std::int64_t>(u & 1);
}

/// Encode n widened values as zigzag varints of wrapping consecutive
/// deltas (first delta is against 0).
std::vector<std::uint8_t> encode_delta(const std::uint64_t* vals,
                                       std::size_t n);
/// Decode exactly n values; throws SimError on truncation, overrun, or
/// trailing bytes.
void decode_delta(const std::uint8_t* data, std::size_t len,
                  std::uint64_t* out, std::size_t n);

/// Encode n widened values as (run length, value) varint pairs.
std::vector<std::uint8_t> encode_rle(const std::uint64_t* vals,
                                     std::size_t n);
void decode_rle(const std::uint8_t* data, std::size_t len, std::uint64_t* out,
                std::size_t n);

/// Upper bound on a well-formed kDelta/kRle payload for n rows — used to
/// reject absurd lengths from corrupt chunk headers before allocating.
constexpr std::uint64_t max_encoded_bytes(std::uint64_t n) noexcept {
  return 16 + 11 * n;
}

}  // namespace wasp::analysis::codec
