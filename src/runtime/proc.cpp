#include "runtime/proc.hpp"

#include "util/error.hpp"

namespace wasp::runtime {

mpi::Comm& Proc::comm() {
  WASP_CHECK_MSG(comm_ != nullptr, "process has no communicator");
  return *comm_;
}

sim::Task<void> Proc::timed_span(trace::Iface iface, sim::Time duration) {
  const sim::Time t0 = now();
  co_await sim::Delay(engine(), duration);
  record(iface, trace::Op::kCompute, {}, 0, 0, 1, t0);
}

sim::Task<void> Proc::compute(sim::Time duration) {
  return timed_span(trace::Iface::kCpu, duration);
}

sim::Task<void> Proc::gpu_compute(sim::Time duration) {
  return timed_span(trace::Iface::kGpu, duration);
}

sim::Task<void> Proc::barrier() {
  const sim::Time t0 = now();
  co_await comm().barrier();
  record(trace::Iface::kMpi, trace::Op::kBarrier, {}, 0, 0, 1, t0);
}

sim::Task<void> Proc::bcast(int root, fs::Bytes n) {
  const sim::Time t0 = now();
  co_await comm().bcast(comm_rank_, root, n);
  record(trace::Iface::kMpi, trace::Op::kBcast, {}, 0, n, 1, t0);
}

sim::Task<void> Proc::allreduce(fs::Bytes n) {
  const sim::Time t0 = now();
  co_await comm().allreduce(n);
  record(trace::Iface::kMpi, trace::Op::kSendRecv, {}, 0, n, 1, t0);
}

}  // namespace wasp::runtime
