#include "runtime/simulation.hpp"

#include "util/error.hpp"

namespace wasp::runtime {

Simulation::Simulation(cluster::ClusterSpec spec)
    : Simulation(std::move(spec), sim::Engine::Options{}) {}

Simulation::Simulation(cluster::ClusterSpec spec,
                       const sim::Engine::Options& engine_opts)
    : spec_(std::move(spec)), engine_(engine_opts) {
  pfs_ = std::make_unique<fs::ParallelFS>(engine_, spec_.pfs, spec_.nodes);
  mounts_.add(*pfs_);
  tracer_.register_fs(*pfs_);
  if (spec_.shared_bb.has_value()) {
    shared_bb_ = std::make_unique<fs::BurstBufferFS>(engine_,
                                                     *spec_.shared_bb);
    mounts_.add(*shared_bb_);
    tracer_.register_fs(*shared_bb_);
  }
  for (const auto& local_spec : spec_.node_local) {
    node_local_.push_back(
        std::make_unique<fs::NodeLocalFS>(engine_, local_spec, spec_.nodes));
    mounts_.add(*node_local_.back());
    tracer_.register_fs(*node_local_.back());
  }
}

void Simulation::install_faults(const sim::FaultPlan& plan) {
  WASP_CHECK_MSG(faults_ == nullptr, "fault plan already installed");
  faults_ = std::make_unique<sim::FaultInjector>(plan);
  for (fs::FileSystemSim* fsys : mounts_.mounts()) {
    fsys->set_fault_channel(faults_->channel_for(fsys->name()));
  }
}

fs::BurstBufferFS& Simulation::shared_bb() {
  WASP_CHECK_MSG(shared_bb_ != nullptr, "cluster has no shared burst buffer");
  return *shared_bb_;
}

fs::NodeLocalFS& Simulation::node_local(const std::string& name) {
  for (auto& nl : node_local_) {
    if (nl->name() == name) return *nl;
  }
  throw util::SimError("no node-local tier named " + name);
}

mpi::Comm& Simulation::add_comm(int procs, int nodes) {
  comms_.push_back(make_comm(procs, nodes));
  return *comms_.back();
}

mpi::Comm& Simulation::add_comm_mapped(std::vector<int> rank_to_node) {
  comms_.push_back(std::make_unique<mpi::Comm>(
      engine_, std::move(rank_to_node),
      mpi::NetParams{spec_.nic.bandwidth_bps, spec_.nic.latency}));
  return *comms_.back();
}

std::unique_ptr<mpi::Comm> Simulation::make_comm(int procs, int nodes) {
  WASP_CHECK_MSG(nodes > 0 && nodes <= spec_.nodes,
                 "communicator spans more nodes than the cluster has");
  WASP_CHECK_MSG(procs >= nodes, "fewer ranks than nodes");
  std::vector<int> rank_to_node(static_cast<std::size_t>(procs));
  const int per_node = (procs + nodes - 1) / nodes;
  for (int r = 0; r < procs; ++r) {
    rank_to_node[static_cast<std::size_t>(r)] = r / per_node;
  }
  return std::make_unique<mpi::Comm>(
      engine_, std::move(rank_to_node),
      mpi::NetParams{spec_.nic.bandwidth_bps, spec_.nic.latency});
}

}  // namespace wasp::runtime
