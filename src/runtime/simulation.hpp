// Owns everything one simulated job run needs: engine, cluster spec,
// filesystems, mounts, tracer. Workload models and the interface layers only
// ever see references into a Simulation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/spec.hpp"
#include "fs/burst_buffer.hpp"
#include "fs/mount_table.hpp"
#include "fs/node_local.hpp"
#include "fs/pfs.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "trace/tracer.hpp"

namespace wasp::runtime {

class Simulation {
 public:
  explicit Simulation(cluster::ClusterSpec spec);
  /// Same, but with explicit engine options — e.g. queue = kHeap to run a
  /// full workload under the equivalence-oracle event queue.
  Simulation(cluster::ClusterSpec spec, const sim::Engine::Options& engine_opts);
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  sim::Engine& engine() noexcept { return engine_; }
  const cluster::ClusterSpec& spec() const noexcept { return spec_; }
  fs::ParallelFS& pfs() noexcept { return *pfs_; }
  fs::MountTable& mounts() noexcept { return mounts_; }
  trace::Tracer& tracer() noexcept { return tracer_; }
  const trace::Tracer& tracer() const noexcept { return tracer_; }

  /// Node-local tier by name ("shm", "tmp"); throws if absent.
  fs::NodeLocalFS& node_local(const std::string& name);

  bool has_shared_bb() const noexcept { return shared_bb_ != nullptr; }
  /// Shared burst buffer; throws if the cluster has none.
  fs::BurstBufferFS& shared_bb();

  mpi::NetParams net() const noexcept {
    return mpi::NetParams{spec_.nic.bandwidth_bps, spec_.nic.latency};
  }

  /// Build a communicator with `procs` ranks block-distributed over
  /// `nodes` nodes (ranks 0..k-1 on node 0, etc.).
  std::unique_ptr<mpi::Comm> make_comm(int procs, int nodes);

  /// Like make_comm, but the Simulation keeps ownership — use this from
  /// workload launch functions whose locals die before the engine runs.
  mpi::Comm& add_comm(int procs, int nodes);

  /// Owned communicator with an explicit rank->node mapping (e.g. per-node
  /// subgroups for node-scoped collective I/O).
  mpi::Comm& add_comm_mapped(std::vector<int> rank_to_node);

  /// Install a fault plan: builds the injector and wires a channel into
  /// every mounted filesystem the plan targets. Call before launching the
  /// traced job; installing twice is an error (callers gate on faults()).
  void install_faults(const sim::FaultPlan& plan);
  /// The run's fault injector, or nullptr when the run is fault-free.
  sim::FaultInjector* faults() noexcept { return faults_.get(); }

 private:
  cluster::ClusterSpec spec_;
  sim::Engine engine_;
  std::unique_ptr<fs::ParallelFS> pfs_;
  std::unique_ptr<fs::BurstBufferFS> shared_bb_;
  std::vector<std::unique_ptr<fs::NodeLocalFS>> node_local_;
  std::vector<std::unique_ptr<mpi::Comm>> comms_;
  fs::MountTable mounts_;
  trace::Tracer tracer_;
  std::unique_ptr<sim::FaultInjector> faults_;
};

}  // namespace wasp::runtime
