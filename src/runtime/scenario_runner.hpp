// Concurrent execution of independent simulation scenarios.
//
// The DES engine stays single-threaded per scenario: each scenario callable
// builds and owns its entire world (sim::Engine, cluster spec, filesystems,
// Tracer) on the thread that runs it, so no mutable state crosses threads
// and every scenario's event order — hence its trace — is bit-identical to
// a sequential run. Results come back in submission order. This is the
// paper's pipeline shape: N independent runs fanned out task-parallel, with
// deterministic replay per run (Recorder-style reproducibility).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace wasp::runtime {

/// Opt-in spill-to-disk policy for scenario pipelines. When set on a runner
/// handed to workloads::run_many, each scenario's tracer flushes closed
/// record batches into an analysis::SpillColumnStore under
/// dir/<scenario name> mid-run, and analysis streams over the spilled
/// chunks — memory stays bounded regardless of trace length, and the
/// profile is byte-identical to the in-memory backend.
struct SpillPolicy {
  /// Root spill directory (one subdirectory per scenario).
  std::string dir;
  /// Tracer records buffered before a flush to the store.
  std::size_t flush_rows = 1u << 20;
  /// Rows per columnar chunk file.
  std::size_t chunk_rows = 65536;
  /// LRU cap on chunks resident during analysis.
  std::size_t max_resident_chunks = 8;
  /// Per-column-compressed WSPCHK02 chunk files (raw WSPCHK01 when false).
  bool compress = true;
};

class ScenarioRunner {
 public:
  /// jobs == 0 picks up util::default_jobs() (WASP_JOBS / --jobs).
  explicit ScenarioRunner(int jobs = 0) : jobs_(util::resolve_jobs(jobs)) {}

  int jobs() const noexcept { return jobs_; }

  ScenarioRunner& set_spill(SpillPolicy policy) {
    spill_ = std::move(policy);
    return *this;
  }
  const std::optional<SpillPolicy>& spill() const noexcept { return spill_; }

  /// Run every scenario callable, at most jobs() at a time; the i-th result
  /// is scenarios[i]()'s return value. If scenarios throw, the exception of
  /// the lowest-numbered failing scenario is rethrown after all started
  /// scenarios finished.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& scenarios) const {
    std::vector<R> out(scenarios.size());
    util::ThreadPool pool(jobs_ - 1);
    pool.run(scenarios.size(),
             [&](std::size_t i) { out[i] = scenarios[i](); });
    return out;
  }

  void run(const std::vector<std::function<void()>>& scenarios) const {
    util::ThreadPool pool(jobs_ - 1);
    pool.run(scenarios.size(), [&](std::size_t i) { scenarios[i](); });
  }

 private:
  int jobs_;
  std::optional<SpillPolicy> spill_;
};

}  // namespace wasp::runtime
