// Concurrent execution of independent simulation scenarios.
//
// The DES engine stays single-threaded per scenario: each scenario callable
// builds and owns its entire world (sim::Engine, cluster spec, filesystems,
// Tracer) on the thread that runs it, so no mutable state crosses threads
// and every scenario's event order — hence its trace — is bit-identical to
// a sequential run. Results come back in submission order. This is the
// paper's pipeline shape: N independent runs fanned out task-parallel, with
// deterministic replay per run (Recorder-style reproducibility).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace wasp::runtime {

class ScenarioRunner {
 public:
  /// jobs == 0 picks up util::default_jobs() (WASP_JOBS / --jobs).
  explicit ScenarioRunner(int jobs = 0) : jobs_(util::resolve_jobs(jobs)) {}

  int jobs() const noexcept { return jobs_; }

  /// Run every scenario callable, at most jobs() at a time; the i-th result
  /// is scenarios[i]()'s return value. If scenarios throw, the exception of
  /// the lowest-numbered failing scenario is rethrown after all started
  /// scenarios finished.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& scenarios) const {
    std::vector<R> out(scenarios.size());
    util::ThreadPool pool(jobs_ - 1);
    pool.run(scenarios.size(),
             [&](std::size_t i) { out[i] = scenarios[i](); });
    return out;
  }

  void run(const std::vector<std::function<void()>>& scenarios) const {
    util::ThreadPool pool(jobs_ - 1);
    pool.run(scenarios.size(), [&](std::size_t i) { scenarios[i](); });
  }

 private:
  int jobs_;
};

}  // namespace wasp::runtime
