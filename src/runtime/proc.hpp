// Per-rank execution context: identity (app, rank, node), communicator,
// and traced compute / MPI helpers. Interface layers (io::Posix etc.) are
// constructed over a Proc.
#pragma once

#include <cstdint>

#include "mpi/comm.hpp"
#include "runtime/simulation.hpp"
#include "sim/task.hpp"
#include "trace/record.hpp"

namespace wasp::runtime {

class Proc {
 public:
  /// `rank` is the globally-unique trace identity; `comm_rank` the rank
  /// within `comm` (defaults to `rank` — they differ only when the process
  /// belongs to a subcommunicator, e.g. CosmoFlow's per-node groups).
  Proc(Simulation& sim, std::uint16_t app, int rank, int node,
       mpi::Comm* comm = nullptr, int comm_rank = -1)
      : sim_(sim),
        app_(app),
        rank_(rank),
        node_(node),
        comm_(comm),
        comm_rank_(comm_rank < 0 ? rank : comm_rank) {}

  Simulation& simulation() noexcept { return sim_; }
  sim::Engine& engine() noexcept { return sim_.engine(); }
  sim::Time now() const noexcept { return sim_.engine().now(); }
  trace::Tracer& tracer() noexcept { return sim_.tracer(); }

  std::uint16_t app() const noexcept { return app_; }
  int rank() const noexcept { return rank_; }
  int comm_rank() const noexcept { return comm_rank_; }
  int node() const noexcept { return node_; }
  fs::ProcSite site() const noexcept { return {node_, rank_}; }

  bool has_comm() const noexcept { return comm_ != nullptr; }
  mpi::Comm& comm();

  /// Traced CPU compute span.
  sim::Task<void> compute(sim::Time duration);
  /// Traced GPU compute span.
  sim::Task<void> gpu_compute(sim::Time duration);

  /// Traced collective wrappers.
  sim::Task<void> barrier();
  sim::Task<void> bcast(int root, fs::Bytes n);
  sim::Task<void> allreduce(fs::Bytes n);

  /// Append a fully-specified record stamped with this process's identity.
  /// No-op while this process is inside a Suppression scope. Inline: every
  /// traced I/O op ends here, so the call sits on the simulation hot path.
  void record(trace::Iface iface, trace::Op op, trace::FileKey file,
              fs::Bytes offset, fs::Bytes size, std::uint32_t count,
              sim::Time tstart) {
    if (suppressed()) return;
    trace::Record r;
    r.app = app_;
    r.rank = rank_;
    r.node = node_;
    r.iface = iface;
    r.op = op;
    r.file = file;
    r.offset = offset;
    r.size = size;
    r.count = count;
    r.tstart = tstart;
    r.tend = now();
    tracer().add(r);
  }

  bool suppressed() const noexcept { return suppression_ > 0; }

  /// Per-process trace suppression. Suppression must be per process (not on
  /// the shared tracer): coroutines interleave at co_await points, so a
  /// global counter would mute records of concurrently-running ranks.
  class Suppression {
   public:
    explicit Suppression(Proc& p) noexcept : p_(p) { ++p_.suppression_; }
    ~Suppression() { --p_.suppression_; }
    Suppression(const Suppression&) = delete;
    Suppression& operator=(const Suppression&) = delete;

   private:
    Proc& p_;
  };

 private:
  sim::Task<void> timed_span(trace::Iface iface, sim::Time duration);

  Simulation& sim_;
  std::uint16_t app_;
  int rank_;
  int node_;
  mpi::Comm* comm_;
  int comm_rank_;
  int suppression_ = 0;
};

}  // namespace wasp::runtime
