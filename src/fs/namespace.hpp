// In-memory namespace of one simulated filesystem: path -> inode. Content is
// not stored (only sizes and extents), so simulating a 1.5TB dataset costs a
// few bytes per file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "fs/types.hpp"
#include "sim/engine.hpp"

namespace wasp::fs {

struct Inode {
  FileId id = kInvalidFile;
  std::string path;
  Bytes size = 0;
  sim::Time created = 0;
  sim::Time modified = 0;
  int creator_rank = -1;
  int creator_node = -1;
  /// Bumped on every write; client caches use it for validity checks.
  std::uint64_t version = 0;
};

class Namespace {
 public:
  /// Create the file if absent; returns its id either way.
  FileId create(const std::string& path, sim::Time now, int rank, int node);

  std::optional<FileId> lookup(const std::string& path) const;
  bool exists(const std::string& path) const {
    return lookup(path).has_value();
  }

  Inode& inode(FileId id);
  const Inode& inode(FileId id) const;

  /// Remove a path; returns false if absent. The inode slot stays allocated
  /// (ids are never reused) so late references in traces stay resolvable.
  bool unlink(const std::string& path);

  /// All live paths with the given prefix (simple readdir model).
  std::vector<std::string> list(const std::string& prefix) const;

  std::size_t file_count() const noexcept { return by_path_.size(); }
  Bytes total_bytes() const noexcept;

  /// Every inode ever created (including unlinked), for trace resolution.
  const std::vector<Inode>& inodes() const noexcept { return inodes_; }

 private:
  std::unordered_map<std::string, FileId> by_path_;
  std::vector<Inode> inodes_;
};

}  // namespace wasp::fs
