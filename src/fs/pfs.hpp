// GPFS-like shared parallel filesystem model.
//
// Three mechanisms produce the paper's observed pathologies:
//  1. A bounded-concurrency metadata service whose per-op time inflates with
//     queue depth — metadata storms (CosmoFlow: 1.3M ops from 128 clients)
//     collapse to a few thousand ops/s.
//  2. Striped data servers with snapshot fair-share bandwidth and a
//     small-transfer efficiency penalty — 4KB-granularity streams run two
//     orders of magnitude below peak (CM1's 64MB/s writes).
//  3. A per-node client page cache with write-invalidation — produce-then-
//     consume on the same node is fast until capacity or cross-node sharing
//     evicts it (Montage's intermittent 600-1300MB/s spikes).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/spec.hpp"
#include "fs/filesystem.hpp"
#include "sim/link.hpp"
#include "sim/sync.hpp"

namespace wasp::fs {

class ParallelFS final : public FileSystemSim {
 public:
  ParallelFS(sim::Engine& eng, const cluster::PfsSpec& spec, int num_nodes);

  const std::string& mount() const noexcept override { return spec_.mount; }
  const std::string& name() const noexcept override { return spec_.name; }
  bool shared() const noexcept override { return true; }
  Namespace& ns(ProcSite) override { return ns_; }

  sim::Task<void> meta(ProcSite site, MetaOp op, FileId file) override;
  sim::Task<void> io(const IoRequest& req) override;
  Bytes free_bytes(ProcSite site) const override;
  void note_growth(ProcSite site, std::int64_t delta) override;

  const cluster::PfsSpec& spec() const noexcept { return spec_; }

  /// Aggregate observed data bandwidth per server (diagnostics/benchmarks).
  const sim::SharedLink& server(std::size_t i) const { return *servers_.at(i); }
  std::size_t num_servers() const noexcept { return servers_.size(); }

  /// Metadata-queue depth right now (tests/benchmarks).
  std::size_t metadata_queue_length() const noexcept {
    return mds_slots_.queue_length();
  }

  /// Disable/enable the client page cache (ablation studies).
  void set_client_cache_enabled(bool enabled) noexcept {
    cache_enabled_ = enabled;
  }

  /// Drop all client caches (used between the untraced staging phase and
  /// the traced run so staging writes don't fake warm caches).
  void drop_client_caches();

 private:
  struct CacheEntry {
    Bytes bytes = 0;            ///< cached prefix [0, bytes)
    std::uint64_t version = 0;  ///< inode version when cached
  };
  struct NodeCache {
    std::unordered_map<FileId, CacheEntry> entries;
    std::deque<FileId> fifo;
    Bytes used = 0;
  };

  bool cache_covers(const NodeCache& cache, const Inode& inode, Bytes offset,
                    Bytes len) const;
  void cache_insert(NodeCache& cache, const Inode& inode, Bytes end);

  sim::Engine& eng_;
  cluster::PfsSpec spec_;
  Namespace ns_;
  std::vector<std::unique_ptr<sim::SharedLink>> servers_;
  sim::Resource mds_slots_;
  std::vector<NodeCache> caches_;  ///< one per client node
  std::unordered_map<FileId, int> last_writer_node_;
  Bytes used_ = 0;
  std::size_t active_sync_ = 0;
  bool cache_enabled_ = true;
};

}  // namespace wasp::fs
