#include "fs/pfs.hpp"

#include <algorithm>
#include <cmath>

#include "sim/faults.hpp"
#include "sim/waitgroup.hpp"
#include "util/error.hpp"

namespace wasp::fs {
namespace {

// Client-side syscall/VFS cost charged per operation in a coalesced batch.
constexpr sim::Time kClientOpOverhead = 1 * sim::kUs + 500;  // 1.5us

// Cross-node write-token revocation penalty (GPFS token ping-pong).
constexpr sim::Time kWriteTokenRevoke = 500 * sim::kUs;

}  // namespace

ParallelFS::ParallelFS(sim::Engine& eng, const cluster::PfsSpec& spec,
                       int num_nodes)
    : eng_(eng),
      spec_(spec),
      mds_slots_(eng, spec.metadata.concurrency),
      caches_(static_cast<std::size_t>(std::max(num_nodes, 1))) {
  servers_.reserve(static_cast<std::size_t>(spec_.num_servers));
  for (int i = 0; i < spec_.num_servers; ++i) {
    sim::SharedLink::Config cfg;
    cfg.capacity_bps = spec_.server_bandwidth_bps;
    cfg.per_stream_bps = spec_.per_stream_bps;
    cfg.max_streams = spec_.max_streams_per_server;
    cfg.latency = spec_.data_latency;
    cfg.efficiency_bytes = spec_.efficiency_bytes;
    servers_.push_back(std::make_unique<sim::SharedLink>(eng, cfg));
  }
}

sim::Task<void> ParallelFS::meta(ProcSite, MetaOp op, FileId) {
  ++counters_.meta_ops;
  if (op == MetaOp::kSeek) {
    // lseek never leaves the client: it only moves a file-table offset.
    co_await sim::Delay(eng_, 1 * sim::kUs);
    co_return;
  }
  if (faults_ != nullptr) {
    // Degraded-MDS spike: the op completes, slower.
    const sim::Time extra = faults_->spike(eng_.now());
    if (extra > 0) co_await sim::Delay(eng_, extra);
  }
  // Sample queue depth at arrival: the longer the storm, the slower each op.
  const auto waiting = static_cast<double>(mds_slots_.queue_length());
  const double inflation =
      std::min(spec_.metadata.max_inflation,
               1.0 + spec_.metadata.interference_per_waiter * waiting);
  const auto service =
      static_cast<sim::Time>(spec_.metadata.base_service * inflation);
  auto slot = co_await mds_slots_.acquire();
  co_await sim::Delay(eng_, service);
}

bool ParallelFS::cache_covers(const NodeCache& cache, const Inode& inode,
                              Bytes offset, Bytes len) const {
  auto it = cache.entries.find(inode.id);
  if (it == cache.entries.end()) return false;
  return it->second.version == inode.version &&
         offset + len <= it->second.bytes;
}

void ParallelFS::cache_insert(NodeCache& cache, const Inode& inode,
                              Bytes end) {
  if (end > spec_.client_cache_bytes) return;  // too big to cache
  auto& entry = cache.entries[inode.id];
  if (entry.bytes == 0) cache.fifo.push_back(inode.id);
  const Bytes grow = end > entry.bytes ? end - entry.bytes : 0;
  entry.bytes = std::max(entry.bytes, end);
  entry.version = inode.version;
  cache.used += grow;
  while (cache.used > spec_.client_cache_bytes && !cache.fifo.empty()) {
    const FileId victim = cache.fifo.front();
    cache.fifo.pop_front();
    if (victim == inode.id) {
      // Never evict the entry we just inserted; re-queue it.
      cache.fifo.push_back(victim);
      if (cache.fifo.size() == 1) break;
      continue;
    }
    auto vit = cache.entries.find(victim);
    if (vit != cache.entries.end()) {
      cache.used -= vit->second.bytes;
      cache.entries.erase(vit);
    }
  }
}

sim::Task<void> ParallelFS::io(const IoRequest& req) {
  WASP_CHECK_MSG(req.file != kInvalidFile, "io on invalid file");
  counters_.data_ops += req.op_count;
  const Bytes total = req.total_bytes();
  // NOTE: never hold an Inode& across a co_await — concurrent file creation
  // reallocates the inode vector. Fetch fresh references at each use.
  auto& cache = caches_.at(static_cast<std::size_t>(req.site.node));

  // Per-op client cost (syscall + VFS) applies regardless of where the data
  // comes from.
  co_await sim::Delay(eng_, kClientOpOverhead * req.op_count);

  if (faults_ != nullptr) {
    // Slow-stripe spike: a degraded server stalls the whole request.
    const sim::Time extra = faults_->spike(eng_.now());
    if (extra > 0) co_await sim::Delay(eng_, extra);
  }

  if (req.sync_each_op && spec_.sync_latency_factor > 0) {
    // Serialized, contention-inflated per-op latency (library metadata
    // walks). The rate is snapshotted at entry like data transfers.
    ++active_sync_;
    const double active = static_cast<double>(active_sync_);
    const double mult =
        1.0 + spec_.sync_latency_factor *
                  std::pow(active, spec_.sync_latency_exponent);
    const auto per_op = static_cast<sim::Time>(
        static_cast<double>(spec_.data_latency) * mult);
    co_await sim::Delay(eng_, per_op * req.op_count);
    --active_sync_;
  }

  if (req.kind == IoKind::kRead) {
    counters_.bytes_read += total;
    if (cache_enabled_ &&
        cache_covers(cache, ns_.inode(req.file), req.offset, total)) {
      ++counters_.cache_hits;
      const double sec = static_cast<double>(total) /
                         spec_.client_cache_bandwidth_bps;
      co_await sim::Delay(eng_, sim::seconds(sec));
      co_return;
    }
    if (req.size < spec_.small_read_latency_threshold && !req.sync_each_op) {
      // Uncached small reads are seek-limited: each op is a server round
      // trip that readahead/writeback cannot hide. Writes don't pay this —
      // writeback coalesces them into stripe-sized flushes.
      co_await sim::Delay(eng_, spec_.data_latency * req.op_count);
    }
  } else {
    counters_.bytes_written += total;
    auto [it, inserted] = last_writer_node_.try_emplace(req.file,
                                                        req.site.node);
    if (!inserted && it->second != req.site.node) {
      // Write token held by another node: revocation round-trip.
      it->second = req.site.node;
      co_await sim::Delay(eng_, kWriteTokenRevoke);
    }
    if (req.latency_each_op) {
      // Durable writes: each op is acknowledged by the server before the
      // next is issued; writeback cannot absorb them.
      co_await sim::Delay(eng_, spec_.data_latency * req.op_count);
    }
    ns_.inode(req.file).version++;
  }

  // Stripe the batch across data servers. A request spanning k stripes
  // touches min(k, stripe_count) servers in parallel; chunks to the same
  // server are merged so the event count stays bounded.
  const Bytes stripe = std::max<Bytes>(spec_.stripe_size, 1);
  const Bytes first_stripe = req.offset / stripe;
  const auto stripes_touched =
      static_cast<int>(std::min<Bytes>((total + stripe - 1) / stripe,
                                       static_cast<Bytes>(spec_.stripe_count)));
  const int fanout = std::max(stripes_touched, 1);
  const Bytes chunk = total / static_cast<Bytes>(fanout);
  Bytes remainder = total - chunk * static_cast<Bytes>(fanout);

  sim::WaitGroup wg(eng_);
  for (int i = 0; i < fanout; ++i) {
    const auto server_idx = static_cast<std::size_t>(
        (req.file * 131 + first_stripe + static_cast<Bytes>(i)) %
        static_cast<Bytes>(spec_.num_servers));
    Bytes piece = chunk + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    if (piece == 0 && i > 0) continue;
    wg.launch(servers_[server_idx]->transfer(piece, req.size));
  }
  co_await wg.wait();

  if (cache_enabled_) {
    cache_insert(cache, ns_.inode(req.file), req.offset + total);
  }
}

void ParallelFS::drop_client_caches() {
  for (auto& cache : caches_) {
    cache.entries.clear();
    cache.fifo.clear();
    cache.used = 0;
  }
}

Bytes ParallelFS::free_bytes(ProcSite) const {
  const Bytes cap = faults_ != nullptr
                        ? faults_->clamp_capacity(spec_.capacity, eng_.now())
                        : spec_.capacity;
  return used_ >= cap ? 0 : cap - used_;
}

void ParallelFS::note_growth(ProcSite, std::int64_t delta) {
  if (delta < 0 && static_cast<Bytes>(-delta) > used_) {
    used_ = 0;
    return;
  }
  used_ = static_cast<Bytes>(static_cast<std::int64_t>(used_) + delta);
}

}  // namespace wasp::fs
