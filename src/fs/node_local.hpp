// Node-local storage tier (/dev/shm RAM disk or /tmp SSD): one independent
// namespace and channel per node — no cross-node contention, microsecond
// metadata. This is the tier the paper's case studies redirect I/O onto.
#pragma once

#include <memory>
#include <vector>

#include "cluster/spec.hpp"
#include "fs/filesystem.hpp"
#include "sim/link.hpp"

namespace wasp::fs {

class NodeLocalFS final : public FileSystemSim {
 public:
  NodeLocalFS(sim::Engine& eng, const cluster::NodeLocalSpec& spec,
              int num_nodes);

  const std::string& mount() const noexcept override { return spec_.mount; }
  const std::string& name() const noexcept override { return spec_.name; }
  bool shared() const noexcept override { return false; }
  Namespace& ns(ProcSite site) override;

  sim::Task<void> meta(ProcSite site, MetaOp op, FileId file) override;
  sim::Task<void> io(const IoRequest& req) override;
  Bytes free_bytes(ProcSite site) const override;
  void note_growth(ProcSite site, std::int64_t delta) override;

  const cluster::NodeLocalSpec& spec() const noexcept { return spec_; }
  int num_nodes() const noexcept { return static_cast<int>(nodes_.size()); }

  /// Bytes currently stored on one node (capacity accounting).
  Bytes used_bytes(int node) const;

 private:
  struct PerNode {
    Namespace ns;
    std::unique_ptr<sim::SharedLink> link;
    Bytes used = 0;
  };

  sim::Engine& eng_;
  cluster::NodeLocalSpec spec_;
  std::vector<PerNode> nodes_;
};

}  // namespace wasp::fs
