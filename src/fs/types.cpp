#include "fs/types.hpp"

namespace wasp::fs {

const char* to_string(MetaOp op) noexcept {
  switch (op) {
    case MetaOp::kCreate: return "create";
    case MetaOp::kOpen: return "open";
    case MetaOp::kClose: return "close";
    case MetaOp::kStat: return "stat";
    case MetaOp::kSeek: return "seek";
    case MetaOp::kSync: return "sync";
    case MetaOp::kUnlink: return "unlink";
    case MetaOp::kReaddir: return "readdir";
  }
  return "?";
}

const char* to_string(IoKind kind) noexcept {
  return kind == IoKind::kRead ? "read" : "write";
}

}  // namespace wasp::fs
