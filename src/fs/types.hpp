// Common filesystem-facing types shared by the storage models and the
// interface layers (POSIX/STDIO/MPI-IO/HDF5).
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace wasp::fs {

using util::Bytes;

/// Stable identifier of a file within one filesystem namespace.
using FileId = std::uint64_t;
inline constexpr FileId kInvalidFile = ~FileId{0};

/// Where a request originates: needed for node-local tiers, client caches
/// and cross-node sharing effects.
struct ProcSite {
  int node = 0;
  int rank = 0;
};

enum class IoKind : std::uint8_t { kRead, kWrite };

/// Metadata operations the timing model distinguishes. The paper's analysis
/// lumps these as "metadata ops" vs "data ops".
enum class MetaOp : std::uint8_t {
  kCreate,
  kOpen,
  kClose,
  kStat,
  kSeek,
  kSync,
  kUnlink,
  kReaddir,
};

const char* to_string(MetaOp op) noexcept;
const char* to_string(IoKind kind) noexcept;

/// A (possibly coalesced) data request: `op_count` sequential operations of
/// `size` bytes each starting at `offset`. Coalescing keeps the event count
/// per multi-million-op workload low while preserving exact op statistics.
struct IoRequest {
  ProcSite site;
  FileId file = kInvalidFile;
  Bytes offset = 0;
  Bytes size = 0;           ///< per-operation transfer granularity
  std::uint32_t op_count = 1;
  IoKind kind = IoKind::kRead;
  /// Each op must complete before the next is issued (pointer-chasing
  /// library metadata, e.g. HDF5 b-tree walks). These cannot be coalesced
  /// or prefetched, so every op pays full, contention-inflated latency.
  bool sync_each_op = false;
  /// Every op pays plain per-op latency (durable/O_SYNC-style writes that
  /// defeat writeback coalescing) without the contention inflation.
  bool latency_each_op = false;

  Bytes total_bytes() const noexcept {
    return size * static_cast<Bytes>(op_count);
  }
};

}  // namespace wasp::fs
