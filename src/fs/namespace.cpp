#include "fs/namespace.hpp"

#include "util/error.hpp"

namespace wasp::fs {

FileId Namespace::create(const std::string& path, sim::Time now, int rank,
                         int node) {
  if (auto it = by_path_.find(path); it != by_path_.end()) {
    return it->second;
  }
  const FileId id = inodes_.size();
  Inode inode;
  inode.id = id;
  inode.path = path;
  inode.created = now;
  inode.modified = now;
  inode.creator_rank = rank;
  inode.creator_node = node;
  inodes_.push_back(std::move(inode));
  by_path_.emplace(path, id);
  return id;
}

std::optional<FileId> Namespace::lookup(const std::string& path) const {
  if (auto it = by_path_.find(path); it != by_path_.end()) return it->second;
  return std::nullopt;
}

Inode& Namespace::inode(FileId id) {
  WASP_CHECK_MSG(id < inodes_.size(), "unknown inode");
  return inodes_[id];
}

const Inode& Namespace::inode(FileId id) const {
  WASP_CHECK_MSG(id < inodes_.size(), "unknown inode");
  return inodes_[id];
}

bool Namespace::unlink(const std::string& path) {
  return by_path_.erase(path) > 0;
}

std::vector<std::string> Namespace::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (const auto& [path, id] : by_path_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

Bytes Namespace::total_bytes() const noexcept {
  Bytes total = 0;
  for (const auto& [path, id] : by_path_) total += inodes_[id].size;
  return total;
}

}  // namespace wasp::fs
