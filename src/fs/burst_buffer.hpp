// Shared burst-buffer tier (Cray DataWarp-style, as deployed on Cori —
// one of the §II-B storage systems the paper catalogs).
//
// Differences from the PFS model:
//  * SSD-class servers: higher aggregate bandwidth per capacity, low
//    latency, no small-transfer cliff,
//  * distributed key-value metadata — no central MDS to storm,
//  * capacity-limited staging space; persistence is the caller's problem
//    (the paper's DisablePersistent discussion) — hence the async-drain
//    optimization pairs checkpoint writes here with background copies to
//    the PFS.
#pragma once

#include <memory>
#include <vector>

#include "cluster/spec.hpp"
#include "fs/filesystem.hpp"
#include "sim/link.hpp"

namespace wasp::fs {

class BurstBufferFS final : public FileSystemSim {
 public:
  BurstBufferFS(sim::Engine& eng, const cluster::BurstBufferSpec& spec);

  const std::string& mount() const noexcept override { return spec_.mount; }
  const std::string& name() const noexcept override { return spec_.name; }
  bool shared() const noexcept override { return true; }
  Namespace& ns(ProcSite) override { return ns_; }

  sim::Task<void> meta(ProcSite site, MetaOp op, FileId file) override;
  sim::Task<void> io(const IoRequest& req) override;
  Bytes free_bytes(ProcSite site) const override;
  void note_growth(ProcSite site, std::int64_t delta) override;

  const cluster::BurstBufferSpec& spec() const noexcept { return spec_; }
  Bytes used_bytes() const noexcept { return used_; }

 private:
  sim::Engine& eng_;
  cluster::BurstBufferSpec spec_;
  Namespace ns_;
  std::vector<std::unique_ptr<sim::SharedLink>> servers_;
  Bytes used_ = 0;
};

}  // namespace wasp::fs
