#include "fs/burst_buffer.hpp"

#include <algorithm>

#include "sim/faults.hpp"
#include "util/error.hpp"

namespace wasp::fs {

BurstBufferFS::BurstBufferFS(sim::Engine& eng,
                             const cluster::BurstBufferSpec& spec)
    : eng_(eng), spec_(spec) {
  servers_.reserve(static_cast<std::size_t>(spec_.num_servers));
  for (int i = 0; i < spec_.num_servers; ++i) {
    sim::SharedLink::Config cfg;
    cfg.capacity_bps = spec_.server_bandwidth_bps;
    cfg.per_stream_bps = spec_.per_stream_bps;
    cfg.max_streams = spec_.max_streams_per_server;
    cfg.latency = spec_.data_latency;
    cfg.efficiency_bytes = spec_.efficiency_bytes;
    servers_.push_back(std::make_unique<sim::SharedLink>(eng, cfg));
  }
}

sim::Task<void> BurstBufferFS::meta(ProcSite, MetaOp, FileId) {
  ++counters_.meta_ops;
  if (faults_ != nullptr) {
    const sim::Time extra = faults_->spike(eng_.now());
    if (extra > 0) co_await sim::Delay(eng_, extra);
  }
  // Distributed KV metadata: constant low latency, no central bottleneck.
  co_await sim::Delay(eng_, spec_.meta_latency);
}

sim::Task<void> BurstBufferFS::io(const IoRequest& req) {
  WASP_CHECK_MSG(req.file != kInvalidFile, "io on invalid file");
  counters_.data_ops += req.op_count;
  const Bytes total = req.total_bytes();
  if (req.kind == IoKind::kRead) {
    counters_.bytes_read += total;
  } else {
    counters_.bytes_written += total;
    ns_.inode(req.file).version++;
  }
  if (faults_ != nullptr) {
    // Shared-SSD spike: a busy shard stalls the whole request.
    const sim::Time extra = faults_->spike(eng_.now());
    if (extra > 0) co_await sim::Delay(eng_, extra);
  }
  const auto server = static_cast<std::size_t>(
      (req.file * 131 + req.offset / std::max<Bytes>(spec_.shard_size, 1)) %
      static_cast<Bytes>(spec_.num_servers));
  co_await servers_[server]->transfer(total, req.size);
}

Bytes BurstBufferFS::free_bytes(ProcSite) const {
  const Bytes cap = faults_ != nullptr
                        ? faults_->clamp_capacity(spec_.capacity, eng_.now())
                        : spec_.capacity;
  return used_ >= cap ? 0 : cap - used_;
}

void BurstBufferFS::note_growth(ProcSite, std::int64_t delta) {
  if (delta < 0 && static_cast<Bytes>(-delta) > used_) {
    used_ = 0;
    return;
  }
  used_ = static_cast<Bytes>(static_cast<std::int64_t>(used_) + delta);
}

}  // namespace wasp::fs
