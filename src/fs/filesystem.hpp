// Abstract timing/contention model of a mounted filesystem.
//
// Semantics (open tables, offsets, sizes) live in the interface layers
// (io/posix.hpp and friends); a FileSystemSim only answers two questions:
// how long does this metadata op take, and how long does this data request
// take — given where it comes from and what else is in flight.
#pragma once

#include <cstdint>
#include <string>

#include "fs/namespace.hpp"
#include "fs/types.hpp"
#include "sim/task.hpp"

namespace wasp::sim {
class FaultChannel;
}

namespace wasp::fs {

/// Running totals a filesystem keeps about itself (tests + Table IX-style
/// reporting; per-workload numbers come from the tracer instead).
struct FsCounters {
  std::uint64_t meta_ops = 0;
  std::uint64_t data_ops = 0;
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
  std::uint64_t cache_hits = 0;
};

class FileSystemSim {
 public:
  virtual ~FileSystemSim() = default;

  virtual const std::string& mount() const noexcept = 0;
  virtual const std::string& name() const noexcept = 0;

  /// True when all nodes see one namespace (PFS); false for node-local
  /// tiers, whose inode ids are only unique per node.
  virtual bool shared() const noexcept = 0;

  /// Namespace visible from `site` (shared FS: one global; node-local FS:
  /// one per node).
  virtual Namespace& ns(ProcSite site) = 0;

  /// Pay the cost of one metadata operation.
  virtual sim::Task<void> meta(ProcSite site, MetaOp op, FileId file) = 0;

  /// Pay the cost of a (coalesced) data request. Size bookkeeping on the
  /// inode is done by the caller.
  virtual sim::Task<void> io(const IoRequest& req) = 0;

  /// Bytes a new write may still grow this filesystem by from `site`
  /// (node-local tiers are capacity-limited per node).
  virtual Bytes free_bytes(ProcSite site) const = 0;

  /// Incremental usage accounting; called by the interface layer whenever an
  /// inode grows or shrinks (negative delta on unlink/truncate).
  virtual void note_growth(ProcSite site, std::int64_t delta) = 0;

  const FsCounters& counters() const noexcept { return counters_; }

  /// Fault-injection channel wired by Simulation::install_faults; nullptr
  /// (the default) means this filesystem runs fault-free. Implementations
  /// consult it for latency spikes and capacity clamps; the io::* layers
  /// consult it for error injection and retry policy.
  void set_fault_channel(sim::FaultChannel* channel) noexcept {
    faults_ = channel;
  }
  sim::FaultChannel* fault_channel() const noexcept { return faults_; }

 protected:
  FsCounters counters_;
  sim::FaultChannel* faults_ = nullptr;
};

}  // namespace wasp::fs
