// Longest-prefix mount resolution: "/p/gpfs1/..." -> ParallelFS,
// "/dev/shm/..." -> NodeLocalFS, etc.
#pragma once

#include <string>
#include <vector>

#include "fs/filesystem.hpp"

namespace wasp::fs {

class MountTable {
 public:
  /// Register a filesystem at its own mount() prefix. Later registrations
  /// with a longer prefix win for paths under both.
  void add(FileSystemSim& fs);

  /// Filesystem owning `path`; throws SimError if no mount matches.
  FileSystemSim& resolve(const std::string& path) const;
  /// nullptr instead of throwing.
  FileSystemSim* try_resolve(const std::string& path) const noexcept;

  const std::vector<FileSystemSim*>& mounts() const noexcept {
    return mounts_;
  }

 private:
  std::vector<FileSystemSim*> mounts_;
};

}  // namespace wasp::fs
