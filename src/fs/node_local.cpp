#include "fs/node_local.hpp"

#include "sim/faults.hpp"
#include "util/error.hpp"

namespace wasp::fs {

NodeLocalFS::NodeLocalFS(sim::Engine& eng, const cluster::NodeLocalSpec& spec,
                         int num_nodes)
    : eng_(eng), spec_(spec) {
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    sim::SharedLink::Config cfg;
    cfg.capacity_bps = spec_.bandwidth_bps;
    cfg.per_stream_bps = spec_.per_stream_bps;
    cfg.max_streams = spec_.parallel_ops;
    cfg.latency = spec_.data_latency;
    cfg.efficiency_bytes = spec_.efficiency_bytes;
    PerNode pn;
    pn.link = std::make_unique<sim::SharedLink>(eng, cfg);
    nodes_.push_back(std::move(pn));
  }
}

Namespace& NodeLocalFS::ns(ProcSite site) {
  WASP_CHECK_MSG(site.node >= 0 && site.node < num_nodes(),
                 "node out of range for node-local fs");
  return nodes_[static_cast<std::size_t>(site.node)].ns;
}

sim::Task<void> NodeLocalFS::meta(ProcSite site, MetaOp, FileId) {
  WASP_CHECK(site.node >= 0 && site.node < num_nodes());
  ++counters_.meta_ops;
  if (faults_ != nullptr) {
    const sim::Time extra = faults_->spike(eng_.now());
    if (extra > 0) co_await sim::Delay(eng_, extra);
  }
  co_await sim::Delay(eng_, spec_.meta_latency);
}

sim::Task<void> NodeLocalFS::io(const IoRequest& req) {
  WASP_CHECK(req.site.node >= 0 && req.site.node < num_nodes());
  counters_.data_ops += req.op_count;
  const Bytes total = req.total_bytes();
  if (req.kind == IoKind::kRead) {
    counters_.bytes_read += total;
  } else {
    counters_.bytes_written += total;
    ns(req.site).inode(req.file).version++;
  }
  if (faults_ != nullptr) {
    // Local-device stall (SSD GC pause, shm pressure): op completes, slower.
    const sim::Time extra = faults_->spike(eng_.now());
    if (extra > 0) co_await sim::Delay(eng_, extra);
  }
  co_await nodes_[static_cast<std::size_t>(req.site.node)].link->transfer(
      total, req.size);
}

Bytes NodeLocalFS::used_bytes(int node) const {
  WASP_CHECK(node >= 0 && node < num_nodes());
  return nodes_[static_cast<std::size_t>(node)].used;
}

Bytes NodeLocalFS::free_bytes(ProcSite site) const {
  const Bytes cap = faults_ != nullptr
                        ? faults_->clamp_capacity(spec_.capacity, eng_.now())
                        : spec_.capacity;
  const Bytes used = used_bytes(site.node);
  return used >= cap ? 0 : cap - used;
}

void NodeLocalFS::note_growth(ProcSite site, std::int64_t delta) {
  WASP_CHECK(site.node >= 0 && site.node < num_nodes());
  Bytes& used = nodes_[static_cast<std::size_t>(site.node)].used;
  if (delta < 0 && static_cast<Bytes>(-delta) > used) {
    used = 0;
    return;
  }
  used = static_cast<Bytes>(static_cast<std::int64_t>(used) + delta);
}

}  // namespace wasp::fs
