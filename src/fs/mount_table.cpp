#include "fs/mount_table.hpp"

#include "util/error.hpp"

namespace wasp::fs {
namespace {

bool prefix_matches(const std::string& path, const std::string& mount) {
  if (path.rfind(mount, 0) != 0) return false;
  // "/p/gpfs1" must not claim "/p/gpfs1x"; exact match or a '/' boundary.
  return path.size() == mount.size() || path[mount.size()] == '/' ||
         (!mount.empty() && mount.back() == '/');
}

}  // namespace

void MountTable::add(FileSystemSim& fs) { mounts_.push_back(&fs); }

FileSystemSim* MountTable::try_resolve(const std::string& path) const noexcept {
  FileSystemSim* best = nullptr;
  std::size_t best_len = 0;
  for (FileSystemSim* fs : mounts_) {
    const std::string& m = fs->mount();
    if (prefix_matches(path, m) && m.size() >= best_len) {
      best = fs;
      best_len = m.size();
    }
  }
  return best;
}

FileSystemSim& MountTable::resolve(const std::string& path) const {
  FileSystemSim* fs = try_resolve(path);
  WASP_CHECK_MSG(fs != nullptr, "no mount for path: " + path);
  return *fs;
}

}  // namespace wasp::fs
