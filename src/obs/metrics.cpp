#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <ostream>

#ifndef WASP_OBS_OFF
#include <array>
#include <map>
#include <memory>
#include <mutex>
#endif

namespace wasp::obs {

std::uint64_t now_ns() noexcept {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

void write_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // metric names are ASCII identifiers; control chars never
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

const Snapshot::Entry* Snapshot::find(std::string_view name) const noexcept {
  for (const Entry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::uint64_t Snapshot::value(std::string_view name) const noexcept {
  const Entry* e = find(name);
  return e != nullptr ? e->value : 0;
}

std::uint64_t Snapshot::hist_count(std::string_view name) const noexcept {
  const Entry* e = find(name);
  return e != nullptr ? e->count : 0;
}

Snapshot Snapshot::delta(const Snapshot& earlier) const {
  Snapshot out;
  out.entries.reserve(entries.size());
  for (const Entry& e : entries) {
    Entry d = e;
    if (e.kind != Kind::kGauge) {
      if (const Entry* b = earlier.find(e.name); b != nullptr) {
        d.value -= std::min(b->value, d.value);
        d.count -= std::min(b->count, d.count);
        for (auto& [bucket, n] : d.buckets) {
          for (const auto& [bb, bn] : b->buckets) {
            if (bb == bucket) {
              n -= std::min(bn, n);
              break;
            }
          }
        }
        d.buckets.erase(
            std::remove_if(d.buckets.begin(), d.buckets.end(),
                           [](const auto& p) { return p.second == 0; }),
            d.buckets.end());
      }
    }
    out.entries.push_back(std::move(d));
  }
  return out;
}

void Snapshot::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"wasp-telemetry-v1\"";
  for (const Kind kind :
       {Kind::kCounter, Kind::kGauge, Kind::kHistogram}) {
    const char* section = kind == Kind::kCounter   ? "counters"
                          : kind == Kind::kGauge   ? "gauges"
                                                   : "histograms";
    os << ",\n  \"" << section << "\": {";
    bool first = true;
    for (const Entry& e : entries) {
      if (e.kind != kind) continue;
      os << (first ? "\n    " : ",\n    ");
      first = false;
      write_json_escaped(os, e.name);
      if (kind != Kind::kHistogram) {
        os << ": " << e.value;
        continue;
      }
      os << ": {\"count\": " << e.count << ", \"sum\": " << e.value
         << ", \"buckets\": [";
      for (std::size_t b = 0; b < e.buckets.size(); ++b) {
        os << (b > 0 ? ", [" : "[") << e.buckets[b].first << ", "
           << e.buckets[b].second << "]";
      }
      os << "]}";
    }
    os << (first ? "}" : "\n  }");
  }
  os << "\n}\n";
}

#ifndef WASP_OBS_OFF

std::atomic<bool> Registry::timing_{false};

namespace detail {

std::uint32_t value_bucket(std::uint64_t v) noexcept {
  return v == 0 ? 0u
               : static_cast<std::uint32_t>(64 - std::countl_zero(v));
}

}  // namespace detail

namespace {

struct Shard {
  std::array<std::atomic<std::uint64_t>, detail::kMaxSlots> v{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct MetricInfo {
  std::string name;
  MetricKind kind;
  std::uint32_t slot;  // first shard slot (counter/histogram), gauge index
};

/// All registry state, at file scope (leaked singleton: thread-exit hooks
/// may fold shards in after static destruction began).
struct State {
  mutable std::mutex mu;
  std::vector<MetricInfo> metrics;
  std::map<std::string, std::size_t, std::less<>> by_name;
  std::uint32_t next_slot = 0;
  std::uint32_t next_gauge = 0;
  std::vector<std::shared_ptr<Shard>> shards;              // live threads
  std::array<std::uint64_t, detail::kMaxSlots> retired{};  // exited threads
  std::vector<std::pair<std::uint32_t, const std::atomic<std::uint64_t>*>>
      cells;  // live CounterCells: (slot, value)
  std::array<std::atomic<std::int64_t>, detail::kMaxGauges> gauges{};

  std::size_t metric(std::string_view name, MetricKind kind,
                     std::uint32_t slots_needed) {
    std::lock_guard<std::mutex> lk(mu);
    if (auto it = by_name.find(name); it != by_name.end()) {
      // Kind mismatch yields an inert handle rather than corrupting slots.
      return metrics[it->second].kind == kind ? it->second : metrics.size();
    }
    std::uint32_t slot = detail::kInvalidSlot;
    if (kind == MetricKind::kGauge) {
      if (next_gauge >= detail::kMaxGauges) return metrics.size();
      slot = next_gauge++;
    } else {
      if (next_slot + slots_needed > detail::kMaxSlots) return metrics.size();
      slot = next_slot;
      next_slot += slots_needed;
    }
    metrics.push_back({std::string(name), kind, slot});
    by_name.emplace(std::string(name), metrics.size() - 1);
    return metrics.size() - 1;
  }
};

State& state() {
  static State* s = new State;
  return *s;
}

/// Thread-local shard lifetime: register on first use, fold into the
/// retired accumulator on thread exit so totals persist.
struct ShardOwner {
  std::shared_ptr<Shard> shard = std::make_shared<Shard>();
  ShardOwner() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.shards.push_back(shard);
  }
  ~ShardOwner() {
    State& s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    for (std::uint32_t i = 0; i < s.next_slot; ++i) {
      s.retired[i] += shard->v[i].load(std::memory_order_relaxed);
    }
    s.shards.erase(std::remove(s.shards.begin(), s.shards.end(), shard),
                   s.shards.end());
  }
};

}  // namespace

namespace detail {

std::atomic<std::uint64_t>* tls_slots() {
  thread_local ShardOwner owner;
  return owner.shard->v.data();
}

}  // namespace detail

Registry& Registry::instance() {
  static Registry* inst = new Registry;  // leaked, see State
  return *inst;
}

Counter Registry::counter(std::string_view name) {
  State& s = state();
  const std::size_t idx = s.metric(name, MetricKind::kCounter, 1);
  if (idx >= s.metrics.size()) return Counter{};
  return Counter{s.metrics[idx].slot};
}

Gauge Registry::gauge(std::string_view name) {
  State& s = state();
  const std::size_t idx = s.metric(name, MetricKind::kGauge, 1);
  if (idx >= s.metrics.size()) return Gauge{};
  return Gauge{s.metrics[idx].slot};
}

Histogram Registry::histogram(std::string_view name) {
  State& s = state();
  const std::size_t idx =
      s.metric(name, MetricKind::kHistogram, detail::kHistSlots);
  if (idx >= s.metrics.size()) return Histogram{};
  return Histogram{s.metrics[idx].slot};
}

void Gauge::set(std::int64_t v) const noexcept {
  if (idx_ == detail::kInvalidSlot) return;
  state().gauges[idx_].store(v, std::memory_order_relaxed);
}

void Gauge::set_max(std::int64_t v) const noexcept {
  if (idx_ == detail::kInvalidSlot) return;
  auto& g = state().gauges[idx_];
  std::int64_t cur = g.load(std::memory_order_relaxed);
  while (v > cur &&
         !g.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

CounterCell::CounterCell(std::string_view name) {
  const Counter c = Registry::instance().counter(name);
  slot_ = c.slot_;
  if (slot_ == detail::kInvalidSlot) return;
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.cells.emplace_back(slot_, &v_);
}

CounterCell::~CounterCell() {
  if (slot_ == detail::kInvalidSlot) return;
  State& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.retired[slot_] += v_.load(std::memory_order_relaxed);
  s.cells.erase(std::remove_if(
                    s.cells.begin(), s.cells.end(),
                    [this](const auto& p) { return p.second == &v_; }),
                s.cells.end());
}

Snapshot Registry::snapshot() const {
  State& im = state();
  Snapshot out;
  std::lock_guard<std::mutex> lk(im.mu);
  auto slot_total = [&](std::uint32_t slot) {
    std::uint64_t total = im.retired[slot];
    for (const auto& sh : im.shards) {
      total += sh->v[slot].load(std::memory_order_relaxed);
    }
    for (const auto& [cslot, cv] : im.cells) {
      if (cslot == slot) total += cv->load(std::memory_order_relaxed);
    }
    return total;
  };
  out.entries.reserve(im.metrics.size());
  for (const MetricInfo& m : im.metrics) {
    Snapshot::Entry e;
    e.name = m.name;
    switch (m.kind) {
      case MetricKind::kCounter:
        e.kind = Snapshot::Kind::kCounter;
        e.value = slot_total(m.slot);
        break;
      case MetricKind::kGauge:
        e.kind = Snapshot::Kind::kGauge;
        e.value = static_cast<std::uint64_t>(
            im.gauges[m.slot].load(std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        e.kind = Snapshot::Kind::kHistogram;
        e.value = slot_total(m.slot);  // sum slot
        for (std::uint32_t b = 0; b < detail::kHistBuckets; ++b) {
          const std::uint64_t n = slot_total(m.slot + 1 + b);
          if (n == 0) continue;
          e.count += n;
          e.buckets.emplace_back(b, n);
        }
        break;
      }
    }
    out.entries.push_back(std::move(e));
  }
  std::sort(out.entries.begin(), out.entries.end(),
            [](const Snapshot::Entry& a, const Snapshot::Entry& b) {
              return a.name < b.name;
            });
  return out;
}

#else  // WASP_OBS_OFF

Registry& Registry::instance() {
  static Registry* inst = new Registry;
  return *inst;
}

#endif  // WASP_OBS_OFF

}  // namespace wasp::obs
