#include "obs/span.hpp"

#include <cstdio>
#include <ostream>

#ifndef WASP_OBS_OFF
#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>
#endif

namespace wasp::obs {

#ifndef WASP_OBS_OFF

namespace {

struct Event {
  const char* name;
  std::uint64_t ts;
  char ph;  // 'B' or 'E'
};

/// One track = one thread. The owner thread appends under the buffer mutex
/// (uncontended except during export); the exporter locks each buffer in
/// turn. Buffers are retained after thread exit so transient pool workers
/// survive into the export.
struct ThreadBuf {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::string name;
  std::vector<Event> events;
  std::size_t open = 0;  // spans begun but not yet ended
  std::uint64_t dropped = 0;
};

struct TracerState {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::deque<std::string> interned;
  std::map<std::string, const char*, std::less<>> intern_index;
  std::uint32_t next_tid = 1;
  std::size_t max_events = std::size_t{1} << 18;
};

TracerState& tstate() {
  static TracerState* s = new TracerState;  // leaked like the registry
  return *s;
}

ThreadBuf& tls_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    TracerState& s = tstate();
    std::lock_guard<std::mutex> lk(s.mu);
    b->tid = s.next_tid++;
    b->name = "thread-" + std::to_string(b->tid);
    s.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void write_json_escaped(std::ostream& os, std::string_view str) {
  os << '"';
  for (const char c : str) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

SpanTracer& SpanTracer::instance() {
  static SpanTracer* inst = new SpanTracer;
  return *inst;
}

bool SpanTracer::begin(const char* name) {
  ThreadBuf& b = tls_buf();
  std::lock_guard<std::mutex> lk(b.mu);
  const std::size_t cap = tstate().max_events;
  // This B plus one reserved E slot per open span (including ours) must
  // fit — so an accepted begin can always record its end.
  if (b.events.size() + b.open + 2 > cap) {
    ++b.dropped;
    return false;
  }
  b.events.push_back({name, now_ns(), 'B'});
  ++b.open;
  return true;
}

void SpanTracer::end(const char* name) {
  ThreadBuf& b = tls_buf();
  std::lock_guard<std::mutex> lk(b.mu);
  b.events.push_back({name, now_ns(), 'E'});
  --b.open;
}

const char* SpanTracer::intern(std::string_view name) {
  TracerState& s = tstate();
  std::lock_guard<std::mutex> lk(s.mu);
  if (auto it = s.intern_index.find(name); it != s.intern_index.end()) {
    return it->second;
  }
  s.interned.emplace_back(name);
  const char* p = s.interned.back().c_str();
  s.intern_index.emplace(s.interned.back(), p);
  return p;
}

void SpanTracer::set_thread_name(std::string_view name) {
  ThreadBuf& b = tls_buf();
  std::lock_guard<std::mutex> lk(b.mu);
  b.name.assign(name);
}

void SpanTracer::set_max_events_per_thread(std::size_t cap) noexcept {
  TracerState& s = tstate();
  std::lock_guard<std::mutex> lk(s.mu);
  s.max_events = cap < 2 ? 2 : cap;
}

std::uint64_t SpanTracer::dropped_events() const {
  TracerState& s = tstate();
  std::lock_guard<std::mutex> lk(s.mu);
  std::uint64_t total = 0;
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> blk(b->mu);
    total += b->dropped;
  }
  return total;
}

void SpanTracer::write_chrome_trace(std::ostream& os) const {
  TracerState& s = tstate();
  std::lock_guard<std::mutex> lk(s.mu);
  os << "{\"traceEvents\":[";
  bool first = true;
  char ts_buf[32];
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> blk(b->mu);
    if (b->events.empty()) continue;
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << b->tid << ",\"args\":{\"name\":";
    write_json_escaped(os, b->name);
    os << "}}";
    for (const Event& e : b->events) {
      // Chrome trace timestamps are microseconds; keep ns resolution via
      // three decimals.
      std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                    static_cast<double>(e.ts) / 1000.0);
      os << ",\n{\"name\":";
      write_json_escaped(os, e.name);
      os << ",\"ph\":\"" << e.ph << "\",\"ts\":" << ts_buf
         << ",\"pid\":1,\"tid\":" << b->tid << "}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::vector<SpanAgg> SpanTracer::aggregate() const {
  TracerState& s = tstate();
  std::lock_guard<std::mutex> lk(s.mu);
  std::map<std::string_view, SpanAgg> by_name;
  // Replay each track's event stream against a stack, charging a child's
  // duration against its parent's self time on close. Unbalanced opens at
  // the end of a buffer (spans still live, or torn by clear()) are dropped.
  struct Open {
    const char* name;
    std::uint64_t t0;
    std::uint64_t child_ns = 0;
  };
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> blk(b->mu);
    std::vector<Open> stack;
    for (const Event& e : b->events) {
      if (e.ph == 'B') {
        stack.push_back({e.name, e.ts});
        continue;
      }
      if (stack.empty() || stack.back().name != e.name) continue;
      const Open top = stack.back();
      stack.pop_back();
      const std::uint64_t dur = e.ts - top.t0;
      SpanAgg& agg = by_name[top.name];
      agg.count += 1;
      agg.total_ns += dur;
      agg.self_ns += dur - std::min(top.child_ns, dur);
      if (!stack.empty()) stack.back().child_ns += dur;
    }
  }
  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) {
    agg.name.assign(name);
    out.push_back(std::move(agg));
  }
  return out;
}

void SpanTracer::clear() {
  TracerState& s = tstate();
  std::lock_guard<std::mutex> lk(s.mu);
  for (const auto& b : s.bufs) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->events.clear();
    b->dropped = 0;
    // open spans keep their reservation; their E events land in the
    // cleared buffer, unbalanced — tests clear() only between spans.
  }
}

#else  // WASP_OBS_OFF

SpanTracer& SpanTracer::instance() {
  static SpanTracer* inst = new SpanTracer;
  return *inst;
}

void SpanTracer::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n";
}

#endif  // WASP_OBS_OFF

}  // namespace wasp::obs
