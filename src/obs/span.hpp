// Pipeline span tracing — the timeline half of the telemetry layer.
//
// A Span is an RAII wall-clock scope recorded as a Chrome trace-event B/E
// pair on the calling thread's track. Buffers are strictly per-thread (one
// bounded vector each, retained after thread exit so short-lived pool
// workers still appear in the export), timestamps come from the shared
// obs::now_ns() monotonic epoch, and SpanTracer::write_chrome_trace() emits
// the JSON that chrome://tracing and Perfetto load directly.
//
// Guarantees the exported trace upholds (tools/wasp_trace_check verifies):
//   - per-track timestamps are monotonically non-decreasing (single
//     monotonic clock, single writer thread per track);
//   - every B has a matching E with the same name, properly nested (RAII;
//     a Span whose begin was dropped at the buffer cap never emits an end,
//     and begin reserves the end slot so a pair is never half-dropped).
//
// Disabled (the default), a Span costs one relaxed load + branch; nothing
// reads a clock or touches a buffer. -DWASP_OBS_OFF compiles spans away
// entirely. Like the metrics registry, span tracing is strictly read-only
// with respect to simulation and analysis results.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace wasp::obs {

/// Per-name rollup of buffered spans (RunManifest's span table). total is
/// the sum of wall-clock durations over all completed instances; self is
/// total minus the durations of directly nested spans on the same track —
/// the time actually spent in that scope, not delegated to a child.
/// Sorted by name in aggregate() output.
struct SpanAgg {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

#ifndef WASP_OBS_OFF

class SpanTracer {
 public:
  /// Process-wide tracer (never destroyed; see Registry::instance()).
  static SpanTracer& instance();

  /// Master switch; spans recorded only while enabled.
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Stable storage for dynamic span names (scenario names). Span keeps
  /// only the pointer; interned strings live until process exit.
  const char* intern(std::string_view name);

  /// Label the calling thread's track in the export ("pool-worker", ...).
  void set_thread_name(std::string_view name);

  /// Cap on events per thread track (begin reserves the matching end slot,
  /// so pairs never split). Default 1<<18. Exposed for tests.
  void set_max_events_per_thread(std::size_t cap) noexcept;

  /// Spans whose begin was rejected at the buffer cap.
  std::uint64_t dropped_events() const;

  /// Emit every buffered span as Chrome trace-event JSON:
  /// {"traceEvents":[{"name":..,"ph":"B"|"E"|"M","ts":us,"pid":1,"tid":n}..]}
  void write_chrome_trace(std::ostream& os) const;

  /// Roll the buffered spans up per name (count / total / self time).
  /// Spans still open at the call are ignored; tracks merge by name.
  std::vector<SpanAgg> aggregate() const;

  /// Drop all buffered events and thread tracks (tests).
  void clear();

 private:
  friend class Span;
  SpanTracer() = default;
  /// Returns true when the begin event was recorded (end slot reserved).
  bool begin(const char* name);
  void end(const char* name);

  std::atomic<bool> enabled_{false};
};

/// RAII span scope. Construct with a string literal or an interned name —
/// the pointer must stay valid until export.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (name == nullptr) return;
    SpanTracer& t = SpanTracer::instance();
    if (!t.enabled()) return;
    if (t.begin(name)) name_ = name;
  }
  ~Span() {
    if (name_ != nullptr) SpanTracer::instance().end(name_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
};

#else  // WASP_OBS_OFF

class SpanTracer {
 public:
  static SpanTracer& instance();
  void set_enabled(bool) noexcept {}
  bool enabled() const noexcept { return false; }
  const char* intern(std::string_view) { return nullptr; }
  void set_thread_name(std::string_view) {}
  void set_max_events_per_thread(std::size_t) noexcept {}
  std::uint64_t dropped_events() const { return 0; }
  void write_chrome_trace(std::ostream& os) const;
  std::vector<SpanAgg> aggregate() const { return {}; }
  void clear() {}
};

class Span {
 public:
  explicit Span(const char*) noexcept {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // WASP_OBS_OFF

#define WASP_OBS_CONCAT_IMPL(a, b) a##b
#define WASP_OBS_CONCAT(a, b) WASP_OBS_CONCAT_IMPL(a, b)
/// Drop-in scope instrumentation: WASP_OBS_SPAN("engine.run");
#define WASP_OBS_SPAN(name) \
  ::wasp::obs::Span WASP_OBS_CONCAT(wasp_obs_span_, __COUNTER__)(name)

}  // namespace wasp::obs
