// Reporting/regression core behind tools/wasp_report — everything that
// reads run artifacts back in lives here so gtest can drive it directly:
//
//   load_manifest()          parse + validate a RunManifest JSON file into
//                            a flattened metric map (counters as-is,
//                            histograms as name.count / name.sum, spans as
//                            span.<name>.{count,total_ns,self_ns}).
//   aggregate_chrome_trace() the same span rollup RunManifest embeds, but
//                            computed from a --trace-out Chrome trace file.
//   diff_manifests()         per-metric delta table with tolerance bands.
//                            Deterministic metrics (obs::deterministic_
//                            metric) always get tolerance 0; timing
//                            metrics breach only when a tolerance was
//                            explicitly configured, so diffing two runs of
//                            the same configuration exits clean without
//                            tuning flags.
//   check_bench_results()    BENCH_results.json vs a committed baseline:
//                            exact-match determinism fields (engine
//                            events, trace rows — a mismatch is a
//                            violation, never excused by the noise band),
//                            throughput fields inside a relative noise
//                            band, schema v2 and v3 both readable, io
//                            block absent-vs-present treated uniformly.
//
// All loaders throw util::SimError with the offending path (and byte
// offset for parse errors); tools catch and exit nonzero.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/manifest.hpp"
#include "util/error.hpp"

namespace wasp::obs::report {

/// A manifest file flattened for comparison.
struct ManifestView {
  std::string path;
  std::string tool;
  std::string git_sha;
  std::string timestamp;
  std::string backend;
  int jobs = 1;
  unsigned hardware_threads = 0;
  double wall_seconds = 0.0;
  std::vector<SpanAgg> spans;
  /// Flattened metrics, sorted by name (std::map). Includes
  /// "wall_seconds" and the span.* projections.
  std::map<std::string, double> metrics;
};

ManifestView load_manifest(const std::string& path);

/// Span rollup from a Chrome trace-event JSON file ("ts" microseconds are
/// scaled back to ns). Unmatched events are ignored, like the tracer's
/// own aggregate(); a file without a traceEvents array throws.
std::vector<SpanAgg> aggregate_chrome_trace(const std::string& path);

struct DiffOptions {
  /// Relative tolerance for non-deterministic (timing) metrics; negative
  /// means report-only (never breach). Deterministic metrics ignore this
  /// and require exact equality.
  double tolerance = -1.0;
  /// Per-metric overrides, matched by longest prefix ("pool." or an exact
  /// name). An override applies to timing metrics only.
  std::vector<std::pair<std::string, double>> overrides;
};

struct MetricDelta {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  double rel = 0.0;  ///< (b-a)/|a|, 0 when both zero, ±inf-free (a==0 -> 1)
  bool deterministic = false;
  double tolerance = -1.0;  ///< band applied; <0 = report-only
  bool breach = false;
};

/// Union of both metric maps; missing entries compare as 0.
std::vector<MetricDelta> diff_manifests(const ManifestView& a,
                                        const ManifestView& b,
                                        const DiffOptions& opts);

// --- BENCH_results.json regression gate ----------------------------------

/// One workload entry of a bench-results document (v2 or v3). io_present
/// is normalized: v2's `"io": {"present": false, ...}` and v3's absent io
/// block both read as false.
struct BenchEntry {
  std::string name;
  std::string backend;
  std::uint64_t engine_events = 0;
  std::uint64_t trace_rows = 0;
  double events_per_sec = 0.0;
  double analyzer_rows_per_sec = 0.0;
  double wall_seconds = 0.0;  ///< 0 in v2 documents
  bool io_present = false;
};

struct BenchResults {
  int version = 0;  ///< 2 or 3
  std::string scale;
  std::string git_sha;    ///< "unknown" in v2 documents
  std::string timestamp;  ///< "" in v2 documents
  int jobs = 0;
  std::vector<BenchEntry> workloads;
  /// Sweep name -> telemetry engine_events (deterministic across reruns).
  std::map<std::string, std::uint64_t> sweep_engine_events;
};

BenchResults load_bench_results(const std::string& path);

struct CheckOptions {
  /// Noise band for throughput metrics: current < baseline*(1-tolerance)
  /// is a regression. 0.15 keeps a synthetic 20% regression failing while
  /// absorbing ordinary jitter.
  double tolerance = 0.15;
};

struct Check {
  enum class Status { kPass, kRegression, kViolation };
  std::string entry;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double rel = 0.0;
  Status status = Status::kPass;
};

struct Verdict {
  bool regression = false;  ///< a throughput check breached the band
  bool violation = false;   ///< schema/determinism violation (never advisory)
  std::vector<Check> checks;
  std::vector<std::string> notes;

  const char* verdict_string() const noexcept {
    return violation ? "violation" : regression ? "regression" : "pass";
  }
  /// Machine-readable verdict ("wasp-report-verdict-v1").
  void write_json(std::ostream& os, const std::string& results_path,
                  const std::string& baseline_path, double tolerance,
                  bool advisory) const;
  /// 0 pass (or advisory perf breach), 1 perf regression, 3 violation
  /// (hard even in advisory mode).
  int exit_code(bool advisory) const noexcept {
    if (violation) return 3;
    if (regression) return advisory ? 0 : 1;
    return 0;
  }
};

Verdict check_bench_results(const BenchResults& results,
                            const BenchResults& baseline,
                            const CheckOptions& opts);

}  // namespace wasp::obs::report
