// Process-wide metrics registry — the counter half of the telemetry layer
// (obs/span.hpp is the tracing half; obs/obs.hpp pulls in both).
//
// Three metric kinds, all named by stable string keys:
//
//   Counter    monotonic u64, thread-local sharded: add() touches only the
//              calling thread's shard slot (an uncontended relaxed atomic),
//              and snapshot() sums live shards + the folded values of
//              threads that already exited — hot paths never share a cache
//              line, and a snapshot never blocks writers.
//   Gauge      last-write-wins i64 (plus a monotonic-max variant).
//   Histogram  bounded power-of-two histogram of u64 samples: bucket b >= 1
//              counts values in [2^(b-1), 2^b), bucket 0 counts zeros.
//              Sharded exactly like counters.
//
// CounterCell is the per-instance escape hatch: an owned shard bound to a
// named metric. The owner reads its own cell for instance-local stats
// (SpillColumnStore's IoStats accessor) while the registry folds every cell
// into the same process-wide metric; destroyed cells fold into a retired
// accumulator so registry totals stay monotonic.
//
// Telemetry is strictly read-only with respect to simulation and analysis
// results: nothing here feeds back into any computation. Counter/histogram
// accumulation is always on (an uncontended relaxed add); everything that
// must read a clock gates on Registry::timing_enabled(), so the disabled
// cost is one branch. Compiling with -DWASP_OBS_OFF replaces the whole API
// with no-op stubs (CounterCell keeps a real atomic so per-instance
// accessors like IoStats still work).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace wasp::obs {

/// Monotonic nanoseconds since the first call in this process (one shared
/// epoch, so metric timings and span timestamps line up).
std::uint64_t now_ns() noexcept;

/// One registry snapshot, decoupled from the live registry so callers can
/// diff two snapshots (per-phase deltas) and serialize without holding
/// locks. Entries are sorted by name.
struct Snapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Kind kind = Kind::kCounter;
    /// Counter total or gauge value (histograms: sum of samples).
    std::uint64_t value = 0;
    /// Histogram sample count (0 for counters/gauges).
    std::uint64_t count = 0;
    /// Histogram: (bucket index, count) for every non-empty bucket; bucket
    /// b >= 1 covers [2^(b-1), 2^b), bucket 0 is the zero-value bucket.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  };
  std::vector<Entry> entries;

  const Entry* find(std::string_view name) const noexcept;
  /// Counter/gauge value, histogram sum; 0 when absent.
  std::uint64_t value(std::string_view name) const noexcept;
  /// Histogram sample count; 0 when absent or not a histogram.
  std::uint64_t hist_count(std::string_view name) const noexcept;
  /// This snapshot minus `earlier`: counters and histograms subtract
  /// (entries missing from `earlier` pass through), gauges keep the later
  /// value. Entries absent from *this* are dropped.
  Snapshot delta(const Snapshot& earlier) const;
  /// `{"schema":"wasp-telemetry-v1","counters":{...},"gauges":{...},
  ///   "histograms":{"name":{"count":..,"sum":..,"buckets":[[b,n],..]}}}`
  void write_json(std::ostream& os) const;
};

#ifndef WASP_OBS_OFF

namespace detail {
inline constexpr std::uint32_t kInvalidSlot = 0xffffffffu;
/// Hard cap on shard slots (a counter uses 1, a histogram 66). Metric
/// names are static in code; blowing the cap yields inert handles, never
/// UB. 4096 slots = 32 KiB per thread shard.
inline constexpr std::uint32_t kMaxSlots = 4096;
inline constexpr std::uint32_t kMaxGauges = 256;
inline constexpr std::uint32_t kHistBuckets = 65;  // zeros + log2 1..64
inline constexpr std::uint32_t kHistSlots = kHistBuckets + 1;  // + sum slot
/// The calling thread's shard slots (created and registered on first use;
/// folded into the retired accumulator when the thread exits).
std::atomic<std::uint64_t>* tls_slots();
std::uint32_t value_bucket(std::uint64_t v) noexcept;
}  // namespace detail

/// Cheap copyable handle; obtain from Registry::counter(). A
/// default-constructed (or cap-overflow) handle is inert.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const noexcept {
    if (slot_ == detail::kInvalidSlot) return;
    detail::tls_slots()[slot_].fetch_add(n, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  friend class CounterCell;
  explicit Counter(std::uint32_t slot) : slot_(slot) {}
  std::uint32_t slot_ = detail::kInvalidSlot;
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const noexcept;
  /// Monotonic max update.
  void set_max(std::int64_t v) const noexcept;

 private:
  friend class Registry;
  explicit Gauge(std::uint32_t idx) : idx_(idx) {}
  std::uint32_t idx_ = detail::kInvalidSlot;
};

class Histogram {
 public:
  Histogram() = default;
  void add(std::uint64_t v) const noexcept {
    if (first_ == detail::kInvalidSlot) return;
    auto* s = detail::tls_slots();
    s[first_].fetch_add(v, std::memory_order_relaxed);  // sum slot
    s[first_ + 1 + detail::value_bucket(v)].fetch_add(
        1, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Histogram(std::uint32_t first) : first_(first) {}
  std::uint32_t first_ = detail::kInvalidSlot;
};

/// An owned shard of a named counter: increments are instance-local (the
/// owner can read value() back), and the registry folds every live cell
/// into the metric's process-wide total. Destruction folds the final value
/// into the retired accumulator, keeping registry totals monotonic.
class CounterCell {
 public:
  explicit CounterCell(std::string_view name);
  ~CounterCell();
  CounterCell(const CounterCell&) = delete;
  CounterCell& operator=(const CounterCell&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
  std::uint32_t slot_ = detail::kInvalidSlot;
};

class Registry {
 public:
  /// The process-wide registry (never destroyed: thread-exit hooks may fold
  /// shards in after static destruction began).
  static Registry& instance();

  /// Look up or create a metric. Handles for the same name alias the same
  /// metric; registering a name twice with different kinds returns an inert
  /// handle for the mismatched kind.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// Gate for instrumentation that must read a clock (span/section timing).
  /// Off by default: the cost of disabled timing is this one branch.
  static bool timing_enabled() noexcept {
    return timing_.load(std::memory_order_relaxed);
  }
  static void set_timing_enabled(bool on) noexcept {
    timing_.store(on, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;

 private:
  Registry() = default;

  static std::atomic<bool> timing_;
};

/// RAII wall-clock section: adds elapsed ns to `c` at scope exit. Inert
/// (one branch, no clock read) unless Registry::timing_enabled().
class TimerGuard {
 public:
  explicit TimerGuard(Counter c) noexcept
      : c_(c), t0_(Registry::timing_enabled() ? now_ns() + 1 : 0) {}
  ~TimerGuard() {
    if (t0_ != 0) c_.add(now_ns() + 1 - t0_);
  }
  TimerGuard(const TimerGuard&) = delete;
  TimerGuard& operator=(const TimerGuard&) = delete;

 private:
  Counter c_;
  std::uint64_t t0_;  // 0 = timing disabled at entry; else now_ns()+1
};

#else  // WASP_OBS_OFF — null backend: the whole API compiles to nothing.

class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t = 1) const noexcept {}
};

class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t) const noexcept {}
  void set_max(std::int64_t) const noexcept {}
};

class Histogram {
 public:
  Histogram() = default;
  void add(std::uint64_t) const noexcept {}
};

/// Keeps a real atomic so per-instance accessors (SpillColumnStore's
/// IoStats) still report correct values without a registry.
class CounterCell {
 public:
  explicit CounterCell(std::string_view) {}
  CounterCell(const CounterCell&) = delete;
  CounterCell& operator=(const CounterCell&) = delete;
  void add(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Registry {
 public:
  static Registry& instance();
  Counter counter(std::string_view) { return {}; }
  Gauge gauge(std::string_view) { return {}; }
  Histogram histogram(std::string_view) { return {}; }
  static constexpr bool timing_enabled() noexcept { return false; }
  static void set_timing_enabled(bool) noexcept {}
  Snapshot snapshot() const { return {}; }
};

class TimerGuard {
 public:
  explicit TimerGuard(Counter) noexcept {}
  TimerGuard(const TimerGuard&) = delete;
  TimerGuard& operator=(const TimerGuard&) = delete;
};

#endif  // WASP_OBS_OFF

}  // namespace wasp::obs
