// Umbrella header for the telemetry layer: the metrics registry
// (obs/metrics.hpp — counters, gauges, bounded histograms) and the span
// tracer (obs/span.hpp — RAII scopes exported as Chrome trace events).
//
// Instrumentation sites include this and use:
//   static const auto c = obs::Registry::instance().counter("engine.events");
//   c.add(n);                       // always on; uncontended relaxed add
//   obs::TimerGuard t(ns_counter);  // no-op branch unless timing_enabled()
//   WASP_OBS_SPAN("analyze.scan");  // no-op branch unless tracer enabled
//
// Everything compiles to stubs under -DWASP_OBS_OFF (CMake: -DWASP_OBS=OFF).
// See DESIGN.md §9 for the model and the overhead budget.
#pragma once

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
