// RunManifest — the versioned, schema'd digest of one run, the unit the
// reporting layer (tools/wasp_report) aggregates, diffs, and gates on.
//
// A manifest is a closed record: provenance (git SHA, timestamp, hardware
// threads, jobs, backend), wall clock, the metrics-registry rollup
// (counters / gauges / histograms — which covers the spill-store io.*
// cells and the fault injector's faults.* cells), and the span tracer's
// per-name count/total/self-time table. Emitted by `wasp_run --report` /
// `wasp_analyze --report` and embedded per entry by `bench/run_all`.
//
// Two serializations:
//   write_json()                 the full document (schema
//                                "wasp-run-manifest-v1").
//   deterministic_fingerprint()  a canonical one-line digest of only the
//                                metrics that must be bit-equal across
//                                --jobs counts, store backends, and
//                                reruns of the same seed (virtual-clock
//                                and count metrics; no wall-clock, no
//                                cache behavior, no provenance). Two runs
//                                of the same configuration produce the
//                                same fingerprint byte-for-byte.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace wasp::obs {

/// True for metrics whose values are functions of the simulation alone —
/// virtual-time sums and event/row/fault counts — and therefore must not
/// drift across --jobs, backends, or reruns: `engine.events`,
/// `engine.vtime_ns`, `analyze.rows`, and the `faults.` / `replay.`
/// families. Wall-clock counters (`*_ns` from real timers), pool and
/// spill-cache behavior are timing-dependent and excluded.
bool deterministic_metric(std::string_view name) noexcept;

/// `git rev-parse HEAD` of the current working directory, or "unknown"
/// when git or the repository is unavailable. Never throws.
std::string current_git_sha();

/// Current UTC wall time as ISO-8601 ("2026-08-09T12:34:56Z").
std::string iso8601_utc_now();

/// Emit `"counters": {...}, "gauges": {...}, "histograms": {...}` from a
/// snapshot (no surrounding braces), each section's entries sorted by
/// name. `indent` prefixes every line; used by RunManifest::write_json
/// and the per-entry embeds in bench/run_all so the two layouts stay
/// identical.
void write_metric_sections(std::ostream& os, const Snapshot& snapshot,
                           const char* indent);

struct RunManifest {
  static constexpr const char* kSchema = "wasp-run-manifest-v1";

  std::string tool;              ///< producing binary ("wasp_run", ...)
  std::string git_sha = "unknown";
  std::string timestamp;         ///< ISO-8601 UTC
  unsigned hardware_threads = 0;
  int jobs = 1;
  std::string backend = "memory";
  double wall_seconds = 0.0;
  /// Registry rollup — an absolute snapshot (whole-process tools) or a
  /// delta (per-entry embeds); the manifest does not distinguish.
  Snapshot metrics;
  std::vector<SpanAgg> spans;

  /// Snapshot the process: registry + span tracer + provenance. `jobs`
  /// and `backend` describe the run the caller just finished.
  static RunManifest capture(std::string tool, int jobs,
                             std::string backend, double wall_seconds);

  void write_json(std::ostream& os) const;

  /// Canonical `name=value;` / `name=count:sum:[b,n ...];` digest over
  /// the deterministic_metric() subset, sorted by name.
  std::string deterministic_fingerprint() const;
};

}  // namespace wasp::obs
