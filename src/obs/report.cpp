#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <set>

#include "util/json.hpp"

namespace wasp::obs::report {

namespace {

using util::json::Value;

[[noreturn]] void bad(const std::string& path, const std::string& what) {
  throw util::SimError(path + ": " + what);
}

const Value& require(const std::string& path, const Value& v,
                     const std::string& key, Value::Type type,
                     const char* what) {
  const Value* m = v.get(key);
  if (m == nullptr || m->type != type) {
    bad(path, std::string("missing or mistyped \"") + key + "\" (" + what +
                  ")");
  }
  return *m;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace

ManifestView load_manifest(const std::string& path) {
  Value root;
  try {
    root = util::json::parse_file(path);
  } catch (const std::exception& e) {
    throw util::SimError(std::string("manifest: ") + e.what());
  }
  if (!root.is_object()) bad(path, "root is not an object");
  const std::string schema = root.str_or("schema", "");
  if (schema != RunManifest::kSchema) {
    bad(path, schema.empty()
                  ? std::string("not a run manifest (no \"schema\" field)")
                  : "unsupported schema \"" + schema + "\" (want " +
                        RunManifest::kSchema + ")");
  }

  ManifestView m;
  m.path = path;
  m.tool = root.str_or("tool", "");
  m.git_sha = root.str_or("git_sha", "unknown");
  m.timestamp = root.str_or("timestamp", "");
  m.backend = root.str_or("backend", "memory");
  m.jobs = static_cast<int>(root.num_or("jobs", 1));
  m.hardware_threads =
      static_cast<unsigned>(root.num_or("hardware_threads", 0));
  m.wall_seconds = root.num_or("wall_seconds", 0.0);
  m.metrics.emplace("wall_seconds", m.wall_seconds);

  const Value& counters =
      require(path, root, "counters", Value::Type::kObject, "counter map");
  for (const auto& [name, v] : counters.obj) {
    if (!v.is_number()) bad(path, "counter \"" + name + "\" is not numeric");
    m.metrics.emplace(name, v.number);
  }
  if (const Value* gauges = root.get("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, v] : gauges->obj) {
      if (v.is_number()) m.metrics.emplace(name, v.number);
    }
  }
  const Value& hists = require(path, root, "histograms",
                               Value::Type::kObject, "histogram map");
  for (const auto& [name, v] : hists.obj) {
    if (!v.is_object()) {
      bad(path, "histogram \"" + name + "\" is not an object");
    }
    m.metrics.emplace(name + ".count", v.num_or("count", 0));
    m.metrics.emplace(name + ".sum", v.num_or("sum", 0));
  }

  const Value& spans =
      require(path, root, "spans", Value::Type::kArray, "span table");
  for (const Value& s : spans.arr) {
    if (!s.is_object() || s.get("name") == nullptr ||
        !s.get("name")->is_string()) {
      bad(path, "span entry without a string \"name\"");
    }
    SpanAgg agg;
    agg.name = s.get("name")->str;
    agg.count = s.u64_or("count", 0);
    agg.total_ns = s.u64_or("total_ns", 0);
    agg.self_ns = s.u64_or("self_ns", 0);
    m.metrics.emplace("span." + agg.name + ".count",
                      static_cast<double>(agg.count));
    m.metrics.emplace("span." + agg.name + ".total_ns",
                      static_cast<double>(agg.total_ns));
    m.metrics.emplace("span." + agg.name + ".self_ns",
                      static_cast<double>(agg.self_ns));
    m.spans.push_back(std::move(agg));
  }
  return m;
}

std::vector<SpanAgg> aggregate_chrome_trace(const std::string& path) {
  Value root;
  try {
    root = util::json::parse_file(path);
  } catch (const std::exception& e) {
    throw util::SimError(std::string("trace: ") + e.what());
  }
  const Value* events =
      root.is_object() ? root.get("traceEvents") : nullptr;
  if (events == nullptr || !events->is_array()) {
    bad(path, "not a Chrome trace (no traceEvents array)");
  }

  struct Open {
    std::string name;
    double t0_us;
    double child_us = 0.0;
  };
  std::map<std::pair<long long, long long>, std::vector<Open>> stacks;
  std::map<std::string, SpanAgg> by_name;
  for (const Value& e : events->arr) {
    if (!e.is_object()) continue;
    const std::string ph = e.str_or("ph", "");
    if (ph != "B" && ph != "E") continue;
    const Value* name = e.get("name");
    const Value* ts = e.get("ts");
    if (name == nullptr || !name->is_string() || ts == nullptr ||
        !ts->is_number()) {
      continue;
    }
    auto& stack = stacks[{static_cast<long long>(e.num_or("pid", 0)),
                          static_cast<long long>(e.num_or("tid", 0))}];
    if (ph == "B") {
      stack.push_back({name->str, ts->number});
      continue;
    }
    if (stack.empty() || stack.back().name != name->str) continue;
    const Open top = stack.back();
    stack.pop_back();
    const double dur_us = ts->number - top.t0_us;
    SpanAgg& agg = by_name[top.name];
    agg.count += 1;
    agg.total_ns += static_cast<std::uint64_t>(std::llround(dur_us * 1e3));
    const double self_us = std::max(0.0, dur_us - top.child_us);
    agg.self_ns += static_cast<std::uint64_t>(std::llround(self_us * 1e3));
    if (!stack.empty()) stack.back().child_us += dur_us;
  }
  std::vector<SpanAgg> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) {
    agg.name = name;
    out.push_back(std::move(agg));
  }
  return out;
}

std::vector<MetricDelta> diff_manifests(const ManifestView& a,
                                        const ManifestView& b,
                                        const DiffOptions& opts) {
  std::set<std::string> names;
  for (const auto& [n, v] : a.metrics) names.insert(n);
  for (const auto& [n, v] : b.metrics) names.insert(n);

  auto tolerance_for = [&](const std::string& name) {
    double tol = opts.tolerance;
    std::size_t best = 0;
    for (const auto& [prefix, t] : opts.overrides) {
      if (name.rfind(prefix, 0) == 0 && prefix.size() >= best) {
        best = prefix.size();
        tol = t;
      }
    }
    return tol;
  };

  std::vector<MetricDelta> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    MetricDelta d;
    d.name = name;
    const auto ia = a.metrics.find(name);
    const auto ib = b.metrics.find(name);
    d.a = ia != a.metrics.end() ? ia->second : 0.0;
    d.b = ib != b.metrics.end() ? ib->second : 0.0;
    d.rel = d.a == d.b ? 0.0
            : d.a == 0.0 ? 1.0
                         : (d.b - d.a) / std::abs(d.a);
    d.deterministic = deterministic_metric(name);
    if (d.deterministic) {
      d.tolerance = 0.0;
      d.breach = d.a != d.b;
    } else {
      d.tolerance = tolerance_for(name);
      d.breach = d.tolerance >= 0.0 && std::abs(d.rel) > d.tolerance;
    }
    out.push_back(std::move(d));
  }
  return out;
}

// --- BENCH_results.json ---------------------------------------------------

BenchResults load_bench_results(const std::string& path) {
  Value root;
  try {
    root = util::json::parse_file(path);
  } catch (const std::exception& e) {
    throw util::SimError(std::string("bench results: ") + e.what());
  }
  if (!root.is_object()) bad(path, "root is not an object");
  const std::string schema = root.str_or("schema", "");
  BenchResults r;
  if (schema == "wasp-bench-results-v2") {
    r.version = 2;
  } else if (schema == "wasp-bench-results-v3") {
    r.version = 3;
  } else {
    bad(path, schema.empty()
                  ? std::string("no \"schema\" field")
                  : "unsupported schema \"" + schema +
                        "\" (want wasp-bench-results-v2 or -v3)");
  }
  r.scale = root.str_or("scale", "");
  r.git_sha = root.str_or("git_sha", "unknown");
  r.timestamp = root.str_or("timestamp", "");
  r.jobs = static_cast<int>(root.num_or("jobs", 0));

  const Value& workloads = require(path, root, "workloads",
                                   Value::Type::kArray, "workload entries");
  for (const Value& w : workloads.arr) {
    if (!w.is_object()) bad(path, "workload entry is not an object");
    BenchEntry e;
    e.name = w.str_or("name", "");
    if (e.name.empty()) bad(path, "workload entry without a \"name\"");
    e.backend = w.str_or("backend", "memory");
    e.engine_events = w.u64_or("engine_events", 0);
    e.trace_rows = w.u64_or("trace_rows", 0);
    e.events_per_sec = w.num_or("events_per_sec", 0.0);
    e.analyzer_rows_per_sec = w.num_or("analyzer_rows_per_sec", 0.0);
    e.wall_seconds = w.num_or("wall_seconds", 0.0);
    // v2 always carries an io block with a "present" flag; v3 omits the
    // block for memory-backend entries. Both normalize to one bool.
    if (const Value* io = w.get("io"); io != nullptr && io->is_object()) {
      const Value* present = io->get("present");
      e.io_present = present == nullptr ? true : present->boolean;
    }
    r.workloads.push_back(std::move(e));
  }
  if (const Value* sweeps = root.get("sweeps");
      sweeps != nullptr && sweeps->is_array()) {
    for (const Value& s : sweeps->arr) {
      if (!s.is_object()) continue;
      const std::string name = s.str_or("name", "");
      const Value* telemetry = s.get("telemetry");
      if (name.empty() || telemetry == nullptr ||
          !telemetry->is_object()) {
        continue;
      }
      r.sweep_engine_events.emplace(name,
                                    telemetry->u64_or("engine_events", 0));
    }
  }
  return r;
}

Verdict check_bench_results(const BenchResults& results,
                            const BenchResults& baseline,
                            const CheckOptions& opts) {
  Verdict v;
  if (results.scale != baseline.scale) {
    v.violation = true;
    v.notes.push_back("scale mismatch: results are \"" + results.scale +
                      "\", baseline is \"" + baseline.scale + "\"");
    return v;
  }

  auto add = [&](const std::string& entry, const std::string& metric,
                 double base, double cur, Check::Status status) {
    Check c;
    c.entry = entry;
    c.metric = metric;
    c.baseline = base;
    c.current = cur;
    c.rel = base == cur ? 0.0 : base == 0.0 ? 1.0 : (cur - base) / base;
    c.status = status;
    if (status == Check::Status::kRegression) v.regression = true;
    if (status == Check::Status::kViolation) v.violation = true;
    v.checks.push_back(std::move(c));
  };
  auto exact = [&](const std::string& entry, const std::string& metric,
                   std::uint64_t base, std::uint64_t cur) {
    add(entry, metric, static_cast<double>(base), static_cast<double>(cur),
        base == cur ? Check::Status::kPass : Check::Status::kViolation);
  };
  auto banded = [&](const std::string& entry, const std::string& metric,
                    double base, double cur) {
    // Only a *drop* below the band is a regression; faster always passes.
    const bool regressed = base > 0.0 && cur < base * (1.0 - opts.tolerance);
    add(entry, metric, base, cur,
        regressed ? Check::Status::kRegression : Check::Status::kPass);
  };

  for (const BenchEntry& base : baseline.workloads) {
    const auto it = std::find_if(
        results.workloads.begin(), results.workloads.end(),
        [&](const BenchEntry& e) {
          return e.name == base.name && e.backend == base.backend;
        });
    if (it == results.workloads.end()) {
      v.violation = true;
      v.notes.push_back("baseline entry \"" + base.name + "\" (" +
                        base.backend + ") missing from results");
      continue;
    }
    exact(base.name, "engine_events", base.engine_events, it->engine_events);
    exact(base.name, "trace_rows", base.trace_rows, it->trace_rows);
    banded(base.name, "analyzer_rows_per_sec", base.analyzer_rows_per_sec,
           it->analyzer_rows_per_sec);
    banded(base.name, "events_per_sec", base.events_per_sec,
           it->events_per_sec);
  }
  for (const auto& [name, base_events] : baseline.sweep_engine_events) {
    const auto it = results.sweep_engine_events.find(name);
    if (it == results.sweep_engine_events.end()) {
      v.notes.push_back("sweep \"" + name + "\" missing from results");
      continue;
    }
    exact("sweep:" + name, "engine_events", base_events, it->second);
  }
  return v;
}

void Verdict::write_json(std::ostream& os, const std::string& results_path,
                         const std::string& baseline_path, double tolerance,
                         bool advisory) const {
  os << "{\n  \"schema\": \"wasp-report-verdict-v1\",\n";
  os << "  \"results\": ";
  write_json_escaped(os, results_path);
  os << ",\n  \"baseline\": ";
  write_json_escaped(os, baseline_path);
  os << ",\n  \"tolerance\": " << json_num(tolerance);
  os << ",\n  \"advisory\": " << (advisory ? "true" : "false");
  os << ",\n  \"verdict\": \"" << verdict_string() << "\"";
  os << ",\n  \"exit_code\": " << exit_code(advisory);
  os << ",\n  \"checks\": [";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const Check& c = checks[i];
    const char* status = c.status == Check::Status::kPass ? "pass"
                         : c.status == Check::Status::kRegression
                             ? "regression"
                             : "determinism-violation";
    os << (i == 0 ? "\n" : ",\n") << "    {\"entry\": ";
    write_json_escaped(os, c.entry);
    os << ", \"metric\": \"" << c.metric << "\", \"baseline\": "
       << json_num(c.baseline) << ", \"current\": " << json_num(c.current)
       << ", \"rel_delta\": " << json_num(c.rel) << ", \"status\": \""
       << status << "\"}";
  }
  os << (checks.empty() ? "]" : "\n  ]");
  os << ",\n  \"notes\": [";
  for (std::size_t i = 0; i < notes.size(); ++i) {
    os << (i == 0 ? "" : ", ");
    write_json_escaped(os, notes[i]);
  }
  os << "]\n}\n";
}

}  // namespace wasp::obs::report
