#include "obs/manifest.hpp"

#include <cstdio>
#include <ctime>
#include <ostream>
#include <sstream>
#include <thread>

namespace wasp::obs {

namespace {

void write_json_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';  // names here are ASCII identifiers / hex SHAs
    } else {
      os << c;
    }
  }
  os << '"';
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

bool deterministic_metric(std::string_view name) noexcept {
  if (name == "engine.events" || name == "engine.vtime_ns" ||
      name == "analyze.rows") {
    return true;
  }
  return name.rfind("faults.", 0) == 0 || name.rfind("replay.", 0) == 0;
}

std::string current_git_sha() {
  FILE* p = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[128] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, p);
  const int rc = ::pclose(p);
  std::string sha(buf, n);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  // A real SHA is 40 hex chars; anything else (error text, empty) is noise.
  if (rc != 0 || sha.size() != 40 ||
      sha.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return "unknown";
  }
  return sha;
}

std::string iso8601_utc_now() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  ::gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void write_metric_sections(std::ostream& os, const Snapshot& snapshot,
                           const char* indent) {
  using Kind = Snapshot::Kind;
  for (const Kind kind : {Kind::kCounter, Kind::kGauge, Kind::kHistogram}) {
    const char* section = kind == Kind::kCounter ? "counters"
                          : kind == Kind::kGauge ? "gauges"
                                                 : "histograms";
    if (kind != Kind::kCounter) os << ",\n";
    os << indent << "\"" << section << "\": {";
    bool first = true;
    for (const Snapshot::Entry& e : snapshot.entries) {
      if (e.kind != kind) continue;
      os << (first ? "" : ", ");
      first = false;
      write_json_escaped(os, e.name);
      if (kind != Kind::kHistogram) {
        os << ": " << e.value;
        continue;
      }
      os << ": {\"count\": " << e.count << ", \"sum\": " << e.value
         << ", \"buckets\": [";
      for (std::size_t b = 0; b < e.buckets.size(); ++b) {
        os << (b > 0 ? ", [" : "[") << e.buckets[b].first << ", "
           << e.buckets[b].second << "]";
      }
      os << "]}";
    }
    os << "}";
  }
}

RunManifest RunManifest::capture(std::string tool, int jobs,
                                 std::string backend, double wall_seconds) {
  RunManifest m;
  m.tool = std::move(tool);
  m.git_sha = current_git_sha();
  m.timestamp = iso8601_utc_now();
  m.hardware_threads = std::thread::hardware_concurrency();
  m.jobs = jobs;
  m.backend = std::move(backend);
  m.wall_seconds = wall_seconds;
  m.metrics = Registry::instance().snapshot();
  m.spans = SpanTracer::instance().aggregate();
  return m;
}

void RunManifest::write_json(std::ostream& os) const {
  os << "{\n  \"schema\": \"" << kSchema << "\",\n";
  os << "  \"tool\": ";
  write_json_escaped(os, tool);
  os << ",\n  \"git_sha\": ";
  write_json_escaped(os, git_sha);
  os << ",\n  \"timestamp\": ";
  write_json_escaped(os, timestamp);
  os << ",\n  \"hardware_threads\": " << hardware_threads;
  os << ",\n  \"jobs\": " << jobs;
  os << ",\n  \"backend\": ";
  write_json_escaped(os, backend);
  os << ",\n  \"wall_seconds\": " << json_num(wall_seconds);
  os << ",\n  \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanAgg& s = spans[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    write_json_escaped(os, s.name);
    os << ", \"count\": " << s.count << ", \"total_ns\": " << s.total_ns
       << ", \"self_ns\": " << s.self_ns << "}";
  }
  os << (spans.empty() ? "]" : "\n  ]") << ",\n";
  write_metric_sections(os, metrics, "  ");
  os << "\n}\n";
}

std::string RunManifest::deterministic_fingerprint() const {
  std::ostringstream os;
  // Snapshot entries are already sorted by name; zero-valued entries are
  // skipped so a metric that never fired matches one never registered.
  for (const Snapshot::Entry& e : metrics.entries) {
    if (!deterministic_metric(e.name)) continue;
    if (e.kind == Snapshot::Kind::kHistogram) {
      if (e.count == 0) continue;
      os << e.name << "=" << e.count << ":" << e.value << ":[";
      for (std::size_t b = 0; b < e.buckets.size(); ++b) {
        os << (b > 0 ? " " : "") << e.buckets[b].first << ","
           << e.buckets[b].second;
      }
      os << "];";
    } else {
      if (e.value == 0) continue;
      os << e.name << "=" << e.value << ";";
    }
  }
  return os.str();
}

}  // namespace wasp::obs
