#include "advisor/rules.hpp"

#include <sstream>

#include "io/compression.hpp"
#include "util/units.hpp"

namespace wasp::advisor {
namespace {

using charz::WorkloadCharacterization;

std::string attr(const std::string& name, const std::string& value) {
  return name + "=" + value;
}

/// Rule: preload a read-dominated shared dataset into node-local memory
/// when a node's share of it fits (§V-A, CosmoFlow).
void rule_preload_input(const WorkloadCharacterization& c,
                        std::vector<Recommendation>& out) {
  const auto& w = c.workflow;
  const bool read_dominated =
      c.dataset.io_amount > 0 &&
      w.shared_files > w.fpp_files;  // shared-input style
  const bool metadata_heavy = c.dataset.data_ops_fraction < 0.5;
  if (!read_dominated || !metadata_heavy) return;
  if (c.node_local.empty() || c.job.nodes <= 0) return;
  const util::Bytes per_node_share =
      c.dataset.size / static_cast<util::Bytes>(c.job.nodes);
  const auto& tier = c.node_local.front();
  const util::Bytes usable =
      std::min(tier.capacity_per_node, c.middleware.memory_per_node);
  if (per_node_share == 0 || per_node_share > usable) return;

  Recommendation r;
  r.id = "preload-input";
  r.category = Category::kSoftwareAcceleration;
  r.parameter = "preload_input_to_node_local";
  r.value = "true (" + tier.dir + ")";
  r.rationale =
      attr("io_ops_dist_meta",
           util::format_percent(1 - c.dataset.data_ops_fraction)) + ", " +
      attr("shared_files", std::to_string(w.shared_files)) + ", " +
      attr("dataset_share_per_node", util::format_bytes(per_node_share)) +
      " fits " + attr("free_memory_per_node", util::format_bytes(usable));
  r.expected_speedup = 3.0;
  r.apply = [dir = tier.dir](RunConfig& cfg) {
    cfg.preload_input_to_node_local = true;
    cfg.node_local_tier = dir == "/dev/shm" ? "shm" : "tmp";
  };
  out.push_back(std::move(r));
}

/// Rule: route produced-then-consumed intermediate files to node-local
/// storage when stages exchange small-granularity data (§V-B, Montage).
void rule_intermediates_local(const WorkloadCharacterization& c,
                              std::vector<Recommendation>& out) {
  if (!c.workflow.has_app_data_dependency) return;
  if (c.high_level_io.meta_granularity > 64 * util::kKiB) return;
  if (c.node_local.empty()) return;
  const auto& tier = c.node_local.front();

  Recommendation r;
  r.id = "intermediates-node-local";
  r.category = Category::kSoftwareAcceleration;
  r.parameter = "intermediates_to_node_local";
  r.value = "true (" + tier.dir + ")";
  r.rationale =
      attr("app_data_dependency", "yes") + ", " +
      attr("granularity", util::format_bytes(c.high_level_io.meta_granularity)) +
      " (small transfers on intermediate files), " +
      attr("node_local_capacity", util::format_bytes(tier.capacity_per_node));
  r.expected_speedup = 4.0;
  r.apply = [dir = tier.dir](RunConfig& cfg) {
    cfg.intermediates_to_node_local = true;
    cfg.node_local_tier = dir == "/dev/shm" ? "shm" : "tmp";
  };
  out.push_back(std::move(r));
}

/// Rule: match the PFS stripe size to the dominant transfer granularity of
/// the most important files (§IV-D.3, Lustre example).
void rule_stripe_size(const WorkloadCharacterization& c,
                      std::vector<Recommendation>& out) {
  const util::Bytes g = c.high_level_io.data_granularity;
  if (g < 64 * util::kKiB) return;
  // Values survive serialization with 3 significant digits; treat anything
  // within 5% of the default stripe as "already matching".
  const double rel = static_cast<double>(g) / static_cast<double>(util::kMiB);
  if (rel > 0.95 && rel < 1.05) return;  // default already fits
  Recommendation r;
  r.id = "stripe-size";
  r.category = Category::kSystemTuning;
  r.parameter = "stripe_size";
  r.value = util::format_bytes(g);
  r.rationale = attr("io_granularity_data", util::format_bytes(g)) +
                " on the highest-volume files";
  r.expected_speedup = 1.3;
  r.apply = [g](RunConfig& cfg) { cfg.stripe_size = g; };
  out.push_back(std::move(r));
}

/// Rule: disable shared-file locking when no data dependency exists between
/// processes or apps (§IV-D.3, GPFS ROMIO example).
void rule_disable_locking(const WorkloadCharacterization& c,
                          std::vector<Recommendation>& out) {
  bool any_dep = c.workflow.has_app_data_dependency;
  for (const auto& a : c.applications) {
    any_dep = any_dep || a.has_process_data_dependency;
  }
  if (any_dep) return;
  Recommendation r;
  r.id = "disable-locking";
  r.category = Category::kSystemTuning;
  r.parameter = "shared_file_locking";
  r.value = "false";
  r.rationale = attr("app_data_dependency", "NA") + ", " +
                attr("process_data_dependency", "NA");
  r.expected_speedup = 1.2;
  r.apply = [](RunConfig& cfg) { cfg.shared_file_locking = false; };
  out.push_back(std::move(r));
}

/// Rule: raise the STDIO stream buffer when the workload issues very small
/// sequential accesses through STDIO (§IV-D.1 buffering).
void rule_stdio_buffer(const WorkloadCharacterization& c,
                       std::vector<Recommendation>& out) {
  bool stdio_used = false;
  for (const auto& a : c.applications) {
    stdio_used = stdio_used || a.interface == "STDIO";
  }
  if (!stdio_used) return;
  if (c.high_level_io.meta_granularity >= 64 * util::kKiB) return;
  if (c.high_level_io.access_pattern != "Seq") return;
  Recommendation r;
  r.id = "stdio-buffer";
  r.category = Category::kSoftwareAcceleration;
  r.parameter = "stdio_buffer";
  r.value = "1MB";
  r.rationale =
      attr("interface", "STDIO") + ", " +
      attr("granularity", util::format_bytes(c.high_level_io.meta_granularity)) +
      ", " + attr("access_pattern", "Seq");
  r.expected_speedup = 1.5;
  r.apply = [](RunConfig& cfg) { cfg.stdio_buffer = util::kMiB; };
  out.push_back(std::move(r));
}

/// Rule: enable HDF5 chunking sized to the access granularity when an HDF5
/// dataset is read without chunking (§IV-D.5 dataset layout).
void rule_hdf5_chunking(const WorkloadCharacterization& c,
                        std::vector<Recommendation>& out) {
  if (c.dataset.format != "HDF5") return;
  if (c.dataset.data_ops_fraction >= 0.5) return;  // metadata not a problem
  Recommendation r;
  r.id = "hdf5-chunking";
  r.category = Category::kDatasetLayout;
  r.parameter = "hdf5_chunking";
  const util::Bytes chunk = std::max(c.high_level_io.data_granularity,
                                     util::kMiB);
  r.value = "chunk=" + util::format_bytes(chunk);
  r.rationale = attr("dataset_format", "HDF5") + ", " +
                attr("chunking", "NA") + ", " +
                attr("io_ops_dist_meta",
                     util::format_percent(1 - c.dataset.data_ops_fraction));
  r.expected_speedup = 1.8;
  r.apply = [chunk](RunConfig& cfg) {
    cfg.hdf5_chunking = true;
    cfg.hdf5_chunk_size = chunk;
  };
  out.push_back(std::move(r));
}

/// Rule: locality-aware task placement for multi-app workflows
/// (§IV-D.4 process placement for workflow emulators).
void rule_placement(const WorkloadCharacterization& c,
                    std::vector<Recommendation>& out) {
  if (!c.workflow.has_app_data_dependency || c.workflow.num_apps < 2) return;
  Recommendation r;
  r.id = "locality-placement";
  r.category = Category::kProcessPlacement;
  r.parameter = "locality_aware_placement";
  r.value = "true";
  r.rationale = attr("app_data_dependency", "yes") + ", " +
                attr("num_apps", std::to_string(c.workflow.num_apps)) + ", " +
                attr("node_local_bb_dir", c.job.node_local_bb_dirs);
  r.expected_speedup = 1.4;
  r.apply = [](RunConfig& cfg) { cfg.locality_aware_placement = true; };
  out.push_back(std::move(r));
}

/// Rule: drain periodic checkpoint writes asynchronously when write phases
/// alternate with compute (§IV-D.2 async I/O).
void rule_async_checkpoint(const WorkloadCharacterization& c,
                           std::vector<Recommendation>& out) {
  // Periodic small write phases: more than 3 phases, write-dominated.
  int write_phases = 0;
  for (const auto& ph : c.phases) {
    (void)ph;
    ++write_phases;
  }
  const bool periodic = write_phases >= 1 && c.workflow.num_apps == 1 &&
                        c.workflow.io_amount > 0 &&
                        !c.workflow.has_app_data_dependency;
  if (!periodic) return;
  if (c.node_local.empty()) return;
  Recommendation r;
  r.id = "async-checkpoint";
  r.category = Category::kAsyncIo;
  r.parameter = "async_checkpoint_drain";
  r.value = "true";
  r.rationale = attr("io_phase_frequency", "periodic") + ", " +
                attr("node_local_bb_dir", c.node_local.front().dir) + ", " +
                attr("runtime_bound", "compute");
  r.expected_speedup = 1.3;
  r.apply = [](RunConfig& cfg) { cfg.async_checkpoint_drain = true; };
  out.push_back(std::move(r));
}

/// Rule: transparent checkpoint compression when the declared data
/// distribution compresses well — and explicitly NOT when it doesn't (the
/// paper's §I example where compression grew the data 12% and cost 1.5x).
/// GPUs, when present, host the codec (§IV-D.1 "# gpu/node ... use GPU for
/// accelerating data operations such as compression").
void rule_compression(const WorkloadCharacterization& c,
                      std::vector<Recommendation>& out) {
  if (c.dataset.io_amount < 100ull * util::kGB) return;
  const double ratio =
      io::CompressionModel::ratio_for(c.high_level_io.data_distribution);
  if (ratio >= 0.9) return;  // entropy too high: compression would hurt
  const bool gpu = c.workflow.gpus_used_per_node > 0 ||
                   c.job.gpus_per_node > 0;
  Recommendation r;
  r.id = "compress-checkpoints";
  r.category = Category::kSoftwareAcceleration;
  r.parameter = "compress_checkpoints";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "true (ratio %.2f, %s codec)", ratio,
                gpu ? "GPU" : "CPU");
  r.value = buf;
  r.rationale =
      attr("data_dist", c.high_level_io.data_distribution) + ", " +
      attr("io_amount", util::format_bytes(c.dataset.io_amount)) + ", " +
      attr("gpus_per_node", std::to_string(c.job.gpus_per_node));
  r.expected_speedup = 1.0 / std::max(ratio, 0.2);
  r.apply = [ratio, gpu](RunConfig& cfg) {
    cfg.compress_checkpoints = true;
    cfg.compress_on_gpu = gpu;
    cfg.compression_ratio = ratio;
  };
  out.push_back(std::move(r));
}

/// Rule: widen MPI-IO collective buffers when collective accesses move
/// small granularities (§IV-D.1 aggregation).
void rule_cb_buffer(const WorkloadCharacterization& c,
                    std::vector<Recommendation>& out) {
  bool mpiio_used = false;
  for (const auto& a : c.applications) {
    mpiio_used = mpiio_used || a.interface == "MPI-IO" ||
                 a.interface == "HDF5";
  }
  if (!mpiio_used) return;
  if (c.high_level_io.data_granularity >= 16 * util::kMiB) return;
  Recommendation r;
  r.id = "cb-buffer";
  r.category = Category::kSoftwareAcceleration;
  r.parameter = "mpiio.cb_buffer";
  r.value = "32MB";
  r.rationale =
      attr("interface", "MPI-IO") + ", " +
      attr("granularity_data",
           util::format_bytes(c.high_level_io.data_granularity));
  r.expected_speedup = 1.2;
  r.apply = [](RunConfig& cfg) { cfg.mpiio.cb_buffer = 32 * util::kMiB; };
  out.push_back(std::move(r));
}

}  // namespace

const char* to_string(Category c) noexcept {
  switch (c) {
    case Category::kSoftwareAcceleration: return "software-acceleration";
    case Category::kAsyncIo: return "async-io";
    case Category::kSystemTuning: return "system-tuning";
    case Category::kProcessPlacement: return "process-placement";
    case Category::kDatasetLayout: return "dataset-layout";
  }
  return "?";
}

std::vector<Recommendation> RuleEngine::evaluate(
    const charz::WorkloadCharacterization& c) const {
  std::vector<Recommendation> out;
  rule_preload_input(c, out);
  rule_intermediates_local(c, out);
  rule_stripe_size(c, out);
  rule_disable_locking(c, out);
  rule_stdio_buffer(c, out);
  rule_hdf5_chunking(c, out);
  rule_placement(c, out);
  rule_async_checkpoint(c, out);
  rule_cb_buffer(c, out);
  rule_compression(c, out);
  return out;
}

RunConfig RuleEngine::configure(const std::vector<Recommendation>& recs,
                                RunConfig base) {
  for (const auto& r : recs) {
    if (r.apply) r.apply(base);
  }
  return base;
}

std::string RuleEngine::report(const std::vector<Recommendation>& recs) {
  std::ostringstream os;
  if (recs.empty()) {
    os << "no workload-aware reconfiguration recommended\n";
    return os.str();
  }
  for (const auto& r : recs) {
    os << "[" << to_string(r.category) << "] " << r.id << ": set "
       << r.parameter << " = " << r.value << "\n    because " << r.rationale
       << "\n    expected I/O speedup ~" << r.expected_speedup << "x\n";
  }
  return os.str();
}

}  // namespace wasp::advisor
