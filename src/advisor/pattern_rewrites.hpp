// What-if rewrites over the pattern IR (§IV-D).
//
// Each of the advisor's configuration changes — preload inputs to a
// node-local tier, redirect intermediates to shm, enable HDF5 chunking,
// grow the STDIO buffer — is expressed here as a pure IR -> IR transform
// over a compiled JobPattern. Evaluating a recommendation is then: compile
// the baseline once, rewrite, replay, compare profiles. The rewrites never
// re-derive workload structure; they only edit the declarative pattern.
#pragma once

#include <string>

#include "pattern/pattern.hpp"

namespace wasp::advisor {

/// Inputs of an MPIFileUtils-style parallel stage-in (§IV-D.1). Compilers
/// whose workload supports preloading record one in the pattern's meta
/// ("preload.*" keys) so the rewrite can also be applied to a pattern
/// loaded from YAML (wasp_pattern whatif).
struct PreloadSpec {
  std::string src_dir;  ///< PFS directory the inputs live in (with '/')
  std::string dst_dir;  ///< node-local target directory (with '/')
  std::string suffix;   ///< input file name suffix, e.g. ".h5"
  std::uint64_t files = 0;
  int nodes = 1;
  int ppn = 1;                           ///< ranks per node doing the copy
  util::Bytes file_size = 0;
  util::Bytes chunk = 4 * util::kMiB;    ///< copy transfer size
  std::uint64_t floor_ns = 0;            ///< paced-copy floor per file
};

/// Recover the preload spec a compiler stored in `pat.meta`; `dst_dir`
/// becomes `tier_mount + "/" + pat.name + "/"`. Returns false when the
/// pattern carries no preload metadata.
bool preload_spec_from_meta(const pattern::JobPattern& pat,
                            const std::string& tier_mount, PreloadSpec* out);

/// §IV-D.1: retarget every path under `spec.src_dir` to the node-local
/// copies in `spec.dst_dir`, then prepend the paced parallel copy loop
/// (plus a barrier) to the first phase of the first lane group.
void apply_preload(pattern::JobPattern& pat, const PreloadSpec& spec);

/// §IV-D.4 (shm redirect): rewrite every path that starts with `from` to
/// start with `to` — op path templates and size_of("...") references
/// inside expressions alike.
void redirect_prefix(pattern::JobPattern& pat, const std::string& from,
                     const std::string& to);

/// §IV-D.3: set the HDF5 dataset chunk size of every lane group (0 turns
/// chunking off and restores the deep object-header walk per open).
void set_hdf5_chunking(pattern::JobPattern& pat, util::Bytes chunk_size);

/// §IV-D.5: set the STDIO buffer of every lane group and of the DAG.
void set_stdio_buffer(pattern::JobPattern& pat, util::Bytes buffer);

/// What-if: rescale every constant-size transfer to `transfer`, keeping
/// the bytes moved identical (count = max(size * count / transfer, 1)).
/// Ops whose size or count is a computed expression are left untouched.
/// Returns the number of ops rewritten.
int set_transfer_size(pattern::JobPattern& pat, util::Bytes transfer);

/// What-if: move plain open/close/read/write/seek/seek_batch chains to
/// `layer` (posix <-> stdio). Handles also used by layer-pinned ops
/// (pread/pwrite, scattered reads, wrap seeks, paced reads, hdf5 or
/// compressed opens) keep their original layer. Returns the number of ops
/// rewritten.
int set_interface(pattern::JobPattern& pat, pattern::Layer layer);

}  // namespace wasp::advisor
