#include "advisor/pattern_rewrites.hpp"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace wasp::advisor {
namespace {

namespace po = pattern::ops;
using pattern::Expr;
using pattern::Op;
using pattern::OpKind;

/// Visit every op (depth-first) in every op vector of the pattern.
template <typename F>
void for_each_op(std::vector<Op>& ops, F&& f) {
  for (Op& o : ops) {
    f(o);
    if (!o.body.empty()) for_each_op(o.body, f);
  }
}

template <typename F>
void for_each_tree(pattern::JobPattern& pat, F&& f) {
  for (auto& g : pat.groups) {
    for (auto& ph : g.phases) f(ph.ops);
  }
  for (auto& st : pat.dag.stages) f(st.ops);
}

/// Rewrite quoted path prefixes inside an expression's text (size_of
/// arguments) and reparse.
Expr retarget_expr(const Expr& e, const std::string& from,
                   const std::string& to) {
  if (e.empty()) return e;
  const std::string needle = "\"" + from;
  std::string text = e.text();
  bool changed = false;
  for (std::size_t pos = 0; (pos = text.find(needle, pos)) !=
                            std::string::npos;) {
    text.replace(pos, needle.size(), "\"" + to);
    pos += to.size() + 1;
    changed = true;
  }
  return changed ? Expr(text) : e;
}

/// Evaluate an expression that should be a compile-time constant; returns
/// false when it references lane state (env vars, size_of).
bool const_value(const Expr& e, std::int64_t* out) {
  if (e.empty()) return false;
  pattern::Env env;
  pattern::EvalContext ctx;
  ctx.env = &env;
  try {
    *out = e.eval(ctx);
    return true;
  } catch (const util::SimError&) {
    return false;
  }
}

bool parse_u64(const std::string* s, std::uint64_t* out) {
  if (s == nullptr || s->empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s->c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Handles that must stay on their layer: ops that exist on exactly one
/// interface pin the file handle they touch.
void collect_pinned(const std::vector<Op>& ops,
                    std::set<std::string>* pinned) {
  for (const Op& o : ops) {
    switch (o.kind) {
      case OpKind::kPread:
      case OpKind::kPwrite:
      case OpKind::kPreadSync:
      case OpKind::kPwriteSync:
      case OpKind::kReadScattered:
      case OpKind::kSeekIfWrap:
      case OpKind::kPacedRead:
        pinned->insert(o.handle);
        break;
      case OpKind::kOpen:
        if (o.layer == pattern::Layer::kHdf5 ||
            o.layer == pattern::Layer::kCompressed) {
          pinned->insert(o.handle);
        }
        break;
      case OpKind::kRead:
      case OpKind::kWrite:
        if (o.layer == pattern::Layer::kCompressed ||
            o.layer == pattern::Layer::kHdf5) {
          pinned->insert(o.handle);
        }
        break;
      default:
        break;
    }
    if (o.kind != OpKind::kSpawn && !o.body.empty()) {
      collect_pinned(o.body, pinned);
    }
  }
}

void rewrite_layer(std::vector<Op>& ops, const std::set<std::string>& pinned,
                   pattern::Layer layer, int* n) {
  for (Op& o : ops) {
    if (o.kind == OpKind::kSpawn) {
      // A spawned body has its own handle scope.
      std::set<std::string> inner;
      collect_pinned(o.body, &inner);
      rewrite_layer(o.body, inner, layer, n);
      continue;
    }
    switch (o.kind) {
      case OpKind::kOpen:
      case OpKind::kClose:
      case OpKind::kRead:
      case OpKind::kWrite:
      case OpKind::kSeek:
      case OpKind::kSeekBatch:
        if ((o.layer == pattern::Layer::kPosix ||
             o.layer == pattern::Layer::kStdio) &&
            o.layer != layer && pinned.count(o.handle) == 0) {
          o.layer = layer;
          ++*n;
        }
        break;
      default:
        break;
    }
    if (!o.body.empty()) rewrite_layer(o.body, pinned, layer, n);
  }
}

}  // namespace

bool preload_spec_from_meta(const pattern::JobPattern& pat,
                            const std::string& tier_mount, PreloadSpec* out) {
  const std::string* src = pat.find_meta("preload.src_dir");
  if (src == nullptr) return false;
  PreloadSpec spec;
  spec.src_dir = *src;
  if (const std::string* s = pat.find_meta("preload.suffix")) {
    spec.suffix = *s;
  }
  spec.dst_dir = tier_mount + "/" + pat.name + "/";
  std::uint64_t v = 0;
  if (parse_u64(pat.find_meta("preload.files"), &v)) spec.files = v;
  if (parse_u64(pat.find_meta("preload.nodes"), &v)) {
    spec.nodes = static_cast<int>(v);
  }
  if (parse_u64(pat.find_meta("preload.ppn"), &v)) {
    spec.ppn = static_cast<int>(v);
  }
  if (parse_u64(pat.find_meta("preload.file_size"), &v)) spec.file_size = v;
  if (parse_u64(pat.find_meta("preload.chunk"), &v)) spec.chunk = v;
  if (parse_u64(pat.find_meta("preload.floor_ns"), &v)) spec.floor_ns = v;
  *out = std::move(spec);
  return true;
}

void apply_preload(pattern::JobPattern& pat, const PreloadSpec& spec) {
  WASP_CHECK_MSG(!pat.groups.empty() && !pat.groups.front().phases.empty(),
                 "pattern: apply_preload needs at least one lane phase");
  WASP_CHECK_MSG(spec.files > 0 && spec.chunk > 0,
                 "pattern: preload spec has no files / zero chunk");

  // Consumers read the node-local copies...
  redirect_prefix(pat, spec.src_dir, spec.dst_dir);

  // ...which the prepended paced copy loop creates. Every local rank
  // stages an interleaved slice of its node's shard: file indices
  // node + local*nodes + m*(ppn*nodes).
  const std::string src = spec.src_dir + "{i}" + spec.suffix;
  const std::string dst = spec.dst_dir + "{i}" + spec.suffix;
  const auto chunks = static_cast<std::int64_t>(
      std::max<util::Bytes>(spec.file_size / spec.chunk, 1));
  std::vector<Op> body;
  body.push_back(po::stat(src));
  body.push_back(po::open(pattern::Layer::kPosix, "pre_src", src,
                          io::OpenMode::kRead));
  body.push_back(po::open(pattern::Layer::kPosix, "pre_dst", dst,
                          io::OpenMode::kWrite));
  body.push_back(po::paced_read(
      "pre_src", Expr::lit(static_cast<std::int64_t>(spec.chunk)),
      Expr::lit(chunks), spec.floor_ns));
  body.push_back(po::write(pattern::Layer::kPosix, "pre_dst",
                           Expr::lit(static_cast<std::int64_t>(spec.chunk)),
                           Expr::lit(chunks)));
  body.push_back(po::close(pattern::Layer::kPosix, "pre_src"));
  body.push_back(po::close(pattern::Layer::kPosix, "pre_dst"));

  std::vector<Op> pre;
  pre.push_back(po::loop(
      "i", Expr("node + local * " + std::to_string(spec.nodes)),
      Expr::lit(static_cast<std::int64_t>(spec.files)), std::move(body),
      Expr(std::to_string(spec.ppn) + " * " + std::to_string(spec.nodes))));
  pre.push_back(po::barrier());

  auto& ops = pat.groups.front().phases.front().ops;
  ops.insert(ops.begin(), std::make_move_iterator(pre.begin()),
             std::make_move_iterator(pre.end()));
}

void redirect_prefix(pattern::JobPattern& pat, const std::string& from,
                     const std::string& to) {
  if (from.empty() || from == to) return;
  for_each_tree(pat, [&](std::vector<Op>& ops) {
    for_each_op(ops, [&](Op& o) {
      if (o.path.compare(0, from.size(), from) == 0) {
        o.path = to + o.path.substr(from.size());
      }
      for (Expr* e : {&o.offset, &o.size, &o.count, &o.fetch_ops,
                      &o.wrap_bytes, &o.wrap_limit, &o.begin, &o.end,
                      &o.step, &o.when}) {
        *e = retarget_expr(*e, from, to);
      }
    });
  });
}

void set_hdf5_chunking(pattern::JobPattern& pat, util::Bytes chunk_size) {
  for (auto& g : pat.groups) g.hdf5.chunk_size = chunk_size;
}

void set_stdio_buffer(pattern::JobPattern& pat, util::Bytes buffer) {
  for (auto& g : pat.groups) g.stdio_buffer = buffer;
  pat.dag.stdio_buffer = buffer;
}

int set_transfer_size(pattern::JobPattern& pat, util::Bytes transfer) {
  WASP_CHECK_MSG(transfer > 0, "pattern: transfer size must be positive");
  int n = 0;
  for_each_tree(pat, [&](std::vector<Op>& ops) {
    for_each_op(ops, [&](Op& o) {
      switch (o.kind) {
        case OpKind::kRead:
        case OpKind::kWrite:
        case OpKind::kPread:
        case OpKind::kPwrite:
        case OpKind::kPreadSync:
        case OpKind::kPwriteSync:
          break;
        default:
          return;
      }
      std::int64_t size = 0;
      std::int64_t count = 1;
      if (!const_value(o.size, &size)) return;
      if (!o.count.empty() && !const_value(o.count, &count)) return;
      const std::int64_t total = size * count;
      if (total <= 0 || static_cast<util::Bytes>(size) == transfer) return;
      o.size = Expr::lit(static_cast<std::int64_t>(transfer));
      o.count = Expr::lit(std::max<std::int64_t>(
          total / static_cast<std::int64_t>(transfer), 1));
      ++n;
    });
  });
  return n;
}

int set_interface(pattern::JobPattern& pat, pattern::Layer layer) {
  if (layer != pattern::Layer::kPosix && layer != pattern::Layer::kStdio) {
    return 0;
  }
  int n = 0;
  for_each_tree(pat, [&](std::vector<Op>& ops) {
    std::set<std::string> pinned;
    collect_pinned(ops, &pinned);
    rewrite_layer(ops, pinned, layer, &n);
  });
  return n;
}

}  // namespace wasp::advisor
