// Attribute -> configuration rule engine (§IV-D of the paper).
//
// Each rule inspects the WorkloadCharacterization and, when its conditions
// hold, emits a Recommendation that (a) names the §IV-D optimization
// category, (b) cites the attributes that drove the decision, and (c)
// carries an `apply` function that rewrites a RunConfig. This is the
// "storage system configures itself from the user-provided features" step.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "advisor/config.hpp"
#include "core/entities.hpp"

namespace wasp::advisor {

enum class Category {
  kSoftwareAcceleration,  ///< §IV-D.1 aggregation/buffering/caching/prefetch
  kAsyncIo,               ///< §IV-D.2
  kSystemTuning,          ///< §IV-D.3 PFS/middleware parameters
  kProcessPlacement,      ///< §IV-D.4
  kDatasetLayout,         ///< §IV-D.5
};

const char* to_string(Category c) noexcept;

struct Recommendation {
  std::string id;         ///< stable rule identifier, e.g. "preload-input"
  Category category = Category::kSoftwareAcceleration;
  std::string parameter;  ///< RunConfig field (human-readable)
  std::string value;      ///< target value
  std::string rationale;  ///< the attributes that justified the change
  double expected_speedup = 1.0;  ///< coarse a-priori estimate
  std::function<void(RunConfig&)> apply;
};

class RuleEngine {
 public:
  /// Evaluate all built-in rules against a characterization.
  std::vector<Recommendation> evaluate(
      const charz::WorkloadCharacterization& c) const;

  /// Apply every recommendation to a base config (the storage system
  /// "configuring itself").
  static RunConfig configure(const std::vector<Recommendation>& recs,
                             RunConfig base = RunConfig{});

  /// Render recommendations as a human-readable report.
  static std::string report(const std::vector<Recommendation>& recs);
};

}  // namespace wasp::advisor
