// RunConfig: every storage/middleware knob the advisor can turn and the
// workload runner honors. The default-constructed value is the system
// default configuration (the paper's "baseline"); the advisor rewrites
// fields based on workload attributes (the paper's "optimized").
#pragma once

#include <string>

#include "io/mpiio.hpp"
#include "sim/faults.hpp"
#include "util/units.hpp"

namespace wasp::advisor {

struct RunConfig {
  // ---- Parallel-file-system configuration (Lustre/GPFS-style) ----
  util::Bytes stripe_size = util::kMiB;
  int stripe_count = 4;
  bool client_page_cache = true;
  /// GPFS ROMIO-style byte-range locking for shared files.
  bool shared_file_locking = true;

  // ---- Middleware configuration ----
  util::Bytes stdio_buffer = 4 * util::kKiB;  ///< setvbuf size
  io::MpiIoConfig mpiio;                      ///< cb_buffer / aggregators
  bool hdf5_chunking = false;
  util::Bytes hdf5_chunk_size = util::kMiB;

  // ---- Data placement ----
  /// Stage the (read-only) input dataset into a node-local tier before the
  /// compute phase (the CosmoFlow case study, §V-A).
  bool preload_input_to_node_local = false;
  /// Create and consume intermediate workflow files on a node-local tier
  /// instead of the PFS (the Montage case study, §V-B).
  bool intermediates_to_node_local = false;
  /// Which node-local tier to use for either redirection.
  std::string node_local_tier = "shm";

  // ---- Data transformation ----
  /// Compress checkpoint/output streams (HCompress-style middleware).
  bool compress_checkpoints = false;
  /// Run the codec on the GPU (the "# gpu/node" attribute, §IV-D.1).
  bool compress_on_gpu = false;
  /// Expected stored/logical ratio (set by the advisor from the declared
  /// data distribution).
  double compression_ratio = 0.5;

  // ---- Scheduling ----
  /// Place workflow tasks on the node that produced their inputs.
  bool locality_aware_placement = false;
  /// Overlap checkpoint writes with the next compute phase.
  bool async_checkpoint_drain = false;

  // ---- Fault injection ----
  /// Deterministic fault schedule for the run (empty = fault-free). The
  /// runner installs it on the Simulation before launching the traced job.
  sim::FaultPlan faults;
};

}  // namespace wasp::advisor
