// Event queues for the discrete-event engine.
//
// Both queues implement the same pop-min contract over (time, seq) keys:
// sequence numbers are assigned by the engine in schedule order, so two
// events at the same instant always resume FIFO and runs stay
// bit-reproducible regardless of which queue serves them.
//
//   HeapEventQueue   the classic binary heap (std::priority_queue). O(log n)
//                    per push/pop. Kept as the equivalence oracle: property
//                    tests drive identical schedules through both queues and
//                    assert identical pop order.
//   WheelEventQueue  hierarchical bucketed timer wheel with a same-timestamp
//                    FIFO fast lane and a far-future overflow tier. O(1)
//                    push, O(1) amortized pop for the dense same-instant
//                    wake-ups HPC workloads generate (barriers, allreduces
//                    waking hundreds of ranks at one instant), at most
//                    kLevels re-buckets per event for sparse far apart ones.
//
// Wheel geometry: kLevels levels of 64 buckets; level L buckets are
// 64^L ns wide, so the wheel spans 64^kLevels ns (~3.3 simulated days at
// kLevels = 8) before the overflow tier kicks in. An event is placed on the
// lowest level whose bucket width still separates it from the cursor
// (level = highest differing 6-bit group of `at ^ cursor`), which makes two
// invariants hold by construction:
//
//   1. Within any bucket, events are appended in ascending seq order
//      (cascades preserve order; direct pushes always carry the largest seq
//      so far), so no sorting is ever needed — a level-0 bucket holds
//      exactly one timestamp and drains FIFO.
//   2. At every level, buckets at or before the cursor's own index are
//      empty, so "next event" is a find-first-set on a 64-bit occupancy
//      word per level.
//
// The cursor only ever advances to (a) the exact timestamp of the bucket
// being drained or (b) the minimum event time of a bucket being cascaded
// (clamped to the caller's pop limit) — the cascaded bucket is the first
// nonempty one of the lowest nonempty level, so its minimum is the global
// pending minimum and both targets are <= the time of every pending event.
// Pops therefore come out in exact (time, seq) order — the property test in
// tests/test_sim_engine.cpp pins this against the heap oracle.
#pragma once

#include <bit>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace wasp::sim {

/// One scheduled wake-up: resume `h` at simulated time `at`; `seq` breaks
/// same-instant ties in schedule order.
struct QueueEvent {
  Time at = 0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> h;
};

/// Binary-heap queue (the pre-wheel engine core, kept as the oracle).
class HeapEventQueue {
 public:
  void push(Time at, std::uint64_t seq, std::coroutine_handle<> h) {
    queue_.push(QueueEvent{at, seq, h});
  }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t size() const noexcept { return queue_.size(); }

  /// Pop the earliest (time, seq) event if its time is <= `limit`.
  bool pop_at_most(Time limit, QueueEvent& out) {
    if (queue_.empty() || queue_.top().at > limit) return false;
    out = queue_.top();
    queue_.pop();
    return true;
  }

 private:
  struct Later {
    bool operator()(const QueueEvent& a, const QueueEvent& b) const noexcept {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  std::priority_queue<QueueEvent, std::vector<QueueEvent>, Later> queue_;
};

/// Hierarchical timer wheel (see file comment for the determinism argument).
class WheelEventQueue {
 public:
  static constexpr int kLevelBits = 6;
  static constexpr std::size_t kBucketsPerLevel = std::size_t{1}
                                                  << kLevelBits;
  static constexpr int kLevels = 8;
  /// Events at least this far past the cursor go to the overflow tier.
  static constexpr Time kHorizon = Time{1} << (kLevelBits * kLevels);

  struct Stats {
    std::uint64_t fifo_pushes = 0;     ///< same-timestamp fast-lane pushes
    std::uint64_t bucket_pushes = 0;   ///< wheel-bucket placements
    std::uint64_t cascades = 0;        ///< higher-level buckets redistributed
    std::uint64_t cascaded_events = 0; ///< events re-placed by cascades
    std::uint64_t overflow_pushes = 0; ///< events beyond the wheel horizon
    std::uint64_t overflow_reseeds = 0;
  };

  void push(Time at, std::uint64_t seq, std::coroutine_handle<> h) {
    ++size_;
    place(QueueEvent{at, seq, h});
  }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Pop the earliest (time, seq) event if its time is <= `limit`. Never
  /// moves the cursor past `limit`, so events scheduled later into the
  /// [limit, next-event) gap still bucket correctly.
  bool pop_at_most(Time limit, QueueEvent& out) {
    if (fifo_head_ >= fifo_.size()) {
      fifo_.clear();
      fifo_head_ = 0;
      if (!advance(limit)) return false;
    } else if (fifo_[fifo_head_].at > limit) {
      return false;
    }
    out = fifo_[fifo_head_++];
    --size_;
    return true;
  }

  const Stats& stats() const noexcept { return stats_; }

 private:
  static constexpr std::size_t kIndexMask = kBucketsPerLevel - 1;

  std::size_t level_index(Time at, int level) const noexcept {
    return static_cast<std::size_t>(at >> (level * kLevelBits)) & kIndexMask;
  }

  /// File an event relative to the cursor: the same-timestamp FIFO lane,
  /// a wheel bucket, or the overflow tier.
  void place(QueueEvent e) {
    assert(e.at >= cursor_ && "event placed behind the wheel cursor");
    const Time diff = e.at ^ cursor_;
    if (diff == 0) {
      ++stats_.fifo_pushes;
      fifo_.push_back(e);
      return;
    }
    const int level = (63 - std::countl_zero(diff)) / kLevelBits;
    if (level >= kLevels) {
      ++stats_.overflow_pushes;
      overflow_.push_back(e);
      return;
    }
    const std::size_t idx = level_index(e.at, level);
    ++stats_.bucket_pushes;
    buckets_[level][idx].push_back(e);
    occupancy_[level] |= std::uint64_t{1} << idx;
    level_mask_ |= std::uint32_t{1} << level;
  }

  // Cold paths (bucket scans, cascades, overflow reseeds) live in
  // event_queue.cpp so the hot push/pop inlines stay small.
  bool advance(Time limit);

  std::vector<QueueEvent> buckets_[kLevels][kBucketsPerLevel];
  std::uint64_t occupancy_[kLevels] = {};
  /// Bit L set iff occupancy_[L] != 0: advance() finds the next populated
  /// level with one find-first-set instead of scanning all kLevels words.
  std::uint32_t level_mask_ = 0;
  /// Drained front-to-back; every entry shares `at == cursor_`.
  std::vector<QueueEvent> fifo_;
  std::size_t fifo_head_ = 0;
  std::vector<QueueEvent> overflow_;
  std::vector<QueueEvent> cascade_scratch_;
  Time cursor_ = 0;
  std::size_t size_ = 0;
  Stats stats_;
};

}  // namespace wasp::sim
