#include "sim/link.hpp"

#include <algorithm>

namespace wasp::sim {

double SharedLink::snapshot_rate(util::Bytes granularity) const noexcept {
  const double streams = static_cast<double>(std::max<std::size_t>(active_, 1));
  double rate = std::min(cfg_.per_stream_bps, cfg_.capacity_bps / streams);
  if (cfg_.efficiency_bytes > 0 && granularity > 0) {
    const double s = static_cast<double>(granularity);
    rate *= s / (s + static_cast<double>(cfg_.efficiency_bytes));
  }
  return std::max(rate, 1.0);  // never stall completely
}

Task<void> SharedLink::transfer(util::Bytes n, util::Bytes granularity) {
  if (granularity == 0) granularity = n;
  ResourceGuard slot = co_await slots_.acquire();
  ++active_;
  peak_ = std::max(peak_, active_);
  const double rate = snapshot_rate(granularity);
  const double service_sec =
      to_seconds(cfg_.latency) + static_cast<double>(n) / rate;
  co_await Delay(eng_, cfg_.latency + seconds(static_cast<double>(n) / rate));
  --active_;
  ++completed_;
  bytes_ += n;
  busy_seconds_ += service_sec;
}

}  // namespace wasp::sim
