// Fork/join support: run several Tasks concurrently inside one process and
// wait for all of them (used for striped transfers, collective I/O
// aggregators, and workflow stages).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace wasp::sim {

/// Fire-and-forget coroutine: starts immediately and self-destructs on
/// completion. Exceptions must not escape (they would std::terminate), so it
/// is only created by WaitGroup, which routes errors into the group.
struct Detached {
  struct promise_type {
    Detached get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

/// Counts outstanding children; wait() resumes when all have finished.
/// The first child exception is rethrown from wait().
class WaitGroup {
 public:
  explicit WaitGroup(Engine& eng) : eng_(eng), done_(eng) {}
  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Launch a child task under this group. The child begins executing
  /// immediately (synchronously up to its first suspension).
  void launch(Task<void> task) {
    ++outstanding_;
    run_child(std::move(task));
  }

  Task<void> wait() {
    if (outstanding_ > 0) {
      done_.reset();
      co_await done_.wait();
    }
    if (error_) {
      auto e = std::exchange(error_, nullptr);
      std::rethrow_exception(e);
    }
  }

  std::size_t outstanding() const noexcept { return outstanding_; }

 private:
  Detached run_child(Task<void> task) {
    try {
      co_await std::move(task);
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    if (--outstanding_ == 0) done_.set();
  }

  Engine& eng_;
  Event done_;
  std::size_t outstanding_ = 0;
  std::exception_ptr error_;
};

}  // namespace wasp::sim
