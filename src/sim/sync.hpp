// Synchronization primitives for simulated processes: broadcast events,
// counted resources (FIFO semaphores) and RAII resource guards.
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace wasp::sim {

/// One-shot (resettable) broadcast event. All waiters resume, in wait order,
/// at the simulated instant set() is called.
class Event {
 public:
  explicit Event(Engine& eng) noexcept : eng_(eng) {}

  bool is_set() const noexcept { return set_; }

  void set() {
    set_ = true;
    for (auto h : waiters_) eng_.schedule(eng_.now(), h);
    waiters_.clear();
  }

  void reset() noexcept { set_ = false; }

  auto wait() noexcept {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::size_t waiter_count() const noexcept { return waiters_.size(); }

 private:
  Engine& eng_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

class Resource;

/// RAII token for a unit of a Resource; releasing wakes the next waiter.
class ResourceGuard {
 public:
  ResourceGuard() = default;
  explicit ResourceGuard(Resource* r) noexcept : res_(r) {}
  ResourceGuard(ResourceGuard&& o) noexcept
      : res_(std::exchange(o.res_, nullptr)) {}
  ResourceGuard& operator=(ResourceGuard&& o) noexcept {
    if (this != &o) {
      release();
      res_ = std::exchange(o.res_, nullptr);
    }
    return *this;
  }
  ResourceGuard(const ResourceGuard&) = delete;
  ResourceGuard& operator=(const ResourceGuard&) = delete;
  ~ResourceGuard() { release(); }

  void release() noexcept;
  bool owns() const noexcept { return res_ != nullptr; }

 private:
  Resource* res_ = nullptr;
};

/// Counted resource with strict FIFO admission — models bounded concurrency
/// (metadata-service slots, per-server stream slots, CPU cores).
class Resource {
 public:
  Resource(Engine& eng, std::size_t capacity) noexcept
      : eng_(eng), available_(capacity), capacity_(capacity) {}

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t available() const noexcept { return available_; }
  std::size_t in_use() const noexcept { return capacity_ - available_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

  /// co_await acquire() -> ResourceGuard (released on destruction).
  auto acquire() noexcept {
    struct Awaiter {
      Resource& res;
      // Fast path takes the unit inside await_ready so that a process
      // resuming between a release() and its woken waiter cannot steal a
      // token that was transferred to the waiter.
      bool await_ready() noexcept {
        if (res.available_ > 0 && res.waiters_.empty()) {
          --res.available_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        res.waiters_.push_back(h);
      }
      ResourceGuard await_resume() noexcept { return ResourceGuard(&res); }
    };
    return Awaiter{*this};
  }

  void release() noexcept {
    if (!waiters_.empty()) {
      // Transfer the token directly to the next waiter; available_ is
      // unchanged because ownership never returns to the pool.
      auto h = waiters_.front();
      waiters_.pop_front();
      eng_.schedule(eng_.now(), h);
    } else {
      ++available_;
    }
  }

 private:
  Engine& eng_;
  std::size_t available_;
  std::size_t capacity_;
  std::deque<std::coroutine_handle<>> waiters_;
};

inline void ResourceGuard::release() noexcept {
  if (res_ != nullptr) {
    res_->release();
    res_ = nullptr;
  }
}

}  // namespace wasp::sim
