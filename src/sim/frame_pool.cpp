#include "sim/frame_pool.hpp"

#include <cstring>
#include <new>

#include "obs/obs.hpp"

namespace wasp::sim {
namespace {

struct PoolMetrics {
  obs::Counter hits =
      obs::Registry::instance().counter("engine.frame_pool.hits");
  obs::Counter misses =
      obs::Registry::instance().counter("engine.frame_pool.misses");
  obs::Counter bytes =
      obs::Registry::instance().counter("engine.frame_pool.bytes");
};

const PoolMetrics& pool_metrics() {
  static const PoolMetrics m;
  return m;
}

std::size_t read_header(void* frame) noexcept {
  std::size_t size;
  std::memcpy(&size, static_cast<char*>(frame) - FramePool::kHeaderSize,
              sizeof(size));
  return size;
}

void* make_block(std::size_t block_size) {
  void* base = ::operator new(block_size);
  std::memcpy(base, &block_size, sizeof(block_size));
  return static_cast<char*>(base) + FramePool::kHeaderSize;
}

// Set when the thread's Cache has been destroyed (thread exit while some
// engine still frees frames): from then on both paths degrade to the heap.
thread_local bool tls_cache_dead = false;

struct Cache {
  // Freelist nodes live inside the freed blocks themselves.
  struct Node {
    Node* next;
  };

  Node* free_[FramePool::kBucketCount] = {};
  std::size_t count_[FramePool::kBucketCount] = {};
  FramePool::ThreadStats stats;

  // Registry shards owned by the cache: allocate/deallocate run once per
  // coroutine frame (millions of times per run), so the process-wide
  // counters are fed through instance-local cells — one relaxed add on a
  // thread-owned cacheline — instead of a registry TLS-slot call per op.
  // The registry folds live cells into the totals at snapshot time.
  obs::CounterCell hits{"engine.frame_pool.hits"};
  obs::CounterCell misses{"engine.frame_pool.misses"};
  obs::CounterCell bytes{"engine.frame_pool.bytes"};

  void trim() noexcept {
    for (std::size_t i = 0; i < FramePool::kBucketCount; ++i) {
      while (free_[i] != nullptr) {
        Node* n = free_[i];
        free_[i] = n->next;
        ::operator delete(static_cast<char*>(static_cast<void*>(n)) -
                          FramePool::kHeaderSize);
      }
      count_[i] = 0;
    }
    stats.cached_bytes = 0;
  }

  ~Cache() {
    trim();
    tls_cache_dead = true;
  }
};

thread_local Cache tls_cache;

}  // namespace

void* FramePool::allocate(std::size_t bytes) {
  const std::size_t need = bytes + kHeaderSize;
  if (need > kMaxPooled) {
    if (!tls_cache_dead) {
      ++tls_cache.stats.oversize;
      tls_cache.bytes.add(need);
    } else {
      pool_metrics().bytes.add(need);
    }
    return make_block(need);
  }
  // Pooled blocks are always canonical sizes, even when allocated after the
  // thread cache died, so any thread can safely recycle them.
  const std::size_t block = (need + (kBucketStep - 1)) & ~(kBucketStep - 1);
  if (tls_cache_dead) {
    pool_metrics().bytes.add(block);
    return make_block(block);
  }
  const std::size_t idx = block / kBucketStep - 1;
  Cache& c = tls_cache;
  if (Cache::Node* n = c.free_[idx]) {
    c.free_[idx] = n->next;
    --c.count_[idx];
    c.stats.cached_bytes -= block;
    ++c.stats.hits;
    c.hits.add(1);
    return n;  // header in front of the node still holds `block`
  }
  ++c.stats.misses;
  c.misses.add(1);
  c.bytes.add(block);
  return make_block(block);
}

void FramePool::deallocate(void* p) noexcept {
  if (p == nullptr) return;
  const std::size_t block = read_header(p);
  char* base = static_cast<char*>(p) - kHeaderSize;
  if (block > kMaxPooled || tls_cache_dead) {
    ::operator delete(base);
    return;
  }
  const std::size_t idx = block / kBucketStep - 1;
  Cache& c = tls_cache;
  if (c.count_[idx] * block >= kCacheBytesPerBucket) {
    ++c.stats.evictions;
    ::operator delete(base);
    return;
  }
  auto* n = static_cast<Cache::Node*>(p);
  n->next = c.free_[idx];
  c.free_[idx] = n;
  ++c.count_[idx];
  c.stats.cached_bytes += block;
  ++c.stats.returns;
}

FramePool::ThreadStats FramePool::thread_stats() noexcept {
  return tls_cache_dead ? ThreadStats{} : tls_cache.stats;
}

void FramePool::trim_thread_cache() noexcept {
  if (!tls_cache_dead) tls_cache.trim();
}

}  // namespace wasp::sim
