#include "sim/engine.hpp"

#include "obs/obs.hpp"

namespace wasp::sim {
namespace {

// Engine telemetry: run-level, never per-event — the event loop stays
// untouched. events + vtime always accumulate (two relaxed adds per run()
// call); wall time gates on timing_enabled.
struct EngineMetrics {
  obs::Counter events = obs::Registry::instance().counter("engine.events");
  obs::Counter vtime_ns =
      obs::Registry::instance().counter("engine.vtime_ns");
  obs::Counter run_ns = obs::Registry::instance().counter("engine.run_ns");
};

const EngineMetrics& engine_metrics() {
  static const EngineMetrics m;
  return m;
}

}  // namespace

Engine::~Engine() {
  // Destroy any still-suspended root coroutines (e.g., after run_until hit
  // its limit). Children are destroyed transitively through Task ownership
  // held in the parent frames.
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Engine::schedule(Time at, std::coroutine_handle<> h) {
  WASP_CHECK_MSG(at >= now_, "scheduling into the past");
  queue_.push(Item{at, seq_++, h});
}

void Engine::spawn(Task<void> task) {
  WASP_CHECK_MSG(task.valid(), "spawning empty task");
  auto h = task.release();
  roots_.push_back(h);
  schedule(now_, h);
}

void Engine::check_root_errors() {
  for (auto h : roots_) {
    if (h && h.done() && h.promise().error) {
      std::rethrow_exception(h.promise().error);
    }
  }
}

void Engine::run() {
  WASP_OBS_SPAN("engine.run");
  const EngineMetrics& m = engine_metrics();
  obs::TimerGuard wall(m.run_ns);
  const std::uint64_t events0 = events_;
  const Time now0 = now_;
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++events_;
    item.h.resume();
  }
  m.events.add(events_ - events0);
  m.vtime_ns.add(now_ - now0);
  check_root_errors();
}

bool Engine::run_until(Time limit) {
  WASP_OBS_SPAN("engine.run");
  const EngineMetrics& m = engine_metrics();
  obs::TimerGuard wall(m.run_ns);
  const std::uint64_t events0 = events_;
  const Time now0 = now_;
  while (!queue_.empty() && queue_.top().at <= limit) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++events_;
    item.h.resume();
  }
  m.events.add(events_ - events0);
  m.vtime_ns.add(now_ - now0);
  check_root_errors();
  if (queue_.empty()) return true;
  now_ = limit;
  return false;
}

bool Engine::all_roots_done() const noexcept {
  for (auto h : roots_) {
    if (h && !h.done()) return false;
  }
  return true;
}

}  // namespace wasp::sim
