#include "sim/engine.hpp"

namespace wasp::sim {

Engine::~Engine() {
  // Destroy any still-suspended root coroutines (e.g., after run_until hit
  // its limit). Children are destroyed transitively through Task ownership
  // held in the parent frames.
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Engine::schedule(Time at, std::coroutine_handle<> h) {
  WASP_CHECK_MSG(at >= now_, "scheduling into the past");
  queue_.push(Item{at, seq_++, h});
}

void Engine::spawn(Task<void> task) {
  WASP_CHECK_MSG(task.valid(), "spawning empty task");
  auto h = task.release();
  roots_.push_back(h);
  schedule(now_, h);
}

void Engine::check_root_errors() {
  for (auto h : roots_) {
    if (h && h.done() && h.promise().error) {
      std::rethrow_exception(h.promise().error);
    }
  }
}

void Engine::run() {
  while (!queue_.empty()) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++events_;
    item.h.resume();
  }
  check_root_errors();
}

bool Engine::run_until(Time limit) {
  while (!queue_.empty() && queue_.top().at <= limit) {
    Item item = queue_.top();
    queue_.pop();
    now_ = item.at;
    ++events_;
    item.h.resume();
  }
  check_root_errors();
  if (queue_.empty()) return true;
  now_ = limit;
  return false;
}

bool Engine::all_roots_done() const noexcept {
  for (auto h : roots_) {
    if (h && !h.done()) return false;
  }
  return true;
}

}  // namespace wasp::sim
