#include "sim/engine.hpp"

#include <limits>

#include "obs/obs.hpp"

namespace wasp::sim {
namespace {

// Engine telemetry: run-level, never per-event — the event loop stays
// untouched beyond a peak-depth compare. events + vtime always accumulate
// (two relaxed adds per run() call); wall time gates on timing_enabled.
struct EngineMetrics {
  obs::Counter events = obs::Registry::instance().counter("engine.events");
  obs::Counter vtime_ns =
      obs::Registry::instance().counter("engine.vtime_ns");
  obs::Counter run_ns = obs::Registry::instance().counter("engine.run_ns");
  obs::Gauge queue_depth =
      obs::Registry::instance().gauge("engine.queue_depth");
};

const EngineMetrics& engine_metrics() {
  static const EngineMetrics m;
  return m;
}

}  // namespace

Engine::~Engine() {
  // Destroy any still-suspended root coroutines (e.g., after run_until hit
  // its limit). Children are destroyed transitively through Task ownership
  // held in the parent frames.
  for (auto h : roots_) {
    if (h) h.destroy();
  }
}

void Engine::spawn(Task<void> task) {
  WASP_CHECK_MSG(task.valid(), "spawning empty task");
  auto h = task.release();
  roots_.push_back(h);
  schedule(now_, h);
}

void Engine::check_root_errors() {
  for (auto h : roots_) {
    if (h && h.done() && h.promise().error) {
      std::rethrow_exception(h.promise().error);
    }
  }
}

template <typename Queue>
void Engine::drain(Queue& q, Time limit) {
  WASP_OBS_SPAN("engine.run");
  const EngineMetrics& m = engine_metrics();
  obs::TimerGuard wall(m.run_ns);
  const std::uint64_t events0 = events_;
  const Time now0 = now_;
  std::size_t peak = q.size();
  QueueEvent e;
  while (q.pop_at_most(limit, e)) {
    now_ = e.at;
    ++events_;
    e.h.resume();
    const std::size_t depth = q.size();
    if (depth > peak) peak = depth;
  }
  m.events.add(events_ - events0);
  m.vtime_ns.add(now_ - now0);
  m.queue_depth.set_max(static_cast<std::int64_t>(peak));
  check_root_errors();
}

void Engine::run() {
  constexpr Time kNoLimit = std::numeric_limits<Time>::max();
  if (opts_.queue == QueueKind::kWheel) {
    drain(wheel_, kNoLimit);
  } else {
    drain(heap_, kNoLimit);
  }
}

bool Engine::run_until(Time limit) {
  if (opts_.queue == QueueKind::kWheel) {
    drain(wheel_, limit);
  } else {
    drain(heap_, limit);
  }
  if (pending_events() == 0) return true;
  now_ = limit;
  return false;
}

bool Engine::all_roots_done() const noexcept {
  for (auto h : roots_) {
    if (h && !h.done()) return false;
  }
  return true;
}

}  // namespace wasp::sim
