#include "sim/faults.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/parse.hpp"

namespace wasp::sim {
namespace {

/// FNV-1a over the filesystem name: channel streams are keyed by *name*,
/// not creation order, so wiring order can never change the schedule.
std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[noreturn]] void bad(const std::string& what) {
  throw util::SimError("bad fault spec: " + what);
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      const std::string piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.push_back(piece);
      start = i + 1;
    }
  }
  return out;
}

/// "key=value" -> (key, value); throws naming the field otherwise.
std::pair<std::string, std::string> key_value(const std::string& field) {
  const auto eq = field.find('=');
  if (eq == std::string::npos || eq == 0) {
    bad("expected key=value, got '" + field + "'");
  }
  return {trim(field.substr(0, eq)), trim(field.substr(eq + 1))};
}

double probability(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !(v >= 0.0) || v > 1.0) {
    bad(key + " wants a probability in [0,1], got '" + text + "'");
  }
  return v;
}

Time time_value(const std::string& key, const std::string& text) {
  const auto sec = util::parse_seconds(text);
  if (!sec || *sec < 0) {
    bad(key + " wants a duration like 10ms, got '" + text + "'");
  }
  return static_cast<Time>(std::llround(*sec * 1e9));
}

std::uint64_t uint_value(const std::string& key, const std::string& text) {
  const auto v = util::parse_uint(text);
  if (!v) bad(key + " wants an unsigned integer, got '" + text + "'");
  return *v;
}

/// Canonical duration rendering: the largest unit that divides evenly.
std::string fmt_time(Time t) {
  char buf[32];
  if (t % kSec == 0 && t > 0) {
    std::snprintf(buf, sizeof(buf), "%llus",
                  static_cast<unsigned long long>(t / kSec));
  } else if (t % kMs == 0 && t > 0) {
    std::snprintf(buf, sizeof(buf), "%llums",
                  static_cast<unsigned long long>(t / kMs));
  } else if (t % kUs == 0 && t > 0) {
    std::snprintf(buf, sizeof(buf), "%lluus",
                  static_cast<unsigned long long>(t / kUs));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(t));
  }
  return buf;
}

std::string fmt_prob(double p) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", p);
  return buf;
}

void parse_retry_fields(const std::string& body, RetryPolicy* retry) {
  for (const auto& field : split(body, ',')) {
    const auto [key, value] = key_value(field);
    if (key == "attempts") {
      const std::uint64_t v = uint_value(key, value);
      if (v == 0) bad("attempts must be >= 1");
      retry->max_attempts = static_cast<std::uint32_t>(v);
    } else if (key == "backoff") {
      retry->backoff = time_value(key, value);
    } else if (key == "mult") {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || v < 1.0) {
        bad("mult wants a factor >= 1, got '" + value + "'");
      }
      retry->multiplier = v;
    } else if (key == "max") {
      retry->max_backoff = time_value(key, value);
    } else {
      bad("unknown retry field '" + key + "'");
    }
  }
}

void parse_target_fields(const std::string& fs, const std::string& body,
                         TargetFaults* t) {
  t->fs = fs;
  for (const auto& field : split(body, ',')) {
    const auto [key, value] = key_value(field);
    if (key == "eio") {
      t->eio = probability(key, value);
    } else if (key == "enospc") {
      t->enospc = probability(key, value);
    } else if (key == "meta") {
      t->meta = probability(key, value);
    } else if (key == "slow") {
      t->slow = probability(key, value);
    } else if (key == "spike") {
      t->spike = time_value(key, value);
    } else if (key == "fail_latency") {
      t->fail_latency = time_value(key, value);
    } else if (key == "capacity") {
      const auto b = util::parse_bytes(value);
      if (!b) bad("capacity wants a size like 64MB, got '" + value + "'");
      t->capacity = *b;
    } else if (key == "from") {
      t->from = time_value(key, value);
    } else if (key == "until") {
      t->until = time_value(key, value);
    } else {
      bad("unknown fault field '" + key + "' for target '" + fs + "'");
    }
  }
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kEio:
      return "EIO";
    case FaultKind::kEnospc:
      return "ENOSPC";
    case FaultKind::kMetaError:
      return "metadata error";
  }
  return "?";
}

Time RetryPolicy::delay_for(std::uint32_t attempt) const noexcept {
  double d = static_cast<double>(backoff);
  for (std::uint32_t i = 1; i < attempt; ++i) d *= multiplier;
  const double cap = static_cast<double>(max_backoff);
  if (d > cap) d = cap;
  return static_cast<Time>(d);
}

FaultKind FaultChannel::data_fault(bool is_write, Time now) {
  const double p_eio = cfg_.eio;
  const double p_enospc = is_write ? cfg_.enospc : 0.0;
  if (p_eio <= 0.0 && p_enospc <= 0.0) return FaultKind::kNone;
  if (!active(now)) return FaultKind::kNone;
  // One draw per attempt, thresholds stacked: [0,eio) -> EIO,
  // [eio, eio+enospc) -> ENOSPC.
  const double u = rng_.uniform();
  if (u < p_eio) {
    owner_->cells_.io_errors.add();
    owner_->cells_.injected.add();
    return FaultKind::kEio;
  }
  if (u < p_eio + p_enospc) {
    owner_->cells_.enospc_errors.add();
    owner_->cells_.injected.add();
    return FaultKind::kEnospc;
  }
  return FaultKind::kNone;
}

FaultKind FaultChannel::meta_fault(Time now) {
  if (cfg_.meta <= 0.0 || !active(now)) return FaultKind::kNone;
  if (rng_.uniform() < cfg_.meta) {
    owner_->cells_.meta_errors.add();
    owner_->cells_.injected.add();
    return FaultKind::kMetaError;
  }
  return FaultKind::kNone;
}

Time FaultChannel::spike(Time now) {
  if (cfg_.slow <= 0.0 || !active(now)) return 0;
  if (rng_.uniform() < cfg_.slow) {
    owner_->cells_.spikes.add();
    owner_->cells_.spike_ns.add(static_cast<std::uint64_t>(cfg_.spike));
    return cfg_.spike;
  }
  return 0;
}

util::Bytes FaultChannel::clamp_capacity(util::Bytes spec_capacity,
                                         Time now) const {
  if (cfg_.capacity == 0 || !active(now)) return spec_capacity;
  return std::min(spec_capacity, cfg_.capacity);
}

void FaultChannel::note_retry() { owner_->cells_.retries.add(); }

void FaultChannel::note_exhausted() { owner_->cells_.exhausted.add(); }

void FaultChannel::note_capacity_enospc() {
  owner_->cells_.enospc_errors.add();
  owner_->cells_.injected.add();
}

FaultInjector::Stats FaultInjector::stats() const noexcept {
  Stats s;
  s.io_errors = cells_.io_errors.value();
  s.enospc_errors = cells_.enospc_errors.value();
  s.meta_errors = cells_.meta_errors.value();
  s.spikes = cells_.spikes.value();
  s.spike_ns = static_cast<Time>(cells_.spike_ns.value());
  s.retries = cells_.retries.value();
  s.exhausted = cells_.exhausted.value();
  return s;
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const auto& clause : split(spec, ';')) {
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      // Bare clause: only "seed=N" lives outside a target.
      const auto [key, value] = key_value(clause);
      if (key != "seed") {
        bad("expected 'seed=N' or '<fs>: fields', got '" + clause + "'");
      }
      plan.seed = uint_value(key, value);
      continue;
    }
    const std::string head = trim(clause.substr(0, colon));
    const std::string body = trim(clause.substr(colon + 1));
    if (head.empty()) bad("clause missing target name: '" + clause + "'");
    if (head == "retry") {
      parse_retry_fields(body, &plan.retry);
    } else {
      TargetFaults t;
      parse_target_fields(head, body, &t);
      plan.targets.push_back(std::move(t));
    }
  }
  if (!plan.enabled()) bad("no fault targets in '" + spec + "'");
  return plan;
}

std::string FaultPlan::to_spec() const {
  std::string out = "seed=" + std::to_string(seed);
  const RetryPolicy defaults;
  if (retry.max_attempts != defaults.max_attempts ||
      retry.backoff != defaults.backoff ||
      retry.multiplier != defaults.multiplier ||
      retry.max_backoff != defaults.max_backoff) {
    out += "; retry: attempts=" + std::to_string(retry.max_attempts) +
           ", backoff=" + fmt_time(retry.backoff) +
           ", mult=" + fmt_prob(retry.multiplier) +
           ", max=" + fmt_time(retry.max_backoff);
  }
  const TargetFaults dt;
  for (const TargetFaults& t : targets) {
    out += "; " + t.fs + ":";
    std::string fields;
    const auto field = [&fields](const std::string& kv) {
      fields += (fields.empty() ? " " : ", ") + kv;
    };
    if (t.eio != dt.eio) field("eio=" + fmt_prob(t.eio));
    if (t.enospc != dt.enospc) field("enospc=" + fmt_prob(t.enospc));
    if (t.meta != dt.meta) field("meta=" + fmt_prob(t.meta));
    if (t.slow != dt.slow) field("slow=" + fmt_prob(t.slow));
    if (t.spike != dt.spike) field("spike=" + fmt_time(t.spike));
    if (t.fail_latency != dt.fail_latency) {
      field("fail_latency=" + fmt_time(t.fail_latency));
    }
    if (t.capacity != dt.capacity) {
      field("capacity=" + std::to_string(t.capacity) + "B");
    }
    if (t.from != dt.from) field("from=" + fmt_time(t.from));
    if (t.until != dt.until) field("until=" + fmt_time(t.until));
    out += fields;
  }
  return out;
}

FaultChannel* FaultInjector::channel_for(const std::string& fs_name) {
  // Exact-name target beats "*"; among equal specificity the last wins.
  const TargetFaults* chosen = nullptr;
  for (const TargetFaults& t : plan_.targets) {
    if (t.fs == fs_name) {
      chosen = &t;
    } else if (t.fs == "*" && (chosen == nullptr || chosen->fs == "*")) {
      chosen = &t;
    }
  }
  if (chosen == nullptr) return nullptr;
  channels_.emplace_back(*chosen, plan_.retry,
                         util::Rng(plan_.seed).fork(fnv1a(fs_name)), this);
  return &channels_.back();
}

}  // namespace wasp::sim
