#include "sim/event_queue.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace wasp::sim {
namespace {

struct QueueMetrics {
  obs::Counter bucket_scan_ns =
      obs::Registry::instance().counter("engine.bucket_scan_ns");
};

const QueueMetrics& queue_metrics() {
  static const QueueMetrics m;
  return m;
}

}  // namespace

bool WheelEventQueue::advance(Time limit) {
  // Called only with the FIFO lane empty: locate the earliest pending batch
  // with time <= `limit` and load it into the lane. Wall time for the
  // non-trivial paths (cascades, overflow reseeds) accrues to
  // engine.bucket_scan_ns when timing is enabled; the level-0 hit is O(1)
  // and stays timer-free so enabling timing does not tax the common case.
  for (;;) {
    // A cascade or overflow reseed may have re-placed events whose time
    // equals the new cursor straight into the FIFO lane.
    if (!fifo_.empty()) return true;
    const int level = std::countr_zero(level_mask_);

    if (level >= kLevels) {
      // Wheel drained; pull the overflow tier back through it. Between
      // reseeds the cursor's bits above the horizon are constant, so every
      // overflow event is later than every wheel event and this branch only
      // runs when it really holds the minimum.
      if (overflow_.empty()) return false;
      obs::TimerGuard scan(queue_metrics().bucket_scan_ns);
      Time min_at = overflow_.front().at;
      for (const QueueEvent& e : overflow_) min_at = std::min(min_at, e.at);
      if (min_at > limit) return false;
      ++stats_.overflow_reseeds;
      cursor_ = min_at;
      std::vector<QueueEvent> pending;
      pending.swap(overflow_);
      // Still in push (= seq) order, so re-placement keeps every bucket
      // seq-ascending; events still past the horizon rejoin overflow_.
      for (const QueueEvent& e : pending) place(e);
      continue;
    }

    const std::size_t idx =
        static_cast<std::size_t>(std::countr_zero(occupancy_[level]));
    std::vector<QueueEvent>& bucket = buckets_[level][idx];

    if (level == 0) {
      // A level-0 bucket holds exactly one timestamp: the cursor with its
      // low 6-bit group replaced by the bucket index. Already FIFO by seq.
      const Time t = (cursor_ & ~static_cast<Time>(kIndexMask)) | Time{idx};
      if (t > limit) return false;
      cursor_ = t;
      occupancy_[0] &= ~(std::uint64_t{1} << idx);
      if (occupancy_[0] == 0) level_mask_ &= ~std::uint32_t{1};
      fifo_.swap(bucket);  // bucket inherits the drained lane's capacity
      return true;
    }

    // Cascade. This bucket is the first nonempty one of the lowest nonempty
    // level, so it holds the global minimum pending time: jump the cursor to
    // that minimum (not just the bucket start) and the minimum drops
    // straight into the FIFO lane while everything else re-places at a
    // strictly lower level — cutting re-buckets per event versus the
    // classic start-of-bucket cascade. Equal-time events always share one
    // bucket (two live placements of the same timestamp would require the
    // cursor to have entered the enclosing bucket without cascading it), so
    // the jump cannot split a same-instant batch. Clamped to `limit` so the
    // cursor never outruns run_until; in that case events still re-place
    // relative to `limit` and the next call picks them up.
    const int shift = (level + 1) * kLevelBits;
    const Time bucket_start =
        ((cursor_ >> shift) << shift) | (Time{idx} << (level * kLevelBits));
    if (bucket_start > limit) return false;
    occupancy_[level] &= ~(std::uint64_t{1} << idx);
    if (occupancy_[level] == 0) {
      level_mask_ &= ~(std::uint32_t{1} << level);
    }
    ++stats_.cascades;
    stats_.cascaded_events += bucket.size();
    if (bucket.size() == 1) {
      // Sparse timelines make one-event buckets the dominant cascade shape;
      // keep this O(1) re-placement timer-free like the level-0 hit.
      const QueueEvent e = bucket.front();
      bucket.clear();
      cursor_ = std::min(e.at, limit);
      place(e);
      continue;
    }
    obs::TimerGuard scan(queue_metrics().bucket_scan_ns);
    cascade_scratch_.swap(bucket);
    Time min_at = cascade_scratch_.front().at;
    for (const QueueEvent& e : cascade_scratch_) min_at = std::min(min_at, e.at);
    cursor_ = std::min(min_at, limit);
    for (const QueueEvent& e : cascade_scratch_) place(e);
    cascade_scratch_.clear();
  }
}

}  // namespace wasp::sim
