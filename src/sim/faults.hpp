// Deterministic, seed-driven fault injection.
//
// A FaultPlan describes what can go wrong in a run: per-filesystem error
// probabilities (transient EIO / ENOSPC on data ops, metadata errors),
// latency spikes in the filesystem service path, and capacity clamps that
// make a tier fill up early. The plan is pure data — it parses from and
// formats back to a compact one-line spec so it can ride along in CLI
// flags and the pattern YAML.
//
// Determinism: every decision is drawn from a SplitMix64 stream forked from
// the plan seed per filesystem *name* (not creation order), and draws only
// ever happen from engine-serialized coroutines, so the same seed always
// yields the same fault schedule — traces and profiles stay byte-identical
// across --jobs, backends, and reruns.
//
// Division of labor across layers:
//   - io::* interface layers consult FaultChannel::data_fault/meta_fault
//     *before* any inode/usage bookkeeping, so a failed attempt needs no
//     rollback; they own the retry/backoff loop and trace each failed
//     attempt as an extra op.
//   - fs::* service paths consult FaultChannel::spike (degraded stripe /
//     server semantics: the op completes, slower) and clamp_capacity in
//     free_bytes (tier fills early; surfaces as retryable ENOSPC upstream).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace wasp::sim {

enum class FaultKind : std::uint8_t { kNone, kEio, kEnospc, kMetaError };

const char* to_string(FaultKind kind) noexcept;

/// Thrown when an injected (or capacity-induced) fault survives every
/// retry attempt. Subclasses SimError so existing catch sites keep working.
class FaultError : public util::SimError {
 public:
  FaultError(FaultKind kind, const std::string& msg)
      : util::SimError(msg), kind_(kind) {}
  FaultKind kind() const noexcept { return kind_; }

 private:
  FaultKind kind_;
};

/// How the interface layers respond to a transient failure: exponential
/// backoff starting at `backoff`, multiplied per attempt, capped at
/// `max_backoff`, giving up after `max_attempts` total attempts.
struct RetryPolicy {
  std::uint32_t max_attempts = 4;
  Time backoff = 1 * kMs;
  double multiplier = 2.0;
  Time max_backoff = 1 * kSec;

  /// Backoff charged after failed attempt `attempt` (1-based).
  Time delay_for(std::uint32_t attempt) const noexcept;
};

/// Fault configuration for one filesystem ("*" matches every mount).
struct TargetFaults {
  std::string fs = "*";
  double eio = 0.0;     ///< per data-op transient-EIO probability
  double enospc = 0.0;  ///< per write-op transient-ENOSPC probability
  double meta = 0.0;    ///< per metadata-op transient-error probability
  double slow = 0.0;    ///< per-request latency-spike probability
  Time spike = 10 * kMs;       ///< spike magnitude added in the fs path
  Time fail_latency = 1 * kMs; ///< virtual time a failed attempt consumes
  util::Bytes capacity = 0;    ///< clamp the tier's capacity (0 = off)
  Time from = 0;               ///< window start (virtual time)
  Time until = 0;              ///< window end, exclusive (0 = no end)
};

class FaultInjector;

/// Per-filesystem runtime state: merged target config + private rng stream.
class FaultChannel {
 public:
  FaultChannel(const TargetFaults& cfg, const RetryPolicy& retry,
               util::Rng rng, FaultInjector* owner)
      : cfg_(cfg), retry_(retry), rng_(rng), owner_(owner) {}

  /// Error draw for one data-op attempt (interface layer, pre-bookkeeping).
  FaultKind data_fault(bool is_write, Time now);
  /// Error draw for one metadata-op attempt.
  FaultKind meta_fault(Time now);
  /// Latency-spike draw for one request entering the fs service path.
  Time spike(Time now);
  /// Capacity with any active clamp applied (used by fs free_bytes).
  util::Bytes clamp_capacity(util::Bytes spec_capacity, Time now) const;

  Time fail_latency() const noexcept { return cfg_.fail_latency; }
  const RetryPolicy& retry() const noexcept { return retry_; }

  /// Stats hooks for the interface-layer retry loop.
  void note_retry();
  void note_exhausted();
  /// Capacity exhaustion detected upstream (not an rng draw).
  void note_capacity_enospc();

 private:
  bool active(Time now) const noexcept {
    return now >= cfg_.from && (cfg_.until == 0 || now < cfg_.until);
  }

  TargetFaults cfg_;
  RetryPolicy retry_;
  util::Rng rng_;
  FaultInjector* owner_;
};

/// The whole plan: seed, retry policy, and per-filesystem targets.
struct FaultPlan {
  std::uint64_t seed = 1;
  RetryPolicy retry;
  std::vector<TargetFaults> targets;

  bool enabled() const noexcept { return !targets.empty(); }

  /// Parse the compact spec grammar; throws util::SimError naming the
  /// offending clause/token on malformed input. Clauses are ';'-separated:
  ///   seed=7; retry: attempts=4, backoff=1ms, mult=2, max=1s;
  ///   gpfs1: eio=0.01, slow=0.05, spike=10ms; shm: capacity=64MB
  static FaultPlan parse(const std::string& spec);

  /// Canonical spec string; parse(to_spec()) round-trips the plan and
  /// to_spec() output is byte-stable (used by the pattern YAML).
  std::string to_spec() const;
};

/// Owns the channels for one Simulation and the run's fault statistics.
///
/// The statistics live in obs::CounterCell instances, so every injector
/// folds into the process-wide `faults.*` registry metrics (and thereby
/// into run manifests) while stats() still reads back this injector's own
/// counts — the same split SpillColumnStore uses for its IoStats.
class FaultInjector {
 public:
  /// Value snapshot of this injector's counters (built from the cells).
  struct Stats {
    std::uint64_t io_errors = 0;      ///< injected transient EIO
    std::uint64_t enospc_errors = 0;  ///< injected + capacity ENOSPC
    std::uint64_t meta_errors = 0;    ///< injected metadata errors
    std::uint64_t spikes = 0;         ///< latency spikes served
    Time spike_ns = 0;                ///< total spike time added
    std::uint64_t retries = 0;        ///< backoff-then-retry cycles
    std::uint64_t exhausted = 0;      ///< ops that failed every attempt
    std::uint64_t total_injected() const noexcept {
      return io_errors + enospc_errors + meta_errors;
    }
  };

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Channel for filesystem `fs_name`, created on first use; nullptr when
  /// no target matches. An exact-name target beats "*"; among targets of
  /// equal specificity the last one wins.
  FaultChannel* channel_for(const std::string& fs_name);

  const FaultPlan& plan() const noexcept { return plan_; }
  Stats stats() const noexcept;

 private:
  friend class FaultChannel;

  /// Registry-backed counters. `injected` is the cross-kind total the
  /// manifest gate watches; the per-kind cells break it down.
  struct Cells {
    obs::CounterCell injected{"faults.injected"};
    obs::CounterCell io_errors{"faults.io_errors"};
    obs::CounterCell enospc_errors{"faults.enospc_errors"};
    obs::CounterCell meta_errors{"faults.meta_errors"};
    obs::CounterCell spikes{"faults.spikes"};
    obs::CounterCell spike_ns{"faults.spike_ns"};
    obs::CounterCell retries{"faults.retries"};
    obs::CounterCell exhausted{"faults.exhausted"};
  };

  FaultPlan plan_;
  std::deque<FaultChannel> channels_;  ///< deque: stable addresses
  Cells cells_;
};

}  // namespace wasp::sim
