// Coroutine task type for the discrete-event simulator.
//
// Every simulated activity (a rank's program, a file transfer, a collective)
// is a Task<T>. Awaiting a Task starts the child with symmetric transfer and
// resumes the parent when the child finishes, so a simulated process is plain
// structured code:
//
//   sim::Task<void> run_rank(Proc& p) {
//     co_await p.compute(10 * sim::kMs);
//     auto fd = co_await p.posix().open("/p/gpfs1/out", OpenMode::kWrite);
//     ...
//   }
//
// Tasks are lazy (initial_suspend = suspend_always): nothing runs until the
// task is awaited or spawned on an Engine. Exceptions propagate to the
// awaiter; exceptions escaping a root task abort Engine::run().
#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <utility>

#include "sim/frame_pool.hpp"
#include "util/error.hpp"

namespace wasp::sim {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  // Coroutine frames allocate through the size-bucketed freelist arena
  // (sim/frame_pool.hpp) instead of the global allocator; both sized and
  // unsized delete route back (compilers differ on which one frames call).
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }
  static void operator delete(void* p, std::size_t) noexcept {
    FramePool::deallocate(p);
  }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { error = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  // Awaiting interface.
  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // symmetric transfer into the child
  }
  T await_resume() {
    WASP_CHECK_MSG(handle_ != nullptr, "awaiting empty Task");
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
    return std::move(handle_.promise().value);
  }

  std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }
  /// Relinquish ownership (used by Engine::spawn to manage lifetime).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return handle_ && handle_.done(); }

  bool await_ready() const noexcept { return !handle_ || handle_.done(); }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    WASP_CHECK_MSG(handle_ != nullptr, "awaiting empty Task");
    if (handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

  std::coroutine_handle<promise_type> handle() const noexcept {
    return handle_;
  }
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(handle_, {});
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace wasp::sim
