// Size-bucketed freelist arena for coroutine Task frames.
//
// Every simulated activity is a short-lived Task<T> coroutine, so a run
// allocates hundreds of thousands of frames in a handful of distinct sizes.
// The pool routes promise_type::operator new/delete (sim/task.hpp) through
// per-thread freelists of canonical-size blocks instead of the global
// allocator:
//
//   - Request sizes round up to 64-byte buckets; a 16-byte header in front
//     of the frame records the block's canonical size, so deallocation
//     needs no size argument (compilers differ on whether coroutine frames
//     call the sized delete).
//   - Blocks are plain ::operator new allocations of canonical sizes and
//     carry no thread affinity: a frame freed on a different thread from
//     the one that allocated it simply joins the freeing thread's cache,
//     so cross-thread Task handoff is safe with zero synchronization.
//   - Each thread caches at most kCacheBytesPerBucket per size bucket;
//     beyond that (and above kMaxPooled) frees go straight to the heap.
//
// Pool traffic feeds engine.frame_pool.{hits,misses,bytes} in the obs
// registry; thread_stats() exposes the calling thread's exact counts for
// tests. Allocation never affects simulation ordering — determinism is
// untouched by cache state.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wasp::sim {

class FramePool {
 public:
  /// Prefix on every block holding the canonical block size; 16 bytes keeps
  /// the frame itself aligned for max_align_t.
  static constexpr std::size_t kHeaderSize = 16;
  static constexpr std::size_t kBucketStep = 64;
  /// Largest pooled block (header included); bigger frames go to the heap.
  static constexpr std::size_t kMaxPooled = 4096;
  static constexpr std::size_t kBucketCount = kMaxPooled / kBucketStep;
  /// Per-thread cache cap per size bucket.
  static constexpr std::size_t kCacheBytesPerBucket = std::size_t{1} << 20;

  static void* allocate(std::size_t bytes);
  static void deallocate(void* p) noexcept;

  /// Calling thread's pool traffic (monotonic except cached_bytes).
  struct ThreadStats {
    std::uint64_t hits = 0;          ///< served from the thread cache
    std::uint64_t misses = 0;        ///< pooled size, fell through to new
    std::uint64_t oversize = 0;      ///< larger than kMaxPooled
    std::uint64_t returns = 0;       ///< blocks parked back in the cache
    std::uint64_t evictions = 0;     ///< cache-full frees sent to the heap
    std::uint64_t cached_bytes = 0;  ///< currently parked on this thread
  };
  static ThreadStats thread_stats() noexcept;

  /// Release every block cached by the calling thread back to the heap.
  static void trim_thread_cache() noexcept;
};

}  // namespace wasp::sim
