// Bandwidth-shared channel with snapshot fair-share rates.
//
// A transfer's rate is fixed when it starts:
//     rate = min(per_stream_cap, capacity / active_streams) * eff(size)
// where eff(size) = size / (size + efficiency_bytes) models per-request
// overhead that penalizes small transfers (the mechanism behind the paper's
// "64MB/s for 4KB writes vs 64GB/s for large reads" observations).
//
// Snapshot rates avoid O(active) fluid-model rebalancing on every event,
// keeping multi-million-op workloads fast while preserving contention shape.
// Admission is bounded by a FIFO slot pool, so overload turns into queueing
// delay exactly as on a real I/O server.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/units.hpp"

namespace wasp::sim {

class SharedLink {
 public:
  struct Config {
    double capacity_bps = 1e9;    ///< aggregate bandwidth of the channel
    double per_stream_bps = 1e9;  ///< cap for a single stream
    std::size_t max_streams = 64; ///< admission slots before queueing
    Time latency = 0;             ///< fixed per-transfer latency
    util::Bytes efficiency_bytes = 0;  ///< small-transfer overhead knob
  };

  SharedLink(Engine& eng, const Config& cfg)
      : eng_(eng), cfg_(cfg), slots_(eng, cfg.max_streams) {}

  /// Move `n` bytes through the link; completes after queueing + latency +
  /// n / rate. A zero-byte transfer still pays the latency.
  ///
  /// `granularity` is the operation size the efficiency penalty keys on: a
  /// client that writes 1GB in 4KB operations moves 1GB but at 4KB-class
  /// rates. Zero means "same as n".
  Task<void> transfer(util::Bytes n, util::Bytes granularity = 0);

  /// Rate a transfer with the given op granularity would get right now
  /// (after admission).
  double snapshot_rate(util::Bytes granularity) const noexcept;

  const Config& config() const noexcept { return cfg_; }
  std::size_t active_streams() const noexcept { return active_; }
  std::size_t peak_streams() const noexcept { return peak_; }
  std::uint64_t transfers_completed() const noexcept { return completed_; }
  util::Bytes bytes_moved() const noexcept { return bytes_; }
  /// Sum of per-transfer service times (queueing excluded).
  double busy_seconds() const noexcept { return busy_seconds_; }

 private:
  Engine& eng_;
  Config cfg_;
  Resource slots_;
  std::size_t active_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t completed_ = 0;
  util::Bytes bytes_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace wasp::sim
