// Simulated-time units shared by the engine and its event queues.
#pragma once

#include <cstdint>

namespace wasp::sim {

/// Simulated time in integer nanoseconds since the start of the run.
using Time = std::uint64_t;

inline constexpr Time kNs = 1;
inline constexpr Time kUs = 1000 * kNs;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;

/// Convert a (possibly fractional) second count to integer nanoseconds.
constexpr Time seconds(double s) noexcept {
  return static_cast<Time>(s * 1e9 + 0.5);
}
/// Convert simulated time to seconds for reporting.
constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

}  // namespace wasp::sim
