// Deterministic discrete-event engine.
//
// The engine owns a priority queue of (time, sequence, coroutine) wake-ups.
// Sequence numbers break ties FIFO, so two events at the same instant always
// run in schedule order — runs are bit-reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/task.hpp"

namespace wasp::sim {

/// Simulated time in integer nanoseconds since the start of the run.
using Time = std::uint64_t;

inline constexpr Time kNs = 1;
inline constexpr Time kUs = 1000 * kNs;
inline constexpr Time kMs = 1000 * kUs;
inline constexpr Time kSec = 1000 * kMs;

/// Convert a (possibly fractional) second count to integer nanoseconds.
constexpr Time seconds(double s) noexcept {
  return static_cast<Time>(s * 1e9 + 0.5);
}
/// Convert simulated time to seconds for reporting.
constexpr double to_seconds(Time t) noexcept {
  return static_cast<double>(t) * 1e-9;
}

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const noexcept { return now_; }

  /// Wake coroutine `h` at absolute time `at` (must be >= now()).
  void schedule(Time at, std::coroutine_handle<> h);

  /// Wake coroutine `h` after `delay`.
  void schedule_after(Time delay, std::coroutine_handle<> h) {
    schedule(now_ + delay, h);
  }

  /// Adopt a root task: it starts at the current time and the engine keeps
  /// it alive until destruction.
  void spawn(Task<void> task);

  /// Run until the event queue is empty. Rethrows the first exception that
  /// escaped a root task.
  void run();

  /// Run until the event queue is empty or simulated time would pass `limit`.
  /// Returns true if the queue drained.
  bool run_until(Time limit);

  std::uint64_t events_processed() const noexcept { return events_; }
  std::size_t pending_events() const noexcept { return queue_.size(); }

  /// True when every spawned root task ran to completion (deadlock /
  /// starvation detector for tests).
  bool all_roots_done() const noexcept;

 private:
  struct Item {
    Time at;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    bool operator>(const Item& o) const noexcept {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void check_root_errors();

  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
};

/// Awaitable that advances the owning process's clock.
class Delay {
 public:
  Delay(Engine& eng, Time d) noexcept : eng_(eng), d_(d) {}
  bool await_ready() const noexcept { return d_ == 0; }
  void await_suspend(std::coroutine_handle<> h) { eng_.schedule_after(d_, h); }
  void await_resume() const noexcept {}

 private:
  Engine& eng_;
  Time d_;
};

}  // namespace wasp::sim
