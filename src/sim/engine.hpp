// Deterministic discrete-event engine.
//
// The engine owns a queue of (time, sequence, coroutine) wake-ups. Sequence
// numbers break ties FIFO, so two events at the same instant always run in
// schedule order — runs are bit-reproducible. Two interchangeable pop-min
// structures sit behind Options::queue (sim/event_queue.hpp): the bucketed
// timer wheel (default, O(1) for the same-instant barrier storms HPC
// workloads generate) and the binary heap kept as the equivalence oracle —
// the same seam shape as Analyzer::Options::reference_scan.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/error.hpp"

namespace wasp::sim {

class Engine {
 public:
  enum class QueueKind { kHeap, kWheel };

  struct Options {
    QueueKind queue = QueueKind::kWheel;
  };

  Engine() = default;
  explicit Engine(const Options& opts) : opts_(opts) {}
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  Time now() const noexcept { return now_; }
  QueueKind queue_kind() const noexcept { return opts_.queue; }

  /// Wake coroutine `h` at absolute time `at`. Scheduling into the past is
  /// a contract violation: asserts in debug builds, throws util::SimError
  /// in every build.
  void schedule(Time at, std::coroutine_handle<> h) {
    assert(at >= now_ && "Engine::schedule into the past");
    WASP_CHECK_MSG(at >= now_, "scheduling into the past");
    const std::uint64_t seq = seq_++;
    if (opts_.queue == QueueKind::kWheel) {
      wheel_.push(at, seq, h);
    } else {
      heap_.push(at, seq, h);
    }
  }

  /// Wake coroutine `h` after `delay`.
  void schedule_after(Time delay, std::coroutine_handle<> h) {
    schedule(now_ + delay, h);
  }

  /// Adopt a root task: it starts at the current time and the engine keeps
  /// it alive until destruction.
  void spawn(Task<void> task);

  /// Run until the event queue is empty. Rethrows the first exception that
  /// escaped a root task.
  void run();

  /// Run until the event queue is empty or simulated time would pass `limit`.
  /// Returns true if the queue drained.
  bool run_until(Time limit);

  std::uint64_t events_processed() const noexcept { return events_; }
  std::size_t pending_events() const noexcept {
    return opts_.queue == QueueKind::kWheel ? wheel_.size() : heap_.size();
  }

  /// Wheel-tier traffic counters (all zero when running on the heap queue).
  const WheelEventQueue::Stats& wheel_stats() const noexcept {
    return wheel_.stats();
  }

  /// True when every spawned root task ran to completion (deadlock /
  /// starvation detector for tests).
  bool all_roots_done() const noexcept;

 private:
  template <typename Queue>
  void drain(Queue& q, Time limit);
  void check_root_errors();

  Options opts_;
  HeapEventQueue heap_;
  WheelEventQueue wheel_;
  std::vector<std::coroutine_handle<Task<void>::promise_type>> roots_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t events_ = 0;
};

/// Awaitable that advances the owning process's clock.
class Delay {
 public:
  Delay(Engine& eng, Time d) noexcept : eng_(eng), d_(d) {}
  bool await_ready() const noexcept { return d_ == 0; }
  void await_suspend(std::coroutine_handle<> h) { eng_.schedule_after(d_, h); }
  void await_resume() const noexcept {}

 private:
  Engine& eng_;
  Time d_;
};

}  // namespace wasp::sim
