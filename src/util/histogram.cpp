#include "util/histogram.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace wasp::util {

SizeHistogram::SizeHistogram(std::vector<Bytes> edges)
    : edges_(std::move(edges)) {
  WASP_CHECK_MSG(!edges_.empty(), "histogram needs at least one edge");
  WASP_CHECK_MSG(std::is_sorted(edges_.begin(), edges_.end()),
                 "histogram edges must be sorted");
  counts_.assign(edges_.size() + 1, 0);
  bytes_.assign(edges_.size() + 1, 0);
  seconds_.assign(edges_.size() + 1, 0.0);
}

SizeHistogram SizeHistogram::paper_buckets() {
  return SizeHistogram({4 * kKiB, 64 * kKiB, kMiB, 16 * kMiB});
}

std::size_t SizeHistogram::bucket_of(Bytes size) const noexcept {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (size < edges_[i]) return i;
  }
  return edges_.size();
}

void SizeHistogram::add(Bytes size, std::uint64_t count, Bytes total_bytes,
                        double total_seconds) {
  const std::size_t b = bucket_of(size);
  counts_[b] += count;
  bytes_[b] += total_bytes != 0 ? total_bytes : size * count;
  seconds_[b] += total_seconds;
}

void SizeHistogram::add_at(std::size_t bucket, std::uint64_t count,
                           Bytes total_bytes) {
  counts_.at(bucket) += count;
  bytes_.at(bucket) += total_bytes;
}

void SizeHistogram::add_seconds(std::size_t bucket, double seconds) {
  seconds_.at(bucket) += seconds;
}

double SizeHistogram::bandwidth(std::size_t bucket) const {
  const double sec = seconds_.at(bucket);
  if (sec <= 0.0) return 0.0;
  return static_cast<double>(bytes_.at(bucket)) / sec;
}

std::uint64_t SizeHistogram::total_count() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

Bytes SizeHistogram::total_bytes() const noexcept {
  return std::accumulate(bytes_.begin(), bytes_.end(), Bytes{0});
}

std::string SizeHistogram::bucket_label(std::size_t bucket) const {
  WASP_CHECK(bucket < counts_.size());
  if (bucket < edges_.size()) return "<" + format_bytes(edges_[bucket]);
  return ">=" + format_bytes(edges_.back());
}

void SizeHistogram::merge(const SizeHistogram& other) {
  WASP_CHECK_MSG(edges_ == other.edges_, "merging incompatible histograms");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
    bytes_[i] += other.bytes_[i];
    seconds_[i] += other.seconds_[i];
  }
}

}  // namespace wasp::util
