#include "util/parallel.hpp"

#include <cstdlib>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasp::util {
namespace {

// Pool telemetry: per-task queue-wait (batch submission -> task start) and
// task-run wall time. Both gate on Registry::timing_enabled() — the
// disabled path adds one branch per task, no clock reads.
struct PoolMetrics {
  obs::Histogram queue_wait_ns =
      obs::Registry::instance().histogram("pool.queue_wait_ns");
  obs::Histogram task_run_ns =
      obs::Registry::instance().histogram("pool.task_run_ns");
  obs::Counter tasks = obs::Registry::instance().counter("pool.tasks");
};

const PoolMetrics& pool_metrics() {
  static const PoolMetrics m;
  return m;
}

}  // namespace

std::vector<ChunkRange> make_chunks(std::size_t n, std::size_t grain) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (grain == 0) grain = 1;
  const std::size_t count = (n + grain - 1) / grain;
  const std::size_t base = n / count;
  const std::size_t rem = n % count;
  chunks.reserve(count);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = base + (i < rem ? 1 : 0);
    chunks.push_back({begin, begin + len, i});
    begin += len;
  }
  return chunks;
}

namespace {

std::atomic<int> g_default_jobs{0};  // 0 = not yet initialized

int jobs_from_env() {
  const char* env = std::getenv("WASP_JOBS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

}  // namespace

int default_jobs() {
  int v = g_default_jobs.load(std::memory_order_relaxed);
  if (v == 0) {
    v = jobs_from_env();
    g_default_jobs.store(v, std::memory_order_relaxed);
  }
  return v;
}

void set_default_jobs(int jobs) {
  g_default_jobs.store(jobs > 0 ? jobs : 1, std::memory_order_relaxed);
  static const obs::Gauge g =
      obs::Registry::instance().gauge("pool.default_jobs");
  g.set(jobs > 0 ? jobs : 1);
}

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (jobs == 0) return default_jobs();
  return 1;
}

// All mutable batch state lives in one heap object shared by the workers
// that joined the batch. A worker that wakes up late holds the *old* batch:
// its ticket counter is exhausted (tickets are monotonic within a batch, so
// surplus claims return >= count), so it exits without ever dereferencing
// the task pointer — no use-after-free and no cross-batch index confusion.
struct ThreadPool::Batch {
  std::uint64_t id = 0;
  std::size_t count = 0;
  const std::function<void(std::size_t)>* task = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex error_mu;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
  /// Telemetry: submission timestamp (0 when timing was disabled at
  /// submission — workers then skip all clock reads for this batch).
  std::uint64_t enqueue_ns = 0;
};

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : 0;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  // Label this track in span exports. Only when tracing is live — otherwise
  // transient pools would accumulate empty retained buffers.
  if (obs::SpanTracer::instance().enabled()) {
    obs::SpanTracer::instance().set_thread_name("pool-worker");
  }
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stop_ || (batch_ != nullptr && batch_->id != seen);
    });
    if (stop_) return;
    std::shared_ptr<Batch> b = batch_;
    seen = b->id;
    lk.unlock();
    execute(*b);
    lk.lock();
  }
}

void ThreadPool::execute(Batch& b) {
  // Claim chunk indices from the batch's counter. Claim order is racy, but
  // every task writes only its own output slot and errors are keyed by
  // index, so results are independent of which worker ran what. With zero
  // workers the caller claims 0,1,2,... — exact sequential order.
  std::size_t i;
  while ((i = b.next.fetch_add(1, std::memory_order_relaxed)) < b.count) {
    const std::uint64_t t0 = b.enqueue_ns != 0 ? obs::now_ns() : 0;
    if (t0 != 0) pool_metrics().queue_wait_ns.add(t0 - b.enqueue_ns);
    {
      WASP_OBS_SPAN("pool.task");
      try {
        (*b.task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(b.error_mu);
        b.errors.emplace_back(i, std::current_exception());
      }
    }
    if (t0 != 0) {
      pool_metrics().task_run_ns.add(obs::now_ns() - t0);
      pool_metrics().tasks.add(1);
    }
    if (b.done.fetch_add(1, std::memory_order_acq_rel) + 1 == b.count) {
      std::lock_guard<std::mutex> lk(mu_);
      cv_done_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  WASP_CHECK_MSG(
      running_.load(std::memory_order_relaxed) != std::this_thread::get_id(),
      "ThreadPool::run is not reentrant");
  std::lock_guard<std::mutex> run_lk(run_mu_);
  running_.store(std::this_thread::get_id(), std::memory_order_relaxed);

  auto b = std::make_shared<Batch>();
  b->id = ++next_batch_id_;
  b->count = count;
  b->task = &task;
  if (obs::Registry::timing_enabled()) b->enqueue_ns = obs::now_ns();
  {
    std::lock_guard<std::mutex> lk(mu_);
    batch_ = b;
  }
  cv_work_.notify_all();
  execute(*b);  // the caller is a worker too
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] {
      return b->done.load(std::memory_order_acquire) >= b->count;
    });
    batch_.reset();
  }
  running_.store(std::thread::id{}, std::memory_order_relaxed);
  if (!b->errors.empty()) {
    std::size_t best = 0;
    for (std::size_t e = 1; e < b->errors.size(); ++e) {
      if (b->errors[e].first < b->errors[best].first) best = e;
    }
    std::rethrow_exception(b->errors[best].second);
  }
}

}  // namespace wasp::util
