// Lightweight checked-invariant support.
//
// Simulator invariants are programming errors, not recoverable conditions, so
// violations throw wasp::util::SimError carrying the failing expression and
// location. Tests assert on these.
#pragma once

#include <stdexcept>
#include <string>

namespace wasp::util {

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void raise_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);

}  // namespace wasp::util

#define WASP_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::wasp::util::raise_check_failure(#expr, __FILE__, __LINE__, "");      \
    }                                                                        \
  } while (0)

#define WASP_CHECK_MSG(expr, msg)                                            \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::wasp::util::raise_check_failure(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                        \
  } while (0)
