// Minimal YAML reader — parses the subset our yaml::Writer emits
// (indentation-nested maps, sequences of maps, scalar leaves, quoted
// strings). This is what lets a storage system load a characterization
// file produced by another run/tool and configure itself from it.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace wasp::util::yaml {

class Node {
 public:
  enum class Kind { kScalar, kMap, kSeq };

  Kind kind() const noexcept { return kind_; }
  bool is_scalar() const noexcept { return kind_ == Kind::kScalar; }
  bool is_map() const noexcept { return kind_ == Kind::kMap; }
  bool is_seq() const noexcept { return kind_ == Kind::kSeq; }

  /// Scalar value (throws on non-scalars).
  const std::string& scalar() const;

  /// Map access: nullptr when the key is absent or this is not a map.
  const Node* find(const std::string& key) const;
  /// Map access with a default for missing scalar keys.
  std::string get(const std::string& key,
                  const std::string& fallback = "") const;

  /// Sequence elements (empty when not a sequence).
  const std::vector<Node>& items() const noexcept { return seq_; }
  /// Map entries in document order.
  const std::vector<std::pair<std::string, Node>>& entries() const noexcept {
    return map_;
  }

  // Construction (used by the parser and tests).
  static Node make_scalar(std::string value);
  static Node make_map();
  static Node make_seq();
  Node& add_entry(const std::string& key, Node value);
  Node& add_item(Node value);

 private:
  Kind kind_ = Kind::kScalar;
  std::string scalar_;
  std::vector<std::pair<std::string, Node>> map_;
  std::vector<Node> seq_;
};

/// Parse a document; throws SimError on input outside the supported subset.
Node parse(const std::string& text);

}  // namespace wasp::util::yaml
