#include "util/stats.hpp"

#include <cmath>

#include "util/error.hpp"

namespace wasp::util {

double percentile(std::vector<double> values, double p) {
  WASP_CHECK_MSG(!values.empty(), "percentile of empty sample");
  WASP_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  if (p <= 0.0) return values.front();
  const auto n = static_cast<double>(values.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return values[std::min(values.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace wasp::util
