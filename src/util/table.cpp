#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace wasp::util {

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace wasp::util
