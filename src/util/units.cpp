#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace wasp::util {
namespace {

std::string with_unit(double value, const char* unit) {
  char buf[64];
  if (value >= 100.0 || value == std::floor(value)) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
  } else if (value >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f%s", value, unit);
  }
  return buf;
}

}  // namespace

std::string format_bytes(Bytes n) {
  const double v = static_cast<double>(n);
  if (v >= 1e12) return with_unit(v / 1e12, "TB");
  if (v >= 1e9) return with_unit(v / 1e9, "GB");
  if (v >= 1e6) return with_unit(v / 1e6, "MB");
  if (v >= 1e3) return with_unit(v / 1e3, "KB");
  return with_unit(v, "B");
}

std::string format_rate(double bytes_per_sec) {
  if (bytes_per_sec >= 1e12) return with_unit(bytes_per_sec / 1e12, "TB/s");
  if (bytes_per_sec >= 1e9) return with_unit(bytes_per_sec / 1e9, "GB/s");
  if (bytes_per_sec >= 1e6) return with_unit(bytes_per_sec / 1e6, "MB/s");
  if (bytes_per_sec >= 1e3) return with_unit(bytes_per_sec / 1e3, "KB/s");
  return with_unit(bytes_per_sec, "B/s");
}

std::string format_seconds(double sec) {
  if (sec >= 1.0) {
    char buf[64];
    if (sec >= 100.0) {
      std::snprintf(buf, sizeof(buf), "%.0fs", sec);
    } else {
      std::snprintf(buf, sizeof(buf), "%.3gs", sec);
    }
    return buf;
  }
  if (sec >= 1e-3) return with_unit(sec * 1e3, "ms");
  if (sec >= 1e-6) return with_unit(sec * 1e6, "us");
  return with_unit(sec * 1e9, "ns");
}

std::string format_percent(double fraction) {
  char buf[64];
  const double pct = fraction * 100.0;
  if (pct == std::floor(pct) || pct >= 10.0) {
    std::snprintf(buf, sizeof(buf), "%.0f%%", pct);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%%", pct);
  }
  return buf;
}

}  // namespace wasp::util
