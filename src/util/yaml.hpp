// Minimal YAML emitter — enough to serialize the entity/attribute
// characterization the way the Vani Analyzer emits its YAML feature files.
// Only the subset we produce (nested maps, sequences, scalar leaves) is
// supported; no anchors, no flow style.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace wasp::util::yaml {

class Writer {
 public:
  /// Begin a nested map under `key`.
  void begin_map(const std::string& key);
  void end_map();

  /// Begin a sequence under `key`; entries are added with seq_item_map /
  /// scalar_item.
  void begin_seq(const std::string& key);
  void end_seq();

  /// Begin a map that is an element of the current sequence.
  void begin_seq_item_map();

  void scalar(const std::string& key, const std::string& value);
  void scalar(const std::string& key, const char* value) {
    scalar(key, std::string(value));
  }
  void scalar(const std::string& key, std::int64_t value);
  void scalar(const std::string& key, std::uint64_t value);
  void scalar(const std::string& key, int value) {
    scalar(key, static_cast<std::int64_t>(value));
  }
  void scalar(const std::string& key, double value);
  void scalar(const std::string& key, bool value);

  /// Sequence element that is a plain scalar.
  void scalar_item(const std::string& value);

  std::string str() const { return out_.str(); }

 private:
  void indent();
  static std::string quote(const std::string& v);

  std::ostringstream out_;
  int depth_ = 0;
  // When >0, the next emitted line at this depth is a "- " sequence element.
  bool pending_item_ = false;
};

}  // namespace wasp::util::yaml
