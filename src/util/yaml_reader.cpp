#include "util/yaml_reader.hpp"

#include <sstream>

#include "util/error.hpp"

namespace wasp::util::yaml {
namespace {

struct Line {
  int indent = 0;
  bool item = false;       // begins with "- "
  std::string key;         // empty for scalar sequence items
  std::string value;       // empty when the entry opens a nested block
  bool has_value = false;
};

std::string unquote(const std::string& v) {
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    std::string out;
    for (std::size_t i = 1; i + 1 < v.size(); ++i) {
      if (v[i] == '\\' && i + 2 < v.size()) {
        ++i;
        if (v[i] == 'n') {
          out += '\n';
          continue;
        }
      }
      out += v[i];
    }
    return out;
  }
  return v;
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream is(text);
  std::string raw;
  while (std::getline(is, raw)) {
    std::size_t i = 0;
    while (i < raw.size() && raw[i] == ' ') ++i;
    if (i >= raw.size() || raw[i] == '#') continue;  // blank / comment
    Line line;
    line.indent = static_cast<int>(i);
    std::string body = raw.substr(i);
    if (body.rfind("- ", 0) == 0) {
      line.item = true;
      body = body.substr(2);
      line.indent += 2;  // content of an item aligns two columns deeper
    }
    // Split "key: value" / "key:" — a colon inside quotes is content.
    std::size_t colon = std::string::npos;
    bool in_quote = false;
    for (std::size_t c = 0; c < body.size(); ++c) {
      if (body[c] == '"') in_quote = !in_quote;
      if (!in_quote && body[c] == ':' &&
          (c + 1 == body.size() || body[c + 1] == ' ')) {
        colon = c;
        break;
      }
    }
    if (colon == std::string::npos) {
      WASP_CHECK_MSG(line.item, "unsupported YAML line: " + raw);
      line.value = unquote(body);
      line.has_value = true;
    } else {
      line.key = body.substr(0, colon);
      std::string rest =
          colon + 1 < body.size() ? body.substr(colon + 2) : "";
      if (!rest.empty()) {
        line.value = unquote(rest);
        line.has_value = true;
      }
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Node parse_document() {
    if (lines_.empty()) return Node::make_map();
    Node root = parse_block(lines_.front().indent);
    WASP_CHECK_MSG(pos_ == lines_.size(), "trailing unparsed YAML lines");
    return root;
  }

 private:
  bool at_end() const { return pos_ >= lines_.size(); }
  const Line& cur() const { return lines_[pos_]; }

  Node parse_block(int indent) {
    WASP_CHECK_MSG(!at_end(), "empty YAML block");
    return cur().item ? parse_seq(indent) : parse_map(indent);
  }

  Node parse_map(int indent) {
    Node node = Node::make_map();
    while (!at_end() && cur().indent == indent && !cur().item) {
      const Line line = cur();
      ++pos_;
      if (line.has_value) {
        node.add_entry(line.key, Node::make_scalar(line.value));
      } else if (!at_end() && cur().indent > indent) {
        node.add_entry(line.key, parse_block(cur().indent));
      } else {
        node.add_entry(line.key, Node::make_map());  // empty block
      }
    }
    return node;
  }

  Node parse_seq(int indent) {
    Node node = Node::make_seq();
    while (!at_end() && cur().item && cur().indent == indent) {
      const Line first = cur();
      ++pos_;
      if (first.key.empty()) {
        node.add_item(Node::make_scalar(first.value));
        continue;
      }
      // A sequence item that is a map: the dash line carries its first
      // entry; further entries continue at the same (content) indent.
      Node item = Node::make_map();
      if (first.has_value) {
        item.add_entry(first.key, Node::make_scalar(first.value));
      } else if (!at_end() && cur().indent > indent) {
        item.add_entry(first.key, parse_block(cur().indent));
      } else {
        item.add_entry(first.key, Node::make_map());
      }
      while (!at_end() && !cur().item && cur().indent == indent) {
        const Line line = cur();
        ++pos_;
        if (line.has_value) {
          item.add_entry(line.key, Node::make_scalar(line.value));
        } else if (!at_end() && cur().indent > indent) {
          item.add_entry(line.key, parse_block(cur().indent));
        } else {
          item.add_entry(line.key, Node::make_map());
        }
      }
      node.add_item(std::move(item));
    }
    return node;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

}  // namespace

const std::string& Node::scalar() const {
  WASP_CHECK_MSG(kind_ == Kind::kScalar, "YAML node is not a scalar");
  return scalar_;
}

const Node* Node::find(const std::string& key) const {
  for (const auto& [k, v] : map_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Node::get(const std::string& key,
                      const std::string& fallback) const {
  const Node* n = find(key);
  return n != nullptr && n->is_scalar() ? n->scalar() : fallback;
}

Node Node::make_scalar(std::string value) {
  Node n;
  n.kind_ = Kind::kScalar;
  n.scalar_ = std::move(value);
  return n;
}

Node Node::make_map() {
  Node n;
  n.kind_ = Kind::kMap;
  return n;
}

Node Node::make_seq() {
  Node n;
  n.kind_ = Kind::kSeq;
  return n;
}

Node& Node::add_entry(const std::string& key, Node value) {
  WASP_CHECK(kind_ == Kind::kMap);
  map_.emplace_back(key, std::move(value));
  return map_.back().second;
}

Node& Node::add_item(Node value) {
  WASP_CHECK(kind_ == Kind::kSeq);
  seq_.push_back(std::move(value));
  return seq_.back();
}

Node parse(const std::string& text) {
  return Parser(tokenize(text)).parse_document();
}

}  // namespace wasp::util::yaml
