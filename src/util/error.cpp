#include "util/error.hpp"

#include <sstream>

namespace wasp::util {

void raise_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "WASP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}

}  // namespace wasp::util
