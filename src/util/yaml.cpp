#include "util/yaml.hpp"

#include <cctype>
#include <cstdio>
#include <vector>

#include "util/error.hpp"

namespace wasp::util::yaml {
namespace {

bool needs_quotes(const std::string& v) {
  if (v.empty()) return true;
  for (char c : v) {
    if (c == ':' || c == '#' || c == '\'' || c == '"' || c == '\n' ||
        c == '{' || c == '}' || c == '[' || c == ']') {
      return true;
    }
  }
  return std::isspace(static_cast<unsigned char>(v.front())) != 0 ||
         std::isspace(static_cast<unsigned char>(v.back())) != 0;
}

}  // namespace

// The header keeps a trivial depth counter for cheap sanity checks; the real
// layout state lives here in a per-writer frame stack keyed by `this`.
// To keep the implementation self-contained (no pimpl), we re-derive
// indentation from depth_ and track sequence-item state with pending_item_.

void Writer::indent() {
  for (int i = 0; i < depth_; ++i) out_ << "  ";
  if (pending_item_) {
    // Replace the last two spaces with the sequence marker.
    out_.seekp(-2, std::ios_base::cur);
    out_ << "- ";
    pending_item_ = false;
  }
}

std::string Writer::quote(const std::string& v) {
  if (!needs_quotes(v)) return v;
  std::string out = "\"";
  for (char c : v) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

void Writer::begin_map(const std::string& key) {
  indent();
  out_ << key << ":\n";
  ++depth_;
}

void Writer::end_map() {
  WASP_CHECK(depth_ > 0);
  --depth_;
}

void Writer::begin_seq(const std::string& key) {
  indent();
  out_ << key << ":\n";
  ++depth_;
}

void Writer::end_seq() {
  WASP_CHECK(depth_ > 0);
  --depth_;
}

void Writer::begin_seq_item_map() {
  pending_item_ = true;
  ++depth_;
}

void Writer::scalar(const std::string& key, const std::string& value) {
  indent();
  out_ << key << ": " << quote(value) << '\n';
}

void Writer::scalar(const std::string& key, std::int64_t value) {
  indent();
  out_ << key << ": " << value << '\n';
}

void Writer::scalar(const std::string& key, std::uint64_t value) {
  indent();
  out_ << key << ": " << value << '\n';
}

void Writer::scalar(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  indent();
  out_ << key << ": " << buf << '\n';
}

void Writer::scalar(const std::string& key, bool value) {
  indent();
  out_ << key << ": " << (value ? "true" : "false") << '\n';
}

void Writer::scalar_item(const std::string& value) {
  indent();
  out_ << "- " << quote(value) << '\n';
}

}  // namespace wasp::util::yaml
