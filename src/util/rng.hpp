// Deterministic pseudo-random generation.
//
// The simulator must be bit-reproducible across runs and platforms, so we use
// SplitMix64 (public-domain algorithm by Sebastiano Vigna) rather than
// std::mt19937 + std::distributions, whose outputs are not guaranteed to be
// identical across standard-library implementations.
#pragma once

#include <cstdint>

namespace wasp::util {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept { return next() % n; }

  /// Standard normal via Box–Muller (one value per call; simple and exact
  /// enough for jitter modelling).
  double normal() noexcept;

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Gamma(shape k, scale theta) via Marsaglia–Tsang; used to model the
  /// "gamma" data distribution the paper attributes to CosmoFlow.
  double gamma(double k, double theta) noexcept;

  /// Derive an independent stream (e.g., per rank) from this seed.
  constexpr Rng fork(std::uint64_t stream) const noexcept {
    return Rng(state_ ^ (0xA0761D6478BD642FULL * (stream + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace wasp::util
