#include "util/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>

namespace wasp::util {
namespace {

/// Split "<number><suffix>" -> (value, suffix); nullopt if no number.
std::optional<std::pair<double, std::string>> split_number(
    const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return std::nullopt;
  std::string suffix(end);
  // Trim surrounding whitespace from the suffix.
  while (!suffix.empty() && std::isspace(static_cast<unsigned char>(
                                suffix.front()))) {
    suffix.erase(suffix.begin());
  }
  while (!suffix.empty() &&
         std::isspace(static_cast<unsigned char>(suffix.back()))) {
    suffix.pop_back();
  }
  return std::make_pair(v, suffix);
}

}  // namespace

std::optional<Bytes> parse_bytes(const std::string& text) {
  auto parsed = split_number(text);
  if (!parsed) return std::nullopt;
  auto [v, suffix] = *parsed;
  double mult = 0;
  if (suffix == "B") {
    mult = 1;
  } else if (suffix == "KB") {
    mult = 1e3;
  } else if (suffix == "MB") {
    mult = 1e6;
  } else if (suffix == "GB") {
    mult = 1e9;
  } else if (suffix == "TB") {
    mult = 1e12;
  } else if (suffix == "PB") {
    mult = 1e15;
  } else {
    return std::nullopt;
  }
  if (v < 0) return std::nullopt;
  return static_cast<Bytes>(v * mult + 0.5);
}

std::optional<double> parse_seconds(const std::string& text) {
  auto parsed = split_number(text);
  if (!parsed) return std::nullopt;
  auto [v, suffix] = *parsed;
  if (suffix == "s" || suffix == "sec") return v;
  if (suffix == "ms") return v * 1e-3;
  if (suffix == "us") return v * 1e-6;
  if (suffix == "ns") return v * 1e-9;
  if (suffix == "min") return v * 60;
  if (suffix == "hr" || suffix == "h") return v * 3600;
  return std::nullopt;
}

std::optional<double> parse_percent(const std::string& text) {
  auto parsed = split_number(text);
  if (!parsed || parsed->second != "%") return std::nullopt;
  return parsed->first / 100.0;
}

std::optional<double> parse_rate(const std::string& text) {
  const auto slash = text.rfind("/s");
  if (slash == std::string::npos) return std::nullopt;
  auto bytes = parse_bytes(text.substr(0, slash));
  if (!bytes) return std::nullopt;
  return static_cast<double>(*bytes);
}

std::optional<double> parse_ops_dist(const std::string& text) {
  // "<p>% data, <q>% meta"
  const auto comma = text.find(',');
  if (comma == std::string::npos) return std::nullopt;
  const auto data_pos = text.find("data");
  if (data_pos == std::string::npos || data_pos > comma) {
    return std::nullopt;
  }
  return parse_percent(text.substr(0, text.find('%') + 1));
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> parse_fpp_shared(
    const std::string& text) {
  const auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  try {
    return std::make_pair(std::stoull(text.substr(0, slash)),
                          std::stoull(text.substr(slash + 1)));
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<long long> parse_int(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

std::optional<unsigned long long> parse_uint(const std::string& text) {
  if (text.empty() || text.front() == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return v;
}

namespace {

[[noreturn]] void bad_cli_value(const std::string& flag,
                                const std::string& text, void (*usage)()) {
  std::cerr << "bad value for " << flag << ": '" << text
            << "' (expected an integer)\n";
  if (usage != nullptr) usage();
  std::exit(2);
}

}  // namespace

long long cli_int(const std::string& flag, const std::string& text,
                  void (*usage)()) {
  const auto v = parse_int(text);
  if (!v) bad_cli_value(flag, text, usage);
  return *v;
}

unsigned long long cli_uint(const std::string& flag, const std::string& text,
                            void (*usage)()) {
  const auto v = parse_uint(text);
  if (!v) bad_cli_value(flag, text, usage);
  return *v;
}

}  // namespace wasp::util
