// Plain-text table rendering for the bench binaries that regenerate the
// paper's tables and figure panels.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wasp::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Render aligned columns with a rule under the header.
  void print(std::ostream& os) const;
  std::string to_string() const;

  std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wasp::util
