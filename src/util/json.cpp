#include "util/json.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wasp::util::json {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing data after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(msg + " at byte " + std::to_string(pos_));
  }

  void ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Value value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return word("true", [](Value& v) {
        v.type = Value::Type::kBool;
        v.boolean = true;
      });
      case 'f': return word("false", [](Value& v) {
        v.type = Value::Type::kBool;
        v.boolean = false;
      });
      case 'n': return word("null", [](Value&) {});
      default: return number();
    }
  }

  template <typename Fill>
  Value word(const char* w, Fill fill) {
    for (const char* p = w; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
    Value v;
    fill(v);
    return v;
  }

  Value number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  Value string_value() {
    Value v;
    v.type = Value::Type::kString;
    v.str = raw_string();
    return v;
  }

  std::string raw_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // Our documents' names are ASCII; a \u escape decodes to a
          // placeholder rather than dragging in UTF-16 machinery.
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          pos_ += 4;
          out += '?';
          break;
        default: fail("bad escape");
      }
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.type = Value::Type::kArray;
    ws();
    if (consume(']')) return v;
    for (;;) {
      v.arr.push_back(value());
      ws();
      if (consume(']')) return v;
      expect(',');
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.type = Value::Type::kObject;
    ws();
    if (consume('}')) return v;
    for (;;) {
      ws();
      std::string key = raw_string();
      ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      ws();
      if (consume('}')) return v;
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

double Value::num_or(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Value::str_or(const std::string& key,
                          const std::string& fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_string() ? v->str : fallback;
}

std::uint64_t Value::u64_or(const std::string& key,
                            std::uint64_t fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->is_number() && v->number >= 0
             ? static_cast<std::uint64_t>(v->number)
             : fallback;
}

Value parse(const std::string& text) { return Parser(text).parse(); }

Value parse_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace wasp::util::json
