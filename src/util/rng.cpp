#include "util/rng.hpp"

#include <cmath>

namespace wasp::util {

double Rng::normal() noexcept {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::gamma(double k, double theta) noexcept {
  if (k < 1.0) {
    // Boost shape and correct with a power of a uniform (Marsaglia–Tsang).
    const double u = uniform();
    return gamma(k + 1.0, theta) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * theta;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * theta;
    }
  }
}

}  // namespace wasp::util
