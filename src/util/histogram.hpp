// Bucketed histograms for request sizes and per-bucket bandwidth, matching
// the "Request Size and Bandwidth histogram" panels of Figures 1–6.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace wasp::util {

/// Histogram over byte sizes with caller-supplied upper bucket edges.
/// A value v lands in the first bucket whose edge is >= v; values beyond the
/// last edge land in a final overflow bucket.
class SizeHistogram {
 public:
  explicit SizeHistogram(std::vector<Bytes> edges);

  /// The paper's bucket set: <4KB, <64KB, <1MB, <16MB, >=16MB.
  static SizeHistogram paper_buckets();

  void add(Bytes size, std::uint64_t count = 1, Bytes total_bytes = 0,
           double total_seconds = 0.0);

  /// Bucket a size would land in (for callers that aggregate their own
  /// per-bucket quantities, e.g. interval unions).
  std::size_t bucket_index(Bytes size) const noexcept { return bucket_of(size); }

  /// add() for callers that already resolved the bucket (the batched scan
  /// kernels look the bucket up once per row for both the histogram and the
  /// per-bucket interval collections).
  void add_at(std::size_t bucket, std::uint64_t count, Bytes total_bytes);

  /// Add busy time to a bucket after the fact (aggregate-bandwidth wall
  /// time computed externally via interval union).
  void add_seconds(std::size_t bucket, double seconds);

  std::size_t num_buckets() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
  Bytes bytes(std::size_t bucket) const { return bytes_.at(bucket); }
  double seconds(std::size_t bucket) const { return seconds_.at(bucket); }

  /// Aggregate bandwidth observed for a bucket (bytes / busy seconds);
  /// 0 when no time was recorded.
  double bandwidth(std::size_t bucket) const;

  std::uint64_t total_count() const noexcept;
  Bytes total_bytes() const noexcept;

  /// Label like "<4KB" / ">=16MB" for output tables.
  std::string bucket_label(std::size_t bucket) const;

  void merge(const SizeHistogram& other);

 private:
  std::size_t bucket_of(Bytes size) const noexcept;

  std::vector<Bytes> edges_;
  std::vector<std::uint64_t> counts_;
  std::vector<Bytes> bytes_;
  std::vector<double> seconds_;
};

}  // namespace wasp::util
