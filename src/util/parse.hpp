// Reverse parsers for the human-readable value formats the entity tables
// and YAML emitter produce ("16MB", "664s", "75% data, 25% meta", ...).
// Inverse of util/units.hpp formatters; round-trip is tested.
#pragma once

#include <optional>
#include <string>

#include "util/units.hpp"

namespace wasp::util {

/// "16MB" / "1.5TB" / "4.10KB" / "632B" -> bytes (decimal units).
std::optional<Bytes> parse_bytes(const std::string& text);

/// "664s" / "450ms" / "300us" / "2hr" -> seconds.
std::optional<double> parse_seconds(const std::string& text);

/// "75%" / "1.5%" -> fraction in [0,1].
std::optional<double> parse_percent(const std::string& text);

/// "64GB/s" -> bytes per second.
std::optional<double> parse_rate(const std::string& text);

/// "30% data, 70% meta" -> the data fraction.
std::optional<double> parse_ops_dist(const std::string& text);

/// "737/37" -> (fpp, shared).
std::optional<std::pair<std::uint64_t, std::uint64_t>> parse_fpp_shared(
    const std::string& text);

/// Strict base-10 integer parse: the whole string must be a number
/// (optional leading '-'), no trailing junk, no overflow. Unlike std::stoi
/// these never throw — CLIs use them to reject "--jobs banana" gracefully.
std::optional<long long> parse_int(const std::string& text);
std::optional<unsigned long long> parse_uint(const std::string& text);

/// Checked CLI numeric parse: on malformed input prints
/// "bad value for <flag>: '<text>' (expected an integer)" to stderr,
/// invokes `usage` when given, and exits 2.
long long cli_int(const std::string& flag, const std::string& text,
                  void (*usage)() = nullptr);
unsigned long long cli_uint(const std::string& flag, const std::string& text,
                            void (*usage)() = nullptr);

}  // namespace wasp::util
