// Streaming statistics (Welford) used by the analyzer and benchmarks.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wasp::util {

/// Single-pass count/mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double x) noexcept { add_weighted(x, 1); }

  /// Weighted add where all `weight` observations share value `x`; O(1).
  void add_weighted(double x, std::uint64_t weight) noexcept {
    if (weight == 0) return;
    const double w = static_cast<double>(weight);
    const double n = static_cast<double>(count_) + w;
    const double delta = x - mean_;
    mean_ += delta * (w / n);
    m2_ += delta * delta * (static_cast<double>(count_) * w / n);
    count_ += weight;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  void merge(const RunningStats& o) noexcept {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      *this = o;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(o.count_);
    const double delta = o.mean_ - mean_;
    mean_ += delta * (n2 / (n1 + n2));
    m2_ += o.m2_ + delta * delta * (n1 * n2 / (n1 + n2));
    count_ += o.count_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Percentile over a materialized sample (nearest-rank definition).
double percentile(std::vector<double> values, double p);

}  // namespace wasp::util
