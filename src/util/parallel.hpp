// Deterministic multi-core primitives.
//
// The contract mirrors the paper's DASK-style task parallelism while keeping
// wasp's bit-reproducibility guarantee: work is split into *fixed* chunks
// whose boundaries depend only on the input size and grain — never on the
// thread count — and per-chunk results are merged in chunk-index order.
// Floating-point reductions therefore produce identical bits at jobs=1 and
// jobs=N, and run-to-run. There is no work stealing: workers claim chunk
// indices from a shared atomic counter, and every chunk writes only its own
// output slot, so claim order cannot affect results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace wasp::util {

/// Half-open row range [begin, end) plus its position in the fixed chunking.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;
  std::size_t size() const noexcept { return end - begin; }
};

/// Split [0, n) into ceil(n/grain) nearly-even chunks. Boundaries are a pure
/// function of (n, grain) so chunked reductions are thread-count invariant.
std::vector<ChunkRange> make_chunks(std::size_t n, std::size_t grain);

/// Process-wide default parallelism: initialized from the WASP_JOBS
/// environment variable (fallback 1), overridable by CLI `--jobs` flags.
int default_jobs();
void set_default_jobs(int jobs);
/// jobs > 0 as-is; jobs == 0 means default_jobs(); negative clamps to 1.
int resolve_jobs(int jobs);

/// Fixed-size worker pool. `run(count, task)` executes task(0..count-1) to
/// completion; the calling thread participates, so a pool built with
/// `threads = jobs - 1` gives `jobs`-way parallelism and `threads = 0` is
/// plain sequential execution (indices in ascending order) with no thread
/// ever spawned — the serial and parallel paths share one code path.
///
/// run() is not reentrant: do not call it from inside a task on the same
/// pool (nested parallel sections must use their own pool).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the caller thread.
  int parallelism() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Block until task(i) ran for every i in [0, count). If tasks throw, the
  /// exception of the lowest-numbered failing task is rethrown (the others
  /// are discarded) — deterministic regardless of claim order.
  void run(std::size_t count, const std::function<void(std::size_t)>& task);

  /// Deterministically chunked loop: fn(ChunkRange) per chunk.
  template <typename Fn>
  void for_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
    const std::vector<ChunkRange> chunks = make_chunks(n, grain);
    run(chunks.size(), [&](std::size_t i) { fn(chunks[i]); });
  }

  /// Deterministically chunked map: results returned in chunk-index order.
  template <typename Fn,
            typename R = std::invoke_result_t<Fn&, const ChunkRange&>>
  std::vector<R> map_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
    const std::vector<ChunkRange> chunks = make_chunks(n, grain);
    std::vector<R> out(chunks.size());
    run(chunks.size(), [&](std::size_t i) { out[i] = fn(chunks[i]); });
    return out;
  }

 private:
  struct Batch;
  void worker_loop();
  void execute(Batch& b);

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Batch> batch_;
  std::uint64_t next_batch_id_ = 0;
  bool stop_ = false;

  std::mutex run_mu_;  // serializes concurrent run() callers
  std::atomic<std::thread::id> running_{};

  std::vector<std::thread> workers_;
};

/// One-shot chunked loop on a transient pool of `jobs` threads (0 = default
/// jobs, <=1 = sequential on the caller, no thread spawned).
template <typename Fn>
void parallel_for(int jobs, std::size_t n, std::size_t grain, Fn&& fn) {
  ThreadPool pool(resolve_jobs(jobs) - 1);
  pool.for_chunks(n, grain, std::forward<Fn>(fn));
}

/// One-shot chunked map; per-chunk results in chunk-index order.
template <typename Fn,
          typename R = std::invoke_result_t<Fn&, const ChunkRange&>>
std::vector<R> parallel_map(int jobs, std::size_t n, std::size_t grain,
                            Fn&& fn) {
  ThreadPool pool(resolve_jobs(jobs) - 1);
  return pool.map_chunks(n, grain, std::forward<Fn>(fn));
}

}  // namespace wasp::util
