// Minimal recursive-descent JSON reader shared by the reporting layer
// (obs::RunManifest loading, wasp_report, wasp_trace_check). This is a
// reader only — writers in this codebase emit JSON by hand so the output
// byte layout stays under each producer's control.
//
// The dialect is full RFC 8259 minus \uXXXX decoding (names and keys in
// our documents are ASCII; a \u escape decodes to '?'). Numbers land in a
// double, which is exact for the integer counters we care about up to
// 2^53 — callers that need exact u64 totals beyond that keep them out of
// JSON (none do today).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wasp::util::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::map<std::string, Value> obj;

  /// Object member lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const {
    const auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_number() const noexcept { return type == Type::kNumber; }

  /// Member accessors with defaults — the common "optional field" shape.
  double num_or(const std::string& key, double fallback) const;
  std::string str_or(const std::string& key,
                     const std::string& fallback) const;
  std::uint64_t u64_or(const std::string& key,
                       std::uint64_t fallback) const;
};

/// Parse one JSON document (plus trailing whitespace). Throws
/// std::runtime_error with the byte offset of the first error.
Value parse(const std::string& text);

/// Read and parse a whole file; the error message names the path for both
/// open failures and parse failures.
Value parse_file(const std::string& path);

}  // namespace wasp::util::json
