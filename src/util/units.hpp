// Byte and time units used throughout the simulator.
//
// All simulated time is kept in integer nanoseconds (sim::Time) for
// determinism; all data sizes in integer bytes. Helpers here convert to and
// from human-readable forms for table/figure output.
#pragma once

#include <cstdint>
#include <string>

namespace wasp::util {

using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;
inline constexpr Bytes kTiB = 1024ULL * kGiB;

// Decimal units (the paper mixes decimal and binary freely; we use binary
// internally and print with these helpers).
inline constexpr Bytes kKB = 1000ULL;
inline constexpr Bytes kMB = 1000ULL * kKB;
inline constexpr Bytes kGB = 1000ULL * kMB;
inline constexpr Bytes kTB = 1000ULL * kGB;

/// "1.5TB", "632MB", "4KB" style formatting (decimal units, 3 significant
/// digits max), matching how the paper quotes sizes.
std::string format_bytes(Bytes n);

/// Bandwidth formatting: "64GB/s", "95MB/s".
std::string format_rate(double bytes_per_sec);

/// Seconds with adaptive precision: "33s", "3567s", "0.3s", "450ms".
std::string format_seconds(double sec);

/// Percentage: "75%", "1.5%".
std::string format_percent(double fraction);

}  // namespace wasp::util
