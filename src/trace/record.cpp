#include "trace/record.hpp"

namespace wasp::trace {

const char* to_string(Iface iface) noexcept {
  switch (iface) {
    case Iface::kPosix: return "POSIX";
    case Iface::kStdio: return "STDIO";
    case Iface::kMpiio: return "MPI-IO";
    case Iface::kHdf5: return "HDF5";
    case Iface::kCpu: return "CPU";
    case Iface::kGpu: return "GPU";
    case Iface::kMpi: return "MPI";
  }
  return "?";
}

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kOpen: return "open";
    case Op::kClose: return "close";
    case Op::kStat: return "stat";
    case Op::kSeek: return "seek";
    case Op::kSync: return "sync";
    case Op::kUnlink: return "unlink";
    case Op::kReaddir: return "readdir";
    case Op::kMetaAccess: return "meta_access";
    case Op::kCompute: return "compute";
    case Op::kBarrier: return "barrier";
    case Op::kBcast: return "bcast";
    case Op::kSendRecv: return "sendrecv";
  }
  return "?";
}

}  // namespace wasp::trace
