#include "trace/log_io.hpp"

#include <cstring>
#include <fstream>
#include <unordered_map>
#include <ostream>

#include "util/error.hpp"

namespace wasp::trace {
namespace {

constexpr char kMagic[8] = {'W', 'A', 'S', 'P', 'T', 'R', 'C', '2'};

void put_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t get_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  WASP_CHECK_MSG(is.good(), "truncated trace log");
  return v;
}

void put_string(std::ostream& os, const std::string& s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string get_string(std::istream& is) {
  const std::uint64_t n = get_u64(is);
  WASP_CHECK_MSG(n < (1u << 20), "implausible string length in trace log");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  WASP_CHECK_MSG(is.good(), "truncated trace log");
  return s;
}

// Fixed-width on-disk row (independent of struct padding).
struct Row {
  std::uint16_t app;
  std::int32_t rank;
  std::int32_t node;
  std::uint8_t iface;
  std::uint8_t op;
  std::int16_t fs;
  std::uint64_t file;
  std::uint64_t offset;
  std::uint64_t size;
  std::uint32_t count;
  std::uint64_t tstart;
  std::uint64_t tend;
  std::uint32_t path_idx;
  std::uint64_t file_size;
};

Row to_row(const Record& r, std::uint32_t path_idx,
           std::uint64_t file_size) {
  Row row;
  row.app = r.app;
  row.rank = r.rank;
  row.node = r.node;
  row.iface = static_cast<std::uint8_t>(r.iface);
  row.op = static_cast<std::uint8_t>(r.op);
  row.fs = r.file.fs;
  row.file = r.file.file;
  row.offset = r.offset;
  row.size = r.size;
  row.count = r.count;
  row.tstart = r.tstart;
  row.tend = r.tend;
  row.path_idx = path_idx;
  row.file_size = file_size;
  return row;
}

Record from_row(const Row& row) {
  Record r;
  r.app = row.app;
  r.rank = row.rank;
  r.node = row.node;
  r.iface = static_cast<Iface>(row.iface);
  r.op = static_cast<Op>(row.op);
  r.file = {row.fs, row.file};
  r.offset = row.offset;
  r.size = row.size;
  r.count = row.count;
  r.tstart = row.tstart;
  r.tend = row.tend;
  return r;
}

}  // namespace

LogData snapshot(const Tracer& tracer) {
  LogData data;
  data.apps.reserve(tracer.num_apps());
  for (std::size_t a = 0; a < tracer.num_apps(); ++a) {
    data.apps.push_back(tracer.app_name(static_cast<std::uint16_t>(a)));
  }
  for (std::size_t f = 0; f < tracer.num_filesystems(); ++f) {
    auto& fsys = tracer.filesystem(static_cast<std::int16_t>(f));
    data.fs_names.push_back(fsys.name());
    data.fs_shared.push_back(fsys.shared());
  }
  data.records = tracer.records();
  data.paths.reserve(data.records.size());
  data.file_sizes.reserve(data.records.size());
  for (const auto& r : data.records) {
    data.paths.push_back(tracer.path_of(r.file, r.node));
    std::uint64_t size = 0;
    if (r.file.valid()) {
      auto& fsys = tracer.filesystem(r.file.fs);
      auto& ns = fsys.ns(fs::ProcSite{fsys.shared() ? 0 : r.node, 0});
      if (r.file.file < ns.inodes().size()) {
        size = ns.inodes()[r.file.file].size;
      }
    }
    data.file_sizes.push_back(size);
  }
  return data;
}

void write_log(const std::string& filename, const Tracer& tracer) {
  std::ofstream os(filename, std::ios::binary | std::ios::trunc);
  WASP_CHECK_MSG(os.good(), "cannot open trace log for write: " + filename);
  const LogData data = snapshot(tracer);

  // Deduplicate paths into a table.
  std::vector<std::string> path_table;
  std::vector<std::uint32_t> path_idx(data.records.size(), 0);
  {
    std::unordered_map<std::string, std::uint32_t> index;
    for (std::size_t i = 0; i < data.records.size(); ++i) {
      auto [it, fresh] = index.try_emplace(
          data.paths[i], static_cast<std::uint32_t>(path_table.size()));
      if (fresh) path_table.push_back(data.paths[i]);
      path_idx[i] = it->second;
    }
  }

  os.write(kMagic, sizeof(kMagic));
  put_u64(os, data.apps.size());
  for (const auto& a : data.apps) put_string(os, a);
  put_u64(os, data.fs_names.size());
  for (std::size_t f = 0; f < data.fs_names.size(); ++f) {
    put_string(os, data.fs_names[f]);
    put_u64(os, data.fs_shared[f] ? 1 : 0);
  }
  put_u64(os, path_table.size());
  for (const auto& p : path_table) put_string(os, p);
  put_u64(os, data.records.size());
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    const Row row = to_row(data.records[i], path_idx[i],
                           data.file_sizes[i]);
    os.write(reinterpret_cast<const char*>(&row), sizeof(row));
  }
  WASP_CHECK_MSG(os.good(), "short write to trace log: " + filename);
}

LogData read_log(const std::string& filename) {
  std::ifstream is(filename, std::ios::binary);
  WASP_CHECK_MSG(is.good(), "cannot open trace log: " + filename);
  char magic[8];
  is.read(magic, sizeof(magic));
  WASP_CHECK_MSG(is.good() && std::memcmp(magic, kMagic, 8) == 0,
                 "not a WASP trace log: " + filename);

  LogData data;
  const std::uint64_t napps = get_u64(is);
  for (std::uint64_t i = 0; i < napps; ++i) {
    data.apps.push_back(get_string(is));
  }
  const std::uint64_t nfs = get_u64(is);
  for (std::uint64_t i = 0; i < nfs; ++i) {
    data.fs_names.push_back(get_string(is));
    data.fs_shared.push_back(get_u64(is) != 0);
  }
  std::vector<std::string> path_table;
  const std::uint64_t npaths = get_u64(is);
  for (std::uint64_t i = 0; i < npaths; ++i) {
    path_table.push_back(get_string(is));
  }
  const std::uint64_t nrecords = get_u64(is);
  data.records.reserve(nrecords);
  data.paths.reserve(nrecords);
  for (std::uint64_t i = 0; i < nrecords; ++i) {
    Row row;
    is.read(reinterpret_cast<char*>(&row), sizeof(row));
    WASP_CHECK_MSG(is.good(), "truncated trace log: " + filename);
    WASP_CHECK_MSG(row.path_idx < path_table.size() || path_table.empty(),
                   "bad path index in trace log");
    data.records.push_back(from_row(row));
    data.paths.push_back(path_table.empty() ? ""
                                            : path_table[row.path_idx]);
    data.file_sizes.push_back(row.file_size);
  }
  return data;
}

void write_csv(std::ostream& os, const Tracer& tracer) {
  os << "app,rank,node,iface,op,path,offset,size,count,tstart_ns,tend_ns\n";
  for (const auto& r : tracer.records()) {
    os << tracer.app_name(r.app) << ',' << r.rank << ',' << r.node << ','
       << to_string(r.iface) << ',' << to_string(r.op) << ','
       << tracer.path_of(r.file, r.node) << ',' << r.offset << ',' << r.size
       << ',' << r.count << ',' << r.tstart << ',' << r.tend << '\n';
  }
}

}  // namespace wasp::trace
