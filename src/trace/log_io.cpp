#include "trace/log_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unordered_map>
#include <ostream>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasp::trace {
namespace {

constexpr char kMagic[8] = {'W', 'A', 'S', 'P', 'T', 'R', 'C', '2'};

/// Delete a half-written output file so a disk-full run never leaves a
/// truncated log behind. Only regular files and symlinks are touched
/// (tests point outputs at /dev/full; never unlink a device node).
void remove_partial_output(const std::string& path) {
  std::error_code ec;
  const auto st = std::filesystem::symlink_status(path, ec);
  if (!ec && (std::filesystem::is_regular_file(st) ||
              std::filesystem::is_symlink(st))) {
    std::filesystem::remove(path, ec);
  }
}

/// Write-site failure detection: every write is checked so a short write
/// (disk full) is diagnosed here — with path, byte counts, and errno —
/// instead of surfacing as a confusing truncated-log error at read time.
class CheckedWriter {
 public:
  CheckedWriter(std::ostream& os, const std::string& path)
      : os_(os), path_(path) {}

  void write(const void* data, std::size_t n) {
    errno = 0;
    os_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(n));
    if (!os_.good()) fail();
    written_ += n;
  }

  void put_u64(std::uint64_t v) { write(&v, sizeof(v)); }

  void put_string(const std::string& s) {
    put_u64(s.size());
    write(s.data(), s.size());
  }

  void finish() {
    errno = 0;
    os_.flush();
    if (!os_.good()) fail();
  }

  std::uint64_t written() const noexcept { return written_; }

 private:
  [[noreturn]] void fail() {
    const int err = errno;
    remove_partial_output(path_);
    throw util::SimError(
        "short write to trace log: " + path_ + ": failed after " +
        std::to_string(written_) + " bytes (" +
        (err != 0 ? std::strerror(err) : "no errno") + ")");
  }

  std::ostream& os_;
  const std::string& path_;
  std::uint64_t written_ = 0;
};

std::uint64_t get_u64(std::istream& is, const std::string& path) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  WASP_CHECK_MSG(is.good(), "truncated trace log: " + path +
                                " (short read in header)");
  return v;
}

std::string get_string(std::istream& is, const std::string& path) {
  const std::uint64_t n = get_u64(is, path);
  WASP_CHECK_MSG(n < (1u << 20),
                 "implausible string length in trace log: " + path);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  WASP_CHECK_MSG(is.good(), "truncated trace log: " + path +
                                " (short read in header)");
  return s;
}

// Fixed-width on-disk row (independent of struct padding).
struct Row {
  std::uint16_t app;
  std::int32_t rank;
  std::int32_t node;
  std::uint8_t iface;
  std::uint8_t op;
  std::int16_t fs;
  std::uint64_t file;
  std::uint64_t offset;
  std::uint64_t size;
  std::uint32_t count;
  std::uint64_t tstart;
  std::uint64_t tend;
  std::uint32_t path_idx;
  std::uint64_t file_size;
};

Row to_row(const Record& r, std::uint32_t path_idx,
           std::uint64_t file_size) {
  // memset, not just member init: the struct has padding holes (after app,
  // count, path_idx) and every byte lands on disk — uninitialized padding
  // made "identical" runs produce different log bytes.
  Row row;
  std::memset(&row, 0, sizeof(row));
  row.app = r.app;
  row.rank = r.rank;
  row.node = r.node;
  row.iface = static_cast<std::uint8_t>(r.iface);
  row.op = static_cast<std::uint8_t>(r.op);
  row.fs = r.file.fs;
  row.file = r.file.file;
  row.offset = r.offset;
  row.size = r.size;
  row.count = r.count;
  row.tstart = r.tstart;
  row.tend = r.tend;
  row.path_idx = path_idx;
  row.file_size = file_size;
  return row;
}

Record from_row(const Row& row) {
  Record r;
  r.app = row.app;
  r.rank = row.rank;
  r.node = row.node;
  r.iface = static_cast<Iface>(row.iface);
  r.op = static_cast<Op>(row.op);
  r.file = {row.fs, row.file};
  r.offset = row.offset;
  r.size = row.size;
  r.count = row.count;
  r.tstart = row.tstart;
  r.tend = row.tend;
  return r;
}

}  // namespace

LogData snapshot(const Tracer& tracer) {
  LogData data;
  data.apps.reserve(tracer.num_apps());
  for (std::size_t a = 0; a < tracer.num_apps(); ++a) {
    data.apps.push_back(tracer.app_name(static_cast<std::uint16_t>(a)));
  }
  for (std::size_t f = 0; f < tracer.num_filesystems(); ++f) {
    auto& fsys = tracer.filesystem(static_cast<std::int16_t>(f));
    data.fs_names.push_back(fsys.name());
    data.fs_shared.push_back(fsys.shared());
  }
  data.records = tracer.records();
  data.paths.reserve(data.records.size());
  data.file_sizes.reserve(data.records.size());
  for (const auto& r : data.records) {
    data.paths.push_back(tracer.path_of(r.file, r.node));
    std::uint64_t size = 0;
    if (r.file.valid()) {
      auto& fsys = tracer.filesystem(r.file.fs);
      auto& ns = fsys.ns(fs::ProcSite{fsys.shared() ? 0 : r.node, 0});
      if (r.file.file < ns.inodes().size()) {
        size = ns.inodes()[r.file.file].size;
      }
    }
    data.file_sizes.push_back(size);
  }
  return data;
}

void write_log(const std::string& filename, const Tracer& tracer) {
  std::ofstream os(filename, std::ios::binary | std::ios::trunc);
  WASP_CHECK_MSG(os.good(), "cannot open trace log for write: " + filename);
  const LogData data = snapshot(tracer);

  // Deduplicate paths into a table.
  std::vector<std::string> path_table;
  std::vector<std::uint32_t> path_idx(data.records.size(), 0);
  {
    std::unordered_map<std::string, std::uint32_t> index;
    for (std::size_t i = 0; i < data.records.size(); ++i) {
      auto [it, fresh] = index.try_emplace(
          data.paths[i], static_cast<std::uint32_t>(path_table.size()));
      if (fresh) path_table.push_back(data.paths[i]);
      path_idx[i] = it->second;
    }
  }

  CheckedWriter w(os, filename);
  w.write(kMagic, sizeof(kMagic));
  w.put_u64(data.apps.size());
  for (const auto& a : data.apps) w.put_string(a);
  w.put_u64(data.fs_names.size());
  for (std::size_t f = 0; f < data.fs_names.size(); ++f) {
    w.put_string(data.fs_names[f]);
    w.put_u64(data.fs_shared[f] ? 1 : 0);
  }
  w.put_u64(path_table.size());
  for (const auto& p : path_table) w.put_string(p);
  w.put_u64(data.records.size());
  for (std::size_t i = 0; i < data.records.size(); ++i) {
    const Row row = to_row(data.records[i], path_idx[i],
                           data.file_sizes[i]);
    w.write(&row, sizeof(row));
  }
  w.finish();
}

LogReader::LogReader(const std::string& filename)
    : filename_(filename), is_(filename, std::ios::binary) {
  WASP_CHECK_MSG(is_.good(), "cannot open trace log: " + filename);
  char magic[8];
  is_.read(magic, sizeof(magic));
  WASP_CHECK_MSG(is_.good() && std::memcmp(magic, kMagic, 8) == 0,
                 "not a WASP trace log: " + filename);

  const std::uint64_t napps = get_u64(is_, filename);
  for (std::uint64_t i = 0; i < napps; ++i) {
    header_.apps.push_back(get_string(is_, filename));
  }
  const std::uint64_t nfs = get_u64(is_, filename);
  for (std::uint64_t i = 0; i < nfs; ++i) {
    header_.fs_names.push_back(get_string(is_, filename));
    header_.fs_shared.push_back(get_u64(is_, filename) != 0);
  }
  const std::uint64_t npaths = get_u64(is_, filename);
  for (std::uint64_t i = 0; i < npaths; ++i) {
    header_.path_table.push_back(get_string(is_, filename));
  }
  header_.num_records = get_u64(is_, filename);

  // Validate the declared count against what the file actually holds, so a
  // truncated or corrupt header fails here instead of driving a huge
  // reserve downstream.
  const std::streamoff data_pos = is_.tellg();
  is_.seekg(0, std::ios::end);
  const std::streamoff end_pos = is_.tellg();
  is_.seekg(data_pos);
  WASP_CHECK_MSG(is_.good() && end_pos >= data_pos,
                 "cannot size trace log: " + filename);
  const auto avail = static_cast<std::uint64_t>(end_pos - data_pos);
  WASP_CHECK_MSG(header_.num_records <= avail / sizeof(Row),
                 "trace log declares more records than the file holds: " +
                     filename);
  remaining_ = header_.num_records;
}

std::size_t LogReader::next_chunk(std::size_t max_rows,
                                  std::vector<Record>& records,
                                  std::vector<std::uint32_t>& path_idx,
                                  std::vector<std::uint64_t>& file_sizes) {
  WASP_OBS_SPAN("log.read_chunk");
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(max_rows, remaining_));
  for (std::size_t i = 0; i < n; ++i) {
    Row row;
    is_.read(reinterpret_cast<char*>(&row), sizeof(row));
    WASP_CHECK_MSG(is_.good(),
                   "truncated trace log: " + filename_ + " (short read at record " +
                       std::to_string(header_.num_records - remaining_ + i) +
                       " of " + std::to_string(header_.num_records) + ")");
    WASP_CHECK_MSG(
        row.path_idx < header_.path_table.size() || header_.path_table.empty(),
        "bad path index in trace log: " + filename_);
    records.push_back(from_row(row));
    path_idx.push_back(row.path_idx);
    file_sizes.push_back(row.file_size);
  }
  remaining_ -= n;
  return n;
}

LogData read_log(const std::string& filename) {
  LogReader reader(filename);
  const LogHeader& h = reader.header();
  LogData data;
  data.apps = h.apps;
  data.fs_names = h.fs_names;
  data.fs_shared = h.fs_shared;
  const auto n = static_cast<std::size_t>(h.num_records);
  data.records.reserve(n);
  data.paths.reserve(n);
  data.file_sizes.reserve(n);
  std::vector<std::uint32_t> path_idx;
  path_idx.reserve(n);
  while (reader.next_chunk(1u << 16, data.records, path_idx,
                           data.file_sizes) > 0) {
  }
  for (const std::uint32_t pi : path_idx) {
    data.paths.push_back(h.path_table.empty() ? "" : h.path_table[pi]);
  }
  return data;
}

void write_csv(std::ostream& os, const Tracer& tracer) {
  os << "app,rank,node,iface,op,path,offset,size,count,tstart_ns,tend_ns\n";
  for (const auto& r : tracer.records()) {
    os << tracer.app_name(r.app) << ',' << r.rank << ',' << r.node << ','
       << to_string(r.iface) << ',' << to_string(r.op) << ','
       << tracer.path_of(r.file, r.node) << ',' << r.offset << ',' << r.size
       << ',' << r.count << ',' << r.tstart << ',' << r.tend << '\n';
  }
}

}  // namespace wasp::trace
