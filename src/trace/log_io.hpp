// Row-format trace persistence — the simulated Recorder log files.
//
// After a job, the tracer's records can be written to a self-contained
// binary log (app names + file paths + rows) and read back for offline
// analysis, mirroring the paper's Recorder-logs-on-GPFS -> Analyzer
// pipeline. A CSV exporter is provided for human inspection.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/tracer.hpp"

namespace wasp::trace {

/// A trace detached from its Simulation: everything the Analyzer needs.
struct LogData {
  std::vector<std::string> apps;
  std::vector<std::string> fs_names;
  /// Whether each registered filesystem is node-shared; parallel to
  /// fs_names.
  std::vector<bool> fs_shared;
  /// Path of each record's file ("" when file-less); parallel to records.
  std::vector<std::string> paths;
  /// End-of-run size of each record's file; parallel to records.
  std::vector<std::uint64_t> file_sizes;
  std::vector<Record> records;
};

/// Serialize the tracer's current records (binary, versioned header).
void write_log(const std::string& filename, const Tracer& tracer);

/// Everything before a log file's row section.
struct LogHeader {
  std::vector<std::string> apps;
  std::vector<std::string> fs_names;
  std::vector<bool> fs_shared;
  /// Deduplicated path table; rows reference it by index.
  std::vector<std::string> path_table;
  std::uint64_t num_records = 0;
};

/// Streaming log reader: parses and validates the header up front —
/// including the declared record count against the actual file size, so a
/// corrupt count throws SimError instead of driving a huge allocation —
/// then emits record chunks on demand. Arbitrarily large logs never
/// materialize whole; feed the chunks to an analysis::SpillColumnStore.
class LogReader {
 public:
  explicit LogReader(const std::string& filename);
  const LogHeader& header() const noexcept { return header_; }
  std::uint64_t remaining() const noexcept { return remaining_; }
  /// Read up to max_rows records, appending to the three parallel vectors
  /// (path-table index and end-of-run file size per record). Returns rows
  /// appended; 0 at end of log. Throws SimError on malformed rows.
  std::size_t next_chunk(std::size_t max_rows, std::vector<Record>& records,
                         std::vector<std::uint32_t>& path_idx,
                         std::vector<std::uint64_t>& file_sizes);

 private:
  std::string filename_;
  std::ifstream is_;
  LogHeader header_;
  std::uint64_t remaining_ = 0;
};

/// Load a log written by write_log. Throws SimError on malformed input.
LogData read_log(const std::string& filename);

/// Extract LogData from a live tracer without touching disk.
LogData snapshot(const Tracer& tracer);

/// Human-readable CSV of the records.
void write_csv(std::ostream& os, const Tracer& tracer);

}  // namespace wasp::trace
