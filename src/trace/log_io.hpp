// Row-format trace persistence — the simulated Recorder log files.
//
// After a job, the tracer's records can be written to a self-contained
// binary log (app names + file paths + rows) and read back for offline
// analysis, mirroring the paper's Recorder-logs-on-GPFS -> Analyzer
// pipeline. A CSV exporter is provided for human inspection.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/tracer.hpp"

namespace wasp::trace {

/// A trace detached from its Simulation: everything the Analyzer needs.
struct LogData {
  std::vector<std::string> apps;
  std::vector<std::string> fs_names;
  /// Whether each registered filesystem is node-shared; parallel to
  /// fs_names.
  std::vector<bool> fs_shared;
  /// Path of each record's file ("" when file-less); parallel to records.
  std::vector<std::string> paths;
  /// End-of-run size of each record's file; parallel to records.
  std::vector<std::uint64_t> file_sizes;
  std::vector<Record> records;
};

/// Serialize the tracer's current records (binary, versioned header).
void write_log(const std::string& filename, const Tracer& tracer);

/// Load a log written by write_log. Throws SimError on malformed input.
LogData read_log(const std::string& filename);

/// Extract LogData from a live tracer without touching disk.
LogData snapshot(const Tracer& tracer);

/// Human-readable CSV of the records.
void write_csv(std::ostream& os, const Tracer& tracer);

}  // namespace wasp::trace
