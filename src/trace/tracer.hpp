// In-memory trace collector attached to a simulation — the stand-in for the
// Recorder profiler. Interface layers call add(); library-internal I/O
// (e.g., the POSIX ops an MPI-IO aggregator issues on behalf of a collective)
// is suppressed with a SuppressionScope so op counts match what the
// *application* called, exactly as the paper's per-interface tables count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fs/filesystem.hpp"
#include "trace/record.hpp"

namespace wasp::trace {

class Tracer {
 public:
  /// Register a filesystem; its index becomes FileKey::fs.
  std::int16_t register_fs(fs::FileSystemSim& fs);
  /// Registered order: resolve FileKey back to a path for reports.
  fs::FileSystemSim& filesystem(std::int16_t idx) const;
  std::size_t num_filesystems() const noexcept { return filesystems_.size(); }

  /// Register an application (one per workflow step); returns its app index.
  std::uint16_t register_app(std::string name);
  const std::string& app_name(std::uint16_t app) const;
  std::size_t num_apps() const noexcept { return apps_.size(); }

  void add(const Record& r) {
    if (suppression_ == 0 && enabled_) records_.push_back(r);
  }

  const std::vector<Record>& records() const noexcept { return records_; }
  void clear() { records_.clear(); }
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  bool suppressed() const noexcept { return suppression_ > 0; }

  /// Resolve a record's file to its path ("" when file-less). Node-local
  /// filesystems need the record's node to pick the right namespace.
  std::string path_of(const FileKey& key, int node = 0) const;

  class SuppressionScope {
   public:
    explicit SuppressionScope(Tracer& t) noexcept : t_(t) {
      ++t_.suppression_;
    }
    ~SuppressionScope() { --t_.suppression_; }
    SuppressionScope(const SuppressionScope&) = delete;
    SuppressionScope& operator=(const SuppressionScope&) = delete;

   private:
    Tracer& t_;
  };

 private:
  std::vector<fs::FileSystemSim*> filesystems_;
  std::vector<std::string> apps_;
  std::vector<Record> records_;
  int suppression_ = 0;
  bool enabled_ = true;
};

}  // namespace wasp::trace
