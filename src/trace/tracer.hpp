// In-memory trace collector attached to a simulation — the stand-in for the
// Recorder profiler. Interface layers call add(); library-internal I/O
// (e.g., the POSIX ops an MPI-IO aggregator issues on behalf of a collective)
// is suppressed with a SuppressionScope so op counts match what the
// *application* called, exactly as the paper's per-interface tables count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fs/filesystem.hpp"
#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace wasp::trace {

class Tracer {
 public:
  /// Register a filesystem; its index becomes FileKey::fs.
  std::int16_t register_fs(fs::FileSystemSim& fs);
  /// Registered order: resolve FileKey back to a path for reports.
  fs::FileSystemSim& filesystem(std::int16_t idx) const;
  std::size_t num_filesystems() const noexcept { return filesystems_.size(); }

  /// Register an application (one per workflow step); returns its app index.
  std::uint16_t register_app(std::string name);
  const std::string& app_name(std::uint16_t app) const;
  std::size_t num_apps() const noexcept { return apps_.size(); }

  void add(const Record& r) {
    if (suppression_ != 0 || !enabled_) return;
    // Large sink-less runs buffer millions of records; once the buffer is
    // past 64Ki rows, grow 3x instead of the allocator's 2x so the total
    // bytes copied across regrowths stays well under one buffer's worth.
    // Small runs (and every sink-bounded run) keep the default growth.
    if (records_.size() == records_.capacity() &&
        records_.capacity() >= (std::size_t{1} << 16) && sink_ == nullptr) {
      records_.reserve(records_.capacity() * 3);
    }
    records_.push_back(r);
    if (sink_ != nullptr && records_.size() >= sink_flush_rows_) flush_sink();
  }

  /// Attach a sink that receives closed batches of records: whenever at
  /// least `flush_rows` records are buffered, they are flushed to the sink
  /// and dropped from memory, bounding tracer memory for long runs.
  /// records() then holds only the un-flushed tail; use total_records() for
  /// the full count and flush_sink() to push the tail before analyzing the
  /// sink's store. Pass nullptr to detach.
  void set_sink(RecordSink* sink, std::size_t flush_rows = 1u << 20);
  /// Push all buffered records to the sink (no-op without one).
  void flush_sink();
  /// Records handed to the sink so far.
  std::uint64_t spilled_records() const noexcept { return spilled_; }
  /// Records observed in total: spilled plus still buffered.
  std::uint64_t total_records() const noexcept {
    return spilled_ + records_.size();
  }

  const std::vector<Record>& records() const noexcept { return records_; }
  void clear() {
    records_.clear();
    spilled_ = 0;
  }
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  bool suppressed() const noexcept { return suppression_ > 0; }

  /// Resolve a record's file to its path ("" when file-less). Node-local
  /// filesystems need the record's node to pick the right namespace.
  std::string path_of(const FileKey& key, int node = 0) const;

  class SuppressionScope {
   public:
    explicit SuppressionScope(Tracer& t) noexcept : t_(t) {
      ++t_.suppression_;
    }
    ~SuppressionScope() { --t_.suppression_; }
    SuppressionScope(const SuppressionScope&) = delete;
    SuppressionScope& operator=(const SuppressionScope&) = delete;

   private:
    Tracer& t_;
  };

 private:
  std::vector<fs::FileSystemSim*> filesystems_;
  std::vector<std::string> apps_;
  std::vector<Record> records_;
  RecordSink* sink_ = nullptr;
  std::size_t sink_flush_rows_ = 0;
  std::uint64_t spilled_ = 0;
  int suppression_ = 0;
  bool enabled_ = true;
};

}  // namespace wasp::trace
