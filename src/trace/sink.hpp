// Destination for closed batches of trace records. The tracer only knows
// this interface; concrete sinks (e.g. analysis::SpillColumnStore) live in
// higher layers, so trace/ never depends on analysis/.
#pragma once

#include <span>

#include "trace/record.hpp"

namespace wasp::trace {

class RecordSink {
 public:
  virtual ~RecordSink() = default;
  /// Accept a batch of records in trace order. Called from the simulation
  /// thread that owns the tracer; implementations need not be thread-safe
  /// across concurrent appends.
  virtual void append(std::span<const Record> records) = 0;
};

}  // namespace wasp::trace
