// Trace record schema — the simulated equivalent of Recorder 2.0's
// multi-level traces: every POSIX/STDIO/MPI-IO/HDF5 call plus CPU/GPU
// compute spans and MPI communication, per rank, with simulated timestamps.
#pragma once

#include <cstdint>
#include <string>

#include "fs/types.hpp"
#include "sim/engine.hpp"

namespace wasp::trace {

/// Which layer of the stack issued the call (Recorder traces each level).
enum class Iface : std::uint8_t {
  kPosix,
  kStdio,
  kMpiio,
  kHdf5,
  kCpu,
  kGpu,
  kMpi,
};

enum class Op : std::uint8_t {
  kRead,
  kWrite,
  kOpen,
  kClose,
  kStat,
  kSeek,
  kSync,
  kUnlink,
  kReaddir,
  kMetaAccess,  ///< library-internal metadata access (HDF5 b-tree, headers)
  kCompute,
  kBarrier,
  kBcast,
  kSendRecv,
};

const char* to_string(Iface iface) noexcept;
const char* to_string(Op op) noexcept;

/// True for operations the paper's analysis classes as "metadata ops".
constexpr bool is_meta(Op op) noexcept {
  switch (op) {
    case Op::kOpen:
    case Op::kClose:
    case Op::kStat:
    case Op::kSeek:
    case Op::kSync:
    case Op::kUnlink:
    case Op::kReaddir:
    case Op::kMetaAccess:
      return true;
    default:
      return false;
  }
}

constexpr bool is_data(Op op) noexcept {
  return op == Op::kRead || op == Op::kWrite;
}

constexpr bool is_io(Op op) noexcept { return is_meta(op) || is_data(op); }

constexpr bool is_compute(Op op) noexcept { return op == Op::kCompute; }

/// Identifies a file across filesystems: (tracer fs registry index, inode).
struct FileKey {
  std::int16_t fs = -1;
  fs::FileId file = fs::kInvalidFile;
  bool valid() const noexcept { return fs >= 0 && file != fs::kInvalidFile; }
  bool operator==(const FileKey&) const = default;
};

struct Record {
  std::uint16_t app = 0;   ///< tracer app registry index
  std::int32_t rank = -1;
  std::int32_t node = -1;
  Iface iface = Iface::kPosix;
  Op op = Op::kRead;
  FileKey file;
  fs::Bytes offset = 0;
  fs::Bytes size = 0;           ///< per-operation granularity
  std::uint32_t count = 1;      ///< coalesced sequential ops in this record
  sim::Time tstart = 0;
  sim::Time tend = 0;

  bool operator==(const Record&) const = default;

  fs::Bytes total_bytes() const noexcept {
    return size * static_cast<fs::Bytes>(count);
  }
  double duration_sec() const noexcept {
    return sim::to_seconds(tend - tstart);
  }
};

}  // namespace wasp::trace
