#include "trace/tracer.hpp"

#include "util/error.hpp"

namespace wasp::trace {

std::int16_t Tracer::register_fs(fs::FileSystemSim& fs) {
  for (std::size_t i = 0; i < filesystems_.size(); ++i) {
    if (filesystems_[i] == &fs) return static_cast<std::int16_t>(i);
  }
  filesystems_.push_back(&fs);
  return static_cast<std::int16_t>(filesystems_.size() - 1);
}

fs::FileSystemSim& Tracer::filesystem(std::int16_t idx) const {
  WASP_CHECK_MSG(idx >= 0 && static_cast<std::size_t>(idx) <
                                 filesystems_.size(),
                 "bad fs index in trace");
  return *filesystems_[static_cast<std::size_t>(idx)];
}

std::uint16_t Tracer::register_app(std::string name) {
  apps_.push_back(std::move(name));
  return static_cast<std::uint16_t>(apps_.size() - 1);
}

const std::string& Tracer::app_name(std::uint16_t app) const {
  WASP_CHECK_MSG(app < apps_.size(), "bad app index in trace");
  return apps_[app];
}

void Tracer::set_sink(RecordSink* sink, std::size_t flush_rows) {
  WASP_CHECK_MSG(sink == nullptr || flush_rows > 0,
                 "sink flush threshold must be positive");
  sink_ = sink;
  sink_flush_rows_ = flush_rows;
}

void Tracer::flush_sink() {
  if (sink_ == nullptr || records_.empty()) return;
  sink_->append(records_);
  spilled_ += records_.size();
  records_.clear();
}

std::string Tracer::path_of(const FileKey& key, int node) const {
  if (!key.valid()) return "";
  auto& fs = filesystem(key.fs);
  auto& ns = fs.ns(fs::ProcSite{fs.shared() ? 0 : node, 0});
  if (key.file < ns.inodes().size()) {
    return ns.inodes()[key.file].path;
  }
  return "";
}

}  // namespace wasp::trace
