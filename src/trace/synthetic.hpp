// Deterministic synthetic trace generator, shared by the store/analyzer
// tests and the analyzer micro-benchmark. Big enough traces span many
// storage chunks, and every column varies so a transposition bug can't
// hide. Same seed + same options => the exact same records, always.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace wasp::trace {

/// Value ranges for the generator. The defaults reproduce the original
/// store-test trace byte for byte; kernel-coverage tests widen them so
/// CPU/GPU spans, every op, and invalid file keys all appear.
struct SyntheticOpts {
  std::uint64_t apps = 5;
  std::uint64_t ranks = 64;
  std::uint64_t nodes = 8;
  std::uint64_t ifaces = 3;  ///< 7 covers kCpu/kGpu/kMpi as well
  std::uint64_t ops = 8;     ///< 14 covers compute + communication ops
  std::uint64_t filesystems = 2;
  std::uint64_t files = 97;
  /// Every files_per_invalid-th file id becomes kInvalidFile (0 disables),
  /// exercising the file-less row path.
  std::uint64_t files_per_invalid = 0;
};

inline std::vector<Record> synthetic_records(std::size_t n,
                                             const SyntheticOpts& o = {}) {
  std::vector<Record> records(n);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t t = 1ull << 40;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
  };
  for (std::size_t i = 0; i < n; ++i) {
    auto& r = records[i];
    r.app = static_cast<std::uint16_t>(next() % o.apps);
    r.rank = static_cast<std::int32_t>(next() % o.ranks);
    r.node = static_cast<std::int32_t>(next() % o.nodes);
    r.iface = static_cast<Iface>(next() % o.ifaces);
    r.op = static_cast<Op>(next() % o.ops);
    const auto fs_id = next() % o.filesystems;
    const auto file_id = next() % o.files;
    r.file = {static_cast<std::int16_t>(fs_id),
              static_cast<fs::FileId>(file_id)};
    if (o.files_per_invalid != 0 && file_id % o.files_per_invalid == 0) {
      r.file = {};  // file-less row (e.g. a barrier or readdir on no fd)
    }
    r.offset = next() % (1ull << 40);
    r.size = next() % (1ull << 22);
    r.count = static_cast<std::uint32_t>(next() % 1000);
    // Time marches forward like a real trace (monotone tstart).
    t += next() % (1ull << 20);
    r.tstart = t;
    r.tend = r.tstart + next() % (1ull << 20);
  }
  return records;
}

}  // namespace wasp::trace
