#include "workloads/ior.hpp"

#include <algorithm>
#include <string>

#include "io/posix.hpp"
#include "pattern/replayer.hpp"

namespace wasp::workloads {
namespace {

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, int rank, IorParams P) {
  runtime::Proc p(sim, app, rank, comm.node_of(rank), &comm);
  io::Posix posix(p);
  const std::string dir =
      P.target_dir.empty() ? sim.pfs().mount() + "/ior/" : P.target_dir;
  const std::string path =
      P.file_per_process ? dir + "data." + std::to_string(rank)
                         : dir + "data.shared";
  const auto ops = static_cast<std::uint32_t>(
      std::max<util::Bytes>(P.block / P.transfer, 1));
  const util::Bytes offset =
      P.file_per_process
          ? 0
          : static_cast<util::Bytes>(rank) * P.block;

  co_await p.barrier();
  auto w = co_await posix.open(path, io::OpenMode::kWrite);
  co_await posix.pwrite(w, offset, P.transfer, ops);
  co_await posix.close(w);
  co_await p.barrier();

  if (P.read_back) {
    auto r = co_await posix.open(path, io::OpenMode::kRead);
    co_await posix.pread(r, offset, P.transfer, ops);
    co_await posix.close(r);
    co_await p.barrier();
  }
}

/// Compile the benchmark into the pattern IR; replaying it is
/// byte-identical to rank_body() above.
pattern::JobPattern compile_ior(runtime::Simulation& sim, const IorParams& P) {
  namespace po = pattern::ops;
  using pattern::Expr;
  const auto lit = [](auto v) {
    return Expr::lit(static_cast<std::int64_t>(v));
  };

  const std::string dir =
      P.target_dir.empty() ? sim.pfs().mount() + "/ior/" : P.target_dir;
  const std::string path =
      P.file_per_process ? dir + "data.{rank}" : dir + "data.shared";
  const auto ops = std::max<util::Bytes>(P.block / P.transfer, 1);
  const Expr offset = P.file_per_process
                          ? Expr::lit(0)
                          : Expr("rank * " + std::to_string(P.block));

  pattern::JobPattern pat;
  pat.name = "ior";
  pat.apps = {"ior"};
  pat.comms.push_back({"world", P.nodes * P.ranks_per_node, P.nodes, false});

  pattern::LaneGroup g;
  g.comm = "world";

  pattern::PhasePattern ph;
  ph.app = "ior";
  ph.ops.push_back(po::barrier());
  ph.ops.push_back(
      po::open(pattern::Layer::kPosix, "w", path, io::OpenMode::kWrite));
  ph.ops.push_back(po::pwrite("w", offset, lit(P.transfer), lit(ops)));
  ph.ops.push_back(po::close(pattern::Layer::kPosix, "w"));
  ph.ops.push_back(po::barrier());
  if (P.read_back) {
    ph.ops.push_back(
        po::open(pattern::Layer::kPosix, "r", path, io::OpenMode::kRead));
    ph.ops.push_back(po::pread("r", offset, lit(P.transfer), lit(ops)));
    ph.ops.push_back(po::close(pattern::Layer::kPosix, "r"));
    ph.ops.push_back(po::barrier());
  }

  g.phases.push_back(std::move(ph));
  pat.groups.push_back(std::move(g));
  return pat;
}

}  // namespace

IorParams IorParams::test() {
  IorParams P;
  P.nodes = 2;
  P.ranks_per_node = 2;
  P.block = 64 * util::kMiB;
  P.transfer = 4 * util::kMiB;
  return P;
}

Workload make_ior(const IorParams& params) {
  Workload w;
  w.decl.name = "IOR";
  w.decl.data_repr = "1D";
  w.decl.dataset_format = "bin";
  w.decl.cpu_cores_used_per_node = params.ranks_per_node;
  w.compile = [params](runtime::Simulation& sim, const advisor::RunConfig&) {
    return compile_ior(sim, params);
  };
  w.launch = [params](runtime::Simulation& sim, const advisor::RunConfig&) {
    pattern::replay(sim, compile_ior(sim, params));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig&) {
    const auto app = sim.tracer().register_app("ior");
    auto& comm = sim.add_comm(params.nodes * params.ranks_per_node,
                              params.nodes);
    for (int r = 0; r < comm.size(); ++r) {
      sim.engine().spawn(rank_body(sim, app, comm, r, params));
    }
  };
  return w;
}

std::pair<double, double> measure_ior(const cluster::ClusterSpec& spec,
                                      const IorParams& params) {
  // IOR reports the bandwidth of each phase separately; drop the client
  // cache so the read phase measures the servers, not local reuse.
  runtime::Simulation sim(spec);
  sim.pfs().set_client_cache_enabled(false);
  auto out = run_with(sim, make_ior(params), advisor::RunConfig{},
                      analysis::Analyzer::Options{});
  const double total = static_cast<double>(params.block) *
                       params.nodes * params.ranks_per_node;
  // Phase durations from the profile: write phase is the span of write
  // ops, read phase the span of reads.
  sim::Time w0 = ~sim::Time{0};
  sim::Time w1 = 0;
  sim::Time r0 = ~sim::Time{0};
  sim::Time r1 = 0;
  for (const auto& rec : sim.tracer().records()) {
    if (rec.op == trace::Op::kWrite) {
      w0 = std::min(w0, rec.tstart);
      w1 = std::max(w1, rec.tend);
    } else if (rec.op == trace::Op::kRead) {
      r0 = std::min(r0, rec.tstart);
      r1 = std::max(r1, rec.tend);
    }
  }
  const double write_bw =
      w1 > w0 ? total / sim::to_seconds(w1 - w0) / 1e9 : 0.0;
  const double read_bw =
      r1 > r0 ? total / sim::to_seconds(r1 - r0) / 1e9 : 0.0;
  return {write_bw, read_bw};
}

}  // namespace wasp::workloads
