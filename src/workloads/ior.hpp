// IOR-style synthetic benchmark — the tool the paper's Table IX uses to
// establish the shared-storage bandwidth envelope ("64GB/s using 32 node
// IOR"). Sequential block writes then reads, file-per-process or shared.
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct IorParams {
  int nodes = 32;
  int ranks_per_node = 1;
  util::Bytes block = util::kGiB;       ///< per-rank volume
  util::Bytes transfer = 16 * util::kMiB;
  bool file_per_process = true;
  bool read_back = true;
  std::string target_dir;  ///< default: "<pfs mount>/ior/"

  static IorParams paper() { return IorParams{}; }
  static IorParams test();
};

Workload make_ior(const IorParams& params = IorParams{});

/// Convenience: run IOR and return (write GB/s, read GB/s) aggregate.
std::pair<double, double> measure_ior(const cluster::ClusterSpec& spec,
                                      const IorParams& params);

}  // namespace wasp::workloads
