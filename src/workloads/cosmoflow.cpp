#include "workloads/cosmoflow.hpp"

#include <algorithm>
#include <string>

#include "advisor/pattern_rewrites.hpp"
#include "io/hdf5.hpp"
#include "io/posix.hpp"
#include "pattern/replayer.hpp"
#include "sim/waitgroup.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kDatasetDir = "/p/gpfs1/cosmoflow/data/";
constexpr const char* kCheckpointPath = "/p/gpfs1/cosmoflow/model.ckpt";

std::string file_path(std::uint64_t i) {
  return kDatasetDir + std::to_string(i) + ".h5";
}

sim::Task<void> stage_writer(runtime::Simulation& s, std::uint16_t a, int id,
                             int stride, CosmoflowParams params) {
  runtime::Proc p(s, a, id, id % params.nodes);
  io::Posix posix(p);
  for (std::uint64_t i = static_cast<std::uint64_t>(id); i < params.files;
       i += static_cast<std::uint64_t>(stride)) {
    auto f = co_await posix.open(file_path(i), io::OpenMode::kWrite);
    co_await posix.write(f, params.file_size, 1);
    co_await posix.close(f);
  }
}

sim::Task<void> stage_dataset(runtime::Simulation& sim, CosmoflowParams P) {
  const auto app = sim.tracer().register_app("cosmoflow-stage");
  // Stage with several parallel writers to keep setup simulated-time sane.
  sim::WaitGroup wg(sim.engine());
  const int writers = std::min(P.nodes, 16);
  for (int w = 0; w < writers; ++w) {
    wg.launch(stage_writer(sim, app, w, writers, P));
  }
  co_await wg.wait();
}

/// One GPU process. `comm` is the per-node group used for collective I/O;
/// `rank` is the global trace identity, `local` the comm rank.
sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, mpi::Comm& world, int rank,
                          int local, int node, CosmoflowParams P,
                          advisor::RunConfig cfg) {
  runtime::Proc p(sim, app, rank, node, &comm, local);
  io::Posix posix(p);
  io::Hdf5 hdf5(p, cfg.mpiio);
  util::Rng rng = util::Rng(0xC05).fork(static_cast<std::uint64_t>(rank));

  const auto ppn = static_cast<util::Bytes>(comm.size());
  const util::Bytes per_rank = P.file_size / ppn;
  const auto reads_per_file = static_cast<std::uint32_t>(
      std::max<util::Bytes>(per_rank / P.transfer, 1));

  // Optimized configuration: MPIFileUtils-style parallel preload of this
  // node's shard into node-local storage before training (§V-A).
  const bool preload = cfg.preload_input_to_node_local;
  const std::string tier_mount =
      preload ? sim.node_local(cfg.node_local_tier).mount() : "";
  if (preload) {
    for (std::uint64_t i = static_cast<std::uint64_t>(node);
         i < P.files; i += static_cast<std::uint64_t>(P.nodes)) {
      // Files of this node are split among its local ranks.
      if (i / static_cast<std::uint64_t>(P.nodes) % ppn !=
          static_cast<std::uint64_t>(local)) {
        continue;
      }
      co_await posix.stat(file_path(i));
      auto src = co_await posix.open(file_path(i), io::OpenMode::kRead);
      auto dst = co_await posix.open(tier_mount + "/cosmoflow/" +
                                         std::to_string(i) + ".h5",
                                     io::OpenMode::kWrite);
      const util::Bytes chunk = 4 * util::kMiB;
      const auto chunks = static_cast<std::uint32_t>(
          std::max<util::Bytes>(P.file_size / chunk, 1));
      // MPIFileUtils pacing: the copy pipeline (checksum, attribute copy,
      // small-file bookkeeping) bounds per-node staging throughput; the
      // whole paced copy is what the tracer sees as the read.
      const sim::Time copy_start = p.now();
      {
        runtime::Proc::Suppression mute(p);
        co_await posix.read(src, chunk, chunks);
      }
      const auto floor_ns = static_cast<sim::Time>(
          static_cast<double>(P.file_size) * static_cast<double>(ppn) /
          P.preload_node_bps * 1e9);
      const sim::Time elapsed = p.now() - copy_start;
      if (elapsed < floor_ns) {
        co_await sim::Delay(p.engine(), floor_ns - elapsed);
      }
      p.record(trace::Iface::kPosix, trace::Op::kRead, src.key(), 0, chunk,
               chunks, copy_start);
      co_await posix.write(dst, chunk, chunks);
      co_await posix.close(src);
      co_await posix.close(dst);
    }
    co_await p.barrier();
  }

  // Training: one pass over this node's shard of the dataset, collective
  // HDF5 reads interleaved with GPU compute.
  io::Hdf5Config h5cfg;
  h5cfg.use_mpiio = true;
  h5cfg.chunk_size = cfg.hdf5_chunking ? cfg.hdf5_chunk_size : 0;
  h5cfg.meta_reads_per_open = 8;  // unchunked: deep object-header walk
  h5cfg.meta_reads_per_access = 1;
  std::uint64_t processed = 0;
  const int checkpoint_every =
      P.checkpoints > 0
          ? std::max<int>(static_cast<int>(P.files_per_node() /
                                           static_cast<std::uint64_t>(
                                               P.checkpoints + 1)),
                          1)
          : 0;
  for (std::uint64_t i = static_cast<std::uint64_t>(node); i < P.files;
       i += static_cast<std::uint64_t>(P.nodes)) {
    const std::string path =
        preload ? tier_mount + "/cosmoflow/" + std::to_string(i) + ".h5"
                : file_path(i);
    auto f = co_await hdf5.open(path, io::OpenMode::kRead, h5cfg);
    co_await hdf5.read(f, static_cast<util::Bytes>(local) * per_rank,
                       P.transfer, reads_per_file);
    co_await hdf5.close(f);
    co_await p.gpu_compute(static_cast<sim::Time>(
        static_cast<double>(P.gpu_per_file) * (0.95 + 0.1 * rng.uniform())));
    // Synchronous data-parallel step: gradient allreduce across the whole
    // job keeps the nodes' I/O windows aligned (and paces the input
    // pipeline at the slowest reader, as LBANN does).
    {
      const sim::Time t0 = p.now();
      co_await world.allreduce(16 * util::kMiB);
      p.record(trace::Iface::kMpi, trace::Op::kSendRecv, {}, 0,
               16 * util::kMiB, 1, t0);
    }
    ++processed;

    // Periodic model checkpoint from the global rank 0.
    if (rank == 0 && checkpoint_every > 0 &&
        processed % static_cast<std::uint64_t>(checkpoint_every) == 0) {
      auto ck = co_await posix.open(kCheckpointPath, io::OpenMode::kWrite);
      co_await posix.write(
          ck, P.checkpoint_transfer,
          static_cast<std::uint32_t>(std::max<util::Bytes>(
              P.checkpoint_bytes / P.checkpoint_transfer, 1)));
      co_await posix.close(ck);
    }
  }
  co_await p.barrier();
}

/// Compile the training pass into the pattern IR. The §IV-D.1 preload is
/// NOT modeled here: the baseline pattern carries a "preload.*" meta block
/// and the advisor's apply_preload() rewrite grafts the paced stage-in
/// onto it — so cfg.preload_input_to_node_local and the what-if rewrite
/// produce the same pattern by construction.
pattern::JobPattern compile_cosmoflow(runtime::Simulation& sim,
                                      const CosmoflowParams& P,
                                      const advisor::RunConfig& cfg) {
  namespace po = pattern::ops;
  using pattern::Expr;
  const auto lit = [](auto v) {
    return Expr::lit(static_cast<std::int64_t>(v));
  };

  const auto ppn = static_cast<util::Bytes>(P.procs_per_node);
  const util::Bytes per_rank = P.file_size / ppn;
  const auto reads_per_file =
      std::max<util::Bytes>(per_rank / P.transfer, 1);
  const int checkpoint_every =
      P.checkpoints > 0
          ? std::max<int>(static_cast<int>(
                              P.files_per_node() /
                              static_cast<std::uint64_t>(P.checkpoints + 1)),
                          1)
          : 0;
  const auto preload_floor_ns = static_cast<std::uint64_t>(
      static_cast<double>(P.file_size) * static_cast<double>(ppn) /
      P.preload_node_bps * 1e9);
  const std::string kN = std::to_string(P.nodes);

  pattern::JobPattern pat;
  pat.name = "cosmoflow";
  pat.apps = {"cosmoflow"};
  pat.comms.push_back({"world", P.nodes * P.procs_per_node, P.nodes, false});
  pat.comms.push_back({"nodecomm", P.procs_per_node, P.nodes, true});

  pattern::LaneGroup g;
  g.comm = "nodecomm";
  g.rng_seed = 0xC05;
  g.mpiio = cfg.mpiio;
  g.hdf5.use_mpiio = true;
  g.hdf5.chunk_size = cfg.hdf5_chunking ? cfg.hdf5_chunk_size : 0;
  g.hdf5.meta_reads_per_open = 8;  // unchunked: deep object-header walk
  g.hdf5.meta_reads_per_access = 1;

  pattern::PhasePattern ph;
  ph.app = "cosmoflow";

  // One pass over this node's shard: collective HDF5 reads + GPU compute +
  // gradient allreduce, with periodic rank-0 checkpoints.
  std::vector<pattern::Op> file_body;
  file_body.push_back(po::open(pattern::Layer::kHdf5, "f",
                               std::string(kDatasetDir) + "{i}.h5",
                               io::OpenMode::kRead));
  file_body.push_back(po::read(pattern::Layer::kHdf5, "f", lit(P.transfer),
                               lit(reads_per_file),
                               Expr("local * " + std::to_string(per_rank))));
  file_body.push_back(po::close(pattern::Layer::kHdf5, "f"));
  file_body.push_back(po::gpu_compute(P.gpu_per_file, 0.95, 0.1));
  file_body.push_back(po::allreduce("world", lit(16 * util::kMiB)));
  if (checkpoint_every > 0) {
    std::vector<pattern::Op> ck;
    ck.push_back(po::open(pattern::Layer::kPosix, "ck", kCheckpointPath,
                          io::OpenMode::kWrite));
    ck.push_back(po::write(
        pattern::Layer::kPosix, "ck", lit(P.checkpoint_transfer),
        lit(std::max<util::Bytes>(P.checkpoint_bytes / P.checkpoint_transfer,
                                  1))));
    ck.push_back(po::close(pattern::Layer::kPosix, "ck"));
    file_body.push_back(po::when(
        Expr("rank == 0 && ((i - node) / " + kN + " + 1) % " +
             std::to_string(checkpoint_every) + " == 0"),
        std::move(ck)));
  }
  ph.ops.push_back(po::loop("i", Expr("node"), lit(P.files),
                            std::move(file_body), Expr(kN)));
  ph.ops.push_back(po::barrier());

  g.phases.push_back(std::move(ph));
  pat.groups.push_back(std::move(g));

  // Preload what-if inputs (§IV-D.1 / Fig. 7): enough for apply_preload()
  // to graft the paced stage-in onto a dumped pattern.
  pat.set_meta("preload.src_dir", kDatasetDir);
  pat.set_meta("preload.suffix", ".h5");
  pat.set_meta("preload.files", std::to_string(P.files));
  pat.set_meta("preload.nodes", std::to_string(P.nodes));
  pat.set_meta("preload.ppn", std::to_string(P.procs_per_node));
  pat.set_meta("preload.file_size", std::to_string(P.file_size));
  pat.set_meta("preload.chunk", std::to_string(4 * util::kMiB));
  pat.set_meta("preload.floor_ns", std::to_string(preload_floor_ns));

  if (cfg.preload_input_to_node_local) {
    advisor::PreloadSpec spec;
    const bool ok = advisor::preload_spec_from_meta(
        pat, sim.node_local(cfg.node_local_tier).mount(), &spec);
    WASP_CHECK_MSG(ok, "cosmoflow: preload meta missing");
    advisor::apply_preload(pat, spec);
  }
  return pat;
}

}  // namespace

CosmoflowParams CosmoflowParams::test() {
  CosmoflowParams P;
  P.nodes = 2;
  P.procs_per_node = 2;
  P.files = 16;
  P.file_size = 4 * util::kMiB;
  P.transfer = util::kMiB;
  P.gpu_per_file = sim::seconds(0.1);
  P.checkpoints = 2;
  P.checkpoint_bytes = 400 * util::kKB;
  return P;
}

Workload make_cosmoflow(const CosmoflowParams& params) {
  Workload w;
  w.decl.name = "Cosmoflow";
  w.decl.data_repr = "3D";
  w.decl.data_distribution = "gamma";
  w.decl.dataset_format = "HDF5";
  w.decl.format_attributes = "chunk: NA, #datasets: 1, #dims: 3";
  w.decl.file_size_dist = util::format_bytes(params.file_size);
  w.decl.job_time_limit_hours = 6;
  w.decl.cpu_cores_used_per_node = params.procs_per_node;
  w.decl.gpus_used_per_node = params.procs_per_node;
  w.decl.app_memory_per_node = 60 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_dataset(sim, params);
  };
  w.compile = [params](runtime::Simulation& sim,
                       const advisor::RunConfig& cfg) {
    return compile_cosmoflow(sim, params, cfg);
  };
  w.launch = [params](runtime::Simulation& sim,
                      const advisor::RunConfig& cfg) {
    pattern::replay(sim, compile_cosmoflow(sim, params, cfg));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig& cfg) {
    const auto app = sim.tracer().register_app("cosmoflow");
    auto& world = sim.add_comm(params.nodes * params.procs_per_node,
                               params.nodes);
    for (int node = 0; node < params.nodes; ++node) {
      // Per-node communicator: local ranks 0..ppn-1 all mapped to `node`.
      std::vector<int> map(static_cast<std::size_t>(params.procs_per_node),
                           node);
      auto& node_comm = sim.add_comm_mapped(std::move(map));
      for (int local = 0; local < params.procs_per_node; ++local) {
        const int rank = node * params.procs_per_node + local;
        sim.engine().spawn(rank_body(sim, app, node_comm, world, rank, local,
                                     node, params, cfg));
      }
    }
  };
  return w;
}

}  // namespace wasp::workloads
