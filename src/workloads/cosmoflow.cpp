#include "workloads/cosmoflow.hpp"

#include <algorithm>

#include "io/hdf5.hpp"
#include "io/posix.hpp"
#include "sim/waitgroup.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kDatasetDir = "/p/gpfs1/cosmoflow/data/";
constexpr const char* kCheckpointPath = "/p/gpfs1/cosmoflow/model.ckpt";

std::string file_path(std::uint64_t i) {
  return kDatasetDir + std::to_string(i) + ".h5";
}

sim::Task<void> stage_writer(runtime::Simulation& s, std::uint16_t a, int id,
                             int stride, CosmoflowParams params) {
  runtime::Proc p(s, a, id, id % params.nodes);
  io::Posix posix(p);
  for (std::uint64_t i = static_cast<std::uint64_t>(id); i < params.files;
       i += static_cast<std::uint64_t>(stride)) {
    auto f = co_await posix.open(file_path(i), io::OpenMode::kWrite);
    co_await posix.write(f, params.file_size, 1);
    co_await posix.close(f);
  }
}

sim::Task<void> stage_dataset(runtime::Simulation& sim, CosmoflowParams P) {
  const auto app = sim.tracer().register_app("cosmoflow-stage");
  // Stage with several parallel writers to keep setup simulated-time sane.
  sim::WaitGroup wg(sim.engine());
  const int writers = std::min(P.nodes, 16);
  for (int w = 0; w < writers; ++w) {
    wg.launch(stage_writer(sim, app, w, writers, P));
  }
  co_await wg.wait();
}

/// One GPU process. `comm` is the per-node group used for collective I/O;
/// `rank` is the global trace identity, `local` the comm rank.
sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, mpi::Comm& world, int rank,
                          int local, int node, CosmoflowParams P,
                          advisor::RunConfig cfg) {
  runtime::Proc p(sim, app, rank, node, &comm, local);
  io::Posix posix(p);
  io::Hdf5 hdf5(p, cfg.mpiio);
  util::Rng rng = util::Rng(0xC05).fork(static_cast<std::uint64_t>(rank));

  const auto ppn = static_cast<util::Bytes>(comm.size());
  const util::Bytes per_rank = P.file_size / ppn;
  const auto reads_per_file = static_cast<std::uint32_t>(
      std::max<util::Bytes>(per_rank / P.transfer, 1));

  // Optimized configuration: MPIFileUtils-style parallel preload of this
  // node's shard into node-local storage before training (§V-A).
  const bool preload = cfg.preload_input_to_node_local;
  const std::string tier_mount =
      preload ? sim.node_local(cfg.node_local_tier).mount() : "";
  if (preload) {
    for (std::uint64_t i = static_cast<std::uint64_t>(node);
         i < P.files; i += static_cast<std::uint64_t>(P.nodes)) {
      // Files of this node are split among its local ranks.
      if (i / static_cast<std::uint64_t>(P.nodes) % ppn !=
          static_cast<std::uint64_t>(local)) {
        continue;
      }
      co_await posix.stat(file_path(i));
      auto src = co_await posix.open(file_path(i), io::OpenMode::kRead);
      auto dst = co_await posix.open(tier_mount + "/cosmoflow/" +
                                         std::to_string(i) + ".h5",
                                     io::OpenMode::kWrite);
      const util::Bytes chunk = 4 * util::kMiB;
      const auto chunks = static_cast<std::uint32_t>(
          std::max<util::Bytes>(P.file_size / chunk, 1));
      // MPIFileUtils pacing: the copy pipeline (checksum, attribute copy,
      // small-file bookkeeping) bounds per-node staging throughput; the
      // whole paced copy is what the tracer sees as the read.
      const sim::Time copy_start = p.now();
      {
        runtime::Proc::Suppression mute(p);
        co_await posix.read(src, chunk, chunks);
      }
      const auto floor_ns = static_cast<sim::Time>(
          static_cast<double>(P.file_size) * static_cast<double>(ppn) /
          P.preload_node_bps * 1e9);
      const sim::Time elapsed = p.now() - copy_start;
      if (elapsed < floor_ns) {
        co_await sim::Delay(p.engine(), floor_ns - elapsed);
      }
      p.record(trace::Iface::kPosix, trace::Op::kRead, src.key(), 0, chunk,
               chunks, copy_start);
      co_await posix.write(dst, chunk, chunks);
      co_await posix.close(src);
      co_await posix.close(dst);
    }
    co_await p.barrier();
  }

  // Training: one pass over this node's shard of the dataset, collective
  // HDF5 reads interleaved with GPU compute.
  io::Hdf5Config h5cfg;
  h5cfg.use_mpiio = true;
  h5cfg.chunk_size = cfg.hdf5_chunking ? cfg.hdf5_chunk_size : 0;
  h5cfg.meta_reads_per_open = 8;  // unchunked: deep object-header walk
  h5cfg.meta_reads_per_access = 1;
  std::uint64_t processed = 0;
  const int checkpoint_every =
      P.checkpoints > 0
          ? std::max<int>(static_cast<int>(P.files_per_node() /
                                           static_cast<std::uint64_t>(
                                               P.checkpoints + 1)),
                          1)
          : 0;
  for (std::uint64_t i = static_cast<std::uint64_t>(node); i < P.files;
       i += static_cast<std::uint64_t>(P.nodes)) {
    const std::string path =
        preload ? tier_mount + "/cosmoflow/" + std::to_string(i) + ".h5"
                : file_path(i);
    auto f = co_await hdf5.open(path, io::OpenMode::kRead, h5cfg);
    co_await hdf5.read(f, static_cast<util::Bytes>(local) * per_rank,
                       P.transfer, reads_per_file);
    co_await hdf5.close(f);
    co_await p.gpu_compute(static_cast<sim::Time>(
        static_cast<double>(P.gpu_per_file) * (0.95 + 0.1 * rng.uniform())));
    // Synchronous data-parallel step: gradient allreduce across the whole
    // job keeps the nodes' I/O windows aligned (and paces the input
    // pipeline at the slowest reader, as LBANN does).
    {
      const sim::Time t0 = p.now();
      co_await world.allreduce(16 * util::kMiB);
      p.record(trace::Iface::kMpi, trace::Op::kSendRecv, {}, 0,
               16 * util::kMiB, 1, t0);
    }
    ++processed;

    // Periodic model checkpoint from the global rank 0.
    if (rank == 0 && checkpoint_every > 0 &&
        processed % static_cast<std::uint64_t>(checkpoint_every) == 0) {
      auto ck = co_await posix.open(kCheckpointPath, io::OpenMode::kWrite);
      co_await posix.write(
          ck, P.checkpoint_transfer,
          static_cast<std::uint32_t>(std::max<util::Bytes>(
              P.checkpoint_bytes / P.checkpoint_transfer, 1)));
      co_await posix.close(ck);
    }
  }
  co_await p.barrier();
}

}  // namespace

CosmoflowParams CosmoflowParams::test() {
  CosmoflowParams P;
  P.nodes = 2;
  P.procs_per_node = 2;
  P.files = 16;
  P.file_size = 4 * util::kMiB;
  P.transfer = util::kMiB;
  P.gpu_per_file = sim::seconds(0.1);
  P.checkpoints = 2;
  P.checkpoint_bytes = 400 * util::kKB;
  return P;
}

Workload make_cosmoflow(const CosmoflowParams& params) {
  Workload w;
  w.decl.name = "Cosmoflow";
  w.decl.data_repr = "3D";
  w.decl.data_distribution = "gamma";
  w.decl.dataset_format = "HDF5";
  w.decl.format_attributes = "chunk: NA, #datasets: 1, #dims: 3";
  w.decl.file_size_dist = util::format_bytes(params.file_size);
  w.decl.job_time_limit_hours = 6;
  w.decl.cpu_cores_used_per_node = params.procs_per_node;
  w.decl.gpus_used_per_node = params.procs_per_node;
  w.decl.app_memory_per_node = 60 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_dataset(sim, params);
  };
  w.launch = [params](runtime::Simulation& sim,
                      const advisor::RunConfig& cfg) {
    const auto app = sim.tracer().register_app("cosmoflow");
    auto& world = sim.add_comm(params.nodes * params.procs_per_node,
                               params.nodes);
    for (int node = 0; node < params.nodes; ++node) {
      // Per-node communicator: local ranks 0..ppn-1 all mapped to `node`.
      std::vector<int> map(static_cast<std::size_t>(params.procs_per_node),
                           node);
      auto& node_comm = sim.add_comm_mapped(std::move(map));
      for (int local = 0; local < params.procs_per_node; ++local) {
        const int rank = node * params.procs_per_node + local;
        sim.engine().spawn(rank_body(sim, app, node_comm, world, rank, local,
                                     node, params, cfg));
      }
    }
  };
  return w;
}

}  // namespace wasp::workloads
