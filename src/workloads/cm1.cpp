#include "workloads/cm1.hpp"

#include <algorithm>
#include <memory>
#include <string>

#include "io/posix.hpp"
#include "pattern/replayer.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kConfigDir = "/p/gpfs1/cm1/config/";
constexpr const char* kOutputDir = "/p/gpfs1/cm1/out/";
constexpr const char* kRestartPath = "/p/gpfs1/cm1/restart.dat";

sim::Task<void> stage_inputs(runtime::Simulation& sim, Cm1Params P) {
  const auto app = sim.tracer().register_app("cm1-stage");
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  for (int i = 0; i < P.config_files; ++i) {
    auto f = co_await posix.open(kConfigDir + std::to_string(i),
                                 io::OpenMode::kWrite);
    co_await posix.write(f, P.config_file_size, 1);
    co_await posix.close(f);
  }
}

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, int rank, Cm1Params P) {
  runtime::Proc p(sim, app, rank, comm.node_of(rank), &comm);
  io::Posix posix(p);
  util::Rng rng = util::Rng(0xC31).fork(static_cast<std::uint64_t>(rank));

  // Phase 1: every rank reads one 16MB configuration file (shared access:
  // many ranks map to the same file).
  {
    const int cfg = rank % P.config_files;
    auto f = co_await posix.open(kConfigDir + std::to_string(cfg),
                                 io::OpenMode::kRead);
    co_await posix.read(f, P.config_file_size / 4, 4);
    co_await posix.close(f);
  }
  co_await p.barrier();

  const int total_procs = comm.size();
  const auto out_file_bytes =
      P.output_total / static_cast<util::Bytes>(P.output_files);
  const auto writes_per_file = static_cast<std::uint32_t>(
      std::max<util::Bytes>(out_file_bytes / P.write_transfer, 1));
  const int checkpoint_every =
      P.checkpoints > 0 ? std::max(P.steps / P.checkpoints, 1) : P.steps + 1;

  int next_output = 0;
  for (int step = 0; step < P.steps; ++step) {
    // Compute phase (all ranks, slight per-rank jitter).
    const double jitter = 0.97 + 0.06 * rng.uniform();
    co_await p.compute(static_cast<sim::Time>(
        static_cast<double>(P.compute_per_step) * jitter));

    // Output phase: rank 0 writes this step's share of the output files in
    // 4KB sequential transfers, seeking between variable regions.
    if (rank == 0) {
      const int files_this_step =
          (P.output_files * (step + 1)) / P.steps - next_output;
      for (int k = 0; k < files_this_step; ++k, ++next_output) {
        auto f = co_await posix.open(
            kOutputDir + std::to_string(next_output), io::OpenMode::kWrite);
        co_await posix.seek_batch(f, writes_per_file);
        co_await posix.write(f, P.write_transfer, writes_per_file);
        co_await posix.seek_batch(f, writes_per_file);
        co_await posix.close(f);
      }
    }

    // Periodic restart checkpoint: every node-leading rank opens/closes the
    // shared restart file but only rank 0 writes (Fig. 1b).
    if ((step + 1) % checkpoint_every == 0) {
      if (comm.is_node_leader(rank)) {
        auto f = co_await posix.open(kRestartPath, io::OpenMode::kWrite);
        if (rank == 0) {
          const auto bytes = P.restart_size /
                             static_cast<util::Bytes>(
                                 std::max(P.checkpoints, 1));
          co_await posix.write(
              f, P.write_transfer,
              static_cast<std::uint32_t>(
                  std::max<util::Bytes>(bytes / P.write_transfer, 1)));
        }
        co_await posix.close(f);
      }
      co_await p.barrier();
    }
  }
  (void)total_procs;
  co_await p.barrier();
}

/// Compile CM1's step-loop I/O into the pattern IR; replaying it is
/// byte-identical to rank_body() above.
pattern::JobPattern compile_cm1(const Cm1Params& P) {
  namespace po = pattern::ops;
  using pattern::Expr;
  const auto lit = [](auto v) {
    return Expr::lit(static_cast<std::int64_t>(v));
  };

  const auto writes_per_file = std::max<util::Bytes>(
      (P.output_total / static_cast<util::Bytes>(P.output_files)) /
          P.write_transfer,
      1);
  const int checkpoint_every =
      P.checkpoints > 0 ? std::max(P.steps / P.checkpoints, 1) : P.steps + 1;
  const auto ckpt_ops = std::max<util::Bytes>(
      (P.restart_size / static_cast<util::Bytes>(std::max(P.checkpoints, 1))) /
          P.write_transfer,
      1);
  const std::string kOF = std::to_string(P.output_files);
  const std::string kS = std::to_string(P.steps);

  pattern::JobPattern pat;
  pat.name = "cm1";
  pat.apps = {"cm1"};
  pat.comms.push_back({"world", P.nodes * P.ranks_per_node, P.nodes, false});

  pattern::LaneGroup g;
  g.comm = "world";
  g.rng_seed = 0xC31;

  pattern::PhasePattern ph;
  ph.app = "cm1";

  // Phase 1: every rank reads one shared configuration file.
  ph.ops.push_back(po::open(pattern::Layer::kPosix, "cfg",
                            std::string(kConfigDir) + "{rank % " +
                                std::to_string(P.config_files) + "}",
                            io::OpenMode::kRead));
  ph.ops.push_back(po::read(pattern::Layer::kPosix, "cfg",
                            lit(P.config_file_size / 4), lit(4)));
  ph.ops.push_back(po::close(pattern::Layer::kPosix, "cfg"));
  ph.ops.push_back(po::barrier());

  // Step loop: compute, rank-0 output files, periodic shared restart.
  std::vector<pattern::Op> step_body;
  step_body.push_back(po::compute(P.compute_per_step, 0.97, 0.06));
  {
    // Rank 0 writes this step's share of the output files; file index
    // next_output == (OF * step) / S + k.
    std::vector<pattern::Op> file_body;
    file_body.push_back(po::open(
        pattern::Layer::kPosix, "out",
        std::string(kOutputDir) + "{(" + kOF + " * step) / " + kS + " + k}",
        io::OpenMode::kWrite));
    file_body.push_back(
        po::seek_batch(pattern::Layer::kPosix, "out", lit(writes_per_file)));
    file_body.push_back(po::write(pattern::Layer::kPosix, "out",
                                  lit(P.write_transfer),
                                  lit(writes_per_file)));
    file_body.push_back(
        po::seek_batch(pattern::Layer::kPosix, "out", lit(writes_per_file)));
    file_body.push_back(po::close(pattern::Layer::kPosix, "out"));
    std::vector<pattern::Op> rank0;
    rank0.push_back(po::loop("k", Expr::lit(0),
                             Expr("(" + kOF + " * (step + 1)) / " + kS +
                                  " - (" + kOF + " * step) / " + kS),
                             std::move(file_body)));
    step_body.push_back(po::when(Expr("rank == 0"), std::move(rank0)));
  }
  {
    // Every node leader opens/closes the shared restart file; only rank 0
    // writes it (Fig. 1b).
    std::vector<pattern::Op> rank0;
    rank0.push_back(po::write(pattern::Layer::kPosix, "restart",
                              lit(P.write_transfer), lit(ckpt_ops)));
    std::vector<pattern::Op> leader;
    leader.push_back(po::open(pattern::Layer::kPosix, "restart", kRestartPath,
                              io::OpenMode::kWrite));
    leader.push_back(po::when(Expr("rank == 0"), std::move(rank0)));
    leader.push_back(po::close(pattern::Layer::kPosix, "restart"));
    std::vector<pattern::Op> ckpt;
    ckpt.push_back(po::when(Expr("leader"), std::move(leader)));
    ckpt.push_back(po::barrier());
    step_body.push_back(po::when(
        Expr("(step + 1) % " + std::to_string(checkpoint_every) + " == 0"),
        std::move(ckpt)));
  }
  ph.ops.push_back(
      po::loop("step", Expr::lit(0), lit(P.steps), std::move(step_body)));
  ph.ops.push_back(po::barrier());

  g.phases.push_back(std::move(ph));
  pat.groups.push_back(std::move(g));
  return pat;
}

}  // namespace

Cm1Params Cm1Params::test() {
  Cm1Params P;
  P.nodes = 4;
  P.ranks_per_node = 4;
  P.steps = 10;
  P.config_files = 3;
  P.config_file_size = 2 * util::kMiB;
  P.output_files = 12;
  P.output_total = 12 * util::kMiB;
  P.restart_size = 4 * util::kMiB;
  P.checkpoints = 2;
  P.compute_per_step = sim::seconds(0.5);
  return P;
}

Workload make_cm1(const Cm1Params& params) {
  Workload w;
  w.decl.name = "CM1";
  w.decl.data_repr = "3D";
  w.decl.data_distribution = "normal";
  w.decl.dataset_format = "bin";
  w.decl.format_attributes = "type: float, #dims: 3";
  w.decl.file_size_dist = util::format_bytes(params.output_total) + " data / " +
                          util::format_bytes(params.config_file_size) +
                          " config";
  w.decl.job_time_limit_hours = 2;
  w.decl.cpu_cores_used_per_node = params.ranks_per_node;
  w.decl.gpus_used_per_node = 0;
  w.decl.app_memory_per_node = 128 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_inputs(sim, params);
  };
  w.compile = [params](runtime::Simulation&, const advisor::RunConfig&) {
    return compile_cm1(params);
  };
  w.launch = [params](runtime::Simulation& sim, const advisor::RunConfig&) {
    pattern::replay(sim, compile_cm1(params));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig&) {
    const auto app = sim.tracer().register_app("cm1");
    auto& comm = sim.add_comm(params.nodes * params.ranks_per_node,
                              params.nodes);
    for (int r = 0; r < comm.size(); ++r) {
      sim.engine().spawn(rank_body(sim, app, comm, r, params));
    }
  };
  return w;
}

}  // namespace wasp::workloads
