#include "workloads/cm1.hpp"

#include <memory>

#include "io/posix.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kConfigDir = "/p/gpfs1/cm1/config/";
constexpr const char* kOutputDir = "/p/gpfs1/cm1/out/";
constexpr const char* kRestartPath = "/p/gpfs1/cm1/restart.dat";

sim::Task<void> stage_inputs(runtime::Simulation& sim, Cm1Params P) {
  const auto app = sim.tracer().register_app("cm1-stage");
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  for (int i = 0; i < P.config_files; ++i) {
    auto f = co_await posix.open(kConfigDir + std::to_string(i),
                                 io::OpenMode::kWrite);
    co_await posix.write(f, P.config_file_size, 1);
    co_await posix.close(f);
  }
}

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, int rank, Cm1Params P) {
  runtime::Proc p(sim, app, rank, comm.node_of(rank), &comm);
  io::Posix posix(p);
  util::Rng rng = util::Rng(0xC31).fork(static_cast<std::uint64_t>(rank));

  // Phase 1: every rank reads one 16MB configuration file (shared access:
  // many ranks map to the same file).
  {
    const int cfg = rank % P.config_files;
    auto f = co_await posix.open(kConfigDir + std::to_string(cfg),
                                 io::OpenMode::kRead);
    co_await posix.read(f, P.config_file_size / 4, 4);
    co_await posix.close(f);
  }
  co_await p.barrier();

  const int total_procs = comm.size();
  const auto out_file_bytes =
      P.output_total / static_cast<util::Bytes>(P.output_files);
  const auto writes_per_file = static_cast<std::uint32_t>(
      std::max<util::Bytes>(out_file_bytes / P.write_transfer, 1));
  const int checkpoint_every =
      P.checkpoints > 0 ? std::max(P.steps / P.checkpoints, 1) : P.steps + 1;

  int next_output = 0;
  for (int step = 0; step < P.steps; ++step) {
    // Compute phase (all ranks, slight per-rank jitter).
    const double jitter = 0.97 + 0.06 * rng.uniform();
    co_await p.compute(static_cast<sim::Time>(
        static_cast<double>(P.compute_per_step) * jitter));

    // Output phase: rank 0 writes this step's share of the output files in
    // 4KB sequential transfers, seeking between variable regions.
    if (rank == 0) {
      const int files_this_step =
          (P.output_files * (step + 1)) / P.steps - next_output;
      for (int k = 0; k < files_this_step; ++k, ++next_output) {
        auto f = co_await posix.open(
            kOutputDir + std::to_string(next_output), io::OpenMode::kWrite);
        co_await posix.seek_batch(f, writes_per_file);
        co_await posix.write(f, P.write_transfer, writes_per_file);
        co_await posix.seek_batch(f, writes_per_file);
        co_await posix.close(f);
      }
    }

    // Periodic restart checkpoint: every node-leading rank opens/closes the
    // shared restart file but only rank 0 writes (Fig. 1b).
    if ((step + 1) % checkpoint_every == 0) {
      if (comm.is_node_leader(rank)) {
        auto f = co_await posix.open(kRestartPath, io::OpenMode::kWrite);
        if (rank == 0) {
          const auto bytes = P.restart_size /
                             static_cast<util::Bytes>(
                                 std::max(P.checkpoints, 1));
          co_await posix.write(
              f, P.write_transfer,
              static_cast<std::uint32_t>(
                  std::max<util::Bytes>(bytes / P.write_transfer, 1)));
        }
        co_await posix.close(f);
      }
      co_await p.barrier();
    }
  }
  (void)total_procs;
  co_await p.barrier();
}

}  // namespace

Cm1Params Cm1Params::test() {
  Cm1Params P;
  P.nodes = 4;
  P.ranks_per_node = 4;
  P.steps = 10;
  P.config_files = 3;
  P.config_file_size = 2 * util::kMiB;
  P.output_files = 12;
  P.output_total = 12 * util::kMiB;
  P.restart_size = 4 * util::kMiB;
  P.checkpoints = 2;
  P.compute_per_step = sim::seconds(0.5);
  return P;
}

Workload make_cm1(const Cm1Params& params) {
  Workload w;
  w.decl.name = "CM1";
  w.decl.data_repr = "3D";
  w.decl.data_distribution = "normal";
  w.decl.dataset_format = "bin";
  w.decl.format_attributes = "type: float, #dims: 3";
  w.decl.file_size_dist = util::format_bytes(params.output_total) + " data / " +
                          util::format_bytes(params.config_file_size) +
                          " config";
  w.decl.job_time_limit_hours = 2;
  w.decl.cpu_cores_used_per_node = params.ranks_per_node;
  w.decl.gpus_used_per_node = 0;
  w.decl.app_memory_per_node = 128 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_inputs(sim, params);
  };
  w.launch = [params](runtime::Simulation& sim, const advisor::RunConfig&) {
    const auto app = sim.tracer().register_app("cm1");
    auto& comm = sim.add_comm(params.nodes * params.ranks_per_node,
                              params.nodes);
    for (int r = 0; r < comm.size(); ++r) {
      sim.engine().spawn(rank_body(sim, app, comm, r, params));
    }
  };
  return w;
}

}  // namespace wasp::workloads
