#include "workloads/workload.hpp"

#include "analysis/spill_store.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace wasp::workloads {
namespace {

/// Simulate: untraced setup, then the traced job until all roots finish.
void execute(runtime::Simulation& sim, const Workload& workload,
             const advisor::RunConfig& cfg) {
  WASP_CHECK_MSG(static_cast<bool>(workload.launch), "workload has no launch");
  if (workload.setup) {
    sim.tracer().set_enabled(false);
    sim.engine().spawn(workload.setup(sim));
    sim.engine().run();
    sim.tracer().set_enabled(true);
    sim.pfs().drop_client_caches();
  }
  // Faults start with the traced job, never during setup staging. Patterns
  // may also carry a plan; the RunConfig's wins (replay() checks faults()).
  if (cfg.faults.enabled() && sim.faults() == nullptr) {
    sim.install_faults(cfg.faults);
  }
  workload.launch(sim, cfg);
  sim.engine().run();
  WASP_CHECK_MSG(sim.engine().all_roots_done(),
                 "workload deadlocked (roots not done)");
}

/// Characterize + recommend from an already-computed profile.
RunOutput finish(runtime::Simulation& sim, const Workload& workload,
                 analysis::WorkloadProfile profile) {
  RunOutput out;
  out.profile = std::move(profile);
  charz::Characterizer characterizer;
  out.characterization =
      characterizer.characterize(workload.decl, sim.spec(), out.profile);
  advisor::RuleEngine rules;
  out.recommendations = rules.evaluate(out.characterization);
  out.job_seconds = out.profile.job_runtime_sec;
  out.engine_events = sim.engine().events_processed();
  out.pfs_counters = sim.pfs().counters();
  return out;
}

}  // namespace

RunOutput run_with(runtime::Simulation& sim, const Workload& workload,
                   const advisor::RunConfig& cfg,
                   const analysis::Analyzer::Options& analyzer_opts) {
  execute(sim, workload, cfg);
  analysis::Analyzer analyzer(analyzer_opts);
  return finish(sim, workload, analyzer.analyze(sim.tracer()));
}

RunOutput run_spilled(runtime::Simulation& sim, const Workload& workload,
                      const advisor::RunConfig& cfg,
                      const analysis::Analyzer::Options& analyzer_opts,
                      const runtime::SpillPolicy& policy,
                      const std::string& name) {
  analysis::SpillColumnStore::Options store_opts;
  store_opts.dir = policy.dir.empty() ? name + ".spill"
                                      : policy.dir + "/" + name;
  store_opts.chunk_rows = policy.chunk_rows;
  store_opts.max_resident_chunks = policy.max_resident_chunks;
  store_opts.compress = policy.compress;
  analysis::SpillColumnStore store(store_opts);

  sim.tracer().set_sink(&store, policy.flush_rows);
  execute(sim, workload, cfg);
  sim.tracer().flush_sink();
  sim.tracer().set_sink(nullptr);
  store.finalize();

  analysis::Analyzer analyzer(analyzer_opts);
  return finish(sim, workload,
                analyzer.analyze(analysis::tracer_input(sim.tracer(), &store)));
}

RunOutput run(const cluster::ClusterSpec& spec, const Workload& workload,
              const advisor::RunConfig& cfg,
              const analysis::Analyzer::Options& analyzer_opts) {
  runtime::Simulation sim(spec);
  return run_with(sim, workload, cfg, analyzer_opts);
}

std::vector<RunOutput> run_many(const std::vector<Scenario>& scenarios,
                                int jobs) {
  return run_many(scenarios, runtime::ScenarioRunner(jobs));
}

int effective_jobs(const std::vector<Scenario>& scenarios,
                   const runtime::ScenarioRunner& runner) {
  if (runner.jobs() <= 1 || scenarios.size() <= 1) return 1;
  bool all_estimated = !scenarios.empty();
  std::uint64_t max_est = 0;
  for (const Scenario& s : scenarios) {
    if (s.est_events == 0) all_estimated = false;
    if (s.est_events > max_est) max_est = s.est_events;
  }
  if (all_estimated && max_est < kSerialScenarioEvents) return 1;
  return runner.jobs();
}

std::vector<RunOutput> run_many(const std::vector<Scenario>& scenarios,
                                const runtime::ScenarioRunner& runner) {
  std::vector<std::function<RunOutput()>> fns;
  fns.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    WASP_CHECK_MSG(static_cast<bool>(s.make),
                   "scenario has no workload factory: " + s.name);
    fns.push_back([&s, &runner] {
      // Interned name: scenario spans carry dynamic labels, and the tracer
      // needs storage that outlives this lambda.
      obs::Span span(obs::SpanTracer::instance().enabled()
                         ? obs::SpanTracer::instance().intern("scenario:" +
                                                              s.name)
                         : nullptr);
      runtime::Simulation sim(s.spec);
      if (s.prepare) s.prepare(sim);
      if (runner.spill().has_value()) {
        return run_spilled(sim, s.make(), s.cfg, s.analyzer_opts,
                           *runner.spill(), s.name);
      }
      return run_with(sim, s.make(), s.cfg, s.analyzer_opts);
    });
  }
  if (effective_jobs(scenarios, runner) == 1) {
    // Batch too small for the pool dispatch to pay off: run in order on
    // this thread. Results are bit-identical either way.
    std::vector<RunOutput> out;
    out.reserve(fns.size());
    for (auto& fn : fns) out.push_back(fn());
    return out;
  }
  return runner.run<RunOutput>(fns);
}

}  // namespace wasp::workloads
