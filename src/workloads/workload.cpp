#include "workloads/workload.hpp"

#include "runtime/scenario_runner.hpp"
#include "util/error.hpp"

namespace wasp::workloads {

RunOutput run_with(runtime::Simulation& sim, const Workload& workload,
                   const advisor::RunConfig& cfg,
                   const analysis::Analyzer::Options& analyzer_opts) {
  WASP_CHECK_MSG(static_cast<bool>(workload.launch), "workload has no launch");

  if (workload.setup) {
    sim.tracer().set_enabled(false);
    sim.engine().spawn(workload.setup(sim));
    sim.engine().run();
    sim.tracer().set_enabled(true);
    sim.pfs().drop_client_caches();
  }

  workload.launch(sim, cfg);
  sim.engine().run();
  WASP_CHECK_MSG(sim.engine().all_roots_done(),
                 "workload deadlocked (roots not done)");

  RunOutput out;
  analysis::Analyzer analyzer(analyzer_opts);
  out.profile = analyzer.analyze(sim.tracer());
  charz::Characterizer characterizer;
  out.characterization =
      characterizer.characterize(workload.decl, sim.spec(), out.profile);
  advisor::RuleEngine rules;
  out.recommendations = rules.evaluate(out.characterization);
  out.job_seconds = out.profile.job_runtime_sec;
  out.engine_events = sim.engine().events_processed();
  return out;
}

RunOutput run(const cluster::ClusterSpec& spec, const Workload& workload,
              const advisor::RunConfig& cfg,
              const analysis::Analyzer::Options& analyzer_opts) {
  runtime::Simulation sim(spec);
  return run_with(sim, workload, cfg, analyzer_opts);
}

std::vector<RunOutput> run_many(const std::vector<Scenario>& scenarios,
                                int jobs) {
  std::vector<std::function<RunOutput()>> fns;
  fns.reserve(scenarios.size());
  for (const Scenario& s : scenarios) {
    WASP_CHECK_MSG(static_cast<bool>(s.make),
                   "scenario has no workload factory: " + s.name);
    fns.push_back([&s] {
      return run(s.spec, s.make(), s.cfg, s.analyzer_opts);
    });
  }
  return runtime::ScenarioRunner(jobs).run<RunOutput>(fns);
}

}  // namespace wasp::workloads
