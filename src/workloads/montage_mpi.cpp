#include "workloads/montage_mpi.hpp"

#include <algorithm>
#include <memory>

#include "io/posix.hpp"
#include "io/stdio.hpp"
#include "pattern/replayer.hpp"
#include "sim/sync.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kFitsDir = "/p/gpfs1/montage/fits/";
constexpr const char* kOutDir = "/p/gpfs1/montage/out/";

struct AppIds {
  std::uint16_t project, imgtbl, add, shrink, viewer;
};

/// Cross-stage coordination shared by all spawned coroutines.
struct Sync {
  explicit Sync(sim::Engine& eng)
      : add_start(eng), add_done(eng) {}
  sim::Event add_start;
  sim::Event add_done;
  int stage_nodes_remaining = 0;  ///< nodes still in the pre-add stages
  int add_remaining = 0;          ///< mAddMPI ranks still running
};

std::string intermediate_dir(runtime::Simulation& sim,
                             const advisor::RunConfig& cfg) {
  if (cfg.intermediates_to_node_local) {
    return sim.node_local(cfg.node_local_tier).mount() + "/montage/";
  }
  return "/p/gpfs1/montage/tmp/";
}

sim::Task<void> stage_inputs(runtime::Simulation& sim, MontageMpiParams P) {
  const auto app = sim.tracer().register_app("montage-stage");
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  for (int i = 0; i < P.fits_files; ++i) {
    auto f = co_await posix.open(kFitsDir + std::to_string(i) + ".fits",
                                 io::OpenMode::kWrite);
    co_await posix.write(f, P.fits_size, 1);
    co_await posix.close(f);
  }
}

/// Sequential per-node part of the workflow (everything except mAddMPI).
sim::Task<void> node_driver(runtime::Simulation& sim, AppIds ids,
                            mpi::Comm& node_comm, int node,
                            MontageMpiParams P, advisor::RunConfig cfg,
                            std::shared_ptr<Sync> sync) {
  const std::string tmp = intermediate_dir(sim, cfg);
  util::Rng rng = util::Rng(0x305A1C).fork(static_cast<std::uint64_t>(node));

  // --- Stage 1: mProject ---------------------------------------------------
  {
    runtime::Proc p(sim, ids.project, node, node, &node_comm);
    io::Stdio stdio(p, cfg.stdio_buffer);
    const int first = node * P.fits_files / P.nodes;
    const int last = (node + 1) * P.fits_files / P.nodes;
    auto out = co_await stdio.fopen(tmp + "proj_" + std::to_string(node),
                                    io::OpenMode::kWrite);
    const util::Bytes per_file =
        P.projected_per_node /
        static_cast<util::Bytes>(std::max(last - first, 1));
    for (int i = first; i < last; ++i) {
      auto in = co_await stdio.fopen(kFitsDir + std::to_string(i) + ".fits",
                                     io::OpenMode::kRead);
      co_await stdio.fread(in, P.fits_read_transfer,
                           static_cast<std::uint32_t>(std::max<util::Bytes>(
                               P.fits_size / P.fits_read_transfer, 1)));
      co_await stdio.fclose(in);
      co_await p.compute(static_cast<sim::Time>(
          static_cast<double>(P.project_compute_per_file) *
          (0.9 + 0.2 * rng.uniform())));
      co_await stdio.fwrite(out, P.projected_write_transfer,
                            static_cast<std::uint32_t>(std::max<util::Bytes>(
                                per_file / P.projected_write_transfer, 1)));
    }
    co_await stdio.fclose(out);
    co_await p.barrier();
  }

  // --- Stage 2: mImgtbl ----------------------------------------------------
  {
    runtime::Proc p(sim, ids.imgtbl, node, node, &node_comm);
    io::Posix posix(p);
    const int first = node * P.fits_files / P.nodes;
    const int last = (node + 1) * P.fits_files / P.nodes;
    for (int i = first; i < last; ++i) {
      co_await posix.stat(kFitsDir + std::to_string(i) + ".fits");
    }
    co_await p.compute(P.imgtbl_compute);
    io::Stdio stdio(p, cfg.stdio_buffer);
    auto tbl = co_await stdio.fopen(
        std::string(kOutDir) + "images_" + std::to_string(node) + ".tbl",
        io::OpenMode::kWrite);
    co_await stdio.fwrite(tbl, 4 * util::kKiB, 16);
    co_await stdio.fclose(tbl);
    co_await p.barrier();
  }

  // --- Stage 3: hand off to mAddMPI ---------------------------------------
  if (--sync->stage_nodes_remaining == 0) sync->add_start.set();
  co_await sync->add_done.wait();

  // --- Stage 4: mShrink ----------------------------------------------------
  {
    runtime::Proc p(sim, ids.shrink, node, node, &node_comm);
    io::Stdio stdio(p, cfg.stdio_buffer);
    io::Posix posix(p);
    const util::Bytes mosaic_size =
        posix.size_of(tmp + "mosaic_" + std::to_string(node));
    auto in = co_await stdio.fopen(tmp + "mosaic_" + std::to_string(node),
                                   io::OpenMode::kRead);
    co_await stdio.fread(in, 64 * util::kKiB,
                         static_cast<std::uint32_t>(std::max<util::Bytes>(
                             mosaic_size / 40 / (64 * util::kKiB), 1)));
    co_await stdio.fclose(in);
    co_await p.compute(P.shrink_compute);
    auto out = co_await stdio.fopen(tmp + "shrunk_" + std::to_string(node),
                                    io::OpenMode::kWrite);
    co_await stdio.fwrite(out, 64 * util::kKiB,
                          static_cast<std::uint32_t>(std::max<util::Bytes>(
                              P.shrunk_per_node / (64 * util::kKiB), 1)));
    co_await stdio.fclose(out);
    co_await p.barrier();
  }

  // --- Stage 5: mViewer -----------------------------------------------------
  {
    // Locality-aware placement reads the node's own mosaic; otherwise the
    // viewer is assigned a neighbor's segment (cross-node PFS reads).
    const int src = cfg.locality_aware_placement ||
                            cfg.intermediates_to_node_local
                        ? node
                        : (node + 1) % P.nodes;
    runtime::Proc p(sim, ids.viewer, node, node, &node_comm);
    io::Stdio stdio(p, cfg.stdio_buffer);
    io::Posix posix(p);
    const util::Bytes mosaic_size =
        posix.size_of(tmp + "mosaic_" + std::to_string(src));
    auto in = co_await stdio.fopen(tmp + "mosaic_" + std::to_string(src),
                                   io::OpenMode::kRead);
    co_await stdio.fread(in, P.viewer_read_transfer,
                         static_cast<std::uint32_t>(std::max<util::Bytes>(
                             mosaic_size / P.viewer_read_transfer, 1)));
    co_await stdio.fclose(in);
    co_await p.compute(static_cast<sim::Time>(
        static_cast<double>(P.viewer_compute) * (0.9 + 0.2 * rng.uniform())));
    auto out = co_await stdio.fopen(
        std::string(kOutDir) + "mosaic_" + std::to_string(node) + ".png",
        io::OpenMode::kWrite);
    co_await stdio.fwrite(out, P.png_write_transfer,
                          static_cast<std::uint32_t>(std::max<util::Bytes>(
                              P.png_per_node / P.png_write_transfer, 1)));
    co_await stdio.fclose(out);

    // Node-local tiers are volatile: when intermediates live on shm, the
    // final mosaic segment must be drained back to the PFS at the end
    // (the persistence caveat of §IV-D's Datawarp discussion).
    if (cfg.intermediates_to_node_local) {
      auto seg = co_await stdio.fopen(tmp + "mosaic_" + std::to_string(node),
                                      io::OpenMode::kRead);
      co_await stdio.fread(seg, util::kMiB,
                           static_cast<std::uint32_t>(std::max<util::Bytes>(
                               mosaic_size / util::kMiB, 1)));
      co_await stdio.fclose(seg);
      auto dst = co_await posix.open(
          std::string(kOutDir) + "mosaic_" + std::to_string(node) + ".fits",
          io::OpenMode::kWrite);
      co_await posix.pwrite_sync(
          dst, 0, 64 * util::kKiB,
          static_cast<std::uint32_t>(std::max<util::Bytes>(
              mosaic_size / (64 * util::kKiB), 1)));
      co_await posix.close(dst);
    }
    co_await p.barrier();
  }
}

/// One mAddMPI rank: reads its slice of the node's projected image, writes
/// its slice of the node's mosaic segment.
sim::Task<void> add_rank(runtime::Simulation& sim, AppIds ids,
                         mpi::Comm& add_comm, int rank, MontageMpiParams P,
                         advisor::RunConfig cfg, std::shared_ptr<Sync> sync) {
  co_await sync->add_start.wait();
  const int node = add_comm.node_of(rank);
  const std::string tmp = intermediate_dir(sim, cfg);
  runtime::Proc p(sim, ids.add, rank, node, &add_comm);
  io::Stdio stdio(p, cfg.stdio_buffer);
  util::Rng rng = util::Rng(0xADD).fork(static_cast<std::uint64_t>(rank));

  const auto rpn = static_cast<util::Bytes>(
      add_comm.ranks_on_node(node).size());
  const int local = rank - add_comm.node_leader(rank);

  // Read this rank's slice of the projected image (sized from the actual
  // file so STDIO-buffer rounding in mProject cannot push us past EOF).
  io::Posix posix(p);
  const util::Bytes proj_size =
      posix.size_of(tmp + "proj_" + std::to_string(node));
  const util::Bytes read_slice = proj_size / rpn;
  auto in = co_await stdio.fopen(tmp + "proj_" + std::to_string(node),
                                 io::OpenMode::kRead);
  if (read_slice >= P.add_read_transfer) {
    co_await stdio.fseek(in, static_cast<util::Bytes>(local) * read_slice);
    co_await stdio.fread(in, P.add_read_transfer,
                         static_cast<std::uint32_t>(
                             read_slice / P.add_read_transfer));
  }
  co_await stdio.fclose(in);

  co_await p.compute(static_cast<sim::Time>(
      static_cast<double>(P.add_compute) * (0.9 + 0.2 * rng.uniform())));

  // Write this rank's slice of the mosaic segment.
  const util::Bytes write_slice = P.mosaic_per_node / rpn;
  auto out = co_await stdio.fopen(tmp + "mosaic_" + std::to_string(node),
                                  io::OpenMode::kWrite);
  co_await stdio.fseek(out, static_cast<util::Bytes>(local) * write_slice);
  co_await stdio.fwrite(out, P.mosaic_write_transfer,
                        static_cast<std::uint32_t>(std::max<util::Bytes>(
                            write_slice / P.mosaic_write_transfer, 1)));
  co_await stdio.fclose(out);

  co_await p.barrier();
  if (--sync->add_remaining == 0) sync->add_done.set();
}

/// Compile the five-stage MPI workflow into the pattern IR: one lane group
/// of per-node drivers (mProject -> mImgtbl -> mShrink -> mViewer as
/// successive phases) and one of mAddMPI ranks, coordinated by countdown
/// events exactly like the imperative Sync struct.
pattern::JobPattern compile_montage_mpi(runtime::Simulation& sim,
                                        const MontageMpiParams& P,
                                        const advisor::RunConfig& cfg) {
  namespace po = pattern::ops;
  using pattern::Expr;
  using pattern::Layer;
  const auto lit = [](auto v) {
    return Expr::lit(static_cast<std::int64_t>(v));
  };

  const std::string tmp = intermediate_dir(sim, cfg);
  const std::string kN = std::to_string(P.nodes);
  const std::string kFF = std::to_string(P.fits_files);
  const std::string first = "node * " + kFF + " / " + kN;
  const std::string last = "(node + 1) * " + kFF + " / " + kN;
  const auto fits_reads =
      std::max<util::Bytes>(P.fits_size / P.fits_read_transfer, 1);

  pattern::JobPattern pat;
  pat.name = "montage-mpi";
  pat.apps = {"mProject", "mImgtbl", "mAddMPI", "mShrink", "mViewer"};
  pat.comms.push_back({"nodes", P.nodes, P.nodes, false});
  pat.comms.push_back(
      {"add", P.nodes * P.add_ranks_per_node, P.nodes, false});
  pat.events.push_back({"add_start", P.nodes});
  pat.events.push_back({"add_done", P.nodes * P.add_ranks_per_node});

  // --- Per-node driver group -----------------------------------------------
  pattern::LaneGroup drv;
  drv.comm = "nodes";
  drv.rng_seed = 0x305A1C;
  drv.stdio_buffer = cfg.stdio_buffer;

  {  // mProject
    pattern::PhasePattern ph;
    ph.app = "mProject";
    ph.ops.push_back(po::open(Layer::kStdio, "out", tmp + "proj_{node}",
                              io::OpenMode::kWrite));
    std::vector<pattern::Op> body;
    body.push_back(po::open(Layer::kStdio, "in",
                            std::string(kFitsDir) + "{i}.fits",
                            io::OpenMode::kRead));
    body.push_back(po::read(Layer::kStdio, "in", lit(P.fits_read_transfer),
                            lit(fits_reads)));
    body.push_back(po::close(Layer::kStdio, "in"));
    body.push_back(po::compute(P.project_compute_per_file, 0.9, 0.2));
    body.push_back(po::write(
        Layer::kStdio, "out", lit(P.projected_write_transfer),
        Expr("max(" + std::to_string(P.projected_per_node) + " / max(" +
             last + " - " + first + ", 1) / " +
             std::to_string(P.projected_write_transfer) + ", 1)")));
    ph.ops.push_back(po::loop("i", Expr(first), Expr(last), std::move(body)));
    ph.ops.push_back(po::close(Layer::kStdio, "out"));
    ph.ops.push_back(po::barrier());
    drv.phases.push_back(std::move(ph));
  }
  {  // mImgtbl, then hand off to mAddMPI
    pattern::PhasePattern ph;
    ph.app = "mImgtbl";
    std::vector<pattern::Op> body;
    body.push_back(po::stat(std::string(kFitsDir) + "{i}.fits"));
    ph.ops.push_back(po::loop("i", Expr(first), Expr(last), std::move(body)));
    ph.ops.push_back(po::compute(P.imgtbl_compute));
    ph.ops.push_back(po::open(Layer::kStdio, "tbl",
                              std::string(kOutDir) + "images_{node}.tbl",
                              io::OpenMode::kWrite));
    ph.ops.push_back(
        po::write(Layer::kStdio, "tbl", lit(4 * util::kKiB), lit(16)));
    ph.ops.push_back(po::close(Layer::kStdio, "tbl"));
    ph.ops.push_back(po::barrier());
    ph.ops.push_back(po::signal("add_start"));
    ph.ops.push_back(po::wait_event("add_done"));
    drv.phases.push_back(std::move(ph));
  }
  {  // mShrink
    pattern::PhasePattern ph;
    ph.app = "mShrink";
    const std::string mosaic = tmp + "mosaic_{node}";
    ph.ops.push_back(
        po::open(Layer::kStdio, "in", mosaic, io::OpenMode::kRead));
    ph.ops.push_back(po::read(
        Layer::kStdio, "in", lit(64 * util::kKiB),
        Expr("max(size_of(\"" + mosaic + "\") / 40 / 65536, 1)")));
    ph.ops.push_back(po::close(Layer::kStdio, "in"));
    ph.ops.push_back(po::compute(P.shrink_compute));
    ph.ops.push_back(po::open(Layer::kStdio, "out", tmp + "shrunk_{node}",
                              io::OpenMode::kWrite));
    ph.ops.push_back(po::write(
        Layer::kStdio, "out", lit(64 * util::kKiB),
        lit(std::max<util::Bytes>(P.shrunk_per_node / (64 * util::kKiB), 1))));
    ph.ops.push_back(po::close(Layer::kStdio, "out"));
    ph.ops.push_back(po::barrier());
    drv.phases.push_back(std::move(ph));
  }
  {  // mViewer
    pattern::PhasePattern ph;
    ph.app = "mViewer";
    const bool local_src =
        cfg.locality_aware_placement || cfg.intermediates_to_node_local;
    const std::string src =
        tmp + (local_src ? "mosaic_{node}"
                         : "mosaic_{(node + 1) % " + kN + "}");
    ph.ops.push_back(po::open(Layer::kStdio, "in", src, io::OpenMode::kRead));
    ph.ops.push_back(po::read(
        Layer::kStdio, "in", lit(P.viewer_read_transfer),
        Expr("max(size_of(\"" + src + "\") / " +
             std::to_string(P.viewer_read_transfer) + ", 1)")));
    ph.ops.push_back(po::close(Layer::kStdio, "in"));
    ph.ops.push_back(po::compute(P.viewer_compute, 0.9, 0.2));
    ph.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kOutDir) + "mosaic_{node}.png",
                              io::OpenMode::kWrite));
    ph.ops.push_back(po::write(
        Layer::kStdio, "out", lit(P.png_write_transfer),
        lit(std::max<util::Bytes>(P.png_per_node / P.png_write_transfer, 1))));
    ph.ops.push_back(po::close(Layer::kStdio, "out"));
    if (cfg.intermediates_to_node_local) {
      // Drain the volatile node-local mosaic segment back to the PFS.
      ph.ops.push_back(po::open(Layer::kStdio, "seg", tmp + "mosaic_{node}",
                                io::OpenMode::kRead));
      ph.ops.push_back(po::read(
          Layer::kStdio, "seg", lit(util::kMiB),
          Expr("max(size_of(\"" + src + "\") / " +
               std::to_string(util::kMiB) + ", 1)")));
      ph.ops.push_back(po::close(Layer::kStdio, "seg"));
      ph.ops.push_back(po::open(Layer::kPosix, "dst",
                                std::string(kOutDir) + "mosaic_{node}.fits",
                                io::OpenMode::kWrite));
      ph.ops.push_back(po::pwrite_sync(
          "dst", Expr::lit(0), lit(64 * util::kKiB),
          Expr("max(size_of(\"" + src + "\") / 65536, 1)")));
      ph.ops.push_back(po::close(Layer::kPosix, "dst"));
    }
    ph.ops.push_back(po::barrier());
    drv.phases.push_back(std::move(ph));
  }
  pat.groups.push_back(std::move(drv));

  // --- mAddMPI group --------------------------------------------------------
  pattern::LaneGroup add;
  add.comm = "add";
  add.rng_seed = 0xADD;
  add.stdio_buffer = cfg.stdio_buffer;
  {
    pattern::PhasePattern ph;
    ph.app = "mAddMPI";
    const std::string kRpn = std::to_string(P.add_ranks_per_node);
    const std::string proj = tmp + "proj_{node}";
    const std::string slice =
        "size_of(\"" + proj + "\") / " + kRpn;  // this rank's read share
    ph.ops.push_back(po::wait_event("add_start"));
    ph.ops.push_back(po::open(Layer::kStdio, "in", proj, io::OpenMode::kRead));
    {
      std::vector<pattern::Op> body;
      body.push_back(
          po::seek(Layer::kStdio, "in", Expr("local * (" + slice + ")")));
      body.push_back(po::read(
          Layer::kStdio, "in", lit(P.add_read_transfer),
          Expr(slice + " / " + std::to_string(P.add_read_transfer))));
      ph.ops.push_back(po::when(
          Expr(slice + " >= " + std::to_string(P.add_read_transfer)),
          std::move(body)));
    }
    ph.ops.push_back(po::close(Layer::kStdio, "in"));
    ph.ops.push_back(po::compute(P.add_compute, 0.9, 0.2));
    const auto write_slice =
        P.mosaic_per_node / static_cast<util::Bytes>(P.add_ranks_per_node);
    ph.ops.push_back(po::open(Layer::kStdio, "out", tmp + "mosaic_{node}",
                              io::OpenMode::kWrite));
    ph.ops.push_back(po::seek(
        Layer::kStdio, "out",
        Expr("local * " + std::to_string(write_slice))));
    ph.ops.push_back(po::write(
        Layer::kStdio, "out", lit(P.mosaic_write_transfer),
        lit(std::max<util::Bytes>(write_slice / P.mosaic_write_transfer, 1))));
    ph.ops.push_back(po::close(Layer::kStdio, "out"));
    ph.ops.push_back(po::barrier());
    ph.ops.push_back(po::signal("add_done"));
    add.phases.push_back(std::move(ph));
  }
  pat.groups.push_back(std::move(add));
  return pat;
}

}  // namespace

MontageMpiParams MontageMpiParams::test() {
  MontageMpiParams P;
  P.nodes = 2;
  P.add_ranks_per_node = 4;
  P.fits_files = 8;
  P.fits_size = 256 * util::kKiB;
  P.projected_per_node = 4 * util::kMiB;
  P.mosaic_per_node = 16 * util::kMiB;
  P.shrunk_per_node = 256 * util::kKiB;
  P.png_per_node = 256 * util::kKiB;
  P.project_compute_per_file = sim::seconds(0.2);
  P.imgtbl_compute = sim::seconds(0.1);
  P.add_compute = sim::seconds(0.5);
  P.shrink_compute = sim::seconds(0.1);
  P.viewer_compute = sim::seconds(0.3);
  return P;
}

Workload make_montage_mpi(const MontageMpiParams& params) {
  Workload w;
  w.decl.name = "MontageMPI";
  w.decl.data_repr = "4D";
  w.decl.data_distribution = "uniform";
  w.decl.dataset_format = "bin";
  w.decl.format_attributes = "type: int, #dims: 3, enc: FITS";
  w.decl.file_size_dist = util::format_bytes(params.mosaic_per_node) +
                          " mosaic / " + util::format_bytes(params.fits_size) +
                          " fits";
  w.decl.job_time_limit_hours = 2;
  w.decl.cpu_cores_used_per_node = params.add_ranks_per_node;
  w.decl.app_memory_per_node = 60 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_inputs(sim, params);
  };
  w.compile = [params](runtime::Simulation& sim,
                       const advisor::RunConfig& cfg) {
    return compile_montage_mpi(sim, params, cfg);
  };
  w.launch = [params](runtime::Simulation& sim,
                      const advisor::RunConfig& cfg) {
    pattern::replay(sim, compile_montage_mpi(sim, params, cfg));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig& cfg) {
    AppIds ids;
    ids.project = sim.tracer().register_app("mProject");
    ids.imgtbl = sim.tracer().register_app("mImgtbl");
    ids.add = sim.tracer().register_app("mAddMPI");
    ids.shrink = sim.tracer().register_app("mShrink");
    ids.viewer = sim.tracer().register_app("mViewer");

    auto sync = std::make_shared<Sync>(sim.engine());
    sync->stage_nodes_remaining = params.nodes;
    sync->add_remaining = params.nodes * params.add_ranks_per_node;

    auto& node_comm = sim.add_comm(params.nodes, params.nodes);
    auto& add_comm = sim.add_comm(params.nodes * params.add_ranks_per_node,
                                  params.nodes);
    for (int node = 0; node < params.nodes; ++node) {
      sim.engine().spawn(
          node_driver(sim, ids, node_comm, node, params, cfg, sync));
    }
    for (int r = 0; r < add_comm.size(); ++r) {
      sim.engine().spawn(add_rank(sim, ids, add_comm, r, params, cfg, sync));
    }
  };
  return w;
}

}  // namespace wasp::workloads
