#include "workloads/montage_pegasus.hpp"

#include <algorithm>
#include <map>
#include <memory>

#include "io/posix.hpp"
#include "io/stdio.hpp"
#include "pattern/replayer.hpp"
#include "sim/waitgroup.hpp"
#include "util/rng.hpp"
#include "workflow/dag.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kBase = "/p/gpfs1/mpegasus/";

std::string input_path(int i) {
  return std::string(kBase) + "fits/" + std::to_string(i) + ".fits";
}
std::string proj_path(int i) {
  return std::string(kBase) + "proj/" + std::to_string(i);
}
std::string shard_path(int i) {
  return std::string(kBase) + "diff/shard_" + std::to_string(i) + ".tbl";
}
std::string corrected_path(int i) {
  return std::string(kBase) + "bg/" + std::to_string(i);
}
std::string tile_path(int i) {
  return std::string(kBase) + "tile/" + std::to_string(i);
}
std::string image_path(int i) {
  return std::string(kBase) + "out/" + std::to_string(i) + ".png";
}

sim::Task<void> stage_writer(runtime::Simulation& s, std::uint16_t a, int id,
                             int stride, MontagePegasusParams params) {
  runtime::Proc p(s, a, id, 0);
  io::Posix posix(p);
  for (int i = id; i < params.input_files; i += stride) {
    auto f = co_await posix.open(input_path(i), io::OpenMode::kWrite);
    co_await posix.write(f, params.input_size, 1);
    co_await posix.close(f);
  }
}

sim::Task<void> stage_inputs(runtime::Simulation& sim,
                             MontagePegasusParams P) {
  const auto app = sim.tracer().register_app("mpegasus-stage");
  sim::WaitGroup wg(sim.engine());
  const int writers = 16;
  for (int w = 0; w < writers; ++w) {
    wg.launch(stage_writer(sim, app, w, writers, P));
  }
  co_await wg.wait();
}

std::uint32_t ops_for(util::Bytes total, util::Bytes transfer) {
  return static_cast<std::uint32_t>(
      std::max<util::Bytes>(total / transfer, 1));
}

// ---- Kernel bodies (each runs as one Pegasus task in a Proc the
// ---- scheduler placed). Params are copied into the coroutine frame.

sim::Task<void> project_body(runtime::Proc& p, MontagePegasusParams P,
                             util::Bytes stdio_buffer, int id) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  util::Rng rng = util::Rng(0x9E6).fork(static_cast<std::uint64_t>(id));
  for (int k = 0; k < P.inputs_per_project; ++k) {
    const int idx = (id * P.inputs_per_project + k) % P.input_files;
    co_await posix.stat(input_path(idx));
    auto in = co_await stdio.fopen(input_path(idx), io::OpenMode::kRead);
    co_await stdio.fread(in, P.transfer, ops_for(P.input_size, P.transfer));
    co_await stdio.fclose(in);
  }
  co_await p.compute(static_cast<sim::Time>(
      static_cast<double>(P.project_compute) * (0.8 + 0.4 * rng.uniform())));
  auto out = co_await stdio.fopen(proj_path(id), io::OpenMode::kWrite);
  co_await stdio.fwrite(out, P.transfer, ops_for(P.projected_size, P.transfer));
  co_await stdio.fclose(out);
  auto hdr = co_await stdio.fopen(proj_path(id) + ".hdr",
                                  io::OpenMode::kWrite);
  co_await stdio.fwrite(hdr, util::kKiB, 2);
  co_await stdio.fclose(hdr);
}

sim::Task<void> diff_body(runtime::Proc& p, MontagePegasusParams P,
                          util::Bytes stdio_buffer, int id) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  util::Rng rng = util::Rng(0xD1FF).fork(static_cast<std::uint64_t>(id));
  const int a = id % P.project_tasks;
  const int b = (id + 1) % P.project_tasks;
  for (int side : {a, b}) {
    const util::Bytes size = posix.size_of(proj_path(side)) / 2;
    auto in = co_await stdio.fopen(proj_path(side), io::OpenMode::kRead);
    const std::uint32_t ops = ops_for(size, P.small_transfer);
    co_await stdio.fseek_batch(in, std::max<std::uint32_t>(ops / 4, 1));
    co_await stdio.fread(in, P.small_transfer, ops);
    co_await stdio.fclose(in);
  }
  co_await p.compute(static_cast<sim::Time>(
      static_cast<double>(P.diff_compute) * (0.7 + 0.6 * rng.uniform())));
  auto out = co_await stdio.fopen(shard_path(id % P.diff_shards),
                                  io::OpenMode::kAppend);
  co_await stdio.fwrite(out, P.small_transfer,
                        ops_for(P.diff_output, P.small_transfer));
  co_await stdio.fclose(out);
}

sim::Task<void> concat_body(runtime::Proc& p, MontagePegasusParams P,
                            util::Bytes stdio_buffer) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  for (int s = 0; s < P.diff_shards; ++s) {
    const util::Bytes size = posix.size_of(shard_path(s));
    auto in = co_await stdio.fopen(shard_path(s), io::OpenMode::kRead);
    co_await stdio.fread(in, P.small_transfer,
                         ops_for(size, P.small_transfer));
    co_await stdio.fclose(in);
  }
  co_await p.compute(P.concat_compute);
  auto out = co_await stdio.fopen(std::string(kBase) + "fits.tbl",
                                  io::OpenMode::kWrite);
  co_await stdio.fwrite(out, P.small_transfer, 64);
  co_await stdio.fclose(out);
}

sim::Task<void> bgmodel_body(runtime::Proc& p, MontagePegasusParams P,
                             util::Bytes stdio_buffer) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  const util::Bytes size = posix.size_of(std::string(kBase) + "fits.tbl");
  auto in = co_await stdio.fopen(std::string(kBase) + "fits.tbl",
                                 io::OpenMode::kRead);
  co_await stdio.fread(in, P.small_transfer, ops_for(size, P.small_transfer));
  co_await stdio.fclose(in);
  co_await p.compute(P.bgmodel_compute);
  auto out = co_await stdio.fopen(std::string(kBase) + "corrections.tbl",
                                  io::OpenMode::kWrite);
  co_await stdio.fwrite(out, P.small_transfer, 1280);
  co_await stdio.fclose(out);
}

sim::Task<void> background_body(runtime::Proc& p, MontagePegasusParams P,
                                util::Bytes stdio_buffer, int id) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  util::Rng rng = util::Rng(0xB6).fork(static_cast<std::uint64_t>(id));
  const int proj = id % P.project_tasks;
  const util::Bytes size = posix.size_of(proj_path(proj)) / 2;
  auto in = co_await stdio.fopen(proj_path(proj), io::OpenMode::kRead);
  const std::uint32_t bg_ops = ops_for(size, P.small_transfer);
  co_await stdio.fseek_batch(in, std::max<std::uint32_t>(bg_ops / 4, 1));
  co_await stdio.fread(in, P.small_transfer, bg_ops);
  co_await stdio.fclose(in);
  auto corr = co_await stdio.fopen(std::string(kBase) + "corrections.tbl",
                                   io::OpenMode::kRead);
  co_await stdio.fread(corr, P.small_transfer, 2);
  co_await stdio.fclose(corr);
  co_await p.compute(static_cast<sim::Time>(
      static_cast<double>(P.background_compute) *
      (0.8 + 0.4 * rng.uniform())));
  auto out = co_await stdio.fopen(corrected_path(id), io::OpenMode::kWrite);
  co_await stdio.fwrite(out, P.transfer, ops_for(P.corrected_size, P.transfer));
  co_await stdio.fclose(out);
}

sim::Task<void> imgtbl_body(runtime::Proc& p, MontagePegasusParams P) {
  io::Posix posix(p);
  for (int i = 0; i < P.background_tasks; i += 8) {
    co_await posix.stat(corrected_path(i));
  }
  co_await p.compute(P.imgtbl_compute);
}

sim::Task<void> add_body(runtime::Proc& p, MontagePegasusParams P,
                         util::Bytes stdio_buffer, int id) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  const int group = P.background_tasks / std::max(P.add_tasks, 1);
  for (int k = 0; k < group; ++k) {
    const int idx = id * group + k;
    if (idx >= P.background_tasks) break;
    const util::Bytes size = posix.size_of(corrected_path(idx));
    auto in = co_await stdio.fopen(corrected_path(idx), io::OpenMode::kRead);
    co_await stdio.fread(in, P.transfer, ops_for(size, P.transfer));
    co_await stdio.fclose(in);
  }
  co_await p.compute(P.add_compute);
  auto out = co_await stdio.fopen(tile_path(id), io::OpenMode::kWrite);
  co_await stdio.fwrite(out, P.transfer, ops_for(P.tile_size, P.transfer));
  co_await stdio.fclose(out);
}

sim::Task<void> viewer_body(runtime::Proc& p, MontagePegasusParams P,
                            util::Bytes stdio_buffer, int id) {
  io::Stdio stdio(p, stdio_buffer);
  io::Posix posix(p);
  const util::Bytes size = posix.size_of(tile_path(id));
  auto in = co_await stdio.fopen(tile_path(id), io::OpenMode::kRead);
  co_await stdio.fread(in, P.transfer, ops_for(size, P.transfer));
  co_await stdio.fclose(in);
  co_await p.compute(P.viewer_compute);
  // A couple of very large writes (>16MB) — the 10GB/s spikes of Fig. 6a.
  auto out = co_await stdio.fopen(image_path(id), io::OpenMode::kWrite);
  const util::Bytes big = P.image_size / 2;
  co_await stdio.fwrite(out, big, 2);
  co_await stdio.fclose(out);
}

sim::Task<void> run_dag(runtime::Simulation& sim, MontagePegasusParams P,
                        advisor::RunConfig cfg) {
  const util::Bytes buf = cfg.stdio_buffer;
  workflow::Dag dag;

  std::vector<int> project_ids(static_cast<std::size_t>(P.project_tasks));
  for (int i = 0; i < P.project_tasks; ++i) {
    project_ids[static_cast<std::size_t>(i)] = dag.add_task(
        {"mProject",
         [P, buf, i](runtime::Proc& p) { return project_body(p, P, buf, i); },
         -1});
  }
  std::vector<int> diff_ids(static_cast<std::size_t>(P.diff_tasks));
  for (int i = 0; i < P.diff_tasks; ++i) {
    diff_ids[static_cast<std::size_t>(i)] = dag.add_task(
        {"mDiff",
         [P, buf, i](runtime::Proc& p) { return diff_body(p, P, buf, i); },
         -1});
    dag.add_dependency(diff_ids[static_cast<std::size_t>(i)],
                       project_ids[static_cast<std::size_t>(
                           i % P.project_tasks)]);
    dag.add_dependency(diff_ids[static_cast<std::size_t>(i)],
                       project_ids[static_cast<std::size_t>(
                           (i + 1) % P.project_tasks)]);
  }
  const int concat_id = dag.add_task(
      {"mConcatFit",
       [P, buf](runtime::Proc& p) { return concat_body(p, P, buf); }, -1});
  for (int d : diff_ids) dag.add_dependency(concat_id, d);
  const int bg_model_id = dag.add_task(
      {"mBgModel",
       [P, buf](runtime::Proc& p) { return bgmodel_body(p, P, buf); }, -1});
  dag.add_dependency(bg_model_id, concat_id);

  std::vector<int> background_ids(
      static_cast<std::size_t>(P.background_tasks));
  for (int i = 0; i < P.background_tasks; ++i) {
    background_ids[static_cast<std::size_t>(i)] = dag.add_task(
        {"mBackground",
         [P, buf, i](runtime::Proc& p) {
           return background_body(p, P, buf, i);
         },
         -1});
    dag.add_dependency(background_ids[static_cast<std::size_t>(i)],
                       bg_model_id);
    dag.add_dependency(background_ids[static_cast<std::size_t>(i)],
                       project_ids[static_cast<std::size_t>(
                           i % P.project_tasks)]);
  }
  const int imgtbl_id = dag.add_task(
      {"mImgtbl", [P](runtime::Proc& p) { return imgtbl_body(p, P); }, -1});
  for (int b : background_ids) dag.add_dependency(imgtbl_id, b);

  std::vector<int> add_ids(static_cast<std::size_t>(P.add_tasks));
  for (int i = 0; i < P.add_tasks; ++i) {
    add_ids[static_cast<std::size_t>(i)] = dag.add_task(
        {"mAdd",
         [P, buf, i](runtime::Proc& p) { return add_body(p, P, buf, i); },
         -1});
    dag.add_dependency(add_ids[static_cast<std::size_t>(i)], imgtbl_id);
  }
  for (int i = 0; i < P.viewer_tasks; ++i) {
    const int vid = dag.add_task(
        {"mViewer",
         [P, buf, i](runtime::Proc& p) { return viewer_body(p, P, buf, i); },
         -1});
    dag.add_dependency(vid,
                       add_ids[static_cast<std::size_t>(i % P.add_tasks)]);
  }

  workflow::PegasusScheduler::Options opts;
  opts.slots = P.slots;
  opts.nodes = P.nodes;
  opts.locality_aware = cfg.locality_aware_placement;
  workflow::PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  std::map<std::string, std::uint16_t> app_ids;
  co_await sched.run(dag, [&tracer, &app_ids](const std::string& name) {
    auto it = app_ids.find(name);
    if (it == app_ids.end()) {
      it = app_ids.emplace(name, tracer.register_app(name)).first;
    }
    return it->second;
  });
}

/// Compile the Pegasus DAG into the pattern IR's declarative dag block:
/// each kernel becomes a stage whose per-instance I/O is expressed over the
/// `id` variable, and the dependency wiring becomes index expressions. The
/// generic replayer rebuilds the identical workflow::Dag and runs it
/// through the same PegasusScheduler.
pattern::JobPattern compile_montage_pegasus(const MontagePegasusParams& P,
                                            const advisor::RunConfig& cfg) {
  namespace po = pattern::ops;
  using pattern::Expr;
  using pattern::Layer;
  const auto lit = [](auto v) {
    return Expr::lit(static_cast<std::int64_t>(v));
  };
  const std::string kPT = std::to_string(P.project_tasks);
  const std::string kT = std::to_string(P.transfer);
  const std::string kST = std::to_string(P.small_transfer);

  pattern::JobPattern pat;
  pat.name = "montage-pegasus";
  pat.dag.slots = P.slots;
  pat.dag.nodes = P.nodes;
  pat.dag.locality_aware = cfg.locality_aware_placement;
  pat.dag.stdio_buffer = cfg.stdio_buffer;

  auto& stages = pat.dag.stages;

  {  // stage 0: mProject
    pattern::DagStage st;
    st.app = "mProject";
    st.count = P.project_tasks;
    st.rng_seed = 0x9E6;
    const std::string in = std::string(kBase) + "fits/{(id * " +
                           std::to_string(P.inputs_per_project) + " + k) % " +
                           std::to_string(P.input_files) + "}.fits";
    std::vector<pattern::Op> body;
    body.push_back(po::stat(in));
    body.push_back(po::open(Layer::kStdio, "in", in, io::OpenMode::kRead));
    body.push_back(po::read(Layer::kStdio, "in", lit(P.transfer),
                            lit(ops_for(P.input_size, P.transfer))));
    body.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::loop("k", Expr::lit(0), lit(P.inputs_per_project),
                              std::move(body)));
    st.ops.push_back(po::compute(P.project_compute, 0.8, 0.4));
    st.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kBase) + "proj/{id}",
                              io::OpenMode::kWrite));
    st.ops.push_back(po::write(Layer::kStdio, "out", lit(P.transfer),
                               lit(ops_for(P.projected_size, P.transfer))));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    st.ops.push_back(po::open(Layer::kStdio, "hdr",
                              std::string(kBase) + "proj/{id}.hdr",
                              io::OpenMode::kWrite));
    st.ops.push_back(po::write(Layer::kStdio, "hdr", lit(util::kKiB), lit(2)));
    st.ops.push_back(po::close(Layer::kStdio, "hdr"));
    stages.push_back(std::move(st));
  }
  {  // stage 1: mDiff — reads both neighbouring projections
    pattern::DagStage st;
    st.app = "mDiff";
    st.count = P.diff_tasks;
    st.rng_seed = 0xD1FF;
    st.deps.push_back({0, Expr("id % " + kPT)});
    st.deps.push_back({0, Expr("(id + 1) % " + kPT)});
    const std::string side =
        std::string(kBase) + "proj/{(id + s) % " + kPT + "}";
    const std::string ops = "max(size_of(\"" + side + "\") / 2 / " + kST +
                            ", 1)";
    std::vector<pattern::Op> body;
    body.push_back(po::open(Layer::kStdio, "in", side, io::OpenMode::kRead));
    body.push_back(po::seek_batch(Layer::kStdio, "in",
                                  Expr("max((" + ops + ") / 4, 1)")));
    body.push_back(
        po::read(Layer::kStdio, "in", lit(P.small_transfer), Expr(ops)));
    body.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::loop("s", Expr::lit(0), Expr::lit(2),
                              std::move(body)));
    st.ops.push_back(po::compute(P.diff_compute, 0.7, 0.6));
    st.ops.push_back(po::open(
        Layer::kStdio, "out",
        std::string(kBase) + "diff/shard_{id % " +
            std::to_string(P.diff_shards) + "}.tbl",
        io::OpenMode::kAppend));
    st.ops.push_back(po::write(Layer::kStdio, "out", lit(P.small_transfer),
                               lit(ops_for(P.diff_output, P.small_transfer))));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    stages.push_back(std::move(st));
  }
  {  // stage 2: mConcatFit — all diff shards into fits.tbl
    pattern::DagStage st;
    st.app = "mConcatFit";
    st.deps.push_back({1, Expr{}});
    const std::string shard = std::string(kBase) + "diff/shard_{s}.tbl";
    std::vector<pattern::Op> body;
    body.push_back(po::open(Layer::kStdio, "in", shard, io::OpenMode::kRead));
    body.push_back(po::read(
        Layer::kStdio, "in", lit(P.small_transfer),
        Expr("max(size_of(\"" + shard + "\") / " + kST + ", 1)")));
    body.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::loop("s", Expr::lit(0), lit(P.diff_shards),
                              std::move(body)));
    st.ops.push_back(po::compute(P.concat_compute));
    st.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kBase) + "fits.tbl",
                              io::OpenMode::kWrite));
    st.ops.push_back(
        po::write(Layer::kStdio, "out", lit(P.small_transfer), lit(64)));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    stages.push_back(std::move(st));
  }
  {  // stage 3: mBgModel
    pattern::DagStage st;
    st.app = "mBgModel";
    st.deps.push_back({2, Expr{}});
    const std::string tbl = std::string(kBase) + "fits.tbl";
    st.ops.push_back(po::open(Layer::kStdio, "in", tbl, io::OpenMode::kRead));
    st.ops.push_back(po::read(
        Layer::kStdio, "in", lit(P.small_transfer),
        Expr("max(size_of(\"" + tbl + "\") / " + kST + ", 1)")));
    st.ops.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::compute(P.bgmodel_compute));
    st.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kBase) + "corrections.tbl",
                              io::OpenMode::kWrite));
    st.ops.push_back(
        po::write(Layer::kStdio, "out", lit(P.small_transfer), lit(1280)));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    stages.push_back(std::move(st));
  }
  {  // stage 4: mBackground
    pattern::DagStage st;
    st.app = "mBackground";
    st.count = P.background_tasks;
    st.rng_seed = 0xB6;
    st.deps.push_back({3, Expr{}});
    st.deps.push_back({0, Expr("id % " + kPT)});
    const std::string proj = std::string(kBase) + "proj/{id % " + kPT + "}";
    const std::string ops = "max(size_of(\"" + proj + "\") / 2 / " + kST +
                            ", 1)";
    st.ops.push_back(po::open(Layer::kStdio, "in", proj, io::OpenMode::kRead));
    st.ops.push_back(po::seek_batch(Layer::kStdio, "in",
                                    Expr("max((" + ops + ") / 4, 1)")));
    st.ops.push_back(
        po::read(Layer::kStdio, "in", lit(P.small_transfer), Expr(ops)));
    st.ops.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::open(Layer::kStdio, "corr",
                              std::string(kBase) + "corrections.tbl",
                              io::OpenMode::kRead));
    st.ops.push_back(
        po::read(Layer::kStdio, "corr", lit(P.small_transfer), lit(2)));
    st.ops.push_back(po::close(Layer::kStdio, "corr"));
    st.ops.push_back(po::compute(P.background_compute, 0.8, 0.4));
    st.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kBase) + "bg/{id}",
                              io::OpenMode::kWrite));
    st.ops.push_back(po::write(Layer::kStdio, "out", lit(P.transfer),
                               lit(ops_for(P.corrected_size, P.transfer))));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    stages.push_back(std::move(st));
  }
  {  // stage 5: mImgtbl — header sweep over corrected images
    pattern::DagStage st;
    st.app = "mImgtbl";
    st.deps.push_back({4, Expr{}});
    std::vector<pattern::Op> body;
    body.push_back(po::stat(std::string(kBase) + "bg/{i}"));
    st.ops.push_back(po::loop("i", Expr::lit(0), lit(P.background_tasks),
                              std::move(body), Expr::lit(8)));
    st.ops.push_back(po::compute(P.imgtbl_compute));
    stages.push_back(std::move(st));
  }
  {  // stage 6: mAdd — each tile sums its group of corrected images
    pattern::DagStage st;
    st.app = "mAdd";
    st.count = P.add_tasks;
    st.deps.push_back({5, Expr{}});
    const int group = P.background_tasks / std::max(P.add_tasks, 1);
    const std::string kG = std::to_string(group);
    const std::string corrected =
        std::string(kBase) + "bg/{id * " + kG + " + k}";
    std::vector<pattern::Op> body;
    body.push_back(po::open(Layer::kStdio, "in", corrected,
                            io::OpenMode::kRead));
    body.push_back(po::read(
        Layer::kStdio, "in", lit(P.transfer),
        Expr("max(size_of(\"" + corrected + "\") / " + kT + ", 1)")));
    body.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::loop(
        "k", Expr::lit(0), lit(group), std::move(body), Expr{},
        Expr("id * " + kG + " + k < " + std::to_string(P.background_tasks))));
    st.ops.push_back(po::compute(P.add_compute));
    st.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kBase) + "tile/{id}",
                              io::OpenMode::kWrite));
    st.ops.push_back(po::write(Layer::kStdio, "out", lit(P.transfer),
                               lit(ops_for(P.tile_size, P.transfer))));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    stages.push_back(std::move(st));
  }
  {  // stage 7: mViewer — few very large writes (Fig. 6a spikes)
    pattern::DagStage st;
    st.app = "mViewer";
    st.count = P.viewer_tasks;
    st.deps.push_back({6, Expr("id % " + std::to_string(P.add_tasks))});
    const std::string tile = std::string(kBase) + "tile/{id}";
    st.ops.push_back(po::open(Layer::kStdio, "in", tile, io::OpenMode::kRead));
    st.ops.push_back(po::read(
        Layer::kStdio, "in", lit(P.transfer),
        Expr("max(size_of(\"" + tile + "\") / " + kT + ", 1)")));
    st.ops.push_back(po::close(Layer::kStdio, "in"));
    st.ops.push_back(po::compute(P.viewer_compute));
    st.ops.push_back(po::open(Layer::kStdio, "out",
                              std::string(kBase) + "out/{id}.png",
                              io::OpenMode::kWrite));
    st.ops.push_back(
        po::write(Layer::kStdio, "out", lit(P.image_size / 2), lit(2)));
    st.ops.push_back(po::close(Layer::kStdio, "out"));
    stages.push_back(std::move(st));
  }
  return pat;
}

}  // namespace

MontagePegasusParams MontagePegasusParams::test() {
  MontagePegasusParams P;
  P.nodes = 2;
  P.slots = 8;
  P.input_files = 20;
  P.input_size = 256 * util::kKiB;
  P.project_tasks = 6;
  P.inputs_per_project = 3;
  P.projected_size = util::kMiB;
  P.diff_tasks = 12;
  P.diff_output = 16 * util::kKiB;
  P.diff_shards = 4;
  P.background_tasks = 6;
  P.corrected_size = util::kMiB;
  P.add_tasks = 2;
  P.tile_size = 2 * util::kMiB;
  P.viewer_tasks = 2;
  P.image_size = util::kMiB;
  P.project_compute = sim::seconds(0.2);
  P.diff_compute = sim::seconds(0.1);
  P.concat_compute = sim::seconds(0.3);
  P.bgmodel_compute = sim::seconds(0.3);
  P.background_compute = sim::seconds(0.2);
  P.imgtbl_compute = sim::seconds(0.1);
  P.add_compute = sim::seconds(0.3);
  P.viewer_compute = sim::seconds(0.3);
  return P;
}

Workload make_montage_pegasus(const MontagePegasusParams& params) {
  Workload w;
  w.decl.name = "MontagePegasus";
  w.decl.data_repr = "2D";
  w.decl.data_distribution = "uniform";
  w.decl.dataset_format = "bin";
  w.decl.format_attributes = "type: int, #dims: 2, enc: FITS";
  w.decl.file_size_dist = util::format_bytes(params.tile_size) + " tiles / " +
                          util::format_bytes(params.input_size) + " fits";
  w.decl.job_time_limit_hours = 12;
  w.decl.cpu_cores_used_per_node = 40;
  w.decl.app_memory_per_node = 60 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_inputs(sim, params);
  };
  w.compile = [params](runtime::Simulation&, const advisor::RunConfig& cfg) {
    return compile_montage_pegasus(params, cfg);
  };
  w.launch = [params](runtime::Simulation& sim,
                      const advisor::RunConfig& cfg) {
    pattern::replay(sim, compile_montage_pegasus(params, cfg));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig& cfg) {
    sim.engine().spawn(run_dag(sim, params, cfg));
  };
  return w;
}

}  // namespace wasp::workloads
