// Montage mosaic workflow with MPI (paper §III-B.5, Figure 5; case study
// §V-B / Figure 8).
//
// Five applications per the paper, driven stage-by-stage:
//   mProject (1/node)  reads input FITS (64KB), writes projected images in
//                      4KB STDIO transfers            [intermediate]
//   mImgtbl  (1/node)  header scans, writes .tbl      [metadata-ish]
//   mAddMPI  (40/node) parallel MPI job: reads projected (4KB), writes the
//                      mosaic segments (32KB)         [bulk of write I/O]
//   mShrink  (1/node)  reads mosaic sample, writes shrunk overview
//   mViewer  (1/node)  reads a *neighbor node's* mosaic segment (8KB) and
//                      writes the final PNG           [bulk of read I/O]
//
// Intermediate files (projected/mosaic/shrunk) live on the PFS in the
// baseline and on node-local shm when RunConfig::intermediates_to_node_local
// is set — except the mosaic, which mViewer consumes cross-node and
// therefore stays where the consumer can reach it; with shm redirection the
// viewer is placed locality-aware so its input *is* node-local (§IV-D.4).
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct MontageMpiParams {
  int nodes = 32;
  int add_ranks_per_node = 40;
  int fits_files = 960;
  util::Bytes fits_size = 1600 * util::kKB;
  util::Bytes fits_read_transfer = 64 * util::kKiB;
  util::Bytes projected_per_node = 120 * util::kMB;
  util::Bytes projected_write_transfer = 4 * util::kKiB;
  util::Bytes mosaic_per_node = 640 * util::kMB;
  util::Bytes mosaic_write_transfer = 32 * util::kKiB;
  util::Bytes add_read_transfer = 4 * util::kKiB;
  util::Bytes viewer_read_transfer = 8 * util::kKiB;
  util::Bytes shrunk_per_node = 4 * util::kMB;
  util::Bytes png_per_node = 3600 * util::kKB;
  util::Bytes png_write_transfer = 64 * util::kKiB;
  sim::Time project_compute_per_file = sim::seconds(4.0);
  sim::Time imgtbl_compute = sim::seconds(5.0);
  sim::Time add_compute = sim::seconds(55.0);
  sim::Time shrink_compute = sim::seconds(6.0);
  sim::Time viewer_compute = sim::seconds(28.0);

  static MontageMpiParams paper() { return MontageMpiParams{}; }
  static MontageMpiParams test();

  int fits_per_node() const { return (fits_files + nodes - 1) / nodes; }
};

Workload make_montage_mpi(const MontageMpiParams& params = MontageMpiParams{});

}  // namespace wasp::workloads
