// CM1 atmospheric-simulation model (paper §III-B.1, Figure 1).
//
// I/O shape reproduced:
//  * all 1280 ranks read 16MB shared configuration files (20GB total, fast
//    large reads),
//  * 193 simulation steps alternate compute with output, where ONLY rank 0
//    writes the simulation data in 4KB sequential transfers across ~737
//    files (the slow 64MB/s writes of Fig. 1a),
//  * the first rank of every node opens/closes the shared restart file even
//    though only rank 0 writes it (Fig. 1b),
//  * seeks between 4KB regions make ~70% of ops metadata (Table III).
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct Cm1Params {
  int nodes = 32;
  int ranks_per_node = 40;
  int steps = 193;
  int config_files = 37;  ///< shared-read input files
  util::Bytes config_file_size = 16 * util::kMiB;
  int output_files = 737;  ///< written by rank 0 only
  util::Bytes output_total = util::kGiB;
  util::Bytes write_transfer = 4 * util::kKiB;
  util::Bytes restart_size = 80 * util::kMiB;  ///< shared restart file
  int checkpoints = 5;
  sim::Time compute_per_step = sim::seconds(3.1);

  /// Paper-scale configuration (Table I column).
  static Cm1Params paper() { return Cm1Params{}; }
  /// Fast configuration for unit tests.
  static Cm1Params test();
};

Workload make_cm1(const Cm1Params& params = Cm1Params{});

}  // namespace wasp::workloads
