#include "workloads/hacc.hpp"

#include <algorithm>
#include <string>

#include "io/compression.hpp"
#include "io/posix.hpp"
#include "pattern/replayer.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

/// Background drain of a fast-tier checkpoint to the PFS (SCR-style async
/// flush, §IV-D.2): runs concurrently with the restart phase.
sim::Task<void> drain_checkpoint(runtime::Simulation& sim, std::uint16_t app,
                                 int rank, int node, std::string src,
                                 std::string dst, util::Bytes transfer) {
  runtime::Proc p(sim, app, rank, node);
  io::Posix posix(p);
  const util::Bytes size = posix.size_of(src);
  auto in = co_await posix.open(src, io::OpenMode::kRead);
  auto out = co_await posix.open(dst, io::OpenMode::kWrite);
  const auto ops = static_cast<std::uint32_t>(
      std::max<util::Bytes>(size / transfer, 1));
  co_await posix.read(in, transfer, ops);
  co_await posix.write(out, transfer, ops);
  co_await posix.close(in);
  co_await posix.close(out);
}

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, int rank, HaccParams P,
                          advisor::RunConfig cfg) {
  runtime::Proc p(sim, app, rank, comm.node_of(rank), &comm);
  io::Posix posix(p);
  util::Rng rng = util::Rng(0x44ACC).fork(static_cast<std::uint64_t>(rank));

  // Async drain: checkpoints land on a fast tier (shared burst buffer when
  // the system has one, node-local otherwise) and flush to the PFS in the
  // background while the job proceeds.
  const bool async_drain = cfg.async_checkpoint_drain;
  std::string fast_dir;
  if (async_drain) {
    fast_dir = sim.has_shared_bb()
                   ? sim.shared_bb().mount() + "/hacc/"
                   : sim.node_local(cfg.node_local_tier).mount() + "/hacc/";
  }
  const std::string pfs_dir = sim.pfs().mount() + "/hacc/";
  const std::string path =
      (async_drain ? fast_dir : pfs_dir) + std::to_string(rank) + ".ckpt";

  // Particle generation in memory.
  co_await p.compute(static_cast<sim::Time>(
      static_cast<double>(P.generate_compute) * (0.95 + 0.1 * rng.uniform())));
  co_await p.barrier();

  const auto total_ops = static_cast<std::uint32_t>(
      std::max<util::Bytes>((P.per_rank_bytes + P.transfer - 1) / P.transfer,
                            1));
  const int rounds = std::max(1, std::min<int>(P.rounds,
                                               static_cast<int>(total_ops)));

  // Optional transparent compression of the checkpoint stream.
  io::CompressionModel codec;
  codec.use_gpu = cfg.compress_on_gpu;
  codec.ratio = cfg.compression_ratio;
  io::CompressedPosix compressed(p, codec);
  const bool compress = cfg.compress_checkpoints;

  // Checkpoint: several open/write/close rounds (9 variables flushed in
  // groups), 16MB sequential writes.
  std::uint32_t written = 0;
  for (int round = 0; round < rounds; ++round) {
    const auto ops = std::min<std::uint32_t>(
        (total_ops + static_cast<std::uint32_t>(rounds) - 1) /
            static_cast<std::uint32_t>(rounds),
        total_ops - written);
    if (ops == 0) break;
    auto f = co_await posix.open(path, round == 0 ? io::OpenMode::kWrite
                                                  : io::OpenMode::kAppend);
    co_await posix.seek_batch(f, ops);
    if (compress) {
      co_await compressed.write(f, P.transfer, ops);
    } else {
      co_await posix.write(f, P.transfer, ops);
    }
    co_await posix.close(f);
    written += ops;
  }
  if (async_drain) {
    // Kick off the background flush; the restart phase reads the fast copy.
    sim.engine().spawn(drain_checkpoint(
        sim, app, rank, p.node(), path,
        pfs_dir + std::to_string(rank) + ".ckpt", P.transfer));
  }
  co_await p.barrier();

  // Restart: read the checkpoint back with the same round structure.
  if (P.do_restart_read) {
    std::uint32_t read = 0;
    util::Bytes offset = 0;
    for (int round = 0; round < rounds; ++round) {
      const auto ops = std::min<std::uint32_t>(
          (total_ops + static_cast<std::uint32_t>(rounds) - 1) /
              static_cast<std::uint32_t>(rounds),
          total_ops - read);
      if (ops == 0) break;
      auto f = co_await posix.open(path, io::OpenMode::kRead);
      co_await posix.seek(f, offset);
      co_await posix.seek_batch(f, ops);
      if (compress) {
        co_await compressed.read(f, P.transfer, ops);
        offset = f.offset;
      } else {
        co_await posix.read(f, P.transfer, ops);
        offset += static_cast<util::Bytes>(ops) * P.transfer;
      }
      co_await posix.close(f);
      read += ops;
    }
  }
  co_await p.barrier();
}

/// Compile the HACC force-per-process checkpoint/restart cycle into the
/// declarative pattern IR. Replaying the result is byte-identical to
/// rank_body() above (the equivalence oracle).
pattern::JobPattern compile_hacc(runtime::Simulation& sim, const HaccParams& P,
                                 const advisor::RunConfig& cfg) {
  namespace po = pattern::ops;
  using pattern::Expr;

  const bool async_drain = cfg.async_checkpoint_drain;
  std::string fast_dir;
  if (async_drain) {
    fast_dir = sim.has_shared_bb()
                   ? sim.shared_bb().mount() + "/hacc/"
                   : sim.node_local(cfg.node_local_tier).mount() + "/hacc/";
  }
  const std::string pfs_dir = sim.pfs().mount() + "/hacc/";
  const std::string path = (async_drain ? fast_dir : pfs_dir) + "{rank}.ckpt";

  const auto total_ops = static_cast<std::uint64_t>(
      std::max<util::Bytes>((P.per_rank_bytes + P.transfer - 1) / P.transfer,
                            1));
  const auto rounds = static_cast<std::uint64_t>(
      std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                     static_cast<std::uint64_t>(P.rounds),
                                     total_ops)));
  const std::uint64_t per = (total_ops + rounds - 1) / rounds;
  const bool compress = cfg.compress_checkpoints;
  const pattern::Layer xfer =
      compress ? pattern::Layer::kCompressed : pattern::Layer::kPosix;
  // Per-op bytes actually stored on disk: the compressed layer shrinks each
  // transfer (io::CompressedPosix), which the restart seek offsets track.
  const auto stored = compress
                          ? static_cast<util::Bytes>(std::max(
                                static_cast<double>(P.transfer) *
                                    cfg.compression_ratio,
                                1.0))
                          : P.transfer;

  const std::string kTotal = std::to_string(total_ops);
  const std::string kPer = std::to_string(per);
  const std::string kT = std::to_string(P.transfer);
  // Ops in round r; the guard skips rounds past the tail.
  const std::string ops_r = "min(" + kPer + ", " + kTotal + " - r * " + kPer +
                            ")";
  const std::string guard_r = kTotal + " - r * " + kPer + " > 0";

  pattern::JobPattern pat;
  pat.name = "hacc-fpp";
  pat.apps = {"hacc-io"};
  pat.comms.push_back({"world", P.nodes * P.ranks_per_node, P.nodes, false});

  pattern::LaneGroup g;
  g.comm = "world";
  g.rng_seed = 0x44ACC;
  g.stdio_buffer = cfg.stdio_buffer;
  g.mpiio = cfg.mpiio;
  g.codec.use_gpu = cfg.compress_on_gpu;
  g.codec.ratio = cfg.compression_ratio;

  pattern::PhasePattern ph;
  ph.app = "hacc-io";

  // Particle generation in memory.
  ph.ops.push_back(po::compute(P.generate_compute, 0.95, 0.1));
  ph.ops.push_back(po::barrier());

  // Checkpoint round 0 (truncating open); rounds >= 1 append.
  ph.ops.push_back(
      po::open(pattern::Layer::kPosix, "f", path, io::OpenMode::kWrite));
  ph.ops.push_back(
      po::seek_batch(pattern::Layer::kPosix, "f",
                     Expr::lit(static_cast<std::int64_t>(per))));
  ph.ops.push_back(po::write(xfer, "f", Expr::lit(static_cast<std::int64_t>(
                                            P.transfer)),
                             Expr::lit(static_cast<std::int64_t>(per))));
  ph.ops.push_back(po::close(pattern::Layer::kPosix, "f"));
  if (rounds > 1) {
    std::vector<pattern::Op> body;
    body.push_back(
        po::open(pattern::Layer::kPosix, "f", path, io::OpenMode::kAppend));
    body.push_back(po::seek_batch(pattern::Layer::kPosix, "f", Expr(ops_r)));
    body.push_back(po::write(xfer, "f", Expr(kT), Expr(ops_r)));
    body.push_back(po::close(pattern::Layer::kPosix, "f"));
    ph.ops.push_back(po::loop("r", Expr::lit(1),
                              Expr::lit(static_cast<std::int64_t>(rounds)),
                              std::move(body), {}, Expr(guard_r)));
  }

  if (async_drain) {
    // Background flush of the fast-tier copy to the PFS (SCR-style async
    // drain); the restart phase reads the fast copy concurrently.
    const std::string src = fast_dir + "{rank}.ckpt";
    const std::string dst = pfs_dir + "{rank}.ckpt";
    const std::string drain_ops =
        "max(size_of(\"" + src + "\") / " + kT + ", 1)";
    std::vector<pattern::Op> body;
    body.push_back(
        po::open(pattern::Layer::kPosix, "in", src, io::OpenMode::kRead));
    body.push_back(
        po::open(pattern::Layer::kPosix, "out", dst, io::OpenMode::kWrite));
    body.push_back(po::read(pattern::Layer::kPosix, "in", Expr(kT),
                            Expr(drain_ops)));
    body.push_back(po::write(pattern::Layer::kPosix, "out", Expr(kT),
                             Expr(drain_ops)));
    body.push_back(po::close(pattern::Layer::kPosix, "in"));
    body.push_back(po::close(pattern::Layer::kPosix, "out"));
    ph.ops.push_back(po::spawn("hacc-io", std::move(body)));
  }
  ph.ops.push_back(po::barrier());

  // Restart: read the checkpoint back with the same round structure.
  if (P.do_restart_read) {
    const std::string offset_r = "min(r * " + kPer + ", " + kTotal + ") * " +
                                 std::to_string(stored);
    std::vector<pattern::Op> body;
    body.push_back(
        po::open(pattern::Layer::kPosix, "f", path, io::OpenMode::kRead));
    body.push_back(po::seek(pattern::Layer::kPosix, "f", Expr(offset_r)));
    body.push_back(po::seek_batch(pattern::Layer::kPosix, "f", Expr(ops_r)));
    body.push_back(po::read(xfer, "f", Expr(kT), Expr(ops_r)));
    body.push_back(po::close(pattern::Layer::kPosix, "f"));
    ph.ops.push_back(po::loop("r", Expr::lit(0),
                              Expr::lit(static_cast<std::int64_t>(rounds)),
                              std::move(body), {}, Expr(guard_r)));
  }
  ph.ops.push_back(po::barrier());

  g.phases.push_back(std::move(ph));
  pat.groups.push_back(std::move(g));
  return pat;
}

}  // namespace

HaccParams HaccParams::test() {
  HaccParams P;
  P.nodes = 2;
  P.ranks_per_node = 4;
  P.per_rank_bytes = 256 * util::kMiB;
  P.transfer = 4 * util::kMiB;
  P.rounds = 2;
  P.generate_compute = sim::seconds(0.05);
  return P;
}

Workload make_hacc(const HaccParams& params) {
  Workload w;
  w.decl.name = "HACC";
  w.decl.data_repr = "1D";
  w.decl.data_distribution = "uniform";
  w.decl.dataset_format = "bin";
  w.decl.format_attributes = "type: float, 9 variables";
  w.decl.file_size_dist = util::format_bytes(params.per_rank_bytes);
  w.decl.job_time_limit_hours = 2;
  w.decl.cpu_cores_used_per_node = params.ranks_per_node;
  w.decl.app_memory_per_node = 56 * util::kGiB;

  w.compile = [params](runtime::Simulation& sim,
                       const advisor::RunConfig& cfg) {
    return compile_hacc(sim, params, cfg);
  };
  w.launch = [params](runtime::Simulation& sim,
                      const advisor::RunConfig& cfg) {
    pattern::replay(sim, compile_hacc(sim, params, cfg));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig& cfg) {
    const auto app = sim.tracer().register_app("hacc-io");
    auto& comm = sim.add_comm(params.nodes * params.ranks_per_node,
                              params.nodes);
    for (int r = 0; r < comm.size(); ++r) {
      sim.engine().spawn(rank_body(sim, app, comm, r, params, cfg));
    }
  };
  return w;
}

}  // namespace wasp::workloads
