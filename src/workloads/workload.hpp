// Uniform workload harness.
//
// A Workload bundles (a) the owner-declared attributes, (b) an untraced
// setup task that stages input data, and (c) a launch function that spawns
// every simulated process honoring a RunConfig. The runner executes the
// whole Vani pipeline: run -> trace -> analyze -> characterize -> recommend.
#pragma once

#include <functional>
#include <string>

#include "advisor/config.hpp"
#include "advisor/rules.hpp"
#include "analysis/analyzer.hpp"
#include "cluster/spec.hpp"
#include "core/characterizer.hpp"
#include "pattern/pattern.hpp"
#include "runtime/scenario_runner.hpp"
#include "runtime/simulation.hpp"

namespace wasp::workloads {

struct Workload {
  charz::WorkloadDecl decl;
  /// Stage input datasets (runs untraced before t=0 of the job).
  std::function<sim::Task<void>(runtime::Simulation&)> setup;
  /// Spawn all job processes into the engine. For the ported models this is
  /// compile + pattern::replay.
  std::function<void(runtime::Simulation&, const advisor::RunConfig&)> launch;
  /// Compile params + RunConfig into the declarative pattern IR (null when
  /// the model has no pattern compiler). Takes the Simulation because file
  /// paths depend on its mount table.
  std::function<pattern::JobPattern(runtime::Simulation&,
                                    const advisor::RunConfig&)>
      compile;
  /// The original imperative launch path, kept as the equivalence oracle:
  /// replaying `compile`'s pattern must produce a byte-identical trace
  /// (tests/test_pattern_equivalence.cpp).
  std::function<void(runtime::Simulation&, const advisor::RunConfig&)>
      launch_reference;
};

struct RunOutput {
  analysis::WorkloadProfile profile;
  charz::WorkloadCharacterization characterization;
  std::vector<advisor::Recommendation> recommendations;
  /// Wall time of the job in simulated seconds (== profile.job_runtime_sec).
  double job_seconds = 0.0;
  std::uint64_t engine_events = 0;
  /// End-of-run PFS counters (meta/data ops, bytes, cache hits) — lets
  /// sweep drivers report storage-side effects without keeping the
  /// Simulation alive.
  fs::FsCounters pfs_counters;
};

/// Execute the full pipeline on a fresh Simulation.
RunOutput run(const cluster::ClusterSpec& spec, const Workload& workload,
              const advisor::RunConfig& cfg = advisor::RunConfig{},
              const analysis::Analyzer::Options& analyzer_opts =
                  analysis::Analyzer::Options{});

/// Like run(), but also hands the caller the Simulation afterwards (tests
/// that inspect filesystem state).
RunOutput run_with(runtime::Simulation& sim, const Workload& workload,
                   const advisor::RunConfig& cfg,
                   const analysis::Analyzer::Options& analyzer_opts);

/// run_with() with the trace spilled to disk: the tracer flushes closed
/// record batches into a SpillColumnStore under policy.dir/<name> mid-run,
/// and analysis streams over the spilled chunks with a bounded resident
/// set. The profile is byte-identical to run_with()'s. Chunk files are
/// removed before returning.
RunOutput run_spilled(runtime::Simulation& sim, const Workload& workload,
                      const advisor::RunConfig& cfg,
                      const analysis::Analyzer::Options& analyzer_opts,
                      const runtime::SpillPolicy& policy,
                      const std::string& name);

/// A named, self-contained run request for batch execution. The workload
/// factory is invoked on the worker thread that runs the scenario, so the
/// Workload and the entire simulation world it launches into (engine,
/// cluster, filesystems, tracer) stay thread-confined.
struct Scenario {
  std::string name;
  cluster::ClusterSpec spec;
  std::function<Workload()> make;
  advisor::RunConfig cfg;
  analysis::Analyzer::Options analyzer_opts;
  /// Optional hook run on the fresh Simulation before the pipeline starts —
  /// for runtime state the ClusterSpec can't express (e.g. toggling the
  /// PFS client cache). Runs on the scenario's worker thread.
  std::function<void(runtime::Simulation&)> prepare;
  /// Rough expected engine-event count, when the caller knows it (e.g. a
  /// sweep re-running a measured cell). 0 = unknown. Used only to decide
  /// whether fanning out across threads is worth the pool dispatch cost —
  /// never affects results.
  std::uint64_t est_events = 0;
};

/// Batches whose largest scenario stays under this many engine events run
/// serially even when the runner has worker threads: pool dispatch costs
/// more than the simulations (the ablation_stripe_size sweep measured a
/// 0.31x "speedup" at --jobs 4 on test-scale cells).
inline constexpr std::uint64_t kSerialScenarioEvents = 10'000;

/// The job count run_many will actually use for this batch: the runner's
/// jobs, or 1 when the batch is too small to be worth fanning out (single
/// scenario, or every scenario estimates under kSerialScenarioEvents).
int effective_jobs(const std::vector<Scenario>& scenarios,
                   const runtime::ScenarioRunner& runner);

/// Run independent scenarios concurrently via runtime::ScenarioRunner
/// (jobs == 0 -> util::default_jobs()). Results are in input order and
/// bit-identical to running each scenario sequentially.
std::vector<RunOutput> run_many(const std::vector<Scenario>& scenarios,
                                int jobs = 0);

/// run_many() on a caller-configured runner; honors the runner's
/// SpillPolicy (each scenario spills under policy.dir/<scenario name>) and
/// drops to serial execution when effective_jobs() says the batch is too
/// small to benefit.
std::vector<RunOutput> run_many(const std::vector<Scenario>& scenarios,
                                const runtime::ScenarioRunner& runner);

}  // namespace wasp::workloads
