// Montage galactic-plane workflow under Pegasus (paper §III-B.6, Figure 6).
//
// Nine kernels scheduled by a pegasus-mpi-cluster-style slot pool (1280
// worker processes over 32 nodes):
//   mProject(960) -> mDiff(5209) -> mConcatFit(1) -> mBgModel(1) ->
//   mBackground(960) -> mImgtbl(1) -> mAdd(32) -> mViewer(32)
// plus the staging kernel. mDiff dominates reads (~60% of the 139GB I/O);
// everything moves in 64KB-and-smaller STDIO transfers except mViewer's
// few >16MB writes. The long serial tail (mConcatFit/mBgModel and the
// 32-wide mAdd/mViewer waves) gives the workflow its 1038s runtime.
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct MontagePegasusParams {
  int nodes = 32;
  int slots = 1280;  ///< pegasus-mpi-cluster worker processes
  int input_files = 4778;
  util::Bytes input_size = 3 * util::kMB;
  int project_tasks = 960;
  int inputs_per_project = 5;
  util::Bytes projected_size = 15 * util::kMB;
  int diff_tasks = 5209;
  util::Bytes diff_output = 100 * util::kKB;
  int diff_shards = 32;  ///< diff outputs append into shared shard tables
  int background_tasks = 960;
  util::Bytes corrected_size = 9 * util::kMB;
  int add_tasks = 32;
  util::Bytes tile_size = 100 * util::kMB;
  int viewer_tasks = 32;
  util::Bytes image_size = 46 * util::kMB;
  util::Bytes transfer = 64 * util::kKiB;
  util::Bytes small_transfer = 4 * util::kKiB;
  sim::Time project_compute = sim::seconds(5);
  sim::Time diff_compute = sim::seconds(3);
  sim::Time concat_compute = sim::seconds(140);
  sim::Time bgmodel_compute = sim::seconds(250);
  sim::Time background_compute = sim::seconds(120);
  sim::Time imgtbl_compute = sim::seconds(30);
  sim::Time add_compute = sim::seconds(150);
  sim::Time viewer_compute = sim::seconds(300);

  static MontagePegasusParams paper() { return MontagePegasusParams{}; }
  static MontagePegasusParams test();
};

Workload make_montage_pegasus(
    const MontagePegasusParams& params = MontagePegasusParams{});

}  // namespace wasp::workloads
