// JAG ICF surrogate model (paper §III-B.4, Figure 4).
//
// 128 GPU processes read a single shared 200MB NumPy file through STDIO.
// Each rank reads its ~1.6MB sample share in <4KB accesses with two seeks
// per sample (npy header hop + sample hop) — 70% of ops are metadata.
// The first epoch feeds the input pipeline from the PFS; later epochs hit
// the in-memory sample cache (no I/O). Rank 0 writes a small checkpoint
// per epoch, and a validation read phase closes the job (the second I/O
// burst at the end of Fig. 4c).
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct JagParams {
  int nodes = 32;
  int procs_per_node = 4;
  util::Bytes dataset_bytes = 200 * util::kMB;
  util::Bytes sample_size = 2 * util::kKB;
  int epochs = 100;
  int batches_per_epoch = 25;
  /// First epoch is input-pipeline bound; later epochs hit the cache.
  sim::Time first_epoch_batch_compute = sim::seconds(2.5);
  sim::Time later_epoch_batch_compute = sim::seconds(0.44);
  util::Bytes checkpoint_bytes = 20 * util::kKB;
  /// Shuffled samples served per synchronous buffer fetch (locality of the
  /// shuffle window); lower = more random = slower input pipeline.
  std::uint32_t samples_per_fetch = 32;

  static JagParams paper() { return JagParams{}; }
  static JagParams test();
};

Workload make_jag(const JagParams& params = JagParams{});

}  // namespace wasp::workloads
