// HACC-I/O checkpoint/restart kernel (paper §III-B.2, Figure 2).
//
// File-per-process POSIX: every rank writes 632MB of particle variables in
// 16MB sequential transfers split over several open/write/close rounds
// (the repeated opens/closes behind HACC's 50% metadata share), then reads
// the checkpoint back to emulate restart. No compute beyond the in-memory
// generation phase — the job is almost pure I/O (75% of a 33s run).
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct HaccParams {
  int nodes = 32;
  int ranks_per_node = 40;
  util::Bytes per_rank_bytes = 632 * util::kMB;
  util::Bytes transfer = 16 * util::kMiB;
  int rounds = 7;  ///< open/write/close cycles per phase
  sim::Time generate_compute = sim::seconds(8.0);
  bool do_restart_read = true;

  static HaccParams paper() { return HaccParams{}; }
  static HaccParams test();
};

Workload make_hacc(const HaccParams& params = HaccParams{});

}  // namespace wasp::workloads
