// CosmoFlow deep-learning workload (paper §III-B.3, Figure 3, case study
// §V-A / Figure 7).
//
// 4 GPU processes per node read 49,664 HDF5 files of 32MB (1.5TB) through
// collective MPI-IO with 1MB transfers while training runs on the GPUs.
// The files are unchunked, so every access pays collective metadata reads —
// the metadata storm that makes 98% of I/O time metadata on GPFS.
//
// The optimized configuration (RunConfig::preload_input_to_node_local, what
// the advisor's "preload-input" rule sets) first copies each node's shard
// of the dataset into /dev/shm with an MPIFileUtils-style parallel job and
// then trains against node-local files.
#pragma once

#include "workloads/workload.hpp"

namespace wasp::workloads {

struct CosmoflowParams {
  int nodes = 32;
  int procs_per_node = 4;  ///< one per GPU
  std::uint64_t files = 49664;
  util::Bytes file_size = 32 * util::kMiB;
  util::Bytes transfer = util::kMiB;
  /// GPU time per training sample-file (calibrated for a 3567s job).
  sim::Time gpu_per_file = sim::seconds(2.05);
  /// Periodic checkpoints written by rank 0 (20MB total, 40KB ops).
  int checkpoints = 5;
  util::Bytes checkpoint_bytes = 4 * util::kMB;
  util::Bytes checkpoint_transfer = 40 * util::kKB;
  /// Per-node staging rate of the MPIFileUtils preload (copy + checksum +
  /// per-file metadata). The paper's Fig. 7 implies ~8GB/s aggregate at 32
  /// nodes for the 1.5TB stage-in, i.e. ~250-300MB/s per node.
  double preload_node_bps = 300e6;

  static CosmoflowParams paper() { return CosmoflowParams{}; }
  static CosmoflowParams test();

  std::uint64_t files_per_node() const {
    return (files + static_cast<std::uint64_t>(nodes) - 1) /
           static_cast<std::uint64_t>(nodes);
  }
};

Workload make_cosmoflow(const CosmoflowParams& params = CosmoflowParams{});

}  // namespace wasp::workloads
