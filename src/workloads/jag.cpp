#include "workloads/jag.hpp"

#include <algorithm>
#include <string>

#include "io/posix.hpp"
#include "io/stdio.hpp"
#include "pattern/replayer.hpp"
#include "util/rng.hpp"

namespace wasp::workloads {
namespace {

constexpr const char* kDatasetPath = "/p/gpfs1/jag/samples.npy";
constexpr const char* kCheckpointDir = "/p/gpfs1/jag/ckpt/";

sim::Task<void> stage_dataset(runtime::Simulation& sim, JagParams P) {
  const auto app = sim.tracer().register_app("jag-stage");
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  auto f = co_await posix.open(kDatasetPath, io::OpenMode::kWrite);
  co_await posix.write(f, P.dataset_bytes, 1);
  co_await posix.close(f);
}

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, int rank, JagParams P,
                          advisor::RunConfig cfg) {
  runtime::Proc p(sim, app, rank, comm.node_of(rank), &comm);
  io::Stdio stdio(p, cfg.stdio_buffer);
  util::Rng rng = util::Rng(0x1A6).fork(static_cast<std::uint64_t>(rank));

  // Every rank streams the whole shuffled dataset through its own input
  // pipeline during epoch 1 (128 x 200MB = the paper's 25GB of reads).
  const util::Bytes per_rank = P.dataset_bytes;
  const auto samples_per_rank = static_cast<std::uint32_t>(
      std::max<util::Bytes>(per_rank / P.sample_size, 1));
  const auto samples_per_batch = std::max<std::uint32_t>(
      samples_per_rank / static_cast<std::uint32_t>(P.batches_per_epoch), 1);

  // Epoch 1: shuffled sample reads (two seeks + one scattered read per
  // sample) interleaved with compute; shuffling defeats readahead so the
  // PFS serves synchronous small fetches.
  auto f = co_await stdio.fopen(kDatasetPath, io::OpenMode::kRead);
  for (int b = 0; b < P.batches_per_epoch; ++b) {
    if (f.logical_offset + samples_per_batch * P.sample_size >
        P.dataset_bytes) {
      co_await stdio.fseek(f, 0);
    }
    co_await stdio.fseek_batch(f, 2 * samples_per_batch);
    co_await stdio.fread_scattered(f, P.sample_size, samples_per_batch,
                                   std::max<std::uint32_t>(
                                       samples_per_batch / P.samples_per_fetch,
                                       1));
    co_await p.gpu_compute(static_cast<sim::Time>(
        static_cast<double>(P.first_epoch_batch_compute) *
        (0.9 + 0.2 * rng.uniform())));
  }
  co_await stdio.fclose(f);
  co_await p.barrier();

  // Epochs 2..N: sample cache hits, pure compute; rank 0 checkpoints.
  io::Posix posix(p);
  for (int e = 1; e < P.epochs; ++e) {
    for (int b = 0; b < P.batches_per_epoch; ++b) {
      co_await p.gpu_compute(static_cast<sim::Time>(
          static_cast<double>(P.later_epoch_batch_compute) *
          (0.9 + 0.2 * rng.uniform())));
    }
    if (rank == 0) {
      auto ck = co_await posix.open(std::string(kCheckpointDir) + "model.ckpt",
                                    io::OpenMode::kAppend);
      co_await posix.write(ck, 4 * util::kKB,
                           static_cast<std::uint32_t>(std::max<util::Bytes>(
                               P.checkpoint_bytes / (4 * util::kKB), 1)));
      co_await posix.close(ck);
    }
  }
  co_await p.barrier();

  // Validation pass at the end: re-read a quarter of the samples.
  auto v = co_await stdio.fopen(kDatasetPath, io::OpenMode::kRead);
  const auto val_samples = std::max<std::uint32_t>(samples_per_rank / 4, 1);
  co_await stdio.fseek_batch(v, val_samples);
  co_await stdio.fread_scattered(v, P.sample_size, val_samples,
                                 std::max<std::uint32_t>(
                                     val_samples / P.samples_per_fetch, 1));
  co_await stdio.fclose(v);
  co_await p.barrier();
}

/// Compile the JAG training loop into the pattern IR; replaying it is
/// byte-identical to rank_body() above.
pattern::JobPattern compile_jag(const JagParams& P,
                                const advisor::RunConfig& cfg) {
  namespace po = pattern::ops;
  using pattern::Expr;
  const auto lit = [](auto v) {
    return Expr::lit(static_cast<std::int64_t>(v));
  };

  const auto samples_per_rank =
      std::max<util::Bytes>(P.dataset_bytes / P.sample_size, 1);
  const auto samples_per_batch = std::max<std::uint32_t>(
      static_cast<std::uint32_t>(samples_per_rank) /
          static_cast<std::uint32_t>(P.batches_per_epoch),
      1);
  const auto fetch_ops =
      std::max<std::uint32_t>(samples_per_batch / P.samples_per_fetch, 1);
  const auto ckpt_ops =
      std::max<util::Bytes>(P.checkpoint_bytes / (4 * util::kKB), 1);
  const auto val_samples =
      std::max<std::uint32_t>(static_cast<std::uint32_t>(samples_per_rank) / 4,
                              1);
  const auto val_fetch =
      std::max<std::uint32_t>(val_samples / P.samples_per_fetch, 1);

  pattern::JobPattern pat;
  pat.name = "jag";
  pat.apps = {"jag-icf"};
  pat.comms.push_back({"world", P.nodes * P.procs_per_node, P.nodes, false});

  pattern::LaneGroup g;
  g.comm = "world";
  g.rng_seed = 0x1A6;
  g.stdio_buffer = cfg.stdio_buffer;

  pattern::PhasePattern ph;
  ph.app = "jag-icf";

  // Epoch 1: shuffled sample reads interleaved with compute.
  ph.ops.push_back(po::open(pattern::Layer::kStdio, "f", kDatasetPath,
                            io::OpenMode::kRead));
  {
    std::vector<pattern::Op> batch;
    batch.push_back(po::seek_if_wrap(
        "f", lit(static_cast<util::Bytes>(samples_per_batch) * P.sample_size),
        lit(P.dataset_bytes)));
    batch.push_back(po::seek_batch(pattern::Layer::kStdio, "f",
                                   lit(2 * samples_per_batch)));
    batch.push_back(po::read_scattered("f", lit(P.sample_size),
                                       lit(samples_per_batch),
                                       lit(fetch_ops)));
    batch.push_back(
        po::gpu_compute(P.first_epoch_batch_compute, 0.9, 0.2));
    ph.ops.push_back(po::loop("b", Expr::lit(0), lit(P.batches_per_epoch),
                              std::move(batch)));
  }
  ph.ops.push_back(po::close(pattern::Layer::kStdio, "f"));
  ph.ops.push_back(po::barrier());

  // Epochs 2..N: cache hits, pure compute; rank 0 checkpoints per epoch.
  {
    std::vector<pattern::Op> batch;
    batch.push_back(po::gpu_compute(P.later_epoch_batch_compute, 0.9, 0.2));
    std::vector<pattern::Op> rank0;
    rank0.push_back(po::open(pattern::Layer::kPosix, "ck",
                             std::string(kCheckpointDir) + "model.ckpt",
                             io::OpenMode::kAppend));
    rank0.push_back(po::write(pattern::Layer::kPosix, "ck", lit(4 * util::kKB),
                              lit(ckpt_ops)));
    rank0.push_back(po::close(pattern::Layer::kPosix, "ck"));
    std::vector<pattern::Op> epoch;
    epoch.push_back(po::loop("b", Expr::lit(0), lit(P.batches_per_epoch),
                             std::move(batch)));
    epoch.push_back(po::when(Expr("rank == 0"), std::move(rank0)));
    ph.ops.push_back(
        po::loop("e", Expr::lit(1), lit(P.epochs), std::move(epoch)));
  }
  ph.ops.push_back(po::barrier());

  // Validation pass: re-read a quarter of the samples.
  ph.ops.push_back(po::open(pattern::Layer::kStdio, "v", kDatasetPath,
                            io::OpenMode::kRead));
  ph.ops.push_back(
      po::seek_batch(pattern::Layer::kStdio, "v", lit(val_samples)));
  ph.ops.push_back(po::read_scattered("v", lit(P.sample_size),
                                      lit(val_samples), lit(val_fetch)));
  ph.ops.push_back(po::close(pattern::Layer::kStdio, "v"));
  ph.ops.push_back(po::barrier());

  g.phases.push_back(std::move(ph));
  pat.groups.push_back(std::move(g));
  return pat;
}

}  // namespace

JagParams JagParams::test() {
  JagParams P;
  P.nodes = 2;
  P.procs_per_node = 2;
  P.dataset_bytes = 8 * util::kMiB;
  P.sample_size = 2 * util::kKiB;
  P.epochs = 3;
  P.batches_per_epoch = 4;
  P.first_epoch_batch_compute = sim::seconds(0.3);
  P.later_epoch_batch_compute = sim::seconds(0.4);
  return P;
}

Workload make_jag(const JagParams& params) {
  Workload w;
  w.decl.name = "JAG";
  w.decl.data_repr = "3D";
  w.decl.data_distribution = "normal";
  w.decl.dataset_format = "npy";
  w.decl.format_attributes = "type: float, #datasets: 1, #dims: 3";
  w.decl.file_size_dist = util::format_bytes(params.dataset_bytes);
  w.decl.job_time_limit_hours = 6;
  w.decl.cpu_cores_used_per_node = params.procs_per_node;
  w.decl.gpus_used_per_node = params.procs_per_node;
  w.decl.app_memory_per_node = 60 * util::kGiB;

  w.setup = [params](runtime::Simulation& sim) {
    return stage_dataset(sim, params);
  };
  w.compile = [params](runtime::Simulation&, const advisor::RunConfig& cfg) {
    return compile_jag(params, cfg);
  };
  w.launch = [params](runtime::Simulation& sim,
                      const advisor::RunConfig& cfg) {
    pattern::replay(sim, compile_jag(params, cfg));
  };
  w.launch_reference = [params](runtime::Simulation& sim,
                                const advisor::RunConfig& cfg) {
    const auto app = sim.tracer().register_app("jag-icf");
    auto& comm = sim.add_comm(params.nodes * params.procs_per_node,
                              params.nodes);
    for (int r = 0; r < comm.size(); ++r) {
      sim.engine().spawn(rank_body(sim, app, comm, r, params, cfg));
    }
  };
  return w;
}

}  // namespace wasp::workloads
