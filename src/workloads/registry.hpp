// Convenience registry of the six exemplar workloads at paper scale,
// in the order of the paper's tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workloads/cm1.hpp"
#include "workloads/cosmoflow.hpp"
#include "workloads/hacc.hpp"
#include "workloads/jag.hpp"
#include "workloads/montage_mpi.hpp"
#include "workloads/montage_pegasus.hpp"

namespace wasp::workloads {

struct RegistryEntry {
  std::string name;         ///< the paper's column label
  std::function<Workload()> make_paper;
  std::function<Workload()> make_test;
};

inline std::vector<RegistryEntry> paper_workloads() {
  return {
      {"CM1", [] { return make_cm1(Cm1Params::paper()); },
       [] { return make_cm1(Cm1Params::test()); }},
      {"HACC (FPP)", [] { return make_hacc(HaccParams::paper()); },
       [] { return make_hacc(HaccParams::test()); }},
      {"Cosmoflow", [] { return make_cosmoflow(CosmoflowParams::paper()); },
       [] { return make_cosmoflow(CosmoflowParams::test()); }},
      {"JAG", [] { return make_jag(JagParams::paper()); },
       [] { return make_jag(JagParams::test()); }},
      {"Montage MPI",
       [] { return make_montage_mpi(MontageMpiParams::paper()); },
       [] { return make_montage_mpi(MontageMpiParams::test()); }},
      {"Montage Pegasus",
       [] { return make_montage_pegasus(MontagePegasusParams::paper()); },
       [] { return make_montage_pegasus(MontagePegasusParams::test()); }},
  };
}

}  // namespace wasp::workloads
