// Convenience registry of the six exemplar workloads at paper scale,
// in the order of the paper's tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "workloads/cm1.hpp"
#include "workloads/cosmoflow.hpp"
#include "workloads/hacc.hpp"
#include "workloads/jag.hpp"
#include "workloads/montage_mpi.hpp"
#include "workloads/montage_pegasus.hpp"

namespace wasp::workloads {

struct RegistryEntry {
  std::string id;           ///< stable kebab-case identifier for CLIs
  std::string name;         ///< the paper's column label
  std::function<Workload()> make_paper;
  std::function<Workload()> make_test;
};

inline std::vector<RegistryEntry> paper_workloads() {
  return {
      {"cm1", "CM1", [] { return make_cm1(Cm1Params::paper()); },
       [] { return make_cm1(Cm1Params::test()); }},
      {"hacc-fpp", "HACC (FPP)", [] { return make_hacc(HaccParams::paper()); },
       [] { return make_hacc(HaccParams::test()); }},
      {"cosmoflow", "Cosmoflow",
       [] { return make_cosmoflow(CosmoflowParams::paper()); },
       [] { return make_cosmoflow(CosmoflowParams::test()); }},
      {"jag", "JAG", [] { return make_jag(JagParams::paper()); },
       [] { return make_jag(JagParams::test()); }},
      {"montage-mpi", "Montage MPI",
       [] { return make_montage_mpi(MontageMpiParams::paper()); },
       [] { return make_montage_mpi(MontageMpiParams::test()); }},
      {"montage-pegasus", "Montage Pegasus",
       [] { return make_montage_pegasus(MontagePegasusParams::paper()); },
       [] { return make_montage_pegasus(MontagePegasusParams::test()); }},
  };
}

/// Find a registry entry by its stable id, accepting a few legacy CLI
/// aliases ("hacc" for "hacc-fpp"). Returns -1 when nothing matches.
inline int find_workload(const std::string& key) {
  const auto entries = paper_workloads();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].id == key) return static_cast<int>(i);
  }
  if (key == "hacc") return find_workload("hacc-fpp");
  return -1;
}

}  // namespace wasp::workloads
