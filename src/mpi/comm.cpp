#include "mpi/comm.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::mpi {
namespace {

int ceil_log2(int n) noexcept {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return std::max(bits, 1);
}

}  // namespace

Comm::Comm(sim::Engine& eng, std::vector<int> rank_to_node, NetParams net)
    : eng_(eng), rank_to_node_(std::move(rank_to_node)), net_(net) {
  WASP_CHECK_MSG(!rank_to_node_.empty(), "empty communicator");
  num_nodes_ = *std::max_element(rank_to_node_.begin(), rank_to_node_.end()) +
               1;
  node_ranks_.resize(static_cast<std::size_t>(num_nodes_));
  for (int r = 0; r < size(); ++r) {
    node_ranks_[static_cast<std::size_t>(rank_to_node_[
        static_cast<std::size_t>(r)])].push_back(r);
  }
  leader_by_rank_.resize(rank_to_node_.size());
  for (int r = 0; r < size(); ++r) {
    const auto& ranks =
        node_ranks_[static_cast<std::size_t>(rank_to_node_[
            static_cast<std::size_t>(r)])];
    WASP_CHECK(!ranks.empty());
    leader_by_rank_[static_cast<std::size_t>(r)] = ranks.front();
  }
  tree_latency_ = net_.latency * static_cast<sim::Time>(ceil_log2(size()));
}

int Comm::node_of(int rank) const {
  WASP_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
  return rank_to_node_[static_cast<std::size_t>(rank)];
}

const std::vector<int>& Comm::ranks_on_node(int node) const {
  WASP_CHECK_MSG(node >= 0 && node < num_nodes_, "node out of range");
  return node_ranks_[static_cast<std::size_t>(node)];
}

sim::Task<void> Comm::barrier() {
  const std::uint64_t gen = barrier_gen_;
  if (++barrier_arrived_ == size()) {
    barrier_arrived_ = 0;
    ++barrier_gen_;
    co_await sim::Delay(eng_, tree_latency());
    auto it = barrier_events_.find(gen);
    if (it != barrier_events_.end()) {
      it->second->set();
      barrier_events_.erase(it);
    }
    co_return;
  }
  auto& ev = barrier_events_[gen];
  if (!ev) ev = std::make_unique<sim::Event>(eng_);
  co_await ev->wait();
}

sim::Task<void> Comm::bcast(int rank, int root, util::Bytes n) {
  WASP_CHECK(root >= 0 && root < size());
  co_await barrier();
  if (rank != root && n > 0) {
    co_await sim::Delay(
        eng_, tree_latency() +
                  sim::seconds(static_cast<double>(n) / net_.bandwidth_bps));
  }
}

sim::Task<void> Comm::gather(int rank, int root, util::Bytes per_rank) {
  co_await barrier();
  const util::Bytes moved =
      rank == root ? per_rank * static_cast<util::Bytes>(size()) : per_rank;
  if (moved > 0) {
    co_await sim::Delay(
        eng_, tree_latency() + sim::seconds(static_cast<double>(moved) /
                                            net_.bandwidth_bps));
  }
}

sim::Task<void> Comm::allreduce(util::Bytes n) {
  co_await barrier();
  if (n > 0) {
    // Recursive-doubling: log2(P) rounds, each moving n bytes.
    const double sec = static_cast<double>(n) / net_.bandwidth_bps *
                       ceil_log2(size());
    co_await sim::Delay(eng_, tree_latency() + sim::seconds(sec));
  }
}

Comm::Mailbox& Comm::mailbox(int rank, int tag) {
  return mailboxes_[{rank, tag}];
}

sim::Task<void> Comm::send(int from, int to, util::Bytes n, int tag) {
  WASP_CHECK_MSG(to >= 0 && to < size(), "send to invalid rank");
  auto& box = mailbox(to, tag);
  box.messages.push_back(Message{from, n});
  if (box.arrival) box.arrival->set();
  co_await sim::Delay(eng_, net_.latency);
}

sim::Task<Comm::Message> Comm::recv(int rank, int from, int tag) {
  auto& box = mailbox(rank, tag);
  for (;;) {
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [from](const Message& m) {
                             return from < 0 || m.from == from;
                           });
    if (it != box.messages.end()) {
      Message msg = *it;
      box.messages.erase(it);
      co_await sim::Delay(
          eng_, net_.latency + sim::seconds(static_cast<double>(msg.bytes) /
                                            net_.bandwidth_bps));
      co_return msg;
    }
    if (!box.arrival) box.arrival = std::make_unique<sim::Event>(eng_);
    box.arrival->reset();
    co_await box.arrival->wait();
  }
}

std::size_t Comm::pending(int rank, int tag) const {
  auto it = mailboxes_.find({rank, tag});
  return it == mailboxes_.end() ? 0 : it->second.messages.size();
}

}  // namespace wasp::mpi
