// Simulated MPI communicator.
//
// Models the synchronization and network cost of the MPI operations the
// exemplar workloads use: barrier, bcast, gather, allreduce, point-to-point
// send/recv (the Pegasus master/worker scheduler), plus the node topology
// queries collective I/O aggregation needs. Collectives charge an analytic
// log2(P) latency + bandwidth term; point-to-point goes through mailboxes so
// true dataflow ordering (a recv completes only after the matching send) is
// preserved.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/units.hpp"

namespace wasp::mpi {

struct NetParams {
  double bandwidth_bps = 12.5e9;
  sim::Time latency = 1 * sim::kUs;
};

class Comm {
 public:
  /// rank_to_node[r] = node hosting rank r.
  Comm(sim::Engine& eng, std::vector<int> rank_to_node, NetParams net);

  int size() const noexcept { return static_cast<int>(rank_to_node_.size()); }
  int node_of(int rank) const;
  int num_nodes() const noexcept { return num_nodes_; }
  const std::vector<int>& ranks_on_node(int node) const;
  /// Lowest rank mapped to the same node as `rank`. Precomputed at
  /// construction: the MPI-IO aggregation path asks on every collective op.
  int node_leader(int rank) const {
    WASP_CHECK_MSG(rank >= 0 && rank < size(), "rank out of range");
    return leader_by_rank_[static_cast<std::size_t>(rank)];
  }
  bool is_node_leader(int rank) const { return node_leader(rank) == rank; }

  /// All ranks must call; completes when the last arrives (+ log2 latency).
  sim::Task<void> barrier();

  /// Synchronizing bcast of n bytes from root; all ranks call.
  sim::Task<void> bcast(int rank, int root, util::Bytes n);

  /// Gather per_rank bytes to root; all ranks call.
  sim::Task<void> gather(int rank, int root, util::Bytes per_rank);

  /// Allreduce of n bytes; all ranks call.
  sim::Task<void> allreduce(util::Bytes n);

  /// Asynchronous-completion send: enqueues the message and pays latency.
  sim::Task<void> send(int from, int to, util::Bytes n, int tag = 0);

  struct Message {
    int from = -1;
    util::Bytes bytes = 0;
  };
  /// Blocks until a message with `tag` addressed to `rank` arrives
  /// (from == -1 matches any sender), then pays the transfer cost.
  sim::Task<Message> recv(int rank, int from = -1, int tag = 0);

  /// Messages queued for (rank, tag) right now.
  std::size_t pending(int rank, int tag = 0) const;

  const NetParams& net() const noexcept { return net_; }

  /// Latency of a log-tree collective over P ranks.
  sim::Time tree_latency() const noexcept { return tree_latency_; }

 private:
  struct Mailbox {
    std::deque<Message> messages;
    std::unique_ptr<sim::Event> arrival;
  };
  Mailbox& mailbox(int rank, int tag);

  sim::Engine& eng_;
  std::vector<int> rank_to_node_;
  std::vector<std::vector<int>> node_ranks_;
  std::vector<int> leader_by_rank_;
  sim::Time tree_latency_ = 0;
  int num_nodes_ = 0;
  NetParams net_;

  // Barrier generations.
  std::uint64_t barrier_gen_ = 0;
  int barrier_arrived_ = 0;
  std::map<std::uint64_t, std::unique_ptr<sim::Event>> barrier_events_;

  std::map<std::pair<int, int>, Mailbox> mailboxes_;
};

}  // namespace wasp::mpi
