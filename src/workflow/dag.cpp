#include "workflow/dag.hpp"

#include <deque>

#include "sim/sync.hpp"
#include "sim/waitgroup.hpp"
#include "util/error.hpp"

namespace wasp::workflow {

int Dag::add_task(TaskSpec spec) {
  tasks_.push_back(std::move(spec));
  deps_.emplace_back();
  return static_cast<int>(tasks_.size() - 1);
}

void Dag::add_dependency(int task, int dep) {
  WASP_CHECK_MSG(task >= 0 && static_cast<std::size_t>(task) < tasks_.size(),
                 "bad task id");
  WASP_CHECK_MSG(dep >= 0 && static_cast<std::size_t>(dep) < tasks_.size(),
                 "bad dependency id");
  WASP_CHECK_MSG(dep != task, "self dependency");
  deps_[static_cast<std::size_t>(task)].push_back(dep);
}

bool Dag::acyclic() const {
  // Kahn's algorithm.
  std::vector<int> remaining(tasks_.size(), 0);
  std::vector<std::vector<int>> dependents(tasks_.size());
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    remaining[t] = static_cast<int>(deps_[t].size());
    for (int d : deps_[t]) {
      dependents[static_cast<std::size_t>(d)].push_back(static_cast<int>(t));
    }
  }
  std::deque<int> ready;
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    if (remaining[t] == 0) ready.push_back(static_cast<int>(t));
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const int t = ready.front();
    ready.pop_front();
    ++seen;
    for (int d : dependents[static_cast<std::size_t>(t)]) {
      if (--remaining[static_cast<std::size_t>(d)] == 0) ready.push_back(d);
    }
  }
  return seen == tasks_.size();
}

PegasusScheduler::PegasusScheduler(runtime::Simulation& sim, Options opts)
    : sim_(sim), opts_(opts) {
  WASP_CHECK_MSG(opts_.slots > 0, "scheduler needs at least one slot");
  WASP_CHECK_MSG(opts_.nodes > 0, "scheduler needs at least one node");
}

int PegasusScheduler::pick_node(const TaskSpec& spec, int slot_index) const {
  if (opts_.locality_aware && spec.preferred_node >= 0 &&
      spec.preferred_node < opts_.nodes) {
    return spec.preferred_node;
  }
  return slot_index % opts_.nodes;
}

namespace {

struct RunState {
  const Dag* dag = nullptr;
  std::vector<int> remaining;
  std::vector<std::vector<int>> dependents;
  std::deque<int> ready;
  std::size_t completed = 0;
  int dispatch_counter = 0;
  sim::Resource* slots = nullptr;
  sim::Event* wake = nullptr;
};

}  // namespace

sim::Task<void> PegasusScheduler::run(
    const Dag& dag,
    std::function<std::uint16_t(const std::string&)> app_id_of) {
  WASP_CHECK_MSG(dag.acyclic(), "workflow DAG has a cycle");
  const std::size_t n = dag.size();
  if (n == 0) co_return;

  sim::Resource slots(sim_.engine(), static_cast<std::size_t>(opts_.slots));
  sim::Event wake(sim_.engine());
  RunState st;
  st.dag = &dag;
  st.remaining.assign(n, 0);
  st.dependents.assign(n, {});
  st.slots = &slots;
  st.wake = &wake;
  for (std::size_t t = 0; t < n; ++t) {
    st.remaining[t] = static_cast<int>(dag.deps(static_cast<int>(t)).size());
    for (int d : dag.deps(static_cast<int>(t))) {
      st.dependents[static_cast<std::size_t>(d)].push_back(
          static_cast<int>(t));
    }
    if (st.remaining[t] == 0) st.ready.push_back(static_cast<int>(t));
  }

  auto run_task = [this, &app_id_of](RunState& s, int id) -> sim::Task<void> {
    auto slot = co_await s.slots->acquire();
    const TaskSpec& spec = s.dag->task(id);
    const int node = pick_node(spec, s.dispatch_counter++);
    runtime::Proc proc(sim_, app_id_of(spec.app), /*rank=*/id, node);
    co_await spec.body(proc);
    slot.release();
    ++executed_;
    ++s.completed;
    for (int d : s.dependents[static_cast<std::size_t>(id)]) {
      if (--s.remaining[static_cast<std::size_t>(d)] == 0) {
        s.ready.push_back(d);
      }
    }
    s.wake->set();
  };

  sim::WaitGroup wg(sim_.engine());
  std::size_t launched = 0;
  while (launched < n) {
    while (!st.ready.empty()) {
      const int id = st.ready.front();
      st.ready.pop_front();
      ++launched;
      wg.launch(run_task(st, id));
    }
    if (launched < n) {
      wake.reset();
      co_await wake.wait();
    }
  }
  co_await wg.wait();
  WASP_CHECK(st.completed == n);
}

}  // namespace wasp::workflow
