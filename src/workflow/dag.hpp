// Workflow DAG + schedulers.
//
// Two execution models from the paper:
//  * MPI-style (Montage-with-MPI): hand-sequenced stages, some parallel —
//    the workload code drives that directly.
//  * Pegasus-style (Montage-with-Pegasus): thousands of single-process
//    tasks scheduled by pegasus-mpi-cluster onto a fixed pool of MPI worker
//    slots. PegasusScheduler models that master/worker slot pool, with
//    optional locality-aware placement (the §IV-D.4 optimization).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "runtime/proc.hpp"
#include "runtime/simulation.hpp"
#include "sim/task.hpp"

namespace wasp::workflow {

/// A single-process task (one executable invocation in the workflow).
struct TaskSpec {
  std::string app;  ///< kernel name ("mProject", "mDiff", ...)
  /// Body runs in a Proc placed on the node the scheduler picks.
  std::function<sim::Task<void>(runtime::Proc&)> body;
  /// Preferred node for locality-aware placement (-1 = any). Typically the
  /// node where the task's inputs were produced.
  int preferred_node = -1;
};

class Dag {
 public:
  /// Returns the task id.
  int add_task(TaskSpec spec);
  /// `task` cannot start until `dep` finished.
  void add_dependency(int task, int dep);

  std::size_t size() const noexcept { return tasks_.size(); }
  const TaskSpec& task(int id) const { return tasks_.at(static_cast<std::size_t>(id)); }
  const std::vector<int>& deps(int id) const {
    return deps_.at(static_cast<std::size_t>(id));
  }

  /// True when the dependency graph has no cycle.
  bool acyclic() const;

 private:
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<int>> deps_;
};

/// pegasus-mpi-cluster model: `slots` worker processes spread over the
/// job's nodes execute ready tasks; each task occupies one slot.
class PegasusScheduler {
 public:
  struct Options {
    int slots = 64;            ///< total worker processes
    int nodes = 1;             ///< nodes the pool spans
    bool locality_aware = false;
    std::uint16_t scheduler_app = 0;  ///< tracer app id for scheduler ranks
  };

  PegasusScheduler(runtime::Simulation& sim, Options opts);

  /// Run the whole DAG to completion. `dag` must outlive the returned
  /// task; `app_id_of` is taken by value because coroutines outlive their
  /// call expression (a reference to a temporary would dangle).
  sim::Task<void> run(const Dag& dag,
                      std::function<std::uint16_t(const std::string&)>
                          app_id_of);

  std::uint64_t tasks_executed() const noexcept { return executed_; }

 private:
  int pick_node(const TaskSpec& spec, int slot_index) const;

  runtime::Simulation& sim_;
  Options opts_;
  std::uint64_t executed_ = 0;
};

}  // namespace wasp::workflow
