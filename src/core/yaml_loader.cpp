#include "core/yaml_loader.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/parse.hpp"
#include "util/yaml_reader.hpp"

namespace wasp::charz {
namespace {

using util::yaml::Node;

int to_int(const std::string& v, int fallback = 0) {
  try {
    return std::stoi(v);
  } catch (...) {
    return fallback;
  }
}

std::uint64_t to_u64(const std::string& v, std::uint64_t fallback = 0) {
  try {
    return std::stoull(v);
  } catch (...) {
    return fallback;
  }
}

util::Bytes bytes_of(const Node& n, const std::string& key) {
  return util::parse_bytes(n.get(key, "0B")).value_or(0);
}

double seconds_of(const Node& n, const std::string& key) {
  return util::parse_seconds(n.get(key, "0s")).value_or(0);
}

double ops_dist_of(const Node& n, const std::string& key) {
  return util::parse_ops_dist(n.get(key, "")).value_or(0);
}

void load_fpp_shared(const Node& n, std::uint64_t& fpp,
                     std::uint64_t& shared) {
  auto parsed = util::parse_fpp_shared(n.get("fpp_shared_file_access", ""));
  if (parsed) {
    fpp = parsed->first;
    shared = parsed->second;
  }
}

bool flag_of(const Node& n, const std::string& key) {
  return n.get(key, "NA") == "yes";
}

}  // namespace

WorkloadCharacterization from_yaml(const std::string& text) {
  const Node root = util::yaml::parse(text);
  WASP_CHECK_MSG(root.is_map(), "characterization YAML must be a map");
  WorkloadCharacterization c;
  c.workload = root.get("workload", "workload");

  const Node* job = root.find("job");
  WASP_CHECK_MSG(job != nullptr && job->is_map(),
                 "characterization YAML missing 'job'");
  if (const Node* jc = job->find("job_configuration"); jc != nullptr) {
    c.job.nodes = to_int(jc->get("nodes"));
    c.job.cpu_cores_per_node = to_int(jc->get("cpu_cores_per_node"));
    c.job.gpus_per_node = to_int(jc->get("gpus_per_node"));
    c.job.node_local_bb_dirs = jc->get("node_local_bb_dir", "NA");
    c.job.shared_bb_dir = jc->get("shared_bb_dir", "NA");
    c.job.pfs_dir = jc->get("pfs_dir");
    c.job.job_time_limit_hours =
        util::parse_seconds(jc->get("job_time_limit", "0s")).value_or(0) /
        3600.0;
  }
  if (const Node* wf = job->find("workflow"); wf != nullptr) {
    c.workflow.cpu_cores_used_per_node =
        to_int(wf->get("cpu_cores_used_per_node"));
    c.workflow.gpus_used_per_node = to_int(wf->get("gpus_used_per_node"));
    c.workflow.num_apps = to_int(wf->get("num_apps"));
    c.workflow.has_app_data_dependency = flag_of(*wf, "app_data_dependency");
    load_fpp_shared(*wf, c.workflow.fpp_files, c.workflow.shared_files);
    c.workflow.io_amount = bytes_of(*wf, "io_amount");
    c.workflow.data_ops_fraction = ops_dist_of(*wf, "io_ops_dist");
    c.workflow.runtime_sec = seconds_of(*wf, "runtime");
  }
  if (const Node* apps = job->find("applications");
      apps != nullptr && apps->is_seq()) {
    for (const Node& item : apps->items()) {
      ApplicationEntity app;
      app.name = item.get("name");
      app.num_processes = to_int(item.get("num_processes"));
      app.has_process_data_dependency =
          flag_of(item, "process_data_dependency");
      load_fpp_shared(item, app.fpp_files, app.shared_files);
      app.io_amount = bytes_of(item, "io_amount");
      app.data_ops_fraction = ops_dist_of(item, "io_ops_dist");
      app.interface = item.get("interface");
      app.runtime_sec = seconds_of(item, "runtime");
      c.applications.push_back(std::move(app));
    }
  }
  if (const Node* phases = job->find("io_phases");
      phases != nullptr && phases->is_seq()) {
    for (const Node& item : phases->items()) {
      IoPhaseEntity ph;
      ph.app = item.get("app");
      ph.index = to_int(item.get("phase"));
      ph.io_amount = bytes_of(item, "io_amount");
      ph.data_ops_fraction = ops_dist_of(item, "io_ops_dist");
      ph.frequency = item.get("frequency");
      ph.runtime_sec = seconds_of(item, "runtime");
      c.phases.push_back(std::move(ph));
    }
  }

  const Node* sw = root.find("software");
  WASP_CHECK_MSG(sw != nullptr && sw->is_map(),
                 "characterization YAML missing 'software'");
  if (const Node* hl = sw->find("high_level_io"); hl != nullptr) {
    c.high_level_io.data_repr = hl->get("data_repr");
    c.high_level_io.data_granularity = bytes_of(*hl, "granularity_data");
    c.high_level_io.meta_granularity = bytes_of(*hl, "granularity_meta");
    c.high_level_io.access_pattern = hl->get("access_pattern");
    c.high_level_io.data_distribution = hl->get("data_dist");
  }
  if (const Node* mw = sw->find("middleware"); mw != nullptr) {
    c.middleware.extra_io_cores_per_node =
        to_int(mw->get("extra_io_cores_per_node"));
    c.middleware.data_granularity = bytes_of(*mw, "granularity_data");
    c.middleware.meta_granularity = bytes_of(*mw, "granularity_meta");
    c.middleware.memory_per_node = bytes_of(*mw, "memory_per_node");
    c.middleware.access_pattern = mw->get("access_pattern");
  }
  if (const Node* nls = sw->find("node_local_storage");
      nls != nullptr && nls->is_seq()) {
    for (const Node& item : nls->items()) {
      NodeLocalStorageEntity e;
      e.dir = item.get("dir");
      e.parallel_ops = to_int(item.get("parallel_ops"));
      e.capacity_per_node = bytes_of(item, "capacity_per_node");
      e.max_bandwidth_bps =
          util::parse_rate(item.get("max_io_bw_per_node", "0B/s"))
              .value_or(0);
      c.node_local.push_back(std::move(e));
    }
  }
  if (const Node* ss = sw->find("shared_storage"); ss != nullptr) {
    c.shared_storage.dir = ss->get("dir");
    c.shared_storage.parallel_servers = to_int(ss->get("parallel_servers"));
    c.shared_storage.capacity = bytes_of(*ss, "capacity");
    c.shared_storage.max_bandwidth_bps =
        util::parse_rate(ss->get("max_io_bw", "0B/s")).value_or(0);
  }

  const Node* data = root.find("data");
  WASP_CHECK_MSG(data != nullptr && data->is_map(),
                 "characterization YAML missing 'data'");
  if (const Node* ds = data->find("dataset"); ds != nullptr) {
    c.dataset.format = ds->get("format");
    c.dataset.size = bytes_of(*ds, "size");
    c.dataset.num_files = to_u64(ds->get("num_files"));
    c.dataset.io_amount = bytes_of(*ds, "io_amount");
    c.dataset.io_time_sec = seconds_of(*ds, "io_time");
    c.dataset.data_ops_fraction = ops_dist_of(*ds, "io_ops_dist");
    c.dataset.file_size_dist = ds->get("file_size_dist");
  }
  if (const Node* f = data->find("file"); f != nullptr) {
    c.file.path = f->get("path");
    c.file.format = f->get("format");
    c.file.size = bytes_of(*f, "size");
    c.file.io_amount = bytes_of(*f, "io_amount");
    c.file.io_time_sec = seconds_of(*f, "io_time");
    c.file.data_ops_fraction = ops_dist_of(*f, "io_ops_dist");
    c.file.format_attributes = f->get("format_attributes");
  }
  return c;
}

WorkloadCharacterization load_yaml_file(const std::string& path) {
  std::ifstream is(path);
  WASP_CHECK_MSG(is.good(), "cannot open characterization file: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return from_yaml(buf.str());
}

}  // namespace wasp::charz
