// Load a WorkloadCharacterization back from its Vani-style YAML document —
// the paper's end vision: "these features can be loaded by any storage
// system and perform automatic configurations for optimizing I/O".
//
// Together with advisor::RuleEngine this closes the loop: a user ships a
// feature file with their job script; the storage system parses it and
// configures itself without ever seeing the original trace.
#pragma once

#include <string>

#include "core/entities.hpp"

namespace wasp::charz {

/// Parse a document produced by WorkloadCharacterization::to_yaml().
/// Throws util::SimError on documents outside the supported schema.
WorkloadCharacterization from_yaml(const std::string& text);

/// Convenience: load from a file.
WorkloadCharacterization load_yaml_file(const std::string& path);

}  // namespace wasp::charz
