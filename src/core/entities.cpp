#include "core/entities.hpp"

#include "util/yaml.hpp"

namespace wasp::charz {
namespace {

std::string fmt_bool(bool v) { return v ? "yes" : "NA"; }

std::string fmt_ops_dist(double data_fraction) {
  return util::format_percent(data_fraction) + " data, " +
         util::format_percent(1.0 - data_fraction) + " meta";
}

void emit(util::yaml::Writer& y, const AttrList& attrs) {
  for (const auto& [k, v] : attrs) y.scalar(k, v);
}

}  // namespace

AttrList JobConfigEntity::attributes() const {
  return {
      {"nodes", std::to_string(nodes)},
      {"cpu_cores_per_node", std::to_string(cpu_cores_per_node)},
      {"gpus_per_node", std::to_string(gpus_per_node)},
      {"node_local_bb_dir", node_local_bb_dirs},
      {"shared_bb_dir", shared_bb_dir},
      {"pfs_dir", pfs_dir},
      {"job_time_limit", util::format_seconds(job_time_limit_hours * 3600)},
  };
}

AttrList WorkflowEntity::attributes() const {
  return {
      {"cpu_cores_used_per_node", std::to_string(cpu_cores_used_per_node)},
      {"gpus_used_per_node", std::to_string(gpus_used_per_node)},
      {"num_apps", std::to_string(num_apps)},
      {"app_data_dependency", fmt_bool(has_app_data_dependency)},
      {"fpp_shared_file_access", std::to_string(fpp_files) + "/" +
                                     std::to_string(shared_files)},
      {"io_amount", util::format_bytes(io_amount)},
      {"io_ops_dist", fmt_ops_dist(data_ops_fraction)},
      {"runtime", util::format_seconds(runtime_sec)},
  };
}

AttrList ApplicationEntity::attributes() const {
  return {
      {"name", name},
      {"num_processes", std::to_string(num_processes)},
      {"process_data_dependency", fmt_bool(has_process_data_dependency)},
      {"fpp_shared_file_access", std::to_string(fpp_files) + "/" +
                                     std::to_string(shared_files)},
      {"io_amount", util::format_bytes(io_amount)},
      {"io_ops_dist", fmt_ops_dist(data_ops_fraction)},
      {"interface", interface},
      {"runtime", util::format_seconds(runtime_sec)},
  };
}

AttrList IoPhaseEntity::attributes() const {
  return {
      {"app", app},
      {"phase", std::to_string(index)},
      {"io_amount", util::format_bytes(io_amount)},
      {"io_ops_dist", fmt_ops_dist(data_ops_fraction)},
      {"frequency", frequency},
      {"runtime", util::format_seconds(runtime_sec)},
  };
}

AttrList HighLevelIoEntity::attributes() const {
  return {
      {"data_repr", data_repr},
      {"granularity_data", util::format_bytes(data_granularity)},
      {"granularity_meta", util::format_bytes(meta_granularity)},
      {"access_pattern", access_pattern},
      {"data_dist", data_distribution},
  };
}

AttrList MiddlewareEntity::attributes() const {
  return {
      {"extra_io_cores_per_node", std::to_string(extra_io_cores_per_node)},
      {"granularity_data", util::format_bytes(data_granularity)},
      {"granularity_meta", util::format_bytes(meta_granularity)},
      {"memory_per_node", util::format_bytes(memory_per_node)},
      {"access_pattern", access_pattern},
  };
}

AttrList NodeLocalStorageEntity::attributes() const {
  return {
      {"dir", dir},
      {"parallel_ops", std::to_string(parallel_ops)},
      {"capacity_per_node", util::format_bytes(capacity_per_node)},
      {"max_io_bw_per_node", util::format_rate(max_bandwidth_bps)},
  };
}

AttrList SharedStorageEntity::attributes() const {
  return {
      {"dir", dir},
      {"parallel_servers", std::to_string(parallel_servers)},
      {"capacity", util::format_bytes(capacity)},
      {"max_io_bw", util::format_rate(max_bandwidth_bps)},
  };
}

AttrList DatasetEntity::attributes() const {
  return {
      {"format", format},
      {"size", util::format_bytes(size)},
      {"num_files", std::to_string(num_files)},
      {"io_amount", util::format_bytes(io_amount)},
      {"io_time", util::format_seconds(io_time_sec)},
      {"io_ops_dist", fmt_ops_dist(data_ops_fraction)},
      {"file_size_dist", file_size_dist},
  };
}

AttrList FileEntity::attributes() const {
  return {
      {"path", path},
      {"format", format},
      {"size", util::format_bytes(size)},
      {"io_amount", util::format_bytes(io_amount)},
      {"io_time", util::format_seconds(io_time_sec)},
      {"io_ops_dist", fmt_ops_dist(data_ops_fraction)},
      {"format_attributes", format_attributes},
  };
}

std::string WorkloadCharacterization::to_yaml() const {
  util::yaml::Writer y;
  y.scalar("workload", workload);

  y.begin_map("job");
  y.begin_map("job_configuration");
  emit(y, job.attributes());
  y.end_map();
  y.begin_map("workflow");
  emit(y, workflow.attributes());
  y.end_map();
  y.begin_seq("applications");
  for (const auto& a : applications) {
    y.begin_seq_item_map();
    emit(y, a.attributes());
    y.end_map();
  }
  y.end_seq();
  y.begin_seq("io_phases");
  for (const auto& ph : phases) {
    y.begin_seq_item_map();
    emit(y, ph.attributes());
    y.end_map();
  }
  y.end_seq();
  y.end_map();

  y.begin_map("software");
  y.begin_map("high_level_io");
  emit(y, high_level_io.attributes());
  y.end_map();
  y.begin_map("middleware");
  emit(y, middleware.attributes());
  y.end_map();
  y.begin_seq("node_local_storage");
  for (const auto& nl : node_local) {
    y.begin_seq_item_map();
    emit(y, nl.attributes());
    y.end_map();
  }
  y.end_seq();
  y.begin_map("shared_storage");
  emit(y, shared_storage.attributes());
  y.end_map();
  y.end_map();

  y.begin_map("data");
  y.begin_map("dataset");
  emit(y, dataset.attributes());
  y.end_map();
  y.begin_map("file");
  emit(y, file.attributes());
  y.end_map();
  y.end_map();

  return y.str();
}

}  // namespace wasp::charz
