// The paper's contribution: a systematic characterization of workload I/O
// behavior as three entity groups — Job, Software, Data — each with typed
// attributes (Tables II–XI). Storage systems consume these to configure
// themselves for the workload.
//
// Every entity exposes `attributes()` (name/value string pairs) so the same
// objects drive YAML emission (the Vani Analyzer's output format), the
// table-reproduction benches, and the advisor's rule engine.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace wasp::charz {

using AttrList = std::vector<std::pair<std::string, std::string>>;

// --------------------------------------------------------------------------
// Job entity group
// --------------------------------------------------------------------------

/// Table II: job scheduling/allocation attributes.
struct JobConfigEntity {
  int nodes = 0;
  int cpu_cores_per_node = 0;
  int gpus_per_node = 0;
  std::string node_local_bb_dirs;  ///< e.g. "/dev/shm,/tmp"
  std::string shared_bb_dir = "NA";
  std::string pfs_dir;
  double job_time_limit_hours = 0;

  AttrList attributes() const;
};

/// Table III: workflow-level behavior.
struct WorkflowEntity {
  int cpu_cores_used_per_node = 0;
  int gpus_used_per_node = 0;
  int num_apps = 0;
  bool has_app_data_dependency = false;
  std::uint64_t fpp_files = 0;
  std::uint64_t shared_files = 0;
  util::Bytes io_amount = 0;
  double data_ops_fraction = 0;  ///< remainder is metadata ops
  double runtime_sec = 0;

  AttrList attributes() const;
};

/// Table IV: one per application in the workload.
struct ApplicationEntity {
  std::string name;
  int num_processes = 0;
  bool has_process_data_dependency = false;
  std::uint64_t fpp_files = 0;
  std::uint64_t shared_files = 0;
  util::Bytes io_amount = 0;
  double data_ops_fraction = 0;
  std::string interface;  ///< POSIX / STDIO / MPI-IO / HDF5
  double runtime_sec = 0;

  AttrList attributes() const;
};

/// Table V: one per detected I/O phase.
struct IoPhaseEntity {
  std::string app;
  int index = 0;
  util::Bytes io_amount = 0;
  double data_ops_fraction = 0;
  std::string frequency;  ///< "1 op" / "7 ops/rank" / "Iterative (1MB)" ...
  double runtime_sec = 0;

  AttrList attributes() const;
};

// --------------------------------------------------------------------------
// Software entity group
// --------------------------------------------------------------------------

/// Table VI: high-level I/O library view.
struct HighLevelIoEntity {
  std::string data_repr;      ///< "1D"/"2D"/"3D"/"4D" logical representation
  util::Bytes data_granularity = 0;
  util::Bytes meta_granularity = 0;
  std::string access_pattern;  ///< "Seq" / "Random" / "Mixed"
  std::string data_distribution;  ///< "normal"/"uniform"/"gamma"

  AttrList attributes() const;
};

/// Table VII: middleware layer view.
struct MiddlewareEntity {
  int extra_io_cores_per_node = 0;
  util::Bytes data_granularity = 0;
  util::Bytes meta_granularity = 0;
  util::Bytes memory_per_node = 0;
  std::string access_pattern;

  AttrList attributes() const;
};

/// Table VIII: node-local storage tier.
struct NodeLocalStorageEntity {
  std::string dir;
  int parallel_ops = 0;
  util::Bytes capacity_per_node = 0;
  double max_bandwidth_bps = 0;

  AttrList attributes() const;
};

/// Table IX: shared storage system.
struct SharedStorageEntity {
  std::string dir;
  int parallel_servers = 0;
  util::Bytes capacity = 0;
  double max_bandwidth_bps = 0;

  AttrList attributes() const;
};

// --------------------------------------------------------------------------
// Data entity group
// --------------------------------------------------------------------------

/// Table X: the dataset as a whole.
struct DatasetEntity {
  std::string format;  ///< "bin" / "HDF5" / "npy" ...
  util::Bytes size = 0;
  std::uint64_t num_files = 0;
  util::Bytes io_amount = 0;
  double io_time_sec = 0;
  double data_ops_fraction = 0;
  std::string file_size_dist;  ///< e.g. "1GB data / 16MB config"

  AttrList attributes() const;
};

/// Table XI: one representative data file.
struct FileEntity {
  std::string path;
  std::string format;
  util::Bytes size = 0;
  util::Bytes io_amount = 0;
  double io_time_sec = 0;
  double data_ops_fraction = 0;
  std::string format_attributes;  ///< "#datasets: 1, #dims: 3" etc.

  AttrList attributes() const;
};

// --------------------------------------------------------------------------

/// Complete characterization of one workload run — what the Vani suite's
/// YAML file contains and what the storage system loads to configure itself.
struct WorkloadCharacterization {
  std::string workload;
  JobConfigEntity job;
  WorkflowEntity workflow;
  std::vector<ApplicationEntity> applications;
  std::vector<IoPhaseEntity> phases;  ///< first phase per app, in time order
  HighLevelIoEntity high_level_io;
  MiddlewareEntity middleware;
  std::vector<NodeLocalStorageEntity> node_local;
  SharedStorageEntity shared_storage;
  DatasetEntity dataset;
  FileEntity file;

  /// Vani-style YAML document of all entities and attributes.
  std::string to_yaml() const;
};

}  // namespace wasp::charz
