// Builds a WorkloadCharacterization from three inputs, mirroring the Vani
// pipeline:
//   * JobUtility-level facts   — the cluster/job configuration (ClusterSpec)
//   * Analyzer-level facts     — the measured WorkloadProfile
//   * workload declarations    — properties not observable from traces
//                                (logical data representation, value
//                                distribution, dataset format semantics)
#pragma once

#include "analysis/profile.hpp"
#include "cluster/spec.hpp"
#include "core/entities.hpp"

namespace wasp::charz {

/// Attributes the application owner declares about the workload (everything
/// else is extracted automatically).
struct WorkloadDecl {
  std::string name = "workload";
  std::string data_repr = "1D";
  std::string data_distribution = "uniform";
  std::string dataset_format = "bin";
  std::string format_attributes = "NA";
  std::string file_size_dist;  ///< free-form, e.g. "1GB data / 16MB config"
  double job_time_limit_hours = 2.0;
  int cpu_cores_used_per_node = 0;  ///< 0 = all
  int gpus_used_per_node = 0;
  util::Bytes app_memory_per_node = 0;  ///< memory the app itself occupies
};

class Characterizer {
 public:
  WorkloadCharacterization characterize(
      const WorkloadDecl& decl, const cluster::ClusterSpec& spec,
      const analysis::WorkloadProfile& profile) const;
};

}  // namespace wasp::charz
