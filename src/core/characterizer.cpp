#include "core/characterizer.hpp"

#include <algorithm>

#include "trace/record.hpp"

namespace wasp::charz {
namespace {

std::string join_mounts(const cluster::ClusterSpec& spec) {
  std::string out;
  for (const auto& nl : spec.node_local) {
    if (!out.empty()) out += ",";
    out += nl.mount;
  }
  return out.empty() ? "NA" : out;
}

/// Data granularity: the most frequent transfer size; metadata granularity:
/// the smallest size that still accounts for >=10% of data ops (the paper
/// quotes pairs like "1MB data / 4KB meta" for workloads whose small
/// accesses come from library metadata).
void granularities(const analysis::WorkloadProfile& p, util::Bytes& data_g,
                   util::Bytes& meta_g) {
  data_g = 0;
  meta_g = 0;
  if (p.size_frequencies.empty()) return;
  data_g = p.size_frequencies.front().first;
  std::uint64_t total = 0;
  for (const auto& [sz, n] : p.size_frequencies) total += n;
  util::Bytes smallest = data_g;
  for (const auto& [sz, n] : p.size_frequencies) {
    if (n * 10 >= total && sz < smallest && sz > 0) smallest = sz;
  }
  meta_g = smallest;
}

std::string pattern_label(double seq_fraction) {
  if (seq_fraction >= 0.8) return "Seq";
  if (seq_fraction <= 0.2) return "Random";
  return "Mixed";
}

bool process_dependency(const analysis::FileStats& f) {
  // Data written by some rank and read by more than the writer alone.
  return f.writer_ranks > 0 && f.reader_ranks > 0 && f.accessor_ranks > 1;
}

}  // namespace

WorkloadCharacterization Characterizer::characterize(
    const WorkloadDecl& decl, const cluster::ClusterSpec& spec,
    const analysis::WorkloadProfile& profile) const {
  WorkloadCharacterization c;
  c.workload = decl.name;

  // --- Job configuration (JobUtility scope) ------------------------------
  c.job.nodes = spec.nodes;
  c.job.cpu_cores_per_node = spec.node.cpu_cores;
  c.job.gpus_per_node = spec.node.gpus;
  c.job.node_local_bb_dirs = join_mounts(spec);
  c.job.shared_bb_dir =
      spec.shared_bb.has_value() ? spec.shared_bb->mount : "NA";
  c.job.pfs_dir = spec.pfs.mount;
  c.job.job_time_limit_hours = decl.job_time_limit_hours;

  // --- Workflow -----------------------------------------------------------
  c.workflow.cpu_cores_used_per_node =
      decl.cpu_cores_used_per_node > 0 ? decl.cpu_cores_used_per_node
                                       : spec.node.cpu_cores;
  c.workflow.gpus_used_per_node = decl.gpus_used_per_node;
  c.workflow.num_apps = static_cast<int>(profile.apps.size());
  c.workflow.has_app_data_dependency = !profile.app_edges.empty();
  c.workflow.fpp_files = profile.fpp_files;
  c.workflow.shared_files = profile.shared_files;
  c.workflow.io_amount = profile.totals.io_bytes();
  c.workflow.data_ops_fraction = profile.totals.data_op_fraction();
  c.workflow.runtime_sec = profile.job_runtime_sec;

  // --- Applications -------------------------------------------------------
  bool any_proc_dep = false;
  for (const auto& f : profile.files) {
    if (process_dependency(f)) any_proc_dep = true;
  }
  for (const auto& a : profile.apps) {
    ApplicationEntity app;
    app.name = a.name;
    app.num_processes = a.num_procs;
    app.has_process_data_dependency = any_proc_dep;
    app.fpp_files = a.fpp_files;
    app.shared_files = a.shared_files;
    app.io_amount = a.ops.io_bytes();
    app.data_ops_fraction = a.ops.data_op_fraction();
    app.interface = trace::to_string(a.interface);
    app.runtime_sec = a.runtime_sec();
    c.applications.push_back(std::move(app));
  }

  // --- First I/O phase per app (Table V semantics) ------------------------
  for (const auto& a : profile.apps) {
    const analysis::Phase* ph = profile.first_phase(a.app);
    if (ph == nullptr) continue;
    IoPhaseEntity e;
    e.app = a.name;
    e.index = 0;
    e.io_amount = ph->ops.io_bytes();
    e.data_ops_fraction = ph->ops.data_op_fraction();
    e.frequency = ph->frequency_label();
    e.runtime_sec = ph->runtime_sec();
    c.phases.push_back(std::move(e));
  }

  // --- Software: high-level I/O ------------------------------------------
  util::Bytes data_g = 0;
  util::Bytes meta_g = 0;
  granularities(profile, data_g, meta_g);
  c.high_level_io.data_repr = decl.data_repr;
  c.high_level_io.data_granularity = data_g;
  c.high_level_io.meta_granularity = meta_g;
  c.high_level_io.access_pattern = pattern_label(profile.sequential_fraction);
  c.high_level_io.data_distribution = decl.data_distribution;

  // --- Software: middleware ----------------------------------------------
  c.middleware.extra_io_cores_per_node =
      std::max(0, spec.node.cpu_cores - c.workflow.cpu_cores_used_per_node);
  c.middleware.data_granularity = data_g;
  c.middleware.meta_granularity = meta_g;
  c.middleware.memory_per_node =
      spec.node.memory > decl.app_memory_per_node
          ? spec.node.memory - decl.app_memory_per_node
          : 0;
  c.middleware.access_pattern = c.high_level_io.access_pattern;

  // --- Software: storage tiers -------------------------------------------
  for (const auto& nl : spec.node_local) {
    NodeLocalStorageEntity e;
    e.dir = nl.mount;
    e.parallel_ops = static_cast<int>(nl.parallel_ops);
    e.capacity_per_node = nl.capacity;
    e.max_bandwidth_bps = nl.bandwidth_bps;
    c.node_local.push_back(std::move(e));
  }
  c.shared_storage.dir = spec.pfs.mount;
  c.shared_storage.parallel_servers = spec.pfs.num_servers;
  c.shared_storage.capacity = spec.pfs.capacity;
  c.shared_storage.max_bandwidth_bps =
      spec.pfs.server_bandwidth_bps * spec.pfs.num_servers;

  // --- Data: dataset -------------------------------------------------------
  c.dataset.format = decl.dataset_format;
  util::Bytes dataset_size = 0;
  for (const auto& f : profile.files) dataset_size += f.size;
  c.dataset.size = dataset_size;
  c.dataset.num_files = profile.files.size();
  c.dataset.io_amount = profile.totals.io_bytes();
  c.dataset.io_time_sec =
      profile.num_procs > 0
          ? profile.totals.io_sec() / static_cast<double>(profile.num_procs)
          : 0.0;
  c.dataset.data_ops_fraction = profile.totals.data_op_fraction();
  c.dataset.file_size_dist = decl.file_size_dist.empty()
                                 ? util::format_bytes(
                                       profile.files.empty()
                                           ? 0
                                           : dataset_size /
                                                 std::max<std::uint64_t>(
                                                     profile.files.size(), 1))
                                 : decl.file_size_dist;

  // --- Data: representative file (largest by I/O volume) ------------------
  const analysis::FileStats* rep = nullptr;
  for (const auto& f : profile.files) {
    if (rep == nullptr || f.ops.io_bytes() > rep->ops.io_bytes()) rep = &f;
  }
  if (rep != nullptr) {
    c.file.path = rep->path;
    c.file.format = decl.dataset_format;
    c.file.size = rep->size;
    c.file.io_amount = rep->ops.io_bytes();
    c.file.io_time_sec = rep->ops.io_sec();
    c.file.data_ops_fraction = rep->ops.data_op_fraction();
    c.file.format_attributes = decl.format_attributes;
  }

  return c;
}

}  // namespace wasp::charz
