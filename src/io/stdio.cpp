#include "io/stdio.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::io {

sim::Task<StdioFile> Stdio::fopen(const std::string& path, OpenMode mode) {
  StdioFile f;
  f.base = co_await posix_.open(path, mode);
  f.logical_offset = f.base.offset;
  f.flush_offset = f.base.offset;
  f.read_pos = f.base.offset;
  co_return f;
}

sim::Task<void> Stdio::flush_writes(StdioFile& f) {
  if (f.write_buffered == 0) co_return;
  runtime::Proc::Suppression mute(proc());
  co_await posix_.pwrite(f.base, f.flush_offset, f.write_buffered, 1);
  f.flush_offset += f.write_buffered;
  f.write_buffered = 0;
}

sim::Task<void> Stdio::fflush(StdioFile& f) { return flush_writes(f); }

sim::Task<void> Stdio::fclose(StdioFile& f) {
  co_await flush_writes(f);
  co_await posix_.close(f.base);
}

sim::Task<void> Stdio::fwrite(StdioFile& f, fs::Bytes size,
                              std::uint32_t count) {
  WASP_CHECK_MSG(count > 0, "zero-count fwrite");
  const sim::Time t0 = proc().now();
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);

  if (size >= buffer_) {
    // Large writes bypass the stream buffer (glibc behaviour).
    co_await flush_writes(f);
    runtime::Proc::Suppression mute(proc());
    co_await posix_.pwrite(f.base, f.flush_offset, size, count);
    f.flush_offset += total;
  } else {
    const fs::Bytes pending = f.write_buffered + total;
    const fs::Bytes flush_bytes = (pending / buffer_) * buffer_;
    f.write_buffered = pending % buffer_;
    if (flush_bytes > 0) {
      runtime::Proc::Suppression mute(proc());
      co_await posix_.pwrite(f.base, f.flush_offset, buffer_,
                             static_cast<std::uint32_t>(flush_bytes /
                                                        buffer_));
      f.flush_offset += flush_bytes;
    }
  }
  f.logical_offset += total;
  proc().record(trace::Iface::kStdio, trace::Op::kWrite, f.base.key(),
                f.logical_offset - total, size, count, t0);
}

sim::Task<void> Stdio::fread(StdioFile& f, fs::Bytes size,
                             std::uint32_t count) {
  WASP_CHECK_MSG(count > 0, "zero-count fread");
  const sim::Time t0 = proc().now();
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  const fs::Bytes file_size = f.base.fs->ns(proc().site())
                                  .inode(f.base.id).size;
  WASP_CHECK_MSG(f.logical_offset + total <= file_size,
                 "fread past EOF: " +
                     f.base.fs->ns(proc().site()).inode(f.base.id).path +
                     " off=" + std::to_string(f.logical_offset) +
                     " total=" + std::to_string(total) +
                     " size=" + std::to_string(file_size));

  if (size >= buffer_) {
    // Large reads bypass the stream buffer and stream at user granularity.
    {
      runtime::Proc::Suppression mute(proc());
      co_await posix_.pread(f.base, f.logical_offset, size, count);
    }
    f.read_pos = std::max(f.read_pos, f.logical_offset + total);
    f.read_ahead = 0;
    f.logical_offset += total;
    proc().record(trace::Iface::kStdio, trace::Op::kRead, f.base.key(),
                  f.logical_offset - total, size, count, t0);
    co_return;
  }

  const fs::Bytes need = total > f.read_ahead ? total - f.read_ahead : 0;
  if (need > 0) {
    // Fetch in buffer-granularity chunks (readahead), clamped to EOF.
    const fs::Bytes fetch_end =
        std::min(file_size,
                 f.read_pos + ((need + buffer_ - 1) / buffer_) * buffer_);
    const fs::Bytes fetch = fetch_end - f.read_pos;
    const auto full = static_cast<std::uint32_t>(fetch / buffer_);
    const fs::Bytes tail = fetch % buffer_;
    runtime::Proc::Suppression mute(proc());
    if (full > 0) co_await posix_.pread(f.base, f.read_pos, buffer_, full);
    if (tail > 0) {
      co_await posix_.pread(f.base, f.read_pos + full * buffer_, tail, 1);
    }
    f.read_pos = fetch_end;
    f.read_ahead += fetch;
  }
  f.read_ahead -= total;
  f.logical_offset += total;
  proc().record(trace::Iface::kStdio, trace::Op::kRead, f.base.key(),
                f.logical_offset - total, size, count, t0);
}

sim::Task<void> Stdio::fseek_batch(StdioFile& f, std::uint32_t count) {
  WASP_CHECK_MSG(count > 0, "zero-count fseek batch");
  const sim::Time t0 = proc().now();
  co_await sim::Delay(proc().engine(), 60 * sim::kUs * count);
  proc().record(trace::Iface::kStdio, trace::Op::kSeek, f.base.key(),
                f.logical_offset, 0, count, t0);
}

sim::Task<void> Stdio::fread_scattered(StdioFile& f, fs::Bytes size,
                                        std::uint32_t count,
                                        std::uint32_t fetch_ops) {
  WASP_CHECK_MSG(count > 0, "zero-count fread");
  const sim::Time t0 = proc().now();
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  const fs::Bytes file_size =
      f.base.fs->ns(proc().site()).inode(f.base.id).size;
  WASP_CHECK_MSG(f.logical_offset + total <= file_size,
                 "fread past EOF");
  const auto max_fetch = static_cast<std::uint32_t>(
      (file_size - f.logical_offset) / buffer_);
  const std::uint32_t fetches = std::min(fetch_ops, max_fetch);
  if (fetches > 0) {
    runtime::Proc::Suppression mute(proc());
    co_await posix_.pread_sync(f.base, f.logical_offset, buffer_, fetches);
  }
  f.read_ahead = 0;
  f.read_pos = f.logical_offset + total;
  f.logical_offset += total;
  proc().record(trace::Iface::kStdio, trace::Op::kRead, f.base.key(),
                f.logical_offset - total, size, count, t0);
}

sim::Task<void> Stdio::fseek(StdioFile& f, fs::Bytes offset) {
  co_await flush_writes(f);
  f.read_ahead = 0;
  f.read_pos = offset;
  f.logical_offset = offset;
  f.flush_offset = offset;
  // fseek itself is a cheap client-side op but shows up as a metadata op in
  // traces; reuse the POSIX seek (already labelled kStdio via iface).
  co_await posix_.seek(f.base, offset);
}

}  // namespace wasp::io
