#include "io/compression.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::io {

double CompressionModel::ratio_for(const std::string& distribution) {
  // Calibrated to the paper's §I anecdote: an unfavourable distribution
  // grows 12%; structured scientific data compresses 2-3x.
  if (distribution == "uniform") return 1.12;   // high entropy: net growth
  if (distribution == "normal") return 0.45;    // clustered values
  if (distribution == "gamma") return 0.55;     // skewed but structured
  if (distribution == "zeros" || distribution == "sparse") return 0.10;
  return 0.8;  // unknown: mildly compressible
}

sim::Task<void> CompressedPosix::write(File& f, fs::Bytes size,
                                       std::uint32_t count) {
  WASP_CHECK_MSG(count > 0, "zero-count compressed write");
  auto& p = proc();
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  // Codec time on the logical bytes.
  co_await sim::Delay(
      p.engine(),
      sim::seconds(static_cast<double>(total) / model_.codec_bps()));
  const auto stored_size = static_cast<fs::Bytes>(std::max(
      static_cast<double>(size) * model_.ratio, 1.0));
  const sim::Time t0 = p.now();
  const fs::Bytes at = f.offset;
  {
    runtime::Proc::Suppression mute(p);
    co_await posix_.pwrite(f, at, stored_size, count);
  }
  logical_written_ += total;
  p.record(trace::Iface::kPosix, trace::Op::kWrite, f.key(), at, size, count,
           t0);
  f.offset = at + stored_size * count;
}

sim::Task<void> CompressedPosix::read(File& f, fs::Bytes size,
                                      std::uint32_t count) {
  WASP_CHECK_MSG(count > 0, "zero-count compressed read");
  auto& p = proc();
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  const auto stored_size = static_cast<fs::Bytes>(std::max(
      static_cast<double>(size) * model_.ratio, 1.0));
  const sim::Time t0 = p.now();
  const fs::Bytes at = f.offset;
  {
    runtime::Proc::Suppression mute(p);
    co_await posix_.pread(f, at, stored_size, count);
  }
  // Decompression after the fetch.
  co_await sim::Delay(
      p.engine(),
      sim::seconds(static_cast<double>(total) / model_.codec_bps()));
  p.record(trace::Iface::kPosix, trace::Op::kRead, f.key(), at, size, count,
           t0);
  f.offset = at + stored_size * count;
}

}  // namespace wasp::io
