#include "io/mpiio.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::io {

sim::Task<MpiFile> MpiIo::open_all(const std::string& path, OpenMode mode) {
  auto& p = proc();
  co_await p.comm().barrier();
  MpiFile f;
  {
    runtime::Proc::Suppression mute(p);
    f.base = co_await posix_.open(path, mode);
  }
  const sim::Time t0 = p.now();
  p.record(trace::Iface::kMpiio, trace::Op::kOpen, f.base.key(), 0, 0, 1, t0);
  co_return f;
}

sim::Task<void> MpiIo::close_all(MpiFile& f) {
  auto& p = proc();
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    co_await posix_.close(f.base);
  }
  co_await p.comm().barrier();
  p.record(trace::Iface::kMpiio, trace::Op::kClose, f.base.key(), 0, 0, 1,
           t0);
}

sim::Task<void> MpiIo::collective(MpiFile& f, fs::Bytes offset,
                                  fs::Bytes size, std::uint32_t count,
                                  fs::IoKind kind) {
  auto& p = proc();
  auto& comm = p.comm();
  const sim::Time t0 = p.now();
  const fs::Bytes per_rank = size * static_cast<fs::Bytes>(count);

  co_await comm.barrier();

  if (cfg_.aggregators_per_node <= 0) {
    // Collective buffering disabled: every rank hits the PFS itself.
    runtime::Proc::Suppression mute(p);
    if (kind == fs::IoKind::kRead) {
      co_await posix_.pread(f.base, offset, size, count);
    } else {
      co_await posix_.pwrite(f.base, offset, size, count);
    }
  } else if (comm.is_node_leader(p.comm_rank())) {
    // Aggregate the node's volume at cb_buffer granularity.
    if (node_rank_count_ == 0) {
      node_rank_count_ =
          static_cast<fs::Bytes>(comm.ranks_on_node(p.node()).size());
    }
    const fs::Bytes node_ranks = node_rank_count_;
    fs::Bytes node_bytes = per_rank * node_ranks;
    fs::Bytes agg_offset = offset;
    if (kind == fs::IoKind::kRead) {
      // Only the caller's own offset is visible here; clamp the aggregated
      // request into the file so rank-relative views cannot run past EOF.
      const fs::Bytes file_size =
          f.base.fs->ns(p.site()).inode(f.base.id).size;
      node_bytes = std::min(node_bytes, file_size);
      agg_offset = std::min(agg_offset, file_size - node_bytes);
    }
    const fs::Bytes gran = std::min(cfg_.cb_buffer, std::max(node_bytes,
                                                             fs::Bytes{1}));
    const auto chunks =
        static_cast<std::uint32_t>(std::max<fs::Bytes>(node_bytes / gran, 1));
    runtime::Proc::Suppression mute(p);
    if (node_bytes > 0) {
      if (kind == fs::IoKind::kRead) {
        co_await posix_.pread(f.base, agg_offset, gran, chunks);
      } else {
        co_await posix_.pwrite(f.base, agg_offset, gran, chunks);
      }
    }
  }

  // Wait for the aggregators, then pay the shuffle to/from member ranks.
  co_await comm.barrier();
  if (cfg_.aggregators_per_node > 0 && per_rank > 0 &&
      !comm.is_node_leader(p.comm_rank())) {
    const double sec =
        static_cast<double>(per_rank) / comm.net().bandwidth_bps;
    co_await sim::Delay(p.engine(), comm.net().latency + sim::seconds(sec));
  }

  p.record(trace::Iface::kMpiio,
           kind == fs::IoKind::kRead ? trace::Op::kRead : trace::Op::kWrite,
           f.base.key(), offset, size, count, t0);
}

sim::Task<void> MpiIo::read_all(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                                std::uint32_t count) {
  return collective(f, offset, size, count, fs::IoKind::kRead);
}

sim::Task<void> MpiIo::write_all(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                                 std::uint32_t count) {
  return collective(f, offset, size, count, fs::IoKind::kWrite);
}

sim::Task<void> MpiIo::read(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                            std::uint32_t count) {
  auto& p = proc();
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    co_await posix_.pread(f.base, offset, size, count);
  }
  p.record(trace::Iface::kMpiio, trace::Op::kRead, f.base.key(), offset, size,
           count, t0);
}

sim::Task<void> MpiIo::write(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                             std::uint32_t count) {
  auto& p = proc();
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    co_await posix_.pwrite(f.base, offset, size, count);
  }
  p.record(trace::Iface::kMpiio, trace::Op::kWrite, f.base.key(), offset,
           size, count, t0);
}

}  // namespace wasp::io
