#include "io/tiered_buffer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::io {

TieredBuffer::TieredBuffer(runtime::Simulation& sim, TieredBufferConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)) {
  nodes_.resize(static_cast<std::size_t>(sim.spec().nodes));
  WASP_CHECK_MSG(cfg_.capacity_per_node <=
                     sim.node_local(cfg_.tier).spec().capacity,
                 "buffer pool larger than the tier");
}

std::string TieredBuffer::tier_path(int node, const std::string& path) const {
  std::string flat = path;
  for (char& c : flat) {
    if (c == '/') c = '_';
  }
  (void)node;  // tier namespaces are already per node
  return sim_.node_local(cfg_.tier).mount() + "/tbuf/" + flat;
}

util::Bytes TieredBuffer::staged_bytes(int node) const {
  return nodes_.at(static_cast<std::size_t>(node)).used;
}

bool TieredBuffer::is_staged(int node, const std::string& path) const {
  const auto& ns = nodes_.at(static_cast<std::size_t>(node));
  return ns.entries.find(path) != ns.entries.end();
}

sim::Task<void> TieredBuffer::flush_entry(runtime::Proc& p, int node,
                                          const std::string& path,
                                          fs::Bytes bytes) {
  // Copy tier -> PFS (suppressed: middleware-internal traffic).
  runtime::Proc::Suppression mute(p);
  Posix posix(p);
  const std::string staged = tier_path(node, path);
  auto src = co_await posix.open(staged, OpenMode::kRead);
  auto dst = co_await posix.open(path, OpenMode::kWrite);
  const fs::Bytes chunk = 4 * util::kMiB;
  const auto full = static_cast<std::uint32_t>(bytes / chunk);
  const fs::Bytes tail = bytes % chunk;
  if (full > 0) {
    co_await posix.read(src, chunk, full);
    co_await posix.write(dst, chunk, full);
  }
  if (tail > 0) {
    co_await posix.read(src, tail, 1);
    co_await posix.write(dst, tail, 1);
  }
  co_await posix.close(src);
  co_await posix.close(dst);
}

sim::Task<bool> TieredBuffer::make_room(runtime::Proc& p, int node,
                                        fs::Bytes need) {
  auto& ns = nodes_[static_cast<std::size_t>(node)];
  if (need > cfg_.capacity_per_node) co_return false;
  while (ns.used + need > cfg_.capacity_per_node) {
    // Pick the victim per policy.
    const std::string* victim = nullptr;
    std::uint64_t best = ~std::uint64_t{0};
    for (const auto& [path, e] : ns.entries) {
      const std::uint64_t key =
          cfg_.eviction == TieredBufferConfig::Eviction::kLru ? e.last_use
                                                              : e.arrival;
      if (key < best) {
        best = key;
        victim = &path;
      }
    }
    if (victim == nullptr) co_return false;
    const std::string path = *victim;
    Entry entry = ns.entries[path];
    if (entry.dirty) {
      co_await flush_entry(p, node, path, entry.bytes);
    }
    {
      const std::string staged = tier_path(node, path);
      runtime::Proc::Suppression mute(p);
      Posix posix(p);
      co_await posix.unlink(staged);
    }
    ns.used -= entry.bytes;
    ns.entries.erase(path);
    ++evictions_;
  }
  co_return true;
}

sim::Task<TieredBuffer::BufFile> TieredBuffer::open(runtime::Proc& p,
                                                    std::string path,
                                                    OpenMode mode) {
  auto& ns = nodes_[static_cast<std::size_t>(p.node())];
  BufFile f;
  f.path = path;
  f.writing = mode != OpenMode::kRead;
  const sim::Time t0 = p.now();
  Posix posix(p);

  // NOTE: path arguments are hoisted into named locals before the
  // co_await: GCC 12 double-destroys conditional-expression temporaries
  // inside co_await expressions.
  if (f.writing) {
    // Stage new output on the tier when write-back is on.
    f.on_tier = cfg_.write_back;
    const std::string target =
        f.on_tier ? tier_path(p.node(), path) : path;
    runtime::Proc::Suppression mute(p);
    f.handle = co_await posix.open(target, mode);
  } else {
    auto it = ns.entries.find(path);
    if (it != ns.entries.end()) {
      ++hits_;
      it->second.last_use = ++clock_;
      f.on_tier = true;
      const std::string target = tier_path(p.node(), path);
      runtime::Proc::Suppression mute(p);
      f.handle = co_await posix.open(target, OpenMode::kRead);
    } else {
      ++misses_;
      // Promote on miss when the file fits the pool: copy it to the tier
      // so later readers hit (the cache behaviour Hermes-class middleware
      // configures).
      const fs::Bytes size = posix.size_of(path);
      bool promoted = false;
      if (size <= cfg_.capacity_per_node) {
        promoted = co_await make_room(p, p.node(), size);
      }
      if (promoted) {
        const std::string staged = tier_path(p.node(), path);
        {
          runtime::Proc::Suppression mute(p);
          auto src = co_await posix.open(path, OpenMode::kRead);
          auto dst = co_await posix.open(staged, OpenMode::kWrite);
          const fs::Bytes chunk = 4 * util::kMiB;
          const auto full = static_cast<std::uint32_t>(size / chunk);
          const fs::Bytes tail = size % chunk;
          if (full > 0) {
            co_await posix.read(src, chunk, full);
            co_await posix.write(dst, chunk, full);
          }
          if (tail > 0) {
            co_await posix.read(src, tail, 1);
            co_await posix.write(dst, tail, 1);
          }
          co_await posix.close(src);
          co_await posix.close(dst);
        }
        auto& entry = ns.entries[path];
        entry.bytes = size;
        entry.dirty = false;
        entry.arrival = ++clock_;
        entry.last_use = ++clock_;
        ns.used += size;
        f.on_tier = true;
        const std::string staged2 = tier_path(p.node(), path);
        runtime::Proc::Suppression mute(p);
        f.handle = co_await posix.open(staged2, OpenMode::kRead);
      } else {
        f.on_tier = false;
        runtime::Proc::Suppression mute(p);
        f.handle = co_await posix.open(path, OpenMode::kRead);
      }
    }
  }
  p.record(trace::Iface::kPosix, trace::Op::kOpen, f.handle.key(), 0, 0, 1,
           t0);
  co_return f;
}

sim::Task<void> TieredBuffer::write(runtime::Proc& p, BufFile& f,
                                    fs::Bytes size, std::uint32_t count) {
  WASP_CHECK_MSG(f.writing, "write on read-only buffered file");
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  if (f.on_tier) {
    const bool fits = co_await make_room(p, p.node(), total);
    if (!fits) {
      // Overflow: fall back to the PFS for the rest of this file.
      if (f.logical > 0) {
        // Flush what is already staged, then continue on the PFS copy.
        co_await flush_entry(p, p.node(), f.path, f.logical);
      }
      auto& ns = nodes_[static_cast<std::size_t>(p.node())];
      auto it = ns.entries.find(f.path);
      if (it != ns.entries.end()) {
        ns.used -= it->second.bytes;
        ns.entries.erase(it);
      }
      runtime::Proc::Suppression mute(p);
      Posix posix(p);
      co_await posix.close(f.handle);
      f.handle = co_await posix.open(f.path, OpenMode::kAppend);
      f.on_tier = false;
    }
  }
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    Posix posix(p);
    co_await posix.write(f.handle, size, count);
  }
  if (f.on_tier) {
    auto& ns = nodes_[static_cast<std::size_t>(p.node())];
    auto& entry = ns.entries[f.path];
    if (entry.bytes == 0) entry.arrival = ++clock_;
    entry.bytes += total;
    entry.dirty = true;
    entry.last_use = ++clock_;
    ns.used += total;
  }
  f.logical += total;
  p.record(trace::Iface::kPosix, trace::Op::kWrite, f.handle.key(),
           f.handle.offset - total, size, count, t0);
}

sim::Task<void> TieredBuffer::read(runtime::Proc& p, BufFile& f,
                                   fs::Bytes size, std::uint32_t count) {
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    Posix posix(p);
    co_await posix.read(f.handle, size, count);
  }
  if (f.on_tier) {
    auto& ns = nodes_[static_cast<std::size_t>(p.node())];
    auto it = ns.entries.find(f.path);
    if (it != ns.entries.end()) it->second.last_use = ++clock_;
  }
  p.record(trace::Iface::kPosix, trace::Op::kRead, f.handle.key(),
           f.handle.offset - size * count, size, count, t0);
}

sim::Task<void> TieredBuffer::close(runtime::Proc& p, BufFile& f) {
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    Posix posix(p);
    co_await posix.close(f.handle);
  }
  p.record(trace::Iface::kPosix, trace::Op::kClose, f.handle.key(), 0, 0, 1,
           t0);
}

sim::Task<void> TieredBuffer::flush_all(runtime::Proc& p) {
  auto& ns = nodes_[static_cast<std::size_t>(p.node())];
  for (auto& [path, entry] : ns.entries) {
    if (entry.dirty) {
      co_await flush_entry(p, p.node(), path, entry.bytes);
      entry.dirty = false;
    }
  }
}

}  // namespace wasp::io
