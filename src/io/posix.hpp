// POSIX-level interface: the thinnest traced layer over the mounted
// filesystems. File-per-process workloads (HACC, CM1 output) run here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fs/filesystem.hpp"
#include "runtime/proc.hpp"
#include "sim/task.hpp"
#include "trace/record.hpp"

namespace wasp::io {

enum class OpenMode : std::uint8_t { kRead, kWrite, kReadWrite, kAppend };

/// Open-file handle (the fd). Offset tracking lives here, client-side.
struct File {
  fs::FileSystemSim* fs = nullptr;
  std::int16_t fs_idx = -1;
  fs::FileId id = fs::kInvalidFile;
  fs::Bytes offset = 0;
  OpenMode mode = OpenMode::kRead;
  bool is_open = false;

  trace::FileKey key() const noexcept { return {fs_idx, id}; }
};

class Posix {
 public:
  /// `iface` lets STDIO-style wrappers reuse this machinery while recording
  /// under their own interface label.
  explicit Posix(runtime::Proc& proc,
                 trace::Iface iface = trace::Iface::kPosix)
      : p_(proc), iface_(iface) {}

  runtime::Proc& proc() noexcept { return p_; }

  /// Opens (creating when the mode writes) and pays the metadata cost.
  /// Opening a non-existent file for read throws SimError.
  sim::Task<File> open(const std::string& path, OpenMode mode);
  sim::Task<void> close(File& f);

  /// `count` sequential ops of `size` bytes from the current offset
  /// (coalesced into one simulated request; traced with exact op count).
  sim::Task<void> read(File& f, fs::Bytes size, std::uint32_t count = 1);
  sim::Task<void> write(File& f, fs::Bytes size, std::uint32_t count = 1);

  /// Positional variants (no offset state change beyond the request).
  sim::Task<void> pread(File& f, fs::Bytes offset, fs::Bytes size,
                        std::uint32_t count = 1);
  sim::Task<void> pwrite(File& f, fs::Bytes offset, fs::Bytes size,
                         std::uint32_t count = 1);

  sim::Task<void> seek(File& f, fs::Bytes offset);
  /// `count` client-side seeks (header hops, sample-wise repositioning).
  /// Seeks never leave the client, so a batch costs only CPU time; the
  /// trace still carries the exact op count — this is how CM1/JAG-style
  /// workloads end up 70% metadata *ops* without 70% metadata *time*.
  sim::Task<void> seek_batch(File& f, std::uint32_t count);

  /// Positional read where every op is a dependent synchronous round trip
  /// (random scattered access that defeats readahead and coalescing).
  sim::Task<void> pread_sync(File& f, fs::Bytes offset, fs::Bytes size,
                             std::uint32_t count = 1);

  /// Durable positional write (O_SYNC semantics): per-op server round
  /// trips, no writeback coalescing.
  sim::Task<void> pwrite_sync(File& f, fs::Bytes offset, fs::Bytes size,
                              std::uint32_t count = 1);
  sim::Task<void> stat(const std::string& path);
  sim::Task<void> sync(File& f);
  sim::Task<void> unlink(const std::string& path);
  sim::Task<std::vector<std::string>> readdir(const std::string& prefix);

  /// Current size without cost (used by workload logic, not traced).
  fs::Bytes size_of(const std::string& path);
  bool exists(const std::string& path);

 private:
  /// Per-call shape of the shared data path: direction, offset handling,
  /// request flags, and which mode checks the public entry point performs
  /// (pread_sync historically skips the read-mode check).
  struct DataOpSpec {
    fs::IoKind kind = fs::IoKind::kRead;
    bool advance_offset = false;
    bool sync_each_op = false;
    bool latency_each_op = false;
    bool check_read_mode = true;
  };

  /// The one data funnel: fault consultation + retry/backoff wrap the
  /// bookkeeping and the fs request. Every failed attempt is traced as an
  /// extra op; exhausting the retry policy throws sim::FaultError.
  sim::Task<void> data_op(File& f, fs::Bytes offset, fs::Bytes size,
                          std::uint32_t count, DataOpSpec spec);

  /// Metadata op with the same fault/retry semantics; records both failed
  /// attempts and the successful op under `top`/`key`.
  sim::Task<void> faulted_meta(fs::FileSystemSim& fsys, fs::MetaOp mop,
                               fs::FileId id, trace::Op top,
                               trace::FileKey key, const std::string& what);

  runtime::Proc& p_;
  trace::Iface iface_;
};

}  // namespace wasp::io
