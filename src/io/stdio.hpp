// STDIO (FILE*) interface: user-space buffering over POSIX.
//
// The buffer is why JAG and Montage issue millions of <4KB fread/fwrite
// calls yet the filesystem sees buffer-granularity requests: user ops are
// traced at their real size/count, while the underlying flushes/readaheads
// run at `buffer_size` granularity with tracing suppressed.
#pragma once

#include "io/posix.hpp"

namespace wasp::io {

struct StdioFile {
  File base;
  fs::Bytes logical_offset = 0;   ///< position the user sees
  fs::Bytes write_buffered = 0;   ///< dirty bytes not yet flushed
  fs::Bytes flush_offset = 0;     ///< where the next flush lands
  fs::Bytes read_ahead = 0;       ///< buffered bytes ahead of logical_offset
  fs::Bytes read_pos = 0;         ///< underlying read position
};

class Stdio {
 public:
  /// glibc's default stream buffer is 4KiB; the advisor can raise it
  /// (setvbuf) as one of its optimizations.
  explicit Stdio(runtime::Proc& proc, fs::Bytes buffer_size = 4 * util::kKiB)
      : posix_(proc, trace::Iface::kStdio), buffer_(buffer_size) {}

  runtime::Proc& proc() noexcept { return posix_.proc(); }
  fs::Bytes buffer_size() const noexcept { return buffer_; }

  sim::Task<StdioFile> fopen(const std::string& path, OpenMode mode);
  sim::Task<void> fclose(StdioFile& f);

  /// `count` user operations of `size` bytes each, sequential.
  sim::Task<void> fread(StdioFile& f, fs::Bytes size, std::uint32_t count = 1);
  sim::Task<void> fwrite(StdioFile& f, fs::Bytes size,
                         std::uint32_t count = 1);

  /// `count` user reads of `size` bytes whose sample order is shuffled:
  /// readahead is defeated and the filesystem serves ~`fetch_ops`
  /// synchronous buffer-sized fetches (AI input pipelines on npy files).
  sim::Task<void> fread_scattered(StdioFile& f, fs::Bytes size,
                                  std::uint32_t count,
                                  std::uint32_t fetch_ops);

  sim::Task<void> fseek(StdioFile& f, fs::Bytes offset);

  /// `count` short-range seeks that stay inside the stream buffer (sample
  /// hops within the readahead window): client-side cost only, but each is
  /// a metadata op in the trace — how NumPy-style readers become 70%
  /// metadata ops without metadata-service time.
  sim::Task<void> fseek_batch(StdioFile& f, std::uint32_t count);

  sim::Task<void> fflush(StdioFile& f);

 private:
  sim::Task<void> flush_writes(StdioFile& f);

  Posix posix_;
  fs::Bytes buffer_;
};

}  // namespace wasp::io
