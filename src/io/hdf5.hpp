// HDF5-like high-level library model.
//
// An HDF5 file is a superblock + object headers + (optionally chunked)
// dataset. Opening touches several metadata blocks; each dataset access on
// an *unchunked* file does additional metadata lookups — and when the file
// is driven through MPI-IO those lookups are collective, which is exactly
// the CosmoFlow pathology the paper dissects ("no file chunking ... slows
// down the multiple metadata accesses ... 98% of the I/O time is spent in
// metadata ops").
#pragma once

#include <optional>

#include "io/mpiio.hpp"
#include "io/posix.hpp"

namespace wasp::io {

struct Hdf5Config {
  /// 0 = contiguous layout (no chunking); otherwise the chunk edge in bytes.
  fs::Bytes chunk_size = 0;
  /// Use the MPI-IO driver (collective metadata + data); otherwise POSIX.
  bool use_mpiio = true;
  /// Metadata blocks touched by open (superblock, heap, object headers...).
  int meta_reads_per_open = 4;
  /// Extra metadata lookups per dataset access when the layout is
  /// contiguous; chunked layouts amortize to one cached b-tree probe.
  int meta_reads_per_access = 2;
};

struct H5File {
  File base;                     ///< POSIX-driver handle
  std::optional<MpiFile> mpi;    ///< set when the MPI-IO driver is active
  Hdf5Config cfg;
};

class Hdf5 {
 public:
  explicit Hdf5(runtime::Proc& proc, MpiIoConfig mpiio_cfg = {})
      : posix_(proc, trace::Iface::kHdf5), mpiio_(proc, mpiio_cfg) {}

  runtime::Proc& proc() noexcept { return posix_.proc(); }

  sim::Task<H5File> open(const std::string& path, OpenMode mode,
                         Hdf5Config cfg = {});
  sim::Task<void> close(H5File& f);

  /// Read/write `count` accesses of `size` bytes each into the dataset at
  /// `offset`. Collective when the MPI-IO driver is active.
  sim::Task<void> read(H5File& f, fs::Bytes offset, fs::Bytes size,
                       std::uint32_t count = 1);
  sim::Task<void> write(H5File& f, fs::Bytes offset, fs::Bytes size,
                        std::uint32_t count = 1);

 private:
  sim::Task<void> metadata_accesses(H5File& f, int n);

  Posix posix_;
  MpiIo mpiio_;
};

}  // namespace wasp::io
