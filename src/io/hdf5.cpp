#include "io/hdf5.hpp"

namespace wasp::io {

sim::Task<void> Hdf5::metadata_accesses(H5File& f, int n) {
  if (n <= 0) co_return;
  auto& p = proc();
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    // Library metadata are synchronous 4KB reads into the file (superblock,
    // object headers, b-tree nodes) — pointer-chasing, unprefetchable.
    // With the MPI-IO driver the metadata reads are collective: the node
    // leader walks the structures and the group synchronizes around it.
    const bool collective = f.mpi.has_value();
    const bool reader = !collective || p.comm().is_node_leader(p.comm_rank());
    if (collective) co_await p.comm().barrier();
    if (reader) {
      fs::IoRequest req;
      req.site = p.site();
      req.file = f.base.id;
      req.offset = 0;
      req.size = 4 * util::kKiB;
      req.op_count = static_cast<std::uint32_t>(n);
      req.kind = fs::IoKind::kRead;
      req.sync_each_op = true;
      co_await f.base.fs->io(req);
    }
    if (collective) co_await p.comm().barrier();
  }
  p.record(trace::Iface::kHdf5, trace::Op::kMetaAccess, f.base.key(), 0, 0,
           static_cast<std::uint32_t>(n), t0);
}

sim::Task<H5File> Hdf5::open(const std::string& path, OpenMode mode,
                             Hdf5Config cfg) {
  auto& p = proc();
  H5File f;
  f.cfg = cfg;
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    if (cfg.use_mpiio) {
      f.mpi = co_await mpiio_.open_all(path, mode);
      f.base = f.mpi->base;
    } else {
      f.base = co_await posix_.open(path, mode);
    }
  }
  p.record(trace::Iface::kHdf5, trace::Op::kOpen, f.base.key(), 0, 0, 1, t0);
  co_await metadata_accesses(f, cfg.meta_reads_per_open);
  co_return f;
}

sim::Task<void> Hdf5::close(H5File& f) {
  auto& p = proc();
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    if (f.mpi) {
      co_await mpiio_.close_all(*f.mpi);
      f.base.is_open = false;
    } else {
      co_await posix_.close(f.base);
    }
  }
  p.record(trace::Iface::kHdf5, trace::Op::kClose, f.base.key(), 0, 0, 1, t0);
}

sim::Task<void> Hdf5::read(H5File& f, fs::Bytes offset, fs::Bytes size,
                           std::uint32_t count) {
  auto& p = proc();
  const int meta = f.cfg.chunk_size == 0
                       ? f.cfg.meta_reads_per_access * static_cast<int>(count)
                       : 1;
  co_await metadata_accesses(f, meta);
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    if (f.mpi) {
      co_await mpiio_.read_all(*f.mpi, offset, size, count);
    } else {
      co_await posix_.pread(f.base, offset, size, count);
    }
  }
  p.record(trace::Iface::kHdf5, trace::Op::kRead, f.base.key(), offset, size,
           count, t0);
}

sim::Task<void> Hdf5::write(H5File& f, fs::Bytes offset, fs::Bytes size,
                            std::uint32_t count) {
  auto& p = proc();
  const int meta = f.cfg.chunk_size == 0
                       ? f.cfg.meta_reads_per_access * static_cast<int>(count)
                       : 1;
  co_await metadata_accesses(f, meta);
  const sim::Time t0 = p.now();
  {
    runtime::Proc::Suppression mute(p);
    if (f.mpi) {
      co_await mpiio_.write_all(*f.mpi, offset, size, count);
    } else {
      co_await posix_.pwrite(f.base, offset, size, count);
    }
  }
  p.record(trace::Iface::kHdf5, trace::Op::kWrite, f.base.key(), offset,
           size, count, t0);
}

}  // namespace wasp::io
