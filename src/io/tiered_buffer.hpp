// Hierarchical buffering middleware (Hermes/UnifyFS-style, §II-B).
//
// Intercepts file accesses and stages whole files in a node-local tier:
//   * writes land on the fast tier and (write-back mode) flush to the PFS
//     asynchronously on close,
//   * reads are served from the tier on a hit and promoted into it on a
//     miss (when they fit),
//   * a per-node capacity pool with a configurable eviction policy (FIFO or
//     LRU) bounds the staging space — exactly the "buffer size of tiered
//     buffering resources, placement policy, element eviction policies"
//     configuration surface the paper lists for this middleware class.
//
// Trace records are emitted at the user level; tier/PFS traffic underneath
// is suppressed, matching how the paper's middleware-entity attributes are
// counted.
#pragma once

#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/posix.hpp"

namespace wasp::io {

struct TieredBufferConfig {
  enum class Eviction { kFifo, kLru };
  util::Bytes capacity_per_node = 4 * util::kGiB;
  Eviction eviction = Eviction::kLru;
  /// true: writes return after hitting the tier and flush to the PFS in
  /// the background on close; false: write-through (tier + PFS inline).
  bool write_back = true;
  std::string tier = "shm";
};

/// One instance per job (shared across all its processes).
class TieredBuffer {
 public:
  TieredBuffer(runtime::Simulation& sim, TieredBufferConfig cfg);

  const TieredBufferConfig& config() const noexcept { return cfg_; }

  struct BufFile {
    std::string path;       ///< canonical (PFS) path
    File handle;            ///< currently-open underlying handle
    bool on_tier = false;   ///< handle points at the tier copy
    bool writing = false;
    fs::Bytes logical = 0;  ///< bytes written through this open
  };

  // NOTE: `path` is taken by value: coroutines started with spawn() outlive
  // their call expression, so reference parameters to temporaries dangle.
  sim::Task<BufFile> open(runtime::Proc& p, std::string path, OpenMode mode);
  sim::Task<void> write(runtime::Proc& p, BufFile& f, fs::Bytes size,
                        std::uint32_t count = 1);
  sim::Task<void> read(runtime::Proc& p, BufFile& f, fs::Bytes size,
                       std::uint32_t count = 1);
  sim::Task<void> close(runtime::Proc& p, BufFile& f);

  /// Synchronously flush every dirty staged file to the PFS (job epilogue).
  sim::Task<void> flush_all(runtime::Proc& p);

  // Introspection for tests/benches.
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  util::Bytes staged_bytes(int node) const;
  bool is_staged(int node, const std::string& path) const;

 private:
  struct Entry {
    fs::Bytes bytes = 0;
    bool dirty = false;
    std::uint64_t last_use = 0;
    std::uint64_t arrival = 0;
  };
  struct NodeState {
    std::unordered_map<std::string, Entry> entries;
    util::Bytes used = 0;
  };

  std::string tier_path(int node, const std::string& path) const;
  /// Make room for `need` bytes on `node`; evicts (flushing dirty victims)
  /// until it fits or nothing evictable remains. Returns false if the data
  /// cannot fit at all.
  sim::Task<bool> make_room(runtime::Proc& p, int node, fs::Bytes need);
  sim::Task<void> flush_entry(runtime::Proc& p, int node,
                              const std::string& path, fs::Bytes bytes);

  runtime::Simulation& sim_;
  TieredBufferConfig cfg_;
  std::vector<NodeState> nodes_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace wasp::io
