// MPI-IO interface with ROMIO-style collective buffering.
//
// Collective reads/writes synchronize the communicator, aggregate each
// node's bytes at its node-leader rank (cb_nodes aggregators, one per node
// by default), run the filesystem I/O at cb_buffer granularity, and then
// shuffle data to/from the member ranks over the NIC. Independent ops go
// straight to the filesystem. This reproduces both the benefit (fewer,
// larger PFS requests) and the cost (extra synchronization + network hops)
// the paper attributes to MPI-IO on small shared HDF5 files.
#pragma once

#include "io/posix.hpp"

namespace wasp::io {

struct MpiIoConfig {
  /// ROMIO cb_buffer_size (default 16MB).
  fs::Bytes cb_buffer = 16 * util::kMiB;
  /// Aggregators per node (cb_nodes / #nodes); 0 disables collective
  /// buffering (every rank does its own I/O inside collectives).
  int aggregators_per_node = 1;
};

struct MpiFile {
  File base;
};

class MpiIo {
 public:
  MpiIo(runtime::Proc& proc, MpiIoConfig cfg = {})
      : posix_(proc, trace::Iface::kMpiio), cfg_(cfg) {}

  runtime::Proc& proc() noexcept { return posix_.proc(); }
  const MpiIoConfig& config() const noexcept { return cfg_; }

  /// Collective open: all ranks call; each pays the metadata cost (GPFS
  /// behaviour — the root of shared-file metadata storms).
  sim::Task<MpiFile> open_all(const std::string& path, OpenMode mode);
  sim::Task<void> close_all(MpiFile& f);

  /// Collective read/write: every rank moves `count` ops of `size` bytes at
  /// `offset` (its own file view). Assumes roughly uniform per-rank volume,
  /// which holds for the SPMD workloads modelled here.
  sim::Task<void> read_all(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                           std::uint32_t count = 1);
  sim::Task<void> write_all(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                            std::uint32_t count = 1);

  /// Independent (non-collective) ops.
  sim::Task<void> read(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                       std::uint32_t count = 1);
  sim::Task<void> write(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                        std::uint32_t count = 1);

 private:
  sim::Task<void> collective(MpiFile& f, fs::Bytes offset, fs::Bytes size,
                             std::uint32_t count, fs::IoKind kind);

  Posix posix_;
  MpiIoConfig cfg_;
  /// Ranks on this proc's node (fixed per communicator); resolved on the
  /// first collective instead of per op. 0 = not yet resolved.
  fs::Bytes node_rank_count_ = 0;
};

}  // namespace wasp::io
