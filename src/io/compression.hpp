// Transparent compression middleware (HCompress/Ares-style, §II-B / §IV-D.1).
//
// Compression is a bet on the data: the paper's introduction cites a case
// where compressing an unfavourable distribution *grew* the data 12% and
// cost 1.5x total time. The model here makes that concrete:
//  * the achievable ratio is a property of the declared value distribution
//    (the Table VI "Data dist" attribute),
//  * the codec throughput depends on where it runs — CPU core vs GPU
//    (the "# gpu/node" attribute the advisor consults).
//
// CompressedPosix wraps Posix: user-level ops are traced at their original
// size; the filesystem moves the compressed bytes.
#pragma once

#include "io/posix.hpp"

namespace wasp::io {

struct CompressionModel {
  /// Output/input size ratio (<1 shrinks, >1 grows) for a declared value
  /// distribution. "uniform" (high entropy) slightly *grows* — the paper's
  /// §I pathology; structured distributions compress well.
  static double ratio_for(const std::string& distribution);

  double cpu_bps = 600e6;  ///< single-core codec throughput
  double gpu_bps = 12e9;   ///< GPU-offloaded codec throughput
  bool use_gpu = false;
  double ratio = 0.5;

  double codec_bps() const noexcept { return use_gpu ? gpu_bps : cpu_bps; }
};

class CompressedPosix {
 public:
  CompressedPosix(runtime::Proc& proc, CompressionModel model)
      : posix_(proc), model_(model) {}

  runtime::Proc& proc() noexcept { return posix_.proc(); }
  const CompressionModel& model() const noexcept { return model_; }

  sim::Task<File> open(const std::string& path, OpenMode mode) {
    return posix_.open(path, mode);
  }
  sim::Task<void> close(File& f) { return posix_.close(f); }

  /// Compress then store `count` ops of `size` logical bytes each.
  sim::Task<void> write(File& f, fs::Bytes size, std::uint32_t count = 1);
  /// Fetch and decompress; logical extent bookkeeping uses original sizes.
  sim::Task<void> read(File& f, fs::Bytes size, std::uint32_t count = 1);

  /// Logical bytes written so far through this wrapper (for tests).
  fs::Bytes logical_written() const noexcept { return logical_written_; }

 private:
  Posix posix_;
  CompressionModel model_;
  fs::Bytes logical_written_ = 0;
};

}  // namespace wasp::io
