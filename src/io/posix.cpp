#include "io/posix.hpp"

#include <algorithm>

#include "sim/faults.hpp"
#include "util/error.hpp"

namespace wasp::io {
namespace {

const char* op_verb(fs::IoKind kind) noexcept {
  return kind == fs::IoKind::kRead ? "read" : "write";
}

}  // namespace

sim::Task<File> Posix::open(const std::string& path, OpenMode mode) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto& ns = fs.ns(p_.site());

  File f;
  f.fs = &fs;
  f.fs_idx = p_.tracer().register_fs(fs);
  f.mode = mode;

  if (mode == OpenMode::kRead) {
    auto id = ns.lookup(path);
    WASP_CHECK_MSG(id.has_value(), "open for read: no such file: " + path);
    f.id = *id;
  } else {
    f.id = ns.create(path, p_.now(), p_.rank(), p_.node());
  }
  if (mode == OpenMode::kAppend) {
    f.offset = ns.inode(f.id).size;
  }
  f.is_open = true;

  co_await faulted_meta(fs, fs::MetaOp::kOpen, f.id, trace::Op::kOpen,
                        f.key(), "open " + path);
  co_return f;
}

sim::Task<void> Posix::close(File& f) {
  WASP_CHECK_MSG(f.is_open, "close on closed file");
  co_await faulted_meta(*f.fs, fs::MetaOp::kClose, f.id, trace::Op::kClose,
                        f.key(), "close");
  f.is_open = false;
}

sim::Task<void> Posix::data_op(File& f, fs::Bytes offset, fs::Bytes size,
                               std::uint32_t count, DataOpSpec spec) {
  WASP_CHECK_MSG(f.is_open, "I/O on closed file");
  WASP_CHECK_MSG(count > 0, "zero-count I/O");
  const bool is_write = spec.kind == fs::IoKind::kWrite;
  if (is_write) {
    WASP_CHECK_MSG(f.mode != OpenMode::kRead, "write on read-only file");
  } else if (spec.check_read_mode) {
    WASP_CHECK_MSG(f.mode != OpenMode::kWrite && f.mode != OpenMode::kAppend,
                   "read on write-only file");
  }
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  const trace::Op top = is_write ? trace::Op::kWrite : trace::Op::kRead;
  sim::FaultChannel* fc = f.fs->fault_channel();

  for (std::uint32_t attempt = 1;; ++attempt) {
    const sim::Time t0 = p_.now();
    // Fault consultation happens before any bookkeeping, so a failed
    // attempt leaves no inode/usage state to roll back.
    sim::FaultKind fail =
        fc != nullptr ? fc->data_fault(is_write, t0) : sim::FaultKind::kNone;

    if (fail == sim::FaultKind::kNone) {
      auto& ns = f.fs->ns(p_.site());
      fs::Inode& inode = ns.inode(f.id);
      if (!is_write) {
        WASP_CHECK_MSG(offset + total <= inode.size,
                       "read past EOF: " + inode.path);
      } else {
        const fs::Bytes new_size = std::max(inode.size, offset + total);
        const fs::Bytes growth = new_size - inode.size;
        if (growth > 0) {
          if (f.fs->free_bytes(p_.site()) < growth) {
            // Capacity exhaustion. With a fault channel active this is a
            // retryable condition like a real transient ENOSPC; without
            // one, the historical fatal diagnostic stands.
            WASP_CHECK_MSG(fc != nullptr, "ENOSPC on " + f.fs->mount() +
                                              " writing " + inode.path);
            fc->note_capacity_enospc();
            fail = sim::FaultKind::kEnospc;
          } else {
            f.fs->note_growth(p_.site(), static_cast<std::int64_t>(growth));
            inode.size = new_size;
          }
        }
        if (fail == sim::FaultKind::kNone) inode.modified = p_.now();
      }
    }

    if (fail == sim::FaultKind::kNone) {
      fs::IoRequest req;
      req.site = p_.site();
      req.file = f.id;
      req.offset = offset;
      req.size = size;
      req.op_count = count;
      req.kind = spec.kind;
      req.sync_each_op = spec.sync_each_op;
      req.latency_each_op = spec.latency_each_op;
      co_await f.fs->io(req);

      if (spec.advance_offset) f.offset = offset + total;
      p_.record(iface_, top, f.key(), offset, size, count, t0);
      co_return;
    }

    // Failed attempt: charge its latency, trace it as an extra op — the
    // retry re-enters the virtual clock exactly like a retrying runtime.
    if (fc->fail_latency() > 0) {
      co_await sim::Delay(p_.engine(), fc->fail_latency());
    }
    p_.record(iface_, top, f.key(), offset, size, count, t0);
    const sim::RetryPolicy& rp = fc->retry();
    if (attempt >= rp.max_attempts) {
      fc->note_exhausted();
      const std::string path = f.fs->ns(p_.site()).inode(f.id).path;
      throw sim::FaultError(
          fail, std::string(op_verb(spec.kind)) + " " + path + " on " +
                    f.fs->mount() + " failed after " +
                    std::to_string(attempt) + " attempts (" +
                    sim::to_string(fail) + ")");
    }
    fc->note_retry();
    const sim::Time backoff = rp.delay_for(attempt);
    if (backoff > 0) co_await sim::Delay(p_.engine(), backoff);
  }
}

sim::Task<void> Posix::faulted_meta(fs::FileSystemSim& fsys, fs::MetaOp mop,
                                    fs::FileId id, trace::Op top,
                                    trace::FileKey key,
                                    const std::string& what) {
  sim::FaultChannel* fc = fsys.fault_channel();
  for (std::uint32_t attempt = 1;; ++attempt) {
    const sim::Time t0 = p_.now();
    if (fc != nullptr && fc->meta_fault(t0) != sim::FaultKind::kNone) {
      if (fc->fail_latency() > 0) {
        co_await sim::Delay(p_.engine(), fc->fail_latency());
      }
      p_.record(iface_, top, key, 0, 0, 1, t0);
      const sim::RetryPolicy& rp = fc->retry();
      if (attempt >= rp.max_attempts) {
        fc->note_exhausted();
        throw sim::FaultError(
            sim::FaultKind::kMetaError,
            what + " on " + fsys.mount() + " failed after " +
                std::to_string(attempt) + " attempts (metadata error)");
      }
      fc->note_retry();
      const sim::Time backoff = rp.delay_for(attempt);
      if (backoff > 0) co_await sim::Delay(p_.engine(), backoff);
      continue;
    }
    co_await fsys.meta(p_.site(), mop, id);
    p_.record(iface_, top, key, 0, 0, 1, t0);
    co_return;
  }
}

sim::Task<void> Posix::read(File& f, fs::Bytes size, std::uint32_t count) {
  DataOpSpec spec;
  spec.kind = fs::IoKind::kRead;
  spec.advance_offset = true;
  return data_op(f, f.offset, size, count, spec);
}

sim::Task<void> Posix::write(File& f, fs::Bytes size, std::uint32_t count) {
  DataOpSpec spec;
  spec.kind = fs::IoKind::kWrite;
  spec.advance_offset = true;
  return data_op(f, f.offset, size, count, spec);
}

sim::Task<void> Posix::pread(File& f, fs::Bytes offset, fs::Bytes size,
                             std::uint32_t count) {
  DataOpSpec spec;
  spec.kind = fs::IoKind::kRead;
  return data_op(f, offset, size, count, spec);
}

sim::Task<void> Posix::pwrite(File& f, fs::Bytes offset, fs::Bytes size,
                              std::uint32_t count) {
  DataOpSpec spec;
  spec.kind = fs::IoKind::kWrite;
  return data_op(f, offset, size, count, spec);
}

sim::Task<void> Posix::seek(File& f, fs::Bytes offset) {
  WASP_CHECK_MSG(f.is_open, "seek on closed file");
  const sim::Time t0 = p_.now();
  co_await f.fs->meta(p_.site(), fs::MetaOp::kSeek, f.id);
  f.offset = offset;
  p_.record(iface_, trace::Op::kSeek, f.key(), offset, 0, 1, t0);
}

sim::Task<void> Posix::seek_batch(File& f, std::uint32_t count) {
  WASP_CHECK_MSG(f.is_open, "seek on closed file");
  WASP_CHECK_MSG(count > 0, "zero-count seek batch");
  const sim::Time t0 = p_.now();
  // ~60us per seek: client VFS plus the I/O library bookkeeping around each
  // repositioning, calibrated against CM1's metadata-dominated write phases.
  co_await sim::Delay(p_.engine(), 60 * sim::kUs * count);
  p_.record(iface_, trace::Op::kSeek, f.key(), f.offset, 0, count, t0);
}

sim::Task<void> Posix::pread_sync(File& f, fs::Bytes offset, fs::Bytes size,
                                  std::uint32_t count) {
  DataOpSpec spec;
  spec.kind = fs::IoKind::kRead;
  spec.sync_each_op = true;
  spec.check_read_mode = false;
  return data_op(f, offset, size, count, spec);
}

sim::Task<void> Posix::pwrite_sync(File& f, fs::Bytes offset,
                                   fs::Bytes size, std::uint32_t count) {
  DataOpSpec spec;
  spec.kind = fs::IoKind::kWrite;
  spec.latency_each_op = true;
  return data_op(f, offset, size, count, spec);
}

sim::Task<void> Posix::stat(const std::string& path) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto id = fs.ns(p_.site()).lookup(path);
  trace::FileKey key;
  if (id) key = {p_.tracer().register_fs(fs), *id};
  co_await faulted_meta(fs, fs::MetaOp::kStat, id.value_or(fs::kInvalidFile),
                        trace::Op::kStat, key, "stat " + path);
}

sim::Task<void> Posix::sync(File& f) {
  WASP_CHECK_MSG(f.is_open, "sync on closed file");
  co_await faulted_meta(*f.fs, fs::MetaOp::kSync, f.id, trace::Op::kSync,
                        f.key(), "sync");
}

sim::Task<void> Posix::unlink(const std::string& path) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto& ns = fs.ns(p_.site());
  auto id = ns.lookup(path);
  WASP_CHECK_MSG(id.has_value(), "unlink: no such file: " + path);
  const fs::Bytes size = ns.inode(*id).size;
  co_await faulted_meta(fs, fs::MetaOp::kUnlink, *id, trace::Op::kUnlink,
                        {p_.tracer().register_fs(fs), *id},
                        "unlink " + path);
  ns.unlink(path);
  fs.note_growth(p_.site(), -static_cast<std::int64_t>(size));
}

sim::Task<std::vector<std::string>> Posix::readdir(const std::string& prefix) {
  auto& fs = p_.simulation().mounts().resolve(prefix);
  const sim::Time t0 = p_.now();
  co_await fs.meta(p_.site(), fs::MetaOp::kReaddir, fs::kInvalidFile);
  auto entries = fs.ns(p_.site()).list(prefix);
  std::sort(entries.begin(), entries.end());
  p_.record(iface_, trace::Op::kReaddir, {}, 0, 0, 1, t0);
  co_return entries;
}

fs::Bytes Posix::size_of(const std::string& path) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto& ns = fs.ns(p_.site());
  auto id = ns.lookup(path);
  WASP_CHECK_MSG(id.has_value(), "size_of: no such file: " + path);
  return ns.inode(*id).size;
}

bool Posix::exists(const std::string& path) {
  auto* fs = p_.simulation().mounts().try_resolve(path);
  return fs != nullptr && fs->ns(p_.site()).exists(path);
}

}  // namespace wasp::io
