#include "io/posix.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace wasp::io {

sim::Task<File> Posix::open(const std::string& path, OpenMode mode) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto& ns = fs.ns(p_.site());
  const sim::Time t0 = p_.now();

  File f;
  f.fs = &fs;
  f.fs_idx = p_.tracer().register_fs(fs);
  f.mode = mode;

  if (mode == OpenMode::kRead) {
    auto id = ns.lookup(path);
    WASP_CHECK_MSG(id.has_value(), "open for read: no such file: " + path);
    f.id = *id;
  } else {
    f.id = ns.create(path, p_.now(), p_.rank(), p_.node());
  }
  if (mode == OpenMode::kAppend) {
    f.offset = ns.inode(f.id).size;
  }
  f.is_open = true;

  co_await fs.meta(p_.site(), fs::MetaOp::kOpen, f.id);
  p_.record(iface_, trace::Op::kOpen, f.key(), 0, 0, 1, t0);
  co_return f;
}

sim::Task<void> Posix::close(File& f) {
  WASP_CHECK_MSG(f.is_open, "close on closed file");
  const sim::Time t0 = p_.now();
  co_await f.fs->meta(p_.site(), fs::MetaOp::kClose, f.id);
  p_.record(iface_, trace::Op::kClose, f.key(), 0, 0, 1, t0);
  f.is_open = false;
}

sim::Task<void> Posix::data_op(File& f, fs::Bytes offset, fs::Bytes size,
                               std::uint32_t count, fs::IoKind kind,
                               bool advance_offset) {
  WASP_CHECK_MSG(f.is_open, "I/O on closed file");
  WASP_CHECK_MSG(count > 0, "zero-count I/O");
  auto& ns = f.fs->ns(p_.site());
  fs::Inode& inode = ns.inode(f.id);
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  const sim::Time t0 = p_.now();

  if (kind == fs::IoKind::kRead) {
    WASP_CHECK_MSG(f.mode != OpenMode::kWrite && f.mode != OpenMode::kAppend,
                   "read on write-only file");
    WASP_CHECK_MSG(offset + total <= inode.size,
                   "read past EOF: " + inode.path);
  } else {
    WASP_CHECK_MSG(f.mode != OpenMode::kRead, "write on read-only file");
    const fs::Bytes new_size = std::max(inode.size, offset + total);
    const fs::Bytes growth = new_size - inode.size;
    if (growth > 0) {
      WASP_CHECK_MSG(f.fs->free_bytes(p_.site()) >= growth,
                     "ENOSPC on " + f.fs->mount() + " writing " + inode.path);
      f.fs->note_growth(p_.site(), static_cast<std::int64_t>(growth));
      inode.size = new_size;
    }
    inode.modified = p_.now();
  }

  fs::IoRequest req;
  req.site = p_.site();
  req.file = f.id;
  req.offset = offset;
  req.size = size;
  req.op_count = count;
  req.kind = kind;
  co_await f.fs->io(req);

  if (advance_offset) f.offset = offset + total;
  p_.record(iface_,
            kind == fs::IoKind::kRead ? trace::Op::kRead : trace::Op::kWrite,
            f.key(), offset, size, count, t0);
}

sim::Task<void> Posix::read(File& f, fs::Bytes size, std::uint32_t count) {
  return data_op(f, f.offset, size, count, fs::IoKind::kRead, true);
}

sim::Task<void> Posix::write(File& f, fs::Bytes size, std::uint32_t count) {
  return data_op(f, f.offset, size, count, fs::IoKind::kWrite, true);
}

sim::Task<void> Posix::pread(File& f, fs::Bytes offset, fs::Bytes size,
                             std::uint32_t count) {
  return data_op(f, offset, size, count, fs::IoKind::kRead, false);
}

sim::Task<void> Posix::pwrite(File& f, fs::Bytes offset, fs::Bytes size,
                              std::uint32_t count) {
  return data_op(f, offset, size, count, fs::IoKind::kWrite, false);
}

sim::Task<void> Posix::seek(File& f, fs::Bytes offset) {
  WASP_CHECK_MSG(f.is_open, "seek on closed file");
  const sim::Time t0 = p_.now();
  co_await f.fs->meta(p_.site(), fs::MetaOp::kSeek, f.id);
  f.offset = offset;
  p_.record(iface_, trace::Op::kSeek, f.key(), offset, 0, 1, t0);
}

sim::Task<void> Posix::seek_batch(File& f, std::uint32_t count) {
  WASP_CHECK_MSG(f.is_open, "seek on closed file");
  WASP_CHECK_MSG(count > 0, "zero-count seek batch");
  const sim::Time t0 = p_.now();
  // ~60us per seek: client VFS plus the I/O library bookkeeping around each
  // repositioning, calibrated against CM1's metadata-dominated write phases.
  co_await sim::Delay(p_.engine(), 60 * sim::kUs * count);
  p_.record(iface_, trace::Op::kSeek, f.key(), f.offset, 0, count, t0);
}

sim::Task<void> Posix::pread_sync(File& f, fs::Bytes offset, fs::Bytes size,
                                  std::uint32_t count) {
  WASP_CHECK_MSG(f.is_open, "I/O on closed file");
  auto& ns = f.fs->ns(p_.site());
  const fs::Inode& inode = ns.inode(f.id);
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  WASP_CHECK_MSG(offset + total <= inode.size,
                 "read past EOF: " + inode.path);
  const sim::Time t0 = p_.now();
  fs::IoRequest req;
  req.site = p_.site();
  req.file = f.id;
  req.offset = offset;
  req.size = size;
  req.op_count = count;
  req.kind = fs::IoKind::kRead;
  req.sync_each_op = true;
  co_await f.fs->io(req);
  p_.record(iface_, trace::Op::kRead, f.key(), offset, size, count, t0);
}

sim::Task<void> Posix::pwrite_sync(File& f, fs::Bytes offset,
                                   fs::Bytes size, std::uint32_t count) {
  WASP_CHECK_MSG(f.is_open, "I/O on closed file");
  WASP_CHECK_MSG(f.mode != OpenMode::kRead, "write on read-only file");
  auto& ns = f.fs->ns(p_.site());
  const fs::Bytes total = size * static_cast<fs::Bytes>(count);
  {
    fs::Inode& inode = ns.inode(f.id);
    const fs::Bytes new_size = std::max(inode.size, offset + total);
    const fs::Bytes growth = new_size - inode.size;
    if (growth > 0) {
      WASP_CHECK_MSG(f.fs->free_bytes(p_.site()) >= growth,
                     "ENOSPC on " + f.fs->mount());
      f.fs->note_growth(p_.site(), static_cast<std::int64_t>(growth));
      inode.size = new_size;
    }
    inode.modified = p_.now();
  }
  const sim::Time t0 = p_.now();
  fs::IoRequest req;
  req.site = p_.site();
  req.file = f.id;
  req.offset = offset;
  req.size = size;
  req.op_count = count;
  req.kind = fs::IoKind::kWrite;
  req.latency_each_op = true;
  co_await f.fs->io(req);
  p_.record(iface_, trace::Op::kWrite, f.key(), offset, size, count, t0);
}

sim::Task<void> Posix::stat(const std::string& path) {
  auto& fs = p_.simulation().mounts().resolve(path);
  const sim::Time t0 = p_.now();
  auto id = fs.ns(p_.site()).lookup(path);
  co_await fs.meta(p_.site(), fs::MetaOp::kStat,
                   id.value_or(fs::kInvalidFile));
  trace::FileKey key;
  if (id) key = {p_.tracer().register_fs(fs), *id};
  p_.record(iface_, trace::Op::kStat, key, 0, 0, 1, t0);
}

sim::Task<void> Posix::sync(File& f) {
  WASP_CHECK_MSG(f.is_open, "sync on closed file");
  const sim::Time t0 = p_.now();
  co_await f.fs->meta(p_.site(), fs::MetaOp::kSync, f.id);
  p_.record(iface_, trace::Op::kSync, f.key(), 0, 0, 1, t0);
}

sim::Task<void> Posix::unlink(const std::string& path) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto& ns = fs.ns(p_.site());
  const sim::Time t0 = p_.now();
  auto id = ns.lookup(path);
  WASP_CHECK_MSG(id.has_value(), "unlink: no such file: " + path);
  const fs::Bytes size = ns.inode(*id).size;
  co_await fs.meta(p_.site(), fs::MetaOp::kUnlink, *id);
  ns.unlink(path);
  fs.note_growth(p_.site(), -static_cast<std::int64_t>(size));
  p_.record(iface_, trace::Op::kUnlink,
            {p_.tracer().register_fs(fs), *id}, 0, 0, 1, t0);
}

sim::Task<std::vector<std::string>> Posix::readdir(const std::string& prefix) {
  auto& fs = p_.simulation().mounts().resolve(prefix);
  const sim::Time t0 = p_.now();
  co_await fs.meta(p_.site(), fs::MetaOp::kReaddir, fs::kInvalidFile);
  auto entries = fs.ns(p_.site()).list(prefix);
  std::sort(entries.begin(), entries.end());
  p_.record(iface_, trace::Op::kReaddir, {}, 0, 0, 1, t0);
  co_return entries;
}

fs::Bytes Posix::size_of(const std::string& path) {
  auto& fs = p_.simulation().mounts().resolve(path);
  auto& ns = fs.ns(p_.site());
  auto id = ns.lookup(path);
  WASP_CHECK_MSG(id.has_value(), "size_of: no such file: " + path);
  return ns.inode(*id).size;
}

bool Posix::exists(const std::string& path) {
  auto* fs = p_.simulation().mounts().try_resolve(path);
  return fs != nullptr && fs->ns(p_.site()).exists(path);
}

}  // namespace wasp::io
