#include "pattern/pattern.hpp"

#include "util/error.hpp"

namespace wasp::pattern {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kGroup: return "group";
    case OpKind::kOpen: return "open";
    case OpKind::kClose: return "close";
    case OpKind::kRead: return "read";
    case OpKind::kWrite: return "write";
    case OpKind::kPread: return "pread";
    case OpKind::kPwrite: return "pwrite";
    case OpKind::kPreadSync: return "pread_sync";
    case OpKind::kPwriteSync: return "pwrite_sync";
    case OpKind::kSeek: return "seek";
    case OpKind::kSeekBatch: return "seek_batch";
    case OpKind::kSeekIfWrap: return "seek_if_wrap";
    case OpKind::kReadScattered: return "read_scattered";
    case OpKind::kStat: return "stat";
    case OpKind::kCompute: return "compute";
    case OpKind::kGpuCompute: return "gpu_compute";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kAllreduce: return "allreduce";
    case OpKind::kSignal: return "signal";
    case OpKind::kWaitEvent: return "wait_event";
    case OpKind::kSpawn: return "spawn";
    case OpKind::kPacedRead: return "paced_read";
  }
  return "?";
}

const char* to_string(Layer l) noexcept {
  switch (l) {
    case Layer::kPosix: return "posix";
    case Layer::kStdio: return "stdio";
    case Layer::kHdf5: return "hdf5";
    case Layer::kCompressed: return "compressed";
  }
  return "?";
}

const char* to_string(io::OpenMode m) noexcept {
  switch (m) {
    case io::OpenMode::kRead: return "read";
    case io::OpenMode::kWrite: return "write";
    case io::OpenMode::kReadWrite: return "readwrite";
    case io::OpenMode::kAppend: return "append";
  }
  return "?";
}

OpKind op_kind_from(const std::string& s) {
  for (int k = 0; k <= static_cast<int>(OpKind::kPacedRead); ++k) {
    if (s == to_string(static_cast<OpKind>(k))) return static_cast<OpKind>(k);
  }
  throw util::SimError("pattern: unknown op kind '" + s + "'");
}

Layer layer_from(const std::string& s) {
  for (int l = 0; l <= static_cast<int>(Layer::kCompressed); ++l) {
    if (s == to_string(static_cast<Layer>(l))) return static_cast<Layer>(l);
  }
  throw util::SimError("pattern: unknown layer '" + s + "'");
}

io::OpenMode open_mode_from(const std::string& s) {
  for (int m = 0; m <= static_cast<int>(io::OpenMode::kAppend); ++m) {
    if (s == to_string(static_cast<io::OpenMode>(m))) {
      return static_cast<io::OpenMode>(m);
    }
  }
  throw util::SimError("pattern: unknown open mode '" + s + "'");
}

const std::string* JobPattern::find_meta(const std::string& key) const {
  for (const auto& [k, v] : meta) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JobPattern::set_meta(const std::string& key, const std::string& value) {
  for (auto& [k, v] : meta) {
    if (k == key) {
      v = value;
      return;
    }
  }
  meta.emplace_back(key, value);
}

namespace ops {

Op open(Layer l, std::string handle, std::string path, io::OpenMode mode) {
  Op o;
  o.kind = OpKind::kOpen;
  o.layer = l;
  o.handle = std::move(handle);
  o.path = std::move(path);
  o.mode = mode;
  return o;
}

Op close(Layer l, std::string handle) {
  Op o;
  o.kind = OpKind::kClose;
  o.layer = l;
  o.handle = std::move(handle);
  return o;
}

namespace {
Op transfer(OpKind kind, Layer l, std::string handle, Expr size, Expr count,
            Expr offset) {
  Op o;
  o.kind = kind;
  o.layer = l;
  o.handle = std::move(handle);
  o.size = std::move(size);
  o.count = std::move(count);
  o.offset = std::move(offset);
  return o;
}
}  // namespace

Op read(Layer l, std::string handle, Expr size, Expr count, Expr offset) {
  return transfer(OpKind::kRead, l, std::move(handle), std::move(size),
                  std::move(count), std::move(offset));
}

Op write(Layer l, std::string handle, Expr size, Expr count, Expr offset) {
  return transfer(OpKind::kWrite, l, std::move(handle), std::move(size),
                  std::move(count), std::move(offset));
}

Op pread(std::string handle, Expr offset, Expr size, Expr count) {
  return transfer(OpKind::kPread, Layer::kPosix, std::move(handle),
                  std::move(size), std::move(count), std::move(offset));
}

Op pwrite(std::string handle, Expr offset, Expr size, Expr count) {
  return transfer(OpKind::kPwrite, Layer::kPosix, std::move(handle),
                  std::move(size), std::move(count), std::move(offset));
}

Op pread_sync(std::string handle, Expr offset, Expr size, Expr count) {
  return transfer(OpKind::kPreadSync, Layer::kPosix, std::move(handle),
                  std::move(size), std::move(count), std::move(offset));
}

Op pwrite_sync(std::string handle, Expr offset, Expr size, Expr count) {
  return transfer(OpKind::kPwriteSync, Layer::kPosix, std::move(handle),
                  std::move(size), std::move(count), std::move(offset));
}

Op seek(Layer l, std::string handle, Expr offset) {
  Op o;
  o.kind = OpKind::kSeek;
  o.layer = l;
  o.handle = std::move(handle);
  o.offset = std::move(offset);
  return o;
}

Op seek_batch(Layer l, std::string handle, Expr count) {
  Op o;
  o.kind = OpKind::kSeekBatch;
  o.layer = l;
  o.handle = std::move(handle);
  o.count = std::move(count);
  return o;
}

Op seek_if_wrap(std::string handle, Expr bytes, Expr limit) {
  Op o;
  o.kind = OpKind::kSeekIfWrap;
  o.layer = Layer::kStdio;
  o.handle = std::move(handle);
  o.wrap_bytes = std::move(bytes);
  o.wrap_limit = std::move(limit);
  return o;
}

Op read_scattered(std::string handle, Expr size, Expr count, Expr fetch_ops) {
  Op o = transfer(OpKind::kReadScattered, Layer::kStdio, std::move(handle),
                  std::move(size), std::move(count), {});
  o.fetch_ops = std::move(fetch_ops);
  return o;
}

Op stat(std::string path) {
  Op o;
  o.kind = OpKind::kStat;
  o.path = std::move(path);
  return o;
}

Op compute(std::uint64_t ns, double jitter_lo, double jitter_span) {
  Op o;
  o.kind = OpKind::kCompute;
  o.duration_ns = ns;
  o.jitter_lo = jitter_lo;
  o.jitter_span = jitter_span;
  return o;
}

Op gpu_compute(std::uint64_t ns, double jitter_lo, double jitter_span) {
  Op o = compute(ns, jitter_lo, jitter_span);
  o.kind = OpKind::kGpuCompute;
  return o;
}

Op barrier() {
  Op o;
  o.kind = OpKind::kBarrier;
  return o;
}

Op allreduce(std::string comm, Expr bytes, bool record) {
  Op o;
  o.kind = OpKind::kAllreduce;
  o.comm = std::move(comm);
  o.size = std::move(bytes);
  o.record = record;
  return o;
}

Op signal(std::string event) {
  Op o;
  o.kind = OpKind::kSignal;
  o.event = std::move(event);
  return o;
}

Op wait_event(std::string event) {
  Op o;
  o.kind = OpKind::kWaitEvent;
  o.event = std::move(event);
  return o;
}

Op spawn(std::string app, std::vector<Op> body) {
  Op o;
  o.kind = OpKind::kSpawn;
  o.app = std::move(app);
  o.body = std::move(body);
  return o;
}

Op paced_read(std::string handle, Expr size, Expr count,
              std::uint64_t floor_ns) {
  Op o = transfer(OpKind::kPacedRead, Layer::kPosix, std::move(handle),
                  std::move(size), std::move(count), {});
  o.duration_ns = floor_ns;
  return o;
}

Op loop(std::string var, Expr begin, Expr end, std::vector<Op> body,
        Expr step, Expr when) {
  Op o;
  o.kind = OpKind::kGroup;
  o.var = std::move(var);
  o.begin = std::move(begin);
  o.end = std::move(end);
  o.step = std::move(step);
  o.when = std::move(when);
  o.body = std::move(body);
  return o;
}

Op when(Expr cond, std::vector<Op> body) {
  Op o;
  o.kind = OpKind::kGroup;
  o.when = std::move(cond);
  o.body = std::move(body);
  return o;
}

}  // namespace ops
}  // namespace wasp::pattern
