#include "pattern/expr.hpp"

#include <cctype>
#include <unordered_map>

#include "util/error.hpp"

namespace wasp::pattern {

void Env::set(const std::string& name, std::int64_t value) {
  for (auto& [k, v] : vars_) {
    if (k == name) {
      v = value;
      return;
    }
  }
  vars_.emplace_back(name, value);
}

const std::int64_t* Env::find(const std::string& name) const {
  for (const auto& [k, v] : vars_) {
    if (k == name) return &v;
  }
  return nullptr;
}

namespace detail {

enum class BinOp : std::uint8_t {
  kOr, kAnd, kEq, kNe, kLt, kLe, kGt, kGe, kAdd, kSub, kMul, kDiv, kMod,
};

enum class Fn : std::uint8_t { kMax, kMin, kCeilDiv };

struct ExprNode {
  enum class Kind : std::uint8_t { kLit, kVar, kNeg, kBin, kCall, kSizeOf };
  Kind kind = Kind::kLit;
  std::int64_t lit = 0;
  std::string name;  ///< variable name (kVar) or path template (kSizeOf)
  BinOp op = BinOp::kAdd;
  Fn fn = Fn::kMax;
  std::shared_ptr<const ExprNode> a, b;
};

}  // namespace detail

namespace {

using detail::BinOp;
using detail::ExprNode;
using detail::Fn;
using NodePtr = std::shared_ptr<const ExprNode>;

[[noreturn]] void fail(const std::string& text, const std::string& what) {
  throw util::SimError("pattern expression error: " + what + " in \"" + text +
                       "\"");
}

struct Token {
  enum class Kind : std::uint8_t { kNum, kIdent, kString, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::int64_t num = 0;
  std::string text;  ///< identifier / string body / punctuation
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  const Token& cur() const noexcept { return cur_; }

  void advance() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= src_.size()) {
      cur_ = Token{Token::Kind::kEnd, 0, ""};
      return;
    }
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t v = 0;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        v = v * 10 + (src_[pos_] - '0');
        ++pos_;
      }
      cur_ = Token{Token::Kind::kNum, v, ""};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ++pos_;
      }
      cur_ = Token{Token::Kind::kIdent, 0, src_.substr(start, pos_ - start)};
      return;
    }
    if (c == '"') {
      ++pos_;
      std::string body;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        body += src_[pos_++];
      }
      if (pos_ >= src_.size()) fail(src_, "unterminated string");
      ++pos_;  // closing quote
      cur_ = Token{Token::Kind::kString, 0, std::move(body)};
      return;
    }
    // Two-character operators first.
    static const char* kTwo[] = {"==", "!=", "<=", ">=", "&&", "||"};
    for (const char* t : kTwo) {
      if (src_.compare(pos_, 2, t) == 0) {
        pos_ += 2;
        cur_ = Token{Token::Kind::kPunct, 0, t};
        return;
      }
    }
    static const std::string kOne = "+-*/%()<>,";
    if (kOne.find(c) != std::string::npos) {
      ++pos_;
      cur_ = Token{Token::Kind::kPunct, 0, std::string(1, c)};
      return;
    }
    fail(src_, std::string("unexpected character '") + c + "'");
  }

  const std::string& src() const noexcept { return src_; }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
  Token cur_;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) {}

  NodePtr parse() {
    NodePtr e = parse_or();
    if (lex_.cur().kind != Token::Kind::kEnd) {
      fail(lex_.src(), "trailing input");
    }
    return e;
  }

 private:
  bool eat_punct(const char* p) {
    if (lex_.cur().kind == Token::Kind::kPunct && lex_.cur().text == p) {
      lex_.advance();
      return true;
    }
    return false;
  }

  void expect_punct(const char* p) {
    if (!eat_punct(p)) fail(lex_.src(), std::string("expected '") + p + "'");
  }

  static NodePtr bin(BinOp op, NodePtr a, NodePtr b) {
    auto n = std::make_shared<ExprNode>();
    n->kind = ExprNode::Kind::kBin;
    n->op = op;
    n->a = std::move(a);
    n->b = std::move(b);
    return n;
  }

  NodePtr parse_or() {
    NodePtr e = parse_and();
    while (eat_punct("||")) e = bin(BinOp::kOr, e, parse_and());
    return e;
  }

  NodePtr parse_and() {
    NodePtr e = parse_cmp();
    while (eat_punct("&&")) e = bin(BinOp::kAnd, e, parse_cmp());
    return e;
  }

  NodePtr parse_cmp() {
    NodePtr e = parse_add();
    static const std::pair<const char*, BinOp> kCmps[] = {
        {"==", BinOp::kEq}, {"!=", BinOp::kNe}, {"<=", BinOp::kLe},
        {">=", BinOp::kGe}, {"<", BinOp::kLt},  {">", BinOp::kGt},
    };
    for (const auto& [p, op] : kCmps) {
      if (eat_punct(p)) return bin(op, e, parse_add());
    }
    return e;
  }

  NodePtr parse_add() {
    NodePtr e = parse_mul();
    for (;;) {
      if (eat_punct("+")) {
        e = bin(BinOp::kAdd, e, parse_mul());
      } else if (eat_punct("-")) {
        e = bin(BinOp::kSub, e, parse_mul());
      } else {
        return e;
      }
    }
  }

  NodePtr parse_mul() {
    NodePtr e = parse_unary();
    for (;;) {
      if (eat_punct("*")) {
        e = bin(BinOp::kMul, e, parse_unary());
      } else if (eat_punct("/")) {
        e = bin(BinOp::kDiv, e, parse_unary());
      } else if (eat_punct("%")) {
        e = bin(BinOp::kMod, e, parse_unary());
      } else {
        return e;
      }
    }
  }

  NodePtr parse_unary() {
    if (eat_punct("-")) {
      auto n = std::make_shared<ExprNode>();
      n->kind = ExprNode::Kind::kNeg;
      n->a = parse_unary();
      return n;
    }
    return parse_primary();
  }

  NodePtr parse_primary() {
    const Token t = lex_.cur();
    if (t.kind == Token::Kind::kNum) {
      lex_.advance();
      auto n = std::make_shared<ExprNode>();
      n->kind = ExprNode::Kind::kLit;
      n->lit = t.num;
      return n;
    }
    if (t.kind == Token::Kind::kIdent) {
      lex_.advance();
      if (t.text == "size_of") {
        expect_punct("(");
        if (lex_.cur().kind != Token::Kind::kString) {
          fail(lex_.src(), "size_of() expects a quoted path template");
        }
        auto n = std::make_shared<ExprNode>();
        n->kind = ExprNode::Kind::kSizeOf;
        n->name = lex_.cur().text;
        lex_.advance();
        expect_punct(")");
        return n;
      }
      if (t.text == "max" || t.text == "min" || t.text == "ceil_div") {
        auto n = std::make_shared<ExprNode>();
        n->kind = ExprNode::Kind::kCall;
        n->fn = t.text == "max"   ? Fn::kMax
                : t.text == "min" ? Fn::kMin
                                  : Fn::kCeilDiv;
        expect_punct("(");
        n->a = parse_or();
        expect_punct(",");
        n->b = parse_or();
        expect_punct(")");
        return n;
      }
      auto n = std::make_shared<ExprNode>();
      n->kind = ExprNode::Kind::kVar;
      n->name = t.text;
      return n;
    }
    if (eat_punct("(")) {
      NodePtr e = parse_or();
      expect_punct(")");
      return e;
    }
    fail(lex_.src(), "expected a value");
  }

  Lexer lex_;
};

std::int64_t eval_node(const ExprNode& n, const EvalContext& ctx,
                       const std::string& text) {
  switch (n.kind) {
    case ExprNode::Kind::kLit:
      return n.lit;
    case ExprNode::Kind::kVar: {
      const std::int64_t* v =
          ctx.env != nullptr ? ctx.env->find(n.name) : nullptr;
      if (v == nullptr) fail(text, "unknown variable '" + n.name + "'");
      return *v;
    }
    case ExprNode::Kind::kNeg:
      return -eval_node(*n.a, ctx, text);
    case ExprNode::Kind::kSizeOf: {
      if (!ctx.size_of) fail(text, "size_of() has no provider here");
      return ctx.size_of(expand(n.name, ctx));
    }
    case ExprNode::Kind::kCall: {
      const std::int64_t a = eval_node(*n.a, ctx, text);
      const std::int64_t b = eval_node(*n.b, ctx, text);
      switch (n.fn) {
        case Fn::kMax:
          return a > b ? a : b;
        case Fn::kMin:
          return a < b ? a : b;
        case Fn::kCeilDiv:
          if (b == 0) fail(text, "ceil_div by zero");
          return (a + b - 1) / b;
      }
      fail(text, "bad call");
    }
    case ExprNode::Kind::kBin: {
      if (n.op == BinOp::kAnd) {
        return eval_node(*n.a, ctx, text) != 0 &&
                       eval_node(*n.b, ctx, text) != 0
                   ? 1
                   : 0;
      }
      if (n.op == BinOp::kOr) {
        return eval_node(*n.a, ctx, text) != 0 ||
                       eval_node(*n.b, ctx, text) != 0
                   ? 1
                   : 0;
      }
      const std::int64_t a = eval_node(*n.a, ctx, text);
      const std::int64_t b = eval_node(*n.b, ctx, text);
      switch (n.op) {
        case BinOp::kEq:
          return a == b ? 1 : 0;
        case BinOp::kNe:
          return a != b ? 1 : 0;
        case BinOp::kLt:
          return a < b ? 1 : 0;
        case BinOp::kLe:
          return a <= b ? 1 : 0;
        case BinOp::kGt:
          return a > b ? 1 : 0;
        case BinOp::kGe:
          return a >= b ? 1 : 0;
        case BinOp::kAdd:
          return a + b;
        case BinOp::kSub:
          return a - b;
        case BinOp::kMul:
          return a * b;
        case BinOp::kDiv:
          if (b == 0) fail(text, "division by zero");
          return a / b;
        case BinOp::kMod:
          if (b == 0) fail(text, "modulo by zero");
          return a % b;
        case BinOp::kAnd:
        case BinOp::kOr:
          break;
      }
      fail(text, "bad operator");
    }
  }
  fail(text, "bad node");
}

}  // namespace

Expr::Expr(std::string text) : text_(std::move(text)) {
  ast_ = Parser(text_).parse();
}

Expr Expr::lit(std::int64_t v) { return Expr(std::to_string(v)); }

std::int64_t Expr::eval(const EvalContext& ctx) const {
  WASP_CHECK_MSG(ast_ != nullptr, "evaluating an empty pattern expression");
  return eval_node(*ast_, ctx, text_);
}

namespace {

/// A template split once into alternating literal / expression pieces:
/// literals.size() == exprs.size() + 1, and expansion interleaves them as
/// literals[0] eval(exprs[0]) literals[1] ... literals.back().
struct CompiledTemplate {
  std::vector<std::string> literals;
  std::vector<Expr> exprs;
};

/// expand() sits on the replay hot path — a paper-scale run evaluates the
/// same handful of path templates hundreds of thousands of times, and
/// re-parsing the embedded expressions dominated the profile. Split and
/// parse each distinct template once per thread (run_many replays on
/// worker threads, so the cache is thread_local rather than locked) and
/// re-evaluate the cached ASTs. Malformed templates throw before anything
/// is cached, so every call on a bad template keeps failing identically.
const CompiledTemplate& compiled_template(const std::string& tmpl) {
  thread_local std::unordered_map<std::string, CompiledTemplate> cache;
  const auto it = cache.find(tmpl);
  if (it != cache.end()) return it->second;

  CompiledTemplate ct;
  std::string lit;
  std::size_t i = 0;
  while (i < tmpl.size()) {
    const char c = tmpl[i];
    if (c != '{') {
      WASP_CHECK_MSG(c != '}',
                     "unmatched '}' in path template: " + tmpl);
      lit += c;
      ++i;
      continue;
    }
    const std::size_t close = tmpl.find('}', i + 1);
    WASP_CHECK_MSG(close != std::string::npos,
                   "unmatched '{' in path template: " + tmpl);
    ct.literals.push_back(std::move(lit));
    lit.clear();
    ct.exprs.emplace_back(tmpl.substr(i + 1, close - i - 1));
    i = close + 1;
  }
  ct.literals.push_back(std::move(lit));
  return cache.emplace(tmpl, std::move(ct)).first->second;
}

}  // namespace

std::string expand(const std::string& tmpl, const EvalContext& ctx) {
  const CompiledTemplate& ct = compiled_template(tmpl);
  if (ct.exprs.empty()) return ct.literals.front();
  std::string out;
  out.reserve(tmpl.size() + 8 * ct.exprs.size());
  for (std::size_t k = 0; k < ct.exprs.size(); ++k) {
    out += ct.literals[k];
    out += std::to_string(ct.exprs[k].eval(ctx));
  }
  out += ct.literals.back();
  return out;
}

}  // namespace wasp::pattern
