#include "pattern/replayer.hpp"

#include <array>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/compression.hpp"
#include "io/hdf5.hpp"
#include "io/stdio.hpp"
#include "obs/obs.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workflow/dag.hpp"

namespace wasp::pattern {
namespace {

/// Per-op-kind latency histograms (`replay.op_ns.<kind>`). The sample is
/// *virtual* time elapsed across the op — a function of the simulation, so
/// the histograms are byte-identical across --jobs counts, backends, and
/// reruns, and belong to the manifest's deterministic subset. No wall
/// clock is read; accumulation is always on, like every counter.
obs::Histogram replay_op_hist(OpKind k) {
  constexpr int kNumKinds = static_cast<int>(OpKind::kPacedRead) + 1;
  static const std::array<obs::Histogram, kNumKinds> hists = [] {
    std::array<obs::Histogram, kNumKinds> h;
    for (int i = 0; i < kNumKinds; ++i) {
      h[static_cast<std::size_t>(i)] = obs::Registry::instance().histogram(
          std::string("replay.op_ns.") +
          to_string(static_cast<OpKind>(i)));
    }
    return h;
  }();
  return hists[static_cast<std::size_t>(k)];
}

struct EventState {
  sim::Event ev;
  int remaining;
  EventState(sim::Engine& eng, int countdown)
      : ev(eng), remaining(countdown) {}
};

struct CommSet {
  CommDecl decl;
  std::vector<mpi::Comm*> comms;  ///< [0] regular, [node] per_node family
};

/// Everything one replay shares; lane coroutines keep it alive.
struct RunState {
  runtime::Simulation& sim;
  JobPattern pat;
  std::map<std::string, std::uint16_t> app_ids;
  std::map<std::string, CommSet> comms;
  // Hash map, not std::map: signal/wait ops resolve their event once per
  // executed op (paced lanes make this millions of lookups) and nothing
  // iterates the container, so ordering buys nothing here.
  std::unordered_map<std::string, std::unique_ptr<EventState>> events;

  RunState(runtime::Simulation& s, JobPattern p) : sim(s), pat(std::move(p)) {}

  std::uint16_t app_id(const std::string& name) const {
    auto it = app_ids.find(name);
    WASP_CHECK_MSG(it != app_ids.end(),
                   "pattern: app '" + name + "' is not declared in apps");
    return it->second;
  }

  CommSet& comm_set(const std::string& name) {
    auto it = comms.find(name);
    WASP_CHECK_MSG(it != comms.end(),
                   "pattern: comm '" + name + "' is not declared");
    return it->second;
  }

  EventState& event(const std::string& name) {
    auto it = events.find(name);
    WASP_CHECK_MSG(it != events.end(),
                   "pattern: event '" + name + "' is not declared");
    return *it->second;
  }
};

/// All interface layers a phase might drive. Construction is side-effect
/// free, so building the unused ones costs nothing and keeps dispatch flat.
struct Layers {
  io::Posix posix;
  io::Stdio stdio;
  io::Hdf5 hdf5;
  io::CompressedPosix compressed;

  Layers(runtime::Proc& p, util::Bytes stdio_buffer, io::MpiIoConfig mpiio,
         io::CompressionModel codec)
      : posix(p), stdio(p, stdio_buffer), hdf5(p, mpiio),
        compressed(p, codec) {}
};

/// Per-layer configuration a spawned body inherits from its group/stage.
struct LaneCfg {
  util::Bytes stdio_buffer = 4 * util::kKiB;
  io::Hdf5Config hdf5;
  io::MpiIoConfig mpiio;
  io::CompressionModel codec;
  std::uint64_t rng_seed = 0;
};

/// One named file-handle slot; which member is live follows the layer of
/// the op that opened it.
struct Slot {
  io::File file;
  io::StdioFile stdio;
  io::H5File h5;
};

struct ExecCtx {
  std::shared_ptr<RunState> st;
  const LaneCfg* cfg;
  runtime::Proc& p;
  Layers& L;
  Env& env;
  util::Rng& rng;
  std::map<std::string, Slot>& slots;
  // One-entry slot memo keyed by Op identity: loop bodies re-execute the
  // same Op node millions of times, and std::map references are stable, so
  // the repeat lookups collapse to a pointer compare.
  const Op* last_slot_op = nullptr;
  Slot* last_slot = nullptr;
};

EvalContext eval_ctx(ExecCtx& c) {
  EvalContext e;
  e.env = &c.env;
  e.size_of = [&c](const std::string& path) {
    return static_cast<std::int64_t>(c.L.posix.size_of(path));
  };
  return e;
}

std::int64_t eval_or(const Expr& e, const EvalContext& ctx,
                     std::int64_t fallback) {
  return e.empty() ? fallback : e.eval(ctx);
}

util::Bytes eval_bytes(const Expr& e, const EvalContext& ctx) {
  const std::int64_t v = e.eval(ctx);
  WASP_CHECK_MSG(v >= 0, "pattern: negative byte count from '" + e.text() +
                             "'");
  return static_cast<util::Bytes>(v);
}

std::uint32_t eval_count(const Expr& e, const EvalContext& ctx) {
  const std::int64_t v = eval_or(e, ctx, 1);
  WASP_CHECK_MSG(v >= 0,
                 "pattern: negative op count from '" + e.text() + "'");
  return static_cast<std::uint32_t>(v);
}

Slot& slot_of(ExecCtx& c, const Op& o) {
  if (c.last_slot_op == &o) return *c.last_slot;
  Slot* s;
  if (o.kind == OpKind::kOpen) {
    s = &c.slots[o.handle];
  } else {
    auto it = c.slots.find(o.handle);
    WASP_CHECK_MSG(it != c.slots.end(), "pattern: handle '" + o.handle +
                                            "' used before open");
    s = &it->second;
  }
  c.last_slot_op = &o;
  c.last_slot = s;
  return *s;
}

sim::Time jittered(const Op& o, util::Rng& rng) {
  if (o.jitter_span == 0.0) return o.duration_ns;
  return static_cast<sim::Time>(
      static_cast<double>(o.duration_ns) *
      (o.jitter_lo + o.jitter_span * rng.uniform()));
}

sim::Task<void> spawn_body(std::shared_ptr<RunState> st, const Op* op,
                           LaneCfg cfg, Env env, int rank, int node);

sim::Task<void> exec_ops(ExecCtx& c, const std::vector<Op>& ops) {
  // One context for the whole op list: it only carries pointers into `c`
  // (env bindings mutate underneath it, which eval() sees), and building
  // the size_of std::function per op showed up in profiles.
  const EvalContext ec = eval_ctx(c);
  for (const Op& o : ops) {
    const sim::Time op_vt0 = c.p.now();
    switch (o.kind) {
      case OpKind::kGroup: {
        if (o.var.empty()) {
          if (o.when.empty() || o.when.eval(ec) != 0) {
            co_await exec_ops(c, o.body);
          }
          break;
        }
        const std::int64_t begin = eval_or(o.begin, ec, 0);
        const std::int64_t end = o.end.eval(ec);
        const std::int64_t step = eval_or(o.step, ec, 1);
        WASP_CHECK_MSG(step > 0, "pattern: loop step must be positive");
        for (std::int64_t i = begin; i < end; i += step) {
          c.env.set(o.var, i);
          if (!o.when.empty() && o.when.eval(ec) == 0) break;
          co_await exec_ops(c, o.body);
        }
        break;
      }
      case OpKind::kOpen: {
        const std::string path = expand(o.path, ec);
        Slot& s = slot_of(c, o);
        switch (o.layer) {
          case Layer::kPosix:
            s.file = co_await c.L.posix.open(path, o.mode);
            break;
          case Layer::kStdio:
            s.stdio = co_await c.L.stdio.fopen(path, o.mode);
            break;
          case Layer::kHdf5:
            s.h5 = co_await c.L.hdf5.open(path, o.mode, c.cfg->hdf5);
            break;
          case Layer::kCompressed:
            s.file = co_await c.L.compressed.open(path, o.mode);
            break;
        }
        break;
      }
      case OpKind::kClose: {
        Slot& s = slot_of(c, o);
        switch (o.layer) {
          case Layer::kPosix:
            co_await c.L.posix.close(s.file);
            break;
          case Layer::kStdio:
            co_await c.L.stdio.fclose(s.stdio);
            break;
          case Layer::kHdf5:
            co_await c.L.hdf5.close(s.h5);
            break;
          case Layer::kCompressed:
            co_await c.L.compressed.close(s.file);
            break;
        }
        break;
      }
      case OpKind::kRead:
      case OpKind::kWrite: {
        Slot& s = slot_of(c, o);
        const util::Bytes size = eval_bytes(o.size, ec);
        const std::uint32_t count = eval_count(o.count, ec);
        const bool rd = o.kind == OpKind::kRead;
        switch (o.layer) {
          case Layer::kPosix:
            if (rd) {
              co_await c.L.posix.read(s.file, size, count);
            } else {
              co_await c.L.posix.write(s.file, size, count);
            }
            break;
          case Layer::kStdio:
            if (rd) {
              co_await c.L.stdio.fread(s.stdio, size, count);
            } else {
              co_await c.L.stdio.fwrite(s.stdio, size, count);
            }
            break;
          case Layer::kHdf5: {
            const util::Bytes at =
                static_cast<util::Bytes>(eval_or(o.offset, ec, 0));
            if (rd) {
              co_await c.L.hdf5.read(s.h5, at, size, count);
            } else {
              co_await c.L.hdf5.write(s.h5, at, size, count);
            }
            break;
          }
          case Layer::kCompressed:
            if (rd) {
              co_await c.L.compressed.read(s.file, size, count);
            } else {
              co_await c.L.compressed.write(s.file, size, count);
            }
            break;
        }
        break;
      }
      case OpKind::kPread:
      case OpKind::kPwrite:
      case OpKind::kPreadSync:
      case OpKind::kPwriteSync: {
        Slot& s = slot_of(c, o);
        const util::Bytes at =
            static_cast<util::Bytes>(eval_or(o.offset, ec, 0));
        const util::Bytes size = eval_bytes(o.size, ec);
        const std::uint32_t count = eval_count(o.count, ec);
        switch (o.kind) {
          case OpKind::kPread:
            co_await c.L.posix.pread(s.file, at, size, count);
            break;
          case OpKind::kPwrite:
            co_await c.L.posix.pwrite(s.file, at, size, count);
            break;
          case OpKind::kPreadSync:
            co_await c.L.posix.pread_sync(s.file, at, size, count);
            break;
          default:
            co_await c.L.posix.pwrite_sync(s.file, at, size, count);
            break;
        }
        break;
      }
      case OpKind::kSeek: {
        Slot& s = slot_of(c, o);
        const util::Bytes at =
            static_cast<util::Bytes>(eval_or(o.offset, ec, 0));
        if (o.layer == Layer::kStdio) {
          co_await c.L.stdio.fseek(s.stdio, at);
        } else {
          co_await c.L.posix.seek(s.file, at);
        }
        break;
      }
      case OpKind::kSeekBatch: {
        Slot& s = slot_of(c, o);
        const std::uint32_t count = eval_count(o.count, ec);
        if (o.layer == Layer::kStdio) {
          co_await c.L.stdio.fseek_batch(s.stdio, count);
        } else {
          co_await c.L.posix.seek_batch(s.file, count);
        }
        break;
      }
      case OpKind::kSeekIfWrap: {
        Slot& s = slot_of(c, o);
        const util::Bytes ahead = eval_bytes(o.wrap_bytes, ec);
        const util::Bytes limit = eval_bytes(o.wrap_limit, ec);
        if (s.stdio.logical_offset + ahead > limit) {
          co_await c.L.stdio.fseek(s.stdio, 0);
        }
        break;
      }
      case OpKind::kReadScattered: {
        Slot& s = slot_of(c, o);
        co_await c.L.stdio.fread_scattered(s.stdio, eval_bytes(o.size, ec),
                                           eval_count(o.count, ec),
                                           eval_count(o.fetch_ops, ec));
        break;
      }
      case OpKind::kStat:
        co_await c.L.posix.stat(expand(o.path, ec));
        break;
      case OpKind::kCompute:
        co_await c.p.compute(jittered(o, c.rng));
        break;
      case OpKind::kGpuCompute:
        co_await c.p.gpu_compute(jittered(o, c.rng));
        break;
      case OpKind::kBarrier:
        co_await c.p.barrier();
        break;
      case OpKind::kAllreduce: {
        mpi::Comm& comm = *c.st->comm_set(o.comm).comms.at(0);
        const util::Bytes n = eval_bytes(o.size, ec);
        const sim::Time t0 = c.p.now();
        co_await comm.allreduce(n);
        if (o.record) {
          c.p.record(trace::Iface::kMpi, trace::Op::kSendRecv, {}, 0, n, 1,
                     t0);
        }
        break;
      }
      case OpKind::kSignal: {
        EventState& es = c.st->event(o.event);
        if (--es.remaining == 0) es.ev.set();
        break;
      }
      case OpKind::kWaitEvent:
        co_await c.st->event(o.event).ev.wait();
        break;
      case OpKind::kSpawn: {
        const std::int64_t* r = c.env.find("rank");
        const std::int64_t* n = c.env.find("node");
        c.p.engine().spawn(spawn_body(c.st, &o, *c.cfg, c.env,
                                      r != nullptr ? static_cast<int>(*r)
                                                   : c.p.rank(),
                                      n != nullptr ? static_cast<int>(*n)
                                                   : c.p.node()));
        break;
      }
      case OpKind::kPacedRead: {
        Slot& s = slot_of(c, o);
        const util::Bytes size = eval_bytes(o.size, ec);
        const std::uint32_t count = eval_count(o.count, ec);
        const sim::Time t0 = c.p.now();
        {
          runtime::Proc::Suppression mute(c.p);
          co_await c.L.posix.read(s.file, size, count);
        }
        const sim::Time elapsed = c.p.now() - t0;
        if (elapsed < o.duration_ns) {
          co_await sim::Delay(c.p.engine(), o.duration_ns - elapsed);
        }
        c.p.record(trace::Iface::kPosix, trace::Op::kRead, s.file.key(), 0,
                   size, count, t0);
        break;
      }
    }
    // Groups are containers (their body ops record themselves) and spawns
    // detach — neither has a meaningful inline latency.
    if (o.kind != OpKind::kGroup && o.kind != OpKind::kSpawn) {
      replay_op_hist(o.kind).add(
          static_cast<std::uint64_t>(c.p.now() - op_vt0));
    }
  }
}

sim::Task<void> spawn_body(std::shared_ptr<RunState> st, const Op* op,
                           LaneCfg cfg, Env env, int rank, int node) {
  runtime::Proc p(st->sim, st->app_id(op->app), rank, node);
  Layers L(p, cfg.stdio_buffer, cfg.mpiio, cfg.codec);
  util::Rng rng =
      util::Rng(cfg.rng_seed).fork(static_cast<std::uint64_t>(rank));
  std::map<std::string, Slot> slots;
  ExecCtx c{st, &cfg, p, L, env, rng, slots};
  co_await exec_ops(c, op->body);
}

sim::Task<void> lane_body(std::shared_ptr<RunState> st, std::size_t gi,
                          int lane) {
  const LaneGroup& g = st->pat.groups[gi];
  CommSet& cs = st->comm_set(g.comm);
  int rank = lane;
  int node = 0;
  int comm_rank = -1;
  int local = 0;
  bool leader = false;
  mpi::Comm* comm = nullptr;
  if (cs.decl.per_node) {
    node = lane / cs.decl.procs;
    local = lane % cs.decl.procs;
    comm_rank = local;
    comm = cs.comms.at(static_cast<std::size_t>(node));
    leader = local == 0;
  } else {
    comm = cs.comms.at(0);
    node = comm->node_of(rank);
    local = rank - comm->node_leader(rank);
    leader = comm->is_node_leader(rank);
  }

  util::Rng rng =
      util::Rng(g.rng_seed).fork(static_cast<std::uint64_t>(rank));
  Env env;
  env.set("rank", rank);
  env.set("node", node);
  env.set("local", local);
  env.set("leader", leader ? 1 : 0);
  LaneCfg cfg{g.stdio_buffer, g.hdf5, g.mpiio, g.codec, g.rng_seed};

  for (const PhasePattern& ph : g.phases) {
    runtime::Proc p(st->sim, st->app_id(ph.app), rank, node, comm, comm_rank);
    Layers L(p, g.stdio_buffer, g.mpiio, g.codec);
    std::map<std::string, Slot> slots;
    ExecCtx c{st, &cfg, p, L, env, rng, slots};
    co_await exec_ops(c, ph.ops);
  }
}

sim::Task<void> dag_task_body(std::shared_ptr<RunState> st,
                              const DagStage* stage, int instance,
                              runtime::Proc& p) {
  const DagDecl& dag = st->pat.dag;
  LaneCfg cfg;
  cfg.stdio_buffer = dag.stdio_buffer;
  cfg.rng_seed = stage->rng_seed;
  Layers L(p, cfg.stdio_buffer, cfg.mpiio, cfg.codec);
  util::Rng rng =
      util::Rng(stage->rng_seed).fork(static_cast<std::uint64_t>(instance));
  Env env;
  env.set("id", instance);
  env.set("rank", p.rank());
  env.set("node", p.node());
  std::map<std::string, Slot> slots;
  ExecCtx c{st, &cfg, p, L, env, rng, slots};
  co_await exec_ops(c, stage->ops);
}

sim::Task<void> dag_driver(std::shared_ptr<RunState> st) {
  const DagDecl& D = st->pat.dag;
  workflow::Dag dag;
  std::vector<std::vector<int>> task_ids(D.stages.size());
  for (std::size_t si = 0; si < D.stages.size(); ++si) {
    const DagStage* stage = &D.stages[si];
    for (int inst = 0; inst < stage->count; ++inst) {
      workflow::TaskSpec spec;
      spec.app = stage->app;
      spec.body = [st, stage, inst](runtime::Proc& p) {
        return dag_task_body(st, stage, inst, p);
      };
      const int id = dag.add_task(std::move(spec));
      task_ids[si].push_back(id);
      for (const DagDep& dep : stage->deps) {
        WASP_CHECK_MSG(dep.stage >= 0 &&
                           static_cast<std::size_t>(dep.stage) < si,
                       "pattern: dag dep must reference an earlier stage");
        const auto& producers = task_ids[static_cast<std::size_t>(dep.stage)];
        if (dep.index.empty()) {
          for (int t : producers) dag.add_dependency(id, t);
        } else {
          Env env;
          env.set("id", inst);
          EvalContext ec;
          ec.env = &env;
          const std::int64_t idx = dep.index.eval(ec);
          dag.add_dependency(id,
                             producers.at(static_cast<std::size_t>(idx)));
        }
      }
    }
  }

  workflow::PegasusScheduler::Options opts;
  opts.slots = D.slots;
  opts.nodes = D.nodes;
  opts.locality_aware = D.locality_aware;
  workflow::PegasusScheduler sched(st->sim, opts);
  auto& tracer = st->sim.tracer();
  std::map<std::string, std::uint16_t> app_ids;
  co_await sched.run(dag, [&tracer, &app_ids](const std::string& name) {
    auto it = app_ids.find(name);
    if (it == app_ids.end()) {
      it = app_ids.emplace(name, tracer.register_app(name)).first;
    }
    return it->second;
  });
}

}  // namespace

void replay(runtime::Simulation& sim, const JobPattern& pat) {
  // A pattern-borne fault plan installs here unless the runner already
  // installed one (RunConfig.faults wins, keeping the equivalence oracle
  // comparable: pattern path and imperative path see the same injector).
  if (pat.faults.enabled() && sim.faults() == nullptr) {
    sim.install_faults(pat.faults);
  }
  auto st = std::make_shared<RunState>(sim, pat);
  for (const std::string& name : st->pat.apps) {
    st->app_ids.emplace(name, sim.tracer().register_app(name));
  }
  for (const CommDecl& decl : st->pat.comms) {
    CommSet cs;
    cs.decl = decl;
    if (decl.per_node) {
      for (int n = 0; n < decl.nodes; ++n) {
        cs.comms.push_back(&sim.add_comm_mapped(
            std::vector<int>(static_cast<std::size_t>(decl.procs), n)));
      }
    } else {
      cs.comms.push_back(&sim.add_comm(decl.procs, decl.nodes));
    }
    st->comms.emplace(decl.name, std::move(cs));
  }
  for (const EventDecl& decl : st->pat.events) {
    st->events.emplace(decl.name, std::make_unique<EventState>(
                                      sim.engine(), decl.countdown));
  }
  for (std::size_t gi = 0; gi < st->pat.groups.size(); ++gi) {
    const LaneGroup& g = st->pat.groups[gi];
    const CommSet& cs = st->comm_set(g.comm);
    const int lanes = cs.decl.per_node ? cs.decl.nodes * cs.decl.procs
                                       : cs.decl.procs;
    for (int lane = 0; lane < lanes; ++lane) {
      sim.engine().spawn(lane_body(st, gi, lane));
    }
  }
  if (!st->pat.dag.empty()) {
    sim.engine().spawn(dag_driver(st));
  }
}

}  // namespace wasp::pattern
