// YAML serialization of the pattern IR.
//
// The dump is deterministic and canonical: fields appear in a fixed order,
// expression fields are emitted verbatim (their source text), and fields
// that are irrelevant to an op kind — or carry their default — are omitted.
// Loading a dumped pattern and dumping it again reproduces the bytes
// exactly; that property is what makes `wasp_pattern dump | edit | replay`
// trustworthy and is locked in by tests/test_pattern.cpp.
#include <cstdlib>

#include "pattern/pattern.hpp"
#include "util/error.hpp"
#include "util/yaml.hpp"
#include "util/yaml_reader.hpp"

namespace wasp::pattern {
namespace {

using util::yaml::Node;
using util::yaml::Writer;

// ---- dump ----------------------------------------------------------------

void dump_expr(Writer& y, const char* key, const Expr& e) {
  if (!e.empty()) y.scalar(key, e.text());
}

void dump_ops(Writer& y, const char* key, const std::vector<Op>& ops);

void dump_op(Writer& y, const Op& o) {
  y.begin_seq_item_map();
  y.scalar("op", to_string(o.kind));
  switch (o.kind) {
    case OpKind::kGroup:
      if (!o.var.empty()) y.scalar("var", o.var);
      dump_expr(y, "begin", o.begin);
      dump_expr(y, "end", o.end);
      dump_expr(y, "step", o.step);
      dump_expr(y, "when", o.when);
      break;
    case OpKind::kOpen:
      y.scalar("layer", to_string(o.layer));
      y.scalar("handle", o.handle);
      y.scalar("path", o.path);
      y.scalar("mode", to_string(o.mode));
      break;
    case OpKind::kClose:
      y.scalar("layer", to_string(o.layer));
      y.scalar("handle", o.handle);
      break;
    case OpKind::kRead:
    case OpKind::kWrite:
      y.scalar("layer", to_string(o.layer));
      y.scalar("handle", o.handle);
      dump_expr(y, "offset", o.offset);
      dump_expr(y, "size", o.size);
      dump_expr(y, "count", o.count);
      break;
    case OpKind::kPread:
    case OpKind::kPwrite:
    case OpKind::kPreadSync:
    case OpKind::kPwriteSync:
      y.scalar("handle", o.handle);
      dump_expr(y, "offset", o.offset);
      dump_expr(y, "size", o.size);
      dump_expr(y, "count", o.count);
      break;
    case OpKind::kSeek:
      y.scalar("layer", to_string(o.layer));
      y.scalar("handle", o.handle);
      dump_expr(y, "offset", o.offset);
      break;
    case OpKind::kSeekBatch:
      y.scalar("layer", to_string(o.layer));
      y.scalar("handle", o.handle);
      dump_expr(y, "count", o.count);
      break;
    case OpKind::kSeekIfWrap:
      y.scalar("handle", o.handle);
      dump_expr(y, "wrap_bytes", o.wrap_bytes);
      dump_expr(y, "wrap_limit", o.wrap_limit);
      break;
    case OpKind::kReadScattered:
      y.scalar("handle", o.handle);
      dump_expr(y, "size", o.size);
      dump_expr(y, "count", o.count);
      dump_expr(y, "fetch_ops", o.fetch_ops);
      break;
    case OpKind::kStat:
      y.scalar("path", o.path);
      break;
    case OpKind::kCompute:
    case OpKind::kGpuCompute:
      y.scalar("duration_ns", o.duration_ns);
      if (o.jitter_span != 0.0) {
        y.scalar("jitter_lo", o.jitter_lo);
        y.scalar("jitter_span", o.jitter_span);
      }
      break;
    case OpKind::kBarrier:
      break;
    case OpKind::kAllreduce:
      y.scalar("comm", o.comm);
      dump_expr(y, "size", o.size);
      if (!o.record) y.scalar("record", false);
      break;
    case OpKind::kSignal:
    case OpKind::kWaitEvent:
      y.scalar("event", o.event);
      break;
    case OpKind::kSpawn:
      y.scalar("app", o.app);
      break;
    case OpKind::kPacedRead:
      y.scalar("handle", o.handle);
      dump_expr(y, "size", o.size);
      dump_expr(y, "count", o.count);
      y.scalar("floor_ns", o.duration_ns);
      break;
  }
  if (!o.body.empty()) dump_ops(y, "body", o.body);
  y.end_map();
}

void dump_ops(Writer& y, const char* key, const std::vector<Op>& ops) {
  y.begin_seq(key);
  for (const Op& o : ops) dump_op(y, o);
  y.end_seq();
}

// ---- load ----------------------------------------------------------------

[[noreturn]] void bad(const std::string& what) {
  throw util::SimError("pattern yaml: " + what);
}

std::int64_t to_i64(const std::string& s, const std::string& key) {
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    bad("field '" + key + "' is not an integer: '" + s + "'");
  }
  return v;
}

double to_f64(const std::string& s, const std::string& key) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    bad("field '" + key + "' is not a number: '" + s + "'");
  }
  return v;
}

std::int64_t get_int(const Node& n, const std::string& key,
                     std::int64_t fallback) {
  const Node* f = n.find(key);
  if (f == nullptr) return fallback;
  return to_i64(f->scalar(), key);
}

double get_double(const Node& n, const std::string& key, double fallback) {
  const Node* f = n.find(key);
  if (f == nullptr) return fallback;
  return to_f64(f->scalar(), key);
}

bool get_bool(const Node& n, const std::string& key, bool fallback) {
  const Node* f = n.find(key);
  if (f == nullptr) return fallback;
  const std::string& s = f->scalar();
  if (s == "true") return true;
  if (s == "false") return false;
  bad("field '" + key + "' is not a bool: '" + s + "'");
}

std::string get_str(const Node& n, const std::string& key,
                    const std::string& fallback = "") {
  const Node* f = n.find(key);
  return f == nullptr ? fallback : f->scalar();
}

Expr get_expr(const Node& n, const std::string& key) {
  const Node* f = n.find(key);
  if (f == nullptr) return {};
  try {
    return Expr(f->scalar());
  } catch (const util::SimError& e) {
    bad("field '" + key + "': " + e.what());
  }
}

std::vector<Op> load_ops(const Node* seq, const std::string& where);

Op load_op(const Node& n, const std::string& where) {
  if (!n.is_map()) bad(where + ": op entry is not a map");
  const Node* kind = n.find("op");
  if (kind == nullptr || !kind->is_scalar()) {
    bad(where + ": op entry missing 'op' kind");
  }
  Op o;
  o.kind = op_kind_from(kind->scalar());
  const std::string layer = get_str(n, "layer");
  if (!layer.empty()) o.layer = layer_from(layer);
  o.handle = get_str(n, "handle");
  o.path = get_str(n, "path");
  const std::string mode = get_str(n, "mode");
  if (!mode.empty()) o.mode = open_mode_from(mode);
  o.offset = get_expr(n, "offset");
  o.size = get_expr(n, "size");
  o.count = get_expr(n, "count");
  o.fetch_ops = get_expr(n, "fetch_ops");
  o.wrap_bytes = get_expr(n, "wrap_bytes");
  o.wrap_limit = get_expr(n, "wrap_limit");
  o.duration_ns = static_cast<std::uint64_t>(
      get_int(n, o.kind == OpKind::kPacedRead ? "floor_ns" : "duration_ns",
              0));
  o.jitter_lo = get_double(n, "jitter_lo", 1.0);
  o.jitter_span = get_double(n, "jitter_span", 0.0);
  o.comm = get_str(n, "comm");
  o.record = get_bool(n, "record", true);
  o.event = get_str(n, "event");
  o.app = get_str(n, "app");
  o.var = get_str(n, "var");
  o.begin = get_expr(n, "begin");
  o.end = get_expr(n, "end");
  o.step = get_expr(n, "step");
  o.when = get_expr(n, "when");
  o.body = load_ops(n.find("body"), where);
  return o;
}

std::vector<Op> load_ops(const Node* seq, const std::string& where) {
  std::vector<Op> ops;
  if (seq == nullptr) return ops;
  if (!seq->is_seq()) bad(where + ": ops is not a sequence");
  for (const Node& item : seq->items()) ops.push_back(load_op(item, where));
  return ops;
}

}  // namespace

std::string to_yaml(const JobPattern& pat) {
  Writer y;
  y.scalar("name", pat.name);
  if (pat.faults.enabled()) y.scalar("faults", pat.faults.to_spec());
  if (!pat.apps.empty()) {
    y.begin_seq("apps");
    for (const auto& a : pat.apps) y.scalar_item(a);
    y.end_seq();
  }
  if (!pat.comms.empty()) {
    y.begin_seq("comms");
    for (const CommDecl& c : pat.comms) {
      y.begin_seq_item_map();
      y.scalar("name", c.name);
      y.scalar("procs", c.procs);
      y.scalar("nodes", c.nodes);
      if (c.per_node) y.scalar("per_node", true);
      y.end_map();
    }
    y.end_seq();
  }
  if (!pat.events.empty()) {
    y.begin_seq("events");
    for (const EventDecl& e : pat.events) {
      y.begin_seq_item_map();
      y.scalar("name", e.name);
      y.scalar("countdown", e.countdown);
      y.end_map();
    }
    y.end_seq();
  }
  if (!pat.meta.empty()) {
    y.begin_seq("meta");
    for (const auto& [k, v] : pat.meta) {
      y.begin_seq_item_map();
      y.scalar("key", k);
      y.scalar("value", v);
      y.end_map();
    }
    y.end_seq();
  }
  if (!pat.groups.empty()) {
    y.begin_seq("groups");
    for (const LaneGroup& g : pat.groups) {
      y.begin_seq_item_map();
      y.scalar("comm", g.comm);
      y.scalar("rng_seed", g.rng_seed);
      y.scalar("stdio_buffer", static_cast<std::uint64_t>(g.stdio_buffer));
      y.begin_map("hdf5");
      y.scalar("chunk_size", static_cast<std::uint64_t>(g.hdf5.chunk_size));
      y.scalar("use_mpiio", g.hdf5.use_mpiio);
      y.scalar("meta_reads_per_open", g.hdf5.meta_reads_per_open);
      y.scalar("meta_reads_per_access", g.hdf5.meta_reads_per_access);
      y.end_map();
      y.begin_map("mpiio");
      y.scalar("cb_buffer", static_cast<std::uint64_t>(g.mpiio.cb_buffer));
      y.scalar("aggregators_per_node", g.mpiio.aggregators_per_node);
      y.end_map();
      y.begin_map("codec");
      y.scalar("cpu_bps", g.codec.cpu_bps);
      y.scalar("gpu_bps", g.codec.gpu_bps);
      y.scalar("use_gpu", g.codec.use_gpu);
      y.scalar("ratio", g.codec.ratio);
      y.end_map();
      y.begin_seq("phases");
      for (const PhasePattern& ph : g.phases) {
        y.begin_seq_item_map();
        y.scalar("app", ph.app);
        dump_ops(y, "ops", ph.ops);
        y.end_map();
      }
      y.end_seq();
      y.end_map();
    }
    y.end_seq();
  }
  if (!pat.dag.empty()) {
    y.begin_map("dag");
    y.scalar("slots", pat.dag.slots);
    y.scalar("nodes", pat.dag.nodes);
    y.scalar("locality_aware", pat.dag.locality_aware);
    y.scalar("stdio_buffer",
             static_cast<std::uint64_t>(pat.dag.stdio_buffer));
    y.begin_seq("stages");
    for (const DagStage& s : pat.dag.stages) {
      y.begin_seq_item_map();
      y.scalar("app", s.app);
      y.scalar("count", s.count);
      y.scalar("rng_seed", s.rng_seed);
      if (!s.deps.empty()) {
        y.begin_seq("deps");
        for (const DagDep& d : s.deps) {
          y.begin_seq_item_map();
          y.scalar("stage", d.stage);
          dump_expr(y, "index", d.index);
          y.end_map();
        }
        y.end_seq();
      }
      dump_ops(y, "ops", s.ops);
      y.end_map();
    }
    y.end_seq();
    y.end_map();
  }
  return y.str();
}

JobPattern pattern_from_yaml(const std::string& text) {
  const Node root = util::yaml::parse(text);
  if (!root.is_map()) bad("document root is not a map");
  JobPattern pat;
  pat.name = get_str(root, "name");
  if (const Node* faults = root.find("faults")) {
    if (!faults->is_scalar()) bad("'faults' is not a scalar spec string");
    pat.faults = sim::FaultPlan::parse(faults->scalar());
  }
  if (const Node* apps = root.find("apps")) {
    if (!apps->is_seq()) bad("'apps' is not a sequence");
    for (const Node& a : apps->items()) pat.apps.push_back(a.scalar());
  }
  if (const Node* comms = root.find("comms")) {
    if (!comms->is_seq()) bad("'comms' is not a sequence");
    for (const Node& c : comms->items()) {
      CommDecl d;
      d.name = get_str(c, "name");
      if (d.name.empty()) bad("comm missing 'name'");
      d.procs = static_cast<int>(get_int(c, "procs", 0));
      d.nodes = static_cast<int>(get_int(c, "nodes", 1));
      d.per_node = get_bool(c, "per_node", false);
      pat.comms.push_back(std::move(d));
    }
  }
  if (const Node* events = root.find("events")) {
    if (!events->is_seq()) bad("'events' is not a sequence");
    for (const Node& e : events->items()) {
      EventDecl d;
      d.name = get_str(e, "name");
      if (d.name.empty()) bad("event missing 'name'");
      d.countdown = static_cast<int>(get_int(e, "countdown", 1));
      pat.events.push_back(std::move(d));
    }
  }
  if (const Node* meta = root.find("meta")) {
    if (!meta->is_seq()) bad("'meta' is not a sequence");
    for (const Node& m : meta->items()) {
      pat.meta.emplace_back(get_str(m, "key"), get_str(m, "value"));
    }
  }
  if (const Node* groups = root.find("groups")) {
    if (!groups->is_seq()) bad("'groups' is not a sequence");
    for (const Node& gn : groups->items()) {
      LaneGroup g;
      g.comm = get_str(gn, "comm");
      if (g.comm.empty()) bad("group missing 'comm'");
      g.rng_seed = static_cast<std::uint64_t>(get_int(gn, "rng_seed", 0));
      g.stdio_buffer = static_cast<util::Bytes>(
          get_int(gn, "stdio_buffer", 4 * static_cast<int>(util::kKiB)));
      if (const Node* h5 = gn.find("hdf5")) {
        g.hdf5.chunk_size =
            static_cast<util::Bytes>(get_int(*h5, "chunk_size", 0));
        g.hdf5.use_mpiio = get_bool(*h5, "use_mpiio", true);
        g.hdf5.meta_reads_per_open =
            static_cast<int>(get_int(*h5, "meta_reads_per_open", 4));
        g.hdf5.meta_reads_per_access =
            static_cast<int>(get_int(*h5, "meta_reads_per_access", 2));
      }
      if (const Node* m = gn.find("mpiio")) {
        g.mpiio.cb_buffer = static_cast<util::Bytes>(
            get_int(*m, "cb_buffer",
                    static_cast<std::int64_t>(16 * util::kMiB)));
        g.mpiio.aggregators_per_node =
            static_cast<int>(get_int(*m, "aggregators_per_node", 1));
      }
      if (const Node* c = gn.find("codec")) {
        g.codec.cpu_bps = get_double(*c, "cpu_bps", 600e6);
        g.codec.gpu_bps = get_double(*c, "gpu_bps", 12e9);
        g.codec.use_gpu = get_bool(*c, "use_gpu", false);
        g.codec.ratio = get_double(*c, "ratio", 0.5);
      }
      if (const Node* phases = gn.find("phases")) {
        if (!phases->is_seq()) bad("group 'phases' is not a sequence");
        for (const Node& pn : phases->items()) {
          PhasePattern ph;
          ph.app = get_str(pn, "app");
          if (ph.app.empty()) bad("phase missing 'app'");
          ph.ops = load_ops(pn.find("ops"), "phase '" + ph.app + "'");
          g.phases.push_back(std::move(ph));
        }
      }
      pat.groups.push_back(std::move(g));
    }
  }
  if (const Node* dag = root.find("dag")) {
    if (!dag->is_map()) bad("'dag' is not a map");
    pat.dag.slots = static_cast<int>(get_int(*dag, "slots", 0));
    pat.dag.nodes = static_cast<int>(get_int(*dag, "nodes", 1));
    pat.dag.locality_aware = get_bool(*dag, "locality_aware", false);
    pat.dag.stdio_buffer = static_cast<util::Bytes>(
        get_int(*dag, "stdio_buffer", 4 * static_cast<int>(util::kKiB)));
    if (const Node* stages = dag->find("stages")) {
      if (!stages->is_seq()) bad("dag 'stages' is not a sequence");
      for (const Node& sn : stages->items()) {
        DagStage s;
        s.app = get_str(sn, "app");
        if (s.app.empty()) bad("dag stage missing 'app'");
        s.count = static_cast<int>(get_int(sn, "count", 1));
        s.rng_seed = static_cast<std::uint64_t>(get_int(sn, "rng_seed", 0));
        if (const Node* deps = sn.find("deps")) {
          if (!deps->is_seq()) bad("stage 'deps' is not a sequence");
          for (const Node& dn : deps->items()) {
            DagDep d;
            d.stage = static_cast<int>(get_int(dn, "stage", -1));
            if (d.stage < 0) bad("dag dep missing 'stage'");
            d.index = get_expr(dn, "index");
            s.deps.push_back(std::move(d));
          }
        }
        s.ops = load_ops(sn.find("ops"), "dag stage '" + s.app + "'");
        pat.dag.stages.push_back(std::move(s));
      }
    }
  }
  return pat;
}

}  // namespace wasp::pattern
