// Generic pattern replayer: drives a JobPattern through the existing io::
// interface layers (Posix/Stdio/MpiIo/Hdf5/CompressedPosix) and the
// workflow DAG engine, producing the same engine-visible event sequence —
// and therefore a byte-identical trace — as the imperative workload model
// the pattern was compiled from.
#pragma once

#include "pattern/pattern.hpp"
#include "runtime/simulation.hpp"

namespace wasp::pattern {

/// Spawn every lane (and the DAG driver, when the pattern has one) of
/// `pat` into the simulation's engine. Mirrors a Workload::launch body:
/// the caller runs the engine afterwards. The pattern is copied; the
/// caller's object need not outlive the run.
void replay(runtime::Simulation& sim, const JobPattern& pat);

}  // namespace wasp::pattern
