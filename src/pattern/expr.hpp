// Integer expression mini-language for the I/O-pattern IR.
//
// Pattern fields that depend on a lane's identity (rank, node, ...), on a
// loop variable, or on runtime file sizes are stored as small arithmetic
// expressions in source form ("max(size_of(\"/p/x_{node}\")/4096, 1)") so a
// pattern dumped to YAML is both human-readable and loadable. Everything a
// compiler can fold from workload params is baked to a literal before the
// pattern leaves the compile step; these expressions carry only what truly
// varies per lane or per run.
//
// Grammar (C-like, 64-bit signed integers; comparisons yield 0/1):
//   expr  := or
//   or    := and ("||" and)*
//   and   := cmp ("&&" cmp)*
//   cmp   := add (("=="|"!="|"<="|">="|"<"|">") add)?
//   add   := mul (("+"|"-") mul)*
//   mul   := unary (("*"|"/"|"%") unary)*
//   unary := "-" unary | primary
//   primary := integer | identifier | call | "(" expr ")"
//   call  := ("max"|"min"|"ceil_div") "(" expr "," expr ")"
//          | "size_of" "(" string ")"
// Division/modulo truncate toward zero (C++ semantics) and throw on zero
// divisors. size_of() takes a file-name template (see expand()) and asks
// the evaluation context for the file's current size.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace wasp::pattern {

namespace detail {
struct ExprNode;
}

/// Ordered name -> int64 bindings; set() overwrites an existing name.
class Env {
 public:
  void set(const std::string& name, std::int64_t value);
  const std::int64_t* find(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, std::int64_t>> vars_;
};

/// Everything an expression may consult when evaluated.
struct EvalContext {
  const Env* env = nullptr;
  /// Current size of a (fully expanded) path; required only when the
  /// expression uses size_of().
  std::function<std::int64_t(const std::string& path)> size_of;
};

/// A parsed expression. Copies share the immutable AST; the original
/// source text is preserved verbatim for serialization.
class Expr {
 public:
  Expr() = default;
  /// Parses `text`; throws util::SimError with a diagnostic on bad syntax.
  explicit Expr(std::string text);
  /// Literal constant.
  static Expr lit(std::int64_t v);

  bool empty() const noexcept { return ast_ == nullptr; }
  const std::string& text() const noexcept { return text_; }

  /// Evaluate; throws util::SimError on empty expressions, unknown
  /// variables, zero divisors, or size_of() without a provider.
  std::int64_t eval(const EvalContext& ctx) const;

 private:
  std::string text_;
  std::shared_ptr<const detail::ExprNode> ast_;
};

/// Expand a file-name template: each "{expr}" placeholder is replaced by
/// the decimal value of the enclosed expression ("/p/hacc/{rank}.ckpt").
std::string expand(const std::string& tmpl, const EvalContext& ctx);

}  // namespace wasp::pattern
