// Declarative I/O-pattern IR.
//
// A JobPattern is a complete, self-contained description of a job's I/O
// behavior: which communicators exist, which lane groups run which phases,
// and — per phase — the exact op sequence (opens, transfers, seeks, compute
// spans, barriers, loops) each lane performs. Workload models *compile*
// their parameters + RunConfig into a JobPattern; a generic Replayer (see
// replayer.hpp) drives the pattern through the existing io:: layers so the
// resulting trace is byte-identical to the hand-written imperative model.
//
// The IR is the what-if surface: advisor optimizations (§IV-D) become pure
// IR->IR rewrites (advisor/pattern_rewrites.hpp), and patterns round-trip
// through YAML (to_yaml/from_yaml) so tools can dump, mutate, and replay
// them (tools/wasp_pattern).
//
// Everything a compiler can fold from workload params is baked to integer
// literals; fields that genuinely vary per lane, per loop iteration, or
// with runtime file sizes are Exprs over the lane environment
// (rank/node/local/leader + loop variables + size_of()).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "io/compression.hpp"
#include "io/hdf5.hpp"
#include "io/mpiio.hpp"
#include "io/posix.hpp"
#include "sim/faults.hpp"
#include "pattern/expr.hpp"
#include "util/units.hpp"

namespace wasp::pattern {

enum class OpKind : std::uint8_t {
  kGroup,          ///< loop (var set) or guarded block (var empty)
  kOpen,
  kClose,
  kRead,           ///< sequential from current offset (hdf5: at `offset`)
  kWrite,
  kPread,          ///< positional, posix layer
  kPwrite,
  kPreadSync,
  kPwriteSync,
  kSeek,
  kSeekBatch,
  kSeekIfWrap,     ///< stdio: rewind when offset + wrap_bytes > wrap_limit
  kReadScattered,  ///< stdio fread_scattered
  kStat,
  kCompute,
  kGpuCompute,
  kBarrier,        ///< lane communicator barrier
  kAllreduce,      ///< on a named communicator, optional manual MPI record
  kSignal,         ///< decrement a countdown event; last signaler sets it
  kWaitEvent,
  kSpawn,          ///< detach body as an engine root task (async drain)
  kPacedRead,      ///< suppressed read + pacing floor + one manual record
};

/// Which io:: interface executes the op.
enum class Layer : std::uint8_t { kPosix, kStdio, kHdf5, kCompressed };

const char* to_string(OpKind k) noexcept;
const char* to_string(Layer l) noexcept;
const char* to_string(io::OpenMode m) noexcept;
/// Throw SimError naming the offending token on unknown strings.
OpKind op_kind_from(const std::string& s);
Layer layer_from(const std::string& s);
io::OpenMode open_mode_from(const std::string& s);

/// One replayable operation. Which fields are meaningful depends on `kind`
/// (see the per-kind field table in pattern_yaml.cpp); unused fields keep
/// their defaults and are not serialized.
struct Op {
  OpKind kind = OpKind::kBarrier;
  Layer layer = Layer::kPosix;
  std::string handle;          ///< file-handle slot name
  std::string path;            ///< file-name template ("{rank}.ckpt")
  io::OpenMode mode = io::OpenMode::kRead;
  Expr offset;                 ///< defaults to 0 when empty
  Expr size;
  Expr count;                  ///< defaults to 1 when empty
  Expr fetch_ops;              ///< kReadScattered
  Expr wrap_bytes, wrap_limit; ///< kSeekIfWrap
  std::uint64_t duration_ns = 0;  ///< compute base / kPacedRead floor
  double jitter_lo = 1.0;      ///< compute duration multiplier low bound
  double jitter_span = 0.0;    ///< >0 consumes one rng.uniform() per exec
  std::string comm;            ///< kAllreduce target communicator
  bool record = true;          ///< kAllreduce: emit the manual MPI record
  std::string event;           ///< kSignal / kWaitEvent
  std::string app;             ///< kSpawn app name
  std::string var;             ///< kGroup loop variable
  Expr begin, end, step;       ///< kGroup loop bounds [begin, end) by step
  Expr when;                   ///< kGroup guard; false breaks the loop
  std::vector<Op> body;        ///< kGroup / kSpawn children
};

/// Communicator declaration. per_node=false: one comm, `procs` ranks
/// block-distributed over `nodes`. per_node=true: a family of `nodes`
/// comms, each with `procs` local ranks all mapped to that node
/// (CosmoFlow's per-node collective-I/O groups).
struct CommDecl {
  std::string name;
  int procs = 0;
  int nodes = 1;
  bool per_node = false;
};

/// Countdown broadcast event: the countdown-th kSignal sets it.
struct EventDecl {
  std::string name;
  int countdown = 1;
};

/// One stage of a lane's life, run under its own Proc/app identity
/// (Montage's drivers change app per stage).
struct PhasePattern {
  std::string app;
  std::vector<Op> ops;
};

/// A set of lanes (simulated processes) sharing a communicator and phase
/// list. Lane l of a regular comm is rank l; lane l of a per_node family
/// is rank l with node l/procs and comm rank l%procs. Lane expressions see
/// rank, node, local (rank within the node) and leader (1 for the node's
/// lowest rank).
struct LaneGroup {
  std::string comm;
  std::uint64_t rng_seed = 0;   ///< lane rng = Rng(seed).fork(rank)
  util::Bytes stdio_buffer = 4 * util::kKiB;
  io::Hdf5Config hdf5;          ///< config for kOpen on the hdf5 layer
  io::MpiIoConfig mpiio;
  io::CompressionModel codec;   ///< model for the compressed layer
  std::vector<PhasePattern> phases;
};

/// Dependency of a DAG stage instance: on instance `index` (an Expr over
/// `id`, this task's instance number) of stage `stage`, or on every
/// instance when `index` is empty.
struct DagDep {
  int stage = -1;
  Expr index;
};

/// `count` single-process tasks sharing an op list; task expressions see
/// `id` (instance number) plus rank/node assigned by the slot scheduler.
struct DagStage {
  std::string app;
  int count = 1;
  std::uint64_t rng_seed = 0;  ///< task rng = Rng(seed).fork(id)
  std::vector<DagDep> deps;
  std::vector<Op> ops;
};

/// Pegasus-style workflow section: stages compiled to patterns, the slot
/// scheduler itself stays imperative (workflow::PegasusScheduler).
struct DagDecl {
  int slots = 0;
  int nodes = 1;
  bool locality_aware = false;
  util::Bytes stdio_buffer = 4 * util::kKiB;
  std::vector<DagStage> stages;

  bool empty() const noexcept { return stages.empty(); }
};

struct JobPattern {
  std::string name;                 ///< registry id (e.g. "hacc-fpp")
  /// Apps registered up front, in this order (tracer app ids are
  /// registration-ordered). DAG apps register lazily instead.
  std::vector<std::string> apps;
  std::vector<CommDecl> comms;
  std::vector<EventDecl> events;
  std::vector<LaneGroup> groups;
  DagDecl dag;
  /// Free-form compile provenance (workload params, rewrite hints) so
  /// tools and rewrites can act on a dumped pattern without the compiler.
  std::vector<std::pair<std::string, std::string>> meta;
  /// Deterministic fault schedule to install at replay (empty = none);
  /// carried through the YAML as its canonical spec string. A plan already
  /// installed on the Simulation (e.g. from RunConfig) takes precedence.
  sim::FaultPlan faults;

  const std::string* find_meta(const std::string& key) const;
  void set_meta(const std::string& key, const std::string& value);
};

/// Serialize to the util::yaml subset. Deterministic: a loaded pattern
/// dumps back byte-identically.
std::string to_yaml(const JobPattern& pat);
/// Parse a dumped pattern; throws util::SimError with a diagnostic on
/// malformed input.
JobPattern pattern_from_yaml(const std::string& text);

// ---- Builder helpers -----------------------------------------------------
// Thin constructors so compile functions read like the op stream they emit.
namespace ops {

Op open(Layer l, std::string handle, std::string path, io::OpenMode mode);
Op close(Layer l, std::string handle);
Op read(Layer l, std::string handle, Expr size, Expr count, Expr offset = {});
Op write(Layer l, std::string handle, Expr size, Expr count,
         Expr offset = {});
Op pread(std::string handle, Expr offset, Expr size, Expr count);
Op pwrite(std::string handle, Expr offset, Expr size, Expr count);
Op pread_sync(std::string handle, Expr offset, Expr size, Expr count);
Op pwrite_sync(std::string handle, Expr offset, Expr size, Expr count);
Op seek(Layer l, std::string handle, Expr offset);
Op seek_batch(Layer l, std::string handle, Expr count);
Op seek_if_wrap(std::string handle, Expr bytes, Expr limit);
Op read_scattered(std::string handle, Expr size, Expr count, Expr fetch_ops);
Op stat(std::string path);
Op compute(std::uint64_t ns, double jitter_lo = 1.0, double jitter_span = 0.0);
Op gpu_compute(std::uint64_t ns, double jitter_lo = 1.0,
               double jitter_span = 0.0);
Op barrier();
Op allreduce(std::string comm, Expr bytes, bool record = true);
Op signal(std::string event);
Op wait_event(std::string event);
Op spawn(std::string app, std::vector<Op> body);
Op paced_read(std::string handle, Expr size, Expr count,
              std::uint64_t floor_ns);
Op loop(std::string var, Expr begin, Expr end, std::vector<Op> body,
        Expr step = {}, Expr when = {});
Op when(Expr cond, std::vector<Op> body);

}  // namespace ops

}  // namespace wasp::pattern
