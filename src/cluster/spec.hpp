// Static description of a simulated HPC system: nodes, NICs, the shared
// parallel file system, and node-local storage tiers. Presets mirror LLNL's
// Lassen (the paper's testbed) plus a tiny configuration for fast tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "util/units.hpp"

namespace wasp::cluster {

using util::Bytes;

struct NodeSpec {
  int cpu_cores = 40;              ///< usable cores per node
  int gpus = 4;                    ///< GPUs per node
  Bytes memory = 256 * util::kGiB; ///< node DRAM
};

struct NicSpec {
  double bandwidth_bps = 12.5e9;  ///< 100 Gb/s EDR InfiniBand
  sim::Time latency = 1 * sim::kUs;
  std::size_t max_streams = 128;
};

/// Metadata-service model: bounded concurrency plus load-dependent service
/// inflation. Under a metadata storm (many clients opening/stat-ing small
/// shared files) the effective per-op time grows with queue depth, which is
/// what turns CosmoFlow's 1.3M metadata ops into ~98% of its I/O time.
struct MetadataSpec {
  std::size_t concurrency = 16;            ///< parallel MDS worker slots
  sim::Time base_service = 150 * sim::kUs; ///< unloaded per-op service time
  double interference_per_waiter = 0.02;   ///< service *= 1 + k * queue_len
  double max_inflation = 24.0;             ///< cap on the inflation factor
};

struct PfsSpec {
  std::string name = "gpfs";
  std::string mount = "/p/gpfs1";
  Bytes capacity = 24ULL * 1024 * util::kTiB;  // 24 PiB
  int num_servers = 24;
  double server_bandwidth_bps = 3.0e9;  ///< per-server fair-shared data rate
  double per_stream_bps = 2.0e9;        ///< single-stream cap
  std::size_t max_streams_per_server = 64;
  sim::Time data_latency = 300 * sim::kUs;  ///< per-request RPC+disk latency
  Bytes efficiency_bytes = 256 * util::kKiB;  ///< small-transfer penalty knob
  Bytes stripe_size = util::kMiB;
  int stripe_count = 4;
  MetadataSpec metadata;
  /// Per-node client page cache devoted to this mount (read reuse of
  /// recently written data; invalidated on cross-node sharing).
  Bytes client_cache_bytes = 4 * util::kGiB;
  double client_cache_bandwidth_bps = 8.0e9;
  /// Synchronous small-request latency model: a sync_each_op request pays
  /// per-op latency of data_latency * (1 + factor * active^exponent), where
  /// `active` counts concurrent sync readers cluster-wide. This is the
  /// token/lock-manager contention that melts shared-small-file workloads.
  double sync_latency_factor = 0.0;
  double sync_latency_exponent = 0.7;
  /// Uncached reads below this granularity pay full per-op latency (seek-
  /// limited random/streamed small reads that miss readahead); 0 disables.
  Bytes small_read_latency_threshold = 0;
};

/// Shared burst buffer (Cray DataWarp-style): SSD servers with distributed
/// key-value metadata, shared across all nodes.
struct BurstBufferSpec {
  std::string name = "datawarp";
  std::string mount = "/p/bb";
  Bytes capacity = 1800ULL * util::kTiB;
  int num_servers = 288;
  double server_bandwidth_bps = 6.0e9;  ///< ~1.7TB/s aggregate on Cori
  double per_stream_bps = 4.0e9;
  std::size_t max_streams_per_server = 32;
  sim::Time data_latency = 50 * sim::kUs;
  sim::Time meta_latency = 20 * sim::kUs;
  Bytes efficiency_bytes = 16 * util::kKiB;  ///< SSDs tolerate small transfers
  Bytes shard_size = 8 * util::kMiB;
};

struct NodeLocalSpec {
  std::string name = "shm";
  std::string mount = "/dev/shm";
  Bytes capacity = 128 * util::kGiB;      ///< per node
  double bandwidth_bps = 32.0e9;          ///< memory-speed tier
  double per_stream_bps = 12.0e9;
  std::size_t parallel_ops = 64;          ///< controller queue depth
  sim::Time data_latency = 2 * sim::kUs;
  sim::Time meta_latency = 2 * sim::kUs;
  Bytes efficiency_bytes = 512;           ///< tiny per-op overhead
};

struct ClusterSpec {
  std::string name = "sim";
  int nodes = 4;
  NodeSpec node;
  NicSpec nic;
  PfsSpec pfs;
  std::vector<NodeLocalSpec> node_local = {NodeLocalSpec{}};
  /// Present only on systems deploying a shared burst buffer (e.g. Cori's
  /// DataWarp); Lassen has none (Table II: shared BB dir = NA).
  std::optional<BurstBufferSpec> shared_bb;

  int total_cores() const noexcept { return nodes * node.cpu_cores; }
  int total_gpus() const noexcept { return nodes * node.gpus; }
};

/// The paper's testbed: Lassen at LLNL (IBM Power9 + V100, 100 Gb/s EDR IB,
/// 24 PiB GPFS). Constants are calibrated against Table I / Figures 1-8;
/// see EXPERIMENTS.md for the calibration record.
ClusterSpec lassen(int nodes = 32);

/// A Cori-like system (§II-B): Haswell nodes, no GPUs, Lustre-style PFS
/// plus a shared DataWarp burst buffer.
ClusterSpec cori(int nodes = 32);

/// Small, fast configuration for unit tests (4 nodes x 4 cores).
ClusterSpec tiny(int nodes = 4);

}  // namespace wasp::cluster
