#include "cluster/spec.hpp"

namespace wasp::cluster {

ClusterSpec lassen(int nodes) {
  ClusterSpec c;
  c.name = "lassen";
  c.nodes = nodes;
  c.node.cpu_cores = 40;
  c.node.gpus = 4;
  c.node.memory = 256 * util::kGiB;
  c.nic.bandwidth_bps = 12.5e9;
  c.nic.latency = 1 * sim::kUs;

  // GPFS (/p/gpfs1). Aggregate peak calibrated to the paper's Table IX
  // ("64GB/s using 32 node IOR"): 24 servers x ~2.7GB/s ≈ 64GB/s.
  c.pfs.name = "gpfs";
  c.pfs.mount = "/p/gpfs1";
  c.pfs.num_servers = 24;
  c.pfs.server_bandwidth_bps = 2.7e9;
  c.pfs.per_stream_bps = 2.0e9;
  c.pfs.max_streams_per_server = 64;
  c.pfs.data_latency = 250 * sim::kUs;
  c.pfs.efficiency_bytes = 192 * util::kKiB;
  c.pfs.stripe_size = util::kMiB;
  c.pfs.stripe_count = 4;
  c.pfs.metadata.concurrency = 16;
  c.pfs.metadata.base_service = 150 * sim::kUs;
  c.pfs.metadata.interference_per_waiter = 0.02;
  c.pfs.metadata.max_inflation = 24.0;
  c.pfs.client_cache_bytes = 512 * util::kMiB;
  c.pfs.client_cache_bandwidth_bps = 8.0e9;
  c.pfs.sync_latency_factor = 4.5;
  c.pfs.sync_latency_exponent = 0.7;
  c.pfs.small_read_latency_threshold = 16 * util::kKiB;

  // Node-local tier: Lassen exposes /dev/shm (RAM) and /tmp; the paper's
  // JAG table quotes 64 parallel ops and 32GB/s per node.
  NodeLocalSpec shm;
  shm.name = "shm";
  shm.mount = "/dev/shm";
  shm.capacity = 128 * util::kGiB;
  shm.bandwidth_bps = 32.0e9;
  shm.per_stream_bps = 12.0e9;
  shm.parallel_ops = 64;
  NodeLocalSpec tmp;
  tmp.name = "tmp";
  tmp.mount = "/tmp";
  tmp.capacity = 200 * util::kGiB;
  tmp.bandwidth_bps = 6.0e9;
  tmp.per_stream_bps = 2.0e9;
  tmp.parallel_ops = 64;
  tmp.data_latency = 20 * sim::kUs;
  tmp.meta_latency = 10 * sim::kUs;
  c.node_local = {shm, tmp};
  return c;
}

ClusterSpec cori(int nodes) {
  ClusterSpec c;
  c.name = "cori";
  c.nodes = nodes;
  c.node.cpu_cores = 32;  // Haswell partition
  c.node.gpus = 0;
  c.node.memory = 128 * util::kGiB;
  c.nic.bandwidth_bps = 10.0e9;  // Aries
  c.nic.latency = 1 * sim::kUs + 400;

  // Lustre-style scratch.
  c.pfs.name = "lustre";
  c.pfs.mount = "/global/cscratch";
  c.pfs.num_servers = 24;
  c.pfs.server_bandwidth_bps = 3.0e9;
  c.pfs.per_stream_bps = 1.5e9;
  c.pfs.data_latency = 300 * sim::kUs;
  c.pfs.efficiency_bytes = 256 * util::kKiB;
  c.pfs.metadata.concurrency = 8;
  c.pfs.metadata.base_service = 200 * sim::kUs;
  c.pfs.client_cache_bytes = 512 * util::kMiB;
  c.pfs.sync_latency_factor = 4.5;
  c.pfs.small_read_latency_threshold = 16 * util::kKiB;

  // DataWarp shared burst buffer.
  c.shared_bb = BurstBufferSpec{};

  NodeLocalSpec shm;
  shm.capacity = 64 * util::kGiB;
  c.node_local = {shm};
  return c;
}

ClusterSpec tiny(int nodes) {
  ClusterSpec c;
  c.name = "tiny";
  c.nodes = nodes;
  c.node.cpu_cores = 4;
  c.node.gpus = 1;
  c.node.memory = 8 * util::kGiB;
  c.pfs.num_servers = 4;
  c.pfs.server_bandwidth_bps = 1.0e9;
  c.pfs.per_stream_bps = 0.5e9;
  c.pfs.metadata.concurrency = 4;
  c.pfs.metadata.base_service = 100 * sim::kUs;
  c.pfs.client_cache_bytes = 64 * util::kMiB;
  c.node_local = {NodeLocalSpec{}};
  c.node_local[0].capacity = 4 * util::kGiB;
  return c;
}

}  // namespace wasp::cluster
