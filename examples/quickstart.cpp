// Quickstart: the full WASP pipeline on a small custom workload.
//
//   1. describe a cluster                (cluster::ClusterSpec)
//   2. write a workload as coroutines    (runtime::Proc + io::Posix)
//   3. run it traced                     (workloads::run)
//   4. characterize the I/O behavior     (entities/attributes -> YAML)
//   5. let the advisor reconfigure       (RuleEngine -> RunConfig)
//   6. re-run optimized and compare
//
// Build & run:  ./build/examples/example_quickstart
#include <iostream>

#include "advisor/rules.hpp"
#include "io/stdio.hpp"
#include "workloads/workload.hpp"

using namespace wasp;

namespace {

// A toy producer/consumer workflow: every rank writes a per-rank scratch
// file in tiny 512B STDIO transfers, then the next rank reads it back.
// The RunConfig's stdio_buffer is honored — which is exactly the knob the
// advisor's stdio-buffer rule turns.
sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          mpi::Comm& comm, int rank,
                          advisor::RunConfig cfg) {
  runtime::Proc p(sim, app, rank, comm.node_of(rank), &comm);
  io::Stdio stdio(p, cfg.stdio_buffer);

  auto out = co_await stdio.fopen(
      "/p/gpfs1/demo/part_" + std::to_string(rank), io::OpenMode::kWrite);
  co_await stdio.fwrite(out, 512, 16384);  // 8MiB in 512B ops
  co_await stdio.fclose(out);
  co_await p.barrier();

  const int peer = (rank + 1) % comm.size();
  auto in = co_await stdio.fopen(
      "/p/gpfs1/demo/part_" + std::to_string(peer), io::OpenMode::kRead);
  co_await stdio.fread(in, 512, 16384);
  co_await stdio.fclose(in);
  co_await p.barrier();
}

workloads::Workload make_demo() {
  workloads::Workload w;
  w.decl.name = "quickstart-demo";
  w.decl.data_repr = "1D";
  w.decl.dataset_format = "bin";
  w.launch = [](runtime::Simulation& sim, const advisor::RunConfig& cfg) {
    const auto app = sim.tracer().register_app("demo");
    auto& comm = sim.add_comm(/*procs=*/16, /*nodes=*/4);
    for (int r = 0; r < comm.size(); ++r) {
      sim.engine().spawn(rank_body(sim, app, comm, r, cfg));
    }
  };
  return w;
}

}  // namespace

int main() {
  // 1-3: run the workload on a 4-node Lassen-like cluster.
  auto out = workloads::run(cluster::lassen(4), make_demo());

  std::cout << "=== measured profile ===\n"
            << "job time: " << util::format_seconds(out.job_seconds) << "\n"
            << "I/O: " << util::format_bytes(out.profile.totals.io_bytes())
            << " (" << out.profile.totals.read_ops << " reads, "
            << out.profile.totals.write_ops << " writes, "
            << out.profile.totals.meta_ops << " metadata ops)\n"
            << "I/O time share: "
            << util::format_percent(out.profile.io_time_fraction) << "\n\n";

  // 4: the entity/attribute characterization (Vani-style YAML).
  std::cout << "=== characterization (YAML) ===\n"
            << out.characterization.to_yaml() << "\n";

  // 5: advisor recommendations derived from those attributes.
  std::cout << "=== advisor ===\n"
            << advisor::RuleEngine::report(out.recommendations);

  // 6: run again with the storage system configured per the workload.
  auto cfg = advisor::RuleEngine::configure(out.recommendations);
  auto optimized = workloads::run(cluster::lassen(4), make_demo(), cfg);
  std::cout << "\nbaseline  I/O time: "
            << util::format_seconds(out.profile.io_time_fraction *
                                    out.job_seconds)
            << "\noptimized I/O time: "
            << util::format_seconds(optimized.profile.io_time_fraction *
                                    optimized.job_seconds)
            << "\n";
  return 0;
}
