// Checkpoint/restart study (HACC-style): sweep the checkpoint transfer
// granularity and the PFS stripe size to show why the advisor's
// "stripe-size" rule matches stripes to the dominant transfer size
// (§IV-D.3's Lustre example).
//
// Build & run:  ./build/examples/example_checkpoint_restart
#include <iostream>

#include "util/table.hpp"
#include "workloads/hacc.hpp"

using namespace wasp;

int main() {
  util::TablePrinter table(
      "HACC-style checkpoint: transfer granularity x stripe size");
  table.set_header({"transfer", "stripe", "job s", "I/O s",
                    "agg write bw"});

  for (util::Bytes transfer :
       {64 * util::kKiB, util::kMiB, 16 * util::kMiB}) {
    for (util::Bytes stripe : {util::kMiB, 16 * util::kMiB}) {
      workloads::HaccParams P;
      P.nodes = 8;
      P.ranks_per_node = 8;
      P.per_rank_bytes = 256 * util::kMiB;
      P.transfer = transfer;
      P.rounds = 4;
      P.generate_compute = sim::seconds(2);

      auto spec = cluster::lassen(8);
      spec.pfs.stripe_size = stripe;
      auto out = workloads::run(spec, workloads::make_hacc(P));

      const double io_sec =
          out.profile.io_time_fraction * out.job_seconds;
      const double write_bw =
          static_cast<double>(out.profile.totals.write_bytes) /
          (out.profile.totals.data_sec / 2 + 1e-9);
      table.add_row({util::format_bytes(transfer),
                     util::format_bytes(stripe),
                     util::format_seconds(out.job_seconds),
                     util::format_seconds(io_sec),
                     util::format_rate(write_bw)});
    }
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: large transfers tolerate any stripe size; small\n"
               "transfers lose an order of magnitude — the attribute pair\n"
               "(io_granularity, io_amount) is what the advisor's\n"
               "stripe-size rule keys on.\n";
  return 0;
}
