// Workflow study (Montage-style): build a custom DAG, run it under the
// pegasus-mpi-cluster-style scheduler, persist the Recorder-style trace
// log, re-analyze it from disk, and apply the workflow optimizations
// (§V-B + §IV-D.4).
//
// Build & run:  ./build/examples/example_montage_workflow
#include <fstream>
#include <iostream>

#include "advisor/rules.hpp"
#include "analysis/analyzer.hpp"
#include "core/characterizer.hpp"
#include "io/stdio.hpp"
#include "trace/log_io.hpp"
#include "workflow/dag.hpp"
#include "workloads/montage_mpi.hpp"

using namespace wasp;

namespace {

// A small map/reduce-style image pipeline expressed as a DAG.
workflow::Dag build_pipeline(int width) {
  workflow::Dag dag;
  std::vector<int> mappers;
  for (int i = 0; i < width; ++i) {
    workflow::TaskSpec t;
    t.app = "transform";
    t.body = [i](runtime::Proc& p) -> sim::Task<void> {
      io::Stdio stdio(p, 4 * util::kKiB);
      auto out = co_await stdio.fopen(
          "/p/gpfs1/pipe/chunk_" + std::to_string(i), io::OpenMode::kWrite);
      co_await stdio.fwrite(out, 4 * util::kKiB, 512);  // 2MiB, small ops
      co_await stdio.fclose(out);
      co_await p.compute(sim::seconds(0.5));
    };
    mappers.push_back(dag.add_task(std::move(t)));
  }
  workflow::TaskSpec reduce;
  reduce.app = "combine";
  reduce.body = [width](runtime::Proc& p) -> sim::Task<void> {
    io::Stdio stdio(p, 4 * util::kKiB);
    for (int i = 0; i < width; ++i) {
      auto in = co_await stdio.fopen(
          "/p/gpfs1/pipe/chunk_" + std::to_string(i), io::OpenMode::kRead);
      co_await stdio.fread(in, 4 * util::kKiB, 512);
      co_await stdio.fclose(in);
    }
    co_await p.compute(sim::seconds(1));
    auto out = co_await stdio.fopen("/p/gpfs1/pipe/result",
                                    io::OpenMode::kWrite);
    co_await stdio.fwrite(out, 64 * util::kKiB, 32);
    co_await stdio.fclose(out);
  };
  const int r = dag.add_task(std::move(reduce));
  for (int m : mappers) dag.add_dependency(r, m);
  return dag;
}

}  // namespace

int main() {
  // --- Part 1: a custom DAG under the Pegasus-style scheduler -----------
  runtime::Simulation sim(cluster::lassen(4));
  auto dag = build_pipeline(/*width=*/24);
  workflow::PegasusScheduler::Options opts;
  opts.slots = 16;
  opts.nodes = 4;
  workflow::PegasusScheduler sched(sim, opts);
  auto& tracer = sim.tracer();
  sim.engine().spawn(sched.run(dag, [&tracer](const std::string& name) {
    return tracer.register_app(name);
  }));
  sim.engine().run();
  std::cout << "pipeline: " << sched.tasks_executed() << " tasks in "
            << util::format_seconds(sim::to_seconds(sim.engine().now()))
            << " on " << opts.slots << " worker slots\n";

  // --- Part 2: persist the Recorder-style log and re-analyze ------------
  const std::string log_path = "/tmp/wasp_pipeline.wtrc";
  trace::write_log(log_path, sim.tracer());
  auto log = trace::read_log(log_path);
  std::cout << "trace log: " << log.records.size() << " records, "
            << log.apps.size() << " apps written to " << log_path << "\n";

  analysis::Analyzer analyzer;
  auto profile = analyzer.analyze(sim.tracer());
  charz::WorkloadDecl decl;
  decl.name = "pipeline";
  charz::Characterizer characterizer;
  auto charz_out = characterizer.characterize(decl, sim.spec(), profile);
  std::cout << "\nworkflow dataflow edges: " << profile.app_edges.size()
            << ", data-op share "
            << util::format_percent(profile.totals.data_op_fraction())
            << "\n";

  // --- Part 3: the paper's Montage case study at reduced scale ----------
  workloads::MontageMpiParams P = workloads::MontageMpiParams::test();
  P.nodes = 4;
  auto base = workloads::run(cluster::lassen(4),
                             workloads::make_montage_mpi(P));
  auto cfg = advisor::RuleEngine::configure(base.recommendations);
  auto opt = workloads::run(cluster::lassen(4),
                            workloads::make_montage_mpi(P), cfg);
  std::cout << "\nMontage-MPI (4 nodes):\n  baseline  I/O "
            << util::format_seconds(base.profile.io_time_fraction *
                                    base.job_seconds)
            << "\n  optimized I/O "
            << util::format_seconds(opt.profile.io_time_fraction *
                                    opt.job_seconds)
            << "  (intermediates on "
            << (cfg.intermediates_to_node_local ? "/dev/shm" : "GPFS")
            << ")\n";
  return 0;
}
