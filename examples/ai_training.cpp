// AI training pipeline study (CosmoFlow-style): demonstrates the paper's
// §V-A case end to end — characterize the metadata-bound baseline, let the
// rule engine derive the preload configuration, re-run optimized.
//
// Build & run:  ./build/examples/example_ai_training
#include <iostream>

#include "advisor/rules.hpp"
#include "workloads/cosmoflow.hpp"

using namespace wasp;

int main() {
  // A reduced CosmoFlow: paper-scale metadata storm (32 nodes hammering
  // the GPFS metadata path) but a smaller dataset so it runs in a second.
  workloads::CosmoflowParams P;
  P.nodes = 32;
  P.procs_per_node = 4;
  P.files = 6400;
  P.file_size = 32 * util::kMiB;
  P.gpu_per_file = sim::seconds(0.5);

  std::cout << "running baseline (HDF5/MPI-IO on GPFS)...\n";
  auto base = workloads::run(cluster::lassen(32), workloads::make_cosmoflow(P));
  std::cout << "  job " << util::format_seconds(base.job_seconds)
            << ", metadata time share "
            << util::format_percent(
                   base.profile.totals.meta_time_fraction())
            << ", I/O time "
            << util::format_seconds(base.profile.io_time_fraction *
                                    base.job_seconds)
            << "\n\n";

  std::cout << "advisor recommendations:\n"
            << advisor::RuleEngine::report(base.recommendations) << "\n";

  auto cfg = advisor::RuleEngine::configure(base.recommendations);
  std::cout << "running optimized (preload="
            << (cfg.preload_input_to_node_local ? "on" : "off")
            << ", hdf5 chunking=" << (cfg.hdf5_chunking ? "on" : "off")
            << ")...\n";
  auto opt = workloads::run(cluster::lassen(32), workloads::make_cosmoflow(P),
                            cfg);
  std::cout << "  job " << util::format_seconds(opt.job_seconds)
            << ", I/O time "
            << util::format_seconds(opt.profile.io_time_fraction *
                                    opt.job_seconds)
            << "\n\n";

  const double speedup = (base.profile.io_time_fraction * base.job_seconds) /
                         (opt.profile.io_time_fraction * opt.job_seconds);
  std::cout << "I/O speedup from workload-aware reconfiguration: "
            << static_cast<int>(speedup * 10 + 0.5) / 10.0 << "x\n";
  return 0;
}
