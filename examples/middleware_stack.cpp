// Middleware stack study: compose the two §II-B middleware layers —
// hierarchical buffering (Hermes-style TieredBuffer) and transparent
// compression (HCompress-style CompressedPosix) — on a checkpoint-heavy
// pipeline, and show how the workload attributes pick the right stack.
//
// Build & run:  ./build/examples/example_middleware_stack
#include <cstdio>
#include <iostream>

#include "io/compression.hpp"
#include "io/tiered_buffer.hpp"
#include "util/table.hpp"

using namespace wasp;
using runtime::Proc;
using runtime::Simulation;
using sim::Task;

namespace {

constexpr int kRanks = 16;
constexpr fs::Bytes kCheckpoint = 256 * util::kMiB;
constexpr fs::Bytes kTransfer = 8 * util::kMiB;

std::string ckpt_path(int rank) {
  return "/p/gpfs1/mw/ckpt_" + std::to_string(rank);
}

double g_stall_sum = 0;  // summed per-rank checkpoint stalls of a case

/// Plain: each rank writes its checkpoint straight to the PFS.
Task<void> rank_plain(Simulation& s, std::uint16_t a, int rank) {
  Proc p(s, a, rank, rank % s.spec().nodes);
  io::Posix posix(p);
  co_await p.compute(sim::seconds(2));
  const sim::Time t0 = p.now();
  auto f = co_await posix.open(ckpt_path(rank), io::OpenMode::kWrite);
  co_await posix.write(f, kTransfer,
                       static_cast<std::uint32_t>(kCheckpoint / kTransfer));
  co_await posix.close(f);
  g_stall_sum += sim::to_seconds(p.now() - t0);
  co_await p.compute(sim::seconds(1));  // the job continues
}

/// Compressed: the codec shrinks the stream before it hits the PFS.
Task<void> rank_compressed(Simulation& s, std::uint16_t a, int rank,
                           bool gpu) {
  Proc p(s, a, rank, rank % s.spec().nodes);
  io::CompressionModel model;
  model.use_gpu = gpu;
  model.ratio = io::CompressionModel::ratio_for("normal");
  io::CompressedPosix cp(p, model);
  co_await p.compute(sim::seconds(2));
  const sim::Time t0 = p.now();
  auto f = co_await cp.open(ckpt_path(rank), io::OpenMode::kWrite);
  co_await cp.write(f, kTransfer,
                    static_cast<std::uint32_t>(kCheckpoint / kTransfer));
  co_await cp.close(f);
  g_stall_sum += sim::to_seconds(p.now() - t0);
  co_await p.compute(sim::seconds(1));
}

/// Buffered: stage on /dev/shm, flush in the job epilogue.
Task<void> rank_buffered(Simulation& s, std::uint16_t a, int rank,
                         io::TieredBuffer& tb) {
  Proc p(s, a, rank, rank % s.spec().nodes);
  co_await p.compute(sim::seconds(2));
  const sim::Time t0 = p.now();
  auto f = co_await tb.open(p, ckpt_path(rank), io::OpenMode::kWrite);
  co_await tb.write(p, f, kTransfer,
                    static_cast<std::uint32_t>(kCheckpoint / kTransfer));
  co_await tb.close(p, f);
  g_stall_sum += sim::to_seconds(p.now() - t0);
  co_await p.compute(sim::seconds(1));
  co_await tb.flush_all(p);  // durability in the job epilogue
}

struct CaseResult {
  double job_sec;
  double mean_stall;
};

CaseResult run_case(const char* which, bool gpu = false) {
  g_stall_sum = 0;
  Simulation sim(cluster::lassen(4));
  const auto app = sim.tracer().register_app("mw");
  io::TieredBufferConfig tb_cfg;
  io::TieredBuffer tb(sim, tb_cfg);
  for (int r = 0; r < kRanks; ++r) {
    if (std::string(which) == "plain") {
      sim.engine().spawn(rank_plain(sim, app, r));
    } else if (std::string(which) == "compressed") {
      sim.engine().spawn(rank_compressed(sim, app, r, gpu));
    } else {
      sim.engine().spawn(rank_buffered(sim, app, r, tb));
    }
  }
  sim.engine().run();
  return {sim::to_seconds(sim.engine().now()), g_stall_sum / kRanks};
}

}  // namespace

int main() {
  util::TablePrinter table(
      "Middleware stacks on a 16-rank, 256MiB-per-rank checkpoint");
  table.set_header({"stack", "job s", "ckpt stall/rank"});
  char j[32];
  char st[32];
  auto row = [&](const char* label, CaseResult r) {
    std::snprintf(j, sizeof(j), "%.2f", r.job_sec);
    std::snprintf(st, sizeof(st), "%.2fs", r.mean_stall);
    table.add_row({label, j, st});
  };
  row("direct PFS", run_case("plain"));
  row("+ compression (CPU codec)", run_case("compressed", false));
  row("+ compression (GPU codec)", run_case("compressed", true));
  row("+ tiered buffering (shm, write-back)", run_case("buffered"));
  table.print(std::cout);
  std::cout << "\nThe advisor picks between these from three attributes:\n"
               "  data_dist     -> is compression worth it at all?\n"
               "  # gpus/node   -> where should the codec run?\n"
               "  node-local BB -> is there a tier to stage on?\n";
  return 0;
}
