// google-benchmark microbenchmarks for the filesystem/interface layers:
// simulated-op cost in host time (how fast the simulator itself runs).
#include <benchmark/benchmark.h>

#include "io/posix.hpp"
#include "io/stdio.hpp"
#include "runtime/proc.hpp"
#include "runtime/simulation.hpp"

namespace {

using namespace wasp;

sim::Task<void> posix_ops(runtime::Simulation& sim, std::uint16_t app,
                          int n) {
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  auto f = co_await posix.open("/p/gpfs1/bench", io::OpenMode::kWrite);
  for (int i = 0; i < n; ++i) {
    co_await posix.write(f, 64 * util::kKiB, 1);
  }
  co_await posix.close(f);
}

void BM_PosixWriteOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::Simulation sim(cluster::tiny(1));
    sim.engine().spawn(posix_ops(sim, sim.tracer().register_app("b"), n));
    sim.engine().run();
    benchmark::DoNotOptimize(sim.tracer().records().size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PosixWriteOps)->Arg(1000)->Arg(10000);

sim::Task<void> meta_ops(runtime::Simulation& sim, std::uint16_t app,
                         int n) {
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  for (int i = 0; i < n; ++i) {
    auto f = co_await posix.open("/p/gpfs1/meta_" + std::to_string(i % 64),
                                 io::OpenMode::kWrite);
    co_await posix.close(f);
  }
}

void BM_MetadataOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::Simulation sim(cluster::tiny(1));
    sim.engine().spawn(meta_ops(sim, sim.tracer().register_app("b"), n));
    sim.engine().run();
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_MetadataOps)->Arg(1000)->Arg(10000);

sim::Task<void> stdio_small(runtime::Simulation& sim, std::uint16_t app,
                            int n) {
  runtime::Proc p(sim, app, 0, 0);
  io::Stdio stdio(p);
  auto f = co_await stdio.fopen("/p/gpfs1/sbench", io::OpenMode::kWrite);
  for (int i = 0; i < n; ++i) {
    co_await stdio.fwrite(f, 256, 16);
  }
  co_await stdio.fclose(f);
}

void BM_StdioBufferedWrites(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    runtime::Simulation sim(cluster::tiny(1));
    sim.engine().spawn(stdio_small(sim, sim.tracer().register_app("b"), n));
    sim.engine().run();
  }
  state.SetItemsProcessed(state.iterations() * n * 16);
}
BENCHMARK(BM_StdioBufferedWrites)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
