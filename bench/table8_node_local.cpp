// Table VIII — Node-Local Storage entity: regenerated from simulated runs of all six exemplar
// workloads at paper scale. See EXPERIMENTS.md for measured-vs-paper notes.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  wasp::benchutil::init_jobs(argc, argv);
  using namespace wasp;
  auto runs = benchutil::run_all_paper();
  benchutil::print_attribute_table(
      "Table VIII — Node-Local Storage entity", runs,
      [](const workloads::RunOutput& o) -> charz::AttrList {
        return o.characterization.node_local.empty() ? wasp::charz::AttrList{} : o.characterization.node_local.front().attributes();
      });
  return 0;
}
