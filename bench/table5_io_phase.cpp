// Table V — I/O-Phase entity (first phase of each workload's main app),
// plus the full phase sequence per workload for context.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  wasp::benchutil::init_jobs(argc, argv);
  using namespace wasp;
  auto runs = benchutil::run_all_paper();

  benchutil::print_attribute_table(
      "Table V — First I/O phase", runs,
      [](const workloads::RunOutput& o) -> charz::AttrList {
        if (o.characterization.phases.empty()) return {};
        // The paper reports the first phase of the dominant application.
        const charz::IoPhaseEntity* best = &o.characterization.phases.front();
        for (const auto& ph : o.characterization.phases) {
          if (ph.io_amount > best->io_amount) best = &ph;
        }
        return best->attributes();
      });

  std::cout << "\nDetected phase counts per workload:\n";
  for (const auto& r : runs) {
    std::cout << "  " << r.name << ": " << r.out.profile.phases.size()
              << " phases across " << r.out.profile.apps.size() << " apps\n";
  }
  return 0;
}
