// Figure 3 — I/O behavior of CosmoFlow: request-size/bandwidth histogram, process & data dependency,
// and I/O timeline panels regenerated from the simulated workload.
#include "fig_panels.hpp"

int main() {
  return wasp::benchutil::run_figure("Figure 3 — I/O behavior of CosmoFlow", 2);
}
