// Figure 8: optimizing Montage (MPI) with workload attributes.
//
// Baseline (B): intermediate files (projected images, mosaic segments,
// shrunk overviews) on GPFS with <4KB-32KB transfers. Optimized (O): the
// advisor's "intermediates-node-local" rule redirects them to /dev/shm and
// places consumers with producers. Strong scaling 32..256 nodes.
//
// Paper: baseline improves 1.35x-1.5x per doubling; the shm redirection
// improves I/O 3.9x (small scale) to 8x (256 nodes).
#include <cstdio>
#include <iostream>

#include "util/table.hpp"
#include "workloads/montage_mpi.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table(
      "Figure 8 — Montage-MPI baseline (B) vs shm-intermediates (O)");
  table.set_header({"nodes", "B job s", "B io s", "O job s", "O io s",
                    "io speedup", "paper speedup"});

  const double paper_speedup[] = {3.9, 5.0, 6.4, 8.0};
  int idx = 0;
  for (int nodes : {32, 64, 128, 256}) {
    workloads::MontageMpiParams P = workloads::MontageMpiParams::paper();
    // Strong scaling: total survey size fixed, split across more nodes.
    P.nodes = nodes;
    P.projected_per_node = P.projected_per_node * 32 / nodes;
    P.mosaic_per_node = P.mosaic_per_node * 32 / nodes;
    P.png_per_node = P.png_per_node * 32 / nodes;

    auto base = workloads::run(cluster::lassen(nodes),
                               workloads::make_montage_mpi(P));
    const double b_io = base.profile.io_time_fraction * base.job_seconds;

    advisor::RunConfig cfg =
        advisor::RuleEngine::configure(base.recommendations);
    auto opt = workloads::run(cluster::lassen(nodes),
                              workloads::make_montage_mpi(P), cfg);
    const double o_io = opt.profile.io_time_fraction * opt.job_seconds;

    char buf[64];
    auto f = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.4g", v);
      return std::string(buf);
    };
    table.add_row({std::to_string(nodes), f(base.job_seconds), f(b_io),
                   f(opt.job_seconds), f(o_io), f(b_io / o_io),
                   f(paper_speedup[idx])});
    ++idx;
  }
  table.print(std::cout);
  std::cout << "\npaper band: 3.9x .. 8x, baseline improving 1.35-1.5x per "
               "doubling\n";
  return 0;
}
