// Figure 8: optimizing Montage (MPI) with workload attributes.
//
// Baseline (B): intermediate files (projected images, mosaic segments,
// shrunk overviews) on GPFS with <4KB-32KB transfers. Optimized (O): the
// advisor's "intermediates-node-local" rule redirects them to /dev/shm and
// places consumers with producers. Strong scaling 32..256 nodes, the
// baseline and optimized halves each fanned out across --jobs workers.
//
// Paper: baseline improves 1.35x-1.5x per doubling; the shm redirection
// improves I/O 3.9x (small scale) to 8x (256 nodes).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"
#include "workloads/montage_mpi.hpp"

namespace {

wasp::workloads::MontageMpiParams params_for(int nodes) {
  using namespace wasp;
  workloads::MontageMpiParams P = workloads::MontageMpiParams::paper();
  // Strong scaling: total survey size fixed, split across more nodes.
  P.nodes = nodes;
  P.projected_per_node = P.projected_per_node * 32 / nodes;
  P.mosaic_per_node = P.mosaic_per_node * 32 / nodes;
  P.png_per_node = P.png_per_node * 32 / nodes;
  return P;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wasp;
  const int jobs = benchutil::init_jobs(argc, argv);
  util::TablePrinter table(
      "Figure 8 — Montage-MPI baseline (B) vs shm-intermediates (O)");
  table.set_header({"nodes", "B job s", "B io s", "O job s", "O io s",
                    "io speedup", "paper speedup"});

  const std::vector<int> node_counts = {32, 64, 128, 256};
  std::vector<workloads::Scenario> base_scenarios;
  for (int nodes : node_counts) {
    const auto P = params_for(nodes);
    base_scenarios.push_back({"montage-base-" + std::to_string(nodes),
                              cluster::lassen(nodes),
                              [P] { return workloads::make_montage_mpi(P); },
                              advisor::RunConfig{},
                              analysis::Analyzer::Options{},
                              {}});
  }
  const auto bases = workloads::run_many(base_scenarios, jobs);

  std::vector<workloads::Scenario> opt_scenarios;
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    const auto P = params_for(nodes);
    opt_scenarios.push_back(
        {"montage-opt-" + std::to_string(nodes), cluster::lassen(nodes),
         [P] { return workloads::make_montage_mpi(P); },
         advisor::RuleEngine::configure(bases[i].recommendations),
         analysis::Analyzer::Options{},
                              {}});
  }
  const auto opts = workloads::run_many(opt_scenarios, jobs);

  const double paper_speedup[] = {3.9, 5.0, 6.4, 8.0};
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& base = bases[i];
    const auto& opt = opts[i];
    const double b_io = base.profile.io_time_fraction * base.job_seconds;
    const double o_io = opt.profile.io_time_fraction * opt.job_seconds;
    char buf[64];
    auto f = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.4g", v);
      return std::string(buf);
    };
    table.add_row({std::to_string(node_counts[i]), f(base.job_seconds),
                   f(b_io), f(opt.job_seconds), f(o_io), f(b_io / o_io),
                   f(paper_speedup[i])});
  }
  table.print(std::cout);
  std::cout << "\npaper band: 3.9x .. 8x, baseline improving 1.35-1.5x per "
               "doubling\n";
  return 0;
}
