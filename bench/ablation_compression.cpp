// Ablation: transparent checkpoint compression vs the data's value
// distribution and the codec's home (CPU vs GPU) — the paper's §I warning
// made measurable: compressing high-entropy (uniform) data grows it and
// slows the job, while structured (normal) data on a GPU codec wins.
#include <cstdio>
#include <iostream>

#include "io/compression.hpp"
#include "util/table.hpp"
#include "workloads/hacc.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table(
      "Ablation — checkpoint compression (HACC-style, 8 nodes)");
  table.set_header({"data dist", "codec", "ratio", "job s",
                    "PFS bytes written"});

  workloads::HaccParams P;
  P.nodes = 8;
  P.ranks_per_node = 16;
  P.per_rank_bytes = 512 * util::kMB;
  P.generate_compute = sim::seconds(4);

  struct Case {
    const char* dist;
    const char* codec;  // "off", "cpu", "gpu"
  };
  for (const Case c : {Case{"-", "off"}, Case{"uniform", "cpu"},
                       Case{"normal", "cpu"}, Case{"normal", "gpu"}}) {
    advisor::RunConfig cfg;
    double ratio = 1.0;
    if (std::string(c.codec) != "off") {
      ratio = io::CompressionModel::ratio_for(c.dist);
      cfg.compress_checkpoints = true;
      cfg.compress_on_gpu = std::string(c.codec) == "gpu";
      cfg.compression_ratio = ratio;
    }
    runtime::Simulation sim(cluster::lassen(P.nodes));
    auto out = workloads::run_with(sim, workloads::make_hacc(P), cfg,
                                   analysis::Analyzer::Options{});
    char job[32];
    char rat[32];
    std::snprintf(job, sizeof(job), "%.1f", out.job_seconds);
    std::snprintf(rat, sizeof(rat), "%.2f", ratio);
    table.add_row({c.dist, c.codec, rat, job,
                   util::format_bytes(sim.pfs().counters().bytes_written)});
  }
  table.print(std::cout);
  std::cout << "\nTakeaway: the data_dist attribute decides whether the\n"
               "compression rule helps (normal: smaller+faster, especially\n"
               "on GPU) or hurts (uniform: +12% data, slower) — exactly the\n"
               "paper's introduction example.\n";
  return 0;
}
