// Figure 7: optimizing CosmoFlow with workload attributes.
//
// Baseline (B): collective HDF5/MPI-IO reads of 49,664 small files straight
// from GPFS. Optimized (O): the advisor's "preload-input" rule stages each
// node's shard into /dev/shm first (MPIFileUtils-style parallel copy), then
// trains against node-local files. Strong scaling 32..256 nodes.
//
// The four baselines are independent simulations, as are the four optimized
// re-runs (each derived from its own baseline characterization), so each
// half of the sweep fans out across --jobs workers.
//
// Paper: sublinear baseline improvement (1.25x-1.4x per doubling) and an
// overall I/O speedup of 2.2x (32 nodes) to 4.6x (256 nodes).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "util/table.hpp"
#include "workloads/cosmoflow.hpp"

int main(int argc, char** argv) {
  using namespace wasp;
  const int jobs = benchutil::init_jobs(argc, argv);
  util::TablePrinter table(
      "Figure 7 — CosmoFlow baseline (B) vs shm-preload optimized (O)");
  table.set_header({"nodes", "B job s", "B io s", "O job s", "O io s",
                    "io speedup", "paper speedup"});

  const std::vector<int> node_counts = {32, 64, 128, 256};
  std::vector<workloads::Scenario> base_scenarios;
  for (int nodes : node_counts) {
    workloads::CosmoflowParams P = workloads::CosmoflowParams::paper();
    P.nodes = nodes;  // strong scaling: dataset fixed
    base_scenarios.push_back({"cosmoflow-base-" + std::to_string(nodes),
                              cluster::lassen(nodes),
                              [P] { return workloads::make_cosmoflow(P); },
                              advisor::RunConfig{},
                              analysis::Analyzer::Options{},
                              {}});
  }
  const auto bases = workloads::run_many(base_scenarios, jobs);

  // The advisor derives the optimized configuration from the baseline
  // characterization — the paper's feedback loop.
  std::vector<workloads::Scenario> opt_scenarios;
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const int nodes = node_counts[i];
    workloads::CosmoflowParams P = workloads::CosmoflowParams::paper();
    P.nodes = nodes;
    opt_scenarios.push_back(
        {"cosmoflow-opt-" + std::to_string(nodes), cluster::lassen(nodes),
         [P] { return workloads::make_cosmoflow(P); },
         advisor::RuleEngine::configure(bases[i].recommendations),
         analysis::Analyzer::Options{},
                              {}});
  }
  const auto opts = workloads::run_many(opt_scenarios, jobs);

  const double paper_speedup[] = {2.2, 3.0, 3.8, 4.6};
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const auto& base = bases[i];
    const auto& opt = opts[i];
    const double b_io = base.profile.io_time_fraction * base.job_seconds;
    const double o_io = opt.profile.io_time_fraction * opt.job_seconds;
    char buf[64];
    auto f = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.4g", v);
      return std::string(buf);
    };
    table.add_row({std::to_string(node_counts[i]), f(base.job_seconds),
                   f(b_io), f(opt.job_seconds), f(o_io), f(b_io / o_io),
                   f(paper_speedup[i])});
  }
  table.print(std::cout);
  std::cout << "\npaper band: 2.2x (32 nodes) .. 4.6x (256 nodes), "
               "baseline improving 1.25-1.4x per doubling\n";
  return 0;
}
