// Figure 7: optimizing CosmoFlow with workload attributes.
//
// Baseline (B): collective HDF5/MPI-IO reads of 49,664 small files straight
// from GPFS. Optimized (O): the advisor's "preload-input" rule stages each
// node's shard into /dev/shm first (MPIFileUtils-style parallel copy), then
// trains against node-local files. Strong scaling 32..256 nodes.
//
// Paper: sublinear baseline improvement (1.25x-1.4x per doubling) and an
// overall I/O speedup of 2.2x (32 nodes) to 4.6x (256 nodes).
#include <cstdio>
#include <iostream>

#include "util/table.hpp"
#include "workloads/cosmoflow.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table(
      "Figure 7 — CosmoFlow baseline (B) vs shm-preload optimized (O)");
  table.set_header({"nodes", "B job s", "B io s", "O job s", "O io s",
                    "io speedup", "paper speedup"});

  const double paper_speedup[] = {2.2, 3.0, 3.8, 4.6};
  int idx = 0;
  for (int nodes : {32, 64, 128, 256}) {
    workloads::CosmoflowParams P = workloads::CosmoflowParams::paper();
    P.nodes = nodes;  // strong scaling: dataset fixed

    auto base = workloads::run(cluster::lassen(nodes),
                               workloads::make_cosmoflow(P));
    const double b_io = base.profile.io_time_fraction * base.job_seconds;

    // The advisor derives the optimized configuration from the baseline
    // characterization — the paper's feedback loop.
    advisor::RunConfig cfg =
        advisor::RuleEngine::configure(base.recommendations);
    auto opt = workloads::run(cluster::lassen(nodes),
                              workloads::make_cosmoflow(P), cfg);
    const double o_io = opt.profile.io_time_fraction * opt.job_seconds;

    char buf[64];
    auto f = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.4g", v);
      return std::string(buf);
    };
    table.add_row({std::to_string(nodes), f(base.job_seconds), f(b_io),
                   f(opt.job_seconds), f(o_io), f(b_io / o_io),
                   f(paper_speedup[idx])});
    ++idx;
  }
  table.print(std::cout);
  std::cout << "\npaper band: 2.2x (32 nodes) .. 4.6x (256 nodes), "
               "baseline improving 1.25-1.4x per doubling\n";
  return 0;
}
