// Figure 4 — I/O behavior of JAG ICF: request-size/bandwidth histogram, process & data dependency,
// and I/O timeline panels regenerated from the simulated workload.
#include "fig_panels.hpp"

int main() {
  return wasp::benchutil::run_figure("Figure 4 — I/O behavior of JAG ICF", 3);
}
