// Table IX — Shared-Storage entity: regenerated from simulated runs of all six exemplar
// workloads at paper scale. See EXPERIMENTS.md for measured-vs-paper notes.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "workloads/ior.hpp"

int main(int argc, char** argv) {
  wasp::benchutil::init_jobs(argc, argv);
  using namespace wasp;
  auto runs = benchutil::run_all_paper();
  benchutil::print_attribute_table(
      "Table IX — Shared-Storage entity", runs,
      [](const workloads::RunOutput& o) -> charz::AttrList {
        return o.characterization.shared_storage.attributes();
      });

  // The paper anchors "Max I/O BW" with a 32-node IOR run (64GB/s).
  std::cerr << "running 32-node IOR to validate the bandwidth envelope...\n";
  auto [write_gbps, read_gbps] = workloads::measure_ior(
      cluster::lassen(32), workloads::IorParams::paper());
  std::printf(
      "\nmeasured 32-node IOR: write %.1f GB/s, read %.1f GB/s "
      "(paper: 64GB/s)\n",
      write_gbps, read_gbps);
  return 0;
}
