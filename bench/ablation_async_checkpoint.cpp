// Ablation: asynchronous checkpoint draining (§IV-D.2) — HACC-style
// checkpoints written synchronously to the PFS vs. staged on a fast tier
// (shared DataWarp burst buffer on a Cori-like system; node-local shm on
// Lassen) with a background flush overlapping the restart phase.
#include <cstdio>
#include <iostream>

#include "util/table.hpp"
#include "workloads/hacc.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table("Ablation — async checkpoint drain (HACC, 16 nodes)");
  table.set_header({"system", "drain", "job s", "ckpt+restart io s"});

  workloads::HaccParams P;
  P.nodes = 16;
  P.ranks_per_node = 16;
  P.per_rank_bytes = 512 * util::kMB;
  P.generate_compute = sim::seconds(6);

  struct Case {
    const char* label;
    bool cori;
    bool drain;
  };
  for (const Case c : {Case{"lassen (GPFS only)", false, false},
                       Case{"lassen (shm + drain)", false, true},
                       Case{"cori (Lustre only)", true, false},
                       Case{"cori (DataWarp + drain)", true, true}}) {
    advisor::RunConfig cfg;
    cfg.async_checkpoint_drain = c.drain;
    auto spec = c.cori ? cluster::cori(P.nodes) : cluster::lassen(P.nodes);
    auto out = workloads::run(spec, workloads::make_hacc(P), cfg);
    char job[32];
    char io[32];
    std::snprintf(job, sizeof(job), "%.1f", out.job_seconds);
    std::snprintf(io, sizeof(io), "%.1f",
                  out.profile.io_time_fraction * out.job_seconds);
    table.add_row({c.label, c.drain ? "async" : "sync", job, io});
  }
  table.print(std::cout);
  return 0;
}
