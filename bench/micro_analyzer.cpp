// google-benchmark microbenchmarks for the analysis pipeline: trace ->
// ColumnStore conversion and full profile computation.
#include <benchmark/benchmark.h>

#include "analysis/analyzer.hpp"
#include "io/posix.hpp"
#include "runtime/proc.hpp"
#include "runtime/simulation.hpp"
#include "util/rng.hpp"

namespace {

using namespace wasp;

sim::Task<void> traffic(runtime::Simulation& sim, std::uint16_t app,
                        int rank, int files) {
  runtime::Proc p(sim, app, rank, rank % sim.spec().nodes);
  io::Posix posix(p);
  util::Rng rng(static_cast<std::uint64_t>(rank) + 1);
  for (int i = 0; i < files; ++i) {
    const std::string path =
        "/p/gpfs1/a" + std::to_string(rank) + "_" + std::to_string(i);
    auto f = co_await posix.open(path, io::OpenMode::kWrite);
    co_await posix.write(f, 4096 + rng.below(1 << 20), 4);
    co_await posix.close(f);
  }
}

runtime::Simulation* make_traffic(int ranks, int files) {
  auto* sim = new runtime::Simulation(cluster::tiny(4));
  const auto app = sim->tracer().register_app("traffic");
  for (int r = 0; r < ranks; ++r) {
    sim->engine().spawn(traffic(*sim, app, r, files));
  }
  sim->engine().run();
  return sim;
}

void BM_ColumnStoreConversion(benchmark::State& state) {
  auto* sim = make_traffic(16, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto cs = analysis::ColumnStore::from_records(sim->tracer().records());
    benchmark::DoNotOptimize(cs.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              sim->tracer().records().size()));
  delete sim;
}
BENCHMARK(BM_ColumnStoreConversion)->Arg(16)->Arg(256);

void BM_FullProfileAnalysis(benchmark::State& state) {
  auto* sim = make_traffic(16, static_cast<int>(state.range(0)));
  analysis::Analyzer analyzer;
  for (auto _ : state) {
    auto profile = analyzer.analyze(sim->tracer());
    benchmark::DoNotOptimize(profile.totals.total_ops());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              sim->tracer().records().size()));
  delete sim;
}
BENCHMARK(BM_FullProfileAnalysis)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
