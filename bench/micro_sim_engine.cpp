// google-benchmark microbenchmarks for the DES core: event throughput,
// synchronization primitives, fork/join fan-out, and queue/frame-pool
// stress shapes parameterized over the event-queue kind (0 = heap oracle,
// 1 = timer wheel) so the two cores are directly comparable.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>

#include "sim/engine.hpp"
#include "sim/frame_pool.hpp"
#include "sim/link.hpp"
#include "sim/sync.hpp"
#include "sim/waitgroup.hpp"

namespace {

using namespace wasp;

sim::Engine::Options queue_opts(std::int64_t kind) {
  sim::Engine::Options opts;
  opts.queue = kind == 0 ? sim::Engine::QueueKind::kHeap
                         : sim::Engine::QueueKind::kWheel;
  return opts;
}

sim::Task<void> delay_chain(sim::Engine& eng, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim::Delay(eng, 100);
  }
}

void BM_EngineDelayEvents(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(delay_chain(eng, n));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineDelayEvents)->Arg(1000)->Arg(100000);

void BM_EngineManyProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int p = 0; p < procs; ++p) eng.spawn(delay_chain(eng, 16));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * procs * 16);
}
BENCHMARK(BM_EngineManyProcesses)->Arg(128)->Arg(2048);

sim::Task<void> resource_user(sim::Engine& eng, sim::Resource& res, int n) {
  for (int i = 0; i < n; ++i) {
    auto guard = co_await res.acquire();
    co_await sim::Delay(eng, 10);
  }
}

void BM_ResourceContention(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::Resource res(eng, 4);
    for (int p = 0; p < procs; ++p) {
      eng.spawn(resource_user(eng, res, 32));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * 32);
}
BENCHMARK(BM_ResourceContention)->Arg(64)->Arg(512);

sim::Task<void> fanout_root(sim::Engine& eng, int width) {
  sim::WaitGroup wg(eng);
  for (int i = 0; i < width; ++i) {
    wg.launch(delay_chain(eng, 4));
  }
  co_await wg.wait();
}

void BM_WaitGroupFanout(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(fanout_root(eng, width));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WaitGroupFanout)->Arg(64)->Arg(1024);

sim::Task<void> link_user(sim::SharedLink& link, int n) {
  for (int i = 0; i < n; ++i) {
    co_await link.transfer(1 << 20);
  }
}

void BM_SharedLinkTransfers(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::SharedLink::Config cfg;
    cfg.capacity_bps = 10e9;
    cfg.per_stream_bps = 2e9;
    cfg.max_streams = 64;
    sim::SharedLink link(eng, cfg);
    for (int s = 0; s < streams; ++s) eng.spawn(link_user(link, 16));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * streams * 16);
}
BENCHMARK(BM_SharedLinkTransfers)->Arg(16)->Arg(256);

// Queue churn: many long-lived processes sleeping pseudo-random intervals,
// so the queue stays deep and every push lands at a different timestamp —
// the heap's worst case (log-depth sift through cold cache lines) and the
// wheel's bucketed case. Deterministic per-process LCG keeps both queue
// kinds replaying the identical schedule.
sim::Task<void> churn_proc(sim::Engine& eng, std::uint32_t seed, int n) {
  std::uint32_t x = seed * 2654435761u + 1u;
  for (int i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    co_await sim::Delay(eng, 1 + (x % 4096));
  }
}

void BM_EngineQueueChurn(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng(queue_opts(state.range(1)));
    for (int p = 0; p < procs; ++p) {
      eng.spawn(churn_proc(eng, static_cast<std::uint32_t>(p), 64));
    }
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * procs * 64);
}
BENCHMARK(BM_EngineQueueChurn)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

// Spawn storm: short-lived children created in waves, all finishing at the
// same instant — the barrier/allreduce shape HPC workloads generate. This
// is the FIFO fast lane's case and the frame pool's case (every wave
// recycles the previous wave's frames).
sim::Task<void> storm_child(sim::Engine& eng) { co_await sim::Delay(eng, 50); }

sim::Task<void> storm_root(sim::Engine& eng, int waves, int width) {
  for (int w = 0; w < waves; ++w) {
    sim::WaitGroup wg(eng);
    for (int i = 0; i < width; ++i) wg.launch(storm_child(eng));
    co_await wg.wait();
  }
}

void BM_EngineSpawnStorm(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng(queue_opts(state.range(1)));
    eng.spawn(storm_root(eng, 32, width));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 32 * width);
}
BENCHMARK(BM_EngineSpawnStorm)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({1024, 0})
    ->Args({1024, 1});

// Barrier storm: N persistent ranks stepping in lockstep — the whole
// cohort wakes at the same instant every round, without frame turnover
// (isolates queue cost from pool cost).
sim::Task<void> barrier_rank(sim::Engine& eng, int rounds) {
  for (int r = 0; r < rounds; ++r) co_await sim::Delay(eng, 100);
}

void BM_EngineBarrierStorm(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng(queue_opts(state.range(1)));
    for (int p = 0; p < ranks; ++p) eng.spawn(barrier_rank(eng, 64));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * ranks * 64);
}
BENCHMARK(BM_EngineBarrierStorm)
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({4096, 0})
    ->Args({4096, 1});

// Raw frame-pool hit path: allocate/free one canonical-size frame.
void BM_FramePoolAllocFree(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    void* p = sim::FramePool::allocate(bytes);
    benchmark::DoNotOptimize(p);
    sim::FramePool::deallocate(p);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FramePoolAllocFree)->Arg(128)->Arg(512)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
