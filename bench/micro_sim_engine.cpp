// google-benchmark microbenchmarks for the DES core: event throughput,
// synchronization primitives, fork/join fan-out.
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/sync.hpp"
#include "sim/waitgroup.hpp"

namespace {

using namespace wasp;

sim::Task<void> delay_chain(sim::Engine& eng, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sim::Delay(eng, 100);
  }
}

void BM_EngineDelayEvents(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(delay_chain(eng, n));
    eng.run();
    benchmark::DoNotOptimize(eng.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineDelayEvents)->Arg(1000)->Arg(100000);

void BM_EngineManyProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int p = 0; p < procs; ++p) eng.spawn(delay_chain(eng, 16));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * procs * 16);
}
BENCHMARK(BM_EngineManyProcesses)->Arg(128)->Arg(2048);

sim::Task<void> resource_user(sim::Engine& eng, sim::Resource& res, int n) {
  for (int i = 0; i < n; ++i) {
    auto guard = co_await res.acquire();
    co_await sim::Delay(eng, 10);
  }
}

void BM_ResourceContention(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::Resource res(eng, 4);
    for (int p = 0; p < procs; ++p) {
      eng.spawn(resource_user(eng, res, 32));
    }
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * 32);
}
BENCHMARK(BM_ResourceContention)->Arg(64)->Arg(512);

sim::Task<void> fanout_root(sim::Engine& eng, int width) {
  sim::WaitGroup wg(eng);
  for (int i = 0; i < width; ++i) {
    wg.launch(delay_chain(eng, 4));
  }
  co_await wg.wait();
}

void BM_WaitGroupFanout(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(fanout_root(eng, width));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_WaitGroupFanout)->Arg(64)->Arg(1024);

sim::Task<void> link_user(sim::SharedLink& link, int n) {
  for (int i = 0; i < n; ++i) {
    co_await link.transfer(1 << 20);
  }
}

void BM_SharedLinkTransfers(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::SharedLink::Config cfg;
    cfg.capacity_bps = 10e9;
    cfg.per_stream_bps = 2e9;
    cfg.max_streams = 64;
    sim::SharedLink link(eng, cfg);
    for (int s = 0; s < streams; ++s) eng.spawn(link_user(link, 16));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * streams * 16);
}
BENCHMARK(BM_SharedLinkTransfers)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
