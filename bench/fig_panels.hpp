// The three panels of Figures 1-6 rendered as text:
//   (a) request-size / aggregate-bandwidth histogram,
//   (b) process & data dependency summary,
//   (c) I/O timeline (aggregate bandwidth over time).
#pragma once

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"

namespace wasp::benchutil {

inline void print_figure_panels(const std::string& name,
                                const workloads::RunOutput& out) {
  const auto& p = out.profile;

  // ---- (a) request size & bandwidth histogram ---------------------------
  {
    util::TablePrinter table("(a) Request size and bandwidth histogram");
    table.set_header({"bucket", "read ops", "read agg bw", "write ops",
                      "write agg bw"});
    for (std::size_t b = 0; b < p.read_hist.num_buckets(); ++b) {
      table.add_row({
          p.read_hist.bucket_label(b),
          std::to_string(p.read_hist.count(b)),
          p.read_hist.count(b) ? util::format_rate(p.read_hist.bandwidth(b))
                               : "-",
          std::to_string(p.write_hist.count(b)),
          p.write_hist.count(b) ? util::format_rate(p.write_hist.bandwidth(b))
                                : "-",
      });
    }
    table.print(std::cout);
  }

  // ---- (b) process and data dependency ----------------------------------
  {
    std::cout << "\n(b) Process and data dependency\n";
    // Top files by I/O volume with sharing structure.
    std::vector<const analysis::FileStats*> files;
    for (const auto& f : p.files) files.push_back(&f);
    std::sort(files.begin(), files.end(),
              [](const analysis::FileStats* a, const analysis::FileStats* b) {
                return a->ops.io_bytes() > b->ops.io_bytes();
              });
    util::TablePrinter table;
    table.set_header({"file", "size", "I/O", "readers", "writers",
                      "sharing"});
    for (std::size_t i = 0; i < std::min<std::size_t>(files.size(), 8); ++i) {
      const auto& f = *files[i];
      table.add_row({f.path, util::format_bytes(f.size),
                     util::format_bytes(f.ops.io_bytes()),
                     std::to_string(f.reader_ranks),
                     std::to_string(f.writer_ranks),
                     f.shared() ? "shared" : "FPP"});
    }
    table.print(std::cout);
    if (!p.app_edges.empty()) {
      std::cout << "app dataflow:\n";
      for (const auto& e : p.app_edges) {
        std::cout << "  " << p.app_name(e.producer) << " -> "
                  << p.app_name(e.consumer) << "  (" << e.files
                  << " files, " << util::format_bytes(e.bytes) << ")\n";
      }
    }
  }

  // ---- (c) I/O timeline ---------------------------------------------------
  {
    std::cout << "\n(c) I/O timeline (aggregate bandwidth per "
              << util::format_seconds(sim::to_seconds(p.timeline.bin_width))
              << " bin)\n";
    double peak = 0;
    for (std::size_t i = 0; i < p.timeline.num_bins(); ++i) {
      peak = std::max({peak, p.timeline.read_bps[i], p.timeline.write_bps[i]});
    }
    // Downsample to at most 24 printed rows.
    const std::size_t step = std::max<std::size_t>(p.timeline.num_bins() / 24,
                                                   1);
    for (std::size_t i = 0; i < p.timeline.num_bins(); i += step) {
      double r = 0;
      double w = 0;
      for (std::size_t j = i;
           j < std::min(i + step, p.timeline.num_bins()); ++j) {
        r = std::max(r, p.timeline.read_bps[j]);
        w = std::max(w, p.timeline.write_bps[j]);
      }
      const double t = sim::to_seconds(p.timeline.bin_width) *
                       static_cast<double>(i);
      std::printf("  %8.1fs R %-10s %-40s\n", t,
                  util::format_rate(r).c_str(), bar(r, peak).c_str());
      std::printf("  %8s W %-10s %-40s\n", "",
                  util::format_rate(w).c_str(), bar(w, peak).c_str());
    }
  }

  std::cout << "\nsummary: job " << util::format_seconds(out.job_seconds)
            << ", I/O time " << util::format_percent(p.io_time_fraction)
            << ", ops dist "
            << util::format_percent(p.totals.data_op_fraction())
            << " data / "
            << util::format_percent(1 - p.totals.data_op_fraction())
            << " meta, metadata time share "
            << util::format_percent(p.totals.meta_time_fraction()) << "\n";
  (void)name;
}

inline int run_figure(const std::string& title, std::size_t registry_index) {
  using namespace wasp;
  auto entries = workloads::paper_workloads();
  const auto& e = entries.at(registry_index);
  std::cout << title << " — " << e.name << "\n\n";
  auto out = workloads::run(cluster::lassen(32), e.make_paper());
  print_figure_panels(e.name, out);
  return 0;
}

}  // namespace wasp::benchutil
