// Ablation: PFS striping (the Lustre-style tuning of §IV-D.3). For a single
// uncontended writer, the stripe fan-out bounds how many data servers one
// stream can drive in parallel; under full-job contention the aggregate
// capacity dominates and striping stops mattering — which is why the
// advisor's stripe rule keys on per-file granularity, not on job scale.
// Each (stripe size, stripe count) cell is an independent simulation,
// fanned out cell-parallel by the shared sweep driver.
#include <cstdio>

#include "bench_util.hpp"
#include "io/posix.hpp"
#include "sweep.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wasp;

constexpr util::Bytes kTotal = 4 * util::kGiB;
constexpr util::Bytes kTransfer = 64 * util::kMiB;

sim::Task<void> lone_writer(runtime::Simulation& sim, std::uint16_t app,
                            util::Bytes total, util::Bytes transfer) {
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  auto f = co_await posix.open("/p/gpfs1/stripe_t", io::OpenMode::kWrite);
  co_await posix.write(f, transfer,
                       static_cast<std::uint32_t>(total / transfer));
  co_await posix.close(f);
}

workloads::Workload lone_writer_workload() {
  workloads::Workload w;
  w.decl.name = "stripe-ablation";
  w.launch = [](runtime::Simulation& sim, const advisor::RunConfig&) {
    const auto app = sim.tracer().register_app("w");
    sim.engine().spawn(lone_writer(sim, app, kTotal, kTransfer));
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = benchutil::init_jobs(argc, argv);

  struct Cell {
    util::Bytes stripe;
    int count;
  };
  benchutil::Sweep<Cell> sweep;
  sweep.title = "Ablation — striping for a single 4GiB writer (64MiB transfers)";
  sweep.header = {"stripe size", "stripe count", "write time", "effective bw"};
  for (util::Bytes stripe : {util::kMiB, 16 * util::kMiB}) {
    for (int count : {1, 2, 4, 8}) sweep.cells.push_back({stripe, count});
  }
  sweep.scenario = [](const Cell& cell) {
    workloads::Scenario s;
    s.name = "stripe-" + util::format_bytes(cell.stripe) + "-x" +
             std::to_string(cell.count);
    s.spec = cluster::lassen(4);
    s.spec.pfs.stripe_size = cell.stripe;
    s.spec.pfs.stripe_count = cell.count;
    s.make = lone_writer_workload;
    return s;
  };
  // A lone 64-transfer writer is a few hundred engine events per cell —
  // run_many keeps the grid serial (pool dispatch costs more than the sim).
  sweep.est_events_per_cell = 500;
  sweep.row = [](const Cell& cell, const workloads::RunOutput& out) {
    char t[32];
    std::snprintf(t, sizeof(t), "%.2fs", out.job_seconds);
    return std::vector<std::string>{
        util::format_bytes(cell.stripe), std::to_string(cell.count), t,
        util::format_rate(static_cast<double>(kTotal) / out.job_seconds)};
  };
  benchutil::run_sweep(sweep, jobs);
  return 0;
}
