// Ablation: PFS striping (the Lustre-style tuning of §IV-D.3). For a single
// uncontended writer, the stripe fan-out bounds how many data servers one
// stream can drive in parallel; under full-job contention the aggregate
// capacity dominates and striping stops mattering — which is why the
// advisor's stripe rule keys on per-file granularity, not on job scale.
// Each (stripe size, stripe count) cell is an independent simulation, fanned
// out over --jobs workers by the ScenarioRunner.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "io/posix.hpp"
#include "runtime/scenario_runner.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wasp;

sim::Task<void> lone_writer(runtime::Simulation& sim, std::uint16_t app,
                            util::Bytes total, util::Bytes transfer) {
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  auto f = co_await posix.open("/p/gpfs1/stripe_t", io::OpenMode::kWrite);
  co_await posix.write(f, transfer,
                       static_cast<std::uint32_t>(total / transfer));
  co_await posix.close(f);
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = benchutil::init_jobs(argc, argv);
  util::TablePrinter table(
      "Ablation — striping for a single 4GiB writer (64MiB transfers)");
  table.set_header({"stripe size", "stripe count", "write time",
                    "effective bw"});

  const util::Bytes total = 4 * util::kGiB;
  struct Cell {
    util::Bytes stripe;
    int count;
  };
  std::vector<Cell> cells;
  for (util::Bytes stripe : {util::kMiB, 16 * util::kMiB}) {
    for (int count : {1, 2, 4, 8}) cells.push_back({stripe, count});
  }

  std::vector<std::function<double()>> scenarios;
  for (const Cell& cell : cells) {
    scenarios.push_back([cell, total]() {
      auto spec = cluster::lassen(4);
      spec.pfs.stripe_size = cell.stripe;
      spec.pfs.stripe_count = cell.count;
      runtime::Simulation sim(spec);
      const auto app = sim.tracer().register_app("w");
      sim.engine().spawn(lone_writer(sim, app, total, 64 * util::kMiB));
      sim.engine().run();
      return sim::to_seconds(sim.engine().now());
    });
  }
  const auto seconds = runtime::ScenarioRunner(jobs).run<double>(scenarios);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    char t[32];
    std::snprintf(t, sizeof(t), "%.2fs", seconds[i]);
    table.add_row({util::format_bytes(cells[i].stripe),
                   std::to_string(cells[i].count), t,
                   util::format_rate(static_cast<double>(total) /
                                     seconds[i])});
  }
  table.print(std::cout);
  return 0;
}
