// Ablation: PFS striping (the Lustre-style tuning of §IV-D.3). For a single
// uncontended writer, the stripe fan-out bounds how many data servers one
// stream can drive in parallel; under full-job contention the aggregate
// capacity dominates and striping stops mattering — which is why the
// advisor's stripe rule keys on per-file granularity, not on job scale.
#include <cstdio>
#include <iostream>

#include "io/posix.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wasp;

sim::Task<void> lone_writer(runtime::Simulation& sim, std::uint16_t app,
                            util::Bytes total, util::Bytes transfer) {
  runtime::Proc p(sim, app, 0, 0);
  io::Posix posix(p);
  auto f = co_await posix.open("/p/gpfs1/stripe_t", io::OpenMode::kWrite);
  co_await posix.write(f, transfer,
                       static_cast<std::uint32_t>(total / transfer));
  co_await posix.close(f);
}

}  // namespace

int main() {
  util::TablePrinter table(
      "Ablation — striping for a single 4GiB writer (64MiB transfers)");
  table.set_header({"stripe size", "stripe count", "write time",
                    "effective bw"});

  const util::Bytes total = 4 * util::kGiB;
  for (util::Bytes stripe : {util::kMiB, 16 * util::kMiB}) {
    for (int count : {1, 2, 4, 8}) {
      auto spec = cluster::lassen(4);
      spec.pfs.stripe_size = stripe;
      spec.pfs.stripe_count = count;
      runtime::Simulation sim(spec);
      const auto app = sim.tracer().register_app("w");
      sim.engine().spawn(lone_writer(sim, app, total, 64 * util::kMiB));
      sim.engine().run();
      const double sec = sim::to_seconds(sim.engine().now());
      char t[32];
      std::snprintf(t, sizeof(t), "%.2fs", sec);
      table.add_row({util::format_bytes(stripe), std::to_string(count), t,
                     util::format_rate(static_cast<double>(total) / sec)});
    }
  }
  table.print(std::cout);
  return 0;
}
