// Ablation: HDF5 chunking (§IV-D.5 dataset-layout optimization). The
// paper attributes CosmoFlow's metadata storm to unchunked files; chunking
// amortizes the per-access metadata walk.
#include <cstdio>
#include <iostream>

#include "util/table.hpp"
#include "workloads/cosmoflow.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table(
      "Ablation — HDF5 chunking (CosmoFlow, 8 nodes, reduced set)");
  table.set_header({"layout", "job s", "io s", "meta ops", "meta time"});

  workloads::CosmoflowParams P;
  P.nodes = 8;
  P.procs_per_node = 4;
  P.files = 1024;
  P.gpu_per_file = sim::seconds(0.2);

  for (bool chunked : {false, true}) {
    advisor::RunConfig cfg;
    cfg.hdf5_chunking = chunked;
    cfg.hdf5_chunk_size = util::kMiB;
    auto out = workloads::run(cluster::lassen(P.nodes),
                              workloads::make_cosmoflow(P), cfg);
    char job[32];
    char io[32];
    std::snprintf(job, sizeof(job), "%.1f", out.job_seconds);
    std::snprintf(io, sizeof(io), "%.1f",
                  out.profile.io_time_fraction * out.job_seconds);
    table.add_row({chunked ? "chunked (1MB)" : "contiguous", job, io,
                   std::to_string(out.profile.totals.meta_ops),
                   util::format_percent(
                       out.profile.totals.meta_time_fraction())});
  }
  table.print(std::cout);
  return 0;
}
