// Figure 6 — I/O behavior of Montage with Pegasus: request-size/bandwidth histogram, process & data dependency,
// and I/O timeline panels regenerated from the simulated workload.
#include "fig_panels.hpp"

int main() {
  return wasp::benchutil::run_figure("Figure 6 — I/O behavior of Montage with Pegasus", 5);
}
