// run_all — the perf-trajectory driver. Times the table/figure reproduction
// pipeline (per-workload simulation + analysis throughput) and the
// multi-scenario sweeps at jobs=1 vs jobs=N, then emits BENCH_results.json
// so every PR from here on records where the wall-clock went.
//
//   run_all [--jobs N] [--scale test|paper] [--out FILE]
//           [--backend memory|spill] [--spill-dir DIR] [--no-compress]
//           [--only WORKLOAD_ID] [--queue wheel|heap]
//
// --scale test (default) uses the reduced test parameters so the driver
// finishes in seconds anywhere; --scale paper runs the full Table I scale.
// --backend spill routes every pipeline and sweep through the spill-to-disk
// trace store (bounded-memory analysis); each BENCH_results.json entry
// records which backend produced it.
//
// Output schema "wasp-bench-results-v3": the document records provenance
// (git_sha, ISO-8601 timestamp) next to jobs/hardware_threads, and every
// entry carries wall_seconds, a fixed-key "telemetry" block (engine
// events, analyzer pass time, pool queue-wait), and a "metrics" embed —
// the same counters/gauges/histograms sections a RunManifest holds,
// restricted to this entry's registry delta. Spill-backend entries add an
// "io" block (cache/prefetch behavior, compressed vs raw chunk bytes);
// memory-backend entries omit it, and readers treat the absent block as
// "no spill io" (v2 emitted it zeroed with "present": false — wasp_report
// reads both). --no-compress writes raw WSPCHK01 chunk files instead of
// the compressed WSPCHK02 format.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "advisor/rules.hpp"
#include "analysis/spill_store.hpp"
#include "bench_util.hpp"
#include "obs/obs.hpp"
#include "workloads/cosmoflow.hpp"
#include "workloads/montage_mpi.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace wasp;
using Clock = std::chrono::steady_clock;

double elapsed_sec(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct WorkloadMetrics {
  std::string name;
  std::string backend = "memory";
  double sim_seconds = 0.0;
  double analyze_seconds = 0.0;
  double wall_seconds = 0.0;  ///< whole entry, setup through analyze
  std::uint64_t engine_events = 0;
  std::uint64_t trace_rows = 0;
  double events_per_sec = 0.0;
  double analyzer_rows_per_sec = 0.0;
  bool compress = true;
  analysis::IoStats io;  // all-zero for the memory backend
  obs::Snapshot telemetry;  // registry delta over this entry's run
};

struct SweepMetrics {
  std::string name;
  std::string backend = "memory";
  std::size_t scenarios = 0;
  /// Job count run_many actually used for the jobs=N leg (1 when the batch
  /// fell under the serial threshold).
  int jobs_effective = 0;
  double jobs1_seconds = 0.0;
  double jobsN_seconds = 0.0;
  double wall_seconds = 0.0;  ///< both runs end to end
  double speedup = 0.0;
  obs::Snapshot telemetry;  // registry delta over both runs
};

/// The run_with() pipeline with a stopwatch between the simulate and
/// analyze halves (RunOutput has no timing split). With a spill policy the
/// tracer flushes into a SpillColumnStore mid-run and analysis streams the
/// spilled chunks; flush/finalize cost counts toward the analyze half.
WorkloadMetrics measure_workload(const std::string& name,
                                 const cluster::ClusterSpec& spec,
                                 const workloads::Workload& workload,
                                 const runtime::SpillPolicy* policy,
                                 const sim::Engine::Options& eng_opts) {
  WorkloadMetrics m;
  m.name = name;
  const auto entry_t0 = Clock::now();
  const obs::Snapshot before = obs::Registry::instance().snapshot();
  runtime::Simulation sim(spec, eng_opts);

  std::unique_ptr<analysis::SpillColumnStore> store;
  if (policy != nullptr) {
    m.backend = "spill";
    m.compress = policy->compress;
    analysis::SpillColumnStore::Options so;
    so.dir = policy->dir + "/" + name;
    so.chunk_rows = policy->chunk_rows;
    so.max_resident_chunks = policy->max_resident_chunks;
    so.compress = policy->compress;
    store = std::make_unique<analysis::SpillColumnStore>(so);
    sim.tracer().set_sink(store.get(), policy->flush_rows);
  }

  auto t0 = Clock::now();
  if (workload.setup) {
    sim.tracer().set_enabled(false);
    sim.engine().spawn(workload.setup(sim));
    sim.engine().run();
    sim.tracer().set_enabled(true);
    sim.pfs().drop_client_caches();
  }
  workload.launch(sim, advisor::RunConfig{});
  sim.engine().run();
  m.sim_seconds = elapsed_sec(t0);
  m.engine_events = sim.engine().events_processed();
  m.trace_rows = sim.tracer().total_records();

  t0 = Clock::now();
  analysis::Analyzer analyzer;
  if (store != nullptr) {
    sim.tracer().flush_sink();
    sim.tracer().set_sink(nullptr);
    store->finalize();
    const auto profile =
        analyzer.analyze(analysis::tracer_input(sim.tracer(), store.get()));
    (void)profile;
    m.io = store->io_stats();
  } else {
    const auto profile = analyzer.analyze(sim.tracer());
    (void)profile;
  }
  m.analyze_seconds = elapsed_sec(t0);

  if (m.sim_seconds > 0) {
    m.events_per_sec =
        static_cast<double>(m.engine_events) / m.sim_seconds;
  }
  if (m.analyze_seconds > 0) {
    m.analyzer_rows_per_sec =
        static_cast<double>(m.trace_rows) / m.analyze_seconds;
  }
  m.telemetry = obs::Registry::instance().snapshot().delta(before);
  m.wall_seconds = elapsed_sec(entry_t0);
  return m;
}

std::vector<workloads::Scenario> cosmoflow_sweep(bool paper_scale) {
  std::vector<workloads::Scenario> scenarios;
  const std::vector<int> node_counts =
      paper_scale ? std::vector<int>{32, 64, 128, 256}
                  : std::vector<int>{2, 4, 8, 16};
  for (int nodes : node_counts) {
    workloads::CosmoflowParams P = paper_scale
                                       ? workloads::CosmoflowParams::paper()
                                       : workloads::CosmoflowParams::test();
    P.nodes = nodes;
    scenarios.push_back({"cosmoflow-" + std::to_string(nodes),
                         cluster::lassen(nodes),
                         [P] { return workloads::make_cosmoflow(P); },
                         advisor::RunConfig{},
                         analysis::Analyzer::Options{},
                         {}});
  }
  return scenarios;
}

std::vector<workloads::Scenario> montage_sweep(bool paper_scale) {
  std::vector<workloads::Scenario> scenarios;
  const std::vector<int> node_counts =
      paper_scale ? std::vector<int>{32, 64, 128, 256}
                  : std::vector<int>{2, 4, 8, 16};
  for (int nodes : node_counts) {
    workloads::MontageMpiParams P =
        paper_scale ? workloads::MontageMpiParams::paper()
                    : workloads::MontageMpiParams::test();
    if (paper_scale) {
      P.projected_per_node = P.projected_per_node * 32 / nodes;
      P.mosaic_per_node = P.mosaic_per_node * 32 / nodes;
      P.png_per_node = P.png_per_node * 32 / nodes;
    }
    P.nodes = nodes;
    scenarios.push_back({"montage-" + std::to_string(nodes),
                         cluster::lassen(nodes),
                         [P] { return workloads::make_montage_mpi(P); },
                         advisor::RunConfig{},
                         analysis::Analyzer::Options{},
                         {}});
  }
  return scenarios;
}

std::vector<workloads::Scenario> stripe_sweep() {
  // Mirrors ablation_stripe_size's grid via an IOR-style single writer —
  // here the point is timing the fan-out, so reuse the registry workloads.
  std::vector<workloads::Scenario> scenarios;
  for (int count : {1, 2, 4, 8}) {
    auto spec = cluster::lassen(4);
    spec.pfs.stripe_count = count;
    workloads::Scenario s{"stripe-" + std::to_string(count), spec,
                          [] {
                            return workloads::make_montage_mpi(
                                workloads::MontageMpiParams::test());
                          },
                          advisor::RunConfig{},
                          analysis::Analyzer::Options{},
                          {}};
    // Test-scale Montage cells run ~700 engine events: far below the
    // fan-out threshold, so run_many keeps the grid serial.
    s.est_events = 700;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

SweepMetrics measure_sweep(const std::string& name,
                           const std::vector<workloads::Scenario>& scenarios,
                           int jobs, const runtime::SpillPolicy* policy) {
  SweepMetrics m;
  m.name = name;
  m.scenarios = scenarios.size();
  const auto entry_t0 = Clock::now();
  const obs::Snapshot before = obs::Registry::instance().snapshot();
  runtime::ScenarioRunner runner1(1);
  runtime::ScenarioRunner runnerN(jobs);
  if (policy != nullptr) {
    m.backend = "spill";
    runtime::SpillPolicy p = *policy;
    p.dir = policy->dir + "/" + name;
    runner1.set_spill(p);
    runnerN.set_spill(p);
  }
  m.jobs_effective = workloads::effective_jobs(scenarios, runnerN);
  auto t0 = Clock::now();
  (void)workloads::run_many(scenarios, runner1);
  m.jobs1_seconds = elapsed_sec(t0);
  t0 = Clock::now();
  (void)workloads::run_many(scenarios, runnerN);
  m.jobsN_seconds = elapsed_sec(t0);
  m.speedup = m.jobsN_seconds > 0 ? m.jobs1_seconds / m.jobsN_seconds : 0.0;
  m.telemetry = obs::Registry::instance().snapshot().delta(before);
  m.wall_seconds = elapsed_sec(entry_t0);
  return m;
}

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Fixed-key registry excerpt per entry. The keys are emitted whether or
/// not the counters exist (WASP_OBS=OFF snapshots are empty -> all zeros),
/// so the schema never depends on the build config. pool.queue_wait_ns is
/// the per-task queue-wait evidence behind the sweeps' --jobs speedups.
void write_telemetry_block(std::ostream& os, const obs::Snapshot& t) {
  os << "\"telemetry\": {"
     << "\"engine_events\": " << t.value("engine.events") << ", "
     << "\"engine_run_ns\": " << t.value("engine.run_ns") << ", "
     << "\"analyze_rows\": " << t.value("analyze.rows") << ", "
     << "\"analyze_ns\": " << t.value("analyze.ns") << ", "
     << "\"pool_tasks\": " << t.value("pool.tasks") << ", "
     << "\"pool_queue_wait_ns\": " << t.value("pool.queue_wait_ns") << ", "
     << "\"pool_queue_wait_count\": " << t.hist_count("pool.queue_wait_ns")
     << ", "
     << "\"pool_task_run_ns\": " << t.value("pool.task_run_ns") << "}";
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = benchutil::init_jobs(argc, argv);
  bool paper_scale = false;
  bool compress = true;
  std::string out_path = "BENCH_results.json";
  std::string backend = "memory";
  std::string spill_dir;
  std::string only;
  std::string queue = "wheel";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scale" && i + 1 < argc) {
      paper_scale = std::string(argv[++i]) == "paper";
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      backend = argv[++i];
    } else if (arg == "--spill-dir" && i + 1 < argc) {
      spill_dir = argv[++i];
    } else if (arg == "--no-compress") {
      compress = false;
    } else if (arg == "--only" && i + 1 < argc) {
      // Run a single pipeline (by registry id, e.g. "cosmoflow") and skip
      // the sweeps — isolates one workload's timing from the state the
      // earlier pipelines leave behind (allocator arenas, page cache).
      only = argv[++i];
    } else if (arg == "--queue" && i + 1 < argc) {
      // Engine queue for the pipelines: "wheel" (default) or "heap" (the
      // pre-wheel oracle) — the end-to-end companion to the microbench's
      // wheel-vs-heap comparison. Event counts must not depend on this.
      queue = argv[++i];
    }
  }
  if (backend != "memory" && backend != "spill") {
    std::cerr << "unknown --backend (want memory|spill): " << backend << "\n";
    return 2;
  }
  if (queue != "wheel" && queue != "heap") {
    std::cerr << "unknown --queue (want wheel|heap): " << queue << "\n";
    return 2;
  }
  runtime::SpillPolicy spill_policy;
  const runtime::SpillPolicy* policy = nullptr;
  if (backend == "spill") {
    spill_policy.dir =
        spill_dir.empty()
            ? (std::filesystem::temp_directory_path() / "wasp_runall_spill")
                  .string()
            : spill_dir;
    spill_policy.compress = compress;
    policy = &spill_policy;
  }

  // Per-entry telemetry blocks are part of the output schema, so section
  // timing is always on here (two clock reads per pool task — noise next
  // to the work being timed).
  obs::Registry::set_timing_enabled(true);

  std::cerr << "run_all: scale=" << (paper_scale ? "paper" : "test")
            << " jobs=" << jobs << " backend=" << backend << "\n";

  sim::Engine::Options eng_opts;
  eng_opts.queue = queue == "heap" ? sim::Engine::QueueKind::kHeap
                                   : sim::Engine::QueueKind::kWheel;

  std::vector<WorkloadMetrics> workload_metrics;
  for (const auto& e : workloads::paper_workloads()) {
    if (!only.empty() && only != e.id) continue;
    std::cerr << "  pipeline: " << e.name << "\n";
    const auto workload = paper_scale ? e.make_paper() : e.make_test();
    const auto spec = cluster::lassen(paper_scale ? 32 : 4);
    workload_metrics.push_back(
        measure_workload(e.name, spec, workload, policy, eng_opts));
  }
  if (!only.empty() && workload_metrics.empty()) {
    std::cerr << "unknown --only workload id: " << only << "\n";
    return 2;
  }

  std::vector<SweepMetrics> sweep_metrics;
  if (only.empty()) {
    struct SweepDef {
      const char* name;
      std::vector<workloads::Scenario> scenarios;
    };
    std::vector<SweepDef> sweeps;
    sweeps.push_back({"fig7_cosmoflow_opt", cosmoflow_sweep(paper_scale)});
    sweeps.push_back({"fig8_montage_opt", montage_sweep(paper_scale)});
    sweeps.push_back({"ablation_stripe_size", stripe_sweep()});
    for (auto& s : sweeps) {
      std::cerr << "  sweep: " << s.name << " (jobs 1 vs " << jobs << ")\n";
      sweep_metrics.push_back(
          measure_sweep(s.name, s.scenarios, jobs, policy));
    }
  }

  std::ofstream os(out_path);
  os << "{\n";
  os << "  \"schema\": \"wasp-bench-results-v3\",\n";
  os << "  \"scale\": \"" << (paper_scale ? "paper" : "test") << "\",\n";
  os << "  \"git_sha\": \"" << obs::current_git_sha() << "\",\n";
  os << "  \"timestamp\": \"" << obs::iso8601_utc_now() << "\",\n";
  os << "  \"jobs\": " << jobs << ",\n";
  os << "  \"hardware_threads\": "
     << std::thread::hardware_concurrency() << ",\n";
  os << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < workload_metrics.size(); ++i) {
    const auto& m = workload_metrics[i];
    os << "    {\"name\": \"" << m.name << "\", "
       << "\"backend\": \"" << m.backend << "\", "
       << "\"sim_seconds\": " << json_num(m.sim_seconds) << ", "
       << "\"analyze_seconds\": " << json_num(m.analyze_seconds) << ", "
       << "\"wall_seconds\": " << json_num(m.wall_seconds) << ", "
       << "\"engine_events\": " << m.engine_events << ", "
       << "\"trace_rows\": " << m.trace_rows << ", "
       << "\"events_per_sec\": " << json_num(m.events_per_sec) << ", "
       << "\"analyzer_rows_per_sec\": " << json_num(m.analyzer_rows_per_sec);
    // v3: the io block only exists where there is spill io to report;
    // memory-backend entries simply have no "io" key.
    if (m.backend == "spill") {
      os << ", \"io\": {"
         << "\"compress\": " << (m.compress ? "true" : "false") << ", "
         << "\"chunk_loads\": " << m.io.chunk_loads << ", "
         << "\"cache_hits\": " << m.io.cache_hits << ", "
         << "\"evictions\": " << m.io.evictions << ", "
         << "\"prefetch_issued\": " << m.io.prefetch_issued << ", "
         << "\"prefetch_hits\": " << m.io.prefetch_hits << ", "
         << "\"prefetch_wasted\": " << m.io.prefetch_wasted << ", "
         << "\"prefetch_hit_rate\": " << json_num(m.io.prefetch_hit_rate())
         << ", "
         << "\"bytes_written\": " << m.io.bytes_written << ", "
         << "\"bytes_read\": " << m.io.bytes_read << ", "
         << "\"raw_bytes\": " << m.io.raw_bytes << ", "
         << "\"compressed_ratio\": " << json_num(m.io.compressed_ratio())
         << "}";
    }
    os << ", ";
    write_telemetry_block(os, m.telemetry);
    // The manifest-style rollup of this entry's registry delta: the same
    // counters/gauges/histograms sections a RunManifest carries.
    os << ", \"metrics\": {\n";
    obs::write_metric_sections(os, m.telemetry, "      ");
    os << "}";
    os << "}" << (i + 1 < workload_metrics.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"sweeps\": [\n";
  for (std::size_t i = 0; i < sweep_metrics.size(); ++i) {
    const auto& m = sweep_metrics[i];
    os << "    {\"name\": \"" << m.name << "\", "
       << "\"backend\": \"" << m.backend << "\", "
       << "\"scenarios\": " << m.scenarios << ", "
       << "\"jobs_effective\": " << m.jobs_effective << ", "
       << "\"jobs1_seconds\": " << json_num(m.jobs1_seconds) << ", "
       << "\"jobsN_seconds\": " << json_num(m.jobsN_seconds) << ", "
       << "\"wall_seconds\": " << json_num(m.wall_seconds) << ", "
       << "\"speedup\": " << json_num(m.speedup) << ", ";
    write_telemetry_block(os, m.telemetry);
    os << "}" << (i + 1 < sweep_metrics.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  os.close();
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}
