// Ablation: the client page cache behind Montage's write-then-read
// bandwidth spikes (§IV-A.5: "600-1300MB/s ... because of some buffering
// effects of the client nodes where data was written and immediately read").
// With the cache disabled, the intermediate-file reuse spikes vanish and
// I/O time grows. The cache toggle is runtime PFS state, so each cell sets
// it through the Scenario prepare hook before the pipeline starts.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sweep.hpp"
#include "workloads/montage_mpi.hpp"

int main(int argc, char** argv) {
  using namespace wasp;
  const int jobs = benchutil::init_jobs(argc, argv);

  struct Cell {
    bool cache;
  };
  benchutil::Sweep<Cell> sweep;
  sweep.title = "Ablation — GPFS client page cache (Montage MPI)";
  sweep.header = {"client cache", "job s", "io s", "cache hits",
                  "peak read bw"};
  sweep.cells = {{true}, {false}};
  sweep.scenario = [](const Cell& cell) {
    workloads::Scenario s;
    s.name = cell.cache ? "client-cache-on" : "client-cache-off";
    s.spec = cluster::lassen(32);
    s.make = [] {
      return workloads::make_montage_mpi(
          workloads::MontageMpiParams::paper());
    };
    s.prepare = [cache = cell.cache](runtime::Simulation& sim) {
      sim.pfs().set_client_cache_enabled(cache);
    };
    return s;
  };
  sweep.row = [](const Cell& cell, const workloads::RunOutput& out) {
    double peak = 0;
    for (double v : out.profile.timeline.read_bps) peak = std::max(peak, v);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", out.job_seconds);
    char buf2[32];
    std::snprintf(buf2, sizeof(buf2), "%.1f",
                  out.profile.io_time_fraction * out.job_seconds);
    return std::vector<std::string>{
        cell.cache ? "enabled" : "disabled", buf, buf2,
        std::to_string(out.pfs_counters.cache_hits),
        util::format_rate(peak)};
  };
  benchutil::run_sweep(sweep, jobs);
  return 0;
}
