// Ablation: the client page cache behind Montage's write-then-read
// bandwidth spikes (§IV-A.5: "600-1300MB/s ... because of some buffering
// effects of the client nodes where data was written and immediately read").
// With the cache disabled, the intermediate-file reuse spikes vanish and
// I/O time grows.
#include <cstdio>
#include <iostream>

#include "util/table.hpp"
#include "workloads/montage_mpi.hpp"

int main() {
  using namespace wasp;
  util::TablePrinter table("Ablation — GPFS client page cache (Montage MPI)");
  table.set_header({"client cache", "job s", "io s", "cache hits",
                    "peak read bw"});

  for (bool cache : {true, false}) {
    workloads::MontageMpiParams P = workloads::MontageMpiParams::paper();
    runtime::Simulation sim(cluster::lassen(32));
    sim.pfs().set_client_cache_enabled(cache);
    auto out = workloads::run_with(sim, workloads::make_montage_mpi(P),
                                   advisor::RunConfig{},
                                   analysis::Analyzer::Options{});
    double peak = 0;
    for (double v : out.profile.timeline.read_bps) peak = std::max(peak, v);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", out.job_seconds);
    char buf2[32];
    std::snprintf(buf2, sizeof(buf2), "%.1f",
                  out.profile.io_time_fraction * out.job_seconds);
    table.add_row({cache ? "enabled" : "disabled", buf, buf2,
                   std::to_string(sim.pfs().counters().cache_hits),
                   util::format_rate(peak)});
  }
  table.print(std::cout);
  return 0;
}
