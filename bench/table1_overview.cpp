// Table I: high-level I/O behavior of the six exemplar applications.
// Paper values are shown in parentheses for every measured cell.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"

namespace {

struct PaperRow {
  double job_sec, io_pct, write_gb, read_gb, files, shared, fpp;
  const char* iface;
};

// Columns: CM1, HACC, Cosmoflow, JAG, Montage MPI, Montage Pegasus.
constexpr PaperRow kPaper[] = {
    {664, 11, 1, 20, 774, 37, 737, "POSIX"},
    {33, 75, 750, 750, 1280, 0, 1280, "POSIX"},
    {3567, 12, 0.02, 1500, 50000, 50000, 0, "HDF5/MPI-IO"},
    {1289, 13, 0.002, 25, 1, 1, 0, "STDIO"},
    {247, 12, 24, 28, 1040, 80, 960, "STDIO"},
    {1038, 21, 32, 1066, 5738, 960, 4778, "STDIO"},
};

std::string cell(double v, double paper) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g (%.3g)", v, paper);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  wasp::benchutil::init_jobs(argc, argv);
  using namespace wasp;
  auto runs = benchutil::run_all_paper();

  util::TablePrinter table(
      "Table I — High-level I/O behavior (measured vs paper)");
  std::vector<std::string> header = {"I/O Behavior"};
  for (const auto& r : runs) header.push_back(r.name);
  table.set_header(std::move(header));

  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells = {label};
    for (std::size_t i = 0; i < runs.size(); ++i) {
      cells.push_back(getter(runs[i].out, kPaper[i]));
    }
    table.add_row(std::move(cells));
  };

  row("job time (sec)", [](const workloads::RunOutput& o, const PaperRow& p) {
    return cell(o.job_seconds, p.job_sec);
  });
  row("% of I/O time", [](const workloads::RunOutput& o, const PaperRow& p) {
    return cell(o.profile.io_time_fraction * 100, p.io_pct);
  });
  row("Write I/O (GB)", [](const workloads::RunOutput& o, const PaperRow& p) {
    return cell(static_cast<double>(o.profile.totals.write_bytes) / 1e9,
                p.write_gb);
  });
  row("Read I/O (GB)", [](const workloads::RunOutput& o, const PaperRow& p) {
    return cell(static_cast<double>(o.profile.totals.read_bytes) / 1e9,
                p.read_gb);
  });
  row("# files used", [](const workloads::RunOutput& o, const PaperRow& p) {
    return cell(static_cast<double>(o.profile.files.size()), p.files);
  });
  row("Shared file access",
      [](const workloads::RunOutput& o, const PaperRow& p) {
        return cell(static_cast<double>(o.profile.shared_files), p.shared);
      });
  row("FPP access", [](const workloads::RunOutput& o, const PaperRow& p) {
    return cell(static_cast<double>(o.profile.fpp_files), p.fpp);
  });
  row("Access pattern", [](const workloads::RunOutput& o, const PaperRow&) {
    return o.characterization.high_level_io.access_pattern +
           std::string(" (Seq)");
  });
  row("I/O interface", [](const workloads::RunOutput& o, const PaperRow& p) {
    std::string ifc = "?";
    // Dominant interface over apps weighted by I/O volume.
    fs::Bytes best = 0;
    for (const auto& a : o.profile.apps) {
      if (a.ops.io_bytes() >= best) {
        best = a.ops.io_bytes();
        ifc = trace::to_string(a.interface);
      }
    }
    return ifc + " (" + p.iface + ")";
  });

  table.print(std::cout);
  return 0;
}
