// Table IV — Application entity: one block per workload, one row per
// application in the workload (workflows have several).
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  wasp::benchutil::init_jobs(argc, argv);
  using namespace wasp;
  auto runs = benchutil::run_all_paper();
  for (const auto& r : runs) {
    util::TablePrinter table("Table IV — Application entities: " + r.name);
    bool header_set = false;
    for (const auto& app : r.out.characterization.applications) {
      const auto attrs = app.attributes();
      if (!header_set) {
        std::vector<std::string> header;
        for (const auto& [k, v] : attrs) header.push_back(k);
        table.set_header(std::move(header));
        header_set = true;
      }
      std::vector<std::string> row;
      for (const auto& [k, v] : attrs) row.push_back(v);
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  return 0;
}
