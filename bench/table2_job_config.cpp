// Table II — Job Configuration entity: regenerated from simulated runs of all six exemplar
// workloads at paper scale. See EXPERIMENTS.md for measured-vs-paper notes.
#include <iostream>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  wasp::benchutil::init_jobs(argc, argv);
  using namespace wasp;
  auto runs = benchutil::run_all_paper();
  benchutil::print_attribute_table(
      "Table II — Job Configuration entity", runs,
      [](const workloads::RunOutput& o) -> charz::AttrList {
        return o.characterization.job.attributes();
      });
  return 0;
}
