// Common ablation sweep driver: a parameter grid becomes a vector of
// independent workloads::Scenario cells, workloads::run_many fans them out
// over a ScenarioRunner (honoring any SpillPolicy set on it), and a row
// printer renders the results in grid order. Every ablation bench shares
// this one execution path, so each prints an identical table at any --jobs.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/scenario_runner.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace wasp::benchutil {

template <typename Cell>
struct Sweep {
  std::string title;
  std::vector<std::string> header;
  std::vector<Cell> cells;
  /// Build the independent simulation request for one grid cell.
  std::function<workloads::Scenario(const Cell&)> scenario;
  /// Render one table row from a cell's result.
  std::function<std::vector<std::string>(const Cell&,
                                         const workloads::RunOutput&)>
      row;
  /// Rough engine-event count per cell (0 = unknown), forwarded to
  /// Scenario::est_events so run_many can skip the thread-pool fan-out for
  /// grids of tiny cells.
  std::uint64_t est_events_per_cell = 0;
};

/// Run the grid cell-parallel on the given runner and print the table.
/// Returns the outputs in grid order (for benches that post-process).
template <typename Cell>
std::vector<workloads::RunOutput> run_sweep(
    const Sweep<Cell>& sweep, const runtime::ScenarioRunner& runner) {
  std::vector<workloads::Scenario> scenarios;
  scenarios.reserve(sweep.cells.size());
  for (const Cell& c : sweep.cells) {
    workloads::Scenario s = sweep.scenario(c);
    if (s.est_events == 0) s.est_events = sweep.est_events_per_cell;
    scenarios.push_back(std::move(s));
  }
  auto outs = workloads::run_many(scenarios, runner);

  util::TablePrinter table(sweep.title);
  table.set_header(sweep.header);
  for (std::size_t i = 0; i < outs.size(); ++i) {
    table.add_row(sweep.row(sweep.cells[i], outs[i]));
  }
  table.print(std::cout);
  return outs;
}

template <typename Cell>
std::vector<workloads::RunOutput> run_sweep(const Sweep<Cell>& sweep,
                                            int jobs = 0) {
  return run_sweep(sweep, runtime::ScenarioRunner(jobs));
}

}  // namespace wasp::benchutil
