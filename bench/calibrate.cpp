// Calibration harness: runs all six exemplar workloads at paper scale and
// prints measured vs paper Table-I values plus simulator cost. Not one of
// the paper's tables itself — this is the tool used to tune the Lassen
// preset constants (see EXPERIMENTS.md for the resulting calibration).
//
// The six runs are independent, so they fan out through the ScenarioRunner
// (--jobs N); only the scoreboard merge below stays serial, so every
// simulated column is identical for every job count (only the wall-ms
// column reflects the host).
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_util.hpp"
#include "runtime/scenario_runner.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace {

struct PaperRow {
  const char* name;
  double job_sec;
  double io_frac;
  double write_gb;
  double read_gb;
  double files;
  double data_ops_frac;  // Table III
};

constexpr PaperRow kPaper[] = {
    {"CM1", 664, 0.11, 1, 20, 774, 0.30},
    {"HACC (FPP)", 33, 0.75, 750, 750, 1280, 0.50},
    {"Cosmoflow", 3567, 0.12, 0.020, 1500, 50000, 0.02},
    {"JAG", 1289, 0.13, 0.002, 25, 1, 0.30},
    {"Montage MPI", 247, 0.12, 24, 28, 1040, 0.99},
    {"Montage Pegasus", 1038, 0.21, 32, 107, 5738, 0.65},
};

struct CalRun {
  wasp::workloads::RunOutput out;
  long wall_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wasp;
  const int jobs = benchutil::init_jobs(argc, argv);
  util::TablePrinter table("Calibration: measured vs paper (Table I)");
  table.set_header({"workload", "job s (paper)", "io% (paper)",
                    "write (paper)", "read (paper)", "#files (paper)",
                    "data-ops% (paper)", "events", "wall ms"});

  const auto entries = workloads::paper_workloads();
  std::vector<std::function<CalRun()>> fns;
  fns.reserve(entries.size());
  for (const auto& e : entries) {
    fns.push_back([&e] {
      const auto t0 = std::chrono::steady_clock::now();
      CalRun r;
      r.out = workloads::run(cluster::lassen(32), e.make_paper());
      r.wall_ms = static_cast<long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      return r;
    });
  }
  std::cerr << "calibrating " << entries.size() << " workloads (" << jobs
            << " jobs)...\n";
  const auto runs = runtime::ScenarioRunner(jobs).run<CalRun>(fns);

  // Serial scoreboard merge, in registry order.
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const auto& p = kPaper[i];
    const auto& out = runs[i].out;
    char buf[64];
    auto fmt = [&buf](double v, double paper) {
      std::snprintf(buf, sizeof(buf), "%.3g (%.3g)", v, paper);
      return std::string(buf);
    };
    table.add_row({
        e.name,
        fmt(out.job_seconds, p.job_sec),
        fmt(out.profile.io_time_fraction * 100, p.io_frac * 100),
        fmt(static_cast<double>(out.profile.totals.write_bytes) / 1e9,
            p.write_gb),
        fmt(static_cast<double>(out.profile.totals.read_bytes) / 1e9,
            p.read_gb),
        fmt(static_cast<double>(out.profile.files.size()), p.files),
        fmt(out.profile.totals.data_op_fraction() * 100,
            p.data_ops_frac * 100),
        std::to_string(out.engine_events),
        std::to_string(runs[i].wall_ms),
    });
    std::printf("%-16s meta-time %.0f%%  ops r/w/m %.3g/%.3g/%.3g M\n",
                e.name.c_str(), out.profile.totals.meta_time_fraction() * 100,
                static_cast<double>(out.profile.totals.read_ops) / 1e6,
                static_cast<double>(out.profile.totals.write_ops) / 1e6,
                static_cast<double>(out.profile.totals.meta_ops) / 1e6);
  }
  table.print(std::cout);
  return 0;
}
