// analyzer_bench — map-step throughput of the analyzer: batched columnar
// kernels vs the scalar reference row loop, on either store backend.
//
// Generates a synthetic trace (every interface/op, file-less rows — the
// same generator the store tests use), analyzes it with both scan paths,
// and reports rows/sec per pipeline pass from the telemetry counter deltas
// (analyze.scan_ns etc.), plus the kernel-vs-reference scan speedup.
//
//   analyzer_bench [--rows N] [--repeat N] [--jobs N] [--chunk-rows N]
//                  [--backend memory|spill] [--spill-dir DIR]
//
// Registered as the `ctest -L perf` smoke test with a small --rows so a
// throughput regression (or a broken kernel) shows up in CI wall-clock.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/spill_store.hpp"
#include "obs/obs.hpp"
#include "trace/synthetic.hpp"

namespace {

struct Args {
  std::size_t rows = 2'000'000;
  int repeat = 3;
  int jobs = 0;
  std::size_t chunk_rows = 65536;
  std::string backend = "memory";
  std::string spill_dir;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: analyzer_bench [--rows N] [--repeat N] [--jobs N]\n"
               "                      [--chunk-rows N] "
               "[--backend memory|spill] [--spill-dir DIR]\n");
  std::exit(2);
}

/// Per-pass nanoseconds of one analyze() call, from the registry delta.
struct PassTimes {
  std::uint64_t total = 0;
  std::uint64_t scan = 0;
  std::uint64_t merge = 0;
  std::uint64_t resolve = 0;
  std::uint64_t unions = 0;
  std::uint64_t phases = 0;
  std::uint64_t timeline = 0;
};

double rows_per_sec(std::size_t rows, std::uint64_t ns) {
  return ns == 0 ? 0.0
                 : static_cast<double>(rows) * 1e9 / static_cast<double>(ns);
}

PassTimes run_once(const wasp::analysis::TraceInput& input, const Args& a,
                   bool reference) {
  wasp::analysis::Analyzer::Options opts;
  opts.jobs = a.jobs;
  opts.chunk_rows = a.chunk_rows;
  opts.reference_scan = reference;
  const wasp::obs::Snapshot before =
      wasp::obs::Registry::instance().snapshot();
  const auto profile = wasp::analysis::Analyzer(opts).analyze(input);
  // Keep the profile alive past the snapshot so its teardown isn't timed.
  const wasp::obs::Snapshot d =
      wasp::obs::Registry::instance().snapshot().delta(before);
  if (profile.num_procs < 0) std::abort();  // defeat over-eager DCE
  PassTimes t;
  t.total = d.value("analyze.ns");
  t.scan = d.value("analyze.scan_ns");
  t.merge = d.value("analyze.merge_ns");
  t.resolve = d.value("analyze.resolve_ns");
  t.unions = d.value("analyze.unions_ns");
  t.phases = d.value("analyze.phases_ns");
  t.timeline = d.value("analyze.timeline_ns");
  return t;
}

/// Best-of-N (minimum ns per pass, independently — each pass's best run).
PassTimes run_best(const wasp::analysis::TraceInput& input, const Args& a,
                   bool reference) {
  PassTimes best = run_once(input, a, reference);
  for (int r = 1; r < a.repeat; ++r) {
    const PassTimes t = run_once(input, a, reference);
    best.total = std::min(best.total, t.total);
    best.scan = std::min(best.scan, t.scan);
    best.merge = std::min(best.merge, t.merge);
    best.resolve = std::min(best.resolve, t.resolve);
    best.unions = std::min(best.unions, t.unions);
    best.phases = std::min(best.phases, t.phases);
    best.timeline = std::min(best.timeline, t.timeline);
  }
  return best;
}

void report(const char* label, std::size_t rows, const PassTimes& t) {
  std::printf("%s:\n", label);
  const auto line = [rows](const char* pass, std::uint64_t ns) {
    std::printf("  %-10s %10.3f ms   %12.0f rows/sec\n", pass,
                static_cast<double>(ns) / 1e6, rows_per_sec(rows, ns));
  };
  line("scan", t.scan);
  line("merge", t.merge);
  line("resolve", t.resolve);
  line("unions", t.unions);
  line("phases", t.phases);
  line("timeline", t.timeline);
  line("total", t.total);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--rows") {
      a.rows = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--repeat") {
      a.repeat = std::atoi(value());
    } else if (arg == "--jobs") {
      a.jobs = std::atoi(value());
    } else if (arg == "--chunk-rows") {
      a.chunk_rows = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--backend") {
      a.backend = value();
    } else if (arg == "--spill-dir") {
      a.spill_dir = value();
    } else {
      usage();
    }
  }
  if (a.rows == 0 || a.repeat < 1 ||
      (a.backend != "memory" && a.backend != "spill")) {
    usage();
  }
  wasp::obs::Registry::set_timing_enabled(true);

  wasp::trace::SyntheticOpts gen;
  gen.ifaces = 7;  // include CPU/GPU/MPI spans
  gen.ops = 14;
  gen.files_per_invalid = 5;
  const auto records = wasp::trace::synthetic_records(a.rows, gen);

  wasp::analysis::TraceInput input;
  input.records = records;
  input.app_names = {"a0", "a1", "a2", "a3", "a4"};
  input.path_at = [](std::size_t i) { return "/f/" + std::to_string(i); };
  input.size_at = [](std::size_t i) -> wasp::fs::Bytes { return i + 1; };
  input.fs_shared = [](std::int16_t f) { return f == 0; };

  std::unique_ptr<wasp::analysis::SpillColumnStore> spill;
  if (a.backend == "spill") {
    const std::string dir =
        a.spill_dir.empty()
            ? (std::filesystem::temp_directory_path() / "analyzer_bench.spill")
                  .string()
            : a.spill_dir;
    spill = std::make_unique<wasp::analysis::SpillColumnStore>(
        wasp::analysis::SpillColumnStore::Options{.dir = dir});
    spill->append(records);
    spill->finalize();
    input.store = spill.get();
  }

  std::printf(
      "analyzer_bench: rows=%zu backend=%s jobs=%d chunk_rows=%zu "
      "repeat=%d (best-of)\n",
      a.rows, a.backend.c_str(), a.jobs, a.chunk_rows, a.repeat);
  const PassTimes ref = run_best(input, a, /*reference=*/true);
  const PassTimes ker = run_best(input, a, /*reference=*/false);
  report("reference (scalar row loop)", a.rows, ref);
  report("kernels (batched columnar)", a.rows, ker);
  if (ker.scan > 0) {
    std::printf("scan speedup: %.2fx   end-to-end speedup: %.2fx\n",
                static_cast<double>(ref.scan) / static_cast<double>(ker.scan),
                static_cast<double>(ref.total) /
                    static_cast<double>(ker.total));
  }
  return 0;
}
