// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/scenario_runner.hpp"
#include "util/parallel.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace wasp::benchutil {

/// Parse the shared bench flags (`--jobs N`) and install the result as the
/// process-wide default parallelism (the WASP_JOBS environment variable is
/// the fallback). Every ScenarioRunner / Analyzer constructed with jobs=0
/// picks this up. Returns the resolved job count.
inline int init_jobs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--jobs") {
      // cli_int rejects garbage ("--jobs banana" used to silently become 0
      // via atoi and fall back to the default) and exits 2 with the flag
      // named.
      const int jobs = static_cast<int>(util::cli_int("--jobs", argv[i + 1]));
      if (jobs > 0) util::set_default_jobs(jobs);
    }
  }
  return util::default_jobs();
}

struct NamedRun {
  std::string name;
  workloads::RunOutput out;
};

/// Run all six exemplar workloads at paper scale (32 nodes) concurrently
/// (up to util::default_jobs() at a time) and return the outputs in the
/// paper's column order.
inline std::vector<NamedRun> run_all_paper() {
  std::vector<workloads::Scenario> scenarios;
  for (const auto& e : workloads::paper_workloads()) {
    scenarios.push_back({e.name, cluster::lassen(32), e.make_paper,
                         advisor::RunConfig{}, analysis::Analyzer::Options{},
                         {}});
  }
  std::cerr << "running " << scenarios.size() << " workloads ("
            << util::default_jobs() << " jobs)...\n";
  auto outs = workloads::run_many(scenarios);
  std::vector<NamedRun> runs;
  runs.reserve(outs.size());
  for (std::size_t i = 0; i < outs.size(); ++i) {
    runs.push_back({scenarios[i].name, std::move(outs[i])});
  }
  return runs;
}

/// Print a paper-style attribute table: one row per attribute, one column
/// per workload. `pick` extracts the AttrList for a run.
inline void print_attribute_table(
    const std::string& title, const std::vector<NamedRun>& runs,
    const std::function<charz::AttrList(const workloads::RunOutput&)>& pick) {
  util::TablePrinter table(title);
  std::vector<std::string> header = {"Attribute"};
  for (const auto& r : runs) header.push_back(r.name);
  table.set_header(std::move(header));

  if (runs.empty()) return;
  const auto first = pick(runs.front().out);
  for (std::size_t a = 0; a < first.size(); ++a) {
    std::vector<std::string> row = {first[a].first};
    for (const auto& r : runs) {
      const auto attrs = pick(r.out);
      row.push_back(a < attrs.size() ? attrs[a].second : "");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

/// Simple ASCII bar for figure-style output.
inline std::string bar(double value, double max_value, int width = 40) {
  if (max_value <= 0) return "";
  int n = static_cast<int>(value / max_value * width + 0.5);
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace wasp::benchutil
