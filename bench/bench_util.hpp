// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace wasp::benchutil {

struct NamedRun {
  std::string name;
  workloads::RunOutput out;
};

/// Run all six exemplar workloads at paper scale (32 nodes) and return the
/// outputs in the paper's column order.
inline std::vector<NamedRun> run_all_paper() {
  std::vector<NamedRun> runs;
  for (const auto& e : workloads::paper_workloads()) {
    std::cerr << "running " << e.name << "...\n";
    runs.push_back({e.name, workloads::run(cluster::lassen(32),
                                           e.make_paper())});
  }
  return runs;
}

/// Print a paper-style attribute table: one row per attribute, one column
/// per workload. `pick` extracts the AttrList for a run.
inline void print_attribute_table(
    const std::string& title, const std::vector<NamedRun>& runs,
    const std::function<charz::AttrList(const workloads::RunOutput&)>& pick) {
  util::TablePrinter table(title);
  std::vector<std::string> header = {"Attribute"};
  for (const auto& r : runs) header.push_back(r.name);
  table.set_header(std::move(header));

  if (runs.empty()) return;
  const auto first = pick(runs.front().out);
  for (std::size_t a = 0; a < first.size(); ++a) {
    std::vector<std::string> row = {first[a].first};
    for (const auto& r : runs) {
      const auto attrs = pick(r.out);
      row.push_back(a < attrs.size() ? attrs[a].second : "");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

/// Simple ASCII bar for figure-style output.
inline std::string bar(double value, double max_value, int width = 40) {
  if (max_value <= 0) return "";
  int n = static_cast<int>(value / max_value * width + 0.5);
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace wasp::benchutil
