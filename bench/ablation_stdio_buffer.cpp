// Ablation: STDIO stream-buffer size on a small-transfer workload (the
// knob the advisor's "stdio-buffer" rule turns, §IV-D.1 buffering). Each
// buffer size is an independent simulation, fanned out cell-parallel by
// the shared sweep driver; PFS data-op counts ride along in the
// RunOutput's filesystem counters.
#include <cstdio>

#include "bench_util.hpp"
#include "io/stdio.hpp"
#include "sweep.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wasp;

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          int rank, util::Bytes buffer) {
  runtime::Proc p(sim, app, rank, rank % sim.spec().nodes);
  io::Stdio stdio(p, buffer);
  auto f = co_await stdio.fopen("/p/gpfs1/ab/f" + std::to_string(rank),
                                io::OpenMode::kWrite);
  co_await stdio.fwrite(f, 512, 32768);  // 16MiB in 512B ops
  co_await stdio.fclose(f);
  auto g = co_await stdio.fopen("/p/gpfs1/ab/f" + std::to_string(rank),
                                io::OpenMode::kRead);
  co_await stdio.fread(g, 512, 32768);
  co_await stdio.fclose(g);
}

workloads::Workload stdio_workload(util::Bytes buffer) {
  workloads::Workload w;
  w.decl.name = "stdio-buffer-ablation";
  w.launch = [buffer](runtime::Simulation& sim, const advisor::RunConfig&) {
    const auto app = sim.tracer().register_app("ab");
    for (int r = 0; r < 16; ++r) {
      sim.engine().spawn(rank_body(sim, app, r, buffer));
    }
  };
  return w;
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = benchutil::init_jobs(argc, argv);

  struct Cell {
    util::Bytes buffer;
  };
  benchutil::Sweep<Cell> sweep;
  sweep.title = "Ablation — STDIO buffer size (16 ranks x 16MiB in 512B user ops)";
  sweep.header = {"buffer", "job s", "PFS data ops", "effective bw"};
  for (util::Bytes buffer :
       {util::kKiB, 4 * util::kKiB, 64 * util::kKiB, util::kMiB}) {
    sweep.cells.push_back({buffer});
  }
  sweep.scenario = [](const Cell& cell) {
    workloads::Scenario s;
    s.name = "stdio-buf-" + util::format_bytes(cell.buffer);
    s.spec = cluster::lassen(4);
    s.make = [buffer = cell.buffer] { return stdio_workload(buffer); };
    return s;
  };
  sweep.row = [](const Cell& cell, const workloads::RunOutput& out) {
    const double sec = out.job_seconds;
    const double bytes = 2.0 * 16 * 16 * 1024 * 1024;
    char job[32];
    std::snprintf(job, sizeof(job), "%.2f", sec);
    return std::vector<std::string>{
        util::format_bytes(cell.buffer), job,
        std::to_string(out.pfs_counters.data_ops),
        util::format_rate(bytes / sec)};
  };
  benchutil::run_sweep(sweep, jobs);
  return 0;
}
