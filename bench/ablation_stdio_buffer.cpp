// Ablation: STDIO stream-buffer size on a small-transfer workload (the
// knob the advisor's "stdio-buffer" rule turns, §IV-D.1 buffering).
#include <cstdio>
#include <iostream>

#include "io/stdio.hpp"
#include "util/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wasp;

sim::Task<void> rank_body(runtime::Simulation& sim, std::uint16_t app,
                          int rank, util::Bytes buffer) {
  runtime::Proc p(sim, app, rank, rank % sim.spec().nodes);
  io::Stdio stdio(p, buffer);
  auto f = co_await stdio.fopen("/p/gpfs1/ab/f" + std::to_string(rank),
                                io::OpenMode::kWrite);
  co_await stdio.fwrite(f, 512, 32768);  // 16MiB in 512B ops
  co_await stdio.fclose(f);
  auto g = co_await stdio.fopen("/p/gpfs1/ab/f" + std::to_string(rank),
                                io::OpenMode::kRead);
  co_await stdio.fread(g, 512, 32768);
  co_await stdio.fclose(g);
}

}  // namespace

int main() {
  util::TablePrinter table(
      "Ablation — STDIO buffer size (16 ranks x 16MiB in 512B user ops)");
  table.set_header({"buffer", "job s", "PFS data ops", "effective bw"});

  for (util::Bytes buffer : {util::kKiB, 4 * util::kKiB, 64 * util::kKiB,
                             util::kMiB}) {
    runtime::Simulation sim(cluster::lassen(4));
    const auto app = sim.tracer().register_app("ab");
    for (int r = 0; r < 16; ++r) {
      sim.engine().spawn(rank_body(sim, app, r, buffer));
    }
    sim.engine().run();
    const double sec = sim::to_seconds(sim.engine().now());
    const double bytes = 2.0 * 16 * 16 * 1024 * 1024;
    char job[32];
    std::snprintf(job, sizeof(job), "%.2f", sec);
    table.add_row({util::format_bytes(buffer), job,
                   std::to_string(sim.pfs().counters().data_ops),
                   util::format_rate(bytes / sec)});
  }
  table.print(std::cout);
  return 0;
}
